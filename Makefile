# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets. `make verify` is the tier-1 gate.

GO ?= go

.PHONY: all fmt vet build test race bench bench-par verify apicheck examples bipd-smoke lint-models

all: verify

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race pins the concurrent subsystems' data-sharing discipline: the
# multi-threaded coordinator and the distributed protocol deliberately
# share offer maps across goroutines/rounds (internal/engine/race_test.go,
# internal/distributed/nodes_share_test.go), the parallel explorer
# shares copy-on-write states and derived move tables across workers
# (internal/lts/parallel_test.go), and the bipd service fans progress
# callbacks and job state across HTTP handlers, SSE subscribers and the
# worker pool (serve/serve_test.go), so ./... must stay clean under the
# race detector.
race:
	$(GO) test -race ./...

# bench prints one line per paper experiment (E1–E23); full tables via
# `go run ./cmd/bipbench` (reference run recorded in EXPERIMENTS.md).
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' .

# bench-par measures the parallel exploration drivers only: the
# BenchmarkExplore workload x workers x order grid and the E18
# work-stealing sweep, plus the multi-core speedup gate (which skips
# with a notice on hosts with fewer than 4 CPUs). CI runs this next to
# the bench smoke.
bench-par:
	$(GO) test -bench 'Explore|E18' -benchtime=1x -run '^$$' .
	$(GO) test -run TestE18SpeedupMultiCore -count=1 -v .

# apicheck enforces the public-API boundary: tools and examples must be
# buildable by an external consumer, so nothing under cmd/ or examples/
# may import bip/internal; and the property algebra's tests must stay
# black-box (package prop_test over the public surface), so that every
# prop feature is demonstrably reachable from outside the module.
apicheck:
	@$(GO) run ./cmd/apicheck

# examples builds and runs every example as a smoke test of the public
# API surface (small sizes; each exits 0 on success), plus a bipc run
# checking textual properties end to end (parse → compile → stream).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/elevator
	$(GO) run ./examples/temperature
	$(GO) run ./examples/philosophers -n 4
	$(GO) run ./examples/lustre-integrator
	$(GO) run ./cmd/bipc \
		-prop 'always(l.n <= 10)' \
		-prop 'after(hit, until(l.n >= 1, back))' \
		-prop 'never(at(l, b) & at(r, a))' \
		examples/pingpong.bip

# lint-models runs the static analyzer over every shipped model with
# warnings promoted to errors: the examples and the zoo are the
# analyzer's no-false-positives fixture, so a red lint-models means
# either a real model defect or a lint regression. (UnsafeElevator is
# deliberately absent: it drops two port bindings by design, and
# lint/lint_test.go asserts those exact findings instead.)
lint-models:
	$(GO) run ./cmd/bipc -lint -Werror examples/pingpong.bip
	@for m in philosophers philosophers2p tokenring gasstation elevator prodcons; do \
		echo "dfinder -model $$m -lint"; \
		$(GO) run ./cmd/dfinder -model $$m -n 4 -m 3 -lint -Werror >/dev/null || exit 1; \
	done
	@echo "lint-models: all shipped models are warning-free"

# bipd-smoke drives the verification service over real HTTP: start
# bipd, verify examples/pingpong.bip with textual properties, assert
# the verdict, the cache hit on byte-identical resubmission, and the
# 400 on malformed input; then kill -9 a persistent (-data) server
# mid-flight and assert the restart recovers the interrupted jobs and
# keeps pre-crash reports. Needs curl + jq (present on CI runners).
bipd-smoke:
	./scripts/bipd_smoke.sh

verify: fmt vet build test apicheck

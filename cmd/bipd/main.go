// Command bipd serves BIP verification over HTTP/JSON: POST a textual
// model plus textual properties to /v1/jobs, poll or stream the job,
// read the report. Built entirely on the public bip/serve package; see
// its doc for the API.
//
// Usage:
//
//	bipd -addr :8080 -pool 4
//
//	curl -s localhost:8080/v1/jobs -d '{
//	    "model": "system pair\natom A { ... }",
//	    "properties": ["always(l.n <= 10)"],
//	    "options": {"workers": 4, "timeout_ms": 30000}
//	}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -N localhost:8080/v1/jobs/j1/events
//	curl -s -X DELETE localhost:8080/v1/jobs/j1
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, accepted
// jobs run to completion (bounded by -drain, after which they are
// canceled).
//
// With -data DIR the service is crash-safe: accepted jobs are
// journaled before they are acknowledged and completed reports persist
// on disk, so a restart on the same directory re-queues interrupted
// jobs and serves finished ones from the store (kill -9 included —
// scripts/bipd_smoke.sh exercises exactly that). -quota-rate and
// -quota-burst cap per-client submissions with a token bucket; clients
// get 429 + Retry-After, which the bip/serve/client package honors
// automatically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bip/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 2, "concurrent explorations")
	queue := flag.Int("queue", 16, "jobs accepted beyond the running ones (full queue rejects with 429)")
	cache := flag.Int("cache", 64, "completed reports kept in the content-addressed cache")
	tick := flag.Duration("tick", 100*time.Millisecond, "progress interval (stats refresh, SSE events, cancellation latency)")
	timeout := flag.Duration("timeout", time.Minute, "default per-job wall clock (overridable per job via timeout_ms; <0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace: running jobs beyond this are canceled")
	data := flag.String("data", "", "data directory for crash-safe persistence (journal + report store); empty runs in-memory")
	quotaRate := flag.Float64("quota-rate", 0, "per-client sustained submissions/sec (0 disables quotas)")
	quotaBurst := flag.Int("quota-burst", 0, "per-client submission burst size (0 disables quotas)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: bipd [-addr host:port] [-pool n] [-queue n] [-cache n] [-tick d] [-timeout d] [-drain d] [-data dir] [-quota-rate r -quota-burst n]")
		os.Exit(2)
	}
	cfg := serve.Config{
		Pool:           *pool,
		Queue:          *queue,
		CacheSize:      *cache,
		Tick:           *tick,
		DefaultTimeout: *timeout,
		DataDir:        *data,
		Quota:          serve.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst},
	}
	if err := run(*addr, cfg, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "bipd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, drain time.Duration) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	persist := "in-memory"
	if cfg.DataDir != "" {
		persist = "data " + cfg.DataDir
	}
	fmt.Fprintf(os.Stderr, "bipd: listening on %s (pool %d, queue %d, %s)\n", addr, cfg.Pool, cfg.Queue, persist)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "bipd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bipd: drain expired, canceled remaining jobs")
	}
	// The job drain already happened; closing idle HTTP connections is
	// quick, so give it its own short deadline rather than the possibly
	// exhausted drain budget.
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	return hs.Shutdown(closeCtx)
}

// Command bipd serves BIP verification over HTTP/JSON: POST a textual
// model plus textual properties to /v1/jobs, poll or stream the job,
// read the report. Built entirely on the public bip/serve package; see
// its doc for the API.
//
// Usage:
//
//	bipd -addr :8080 -pool 4
//
//	curl -s localhost:8080/v1/jobs -d '{
//	    "model": "system pair\natom A { ... }",
//	    "properties": ["always(l.n <= 10)"],
//	    "options": {"workers": 4, "timeout_ms": 30000}
//	}'
//	curl -s localhost:8080/v1/jobs/j1
//	curl -N localhost:8080/v1/jobs/j1/events
//	curl -s -X DELETE localhost:8080/v1/jobs/j1
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, accepted
// jobs run to completion (bounded by -drain, after which they are
// canceled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bip/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 2, "concurrent explorations")
	queue := flag.Int("queue", 16, "jobs accepted beyond the running ones (full queue rejects with 429)")
	cache := flag.Int("cache", 64, "completed reports kept in the content-addressed cache")
	tick := flag.Duration("tick", 100*time.Millisecond, "progress interval (stats refresh, SSE events, cancellation latency)")
	timeout := flag.Duration("timeout", time.Minute, "default per-job wall clock (overridable per job via timeout_ms; <0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace: running jobs beyond this are canceled")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: bipd [-addr host:port] [-pool n] [-queue n] [-cache n] [-tick d] [-timeout d] [-drain d]")
		os.Exit(2)
	}
	if err := run(*addr, *pool, *queue, *cache, *tick, *timeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "bipd:", err)
		os.Exit(1)
	}
}

func run(addr string, pool, queue, cache int, tick, timeout, drain time.Duration) error {
	s := serve.New(serve.Config{
		Pool:           pool,
		Queue:          queue,
		CacheSize:      cache,
		Tick:           tick,
		DefaultTimeout: timeout,
	})
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "bipd: listening on %s (pool %d, queue %d)\n", addr, pool, queue)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "bipd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bipd: drain expired, canceled remaining jobs")
	}
	// The job drain already happened; closing idle HTTP connections is
	// quick, so give it its own short deadline rather than the possibly
	// exhausted drain budget.
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	return hs.Shutdown(closeCtx)
}

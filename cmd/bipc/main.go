// Command bipc is the front-end of the BIP textual language: it parses
// and validates a .bip file, reports the model's structure, and can run
// quick analyses (deadlock check, compositional verification).
//
// Usage:
//
//	bipc model.bip
//	bipc -verify model.bip
//	bipc -explore model.bip
package main

import (
	"flag"
	"fmt"
	"os"

	"bip/internal/dsl"
	"bip/internal/invariant"
	"bip/internal/lts"
)

func main() {
	verify := flag.Bool("verify", false, "run compositional verification")
	explore := flag.Bool("explore", false, "run explicit-state exploration")
	maxStates := flag.Int("max-states", 1<<20, "exploration bound")
	workers := flag.Int("workers", 1, "exploration workers (<0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bipc [-verify] [-explore] [-workers n] file.bip")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verify, *explore, *maxStates, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "bipc:", err)
		os.Exit(1)
	}
}

func run(path string, verify, explore bool, maxStates, workers int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sys, err := dsl.Parse(string(src))
	if err != nil {
		return fmt.Errorf("%s:%w", path, err)
	}
	fmt.Println(sys.Stats())
	for _, a := range sys.Atoms {
		fmt.Println(" ", a.String())
	}
	for _, in := range sys.Interactions {
		fmt.Println("  interaction", in.String())
	}
	for _, p := range sys.Priorities {
		fmt.Println("  priority", p.String())
	}

	if verify {
		res, err := invariant.Verify(sys, invariant.Options{})
		if err != nil {
			return err
		}
		fmt.Println(invariant.FormatResult(res))
	}
	if explore {
		l, err := lts.Explore(sys, lts.Options{MaxStates: maxStates, Workers: workers})
		if err != nil {
			return err
		}
		fmt.Printf("explored %d states, %d transitions (truncated=%v)\n",
			l.NumStates(), l.NumTransitions(), l.Truncated())
		if dls := l.Deadlocks(); len(dls) > 0 && !l.Truncated() {
			fmt.Printf("deadlock reachable via %v\n", l.PathTo(dls[0]))
		}
	}
	return nil
}

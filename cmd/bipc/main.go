// Command bipc is the front-end of the BIP textual language: it parses
// and validates a .bip file, reports the model's structure, and can run
// quick analyses — compositional verification, on-the-fly streaming
// checks, declarative property checking, or explicit-state exploration.
// It is built entirely on the public bip / bip/check / bip/prop API.
//
// Usage:
//
//	bipc model.bip
//	bipc -verify model.bip
//	bipc -check model.bip
//	bipc -prop 'always(l.n <= 10)' -prop 'after(hit, until(l.n >= 1, back))' model.bip
//	bipc -explore model.bip
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bip"
	"bip/check"
	"bip/lint"
	"bip/prop"
)

// propFlags collects repeated -prop occurrences.
type propFlags []string

func (p *propFlags) String() string { return fmt.Sprint(*p) }

func (p *propFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	verify := flag.Bool("verify", false, "run compositional verification")
	chk := flag.Bool("check", false, "run streaming on-the-fly verification (deadlock + atom invariants, early-exit)")
	explore := flag.Bool("explore", false, "run explicit-state exploration (materialized LTS)")
	maxStates := flag.Int("max-states", 0, fmt.Sprintf("exploration bound (0 = library default, %d)", check.DefaultMaxStates))
	workers := flag.Int("workers", runtime.NumCPU(), "exploration workers (<0 = GOMAXPROCS; default: all CPUs)")
	order := flag.String("order", "det", "multi-worker exploration order: det (deterministic stream) | fast (work-stealing; same verdicts, scheduling-dependent numbering)")
	reduce := flag.Bool("reduce", false, "ample-set partial-order reduction (degrades to full expansion when a property needs it; -explore gets deadlock-preserving reduction)")
	seen := flag.String("seen", "exact", "visited-state storage: exact (full keys) | compact (hash-compacted, ~12 B/state)")
	mem := flag.Int64("mem", 0, "frontier memory budget in bytes (0 = unbounded; spills to disk under -order fast)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on each analysis (0 = none); timed-out runs exit non-zero")
	lintFlag := flag.Bool("lint", false, "run static model analysis (bip/lint) before any exploration and print the diagnostics")
	werror := flag.Bool("Werror", false, "with -lint (implied): exit non-zero when lint reports any warning")
	var props propFlags
	flag.Var(&props, "prop", "textual property to check on the fly (repeatable): always/never/until/after/between/reachable/deadlockfree")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bipc [-lint [-Werror]] [-verify] [-check] [-prop p]... [-explore] [-reduce] [-workers n] [-order det|fast] [-seen exact|compact] [-mem bytes] [-timeout d] file.bip")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verify, *chk, *explore, *reduce, *lintFlag || *werror, *werror, *maxStates, *workers, *order, *seen, *mem, *timeout, props); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("timed out after %s (-timeout): %w", *timeout, err)
		}
		fmt.Fprintln(os.Stderr, "bipc:", err)
		os.Exit(1)
	}
}

// printMem reports the run's memory accounting (seen-set footprint,
// frontier high-water mark, and the compact/spill counters when the
// corresponding machinery engaged).
func printMem(rep *bip.Report) {
	fmt.Printf("  memory: seen-set %d B, frontier peak %d B", rep.SeenBytes, rep.PeakFrontierBytes)
	if rep.ExactPromotions > 0 {
		fmt.Printf(", %d exact promotions", rep.ExactPromotions)
	}
	if rep.SpilledChunks > 0 {
		fmt.Printf(", %d chunks spilled", rep.SpilledChunks)
	}
	fmt.Println()
}

// orderOptions maps the -order flag to bip exploration options.
func orderOptions(order string) ([]bip.Option, error) {
	switch order {
	case "det", "":
		return nil, nil
	case "fast":
		return []bip.Option{bip.Unordered()}, nil
	default:
		return nil, fmt.Errorf("unknown -order %q (want det or fast)", order)
	}
}

func run(path string, verify, chk, explore, reduce, lintModel, werror bool, maxStates, workers int, order, seen string, mem int64, timeout time.Duration, props []string) error {
	ordOpts, err := orderOptions(order)
	if err != nil {
		return err
	}
	if timeout > 0 {
		// One budget for the whole invocation: every analysis below
		// shares the deadline through bip.WithContext.
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		ordOpts = append(ordOpts, bip.WithContext(ctx))
	}
	if reduce {
		ordOpts = append(ordOpts, bip.Reduce())
	}
	switch seen {
	case "exact", "":
	case "compact":
		ordOpts = append(ordOpts, bip.CompactSeen())
	default:
		return fmt.Errorf("unknown -seen %q (want exact or compact)", seen)
	}
	if mem > 0 {
		ordOpts = append(ordOpts, bip.MemBudget(mem))
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sys, err := bip.Parse(string(src))
	if err != nil {
		return fmt.Errorf("%s:%w", path, err)
	}
	fmt.Println(sys.Stats())
	for _, a := range sys.Atoms {
		fmt.Println(" ", a.String())
	}
	for _, in := range sys.Interactions {
		fmt.Println("  interaction", in.String())
	}
	for _, p := range sys.Priorities {
		fmt.Println("  priority", p.String())
	}

	if lintModel {
		diags, err := bip.Lint(sys)
		if err != nil {
			return err
		}
		warnings := 0
		for _, d := range diags {
			fmt.Println(d.Render(path))
			if d.Severity != lint.SeverityInfo {
				warnings++
			}
		}
		if len(diags) == 0 {
			fmt.Printf("lint: %s is clean\n", path)
		}
		if werror && warnings > 0 {
			return fmt.Errorf("%s: lint reported %d warning(s) (-Werror)", path, warnings)
		}
	}
	if verify {
		res, err := check.Compositional(sys, check.CompositionalOptions{})
		if err != nil {
			return err
		}
		fmt.Println(check.FormatCompositional(res))
	}
	if chk {
		opts := append([]bip.Option{
			bip.Deadlock(), bip.AtomInvariants(),
			bip.MaxStates(maxStates), bip.Workers(workers)}, ordOpts...)
		rep, err := bip.Verify(sys, opts...)
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
		printMem(rep)
	}
	if len(props) > 0 {
		// All requested properties ride one exploration; compile errors
		// (unknown components, locations, labels) surface before it runs.
		opts := append([]bip.Option{bip.MaxStates(maxStates), bip.Workers(workers)}, ordOpts...)
		var parsed []prop.Prop
		for _, src := range props {
			p, err := bip.ParseProp(src)
			if err != nil {
				return fmt.Errorf("-prop %q: %w", src, err)
			}
			parsed = append(parsed, p)
			opts = append(opts, bip.Prop(p))
		}
		rep, err := bip.Verify(sys, opts...)
		if err != nil {
			return err
		}
		for i, p := range rep.Properties {
			fmt.Printf("  property %-12s %s\n", p.Name+":", parsed[i].String())
		}
		fmt.Println(rep.String())
		printMem(rep)
		if !rep.OK {
			return fmt.Errorf("%s: a property is violated or inconclusive", sys.Name)
		}
	}
	if explore {
		opts := append([]bip.Option{bip.MaxStates(maxStates), bip.Workers(workers)}, ordOpts...)
		l, err := bip.Explore(sys, opts...)
		if err != nil {
			return err
		}
		mode := ""
		if reduce {
			mode = ", deadlock-preserving reduction"
		}
		fmt.Printf("explored %d states, %d transitions (truncated=%v%s)\n",
			l.NumStates(), l.NumTransitions(), l.Truncated(), mode)
		if dls := l.Deadlocks(); len(dls) > 0 && !l.Truncated() {
			fmt.Printf("deadlock reachable via %v\n", l.PathTo(dls[0]))
		}
	}
	return nil
}

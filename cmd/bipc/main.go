// Command bipc is the front-end of the BIP textual language: it parses
// and validates a .bip file, reports the model's structure, and can run
// quick analyses — compositional verification, on-the-fly streaming
// checks, or explicit-state exploration. It is built entirely on the
// public bip / bip/check API.
//
// Usage:
//
//	bipc model.bip
//	bipc -verify model.bip
//	bipc -check model.bip
//	bipc -explore model.bip
package main

import (
	"flag"
	"fmt"
	"os"

	"bip"
	"bip/check"
)

func main() {
	verify := flag.Bool("verify", false, "run compositional verification")
	chk := flag.Bool("check", false, "run streaming on-the-fly verification (deadlock + atom invariants, early-exit)")
	explore := flag.Bool("explore", false, "run explicit-state exploration (materialized LTS)")
	maxStates := flag.Int("max-states", 0, fmt.Sprintf("exploration bound (0 = library default, %d)", check.DefaultMaxStates))
	workers := flag.Int("workers", 1, "exploration workers (<0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bipc [-verify] [-check] [-explore] [-workers n] file.bip")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verify, *chk, *explore, *maxStates, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "bipc:", err)
		os.Exit(1)
	}
}

func run(path string, verify, chk, explore bool, maxStates, workers int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sys, err := bip.Parse(string(src))
	if err != nil {
		return fmt.Errorf("%s:%w", path, err)
	}
	fmt.Println(sys.Stats())
	for _, a := range sys.Atoms {
		fmt.Println(" ", a.String())
	}
	for _, in := range sys.Interactions {
		fmt.Println("  interaction", in.String())
	}
	for _, p := range sys.Priorities {
		fmt.Println("  priority", p.String())
	}

	if verify {
		res, err := check.Compositional(sys, check.CompositionalOptions{})
		if err != nil {
			return err
		}
		fmt.Println(check.FormatCompositional(res))
	}
	if chk {
		rep, err := bip.Verify(sys,
			bip.Deadlock(), bip.AtomInvariants(),
			bip.MaxStates(maxStates), bip.Workers(workers))
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
	}
	if explore {
		l, err := bip.Explore(sys, bip.MaxStates(maxStates), bip.Workers(workers))
		if err != nil {
			return err
		}
		fmt.Printf("explored %d states, %d transitions (truncated=%v)\n",
			l.NumStates(), l.NumTransitions(), l.Truncated())
		if dls := l.Deadlocks(); len(dls) > 0 && !l.Truncated() {
			fmt.Printf("deadlock reachable via %v\n", l.PathTo(dls[0]))
		}
	}
	return nil
}

// Command bipbench regenerates the paper-reproduction experiments
// (E1–E14 of DESIGN.md, plus the E15 parallel-exploration scaling table,
// the E16 streaming-memory comparison, the E17 property-algebra
// checking costs, the E18 work-stealing exploration sweep, the E19
// partial-order-reduction table, the E20 seen-set-compaction /
// frontier-spill memory table, the E21 bipd service load table, the
// E22 static-analysis cost table and the E23 fault-tolerance
// crash-recovery table) and prints them;
// EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	bipbench            # run everything
//	bipbench -e e1      # run one experiment
//	bipbench -quick     # reduced sizes (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bip/bench"
)

func main() {
	exp := flag.String("e", "all", "experiment id (e1..e23) or all")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	flag.Parse()
	if err := run(*exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bipbench:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	type driver struct {
		id string
		f  func() (*bench.Table, error)
	}
	rings := 5
	enginePairs := []int{1, 2, 4, 8}
	engineSteps, engineWork := 2000, 50000
	crpSizes := []int{3, 5, 8}
	crpCommits := 200
	depths := []int{1, 2, 3, 4}
	exploreWorkers := []int{1, 2, 4, 8}
	memRings := 5
	deepDepth := int64(20000)
	gridN, redRings, redRingSize, redPhils := 9, 4, 4, 8
	memGridN, memGridK, memWorkers := 7, 5, 4
	svcJobs, svcPool, svcGridN, svcGridK := 16, 4, 6, 5
	ftJobs, ftPool, ftGridN, ftGridK := 12, 2, 6, 5
	lintPhils, lintGridN, lintGridK := []int{4, 6, 8}, 6, 5
	lintAstroN, lintAstroK := 12, 1<<20
	if quick {
		rings = 4
		enginePairs = []int{1, 2}
		engineSteps, engineWork = 200, 5000
		crpSizes = []int{3, 4}
		crpCommits = 50
		depths = []int{1, 2}
		exploreWorkers = []int{1, 4}
		memRings = 4
		deepDepth = 4000
		gridN, redRings, redRingSize, redPhils = 6, 3, 3, 6
		memGridN, memGridK = 5, 4
		svcJobs, svcPool, svcGridN, svcGridK = 8, 2, 4, 4
		ftJobs, ftPool, ftGridN, ftGridK = 8, 2, 4, 4
		lintPhils, lintGridN, lintGridK = []int{4}, 5, 4
	}
	drivers := []driver{
		{"e1", func() (*bench.Table, error) { return bench.E1DFinderVsMonolithic(rings) }},
		{"e2", bench.E2Glue},
		{"e3", func() (*bench.Table, error) { return bench.E3Lustre(500) }},
		{"e4", func() (*bench.Table, error) { return bench.E4UnitDelay(8) }},
		{"e5", bench.E5Refinement},
		{"e6", bench.E6Stability},
		{"e7", func() (*bench.Table, error) { return bench.E7CRP(crpSizes, crpCommits) }},
		{"e8", func() (*bench.Table, error) { return bench.E8Engines(enginePairs, engineSteps, engineWork) }},
		{"e9", func() (*bench.Table, error) { return bench.E9Arch([]int{2, 3, 4, 5}) }},
		{"e10", bench.E10Anomaly},
		{"e11", bench.E11Invariants},
		{"e12", func() (*bench.Table, error) { return bench.E12Incremental(7) }},
		{"e13", func() (*bench.Table, error) { return bench.E13Flattening(depths) }},
		{"e14", bench.E14Elevator},
		{"e15", func() (*bench.Table, error) { return bench.E15ExploreScaling(exploreWorkers) }},
		{"e16", func() (*bench.Table, error) { return bench.E16StreamingMemory(memRings) }},
		{"e17", func() (*bench.Table, error) { return bench.E17PropertyCheck(memRings) }},
		{"e18", func() (*bench.Table, error) { return bench.E18WorkStealing(exploreWorkers, deepDepth) }},
		{"e19", func() (*bench.Table, error) { return bench.E19Reduction(gridN, redRings, redRingSize, redPhils) }},
		{"e20", func() (*bench.Table, error) { return bench.E20Memory(memGridN, memGridK, memWorkers, 8) }},
		{"e21", func() (*bench.Table, error) { return bench.E21Service(svcJobs, svcPool, svcGridN, svcGridK) }},
		{"e22", func() (*bench.Table, error) {
			return bench.E22Lint(lintPhils, lintGridN, lintGridK, lintAstroN, lintAstroK)
		}},
		{"e23", func() (*bench.Table, error) {
			return bench.E23FaultTolerance(ftJobs, ftPool, ftGridN, ftGridK, 30*time.Second)
		}},
	}
	want := strings.ToLower(exp)
	found := false
	for _, d := range drivers {
		if want != "all" && want != d.id {
			continue
		}
		found = true
		t, err := d.f()
		if err != nil {
			return fmt.Errorf("%s: %w", d.id, err)
		}
		fmt.Println(t.String())
	}
	if !found {
		return fmt.Errorf("unknown experiment %q (want e1..e23 or all)", exp)
	}
	return nil
}

// Command bipsim executes a BIP model — a built-in benchmark or a .bip
// source file — on the single-threaded or multi-threaded engine and
// prints the interaction trace. It is built entirely on the public
// bip / bip/models API.
//
// Usage:
//
//	bipsim -model philosophers -n 4 -steps 20 -seed 7
//	bipsim -f model.bip -steps 50
//	bipsim -model prodcons -mt -steps 100
package main

import (
	"flag"
	"fmt"
	"os"

	"bip"
	"bip/models"
)

func main() {
	model := flag.String("model", "", "built-in model name (see dfinder -h)")
	file := flag.String("f", "", "BIP source file")
	n := flag.Int("n", 4, "size parameter")
	steps := flag.Int("steps", 20, "maximum steps")
	seed := flag.Int64("seed", 1, "scheduler seed (random scheduler)")
	first := flag.Bool("first", false, "use the deterministic first-enabled scheduler")
	mt := flag.Bool("mt", false, "use the multi-threaded engine")
	flag.Parse()
	if err := run(*model, *file, *n, *steps, *seed, *first, *mt); err != nil {
		fmt.Fprintln(os.Stderr, "bipsim:", err)
		os.Exit(1)
	}
}

func run(model, file string, n, steps int, seed int64, first, mt bool) error {
	var sys *bip.System
	var err error
	switch {
	case file != "":
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return rerr
		}
		sys, err = bip.Parse(string(src))
	case model != "":
		sys, err = builtin(model, n)
	default:
		return fmt.Errorf("need -model or -f")
	}
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())

	if mt {
		res, err := bip.RunMT(sys, bip.MTOptions{MaxSteps: steps})
		if err != nil {
			return err
		}
		for i, l := range res.Labels {
			fmt.Printf("%4d  %s\n", i+1, l)
		}
		if res.Deadlocked {
			fmt.Println("-- deadlock --")
		}
		if _, err := bip.Replay(sys, res.Moves); err != nil {
			return fmt.Errorf("MT linearization invalid: %w", err)
		}
		fmt.Println("MT linearization validated against reference semantics")
		return nil
	}

	var sched bip.Scheduler = bip.NewRandomScheduler(seed)
	if first {
		sched = bip.FirstScheduler{}
	}
	res, err := bip.Run(sys, bip.RunOptions{
		MaxSteps:  steps,
		Scheduler: sched,
	})
	if err != nil {
		return err
	}
	for i, l := range res.Labels {
		fmt.Printf("%4d  %s\n", i+1, l)
	}
	if res.Deadlocked {
		fmt.Println("-- deadlock --")
	}
	return nil
}

func builtin(model string, n int) (*bip.System, error) {
	switch model {
	case "philosophers":
		return models.Philosophers(n)
	case "philosophers2p":
		return models.PhilosophersDeadlocking(n)
	case "tokenring":
		return models.TokenRing(n)
	case "gasstation":
		return models.GasStation(n, 2)
	case "elevator":
		return models.Elevator(n)
	case "prodcons":
		return models.ProducerConsumer(int64(n))
	case "temperature":
		return models.Temperature(0, int64(n), 2)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

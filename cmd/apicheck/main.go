// Command apicheck enforces the repo's API-visibility contract using
// real import graphs instead of text matching:
//
//   - cmd/ and examples/ may use only the public surface — any import
//     of bip/internal/... is a violation (aliased and dot imports
//     included, which a grep for the literal string would miss; a
//     string constant mentioning "bip/internal", which a grep would
//     falsely flag, is fine).
//   - prop/ tests must be black-box: package prop_test, no
//     bip/internal/... imports.
//
// It prints each violation as file:line:col and exits non-zero if any
// exist. Run from the repository root (make apicheck does).
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// internalPrefix marks the packages hidden from external consumers.
const internalPrefix = "bip/internal"

func main() {
	var violations []string

	for _, root := range []string{"cmd", "examples"} {
		violations = append(violations, checkTree(root)...)
	}
	violations = append(violations, checkPropTests()...)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "apicheck: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("apicheck: cmd/ and examples/ use only the public API")
	fmt.Println("apicheck: prop tests are black-box over the public API")
}

// checkTree walks every .go file under root and flags imports of the
// internal tree.
func checkTree(root string) []string {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		out = append(out, checkFile(path, "")...)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	return out
}

// checkPropTests flags prop test files that are not package prop_test
// or that import the internal tree.
func checkPropTests() []string {
	paths, err := filepath.Glob("prop/*_test.go")
	if err != nil {
		fatal(err)
	}
	var out []string
	for _, path := range paths {
		out = append(out, checkFile(path, "prop_test")...)
	}
	return out
}

// checkFile parses one file's imports and returns its violations. A
// non-empty wantPkg additionally pins the package clause.
func checkFile(path, wantPkg string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
	if err != nil {
		fatal(err)
	}
	var out []string
	if wantPkg != "" && f.Name.Name != wantPkg {
		out = append(out, fmt.Sprintf("%s: package %s, want %s (tests here must be black-box)",
			fset.Position(f.Name.Pos()), f.Name.Name, wantPkg))
	}
	for _, imp := range f.Imports {
		ip, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if ip == internalPrefix || strings.HasPrefix(ip, internalPrefix+"/") {
			out = append(out, fmt.Sprintf("%s: import of %s outside the internal tree",
				fset.Position(imp.Pos()), ip))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apicheck:", err)
	os.Exit(1)
}

// Command dfinder runs compositional deadlock-freedom verification
// (component invariants + trap-based interaction invariants + DIS
// satisfiability) on the built-in benchmark models, optionally comparing
// against the monolithic checker — which now streams: the explicit-state
// side early-exits on the first deadlock instead of materializing the
// state space.
//
// Usage:
//
//	dfinder -model philosophers -n 8
//	dfinder -model gasstation -n 3 -m 4
//	dfinder -model philosophers2p -n 4 -mono
//	dfinder -model philosophers -n 4 -prop 'never(at(phil0, eating) & at(phil1, eating))'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bip"
	"bip/check"
	"bip/lint"
	"bip/models"
)

func main() {
	model := flag.String("model", "philosophers", "philosophers | philosophers2p | tokenring | gasstation | elevator | prodcons")
	n := flag.Int("n", 4, "size parameter (philosophers/ring stations/pumps/floors)")
	m := flag.Int("m", 2, "second size parameter (gas station customers)")
	mono := flag.Bool("mono", false, "also run the monolithic streaming deadlock checker")
	traps := flag.Int("traps", 0, "max interaction invariants (0 = auto)")
	workers := flag.Int("workers", runtime.NumCPU(), "monolithic exploration workers (<0 = GOMAXPROCS; default: all CPUs)")
	order := flag.String("order", "det", "multi-worker exploration order: det (deterministic stream) | fast (work-stealing)")
	maxStates := flag.Int("max-states", 0, "exploration bound for -prop/-mono (0 = library default; data-carrying models are unbounded)")
	reduce := flag.Bool("reduce", false, "ample-set partial-order reduction for the -prop/-mono explorations")
	seen := flag.String("seen", "exact", "visited-state storage for -prop/-mono: exact (full keys) | compact (hash-compacted, ~12 B/state)")
	mem := flag.Int64("mem", 0, "frontier memory budget in bytes for -prop/-mono (0 = unbounded; spills to disk under -order fast)")
	timeout := flag.Duration("timeout", 0, "wall-clock bound on the -prop/-mono explorations (0 = none); timed-out runs exit non-zero")
	lintFlag := flag.Bool("lint", false, "run static model analysis (bip/lint) on the built model before any verification")
	werror := flag.Bool("Werror", false, "with -lint (implied): exit non-zero when lint reports any warning")
	var props propFlags
	flag.Var(&props, "prop", "textual property to check on the built model (repeatable)")
	flag.Parse()
	if err := run(*model, *n, *m, *mono, *reduce, *lintFlag || *werror, *werror, *traps, *workers, *maxStates, *order, *seen, *mem, *timeout, props); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("timed out after %s (-timeout): %w", *timeout, err)
		}
		fmt.Fprintln(os.Stderr, "dfinder:", err)
		os.Exit(1)
	}
}

// propFlags collects repeated -prop occurrences.
type propFlags []string

func (p *propFlags) String() string { return fmt.Sprint(*p) }

func (p *propFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func buildModel(model string, n, m int) (*bip.System, error) {
	switch model {
	case "philosophers":
		return models.Philosophers(n)
	case "philosophers2p":
		return models.PhilosophersDeadlocking(n)
	case "tokenring":
		return models.TokenRing(n)
	case "gasstation":
		return models.GasStation(n, m)
	case "elevator":
		return models.Elevator(n)
	case "prodcons":
		return models.ProducerConsumer(int64(n))
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func run(model string, n, m int, mono, reduce, lintModel, werror bool, maxTraps, workers, maxStates int, order, seen string, mem int64, timeout time.Duration, props []string) error {
	var ordOpts []bip.Option
	if timeout > 0 {
		// One budget shared by every exploration this invocation runs.
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		ordOpts = append(ordOpts, bip.WithContext(ctx))
	}
	switch order {
	case "det", "":
	case "fast":
		ordOpts = append(ordOpts, bip.Unordered())
	default:
		return fmt.Errorf("unknown -order %q (want det or fast)", order)
	}
	if reduce {
		ordOpts = append(ordOpts, bip.Reduce())
	}
	switch seen {
	case "exact", "":
	case "compact":
		ordOpts = append(ordOpts, bip.CompactSeen())
	default:
		return fmt.Errorf("unknown -seen %q (want exact or compact)", seen)
	}
	if mem > 0 {
		ordOpts = append(ordOpts, bip.MemBudget(mem))
	}
	sys, err := buildModel(model, n, m)
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())

	if lintModel {
		// Built models carry no source positions; diagnostics render
		// without line:col.
		diags, err := bip.Lint(sys)
		if err != nil {
			return err
		}
		warnings := 0
		for _, d := range diags {
			fmt.Println("lint:", d)
			if d.Severity != lint.SeverityInfo {
				warnings++
			}
		}
		if len(diags) == 0 {
			fmt.Println("lint: model is clean")
		}
		if werror && warnings > 0 {
			return fmt.Errorf("%s: lint reported %d warning(s) (-Werror)", model, warnings)
		}
	}

	if len(props) > 0 {
		opts := append([]bip.Option{bip.Workers(workers), bip.MaxStates(maxStates)}, ordOpts...)
		for _, src := range props {
			p, err := bip.ParseProp(src)
			if err != nil {
				return fmt.Errorf("-prop %q: %w", src, err)
			}
			opts = append(opts, bip.Prop(p))
		}
		rep, err := bip.Verify(sys, opts...)
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
	}

	t0 := time.Now()
	res, err := check.Compositional(sys, check.CompositionalOptions{MaxTraps: maxTraps})
	if err != nil {
		return err
	}
	fmt.Printf("compositional (%.2fms): %s\n",
		float64(time.Since(t0).Microseconds())/1000, check.FormatCompositional(res))

	if !mono {
		return nil
	}
	ctl, err := models.ControlOnly(sys)
	if err != nil {
		return err
	}
	t1 := time.Now()
	rep, err := bip.Verify(ctl, append([]bip.Option{bip.Deadlock(), bip.Workers(workers), bip.MaxStates(maxStates)}, ordOpts...)...)
	if err != nil {
		return err
	}
	dl, _ := rep.Property("deadlock")
	verdict := "DEADLOCK-FREE"
	switch {
	case dl.Violated:
		verdict = fmt.Sprintf("DEADLOCK after %v", dl.Path)
	case !dl.Conclusive:
		verdict = fmt.Sprintf("undecided (bound hit after %d states)", rep.States)
	}
	reduced := ""
	if rep.Reduced {
		reduced = fmt.Sprintf(" (reduced: %d ample, %d moves pruned, %d proviso fallbacks)",
			rep.AmpleStates, rep.PrunedMoves, rep.ProvisoFallbacks)
	}
	memLine := fmt.Sprintf(" [seen-set %d B, frontier peak %d B", rep.SeenBytes, rep.PeakFrontierBytes)
	if rep.SpilledChunks > 0 {
		memLine += fmt.Sprintf(", %d chunks spilled", rep.SpilledChunks)
	}
	memLine += "]"
	fmt.Printf("monolithic   (%.2fms): %d states, %d transitions streamed%s%s — %s\n",
		float64(time.Since(t1).Microseconds())/1000, rep.States, rep.Transitions, reduced, memLine, verdict)
	return nil
}

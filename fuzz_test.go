package bip_test

import (
	"testing"

	"bip"
)

// The parser fuzz targets pin the service-boundary contract bipd
// depends on: arbitrary bytes submitted as a model or property must
// come back as an error value, never a panic — a panicking parser
// would let one malformed HTTP request kill every job on the server.
// The seed corpus runs under plain `go test`, so CI exercises the
// malformed shapes below even without a fuzzing budget.

func FuzzParse(f *testing.F) {
	seeds := []string{
		// Valid: the pingpong rally, a unary connector, a guarded loop.
		"system pair\natom Ping {\n  var n: int = 0\n  port hit(n), back\n  location a, b\n  init a\n  from a to b on hit when n < 10 do n := n + 1\n  from b to a on back\n}\ninstance l : Ping\ninstance r : Ping\nconnector hit = l.hit + r.hit\nconnector back = l.back + r.back\npriority back < hit\n",
		"system g\natom C {\n  var c: int = 0\n  port inc\n  location s\n  init s\n  from s to s on inc do c := (c + 1) % 4\n}\ninstance t0 : C\nconnector i0 = t0.inc\n",
		// Malformed: every truncation and confusion a client can send.
		"",
		"system",
		"system (",
		"system x\natom A {",
		"system x\natom A { var n: int = }",
		"system x\natom A { port }",
		"system x\natom A { location a\n init b }",
		"system x\natom A { location a\n init a\n from a to b on p }",
		"system x\ninstance i :",
		"system x\ninstance i : Nope",
		"system x\nconnector c = a.p +",
		"system x\npriority lo <",
		"system x\natom A { location a\n init a }\ninstance i : A\nconnector c = i.nope",
		"atom A { }",
		"system x system y",
		"system x\natom A { location a\n init a\n from a to a on p when do q }",
		"system \x00\xff\xfe",
		"system x\natom A { var n: int = 0\n location a\n init a\n from a to a on p do n := ((((((((n",
		"system x // no body",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := bip.Parse(src)
		if err == nil && sys == nil {
			t.Fatalf("Parse(%q) returned neither a system nor an error", src)
		}
	})
}

func FuzzParseProp(f *testing.F) {
	seeds := []string{
		// Valid forms across the textual property algebra.
		"deadlockfree",
		"always(l.n <= 10)",
		"never(at(phil0, eating) & at(phil1, eating))",
		"reachable(l.n >= 1)",
		"after(hit, until(l.n >= 1, back))",
		"always(t0.c >= 0 | t1.c < 3)",
		"never(!(a.x = 1))",
		// Malformed.
		"",
		"always",
		"always(",
		"always()",
		"alwayss(((",
		"until(a.b)",
		"after(hit",
		"at(",
		"at(x)",
		"never(at(a, b) &)",
		"always(l.n <=)",
		"always(l.n <= 10))",
		"reachable(1 +* 2)",
		"\x00always(x.y = 0)",
		"always((((((((((((((((l.n",
		"deadlockfree extra",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := bip.ParseProp(src)
		if err == nil && p == nil {
			t.Fatalf("ParseProp(%q) returned neither a property nor an error", src)
		}
	})
}

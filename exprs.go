package bip

import "bip/internal/expr"

// Expression and statement constructors for guards, actions and
// invariants, re-exported from the expression language. Variables are
// referenced by name: bare ("x") inside an atom, qualified ("comp.x")
// inside interaction guards/actions and priority conditions.
type (
	// Expr is a side-effect-free expression over integer and boolean
	// variables.
	Expr = expr.Expr
	// Stmt is an imperative action: assignments, sequences,
	// conditionals, bounded repetition.
	Stmt = expr.Stmt
	// Value is a runtime value (integer or boolean).
	Value = expr.Value
)

// I is an integer literal.
func I(i int64) Expr { return expr.I(i) }

// B is a boolean literal.
func B(b bool) Expr { return expr.B(b) }

// V references a variable.
func V(name string) Expr { return expr.V(name) }

// Arithmetic.
func Add(x, y Expr) Expr { return expr.Add(x, y) }
func Sub(x, y Expr) Expr { return expr.Sub(x, y) }
func Mul(x, y Expr) Expr { return expr.Mul(x, y) }
func Div(x, y Expr) Expr { return expr.Div(x, y) }
func Mod(x, y Expr) Expr { return expr.Mod(x, y) }
func Neg(x Expr) Expr    { return expr.Neg(x) }

// Comparisons.
func Eq(x, y Expr) Expr { return expr.Eq(x, y) }
func Ne(x, y Expr) Expr { return expr.Ne(x, y) }
func Lt(x, y Expr) Expr { return expr.Lt(x, y) }
func Le(x, y Expr) Expr { return expr.Le(x, y) }
func Gt(x, y Expr) Expr { return expr.Gt(x, y) }
func Ge(x, y Expr) Expr { return expr.Ge(x, y) }

// Boolean connectives.
func And(x, y Expr) Expr { return expr.And(x, y) }
func Or(x, y Expr) Expr  { return expr.Or(x, y) }
func Not(x Expr) Expr    { return expr.Not(x) }

// If is the conditional expression (x ? then : else).
func If(cond, then, els Expr) Expr { return expr.If(cond, then, els) }

// Set assigns an expression to a variable.
func Set(name string, rhs Expr) Stmt { return expr.Set(name, rhs) }

// Do sequences statements.
func Do(stmts ...Stmt) Stmt { return expr.Do(stmts...) }

// When is the conditional statement.
func When(cond Expr, then, els Stmt) Stmt { return expr.When(cond, then, els) }

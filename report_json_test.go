package bip_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"bip"
	"bip/models"
)

// TestReportJSONRoundTrip pins the wire shape bipd serves and caches:
// a fully-populated Report (every field non-zero) survives
// marshal→unmarshal bit-identically, and the JSON uses the stable
// snake_case keys external tooling depends on.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := bip.Report{
		Properties: []bip.Property{
			{
				Name:       "deadlock",
				Violated:   true,
				State:      42,
				Path:       []string{"go", "stop", "go"},
				Conclusive: true,
			},
			{Name: "always#2", Conclusive: false},
		},
		States:              625,
		Transitions:         2000,
		Truncated:           true,
		Reduced:             true,
		AmpleStates:         100,
		PrunedMoves:         50,
		ProvisoFallbacks:    3,
		SeenBytes:           1 << 20,
		PeakFrontierBytes:   1 << 16,
		ExactPromotions:     7,
		SpilledChunks:       2,
		ReductionDegradedBy: "invariant",
		OK:                  false,
	}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	var back bip.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", back, rep)
	}
	for _, key := range []string{
		`"properties"`, `"name"`, `"violated"`, `"state"`, `"path"`,
		`"conclusive"`, `"states"`, `"transitions"`, `"truncated"`,
		`"reduced"`, `"ample_states"`, `"pruned_moves"`,
		`"proviso_fallbacks"`, `"seen_bytes"`, `"peak_frontier_bytes"`,
		`"exact_promotions"`, `"spilled_chunks"`,
		`"reduction_degraded_by"`, `"ok"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("wire key %s missing from %s", key, data)
		}
	}
}

// TestReductionDegradedBySurfaced pins that a Reduce() run forced back
// to full expansion by an opaque property names the culprit in the
// report instead of degrading silently — and that a reduction-friendly
// run leaves the field empty.
func TestReductionDegradedBySurfaced(t *testing.T) {
	sys, err := models.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bip.Verify(sys, bip.Reduce(),
		bip.Invariant(func(bip.State) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reduced {
		t.Fatal("opaque invariant must degrade reduction to full expansion")
	}
	if rep.ReductionDegradedBy != "invariant" {
		t.Fatalf("ReductionDegradedBy = %q, want %q", rep.ReductionDegradedBy, "invariant")
	}
	rep, err = bip.Verify(sys, bip.Reduce(), bip.Deadlock())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reduced || rep.ReductionDegradedBy != "" {
		t.Fatalf("deadlock check should reduce cleanly: reduced=%v degradedBy=%q",
			rep.Reduced, rep.ReductionDegradedBy)
	}
}

// TestStatsJSONRoundTrip does the same for the progress snapshot shape
// streamed over SSE.
func TestStatsJSONRoundTrip(t *testing.T) {
	st := bip.Stats{
		States:              1000,
		Transitions:         4000,
		PeakFrontier:        128,
		PeakFrontierBytes:   4096,
		SeenBytes:           1 << 18,
		ExactPromotions:     5,
		SpilledChunks:       1,
		Truncated:           true,
		Stopped:             true,
		AmpleStates:         12,
		PrunedMoves:         34,
		ProvisoFallbacks:    1,
		ReductionDegradedBy: "always",
	}
	data, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	var back bip.Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip changed the stats:\n got %+v\nwant %+v", back, st)
	}
}

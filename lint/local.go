package lint

import (
	"fmt"

	"bip/internal/behavior"
)

// Per-atom control-graph passes: BIP001 (unreachable location), BIP002
// (dead transition), BIP003 (statically false guard).

// reachableLocations runs BFS over the atom's control graph from the
// initial location, following transitions whose guards are not
// statically false. Because it ignores data and interaction
// availability, the result over-approximates the locations the atom can
// occupy in any global run — so "unreachable" here is definitive.
func reachableLocations(a *behavior.Atom) []bool {
	reach := make([]bool, len(a.Locations))
	init, ok := a.LocationIndex(a.Initial)
	if !ok {
		return reach
	}
	// succ[li] — successor locations via viable transitions.
	succ := make([][]int, len(a.Locations))
	for _, t := range a.Transitions {
		if staticallyFalse(t.Guard) {
			continue
		}
		fi, okf := a.LocationIndex(t.From)
		ti, okt := a.LocationIndex(t.To)
		if okf && okt {
			succ[fi] = append(succ[fi], ti)
		}
	}
	queue := []int{init}
	reach[init] = true
	for len(queue) > 0 {
		li := queue[0]
		queue = queue[1:]
		for _, ni := range succ[li] {
			if !reach[ni] {
				reach[ni] = true
				queue = append(queue, ni)
			}
		}
	}
	return reach
}

// transItem names a transition for diagnostics.
func transItem(t behavior.Transition) string {
	return fmt.Sprintf("%s->%s on %s", t.From, t.To, t.Port)
}

// posOf fills Line/Col from a behavior position when known.
func withPos(d Diagnostic, p behavior.Pos) Diagnostic {
	if p.Known() {
		d.Line, d.Col = p.Line, p.Col
	}
	return d
}

func (a *analysis) lintAtoms() []Diagnostic {
	var out []Diagnostic
	for ai, atom := range a.sys.Atoms {
		reach := a.reach[ai]
		for li, name := range atom.Locations {
			if reach[li] {
				continue
			}
			var pos behavior.Pos
			if li < len(atom.LocPos) {
				pos = atom.LocPos[li]
			}
			out = append(out, withPos(Diagnostic{
				Code:     CodeUnreachableLocation,
				Severity: SeverityWarning,
				Atom:     atom.Name,
				Item:     name,
				Message: fmt.Sprintf("atom %s: location %q is unreachable from initial location %q",
					atom.Name, name, atom.Initial),
			}, pos))
		}
		for _, t := range atom.Transitions {
			fi, ok := atom.LocationIndex(t.From)
			if ok && !reach[fi] {
				out = append(out, withPos(Diagnostic{
					Code:     CodeDeadTransition,
					Severity: SeverityWarning,
					Atom:     atom.Name,
					Item:     transItem(t),
					Message: fmt.Sprintf("atom %s: transition %s is dead: source location %q is unreachable",
						atom.Name, transItem(t), t.From),
				}, t.Pos))
				continue // the unreachable source subsumes a false guard
			}
			if staticallyFalse(t.Guard) {
				out = append(out, withPos(Diagnostic{
					Code:     CodeFalseGuard,
					Severity: SeverityWarning,
					Atom:     atom.Name,
					Item:     transItem(t),
					Message: fmt.Sprintf("atom %s: transition %s can never fire: guard %s is statically false",
						atom.Name, transItem(t), t.Guard),
				}, t.Pos))
			}
		}
	}
	return out
}

// lintConnectivity reports atoms no interaction touches (BIP005) and,
// for connected atoms, ports no interaction binds (BIP004). An
// untouched atom suppresses its per-port findings — one diagnostic
// states the stronger fact.
func (a *analysis) lintConnectivity() []Diagnostic {
	sys := a.sys
	bound := make([]map[string]bool, len(sys.Atoms))
	for i := range bound {
		bound[i] = make(map[string]bool)
	}
	for ii, in := range sys.Interactions {
		for pi, pr := range in.Ports {
			bound[sys.PortAtoms(ii)[pi]][pr.Port] = true
		}
	}
	var out []Diagnostic
	for ai, atom := range sys.Atoms {
		if len(sys.IncidentTo(ai)) == 0 {
			out = append(out, withPos(Diagnostic{
				Code:     CodeUntouchedAtom,
				Severity: SeverityWarning,
				Atom:     atom.Name,
				Message: fmt.Sprintf("atom %s participates in no interaction: it can never move",
					atom.Name),
			}, atom.Pos))
			continue
		}
		for _, p := range atom.Ports {
			if bound[ai][p.Name] {
				continue
			}
			out = append(out, withPos(Diagnostic{
				Code:     CodeUnboundPort,
				Severity: SeverityWarning,
				Atom:     atom.Name,
				Item:     p.Name,
				Message: fmt.Sprintf("atom %s: port %q is bound to no interaction: transitions on it can never fire",
					atom.Name, p.Name),
			}, p.Pos))
		}
	}
	return out
}

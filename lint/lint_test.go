// Black-box tests of the static analyzer over a seeded-defect corpus:
// every diagnostic code has a minimal model in testdata/ that triggers
// it, with the rendered output pinned in a .golden file (refresh with
// go test ./lint -update). The zoo and the shipped examples are
// asserted warning-free — the analyzer's no-false-positives contract.
package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bip"
	"bip/lint"
	"bip/models"
)

var update = flag.Bool("update", false, "rewrite the .golden files")

// corpus parses every testdata model and returns name → system.
func corpus(t *testing.T) map[string]*bip.System {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.bip"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("empty corpus")
	}
	out := make(map[string]*bip.System, len(paths))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := bip.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out[filepath.Base(path)] = sys
	}
	return out
}

// TestGoldenCorpus pins the exact rendered diagnostics for each seeded
// defect, and that the code named in the filename (bipNNN_*.bip) is
// among them with a source position — the span plumbing from the DSL
// through behavior and core to the diagnostic.
func TestGoldenCorpus(t *testing.T) {
	for name, sys := range corpus(t) {
		t.Run(name, func(t *testing.T) {
			diags, err := lint.Analyze(sys)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.Render(name))
				b.WriteByte('\n')
			}
			golden := filepath.Join("testdata", strings.TrimSuffix(name, ".bip")+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if b.String() != string(want) {
				t.Errorf("diagnostics changed (run with -update to accept):\n got:\n%s\nwant:\n%s", b.String(), want)
			}

			// bipNNN from the filename is the code this model seeds.
			code := "BIP" + name[3:6]
			found := false
			for _, d := range diags {
				if d.Code != code {
					continue
				}
				found = true
				// Reduction explainability (BIP011) is a whole-model
				// fact with no single source span; everything else must
				// carry the defect's position.
				if code != lint.CodeReduction && d.Line == 0 {
					t.Errorf("%s carries no source position: %+v", code, d)
				}
			}
			if !found {
				t.Errorf("seeded defect %s not reported; got %+v", code, diags)
			}
		})
	}
}

// TestAnalyzeDeterministic: same system in, same diagnostics out —
// byte-for-byte, across repeated runs (ordering comes from model
// declaration order, never map iteration).
func TestAnalyzeDeterministic(t *testing.T) {
	for name, sys := range corpus(t) {
		first, err := lint.Analyze(sys)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			again, err := lint.Analyze(sys)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s: run %d diverged:\n got %+v\nwant %+v", name, i, again, first)
			}
		}
	}
}

// TestZooClean: the model zoo is the no-false-positives fixture — every
// shipped model lints without warnings (informational findings such as
// reduction explainability are expected and allowed). UnsafeElevator is
// the deliberate exception: it drops two port bindings by design, and
// lint must say exactly that.
func TestZooClean(t *testing.T) {
	zoo := map[string]func() (*bip.System, error){
		"philosophers":    func() (*bip.System, error) { return models.Philosophers(4) },
		"philosophers-dl": func() (*bip.System, error) { return models.PhilosophersDeadlocking(4) },
		"tokenring":       func() (*bip.System, error) { return models.TokenRing(5) },
		"gasstation":      func() (*bip.System, error) { return models.GasStation(2, 3) },
		"elevator":        func() (*bip.System, error) { return models.Elevator(4) },
		"prodcons":        func() (*bip.System, error) { return models.ProducerConsumer(3) },
		"countergrid":     func() (*bip.System, error) { return models.CounterGrid(3, 4) },
		"diamond":         func() (*bip.System, error) { return models.DiamondGrid(4) },
		"gcd":             func() (*bip.System, error) { return models.GCD(18, 12) },
		"temperature":     func() (*bip.System, error) { return models.Temperature(1, 10, 3) },
		"philrings":       func() (*bip.System, error) { return models.PhilosopherRings(2, 3) },
		"deepchain":       func() (*bip.System, error) { return models.DeepChain(6) },
	}
	for name, build := range zoo {
		t.Run(name, func(t *testing.T) {
			sys, err := build()
			if err != nil {
				t.Fatal(err)
			}
			diags, err := lint.Analyze(sys)
			if err != nil {
				t.Fatal(err)
			}
			if lint.HasWarnings(diags) {
				t.Fatalf("false positive on a shipped model: %+v", diags)
			}
		})
	}
	t.Run("unsafe-elevator", func(t *testing.T) {
		sys, err := models.UnsafeElevator(4)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := lint.Analyze(sys)
		if err != nil {
			t.Fatal(err)
		}
		var unbound int
		for _, d := range diags {
			if d.Severity != lint.SeverityInfo && d.Code != lint.CodeUnboundPort {
				t.Fatalf("unexpected warning class: %+v", d)
			}
			if d.Code == lint.CodeUnboundPort {
				unbound++
			}
		}
		if unbound != 2 {
			t.Fatalf("UnsafeElevator drops exactly 2 bindings, lint found %d: %+v", unbound, diags)
		}
	})
}

// TestExamplesClean: every .bip file shipped under examples/ lints
// without warnings.
func TestExamplesClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "examples", "*.bip"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example models found")
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := bip.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		diags, err := lint.Analyze(sys)
		if err != nil {
			t.Fatal(err)
		}
		if lint.HasWarnings(diags) {
			t.Fatalf("%s: false positive: %+v", path, diags)
		}
	}
}

// FuzzLint pins total robustness: any source the parser accepts must
// analyze without panicking — lint sits in front of bipd's network
// input.
func FuzzLint(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.bip"))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		sys, err := bip.Parse(src)
		if err != nil {
			return
		}
		if _, err := lint.Analyze(sys); err != nil {
			t.Skip() // validation rejected it; only panics are failures
		}
	})
}

package lint

import (
	"fmt"
	"strings"

	"bip/internal/expr"
	"bip/internal/sat"
)

// System-level passes: interaction enabledness (BIP006/BIP007), variable
// usage (BIP008/BIP009), priority domination (BIP010), and reduction
// explainability (BIP011).

// lintInteractions flags interactions whose guard is statically false
// (BIP007) and interactions whose trigger set is unsatisfiable at the
// control level (BIP006): encoding one-hot location choice per
// participant — restricted to locally reachable locations — plus the
// requirement that every port is offered, an UNSAT answer means no
// reachable control state offers all ports simultaneously. The encoding
// over-approximates global reachability and ignores data, so a BIP006
// finding is sound (the interaction truly never fires) while silence
// proves nothing.
func (a *analysis) lintInteractions() []Diagnostic {
	var out []Diagnostic
	for ii, in := range a.sys.Interactions {
		if staticallyFalse(in.Guard) {
			out = append(out, withPos(Diagnostic{
				Code:     CodeFalseInteraction,
				Severity: SeverityWarning,
				Item:     in.Name,
				Message: fmt.Sprintf("interaction %s can never fire: guard %s is statically false",
					in.Name, in.Guard),
			}, in.Pos))
			continue // subsumes the SAT check
		}
		if d, dead := a.deadInteraction(ii); dead {
			out = append(out, d)
		}
	}
	return out
}

// deadInteraction runs the BIP006 control-level SAT query for
// interaction ii.
func (a *analysis) deadInteraction(ii int) (Diagnostic, bool) {
	sys := a.sys
	in := sys.Interactions[ii]
	diag := func(why string) Diagnostic {
		return withPos(Diagnostic{
			Code:     CodeDeadInteraction,
			Severity: SeverityWarning,
			Item:     in.Name,
			Message:  fmt.Sprintf("interaction %s can never be enabled: %s", in.Name, why),
		}, in.Pos)
	}
	// Short-circuit: a port nobody ever offers kills the interaction
	// without a solver.
	for pi, pr := range in.Ports {
		ai := sys.PortAtoms(ii)[pi]
		if len(a.offer[ai][pr.Port]) == 0 {
			return diag(fmt.Sprintf("port %s is never offered at any reachable location of %s",
				pr, pr.Comp)), true
		}
	}
	s := sat.New()
	locVar, ok := a.addOneHot(s, sys.PortAtoms(ii))
	if !ok {
		return Diagnostic{}, false
	}
	for pi, pr := range in.Ports {
		ai := sys.PortAtoms(ii)[pi]
		var cl []sat.Lit
		for _, li := range a.offer[ai][pr.Port] {
			cl = append(cl, sat.Lit(locVar[locKey{ai, li}]))
		}
		if s.AddClause(cl...) != nil {
			return Diagnostic{}, false
		}
	}
	if _, satisfiable := s.Solve(); !satisfiable {
		return diag("no reachable control state offers all its ports simultaneously"), true
	}
	return Diagnostic{}, false
}

type locKey struct{ atom, loc int }

// addOneHot introduces, for every distinct atom among the given
// (possibly repeated) atom indices, one variable per locally reachable
// location plus the exactly-one constraint. Returns false when a
// constraint cannot be added (conservative bail-out: the caller skips
// its check).
func (a *analysis) addOneHot(s *sat.Solver, atomIdx []int) (map[locKey]int, bool) {
	locVar := make(map[locKey]int)
	done := make(map[int]bool)
	for _, ai := range atomIdx {
		if done[ai] {
			continue
		}
		done[ai] = true
		atom := a.sys.Atoms[ai]
		var vars []int
		for li, name := range atom.Locations {
			if !a.reach[ai][li] {
				continue
			}
			v := s.NewNamedVar(atom.Name + "@" + name)
			locVar[locKey{ai, li}] = v
			vars = append(vars, v)
		}
		if len(vars) == 0 {
			return nil, false
		}
		if s.AtLeastOne(vars) != nil || s.AtMostOne(vars) != nil {
			return nil, false
		}
	}
	return locVar, true
}

// lintVariables flags atom variables that are never read (BIP008) and
// variables read but never written (BIP009, informational: the variable
// is a named constant). Reads and writes are collected across the whole
// system: local transitions and invariants, plus interaction guards,
// data transfers, and priority conditions through their qualified
// "comp.var" names.
func (a *analysis) lintVariables() []Diagnostic {
	sys := a.sys
	reads := make([]map[string]bool, len(sys.Atoms))
	writes := make([]map[string]bool, len(sys.Atoms))
	for i := range reads {
		reads[i] = make(map[string]bool)
		writes[i] = make(map[string]bool)
	}
	markQualified := func(set []map[string]bool, qualified []string) {
		for _, q := range qualified {
			i := strings.LastIndexByte(q, '.')
			if i <= 0 {
				continue
			}
			if ai := sys.AtomIndex(q[:i]); ai >= 0 {
				set[ai][q[i+1:]] = true
			}
		}
	}
	for ai, atom := range sys.Atoms {
		for _, t := range atom.Transitions {
			for _, v := range expr.Vars(t.Guard) {
				reads[ai][v] = true
			}
			for _, v := range expr.Reads(t.Action) {
				reads[ai][v] = true
			}
			for _, v := range expr.Writes(t.Action) {
				writes[ai][v] = true
			}
		}
		for _, inv := range atom.Invariants {
			for _, v := range expr.Vars(inv) {
				reads[ai][v] = true
			}
		}
	}
	for _, in := range sys.Interactions {
		markQualified(reads, expr.Vars(in.Guard))
		markQualified(reads, expr.Reads(in.Action))
		markQualified(writes, expr.Writes(in.Action))
	}
	for _, p := range sys.Priorities {
		markQualified(reads, expr.Vars(p.When))
	}
	var out []Diagnostic
	for ai, atom := range sys.Atoms {
		for _, vd := range atom.Vars {
			r, w := reads[ai][vd.Name], writes[ai][vd.Name]
			switch {
			case !r && w:
				out = append(out, withPos(Diagnostic{
					Code:     CodeUnreadVariable,
					Severity: SeverityWarning,
					Atom:     atom.Name,
					Item:     vd.Name,
					Message: fmt.Sprintf("atom %s: variable %q is written but never read",
						atom.Name, vd.Name),
				}, vd.Pos))
			case !r && !w:
				out = append(out, withPos(Diagnostic{
					Code:     CodeUnreadVariable,
					Severity: SeverityWarning,
					Atom:     atom.Name,
					Item:     vd.Name,
					Message: fmt.Sprintf("atom %s: variable %q is never read or written",
						atom.Name, vd.Name),
				}, vd.Pos))
			case r && !w:
				out = append(out, withPos(Diagnostic{
					Code:     CodeUnwrittenVariable,
					Severity: SeverityInfo,
					Atom:     atom.Name,
					Item:     vd.Name,
					Message: fmt.Sprintf("atom %s: variable %q is read but never written: it is the constant %s",
						atom.Name, vd.Name, vd.Init),
				}, vd.Pos))
			}
		}
	}
	return out
}

// lintPriorities flags interactions a priority rule makes permanently
// unfireable (BIP010): for an unconditional rule low < high where
// high's guard is statically true, if — at every reachable control
// state where low's ports are all offered — high's ports are all
// unconditionally offered, then high is always enabled whenever low is,
// and low never fires. The query asks SAT for a counterexample state
// (low offered ∧ some high port not unconditionally offered); UNSAT
// means domination. Within a single connector's expansion (names share
// the "name#" prefix) domination is the intended maximal-progress
// semantics and is reported as info, not warning.
func (a *analysis) lintPriorities() []Diagnostic {
	sys := a.sys
	var out []Diagnostic
	flagged := make(map[string]bool)
	for _, p := range sys.Priorities {
		if p.When != nil || flagged[p.Low] {
			continue
		}
		lo, hi := sys.InteractionIndex(p.Low), sys.InteractionIndex(p.High)
		if lo < 0 || hi < 0 {
			continue
		}
		if !staticallyTrue(sys.Interactions[hi].Guard) {
			continue // high may be data-disabled; cannot prove domination
		}
		if !a.dominated(lo, hi) {
			continue
		}
		flagged[p.Low] = true
		sev := SeverityWarning
		msg := fmt.Sprintf("interaction %s never fires: priority %s < %s suppresses it at every reachable control state where it is offered",
			p.Low, p.Low, p.High)
		if fam, same := sameConnectorFamily(p.Low, p.High); same {
			sev = SeverityInfo
			msg += fmt.Sprintf(" (maximal progress within connector %s)", fam)
		}
		out = append(out, withPos(Diagnostic{
			Code:     CodeDominated,
			Severity: sev,
			Item:     p.Low,
			Message:  msg,
		}, p.Pos))
	}
	return out
}

// sameConnectorFamily reports whether both interaction names come from
// the same connector expansion ("conn#a.p+b.q" style names).
func sameConnectorFamily(lo, hi string) (string, bool) {
	i, j := strings.IndexByte(lo, '#'), strings.IndexByte(hi, '#')
	if i <= 0 || j <= 0 || i != j || lo[:i] != hi[:j] {
		return "", false
	}
	return lo[:i], true
}

// dominated runs the BIP010 SAT query for rule lo < hi.
func (a *analysis) dominated(lo, hi int) bool {
	sys := a.sys
	inLo, inHi := sys.Interactions[lo], sys.Interactions[hi]
	for pi, pr := range inLo.Ports {
		if len(a.offer[sys.PortAtoms(lo)[pi]][pr.Port]) == 0 {
			return false // lo is already dead; BIP006 reports that
		}
	}
	for pi, pr := range inHi.Ports {
		if len(a.uncond[sys.PortAtoms(hi)[pi]][pr.Port]) == 0 {
			return false // hi is never unconditionally offered on pr
		}
	}
	s := sat.New()
	locVar, ok := a.addOneHot(s, append(append([]int(nil), sys.PortAtoms(lo)...), sys.PortAtoms(hi)...))
	if !ok {
		return false
	}
	for pi, pr := range inLo.Ports {
		ai := sys.PortAtoms(lo)[pi]
		var cl []sat.Lit
		for _, li := range a.offer[ai][pr.Port] {
			cl = append(cl, sat.Lit(locVar[locKey{ai, li}]))
		}
		if s.AddClause(cl...) != nil {
			return false
		}
	}
	// Some high port is not unconditionally offered: auxiliary
	// "missing_q" variables, at least one true, each implying the
	// atom sits outside q's unconditional-offer locations.
	var aux []sat.Lit
	for pi, pr := range inHi.Ports {
		ai := sys.PortAtoms(hi)[pi]
		m := s.NewNamedVar("missing:" + pr.String())
		aux = append(aux, sat.Lit(m))
		for _, li := range a.uncond[ai][pr.Port] {
			if s.AddClause(-sat.Lit(m), -sat.Lit(locVar[locKey{ai, li}])) != nil {
				return false
			}
		}
	}
	if s.AddClause(aux...) != nil {
		return false
	}
	_, satisfiable := s.Solve()
	return !satisfiable
}

// lintReduction explains the partial-order reduction structure
// (BIP011, informational): why `Reduce` cannot prune this model — a
// single connector cluster, or clusters poisoned by priority
// entanglement — naming the responsible interaction and priority rule.
// Models where reduction simply works stay silent.
func (a *analysis) lintReduction() []Diagnostic {
	sys := a.sys
	if len(sys.Atoms) < 2 {
		return nil
	}
	nc := sys.NumClusters()
	var out []Diagnostic
	if nc == 1 {
		msg := fmt.Sprintf("partial-order reduction cannot prune this model: all %d atoms form a single cluster through shared interactions, so the only ample set is the full move set",
			len(sys.Atoms))
		if !sys.ClusterReducible(0) {
			if ii, rule := a.entanglement(0); ii >= 0 {
				msg += fmt.Sprintf("; the cluster is also priority-entangled (interaction %s via rule %s)",
					sys.Interactions[ii].Name, rule)
			}
		}
		return append(out, Diagnostic{
			Code:     CodeReduction,
			Severity: SeverityInfo,
			Message:  msg,
		})
	}
	for ci := 0; ci < nc; ci++ {
		if sys.ClusterReducible(ci) {
			continue
		}
		ii, rule := a.entanglement(ci)
		if ii < 0 {
			continue
		}
		var members []int
		for ai := range sys.Atoms {
			if sys.AtomCluster(ai) == ci {
				members = append(members, ai)
			}
		}
		out = append(out, Diagnostic{
			Code:     CodeReduction,
			Severity: SeverityInfo,
			Item:     sys.Interactions[ii].Name,
			Message: fmt.Sprintf("cluster {%s} is excluded from partial-order reduction: interaction %s is priority-entangled (rule %s)",
				strings.Join(a.sortedAtomSet(members), ", "), sys.Interactions[ii].Name, rule),
		})
	}
	return out
}

// entanglement finds the first priority-entangled interaction of
// cluster ci and the rule that entangles it: the first rule naming it
// as Low or High, else the first rule whose When condition reads a
// variable of one of its participants.
func (a *analysis) entanglement(ci int) (int, string) {
	sys := a.sys
	for ii, in := range sys.Interactions {
		if sys.InteractionCluster(ii) != ci || !sys.PriorityEntangled(ii) {
			continue
		}
		for _, p := range sys.Priorities {
			if p.Low == in.Name || p.High == in.Name {
				return ii, p.String()
			}
		}
		participants := make(map[string]bool)
		for _, comp := range in.Participants() {
			participants[comp] = true
		}
		for _, p := range sys.Priorities {
			for _, v := range expr.Vars(p.When) {
				if i := strings.LastIndexByte(v, '.'); i > 0 && participants[v[:i]] {
					return ii, p.String()
				}
			}
		}
		return ii, "unknown"
	}
	return -1, ""
}

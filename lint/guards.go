package lint

import (
	"math"

	"bip/internal/expr"
)

// Static guard analysis over the boolean fragment: decide, without any
// variable valuation, whether a guard can never hold (staticallyFalse)
// or must always hold (staticallyTrue). Both are conservative — "don't
// know" answers false — so the passes built on them never produce false
// positives: a guard reported contradictory truly is, a transition
// treated as possibly-enabled may still be dead for data reasons lint
// does not see.

// staticallyTrue reports whether the guard holds in every environment.
// nil is BIP's constant-true guard; otherwise only closed expressions
// that evaluate to true qualify.
func staticallyTrue(e expr.Expr) bool {
	if e == nil {
		return true
	}
	if v, ok := constBool(e); ok {
		return v
	}
	return false
}

// staticallyFalse reports whether the guard can never hold: a closed
// expression evaluating to false, a disjunction of statically-false
// branches, or a conjunction whose integer-interval / boolean-forcing
// constraints contradict (e.g. `x < 2 && x > 5`, `b && !b`).
func staticallyFalse(e expr.Expr) bool {
	if e == nil {
		return false
	}
	if v, ok := constBool(e); ok {
		return !v
	}
	switch b := e.(type) {
	case expr.Binary:
		switch b.Op {
		case expr.OpOr:
			return staticallyFalse(b.X) && staticallyFalse(b.Y)
		case expr.OpAnd:
			if staticallyFalse(b.X) || staticallyFalse(b.Y) {
				return true
			}
			return contradictoryConjunction(e)
		}
	}
	return false
}

// constBool evaluates a closed boolean expression. Any free variable
// (or type error) makes the expression non-constant.
func constBool(e expr.Expr) (val, ok bool) {
	v, err := expr.EvalBool(e, expr.MapEnv{})
	if err != nil {
		return false, false
	}
	return v, true
}

// varRange is the interval/forcing state accumulated for one variable
// across the conjuncts of a guard.
type varRange struct {
	lo, hi     int64 // integer interval (inclusive)
	hasBool    bool
	forcedBool bool
}

// contradictoryConjunction flattens a conjunction and intersects the
// per-variable constraints of its atomic comparisons. Conjuncts it
// cannot interpret (arithmetic on both sides, disjunctions, !=) are
// skipped, keeping the check conservative.
func contradictoryConjunction(e expr.Expr) bool {
	ranges := make(map[string]*varRange)
	bad := false
	var visit func(expr.Expr)
	visit = func(c expr.Expr) {
		if bad {
			return
		}
		if b, ok := c.(expr.Binary); ok && b.Op == expr.OpAnd {
			visit(b.X)
			visit(b.Y)
			return
		}
		if staticallyFalse(c) {
			bad = true
			return
		}
		name, rng, boolVal, kind := conjunctConstraint(c)
		if kind == constraintNone {
			return
		}
		r, ok := ranges[name]
		if !ok {
			r = &varRange{lo: math.MinInt64, hi: math.MaxInt64}
			ranges[name] = r
		}
		switch kind {
		case constraintInt:
			if rng.lo > r.lo {
				r.lo = rng.lo
			}
			if rng.hi < r.hi {
				r.hi = rng.hi
			}
			if r.lo > r.hi {
				bad = true
			}
		case constraintBool:
			if r.hasBool && r.forcedBool != boolVal {
				bad = true
			}
			r.hasBool = true
			r.forcedBool = boolVal
		}
	}
	visit(e)
	return bad
}

type constraintKind int

const (
	constraintNone constraintKind = iota
	constraintInt
	constraintBool
)

// conjunctConstraint interprets one conjunct as a constraint on a single
// variable: var ⊙ intConst (either side), a bare boolean variable, its
// negation, or var ==/!= boolConst.
func conjunctConstraint(c expr.Expr) (name string, rng varRange, boolVal bool, kind constraintKind) {
	switch t := c.(type) {
	case expr.Var:
		return t.Name, varRange{}, true, constraintBool
	case expr.Unary:
		if t.Op == expr.OpNot {
			if v, ok := t.X.(expr.Var); ok {
				return v.Name, varRange{}, false, constraintBool
			}
		}
	case expr.Binary:
		v, c64, isBool, bval, op, ok := splitComparison(t)
		if !ok {
			return "", varRange{}, false, constraintNone
		}
		if isBool {
			switch op {
			case expr.OpEq:
				return v, varRange{}, bval, constraintBool
			case expr.OpNe:
				return v, varRange{}, !bval, constraintBool
			}
			return "", varRange{}, false, constraintNone
		}
		r := varRange{lo: math.MinInt64, hi: math.MaxInt64}
		switch op {
		case expr.OpEq:
			r.lo, r.hi = c64, c64
		case expr.OpLt:
			if c64 == math.MinInt64 {
				return "", varRange{}, false, constraintNone
			}
			r.hi = c64 - 1
		case expr.OpLe:
			r.hi = c64
		case expr.OpGt:
			if c64 == math.MaxInt64 {
				return "", varRange{}, false, constraintNone
			}
			r.lo = c64 + 1
		case expr.OpGe:
			r.lo = c64
		default: // OpNe constrains nothing representable as one interval
			return "", varRange{}, false, constraintNone
		}
		return v, r, false, constraintInt
	}
	return "", varRange{}, false, constraintNone
}

// splitComparison normalizes `x ⊙ const` / `const ⊙ x` to variable-
// on-the-left form, flipping the operator when the constant is on the
// left.
func splitComparison(b expr.Binary) (name string, intVal int64, isBool, boolVal bool, op expr.Op, ok bool) {
	switch b.Op {
	case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
	default:
		return "", 0, false, false, 0, false
	}
	if v, okv := b.X.(expr.Var); okv {
		if iv, bv, isb, okc := constOperand(b.Y); okc {
			return v.Name, iv, isb, bv, b.Op, true
		}
	}
	if v, okv := b.Y.(expr.Var); okv {
		if iv, bv, isb, okc := constOperand(b.X); okc {
			return v.Name, iv, isb, bv, flip(b.Op), true
		}
	}
	return "", 0, false, false, 0, false
}

func constOperand(e expr.Expr) (intVal int64, boolVal, isBool, ok bool) {
	l, okl := e.(expr.Lit)
	if !okl {
		return 0, false, false, false
	}
	if iv, oki := l.Val.Int(); oki {
		return iv, false, false, true
	}
	if bv, okb := l.Val.Bool(); okb {
		return 0, bv, true, true
	}
	return 0, false, false, false
}

func flip(op expr.Op) expr.Op {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op // Eq/Ne are symmetric
}

// Package lint statically analyzes a validated BIP system and reports
// model defects *before* any state-space exploration: unreachable
// locations, dead transitions, contradictory guards, disconnected ports
// and atoms, interactions that can never be enabled, priority rules that
// permanently dominate an interaction, unused variables, and an
// explanation of why partial-order reduction will (or will not) help.
//
// Every finding is a Diagnostic with a stable code (BIP001…), a
// severity, and — for models built by the DSL front-end, which records
// source spans on declarations — a line/column position. Diagnostics are
// deterministic: the same system yields the same list in the same order.
//
// All passes are structural or SAT-over-control queries; none of them
// enumerate global states, so lint cost is polynomial in model size (and
// in practice orders of magnitude below exploration — pinned by the E22
// floor test). The SAT passes over-approximate reachability, so a "never
// enabled" or "always dominated" verdict is sound: lint has no false
// positives on those codes by construction.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"bip/internal/core"
)

// Severity classifies a diagnostic.
type Severity string

// Severities, from informational to fatal. Lint itself never emits
// SeverityError today (a model that validates is runnable); the level
// exists so -Werror promotion and future passes have a place to go.
const (
	SeverityInfo    Severity = "info"
	SeverityWarning Severity = "warning"
	SeverityError   Severity = "error"
)

// Diagnostic codes. Codes are stable across releases: tools and tests
// match on them, so a pass may be improved but a code never changes
// meaning or gets reused.
const (
	CodeUnreachableLocation = "BIP001" // location unreachable in the atom's control graph
	CodeDeadTransition      = "BIP002" // transition whose source location is unreachable
	CodeFalseGuard          = "BIP003" // transition guard statically false (source reachable)
	CodeUnboundPort         = "BIP004" // port bound to no interaction
	CodeUntouchedAtom       = "BIP005" // atom participates in no interaction
	CodeDeadInteraction     = "BIP006" // interaction never enabled (control-level SAT)
	CodeFalseInteraction    = "BIP007" // interaction guard statically false
	CodeUnreadVariable      = "BIP008" // variable never read
	CodeUnwrittenVariable   = "BIP009" // variable read but never written (constant)
	CodeDominated           = "BIP010" // interaction suppressed by priority at every offering state
	CodeReduction           = "BIP011" // reduction explainability (why POR can/cannot prune)
	CodeReductionDegraded   = "BIP012" // a property's visibility forced full expansion
)

// Diagnostic is one lint finding. The wire shape is JSON-stable: bipd
// attaches diagnostics to job views and serves them from /v1/lint.
// Atom/Item/Line/Col are contextual and omitted when unknown (hand-built
// models carry no source positions).
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Atom is the owning component instance, when the finding is local
	// to one.
	Atom string `json:"atom,omitempty"`
	// Item names the specific declaration: a location, port, variable,
	// transition ("from->to on port"), interaction, or priority rule.
	Item    string `json:"item,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
}

// Render formats the diagnostic compiler-style:
//
//	path:line:col: severity: CODE: message
//
// omitting the position when unknown and the path when empty.
func (d Diagnostic) Render(path string) string {
	var b strings.Builder
	if path != "" {
		b.WriteString(path)
		if d.Line > 0 {
			fmt.Fprintf(&b, ":%d:%d", d.Line, d.Col)
		}
		b.WriteString(": ")
	} else if d.Line > 0 {
		fmt.Fprintf(&b, "%d:%d: ", d.Line, d.Col)
	}
	fmt.Fprintf(&b, "%s: %s: %s", d.Severity, d.Code, d.Message)
	return b.String()
}

// String renders without a file path.
func (d Diagnostic) String() string { return d.Render("") }

// HasWarnings reports whether any diagnostic is warning severity or
// above — the -Werror / service admission predicate. Infos never fail a
// build.
func HasWarnings(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity != SeverityInfo {
			return true
		}
	}
	return false
}

// ReductionDegraded builds the BIP012 diagnostic naming the property
// whose visibility forced `Reduce` to degrade to full expansion. It is
// emitted by the verification path (which knows the compiled
// properties), not by Analyze (which sees only the system).
func ReductionDegraded(property string) Diagnostic {
	return Diagnostic{
		Code:     CodeReductionDegraded,
		Severity: SeverityInfo,
		Item:     property,
		Message: fmt.Sprintf("partial-order reduction degraded to full expansion: property %q observes the whole state (opaque or step-counting form)",
			property),
	}
}

// Analyze runs every lint pass over the system and returns the findings
// in deterministic order: per-atom control-graph passes first (in atom
// declaration order), then connectivity, interaction enabledness,
// variable usage, priority domination, and reduction explainability.
//
// The system is validated first (Validate is idempotent); an invalid
// system is an error, not a diagnostic — lint analyzes models the
// engine would accept.
func Analyze(sys *core.System) ([]Diagnostic, error) {
	if sys == nil {
		return nil, fmt.Errorf("lint: nil system")
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	a := newAnalysis(sys)
	var out []Diagnostic
	out = append(out, a.lintAtoms()...)
	out = append(out, a.lintConnectivity()...)
	out = append(out, a.lintInteractions()...)
	out = append(out, a.lintVariables()...)
	out = append(out, a.lintPriorities()...)
	out = append(out, a.lintReduction()...)
	return out, nil
}

// analysis carries the per-atom control-graph facts shared by the
// passes: reachable locations and, per port, the set of reachable
// source locations offering it.
type analysis struct {
	sys *core.System
	// reach[ai][li] — location li of atom ai is reachable from the
	// initial location through transitions whose guards are not
	// statically false (an over-approximation of global reachability).
	reach [][]bool
	// offer[ai][port] — reachable source locations (indices) with a
	// not-statically-false transition on port: the control states where
	// the port *may* be offered.
	offer []map[string][]int
	// uncond[ai][port] — the subset of offer with a statically-true
	// (unguarded) transition: control states where the port is
	// *certainly* offered regardless of data.
	uncond []map[string][]int
}

func newAnalysis(sys *core.System) *analysis {
	a := &analysis{
		sys:    sys,
		reach:  make([][]bool, len(sys.Atoms)),
		offer:  make([]map[string][]int, len(sys.Atoms)),
		uncond: make([]map[string][]int, len(sys.Atoms)),
	}
	for ai, atom := range sys.Atoms {
		a.reach[ai] = reachableLocations(atom)
		a.offer[ai] = make(map[string][]int)
		a.uncond[ai] = make(map[string][]int)
		for _, t := range atom.Transitions {
			li, ok := atom.LocationIndex(t.From)
			if !ok || !a.reach[ai][li] || staticallyFalse(t.Guard) {
				continue
			}
			if !containsInt(a.offer[ai][t.Port], li) {
				a.offer[ai][t.Port] = append(a.offer[ai][t.Port], li)
			}
			if staticallyTrue(t.Guard) && !containsInt(a.uncond[ai][t.Port], li) {
				a.uncond[ai][t.Port] = append(a.uncond[ai][t.Port], li)
			}
		}
	}
	return a
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// sortedAtomSet renders a set of atom indices as sorted names.
func (a *analysis) sortedAtomSet(idx []int) []string {
	names := make([]string, len(idx))
	for i, ai := range idx {
		names[i] = a.sys.Atoms[ai].Name
	}
	sort.Strings(names)
	return names
}

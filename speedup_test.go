package bip_test

import (
	"runtime"
	"testing"

	"bip/bench"
	"bip/internal/core"
	"bip/models"
)

// TestE18SpeedupMultiCore is the CI gate for the standing ROADMAP item
// "record and assert multi-core speedups": on hosts with at least 4
// CPUs, the work-stealing explorer (Options.Order = Unordered) must
// reach the speedup floors below at 4 workers; on smaller hosts the
// gate logs a notice and skips, so single-core CI stays green while any
// multi-core runner enforces the floor. The race detector perturbs
// timing by an order of magnitude, so the gate also skips under -race.
//
// The asserted floor is 1.5x on the wide rings workload (pure
// intra-level parallelism), after a warmup exploration and with the
// best of five attempts counting — wall-clock floors on shared runners
// are noisy, so the gate errs on the side of retrying before failing.
// The narrow deep chain is recorded but informational only: its
// critical path (one counter increment per level, frontier width ~4)
// caps achievable speedup near the frontier width and makes a hard
// floor flaky on busy 4-vCPU runners; the workload exists to show the
// work-stealing driver keeps *some* speedup where the level barrier
// forfeits it all, which EXPERIMENTS.md E18 records.
func TestE18SpeedupMultiCore(t *testing.T) {
	if raceEnabled {
		t.Skip("speedup gate skipped under the race detector (timing floors are meaningless at 10x instrumentation overhead)")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("speedup gate skipped: host has %d CPU(s), need >= 4 to assert the multi-core floor (see EXPERIMENTS.md E18 for the recorded sweep)", n)
	}
	rings, err := models.PhilosopherRings(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := models.ControlOnly(rings)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := models.DeepChain(20000)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(name string, sys *core.System, floor float64) float64 {
		t.Helper()
		// Warmup: fault in the code paths and let the runtime settle
		// before anything is timed.
		if _, err := bench.E18Speedup(sys, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		best := 0.0
		for attempt := 0; attempt < 5 && best < floor; attempt++ {
			s, err := bench.E18Speedup(sys, 4)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if s > best {
				best = s
			}
		}
		return best
	}
	if best := measure("rings-5x4", ctl, 1.5); best < 1.5 {
		t.Errorf("rings-5x4: work-stealing speedup %.2fx at 4 workers, floor 1.5x (NumCPU=%d)",
			best, runtime.NumCPU())
	} else {
		t.Logf("rings-5x4: %.2fx at 4 workers (floor 1.5x)", best)
	}
	// Informational: critical-path-bound, so no hard floor (see above).
	t.Logf("deep-20k: %.2fx at 4 workers (informational; EXPERIMENTS.md E18 records the sweep)",
		measure("deep-20k", deep, 1.2))
}

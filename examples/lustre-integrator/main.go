// Lustre integrator: the paper's Fig. 5.2 — the synchronous data-flow
// program Y = X + pre(Y) embedded into BIP, executed side by side with
// the reference interpreter. Imports only the public bip/lustre facade.
//
// Run with: go run ./examples/lustre-integrator
package main

import (
	"fmt"
	"os"

	"bip/lustre"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lustre-integrator:", err)
		os.Exit(1)
	}
}

func run() error {
	prog := lustre.Integrator()
	fmt.Println("program: Y = X + pre(Y)   (running sum)")

	emb, err := lustre.Embed(prog)
	if err != nil {
		return err
	}
	fmt.Printf("embedding: %d data-flow nodes → %d BIP components, %d interactions (wires + str/cmp)\n",
		emb.NumNodes, len(emb.Sys.Atoms), len(emb.Sys.Interactions))

	it, err := lustre.NewInterp(prog)
	if err != nil {
		return err
	}
	inputs := []map[string]int64{
		{"X": 1}, {"X": 2}, {"X": 3}, {"X": -4}, {"X": 10}, {"X": 0},
	}
	outs, err := emb.Run(inputs)
	if err != nil {
		return err
	}
	fmt.Println("cycle |  X | Y (BIP) | Y (reference)")
	for i, in := range inputs {
		want, err := it.Step(in)
		if err != nil {
			return err
		}
		marker := "ok"
		if outs[i]["Y"] != want["Y"] {
			marker = "MISMATCH"
		}
		fmt.Printf("%5d | %2d | %7d | %13d  %s\n", i, in["X"], outs[i]["Y"], want["Y"], marker)
	}
	return nil
}

// Philosophers: the paper's flagship multiparty-interaction example,
// verified declaratively and executed three ways — reference semantics,
// and the three-layer distributed S/R transformation under each
// conflict-resolution protocol (centralized arbiter, token ring,
// dining-philosophers ordering). The requirements are bip/prop values:
// a mutual-exclusion observer (adjacent philosophers share a fork, so
// they never eat together) and a fork-holding episode property (between
// eat_0 and put_0, fork 0 stays taken). Every distributed run's commit
// order is validated against the reference semantics. Everything here
// imports only the public bip packages.
//
// Run with: go run ./examples/philosophers [-n 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"bip"
	"bip/check"
	"bip/distributed"
	"bip/models"
	"bip/prop"
)

func main() {
	n := flag.Int("n", 5, "number of philosophers")
	flag.Parse()
	if err := run(*n); err != nil {
		fmt.Fprintln(os.Stderr, "philosophers:", err)
		os.Exit(1)
	}
}

func run(n int) error {
	sys, err := models.Philosophers(n)
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())

	// Correct by construction: prove deadlock-freedom compositionally.
	vr, err := check.Compositional(sys, check.CompositionalOptions{})
	if err != nil {
		return err
	}
	fmt.Println(check.FormatCompositional(vr))

	// Requirements as declarative properties, checked on the fly in one
	// exploration: adjacent philosophers never eat together (they share
	// fork 1), and fork 0 is held from eat0 until the matching put0.
	// Both are control properties, so they are checked on the
	// control-only abstraction (the meals counters make the full state
	// space unbounded).
	ctl, err := models.ControlOnly(sys)
	if err != nil {
		return err
	}
	mutex := prop.Never(prop.And(
		prop.At("phil0", "eating"), prop.At("phil1", "eating")))
	held := prop.Between(prop.On("eat0"), prop.On("put0"), prop.At("fork0", "busyL"))
	rep, err := bip.Verify(ctl,
		bip.Named("mutex", bip.Prop(mutex)),
		bip.Named("fork0-held", bip.Prop(held)))
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	if !rep.OK {
		return fmt.Errorf("requirement violated: %s", rep.String())
	}

	// Reference run.
	res, err := bip.Run(sys, bip.RunOptions{
		MaxSteps:  10,
		Scheduler: bip.NewRandomScheduler(42),
	})
	if err != nil {
		return err
	}
	fmt.Println("reference trace:", res.Labels)

	// Distributed runs.
	for _, crp := range []distributed.CRP{distributed.Centralized, distributed.TokenRing, distributed.Ordered} {
		d, err := distributed.Deploy(sys, distributed.Config{
			CRP: crp, Seed: 11, MaxCommits: 100, MaxMessages: 1 << 20,
		})
		if err != nil {
			return err
		}
		stats, err := d.Run()
		if err != nil {
			return err
		}
		if _, err := distributed.ReplayLabels(sys, stats.Labels); err != nil {
			return fmt.Errorf("%s: invalid commit order: %w", crp, err)
		}
		fmt.Printf("%-12s %4d commits, %6d messages (%.1f msg/commit), %3d aborts — order valid\n",
			crp.String()+":", stats.Commits, stats.Messages, stats.MsgPerCommit, stats.Aborts)
	}
	return nil
}

// Quickstart: build a BIP system with the public API — two workers
// sharing a resource through the mutual-exclusion architecture — run it
// on the engine, and verify the characteristic property both by checking
// (streaming, on-the-fly) and by construction (compositional
// invariants). Everything here imports only the public bip and
// bip/check packages.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"bip"
	"bip/check"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Behaviour: an atomic component is an automaton with ports.
	worker := bip.NewAtom("worker").
		Location("idle", "critical").
		Port("enter").
		Port("leave").
		Transition("idle", "enter", "critical").
		Transition("critical", "leave", "idle").
		MustBuild()

	// 2. Interaction + Priority, packaged as an architecture: the
	// token-based mutual-exclusion coordinator, composed (⊕) with a
	// fixed-priority scheduling policy.
	b := bip.NewSystem("quickstart").
		AddAs("alice", worker).
		AddAs("bob", worker)
	mutex, err := bip.Mutex("mx", []bip.MutexClient{
		{Comp: "alice", Acquire: "enter", Release: "leave"},
		{Comp: "bob", Acquire: "enter", Release: "leave"},
	})
	if err != nil {
		return err
	}
	sched := bip.FixedPriority("fp", []string{"acq_alice", "acq_bob"})
	both, err := bip.ComposeArch(mutex, sched)
	if err != nil {
		return err
	}
	sys, err := both.Apply(b).Build()
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())

	// 3. Execute on the engine.
	res, err := bip.Run(sys, bip.RunOptions{MaxSteps: 8})
	if err != nil {
		return err
	}
	fmt.Println("trace:", res.Labels)

	// 4. Correctness by checking: one streaming exploration verifies
	// both properties on the fly — no materialized state space.
	rep, err := bip.Verify(sys,
		bip.Deadlock(),
		bip.Invariant(bip.AtMostOneAt(sys, map[string]string{
			"alice": "critical", "bob": "critical",
		})))
	if err != nil {
		return err
	}
	mutexOK, _ := rep.Property("invariant")
	deadlockOK, _ := rep.Property("deadlock")
	fmt.Printf("streaming: %d states, mutual exclusion=%v, deadlock-free=%v\n",
		rep.States, !mutexOK.Violated, !deadlockOK.Violated && deadlockOK.Conclusive)

	// 5. Correctness by construction: the compositional verifier proves
	// deadlock-freedom without touching the product state space.
	vr, err := check.Compositional(sys, check.CompositionalOptions{})
	if err != nil {
		return err
	}
	fmt.Println("compositional:", check.FormatCompositional(vr))
	return nil
}

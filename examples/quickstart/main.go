// Quickstart: build a BIP system with the public API — two workers
// sharing a resource through the mutual-exclusion architecture — run it
// on the engine, and verify the characteristic property both by checking
// (explicit-state) and by construction (compositional invariants).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"bip/internal/arch"
	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/engine"
	"bip/internal/invariant"
	"bip/internal/lts"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Behaviour: an atomic component is an automaton with ports.
	worker := behavior.NewBuilder("worker").
		Location("idle", "critical").
		Port("enter").
		Port("leave").
		Transition("idle", "enter", "critical").
		Transition("critical", "leave", "idle").
		MustBuild()

	// 2. Interaction + Priority, packaged as an architecture: the
	// token-based mutual-exclusion coordinator, composed (⊕) with a
	// fixed-priority scheduling policy.
	b := core.NewSystem("quickstart").
		AddAs("alice", worker).
		AddAs("bob", worker)
	mutex, err := arch.Mutex("mx", []arch.MutexClient{
		{Comp: "alice", Acquire: "enter", Release: "leave"},
		{Comp: "bob", Acquire: "enter", Release: "leave"},
	})
	if err != nil {
		return err
	}
	sched := arch.FixedPriority("fp", []string{"acq_alice", "acq_bob"})
	both, err := arch.Compose(mutex, sched)
	if err != nil {
		return err
	}
	sys, err := both.Apply(b).Build()
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())

	// 3. Execute on the engine.
	res, err := engine.Run(sys, engine.Options{MaxSteps: 8})
	if err != nil {
		return err
	}
	fmt.Println("trace:", res.Labels)

	// 4. Correctness by checking: explore the state space.
	l, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		return err
	}
	okMutex, _, _ := l.CheckInvariant(arch.AtMostOneAt(sys, map[string]string{
		"alice": "critical", "bob": "critical",
	}))
	free, err := l.DeadlockFree()
	if err != nil {
		return err
	}
	fmt.Printf("explicit-state: %d states, mutual exclusion=%v, deadlock-free=%v\n",
		l.NumStates(), okMutex, free)

	// 5. Correctness by construction: the compositional verifier proves
	// deadlock-freedom without touching the product state space.
	vr, err := invariant.Verify(sys, invariant.Options{})
	if err != nil {
		return err
	}
	fmt.Println("compositional:", invariant.FormatResult(vr))
	return nil
}

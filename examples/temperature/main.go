// Temperature control: the classical BIP example — a controller that
// must cool through one of two rods, with conditional priorities acting
// as the scheduling policy ("priorities steer system evolution to meet
// performance requirements", §1.2). The run shows the rods alternating
// under the most-rested-first policy; the per-step invariant check runs
// the slot-compiled invariant forms. Everything here imports only the
// public bip packages.
//
// Run with: go run ./examples/temperature
package main

import (
	"fmt"
	"os"

	"bip"
	"bip/models"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "temperature:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := models.Temperature(0, 5, 3)
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())
	ci := sys.AtomIndex("controller")
	cool1, cool2 := 0, 0
	res, err := bip.Run(sys, bip.RunOptions{
		MaxSteps:        60,
		CheckInvariants: true,
		OnStep: func(step int, label string, st bip.State) {
			switch label {
			case "cool1":
				cool1++
			case "cool2":
				cool2++
			default:
				return
			}
			theta, _ := st.Vars[ci].Get("theta")
			fmt.Printf("step %3d: %s fired (θ reset to %v)\n", step, label, theta)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("after %d steps: rod1 used %d times, rod2 used %d times (policy balances them)\n",
		res.Steps, cool1, cool2)
	return nil
}

// Elevator: the requirement from the paper's introduction — "when the
// cabin is moving all doors must be closed" — established by
// construction (the door participates in every movement interaction) and
// verified two ways. The unsafe variant shows the same checkers catching
// the violation with a counterexample path.
//
// Run with: go run ./examples/elevator
package main

import (
	"fmt"
	"os"
	"strings"

	"bip/internal/core"
	"bip/internal/invariant"
	"bip/internal/lts"
	"bip/internal/models"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevator:", err)
		os.Exit(1)
	}
}

func run() error {
	safe, err := models.Elevator(4)
	if err != nil {
		return err
	}
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		return err
	}
	for _, sys := range []*core.System{safe, unsafe} {
		fmt.Println("==", sys.Name, "==")
		l, err := lts.Explore(sys, lts.Options{})
		if err != nil {
			return err
		}
		ok, _, path := l.CheckInvariant(func(st core.State) bool {
			return !models.MovingWithDoorOpen(sys)(st)
		})
		if ok {
			fmt.Printf("  requirement holds on all %d reachable states\n", l.NumStates())
		} else {
			fmt.Printf("  VIOLATION: cabin moves with door open after [%s]\n", strings.Join(path, " "))
		}
		vr, err := invariant.Verify(sys, invariant.Options{})
		if err != nil {
			return err
		}
		fmt.Println("  compositional:", invariant.FormatResult(vr))
	}
	return nil
}

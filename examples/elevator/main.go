// Elevator: the requirement from the paper's introduction — "when the
// cabin is moving all doors must be closed" — established by
// construction (the door participates in every movement interaction)
// and verified declaratively: as an invariant of the bip/prop algebra
// and as the temporal door-safety property "after a depart, the door
// stays closed until the arrive". The unsafe variant shows the
// streaming checkers catching both violations with counterexample paths
// while early-exiting: they stop at the first bad state/run instead of
// materializing the full state space.
//
// Run with: go run ./examples/elevator
package main

import (
	"fmt"
	"os"
	"strings"

	"bip"
	"bip/check"
	"bip/models"
	"bip/prop"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevator:", err)
		os.Exit(1)
	}
}

func run() error {
	safe, err := models.Elevator(4)
	if err != nil {
		return err
	}
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		return err
	}
	// The requirement, stated two ways. The invariant is the state
	// predicate of the paper's introduction; the After property is its
	// temporal reading over the event stream: once the cabin departs,
	// the door must stay closed until it arrives. (The movement labels
	// differ between the variants — the unsafe one cut the door out of
	// the movement interactions, leaving cabin-only singletons — and
	// property compilation validates labels, so each variant names its
	// own events.)
	requirement := prop.Always(prop.Implies(
		prop.At("cabin", "moving"), prop.At("door", "closed")))
	cases := []struct {
		sys            *bip.System
		depart, arrive string
	}{
		{safe, "depart", "arrive"},
		{unsafe, "cabin.depart", "cabin.arrive"},
	}
	for _, c := range cases {
		sys := c.sys
		doorSafety := prop.After(prop.On(c.depart),
			prop.Until(prop.At("door", "closed"), prop.On(c.arrive)))
		fmt.Println("==", sys.Name, "==")
		rep, err := bip.Verify(sys,
			bip.Named("requirement", bip.Prop(requirement)),
			bip.Named("door-safety", bip.Prop(doorSafety)))
		if err != nil {
			return err
		}
		for _, p := range rep.Properties {
			if !p.Violated {
				fmt.Printf("  %s holds on all %d reachable states\n", p.Name, rep.States)
				continue
			}
			fmt.Printf("  %s VIOLATED after [%s] (found after streaming %d states)\n",
				p.Name, strings.Join(p.Path, " "), rep.States)
		}
		vr, err := check.Compositional(sys, check.CompositionalOptions{})
		if err != nil {
			return err
		}
		fmt.Println("  compositional:", check.FormatCompositional(vr))
	}
	return nil
}

// Elevator: the requirement from the paper's introduction — "when the
// cabin is moving all doors must be closed" — established by
// construction (the door participates in every movement interaction) and
// verified two ways. The unsafe variant shows the streaming checker
// catching the violation with a counterexample path while early-exiting:
// it stops at the first bad state instead of materializing the full
// state space.
//
// Run with: go run ./examples/elevator
package main

import (
	"fmt"
	"os"
	"strings"

	"bip"
	"bip/check"
	"bip/models"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elevator:", err)
		os.Exit(1)
	}
}

func run() error {
	safe, err := models.Elevator(4)
	if err != nil {
		return err
	}
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		return err
	}
	for _, sys := range []*bip.System{safe, unsafe} {
		fmt.Println("==", sys.Name, "==")
		bad := models.MovingWithDoorOpen(sys)
		rep, err := bip.Verify(sys, bip.Invariant(func(st bip.State) bool { return !bad(st) }))
		if err != nil {
			return err
		}
		inv, _ := rep.Property("invariant")
		if !inv.Violated {
			fmt.Printf("  requirement holds on all %d reachable states\n", rep.States)
		} else {
			fmt.Printf("  VIOLATION: cabin moves with door open after [%s] (found after streaming %d states)\n",
				strings.Join(inv.Path, " "), rep.States)
		}
		vr, err := check.Compositional(sys, check.CompositionalOptions{})
		if err != nil {
			return err
		}
		fmt.Println("  compositional:", check.FormatCompositional(vr))
	}
	return nil
}

package prop

import (
	"sort"

	"bip/internal/lts"
)

// This file derives each property's visibility declaration — what the
// ample-set reducer (internal/lts/expand.go) must never prune for the
// property's verdict to survive reduction. The derivation is
// structural, over the combinator tree, because soundness is a
// per-combinator argument:
//
//   - A state predicate contributes the atoms it reads. The compiled
//     observers built by the combinators are stutter-insensitive once
//     those atoms are visible: whenever an observer sits parked in a
//     state with a pending generic rule "on any event when q, go
//     elsewhere", the construction guarantees q is false at the
//     resident state (it would have fired on arrival otherwise), and q
//     can then only flip on a transition of a visible atom — which
//     reduction preserves. Inserting or deleting invisible steps
//     therefore never changes when such a rule fires.
//
//   - An On(labels...) event contributes its labels. Moves of a
//     visible label are never pruned, so the reduced graph contains
//     every occurrence pattern of the event the property can
//     distinguish.
//
//   - NotOn(...) and AnyEvent() match invisible labels too: a rule
//     triggered by them can literally count invisible steps, which
//     reduction by definition removes. They force full expansion
//     (Visibility.All), as do opaque Fn predicates and explicit
//     Automaton observers, whose rule structure we do not analyze.
//
//   - DeadlockFree needs no visibility at all: ample sets are
//     persistent and nonempty at non-deadlocks (C0/C1), which preserves
//     the deadlock states exactly, and the drivers report the full
//     enabled-move count even for reduced states.
//
// Reachable(p) deserves a note: reduction preserves whether a state
// satisfying p is reachable (with p's atoms visible every p-flip stays
// on the reduced graph), which is exactly the verdict; the particular
// witness state and path may differ from the full exploration's.

// visibilityOf computes p's visibility declaration. It is called after
// p compiled successfully, so every name it meets resolves; a failed
// resolution degrades to All (full expansion) rather than erroring.
func visibilityOf(c *compiler, p Prop) lts.Visibility {
	v := &visAcc{c: c}
	v.prop(p)
	return v.result()
}

// visAcc accumulates visibility while walking a property tree.
type visAcc struct {
	c      *compiler
	all    bool
	labels []string
	atoms  map[int]bool
}

func (v *visAcc) result() lts.Visibility {
	if v.all {
		return lts.Visibility{All: true}
	}
	out := lts.Visibility{Labels: v.labels}
	for ai := range v.atoms {
		out.Atoms = append(out.Atoms, ai)
	}
	sort.Ints(out.Atoms)
	return out
}

func (v *visAcc) seeAtom(comp string) {
	ai := v.c.sys.AtomIndex(comp)
	if ai < 0 {
		v.all = true
		return
	}
	if v.atoms == nil {
		v.atoms = map[int]bool{}
	}
	v.atoms[ai] = true
}

func (v *visAcc) prop(p Prop) {
	switch q := p.(type) {
	case alwaysProp:
		v.pred(q.p)
	case neverProp:
		v.pred(q.p)
	case untilProp:
		v.pred(q.p)
		v.event(q.e)
	case afterProp:
		v.event(q.e)
		v.prop(q.inner)
	case betweenProp:
		v.event(q.open)
		v.event(q.close)
		v.pred(q.p)
	case reachableProp:
		v.pred(q.p)
	case deadlockProp:
		// Nothing: deadlock preservation is structural (C0/C1).
	default:
		// Explicit Automaton and any future combinator: no structural
		// stutter-invariance argument, no reduction.
		v.all = true
	}
}

func (v *visAcc) event(e Event) {
	switch q := e.(type) {
	case onEvent:
		v.labels = append(v.labels, q.labels...)
	default:
		// NotOn and AnyEvent match invisible labels: the observer could
		// count steps reduction removes.
		v.all = true
	}
}

func (v *visAcc) pred(p Pred) {
	switch q := p.(type) {
	case atPred:
		v.seeAtom(q.comp)
	case VarRef:
		v.seeAtom(q.Comp)
	case fnPred:
		v.all = true // opaque host callback: reads unknown
	case boolLit:
	case notPred:
		v.pred(q.p)
	case andPred:
		for _, s := range q.ps {
			v.pred(s)
		}
	case orPred:
		for _, s := range q.ps {
			v.pred(s)
		}
	case cmpPred:
		v.term(q.l)
		v.term(q.r)
	default:
		v.all = true
	}
}

func (v *visAcc) term(t Term) {
	switch q := t.(type) {
	case VarRef:
		v.seeAtom(q.Comp)
	case intLit:
	case arithTerm:
		v.term(q.l)
		v.term(q.r)
	case negTerm:
		v.term(q.t)
	default:
		v.all = true
	}
}

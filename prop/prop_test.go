// Black-box tests of the property algebra: everything here goes through
// the public surface (bip, bip/check, bip/models, bip/prop), the way an
// external consumer would — make apicheck enforces that this file stays
// free of bip/internal imports.
package prop_test

import (
	"strings"
	"testing"

	"bip"
	"bip/check"
	"bip/models"
	"bip/prop"
)

// compileOn compiles p against sys, failing the test on error.
func compileOn(t *testing.T, sys *bip.System, p prop.Prop) *prop.Compiled {
	t.Helper()
	cp, err := prop.Compile(sys, p)
	if err != nil {
		t.Fatalf("compile %s: %v", p, err)
	}
	return cp
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pair is one product state of the oracle.
type pair struct{ state, obs int }

// oraclePairs computes the reachable product pairs on the materialized
// LTS by a plain BFS — a different algorithm from the checker's
// incremental stream propagation, over a different representation.
func oraclePairs(l *check.LTS, obs *check.Observer) map[pair]bool {
	preds := make([]uint64, l.NumStates())
	for i := range preds {
		st := l.State(i)
		preds[i] = obs.PredBits(&st)
	}
	q0 := obs.Step(obs.Init, obs.InitBits, preds[0])
	seen := map[pair]bool{{0, q0}: true}
	queue := []pair{{0, q0}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, e := range l.Edges(p.state) {
			q2 := obs.Step(p.obs, obs.EvBits(e.Label), preds[e.To])
			np := pair{e.To, q2}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return seen
}

// oracleHasBad reports whether any reachable product pair is bad.
func oracleHasBad(pairs map[pair]bool, obs *check.Observer) bool {
	for p := range pairs {
		if obs.Bad&(1<<uint(p.obs)) != 0 {
			return true
		}
	}
	return false
}

// walkProduct replays a label sequence nondeterministically on the
// materialized LTS × observer product and returns the set of pairs the
// run can end in — the oracle for counterexample paths.
func walkProduct(l *check.LTS, obs *check.Observer, path []string) map[pair]bool {
	preds := make([]uint64, l.NumStates())
	for i := range preds {
		st := l.State(i)
		preds[i] = obs.PredBits(&st)
	}
	cur := map[pair]bool{{0, obs.Step(obs.Init, obs.InitBits, preds[0])}: true}
	for _, label := range path {
		next := make(map[pair]bool)
		for p := range cur {
			for _, e := range l.Edges(p.state) {
				if e.Label != label {
					continue
				}
				next[pair{e.To, obs.Step(p.obs, obs.EvBits(label), preds[e.To])}] = true
			}
		}
		cur = next
	}
	return cur
}

// TestTemporalCheckersMatchOracle is the zoo differential for the
// automaton-compiled temporal properties: at workers 1 and 4, the
// streaming verdict must be bit-identical across worker counts, the
// violation bit must agree with a product-BFS oracle on the
// materialized LTS, and a reported counterexample path must be a run of
// the system that really drives the observer into a bad state at the
// reported violating state. Memoryless properties (explicit always-
// and reach-shaped automata) are additionally pinned state-and-path
// against the materialized CheckInvariant/FindState analyses.
func TestTemporalCheckersMatchOracle(t *testing.T) {
	type tc struct {
		name string
		sys  *bip.System
		p    prop.Prop
		// wantViolated is the semantic expectation, double-checking the
		// oracle itself.
		wantViolated bool
		// pinInvariant / pinReach pin the verdict against the
		// corresponding materialized analysis (memoryless observers).
		pinInvariant func(bip.State) bool
		pinReach     func(bip.State) bool
	}
	var cases []tc

	phil, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	philCtl, err := models.ControlOnly(phil)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases,
		tc{
			name: "phil/mutex-automaton", sys: philCtl,
			p: prop.Automaton{
				Name: "mutex", Init: "ok", Bad: []string{"bad"},
				Trans: []prop.ATrans{{From: "ok", To: "bad",
					When: prop.And(prop.At("phil0", "eating"), prop.At("phil1", "eating"))}},
			},
			wantViolated: false,
		},
		tc{
			name: "phil/fork-held-between", sys: philCtl,
			p:            prop.Between(prop.On("eat0"), prop.On("put0"), prop.At("fork0", "busyL")),
			wantViolated: false,
		},
		tc{
			name: "phil/fork-held-after-until", sys: philCtl,
			p: prop.After(prop.On("eat0"),
				prop.Until(prop.At("fork0", "busyL"), prop.On("put0"))),
			wantViolated: false,
		},
		tc{
			name: "phil/fork1-free-between-violated", sys: philCtl,
			p:            prop.Between(prop.On("eat0"), prop.On("put0"), prop.At("fork1", "free")),
			wantViolated: true,
		},
	)

	phil2p, err := models.PhilosophersDeadlocking(3)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tc{
		name: "phil2p/fork-held-after", sys: phil2p,
		p: prop.After(prop.On("getL0"),
			prop.Until(prop.At("fork0", "busyL"), prop.On("put0"))),
		wantViolated: false,
	})

	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		t.Fatal(err)
	}
	movingOpen := models.MovingWithDoorOpen(unsafe)
	cases = append(cases,
		tc{
			name: "elevator/requirement-automaton", sys: unsafe,
			p: prop.Automaton{
				Name: "door", Init: "ok", Bad: []string{"bad"},
				Trans: []prop.ATrans{{From: "ok", To: "bad",
					When: prop.And(prop.At("cabin", "moving"), prop.At("door", "open"))}},
			},
			wantViolated: true,
			pinInvariant: func(st bip.State) bool { return !movingOpen(st) },
		},
		tc{
			name: "elevator/door-safety-after", sys: unsafe,
			p: prop.After(prop.On("cabin.depart"),
				prop.Until(prop.At("door", "closed"), prop.On("cabin.arrive"))),
			wantViolated: true,
		},
	)

	gcd, err := models.GCD(36, 60)
	if err != nil {
		t.Fatal(err)
	}
	gcdIdx := gcd.AtomIndex("gcd")
	atFixpoint := func(st bip.State) bool {
		x, _ := st.Vars[gcdIdx]["x"].Int()
		y, _ := st.Vars[gcdIdx]["y"].Int()
		return x == 12 && y == 12
	}
	cases = append(cases,
		tc{
			name: "gcd/x-positive-until-halt", sys: gcd,
			p:            prop.Until(prop.Gt(prop.Var("gcd", "x"), prop.Int(0)), prop.On("gcd.halt")),
			wantViolated: false,
		},
		tc{
			name: "gcd/fixpoint-reach-automaton", sys: gcd,
			p: prop.Automaton{
				Name: "fixpoint", Init: "look", Bad: []string{"hit"},
				Trans: []prop.ATrans{{From: "look", To: "hit",
					When: prop.And(
						prop.Eq(prop.Var("gcd", "x"), prop.Int(12)),
						prop.Eq(prop.Var("gcd", "y"), prop.Int(12)))}},
			},
			wantViolated: true,
			pinReach:     atFixpoint,
		},
	)

	for _, c := range cases {
		l, err := check.Explore(c.sys, check.Options{})
		if err != nil {
			t.Fatalf("%s: explore: %v", c.name, err)
		}
		if l.Truncated() {
			t.Fatalf("%s: zoo case unexpectedly truncated", c.name)
		}

		// Reference run (sequential), then worker-count pinning.
		ref := compileOn(t, c.sys, c.p)
		refChk, ok := ref.Sink.(*check.AutomatonCheck)
		if !ok {
			t.Fatalf("%s: expected an automaton sink, got %T", c.name, ref.Sink)
		}
		if _, err := check.Stream(c.sys, check.Options{}, ref.Sink); err != nil {
			t.Fatalf("%s: stream: %v", c.name, err)
		}
		v := ref.Verdict
		for _, w := range []int{4} {
			cp := compileOn(t, c.sys, c.p)
			if _, err := check.Stream(c.sys, check.Options{Workers: w}, cp.Sink); err != nil {
				t.Fatalf("%s/workers=%d: %v", c.name, w, err)
			}
			if cp.Verdict.Found != v.Found || cp.Verdict.State != v.State ||
				!samePath(cp.Verdict.Path, v.Path) || cp.Verdict.Exhaustive != v.Exhaustive {
				t.Fatalf("%s/workers=%d: verdict (%v,%d,%v,%v) != sequential (%v,%d,%v,%v)",
					c.name, w, cp.Verdict.Found, cp.Verdict.State, cp.Verdict.Path, cp.Verdict.Exhaustive,
					v.Found, v.State, v.Path, v.Exhaustive)
			}
		}

		// Oracle 1: the violation bit equals product-BFS reachability of
		// a bad pair on the materialized LTS.
		obs := refChk.Obs
		pairs := oraclePairs(l, obs)
		if got, want := v.Found, oracleHasBad(pairs, obs); got != want {
			t.Fatalf("%s: streaming found=%v, product oracle says %v", c.name, got, want)
		}
		if v.Found != c.wantViolated {
			t.Fatalf("%s: found=%v, semantic expectation %v", c.name, v.Found, c.wantViolated)
		}

		if !v.Found {
			if !v.Exhaustive {
				t.Fatalf("%s: no violation but coverage not exhaustive", c.name)
			}
			continue
		}

		// Oracle 2: the counterexample is a real run ending at the
		// reported state with a bad observer state.
		if v.State < 0 || v.State >= l.NumStates() {
			t.Fatalf("%s: violating state %d out of range", c.name, v.State)
		}
		end := walkProduct(l, obs, v.Path)
		okEnd := false
		for p := range end {
			if p.state == v.State && obs.Bad&(1<<uint(p.obs)) != 0 {
				okEnd = true
				break
			}
		}
		if !okEnd {
			t.Fatalf("%s: path %v does not drive the observer to a bad state at %d (ends %v)",
				c.name, v.Path, v.State, end)
		}

		// Oracle 3 (memoryless observers): exact state and path against
		// the materialized analyses.
		if c.pinInvariant != nil {
			okInv, state, path := l.CheckInvariant(c.pinInvariant)
			if okInv {
				t.Fatalf("%s: materialized invariant unexpectedly holds", c.name)
			}
			if v.State != state || !samePath(v.Path, path) {
				t.Fatalf("%s: verdict (%d,%v) != materialized invariant (%d,%v)",
					c.name, v.State, v.Path, state, path)
			}
		}
		if c.pinReach != nil {
			state, found := l.FindState(c.pinReach)
			if !found {
				t.Fatalf("%s: materialized reach misses the target", c.name)
			}
			if v.State != state || !samePath(v.Path, l.PathTo(state)) {
				t.Fatalf("%s: verdict (%d,%v) != materialized reach (%d,%v)",
					c.name, v.State, v.Path, state, l.PathTo(state))
			}
		}
	}
}

// TestSpecializedFormsMatchMaterialized pins the non-automaton
// specializations — Always/Never to the invariant checker, Reachable to
// the reach checker, DeadlockFree to the deadlock checker — against the
// materialized analyses, at workers 1 and 4, through bip.Verify.
func TestSpecializedFormsMatchMaterialized(t *testing.T) {
	phil2p, err := models.PhilosophersDeadlocking(3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := check.Explore(phil2p, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dls := l.Deadlocks()
	if len(dls) == 0 {
		t.Fatal("two-phase philosophers must deadlock")
	}
	everyoneHasLeft := prop.And(
		prop.At("phil0", "hasLeft"), prop.At("phil1", "hasLeft"), prop.At("phil2", "hasLeft"))
	wantReach, _ := l.FindState(func(st bip.State) bool {
		return st.Locs[phil2p.AtomIndex("phil0")] == "hasLeft" &&
			st.Locs[phil2p.AtomIndex("phil1")] == "hasLeft" &&
			st.Locs[phil2p.AtomIndex("phil2")] == "hasLeft"
	})

	for _, w := range []int{1, 4} {
		rep, err := bip.Verify(phil2p,
			bip.Prop(prop.DeadlockFree()),
			bip.Prop(prop.Never(everyoneHasLeft)),
			bip.Prop(prop.Reachable(everyoneHasLeft)),
			bip.Workers(w))
		if err != nil {
			t.Fatal(err)
		}
		dl, _ := rep.Property("deadlock")
		if !dl.Violated || dl.State != dls[0] || !samePath(dl.Path, l.PathTo(dls[0])) {
			t.Fatalf("workers=%d: deadlock verdict (%v,%d,%v) != materialized (%d,%v)",
				w, dl.Violated, dl.State, dl.Path, dls[0], l.PathTo(dls[0]))
		}
		never, _ := rep.Property("never")
		reach, _ := rep.Property("reachable")
		if !never.Violated || !reach.Violated {
			t.Fatalf("workers=%d: circular wait must be reachable", w)
		}
		if never.State != wantReach || reach.State != wantReach {
			t.Fatalf("workers=%d: never/reach at %d/%d, materialized %d",
				w, never.State, reach.State, wantReach)
		}
		if !samePath(reach.Path, l.PathTo(wantReach)) {
			t.Fatalf("workers=%d: reach path %v != %v", w, reach.Path, l.PathTo(wantReach))
		}
	}
}

// TestTemporalTruncationInconclusive pins bound handling end to end: a
// holding temporal property on a truncated exploration is reported
// inconclusive, not ok.
func TestTemporalTruncationInconclusive(t *testing.T) {
	ring, err := models.TokenRing(4) // seen-counters make the space unbounded
	if err != nil {
		t.Fatal(err)
	}
	p := prop.After(prop.On("pass0"),
		prop.Until(prop.At("st1", "has"), prop.On("pass1")))
	rep, err := bip.Verify(ring, bip.Prop(p), bip.MaxStates(50))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("expected truncation at MaxStates=50")
	}
	after, ok := rep.Property("after")
	if !ok {
		t.Fatal("missing property entry")
	}
	if after.Violated || after.Conclusive || rep.OK {
		t.Fatalf("truncated temporal check must be inconclusive: %+v, ok=%v", after, rep.OK)
	}
}

// TestTemporalEarlyExit pins the early-exit contract: a violated
// temporal property settles after streaming a fraction of the space.
func TestTemporalEarlyExit(t *testing.T) {
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := check.Explore(unsafe, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := compileOn(t, unsafe, prop.After(prop.On("cabin.depart"),
		prop.Until(prop.At("door", "closed"), prop.On("cabin.arrive"))))
	stats, err := check.Stream(unsafe, check.Options{}, cp.Sink)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Verdict.Found {
		t.Fatal("unsafe elevator must violate door safety")
	}
	if !stats.Stopped || stats.States >= l.NumStates() {
		t.Fatalf("expected early exit: streamed %d of %d states (stopped=%v)",
			stats.States, l.NumStates(), stats.Stopped)
	}
}

// TestBetweenCloseWinsOnSharedEvent pins the documented tie-break: when
// one interaction matches both the open and close events, close wins,
// so Between(x, x, false) never enters an episode.
func TestBetweenCloseWinsOnSharedEvent(t *testing.T) {
	sys, err := bip.Parse(`
system tick
atom T {
  port p
  location a
  from a to a on p
}
instance t : T
connector x = t.p
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bip.Verify(sys, bip.Prop(prop.Between(prop.On("x"), prop.On("x"), prop.False())))
	if err != nil {
		t.Fatal(err)
	}
	between, _ := rep.Property("between")
	if between.Violated || !between.Conclusive {
		t.Fatalf("close must win the tie: %+v", between)
	}
}

// TestUntilViolatedAtInitialState pins the initial observation: the
// Until obligation applies to the initial state itself.
func TestUntilViolatedAtInitialState(t *testing.T) {
	sys, err := bip.Parse(`
system pair
atom Ping {
  port hit, back
  location a, b
  from a to b on hit
  from b to a on back
}
instance l : Ping
connector hit = l.hit
connector back = l.back
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bip.Verify(sys, bip.Prop(prop.Until(prop.At("l", "b"), prop.On("hit"))))
	if err != nil {
		t.Fatal(err)
	}
	until, _ := rep.Property("until")
	if !until.Violated || until.State != 0 || len(until.Path) != 0 {
		t.Fatalf("want violation at the initial state with empty path, got %+v", until)
	}
}

// TestCompileErrors pins the compile-time validation surface: every
// name and kind mistake is reported before any exploration runs.
func TestCompileErrors(t *testing.T) {
	sys, err := models.GCD(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    prop.Prop
		want string
	}{
		{"unknown component", prop.Always(prop.At("nope", "loop")), "unknown component"},
		{"unknown location", prop.Always(prop.At("gcd", "nowhere")), "no location"},
		{"unknown variable", prop.Always(prop.Eq(prop.Var("gcd", "z"), prop.Int(0))), "no variable"},
		{"int var as predicate", prop.Always(prop.Var("gcd", "x")), "not bool"},
		{"unknown label", prop.Until(prop.True(), prop.On("nolabel")), "unknown interaction label"},
		{"empty on", prop.Until(prop.True(), prop.On()), "at least one"},
		{"nested reachable", prop.After(prop.On("gcd.halt"), prop.Reachable(prop.True())), "cannot be nested"},
		{"nested deadlockfree", prop.After(prop.On("gcd.halt"), prop.DeadlockFree()), "cannot be nested"},
		{"automaton without init", prop.Automaton{Trans: []prop.ATrans{{From: "a", To: "b"}}}, "Init"},
	}
	for _, c := range cases {
		_, err := prop.Compile(sys, c.p)
		if err == nil {
			t.Fatalf("%s: compile unexpectedly succeeded", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestPredCompilation exercises the term/predicate evaluators (arith,
// comparisons, connectives, bool variables) against hand-computed
// values on explored states.
func TestPredCompilation(t *testing.T) {
	sys, err := bip.Parse(`
system counters
atom C {
  var n: int = 0
  var flag: bool = false
  port step
  location run
  from run to run on step when n < 4 do n := n + 1; if n == 3 { flag := true }
}
instance c : C
connector step = c.step
`)
	if err != nil {
		t.Fatal(err)
	}
	l, err := check.Explore(sys, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ci := sys.AtomIndex("c")
	preds := []struct {
		p    prop.Pred
		want func(bip.State) bool
	}{
		{prop.Ge(prop.Add(prop.Var("c", "n"), prop.Int(1)), prop.Int(3)),
			func(st bip.State) bool { n, _ := st.Vars[ci]["n"].Int(); return n+1 >= 3 }},
		{prop.Var("c", "flag"),
			func(st bip.State) bool { b, _ := st.Vars[ci]["flag"].Bool(); return b }},
		{prop.And(prop.At("c", "run"), prop.Ne(prop.Mul(prop.Var("c", "n"), prop.Int(2)), prop.Int(4))),
			func(st bip.State) bool { n, _ := st.Vars[ci]["n"].Int(); return 2*n != 4 }},
		{prop.Implies(prop.Var("c", "flag"), prop.Ge(prop.Var("c", "n"), prop.Int(3))),
			func(st bip.State) bool {
				b, _ := st.Vars[ci]["flag"].Bool()
				n, _ := st.Vars[ci]["n"].Int()
				return !b || n >= 3
			}},
		{prop.Lt(prop.Neg(prop.Var("c", "n")), prop.Sub(prop.Int(2), prop.Var("c", "n"))),
			func(st bip.State) bool { n, _ := st.Vars[ci]["n"].Int(); return -n < 2-n }},
	}
	for _, c := range preds {
		f, err := prop.CompilePred(sys, c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		for i := 0; i < l.NumStates(); i++ {
			st := l.State(i)
			if got, want := f(st), c.want(st); got != want {
				t.Fatalf("%s at state %d: got %v, want %v", c.p, i, got, want)
			}
		}
	}
}

// TestNestedAfter pins combinator nesting: after a, after b, p — the
// inner obligation only arms once both events occurred in order.
func TestNestedAfter(t *testing.T) {
	sys, err := bip.Parse(`
system seq
atom S {
  port pa, pb, pc
  location l0, l1, l2, l3
  from l0 to l1 on pa
  from l1 to l2 on pb
  from l2 to l3 on pc
}
instance s : S
connector a = s.pa
connector b = s.pb
connector c = s.pc
`)
	if err != nil {
		t.Fatal(err)
	}
	// After a, after b, never at(l3): violated only by the full run.
	p := prop.After(prop.On("a"), prop.After(prop.On("b"), prop.Never(prop.At("s", "l3"))))
	rep, err := bip.Verify(sys, bip.Prop(p))
	if err != nil {
		t.Fatal(err)
	}
	after, _ := rep.Property("after")
	if !after.Violated || !samePath(after.Path, []string{"a", "b", "c"}) {
		t.Fatalf("want violation via [a b c], got %+v", after)
	}
	// Without the b, the inner never stays dormant.
	p2 := prop.After(prop.On("b"), prop.After(prop.On("a"), prop.Never(prop.At("s", "l3"))))
	rep2, err := bip.Verify(sys, bip.Prop(p2))
	if err != nil {
		t.Fatal(err)
	}
	after2, _ := rep2.Property("after")
	if after2.Violated {
		t.Fatalf("b never precedes a; property must hold, got %+v", after2)
	}
}

package prop

import (
	"fmt"

	"bip/internal/core"
	"bip/internal/expr"
	"bip/internal/lts"
)

// This file compiles the algebra against a concrete system. Name
// resolution happens exactly once, here: At predicates resolve to an
// atom index plus the atom's own interned location string (the runtime
// check is a slice index and a string compare that usually short-cuts
// on pointer identity), Var terms resolve to an atom index plus the
// declared variable name (one direct map read per access, the same
// budget as the interaction compiler in internal/core/icompile.go), and
// event predicates resolve to per-label rule bitsets. Kind errors
// (comparing a bool variable, using an int variable as a predicate) are
// compile-time errors, so the compiled closures evaluate without any
// runtime failure path.

// Compiled is a property ready to ride one exploration: a streaming
// Sink plus the Verdict it settles into. bip.Verify builds one per
// property option and fans the event stream across them.
type Compiled struct {
	// Kind is the property's default report name.
	Kind string
	// Sink is the on-the-fly checker (one of the lts checkers or an
	// AutomatonCheck for temporal forms).
	Sink lts.Sink
	// Verdict is the checker's shared outcome block.
	Verdict *lts.Verdict
	// Visible declares what ample-set reduction must preserve for this
	// property's verdict to survive: the interaction labels the property
	// observes and the atoms whose locations or variables its predicates
	// read (see visibility.go for the per-combinator derivation). An
	// All-visibility property cannot be checked under reduction;
	// bip.Verify degrades it to full expansion.
	Visible lts.Visibility
}

// Compile resolves and compiles p against sys. Pure state-predicate
// forms specialize to the O(frontier) streaming checkers; temporal
// forms build a deterministic observer checked by the product-automaton
// sink. Unknown components, locations, variables or labels — and kind
// mismatches — are reported here, before any exploration starts.
func Compile(sys *core.System, p Prop) (*Compiled, error) {
	c := &compiler{sys: sys}
	out, err := compileChecker(c, p)
	if err != nil {
		return nil, err
	}
	out.Visible = visibilityOf(c, p)
	return out, nil
}

func compileChecker(c *compiler, p Prop) (*Compiled, error) {
	switch q := p.(type) {
	case alwaysProp:
		f, err := q.p.compilePred(c)
		if err != nil {
			return nil, fmt.Errorf("prop: %s: %w", p, err)
		}
		chk := &lts.InvariantCheck{Pred: func(st core.State) bool { return f(&st) }}
		return &Compiled{Kind: q.Kind(), Sink: chk, Verdict: &chk.Verdict}, nil
	case neverProp:
		f, err := q.p.compilePred(c)
		if err != nil {
			return nil, fmt.Errorf("prop: %s: %w", p, err)
		}
		chk := &lts.InvariantCheck{Pred: func(st core.State) bool { return !f(&st) }}
		return &Compiled{Kind: q.Kind(), Sink: chk, Verdict: &chk.Verdict}, nil
	case reachableProp:
		f, err := q.p.compilePred(c)
		if err != nil {
			return nil, fmt.Errorf("prop: %s: %w", p, err)
		}
		chk := &lts.ReachCheck{Pred: func(st core.State) bool { return f(&st) }}
		return &Compiled{Kind: q.Kind(), Sink: chk, Verdict: &chk.Verdict}, nil
	case deadlockProp:
		chk := &lts.DeadlockCheck{}
		return &Compiled{Kind: q.Kind(), Sink: chk, Verdict: &chk.Verdict}, nil
	default:
		a, err := p.observer(c)
		if err != nil {
			return nil, fmt.Errorf("prop: %s: %w", p, err)
		}
		obs, err := a.compile(c)
		if err != nil {
			return nil, fmt.Errorf("prop: %s: %w", p, err)
		}
		chk := lts.NewAutomatonCheck(obs)
		return &Compiled{Kind: p.Kind(), Sink: chk, Verdict: &chk.Verdict}, nil
	}
}

// CompilePred resolves and compiles a bare state predicate against sys,
// for callers that want the fast closure outside a Verify run (tools,
// benchmarks).
func CompilePred(sys *core.System, p Pred) (func(core.State) bool, error) {
	c := &compiler{sys: sys}
	f, err := p.compilePred(c)
	if err != nil {
		return nil, fmt.Errorf("prop: %s: %w", p, err)
	}
	return func(st core.State) bool { return f(&st) }, nil
}

// compiler carries the resolution context.
type compiler struct {
	sys *core.System
}

func (c *compiler) atomIndex(comp string) (int, error) {
	ai := c.sys.AtomIndex(comp)
	if ai < 0 {
		return -1, fmt.Errorf("unknown component %q", comp)
	}
	return ai, nil
}

// ---------------------------------------------------------------------
// Predicate and term compilation.

func (p atPred) compilePred(c *compiler) (predFn, error) {
	ai, err := c.atomIndex(p.comp)
	if err != nil {
		return nil, err
	}
	a := c.sys.Atoms[ai]
	li, ok := a.LocationIndex(p.loc)
	if !ok {
		return nil, fmt.Errorf("component %q has no location %q", p.comp, p.loc)
	}
	// Compare against the atom's own declared string: states carry that
	// very string object, so == short-cuts on pointer identity.
	loc := a.Locations[li]
	return func(st *core.State) bool { return st.Locs[ai] == loc }, nil
}

// resolveVar resolves comp.v to its atom index, canonical name and
// declared kind.
func (c *compiler) resolveVar(v VarRef) (int, string, expr.Kind, error) {
	ai, err := c.atomIndex(v.Comp)
	if err != nil {
		return -1, "", expr.KindInvalid, err
	}
	for _, vd := range c.sys.Atoms[ai].Vars {
		if vd.Name == v.Name {
			return ai, vd.Name, vd.Init.Kind(), nil
		}
	}
	return -1, "", expr.KindInvalid, fmt.Errorf("component %q has no variable %q", v.Comp, v.Name)
}

func (v VarRef) compileTerm(c *compiler) (intFn, error) {
	ai, name, kind, err := c.resolveVar(v)
	if err != nil {
		return nil, err
	}
	if kind != expr.KindInt {
		return nil, fmt.Errorf("variable %s is %s, not int (bool variables are predicates)", v, kind)
	}
	return func(st *core.State) int64 {
		n, _ := st.Vars[ai][name].Int()
		return n
	}, nil
}

func (v VarRef) compilePred(c *compiler) (predFn, error) {
	ai, name, kind, err := c.resolveVar(v)
	if err != nil {
		return nil, err
	}
	if kind != expr.KindBool {
		return nil, fmt.Errorf("variable %s is %s, not bool (compare int variables: %s == ...)", v, kind, v)
	}
	return func(st *core.State) bool {
		b, _ := st.Vars[ai][name].Bool()
		return b
	}, nil
}

func (p fnPred) compilePred(*compiler) (predFn, error) {
	f := p.f
	return func(st *core.State) bool { return f(*st) }, nil
}

func (b boolLit) compilePred(*compiler) (predFn, error) {
	v := bool(b)
	return func(*core.State) bool { return v }, nil
}

func (p notPred) compilePred(c *compiler) (predFn, error) {
	f, err := p.p.compilePred(c)
	if err != nil {
		return nil, err
	}
	return func(st *core.State) bool { return !f(st) }, nil
}

func (p andPred) compilePred(c *compiler) (predFn, error) {
	fs, err := compileAll(c, p.ps)
	if err != nil {
		return nil, err
	}
	switch len(fs) {
	case 0:
		return func(*core.State) bool { return true }, nil
	case 1:
		return fs[0], nil
	case 2:
		a, b := fs[0], fs[1]
		return func(st *core.State) bool { return a(st) && b(st) }, nil
	}
	return func(st *core.State) bool {
		for _, f := range fs {
			if !f(st) {
				return false
			}
		}
		return true
	}, nil
}

func (p orPred) compilePred(c *compiler) (predFn, error) {
	fs, err := compileAll(c, p.ps)
	if err != nil {
		return nil, err
	}
	switch len(fs) {
	case 0:
		return func(*core.State) bool { return false }, nil
	case 1:
		return fs[0], nil
	case 2:
		a, b := fs[0], fs[1]
		return func(st *core.State) bool { return a(st) || b(st) }, nil
	}
	return func(st *core.State) bool {
		for _, f := range fs {
			if f(st) {
				return true
			}
		}
		return false
	}, nil
}

func compileAll(c *compiler, ps []Pred) ([]predFn, error) {
	fs := make([]predFn, len(ps))
	for i, p := range ps {
		f, err := p.compilePred(c)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return fs, nil
}

func (p cmpPred) compilePred(c *compiler) (predFn, error) {
	l, err := p.l.compileTerm(c)
	if err != nil {
		return nil, err
	}
	r, err := p.r.compileTerm(c)
	if err != nil {
		return nil, err
	}
	switch p.op {
	case opEq:
		return func(st *core.State) bool { return l(st) == r(st) }, nil
	case opNe:
		return func(st *core.State) bool { return l(st) != r(st) }, nil
	case opLt:
		return func(st *core.State) bool { return l(st) < r(st) }, nil
	case opLe:
		return func(st *core.State) bool { return l(st) <= r(st) }, nil
	case opGt:
		return func(st *core.State) bool { return l(st) > r(st) }, nil
	default:
		return func(st *core.State) bool { return l(st) >= r(st) }, nil
	}
}

func (n intLit) compileTerm(*compiler) (intFn, error) {
	v := int64(n)
	return func(*core.State) int64 { return v }, nil
}

func (t arithTerm) compileTerm(c *compiler) (intFn, error) {
	l, err := t.l.compileTerm(c)
	if err != nil {
		return nil, err
	}
	r, err := t.r.compileTerm(c)
	if err != nil {
		return nil, err
	}
	switch t.op {
	case opAdd:
		return func(st *core.State) int64 { return l(st) + r(st) }, nil
	case opSub:
		return func(st *core.State) int64 { return l(st) - r(st) }, nil
	default:
		return func(st *core.State) int64 { return l(st) * r(st) }, nil
	}
}

func (t negTerm) compileTerm(c *compiler) (intFn, error) {
	f, err := t.t.compileTerm(c)
	if err != nil {
		return nil, err
	}
	return func(st *core.State) int64 { return -f(st) }, nil
}

// ---------------------------------------------------------------------
// Event validation.

func (e onEvent) validate(c *compiler) error {
	if len(e.labels) == 0 {
		return fmt.Errorf("on() needs at least one interaction label")
	}
	return c.checkLabels(e.labels)
}

func (e notOnEvent) validate(c *compiler) error { return c.checkLabels(e.labels) }

func (anyEvent) validate(*compiler) error { return nil }

func (c *compiler) checkLabels(labels []string) error {
	for _, l := range labels {
		if c.sys.InteractionIndex(l) < 0 {
			return fmt.Errorf("unknown interaction label %q", l)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Observer construction.

// obsAuto is the automaton skeleton the temporal combinators build
// structurally; compile flattens it into the lts.Observer bit machine.
type obsAuto struct {
	n     int
	init  int
	bad   uint64
	rules [][]obsRule
}

// obsRule is one priority-ordered rule of an observer state: on an
// observation matched by ev whose state satisfies when (nil = always),
// go to `to`.
type obsRule struct {
	ev   Event
	when Pred
	to   int
}

func (a alwaysProp) observer(*compiler) (*obsAuto, error) {
	// watch(0) --[any, !p]--> bad(1)
	return &obsAuto{
		n: 2, init: 0, bad: 1 << 1,
		rules: [][]obsRule{
			{{ev: AnyEvent(), when: Not(a.p), to: 1}},
			nil,
		},
	}, nil
}

func (n neverProp) observer(c *compiler) (*obsAuto, error) {
	return alwaysProp{p: Not(n.p)}.observer(c)
}

func (u untilProp) observer(*compiler) (*obsAuto, error) {
	// watch(0) --[e]--> done(1);  watch(0) --[any, !p]--> bad(2).
	// The release rule comes first: the state reached by e is outside
	// the obligation.
	return &obsAuto{
		n: 3, init: 0, bad: 1 << 2,
		rules: [][]obsRule{
			{
				{ev: u.e, to: 1},
				{ev: AnyEvent(), when: Not(u.p), to: 2},
			},
			nil,
			nil,
		},
	}, nil
}

func (b betweenProp) observer(*compiler) (*obsAuto, error) {
	// out(0), in(1), bad(2). close is checked before open, so an
	// interaction matching both closes. The state reached by open is
	// inside the episode (checked), the one reached by close outside.
	return &obsAuto{
		n: 3, init: 0, bad: 1 << 2,
		rules: [][]obsRule{
			{
				{ev: b.close, to: 0},
				{ev: b.open, when: Not(b.p), to: 2},
				{ev: b.open, to: 1},
			},
			{
				{ev: b.close, to: 0},
				{ev: AnyEvent(), when: Not(b.p), to: 2},
			},
			nil,
		},
	}, nil
}

func (a afterProp) observer(c *compiler) (*obsAuto, error) {
	inner, err := a.inner.observer(c)
	if err != nil {
		return nil, err
	}
	// idle(0) + inner shifted by 1. Arming on e replays the inner
	// automaton's initial observation at the state e reaches: the inner
	// init rules that accept the initial pseudo-event apply (in order)
	// with e as the trigger, then a fallback parks the observer at the
	// inner initial state.
	out := &obsAuto{
		n:     inner.n + 1,
		init:  0,
		bad:   inner.bad << 1,
		rules: make([][]obsRule, inner.n+1),
	}
	var arm []obsRule
	for _, r := range inner.rules[inner.init] {
		if r.ev.matchesInit() {
			arm = append(arm, obsRule{ev: a.e, when: r.when, to: r.to + 1})
		}
	}
	arm = append(arm, obsRule{ev: a.e, to: inner.init + 1})
	out.rules[0] = arm
	for i, rs := range inner.rules {
		shifted := make([]obsRule, len(rs))
		for j, r := range rs {
			shifted[j] = obsRule{ev: r.ev, when: r.when, to: r.to + 1}
		}
		out.rules[i+1] = shifted
	}
	return out, nil
}

func (r reachableProp) observer(*compiler) (*obsAuto, error) {
	return nil, fmt.Errorf("reachable(...) is a query, not a safety property; it cannot be nested")
}

func (deadlockProp) observer(*compiler) (*obsAuto, error) {
	return nil, fmt.Errorf("deadlockfree is not path-observable; it cannot be nested")
}

func (a Automaton) observer(*compiler) (*obsAuto, error) {
	if len(a.Trans) == 0 {
		return nil, fmt.Errorf("automaton needs at least one transition")
	}
	if a.Init == "" {
		return nil, fmt.Errorf("automaton needs an Init state")
	}
	idx := make(map[string]int)
	var names []string
	add := func(name string) int {
		if name == "" {
			return -1
		}
		if i, ok := idx[name]; ok {
			return i
		}
		idx[name] = len(names)
		names = append(names, name)
		return len(names) - 1
	}
	add(a.Init)
	for _, t := range a.Trans {
		if t.From == "" || t.To == "" {
			return nil, fmt.Errorf("automaton transition with empty state name")
		}
		add(t.From)
		add(t.To)
	}
	out := &obsAuto{n: len(names), init: 0, rules: make([][]obsRule, len(names))}
	for _, b := range a.Bad {
		i, ok := idx[b]
		if !ok {
			return nil, fmt.Errorf("automaton bad state %q unreachable by any transition", b)
		}
		out.bad |= 1 << uint(i)
	}
	for _, t := range a.Trans {
		ev := t.On
		if ev == nil {
			ev = AnyEvent()
		}
		out.rules[idx[t.From]] = append(out.rules[idx[t.From]],
			obsRule{ev: ev, when: t.When, to: idx[t.To]})
	}
	return out, nil
}

// maxObsStates and maxObsRules bound the bitset representation.
const (
	maxObsStates = 64
	maxObsRules  = 64
)

// compile flattens the skeleton into the lts.Observer bit machine:
// rules get global indices, events become per-label bitsets, and When
// predicates become slot-compiled closures evaluated once per state.
func (a *obsAuto) compile(c *compiler) (*lts.Observer, error) {
	if a.n > maxObsStates {
		return nil, fmt.Errorf("observer has %d states; the checker supports up to %d", a.n, maxObsStates)
	}
	total := 0
	for _, rs := range a.rules {
		total += len(rs)
	}
	if total > maxObsRules {
		return nil, fmt.Errorf("observer has %d rules; the checker supports up to %d", total, maxObsRules)
	}
	obs := &lts.Observer{
		NumStates: a.n,
		Init:      a.init,
		Bad:       a.bad,
		ByState:   make([][]int32, a.n),
		LabelBits: make(map[string]uint64),
	}
	var flat []obsRule
	for s, rs := range a.rules {
		for _, r := range rs {
			gi := len(flat)
			flat = append(flat, r)
			obs.ByState[s] = append(obs.ByState[s], int32(gi))
			obs.To = append(obs.To, int32(r.to))
		}
	}
	obs.Preds = make([]func(*core.State) bool, len(flat))
	for gi, r := range flat {
		if err := r.ev.validate(c); err != nil {
			return nil, err
		}
		if r.when != nil {
			f, err := r.when.compilePred(c)
			if err != nil {
				return nil, err
			}
			obs.Preds[gi] = f
		}
		if r.ev.matchesInit() {
			obs.InitBits |= 1 << uint(gi)
		}
	}
	labels := c.sys.InteractionNames()
	obs.AnyBits = ^uint64(0) >> uint(64-max(1, len(flat)))
	if len(flat) == 0 {
		obs.AnyBits = 0
	}
	for _, l := range labels {
		var bits uint64
		for gi, r := range flat {
			if r.ev.matchesLabel(l) {
				bits |= 1 << uint(gi)
			}
		}
		obs.LabelBits[l] = bits
		obs.AnyBits &= bits
	}
	return obs, nil
}

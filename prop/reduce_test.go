// Black-box tests of the visibility contract between the property
// algebra and ample-set reduction (bip.Reduce): a property that observes
// an interaction or reads an atom must never lose its counterexample to
// pruning, and property classes reduction cannot preserve must degrade
// the run to full expansion. Everything goes through the public surface.
package prop_test

import (
	"fmt"
	"strings"
	"testing"

	"bip"
	"bip/check"
	"bip/models"
	"bip/prop"
)

// replayStates replays a label sequence nondeterministically on the
// materialized full LTS and returns the set of states the run can end
// in; empty means the sequence is not a run of the system.
func replayStates(t *testing.T, l *check.LTS, path []string) map[int]bool {
	t.Helper()
	cur := map[int]bool{0: true}
	for _, label := range path {
		next := make(map[int]bool)
		for s := range cur {
			for _, e := range l.Edges(s) {
				if e.Label == label {
					next[e.To] = true
				}
			}
		}
		cur = next
	}
	return cur
}

// TestReductionVisibilityContract is the table over every prop operator:
// for each, bip.Verify with and without bip.Reduce() must report the
// same Violated/Conclusive verdict at workers 1, 4 and 8 in both stream
// orders, a reported counterexample must replay as a real run of the
// full system ending where the operator's confirm closure says it
// should, and Report.Reduced must record exactly whether reduction was
// able to engage (false for opaque predicates and step-counting events).
//
// The model is DiamondGrid(5): five independent two-step components
// c0..c4 with interactions a<i>, b<i> — maximal interleaving, so any
// unsound pruning of the observed component's moves would change a
// verdict immediately.
func TestReductionVisibilityContract(t *testing.T) {
	sys, err := models.DiamondGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := check.Explore(sys, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c3 := sys.AtomIndex("c3")
	atS2 := func(st bip.State) bool { return st.Locs[c3] == "s2" }

	cases := []struct {
		name string
		p    prop.Prop
		// wantViolated is the full-exploration verdict; reduction must
		// reproduce it exactly.
		wantViolated bool
		// wantReduced: does the property's visibility admit reduction?
		wantReduced bool
		// confirm checks a final state of the replayed counterexample
		// (nil: any valid run is enough).
		confirm func(bip.State) bool
	}{
		{"always", prop.Always(prop.Not(prop.At("c3", "s2"))), true, true, atS2},
		{"never", prop.Never(prop.At("c3", "s2")), true, true, atS2},
		{"reachable", prop.Reachable(prop.At("c3", "s2")), true, true, atS2},
		{"until-violated", prop.Until(prop.At("c0", "s0"), prop.On("a3")), true, true,
			func(st bip.State) bool { return st.Locs[sys.AtomIndex("c0")] != "s0" }},
		{"until-holds", prop.Until(prop.At("c3", "s0"), prop.On("a3")), false, true, nil},
		{"after", prop.After(prop.On("a3"), prop.Never(prop.At("c3", "s2"))), true, true, atS2},
		{"between", prop.Between(prop.On("a3"), prop.On("b3"), prop.At("c3", "s0")), true, true,
			func(st bip.State) bool { return st.Locs[c3] == "s1" }},
		{"deadlockfree", prop.DeadlockFree(), true, true,
			func(st bip.State) bool {
				id, ok := full.FindState(func(s bip.State) bool {
					for i := range s.Locs {
						if s.Locs[i] != st.Locs[i] {
							return false
						}
					}
					return true
				})
				return ok && len(full.Edges(id)) == 0
			}},
		// Opaque and step-counting forms: the verdict must still be the
		// full-exploration one, because the run degrades to full expansion.
		{"fn-degrades", prop.Reachable(prop.Fn(atS2)), true, false, atS2},
		{"anyevent-degrades", prop.Until(prop.At("c3", "s0"), prop.AnyEvent()), false, false, nil},
		{"noton-degrades", prop.After(prop.NotOn("a3"), prop.Never(prop.At("c3", "s2"))), true, false, atS2},
	}
	orders := []struct {
		name string
		opt  []bip.Option
	}{
		{"det", nil},
		{"fast", []bip.Option{bip.Unordered()}},
	}
	for _, tc := range cases {
		for _, ord := range orders {
			for _, w := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/%s/w%d", tc.name, ord.name, w)
				base := append([]bip.Option{bip.Prop(tc.p), bip.Workers(w)}, ord.opt...)
				fullRep, err := bip.Verify(sys, base...)
				if err != nil {
					t.Fatalf("%s: full verify: %v", name, err)
				}
				redRep, err := bip.Verify(sys, append(base, bip.Reduce())...)
				if err != nil {
					t.Fatalf("%s: reduced verify: %v", name, err)
				}
				if redRep.Reduced != tc.wantReduced {
					t.Fatalf("%s: Reduced=%v, want %v", name, redRep.Reduced, tc.wantReduced)
				}
				fp := fullRep.Properties[0]
				rp := redRep.Properties[0]
				if fp.Violated != tc.wantViolated {
					t.Fatalf("%s: full exploration Violated=%v, want %v (test premise broken)",
						name, fp.Violated, tc.wantViolated)
				}
				if rp.Violated != fp.Violated || rp.Conclusive != fp.Conclusive {
					t.Fatalf("%s: reduced verdict (violated=%v conclusive=%v) != full (violated=%v conclusive=%v)",
						name, rp.Violated, rp.Conclusive, fp.Violated, fp.Conclusive)
				}
				if !tc.wantReduced && redRep.States != fullRep.States {
					t.Fatalf("%s: degraded run visited %d states, full %d — degradation must be total",
						name, redRep.States, fullRep.States)
				}
				if rp.Violated {
					final := replayStates(t, full, rp.Path)
					if len(final) == 0 {
						t.Fatalf("%s: counterexample %v is not a run of the system", name, rp.Path)
					}
					if tc.confirm != nil {
						ok := false
						for id := range final {
							if tc.confirm(full.State(id)) {
								ok = true
								break
							}
						}
						if !ok {
							t.Fatalf("%s: no final state of replayed %v confirms the violation", name, rp.Path)
						}
					}
				}
			}
		}
	}
}

// TestReductionEngagesAndShrinks pins that reduction actually reduces
// when it may: on DiamondGrid the property pins one component and the
// other four clusters collapse, and the union of several reducible
// properties stays reducible.
func TestReductionEngagesAndShrinks(t *testing.T) {
	sys, err := models.DiamondGrid(6)
	if err != nil {
		t.Fatal(err)
	}
	fullRep, err := bip.Verify(sys, bip.Deadlock(), bip.Prop(prop.Reachable(prop.At("c3", "s2"))))
	if err != nil {
		t.Fatal(err)
	}
	redRep, err := bip.Verify(sys, bip.Deadlock(), bip.Prop(prop.Reachable(prop.At("c3", "s2"))), bip.Reduce())
	if err != nil {
		t.Fatal(err)
	}
	if !redRep.Reduced {
		t.Fatalf("union of deadlockfree and reachable(at(c3,s2)) must stay reducible: %+v", redRep)
	}
	if redRep.States*5 > fullRep.States {
		t.Fatalf("expected >=5x state reduction, got %d reduced vs %d full", redRep.States, fullRep.States)
	}
	if redRep.AmpleStates == 0 || redRep.PrunedMoves == 0 {
		t.Fatalf("reduction counters must be populated: %+v", redRep)
	}
	if !strings.Contains(redRep.String(), "reduced:") {
		t.Fatalf("Report.String must surface the reduction summary: %s", redRep)
	}
	dl, _ := redRep.Property("deadlock")
	if !dl.Violated {
		t.Fatalf("DiamondGrid's all-s2 deadlock must survive reduction: %+v", dl)
	}
}

// Package prop is the declarative property algebra of the bip module:
// requirements stated as first-class AST terms instead of opaque host
// callbacks, the way the source paper makes properties part of the
// design rather than an afterthought.
//
// Three layers compose:
//
//   - state predicates (Pred): At(comp, loc) control-location tests and
//     Var(comp, v) variable terms combined with comparisons, arithmetic
//     and boolean connectives;
//   - event predicates (Event): matchers over interaction labels —
//     On(labels...), NotOn(labels...), AnyEvent();
//   - safety-temporal properties (Prop): Always, Never, Until, After,
//     Between, Reachable, DeadlockFree, and explicit observer automata
//     (Automaton).
//
// Properties are plain values: serializable (String renders the textual
// syntax bip.ParseProp accepts), comparable by structure, and compiled
// at Verify time against a concrete system. Compilation resolves every
// component, location, variable and label name once — the compiled
// predicates index the state directly (interned location compare, one
// direct map read per variable slot, like the interaction compiler in
// the core) — and turns temporal operators into a deterministic
// observer automaton checked by the product-automaton sink
// (check.AutomatonCheck) while the state space streams by. Pure state
// properties (Always/Never of a Pred, Reachable, DeadlockFree)
// specialize to the O(frontier) streaming checkers instead.
//
// Use with bip.Verify:
//
//	rep, err := bip.Verify(sys,
//	    bip.Prop(prop.Never(prop.And(
//	        prop.At("phil0", "eating"), prop.At("phil1", "eating")))),
//	    bip.Prop(prop.After(prop.On("depart"),
//	        prop.Until(prop.At("door", "closed"), prop.On("arrive")))),
//	)
package prop

import (
	"fmt"
	"strconv"
	"strings"

	"bip/internal/core"
)

// ---------------------------------------------------------------------
// State predicates.

// Pred is a state predicate: a boolean AST over component locations and
// variables, compiled against a system's atom layouts at Verify time.
type Pred interface {
	fmt.Stringer
	compilePred(c *compiler) (predFn, error)
}

// Term is an integer-valued expression over component variables and
// literals. Boolean variables are used directly as predicates (Var
// implements both interfaces; compilation picks by declared kind).
type Term interface {
	fmt.Stringer
	compileTerm(c *compiler) (intFn, error)
}

type (
	predFn = func(*core.State) bool
	intFn  = func(*core.State) int64
)

// atPred: component comp is at control location loc.
type atPred struct{ comp, loc string }

// At returns the predicate "component comp is at location loc".
func At(comp, loc string) Pred { return atPred{comp: comp, loc: loc} }

func (p atPred) String() string { return fmt.Sprintf("at(%s, %s)", p.comp, p.loc) }

// VarRef references a component variable ("comp.v"). It is a Term when
// the variable is declared int, and a Pred when it is declared bool —
// compilation checks the declared kind.
type VarRef struct{ Comp, Name string }

// Var references component variable comp.v.
func Var(comp, v string) VarRef { return VarRef{Comp: comp, Name: v} }

func (v VarRef) String() string { return v.Comp + "." + v.Name }

// fnPred is the escape hatch wrapping an opaque Go predicate; it is the
// thin-adapter form the pre-algebra bip.Invariant/bip.Reach options
// compile to. It has no textual form.
type fnPred struct{ f func(core.State) bool }

// Fn lifts an opaque Go state predicate into the algebra. Unlike the
// declarative terms it cannot be rendered textually or slot-compiled;
// it exists so the legacy func(State) bool surfaces remain expressible.
func Fn(f func(core.State) bool) Pred { return fnPred{f: f} }

func (p fnPred) String() string { return "<go-func>" }

type boolLit bool

// True is the predicate that always holds.
func True() Pred { return boolLit(true) }

// False is the predicate that never holds.
func False() Pred { return boolLit(false) }

func (b boolLit) String() string { return strconv.FormatBool(bool(b)) }

type notPred struct{ p Pred }

// Not negates a predicate.
func Not(p Pred) Pred { return notPred{p: p} }

func (p notPred) String() string { return "!" + paren(p.p) }

type andPred struct{ ps []Pred }

// And is n-ary conjunction; And() is True.
func And(ps ...Pred) Pred { return andPred{ps: ps} }

func (p andPred) String() string { return joinPreds(p.ps, " && ", "true") }

type orPred struct{ ps []Pred }

// Or is n-ary disjunction; Or() is False.
func Or(ps ...Pred) Pred { return orPred{ps: ps} }

func (p orPred) String() string { return joinPreds(p.ps, " || ", "false") }

// Implies is material implication: Or(Not(a), b).
func Implies(a, b Pred) Pred { return Or(Not(a), b) }

func joinPreds(ps []Pred, sep, empty string) string {
	if len(ps) == 0 {
		return empty
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = paren(p)
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// paren renders a sub-predicate, parenthesizing comparisons so the
// textual form re-parses with the same structure.
func paren(p Pred) string {
	if c, ok := p.(cmpPred); ok {
		return "(" + c.String() + ")"
	}
	return p.String()
}

// cmpOp identifies a comparison operator.
type cmpOp int

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
)

var cmpNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

type cmpPred struct {
	op   cmpOp
	l, r Term
}

// Eq is the predicate l == r over integer terms.
func Eq(l, r Term) Pred { return cmpPred{op: opEq, l: l, r: r} }

// Ne is the predicate l != r over integer terms.
func Ne(l, r Term) Pred { return cmpPred{op: opNe, l: l, r: r} }

// Lt is the predicate l < r over integer terms.
func Lt(l, r Term) Pred { return cmpPred{op: opLt, l: l, r: r} }

// Le is the predicate l <= r over integer terms.
func Le(l, r Term) Pred { return cmpPred{op: opLe, l: l, r: r} }

// Gt is the predicate l > r over integer terms.
func Gt(l, r Term) Pred { return cmpPred{op: opGt, l: l, r: r} }

// Ge is the predicate l >= r over integer terms.
func Ge(l, r Term) Pred { return cmpPred{op: opGe, l: l, r: r} }

func (p cmpPred) String() string {
	return fmt.Sprintf("%s %s %s", p.l.String(), cmpNames[p.op], p.r.String())
}

// ---------------------------------------------------------------------
// Integer terms.

type intLit int64

// Int is an integer literal term.
func Int(n int64) Term { return intLit(n) }

func (n intLit) String() string { return strconv.FormatInt(int64(n), 10) }

// arithOp identifies an arithmetic operator.
type arithOp int

const (
	opAdd arithOp = iota
	opSub
	opMul
)

var arithNames = [...]string{"+", "-", "*"}

type arithTerm struct {
	op   arithOp
	l, r Term
}

// Add is the term l + r.
func Add(l, r Term) Term { return arithTerm{op: opAdd, l: l, r: r} }

// Sub is the term l - r.
func Sub(l, r Term) Term { return arithTerm{op: opSub, l: l, r: r} }

// Mul is the term l * r.
func Mul(l, r Term) Term { return arithTerm{op: opMul, l: l, r: r} }

func (t arithTerm) String() string {
	return fmt.Sprintf("(%s %s %s)", t.l.String(), arithNames[t.op], t.r.String())
}

type negTerm struct{ t Term }

// Neg is the term -t.
func Neg(t Term) Term { return negTerm{t: t} }

func (t negTerm) String() string { return "-" + t.t.String() }

// ---------------------------------------------------------------------
// Event predicates.

// Event matches interaction labels on the exploration event stream. An
// Event also decides whether it matches the initial pseudo-event (the
// observation of the initial state, before any interaction fired):
// AnyEvent and NotOn do, On does not.
type Event interface {
	fmt.Stringer
	matchesLabel(label string) bool
	matchesInit() bool
	validate(c *compiler) error
}

type onEvent struct{ labels []string }

// On matches any of the listed interaction labels. Compilation rejects
// labels the system does not declare.
func On(labels ...string) Event { return onEvent{labels: labels} }

func (e onEvent) matchesLabel(l string) bool {
	for _, x := range e.labels {
		if x == l {
			return true
		}
	}
	return false
}

func (e onEvent) matchesInit() bool { return false }

func (e onEvent) String() string {
	if len(e.labels) == 1 {
		return e.labels[0]
	}
	return "on(" + strings.Join(e.labels, ", ") + ")"
}

type notOnEvent struct{ labels []string }

// NotOn matches every interaction label except the listed ones (and the
// initial pseudo-event: before any interaction fired, none of the
// listed ones did).
func NotOn(labels ...string) Event { return notOnEvent{labels: labels} }

func (e notOnEvent) matchesLabel(l string) bool {
	for _, x := range e.labels {
		if x == l {
			return false
		}
	}
	return true
}

func (e notOnEvent) matchesInit() bool { return true }

func (e notOnEvent) String() string {
	return "!on(" + strings.Join(e.labels, ", ") + ")"
}

type anyEvent struct{}

// AnyEvent matches every interaction label and the initial
// pseudo-event.
func AnyEvent() Event { return anyEvent{} }

func (anyEvent) matchesLabel(string) bool { return true }
func (anyEvent) matchesInit() bool        { return true }
func (anyEvent) String() string           { return "any" }

// ---------------------------------------------------------------------
// Safety-temporal properties.

// Prop is a checkable property: the value the bip.Prop option and
// bipc -prop hand to the verifier. The safety-temporal forms compile to
// observer automata; Always/Never of a pure state predicate, Reachable
// and DeadlockFree specialize to the O(frontier) streaming checkers.
type Prop interface {
	fmt.Stringer
	// Kind is the property's default report name ("always", "after",
	// "deadlock", ...), overridable with bip.Named.
	Kind() string
	// observer compiles the property to an automaton skeleton; forms
	// that are not path-observable (Reachable, DeadlockFree) refuse, so
	// they cannot be nested under After.
	observer(c *compiler) (*obsAuto, error)
}

type alwaysProp struct{ p Pred }

// Always requires p to hold on every reachable state.
func Always(p Pred) Prop { return alwaysProp{p: p} }

func (a alwaysProp) Kind() string   { return "always" }
func (a alwaysProp) String() string { return "always(" + a.p.String() + ")" }

type neverProp struct{ p Pred }

// Never requires p to hold on no reachable state: Always(Not(p)).
func Never(p Pred) Prop { return neverProp{p: p} }

func (n neverProp) Kind() string   { return "never" }
func (n neverProp) String() string { return "never(" + n.p.String() + ")" }

type untilProp struct {
	p Pred
	e Event
}

// Until requires p to hold on every state from the current one up to
// (and excluding the state reached by) the first occurrence of e. This
// is the safety half of "p until e": a run on which e never occurs but
// p always holds does not violate it.
func Until(p Pred, e Event) Prop { return untilProp{p: p, e: e} }

func (u untilProp) Kind() string { return "until" }
func (u untilProp) String() string {
	return fmt.Sprintf("until(%s, %s)", u.p.String(), u.e.String())
}

type afterProp struct {
	e     Event
	inner Prop
}

// After arms the inner property at the first occurrence of e: the state
// reached by the matching interaction is the inner property's initial
// observation. After(e, Always(p)) is the classic "once e happened, p
// forever"; nesting is allowed (After(e1, After(e2, ...))).
func After(e Event, inner Prop) Prop { return afterProp{e: e, inner: inner} }

func (a afterProp) Kind() string { return "after" }
func (a afterProp) String() string {
	return fmt.Sprintf("after(%s, %s)", a.e.String(), a.inner.String())
}

type betweenProp struct {
	open, close Event
	p           Pred
}

// Between requires p to hold on every state inside each [open, close)
// episode: from the state reached by an occurrence of open (inclusive)
// up to the next occurrence of close (the state reached by close is
// outside). Episodes re-arm: every later open occurrence opens a new
// one. When an interaction matches both open and close, close wins.
func Between(open, close Event, p Pred) Prop {
	return betweenProp{open: open, close: close, p: p}
}

func (b betweenProp) Kind() string { return "between" }
func (b betweenProp) String() string {
	return fmt.Sprintf("between(%s, %s, %s)", b.open.String(), b.close.String(), b.p.String())
}

type reachableProp struct{ p Pred }

// Reachable asks whether a state satisfying p is reachable; finding one
// is reported as a violation with its witness path (the bad-state query
// form), and with exhaustive coverage the absence of a hit proves
// unreachability.
func Reachable(p Pred) Prop { return reachableProp{p: p} }

func (r reachableProp) Kind() string   { return "reachable" }
func (r reachableProp) String() string { return "reachable(" + r.p.String() + ")" }

type deadlockProp struct{}

// DeadlockFree requires every reachable state to have at least one
// enabled move.
func DeadlockFree() Prop { return deadlockProp{} }

func (deadlockProp) Kind() string   { return "deadlock" }
func (deadlockProp) String() string { return "deadlockfree" }

// ---------------------------------------------------------------------
// Explicit observer automata.

// ATrans is one transition of an explicit observer automaton. On nil
// means any observation (including the initial one); When nil means
// unconditional. Within a source state, declaration order is priority
// order: the first transition whose event matcher and predicate both
// accept the observation fires; when none does the observer stays put.
type ATrans struct {
	From, To string
	On       Event
	When     Pred
}

// Automaton is an explicit deterministic observer: the escape hatch for
// safety properties the combinators do not cover. States are inferred
// from Init, Bad and the transitions; reaching any Bad state is the
// violation. The zero On/When conventions and the first-match-wins rule
// are those of ATrans.
type Automaton struct {
	// Name labels the property in reports (Kind falls back to
	// "automaton" when empty).
	Name string
	// Init is the observer's state before the initial observation.
	Init string
	// Bad lists the violation states.
	Bad []string
	// Trans are the transitions, priority-ordered per source state.
	Trans []ATrans
}

// Kind implements Prop.
func (a Automaton) Kind() string {
	if a.Name != "" {
		return a.Name
	}
	return "automaton"
}

// String implements Prop. Explicit automata have no textual property
// syntax; the rendering is descriptive.
func (a Automaton) String() string {
	return fmt.Sprintf("automaton(%s: %d transitions)", a.Kind(), len(a.Trans))
}

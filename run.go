package bip

import "bip/internal/engine"

// Execution: the BIP run-times, re-exported from the engine package.
// Components never communicate directly, only through an engine (§5.6).
type (
	// RunOptions configures a single-threaded run (step bound, scheduler,
	// per-step observer, runtime invariant checking).
	RunOptions = engine.Options
	// RunResult reports a finished single-threaded run.
	RunResult = engine.Result
	// Scheduler resolves non-determinism among enabled moves.
	Scheduler = engine.Scheduler
	// FirstScheduler deterministically picks the first enabled move.
	FirstScheduler = engine.FirstScheduler
	// RandomScheduler picks uniformly with a seeded source.
	RandomScheduler = engine.RandomScheduler
	// MTOptions configures a multi-threaded run.
	MTOptions = engine.MTOptions
	// MTResult reports a finished multi-threaded run, including the
	// committed move sequence for replay validation.
	MTResult = engine.MTResult
)

// ErrInvariantViolated is wrapped by run errors caused by a component
// invariant failing at runtime.
var ErrInvariantViolated = engine.ErrInvariantViolated

// NewRandomScheduler returns a seeded random scheduler (reproducible
// runs).
func NewRandomScheduler(seed int64) *RandomScheduler { return engine.NewRandomScheduler(seed) }

// Run executes sys with the single-threaded engine until deadlock or the
// step bound, driven by an incremental step context.
func Run(sys *System, opts RunOptions) (*RunResult, error) { return engine.Run(sys, opts) }

// RunMT executes sys with the multi-threaded engine: each atom runs in
// its own goroutine and a coordinator commits non-conflicting
// interactions concurrently.
func RunMT(sys *System, opts MTOptions) (*MTResult, error) { return engine.RunMT(sys, opts) }

// Replay re-executes a recorded move sequence through the reference
// semantics, verifying that each move was enabled when fired.
func Replay(sys *System, moves []Move) (State, error) { return engine.Replay(sys, moves) }

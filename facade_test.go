package bip_test

import (
	"strings"
	"testing"

	"bip"
	"bip/check"
	"bip/models"
)

// TestFacadeBuildRunVerify exercises the public surface end to end the
// way an external consumer would: author a model with the builders, run
// it on the engine, verify it streaming, and cross-check against the
// materialized LTS and the compositional verifier — importing only bip
// and bip/check.
func TestFacadeBuildRunVerify(t *testing.T) {
	worker := bip.NewAtom("worker").
		Location("idle", "busy").
		Int("n", 0).
		Port("start", "n").
		Port("done").
		TransitionG("idle", "start", "busy", bip.Lt(bip.V("n"), bip.I(3)),
			bip.Set("n", bip.Add(bip.V("n"), bip.I(1)))).
		Transition("busy", "done", "idle").
		Invariant(bip.Le(bip.V("n"), bip.I(3))).
		MustBuild()
	sys, err := bip.NewSystem("facade").
		AddAs("w1", worker).
		AddAs("w2", worker).
		Connect("go", bip.P("w1", "start"), bip.P("w2", "start")).
		Connect("fin", bip.P("w1", "done"), bip.P("w2", "done")).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	res, err := bip.Run(sys, bip.RunOptions{MaxSteps: 10, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked || res.Steps != 6 {
		t.Fatalf("run: steps=%d deadlocked=%v, want 6 steps into deadlock", res.Steps, res.Deadlocked)
	}

	rep, err := bip.Verify(sys,
		bip.Deadlock(),
		bip.AtomInvariants(),
		bip.Reach(func(st bip.State) bool {
			v, _ := st.Vars[0].Get("n")
			i, _ := v.Int()
			return i == 3
		}),
		bip.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	dl, ok := rep.Property("deadlock")
	if !ok || !dl.Violated || !dl.Conclusive {
		t.Fatalf("deadlock property: %+v", dl)
	}
	inv, _ := rep.Property("atom-invariants")
	if inv.Violated {
		t.Fatalf("atom invariants must hold: %+v", inv)
	}
	reach, _ := rep.Property("reach")
	if !reach.Violated || len(reach.Path) != 5 {
		t.Fatalf("reach n=3: %+v", reach)
	}

	// The streaming verdicts must agree with the materialized analyses.
	l, err := check.Explore(sys, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dls := l.Deadlocks(); len(dls) == 0 || dls[0] != dl.State {
		t.Fatalf("materialized deadlocks %v vs streaming state %d", dls, dl.State)
	}
	if got := l.PathTo(dl.State); strings.Join(got, " ") != strings.Join(dl.Path, " ") {
		t.Fatalf("paths diverge: %v vs %v", got, dl.Path)
	}
}

// TestExploreRejectsPropertyOptions pins that a property option passed
// to Explore is an error, not a silently dropped check.
func TestExploreRejectsPropertyOptions(t *testing.T) {
	sys, err := models.Philosophers(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bip.Explore(sys, bip.Deadlock()); err == nil {
		t.Fatal("Explore must reject Verify-only property options")
	}
	if _, err := bip.Explore(sys, bip.Workers(2), bip.MaxStates(100)); err != nil {
		t.Fatalf("exploration options must be accepted: %v", err)
	}
}

// TestFacadeParse pins the textual front door.
func TestFacadeParse(t *testing.T) {
	src := `
system pingpong
atom Player {
  port hit
  location l0, l1
  init l0
  from l0 to l1 on hit
  from l1 to l0 on hit
}
instance a : Player
instance b : Player
connector rally = a.hit + b.hit
`
	sys, err := bip.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bip.Verify(sys, bip.Deadlock())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("pingpong must verify clean: %s", rep)
	}
	if rep.States != 2 {
		t.Fatalf("pingpong has 2 states, verified %d", rep.States)
	}
}

// TestFacadeCompositionalAndModels ties the model zoo to the
// compositional checker through the public packages.
func TestFacadeCompositionalAndModels(t *testing.T) {
	sys, err := models.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	vr, err := check.Compositional(sys, check.CompositionalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vr.DeadlockFree {
		t.Fatalf("philosophers must be proved deadlock-free: %s", check.FormatCompositional(vr))
	}
}

// TestVerifyUnordered pins the public fast path: bip.Unordered() routes
// a multi-worker Verify through the work-stealing explorer, and every
// verdict boolean (violated / conclusive) matches the deterministic
// run — only the particular witness may differ, and it must still be a
// well-formed non-empty path.
func TestVerifyUnordered(t *testing.T) {
	bad, err := models.PhilosophersDeadlocking(3)
	if err != nil {
		t.Fatal(err)
	}
	det, err := bip.Verify(bad, bip.Deadlock(), bip.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := bip.Verify(bad, bip.Deadlock(), bip.Workers(4), bip.Unordered())
	if err != nil {
		t.Fatal(err)
	}
	dDet, _ := det.Property("deadlock")
	dFast, _ := fast.Property("deadlock")
	if !dDet.Violated || !dFast.Violated {
		t.Fatalf("two-phase philosophers must deadlock in both orders (det=%v fast=%v)",
			dDet.Violated, dFast.Violated)
	}
	// Every run to the all-picked-left deadlock takes exactly one take
	// per philosopher, whatever order discovered it.
	if len(dFast.Path) != 3 {
		t.Fatalf("unordered deadlock path %v, want 3 steps", dFast.Path)
	}
	good, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := models.ControlOnly(good)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bip.Verify(ctl, bip.Deadlock(), bip.AtomInvariants(),
		bip.Workers(4), bip.Unordered())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("deadlock-free philosophers must verify OK under Unordered: %s", rep)
	}
	// A run that covers the full space visits the same state and edge
	// sets in any order, so its counts are schedule-independent.
	repDet, err := bip.Verify(ctl, bip.Deadlock(), bip.AtomInvariants(), bip.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != repDet.States || rep.Transitions != repDet.Transitions {
		t.Fatalf("full coverage must agree on counts: det (%d,%d) fast (%d,%d)",
			repDet.States, repDet.Transitions, rep.States, rep.Transitions)
	}

	// Temporal/observer properties ride the unordered product fixpoint:
	// the unsafe elevator's door-safety violation must be found either
	// way, with a usable counterexample.
	unsafe, err := models.UnsafeElevator(3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bip.ParseProp("after(cabin.depart, until(at(door, closed), cabin.arrive))")
	if err != nil {
		t.Fatal(err)
	}
	repU, err := bip.Verify(unsafe, bip.Prop(p), bip.Workers(4), bip.Unordered())
	if err != nil {
		t.Fatal(err)
	}
	pu := repU.Properties[0]
	if !pu.Violated || len(pu.Path) == 0 {
		t.Fatalf("unsafe elevator must violate door safety under Unordered (violated=%v path=%v)",
			pu.Violated, pu.Path)
	}
}

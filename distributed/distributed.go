// Package distributed is the public facade over the three-layer
// send/receive transformation (§5.4 of the paper): a validated BIP model
// is decomposed into S/R component nodes, interaction-protocol nodes and
// a conflict-resolution layer, executed over a simulated asynchronous
// network, with the committed interaction order replay-validated against
// the reference semantics.
package distributed

import (
	"bip"
	idist "bip/internal/distributed"
)

type (
	// Config parameterizes a deployment (protocol, partition, seed,
	// commit and message caps).
	Config = idist.Config
	// CRP selects the conflict-resolution protocol.
	CRP = idist.CRP
	// Stats reports a deployment run (commits, messages, aborts,
	// messages per commit).
	Stats = idist.Stats
	// Deployment is a built three-layer system ready to Run.
	Deployment = idist.Deployment
)

// The conflict-resolution protocols of the paper's Fig. 5.5.
const (
	// Centralized uses a single arbiter granting exclusive commits.
	Centralized = idist.Centralized
	// TokenRing circulates commit permission among protocol nodes.
	TokenRing = idist.TokenRing
	// Ordered is the fully distributed dining-philosophers scheme.
	Ordered = idist.Ordered
)

// Deploy builds the three-layer distributed system for sys.
func Deploy(sys *bip.System, cfg Config) (*Deployment, error) { return idist.Deploy(sys, cfg) }

// ReplayLabels validates a committed interaction order against the
// reference semantics, returning the number of steps replayed.
func ReplayLabels(sys *bip.System, labels []string) (int, error) {
	return idist.ReplayLabels(sys, labels)
}

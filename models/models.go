// Package models provides the benchmark systems used throughout the
// repository's tests, examples and experiments: dining philosophers (in a
// deadlock-free multiparty variant and a deadlocking two-phase variant),
// token ring, producer/consumer, the gas station, a temperature
// controller, the elevator of the paper's introduction, and the GCD
// program of Fig. 6.1.
//
// The package is part of the public surface (import "bip/models"): the
// zoo doubles as executable documentation of the model-building API and
// as the workload library for external benchmarking.
package models

import (
	"fmt"
	"strconv"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// Philosopher builds the multiparty-eating philosopher atom: eating grabs
// both forks atomically (a 3-way rendezvous at system level), which is the
// correct-by-construction deadlock-free design the paper attributes to
// expressive multiparty interaction.
func Philosopher() *behavior.Atom {
	return behavior.NewBuilder("phil").
		Location("thinking", "eating").
		Int("meals", 0).
		Port("eat", "meals").
		Port("put").
		TransitionG("thinking", "eat", "eating", nil,
			expr.Set("meals", expr.Add(expr.V("meals"), expr.I(1)))).
		Transition("eating", "put", "thinking").
		MustBuild()
}

// Fork builds the owner-tracking fork atom: the fork remembers whether it
// was taken as a left fork (by its own philosopher) or as a right fork (by
// the neighbour). This is the standard shape of the D-Finder benchmarks;
// the owner locations are what makes trap-based interaction invariants
// strong enough to prove deadlock-freedom compositionally.
func Fork() *behavior.Atom {
	return behavior.NewBuilder("fork").
		Location("free", "busyL", "busyR").
		Port("takeL").
		Port("takeR").
		Port("relL").
		Port("relR").
		Transition("free", "takeL", "busyL").
		Transition("free", "takeR", "busyR").
		Transition("busyL", "relL", "free").
		Transition("busyR", "relR", "free").
		MustBuild()
}

// Philosophers builds the deadlock-free dining philosophers system with n
// philosophers and n forks: eat_i is the 3-way rendezvous
// (phil_i.eat, fork_i.takeL, fork_{i+1}.takeR) — grabbing both forks
// atomically is the paper's correctness-by-construction design enabled by
// multiparty interaction.
func Philosophers(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("models: philosophers needs n >= 2, got %d", n)
	}
	phil, fork := Philosopher(), Fork()
	b := core.NewSystem(fmt.Sprintf("philosophers-%d", n))
	for i := 0; i < n; i++ {
		b.AddAs(pname(i), phil)
		b.AddAs(fname(i), fork)
	}
	for i := 0; i < n; i++ {
		left, right := fname(i), fname((i+1)%n)
		b.Connect("eat"+strconv.Itoa(i),
			core.P(pname(i), "eat"), core.P(left, "takeL"), core.P(right, "takeR"))
		b.Connect("put"+strconv.Itoa(i),
			core.P(pname(i), "put"), core.P(left, "relL"), core.P(right, "relR"))
	}
	return b.Build()
}

// TwoPhasePhilosopher builds the philosopher that grabs forks one at a
// time — the classic deadlocking design.
func TwoPhasePhilosopher() *behavior.Atom {
	return behavior.NewBuilder("phil2").
		Location("thinking", "hasLeft", "eating").
		Port("getLeft").
		Port("getRight").
		Port("put").
		Transition("thinking", "getLeft", "hasLeft").
		Transition("hasLeft", "getRight", "eating").
		Transition("eating", "put", "thinking").
		MustBuild()
}

// PhilosophersDeadlocking builds the two-phase variant: left fork first,
// then right. The circular-wait deadlock (everyone holding their left
// fork) is reachable; experiments use it as the positive instance for
// deadlock detection.
func PhilosophersDeadlocking(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("models: philosophers needs n >= 2, got %d", n)
	}
	phil, fork := TwoPhasePhilosopher(), Fork()
	b := core.NewSystem(fmt.Sprintf("philosophers2p-%d", n))
	for i := 0; i < n; i++ {
		b.AddAs(pname(i), phil)
		b.AddAs(fname(i), fork)
	}
	for i := 0; i < n; i++ {
		left, right := fname(i), fname((i+1)%n)
		b.Connect("getL"+strconv.Itoa(i), core.P(pname(i), "getLeft"), core.P(left, "takeL"))
		b.Connect("getR"+strconv.Itoa(i), core.P(pname(i), "getRight"), core.P(right, "takeR"))
		b.Connect("put"+strconv.Itoa(i),
			core.P(pname(i), "put"), core.P(left, "relL"), core.P(right, "relR"))
	}
	return b.Build()
}

func pname(i int) string { return "phil" + strconv.Itoa(i) }
func fname(i int) string { return "fork" + strconv.Itoa(i) }

// TokenRing builds a ring of n stations passing a single token. Station 0
// starts with the token. pass_i moves the token from station i to i+1.
func TokenRing(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("models: token ring needs n >= 2, got %d", n)
	}
	holder := behavior.NewBuilder("station").
		Location("has", "idle").
		Int("seen", 1).
		Port("send").
		Port("recv").
		Transition("has", "send", "idle").
		TransitionG("idle", "recv", "has", nil,
			expr.Set("seen", expr.Add(expr.V("seen"), expr.I(1)))).
		MustBuild()
	empty := behavior.NewBuilder("station").
		Location("idle", "has").
		Int("seen", 0).
		Port("send").
		Port("recv").
		Transition("has", "send", "idle").
		TransitionG("idle", "recv", "has", nil,
			expr.Set("seen", expr.Add(expr.V("seen"), expr.I(1)))).
		MustBuild()
	b := core.NewSystem(fmt.Sprintf("tokenring-%d", n))
	for i := 0; i < n; i++ {
		a := empty
		if i == 0 {
			a = holder
		}
		b.AddAs("st"+strconv.Itoa(i), a)
	}
	for i := 0; i < n; i++ {
		b.Connect("pass"+strconv.Itoa(i),
			core.P("st"+strconv.Itoa(i), "send"),
			core.P("st"+strconv.Itoa((i+1)%n), "recv"))
	}
	return b.Build()
}

// ProducerConsumer builds a producer feeding a bounded buffer drained by a
// consumer. The buffer's count variable carries the occupancy; put is
// guarded by count < cap, get by count > 0.
func ProducerConsumer(capacity int64) (*core.System, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("models: buffer capacity must be >= 1, got %d", capacity)
	}
	producer := behavior.NewBuilder("producer").
		Location("ready").
		Int("produced", 0).
		Port("put", "produced").
		TransitionG("ready", "put", "ready", nil,
			expr.Set("produced", expr.Add(expr.V("produced"), expr.I(1)))).
		MustBuild()
	buffer := behavior.NewBuilder("buffer").
		Location("s").
		Int("count", 0).
		Port("in", "count").
		Port("out", "count").
		TransitionG("s", "in", "s", expr.Lt(expr.V("count"), expr.I(capacity)),
			expr.Set("count", expr.Add(expr.V("count"), expr.I(1)))).
		TransitionG("s", "out", "s", expr.Gt(expr.V("count"), expr.I(0)),
			expr.Set("count", expr.Sub(expr.V("count"), expr.I(1)))).
		Invariant(expr.And(
			expr.Ge(expr.V("count"), expr.I(0)),
			expr.Le(expr.V("count"), expr.I(capacity)))).
		MustBuild()
	consumer := behavior.NewBuilder("consumer").
		Location("ready").
		Int("consumed", 0).
		Port("get", "consumed").
		TransitionG("ready", "get", "ready", nil,
			expr.Set("consumed", expr.Add(expr.V("consumed"), expr.I(1)))).
		MustBuild()
	return core.NewSystem("prodcons").
		Add(producer).Add(buffer).Add(consumer).
		Connect("put", core.P("producer", "put"), core.P("buffer", "in")).
		Connect("get", core.P("buffer", "out"), core.P("consumer", "get")).
		Build()
}

// GasStation builds the classical gas-station benchmark: customers prepay
// at the operator, are assigned a free pump, pump, and finish. Pumps track
// their current customer through dedicated locations (pure control, no
// data guards), which keeps the model within reach of the compositional
// verifier's location-based abstraction.
func GasStation(pumps, customers int) (*core.System, error) {
	if pumps < 1 || customers < 1 {
		return nil, fmt.Errorf("models: gas station needs >=1 pump and customer, got %d/%d", pumps, customers)
	}
	b := core.NewSystem(fmt.Sprintf("gasstation-%dp%dc", pumps, customers))

	operator := behavior.NewBuilder("operator").
		Location("free", "busy").
		Port("accept").
		Port("assign").
		Transition("free", "accept", "busy").
		Transition("busy", "assign", "free").
		MustBuild()
	b.Add(operator)

	customer := behavior.NewBuilder("customer").
		Location("idle", "waiting", "pumping").
		Port("prepay").
		Port("start").
		Port("finish").
		Transition("idle", "prepay", "waiting").
		Transition("waiting", "start", "pumping").
		Transition("pumping", "finish", "idle").
		MustBuild()

	pumpB := behavior.NewBuilder("pump").Location("free")
	for c := 0; c < customers; c++ {
		loc := "busy" + strconv.Itoa(c)
		pumpB.Location(loc).
			Port("activate"+strconv.Itoa(c)).
			Port("done"+strconv.Itoa(c)).
			Transition("free", "activate"+strconv.Itoa(c), loc).
			Transition(loc, "done"+strconv.Itoa(c), "free")
	}
	pump := pumpB.Initial("free").MustBuild()

	for c := 0; c < customers; c++ {
		b.AddAs("cust"+strconv.Itoa(c), customer)
	}
	for p := 0; p < pumps; p++ {
		b.AddAs("pump"+strconv.Itoa(p), pump)
	}
	for c := 0; c < customers; c++ {
		cn := "cust" + strconv.Itoa(c)
		b.Connect("prepay"+strconv.Itoa(c), core.P(cn, "prepay"), core.P("operator", "accept"))
		for p := 0; p < pumps; p++ {
			pn := "pump" + strconv.Itoa(p)
			b.Connect(fmt.Sprintf("start%d_%d", c, p),
				core.P(cn, "start"), core.P(pn, "activate"+strconv.Itoa(c)), core.P("operator", "assign"))
			b.Connect(fmt.Sprintf("finish%d_%d", c, p),
				core.P(cn, "finish"), core.P(pn, "done"+strconv.Itoa(c)))
		}
	}
	return b.Build()
}

// Elevator builds the paper's introductory requirement ("when the cabin
// is moving all doors must be closed") as a BIP model: movement
// interactions synchronize with the door's stay-closed self-loop, so the
// requirement is enforced by construction. MovingWithDoorOpen is the
// corresponding state predicate; verification of the model shows it
// unreachable.
func Elevator(floors int) (*core.System, error) {
	if floors < 2 {
		return nil, fmt.Errorf("models: elevator needs >= 2 floors, got %d", floors)
	}
	cabin := behavior.NewBuilder("cabin").
		Location("stopped", "moving").
		Int("floor", 0).
		Port("depart", "floor").
		Port("arrive", "floor").
		Port("stay").
		TransitionG("stopped", "depart", "moving", nil, nil).
		TransitionG("moving", "arrive", "stopped", nil,
			expr.Set("floor", expr.Mod(expr.Add(expr.V("floor"), expr.I(1)), expr.I(int64(floors))))).
		Transition("stopped", "stay", "stopped").
		MustBuild()
	door := behavior.NewBuilder("door").
		Location("closed", "open").
		Port("open").
		Port("close").
		Port("stayClosed").
		Transition("closed", "open", "open").
		Transition("open", "close", "closed").
		Transition("closed", "stayClosed", "closed").
		MustBuild()
	// Mutual exclusion by construction: moving requires the door to
	// witness it is closed, and opening requires the cabin to witness it
	// is stopped.
	return core.NewSystem(fmt.Sprintf("elevator-%d", floors)).
		Add(cabin).Add(door).
		Connect("depart", core.P("cabin", "depart"), core.P("door", "stayClosed")).
		Connect("arrive", core.P("cabin", "arrive"), core.P("door", "stayClosed")).
		Connect("open", core.P("door", "open"), core.P("cabin", "stay")).
		Singleton("door", "close").
		Build()
}

// MovingWithDoorOpen is the violation predicate for Elevator: the cabin
// is moving while the door is open.
func MovingWithDoorOpen(sys *core.System) func(core.State) bool {
	cabin, door := sys.AtomIndex("cabin"), sys.AtomIndex("door")
	return func(st core.State) bool {
		return st.Locs[cabin] == "moving" && st.Locs[door] == "open"
	}
}

// UnsafeElevator builds the same elevator without the door
// synchronization: departing no longer requires the door to be closed, so
// the requirement is violated. It is the negative test for the checkers.
func UnsafeElevator(floors int) (*core.System, error) {
	if floors < 2 {
		return nil, fmt.Errorf("models: elevator needs >= 2 floors, got %d", floors)
	}
	safe, err := Elevator(floors)
	if err != nil {
		return nil, err
	}
	b := core.NewSystem(safe.Name + "-unsafe")
	for _, a := range safe.Atoms {
		b.AddAs(a.Name, a)
	}
	return b.
		Singleton("cabin", "depart").
		Singleton("cabin", "arrive").
		Singleton("door", "open").
		Singleton("door", "close").
		Build()
}

// GCD builds the Fig. 6.1 GCD program as a single-component system with
// singleton interactions: step1 subtracts y from x while x > y, step2
// symmetrically; the characteristic invariant GCD(x,y) = GCD(x0,y0) is
// checked by the verification experiments.
func GCD(x0, y0 int64) (*core.System, error) {
	if x0 < 1 || y0 < 1 {
		return nil, fmt.Errorf("models: gcd needs positive inputs, got %d, %d", x0, y0)
	}
	a := behavior.NewBuilder("gcd").
		Location("loop", "done").
		Int("x", x0).
		Int("y", y0).
		Port("step1", "x", "y").
		Port("step2", "x", "y").
		Port("halt", "x", "y").
		TransitionG("loop", "step1", "loop", expr.Gt(expr.V("x"), expr.V("y")),
			expr.Set("x", expr.Sub(expr.V("x"), expr.V("y")))).
		TransitionG("loop", "step2", "loop", expr.Gt(expr.V("y"), expr.V("x")),
			expr.Set("y", expr.Sub(expr.V("y"), expr.V("x")))).
		TransitionG("loop", "halt", "done", expr.Eq(expr.V("x"), expr.V("y")), nil).
		Invariant(expr.And(expr.Gt(expr.V("x"), expr.I(0)), expr.Gt(expr.V("y"), expr.I(0)))).
		MustBuild()
	return core.NewSystem("gcd").
		Add(a).
		Singleton("gcd", "step1").
		Singleton("gcd", "step2").
		Singleton("gcd", "halt").
		Build()
}

// GCDInt is the reference Euclidean algorithm used by tests to state the
// Fig. 6.1 invariant.
func GCDInt(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// Temperature builds the classical BIP temperature-control system: a
// controller heats from min to max, then must cool through one of two
// rods; each rod needs rest ticks of recovery between uses. Priorities
// prefer the rod that has rested longest, a scheduling policy expressed as
// glue — the paper's "priorities steer system evolution to meet
// performance requirements".
func Temperature(minT, maxT, rest int64) (*core.System, error) {
	if minT >= maxT || rest < 1 {
		return nil, fmt.Errorf("models: temperature needs min < max and rest >= 1")
	}
	controller := behavior.NewBuilder("controller").
		Location("run").
		Int("theta", minT).
		Port("tick", "theta").
		Port("cool", "theta").
		TransitionG("run", "tick", "run", expr.Lt(expr.V("theta"), expr.I(maxT)),
			expr.Set("theta", expr.Add(expr.V("theta"), expr.I(1)))).
		TransitionG("run", "cool", "run", expr.Eq(expr.V("theta"), expr.I(maxT)),
			expr.Set("theta", expr.I(minT))).
		Invariant(expr.Le(expr.V("theta"), expr.I(maxT))).
		MustBuild()
	rod := behavior.NewBuilder("rod").
		Location("ready").
		Int("rested", rest).
		Port("use", "rested").
		Port("recover", "rested").
		TransitionG("ready", "use", "ready", expr.Ge(expr.V("rested"), expr.I(rest)),
			expr.Set("rested", expr.I(0))).
		TransitionG("ready", "recover", "ready", nil,
			expr.Set("rested", expr.Add(expr.V("rested"), expr.I(1)))).
		MustBuild()
	return core.NewSystem("temperature").
		Add(controller).
		AddAs("rod1", rod).
		AddAs("rod2", rod).
		Connect("tick",
			core.P("controller", "tick"), core.P("rod1", "recover"), core.P("rod2", "recover")).
		Connect("cool1", core.P("controller", "cool"), core.P("rod1", "use")).
		Connect("cool2", core.P("controller", "cool"), core.P("rod2", "use")).
		PriorityWhen("cool2", "cool1", expr.Gt(expr.V("rod1.rested"), expr.V("rod2.rested"))).
		PriorityWhen("cool1", "cool2", expr.Gt(expr.V("rod2.rested"), expr.V("rod1.rested"))).
		Build()
}

// ControlOnly rebuilds a system with all data (variables, guards,
// actions) stripped, keeping only the control structure. Models with
// unbounded counters become finite-state, which the explicit-state
// verification experiments require.
func ControlOnly(sys *core.System) (*core.System, error) {
	b := core.NewSystem(sys.Name + "-ctl")
	for _, a := range sys.Atoms {
		nb := behavior.NewBuilder(a.Name).Location(a.Locations...).Initial(a.Initial)
		for _, p := range a.Ports {
			nb.Port(p.Name)
		}
		for _, tr := range a.Transitions {
			nb.Transition(tr.From, tr.Port, tr.To)
		}
		atom, err := nb.Build()
		if err != nil {
			return nil, fmt.Errorf("models: control-only: %w", err)
		}
		b.Add(atom)
	}
	for _, in := range sys.Interactions {
		b.Connect(in.Name, in.Ports...)
	}
	for _, p := range sys.Priorities {
		if p.When == nil {
			b.Priority(p.Low, p.High)
		}
	}
	return b.Build()
}

// PhilosopherRings builds `rings` disjoint philosopher rings of `size`
// philosophers each. Independent subsystems multiply the global state
// space (the state-explosion phenomenon §4.3 describes) while the
// compositional abstraction grows only linearly — the E1 workload.
func PhilosopherRings(rings, size int) (*core.System, error) {
	if rings < 1 || size < 2 {
		return nil, fmt.Errorf("models: rings needs rings >= 1 and size >= 2")
	}
	phil, fork := Philosopher(), Fork()
	b := core.NewSystem(fmt.Sprintf("philrings-%dx%d", rings, size))
	for r := 0; r < rings; r++ {
		pre := "r" + strconv.Itoa(r) + "_"
		for i := 0; i < size; i++ {
			b.AddAs(pre+pname(i), phil)
			b.AddAs(pre+fname(i), fork)
		}
		for i := 0; i < size; i++ {
			left, right := pre+fname(i), pre+fname((i+1)%size)
			b.Connect(pre+"eat"+strconv.Itoa(i),
				core.P(pre+pname(i), "eat"), core.P(left, "takeL"), core.P(right, "takeR"))
			b.Connect(pre+"put"+strconv.Itoa(i),
				core.P(pre+pname(i), "put"), core.P(left, "relL"), core.P(right, "relR"))
		}
	}
	return b.Build()
}

// DeepChain builds a narrow-and-deep exploration workload: a bounded
// forward-only counter (whose value grows by at most one per BFS
// level, so the state space is about `depth` levels deep) composed
// with two free-running toggles that keep each level only a handful of
// states wide. Level-synchronized parallel exploration degenerates on
// this shape — every level is smaller than the worker pool and the
// per-level barrier dominates — which is exactly what the
// work-stealing explorer (experiment E18) is measured against.
func DeepChain(depth int64) (*core.System, error) {
	if depth < 1 {
		return nil, fmt.Errorf("models: deep chain needs depth >= 1")
	}
	counter := behavior.NewBuilder("ctr").
		Location("run", "end").
		Int("n", 0).
		Port("step", "n").
		Port("halt", "n").
		TransitionG("run", "step", "run",
			expr.Lt(expr.V("n"), expr.I(depth)),
			expr.Set("n", expr.Add(expr.V("n"), expr.I(1)))).
		TransitionG("run", "halt", "end",
			expr.Ge(expr.V("n"), expr.I(depth)), nil).
		MustBuild()
	toggle := behavior.NewBuilder("tgl").
		Location("off", "on").
		Port("flip").
		Transition("off", "flip", "on").
		Transition("on", "flip", "off").
		MustBuild()
	return core.NewSystem(fmt.Sprintf("deepchain-%d", depth)).
		Add(counter).
		AddAs("tglA", toggle).
		AddAs("tglB", toggle).
		Connect("step", core.P("ctr", "step")).
		Connect("halt", core.P("ctr", "halt")).
		Connect("flipA", core.P("tglA", "flip")).
		Connect("flipB", core.P("tglB", "flip")).
		Build()
}

// DiamondGrid builds n fully independent two-step components: cell i
// walks s0 -a-> s1 -b-> s2 through two unary interactions of its own
// and never synchronizes with anyone. It is the canonical interleaving
// stress: the full state space is 3^n (every interleaving of the 2n
// steps is a distinct path through it), while the steps of different
// cells all commute — the worst case for plain exploration and the
// best case for partial-order reduction, which can walk the cells one
// at a time in O(n) states. Interaction labels are "a<i>"/"b<i>".
func DiamondGrid(n int) (*core.System, error) {
	if n < 1 {
		return nil, fmt.Errorf("models: diamond grid needs n >= 1")
	}
	cell := behavior.NewBuilder("cell").
		Location("s0", "s1", "s2").
		Port("a").
		Port("b").
		Transition("s0", "a", "s1").
		Transition("s1", "b", "s2").
		MustBuild()
	b := core.NewSystem(fmt.Sprintf("diamond-%d", n))
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("c%d", i)
		b.AddAs(name, cell)
		b.Connect(fmt.Sprintf("a%d", i), core.P(name, "a"))
		b.Connect(fmt.Sprintf("b%d", i), core.P(name, "b"))
	}
	return b.Build()
}

// CounterGrid builds n fully independent modulo-k counters: counter i
// sits in one location and wraps c through 0..k-1 via its own unary
// interaction "inc<i>". The reachable space is exactly k^n states (every
// combination of counter values), all live — no deadlock, no data
// pruning — which makes it the reference workload for memory
// experiments: state count and binary-key width (13 bytes per counter)
// are known in closed form, so seen-set bytes-per-state and frontier
// accounting can be checked against arithmetic, not just against other
// runs.
func CounterGrid(n, k int) (*core.System, error) {
	if n < 1 || k < 2 {
		return nil, fmt.Errorf("models: counter grid needs n >= 1 counters of modulus k >= 2, got n=%d k=%d", n, k)
	}
	counter := behavior.NewBuilder("counter").
		Location("s").
		Int("c", 0).
		Port("inc").
		TransitionG("s", "inc", "s", nil,
			expr.Set("c", expr.Mod(expr.Add(expr.V("c"), expr.I(1)), expr.I(int64(k))))).
		Invariant(expr.And(
			expr.Ge(expr.V("c"), expr.I(0)),
			expr.Lt(expr.V("c"), expr.I(int64(k))))).
		MustBuild()
	b := core.NewSystem(fmt.Sprintf("countergrid-%dx%d", n, k))
	for i := 0; i < n; i++ {
		name := "ctr" + strconv.Itoa(i)
		b.AddAs(name, counter)
		b.Connect("inc"+strconv.Itoa(i), core.P(name, "inc"))
	}
	return b.Build()
}

package models

import (
	"strings"
	"testing"
	"testing/quick"

	"bip/internal/core"
	"bip/internal/engine"
	"bip/internal/lts"
)

func TestModelConstructorsValidate(t *testing.T) {
	builders := map[string]func() error{
		"philosophers":   func() error { _, err := Philosophers(4); return err },
		"philosophers2p": func() error { _, err := PhilosophersDeadlocking(4); return err },
		"philrings":      func() error { _, err := PhilosopherRings(3, 4); return err },
		"tokenring":      func() error { _, err := TokenRing(5); return err },
		"prodcons":       func() error { _, err := ProducerConsumer(3); return err },
		"gasstation":     func() error { _, err := GasStation(2, 3); return err },
		"elevator":       func() error { _, err := Elevator(3); return err },
		"unsafeelevator": func() error { _, err := UnsafeElevator(3); return err },
		"gcd":            func() error { _, err := GCD(12, 8); return err },
		"temperature":    func() error { _, err := Temperature(0, 5, 2); return err },
		"countergrid":    func() error { _, err := CounterGrid(4, 3); return err },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			if err := build(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

func TestModelConstructorErrors(t *testing.T) {
	cases := []func() error{
		func() error { _, err := Philosophers(1); return err },
		func() error { _, err := PhilosophersDeadlocking(0); return err },
		func() error { _, err := PhilosopherRings(0, 4); return err },
		func() error { _, err := PhilosopherRings(2, 1); return err },
		func() error { _, err := TokenRing(1); return err },
		func() error { _, err := ProducerConsumer(0); return err },
		func() error { _, err := GasStation(0, 1); return err },
		func() error { _, err := Elevator(1); return err },
		func() error { _, err := UnsafeElevator(0); return err },
		func() error { _, err := GCD(0, 3); return err },
		func() error { _, err := Temperature(5, 5, 1); return err },
		func() error { _, err := CounterGrid(0, 3); return err },
		func() error { _, err := CounterGrid(2, 1); return err },
	}
	for i, c := range cases {
		if c() == nil {
			t.Fatalf("case %d: invalid parameters accepted", i)
		}
	}
}

func TestAllModelsExecute(t *testing.T) {
	// Every model must execute some steps without runtime errors.
	for _, tc := range []struct {
		name  string
		steps int
	}{
		{"philosophers", 30},
		{"tokenring", 30},
		{"prodcons", 30},
		{"gasstation", 30},
		{"elevator", 30},
		{"temperature", 30},
		{"gcd", 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := buildByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.Run(s, engine.Options{MaxSteps: tc.steps, Scheduler: engine.NewRandomScheduler(3)})
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if res.Steps == 0 {
				t.Fatalf("%s: no steps executed", tc.name)
			}
		})
	}
}

func TestGCDTerminatesWithCorrectValue(t *testing.T) {
	sys, err := GCD(48, 18)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sys, engine.Options{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("GCD should terminate")
	}
	gi := sys.AtomIndex("gcd")
	x, _ := res.Final.Vars[gi].Get("x")
	if xv, _ := x.Int(); xv != 6 {
		t.Fatalf("gcd(48,18) = %d, want 6", xv)
	}
}

// Property: the BIP GCD program computes the Euclidean GCD for random
// positive inputs.
func TestQuickGCDProgram(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int64(a%50)+1, int64(b%50)+1
		sys, err := GCD(x, y)
		if err != nil {
			return false
		}
		res, err := engine.Run(sys, engine.Options{MaxSteps: 500})
		if err != nil || !res.Deadlocked {
			return false
		}
		gi := sys.AtomIndex("gcd")
		v, _ := res.Final.Vars[gi].Get("x")
		got, _ := v.Int()
		return got == GCDInt(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGCDInt(t *testing.T) {
	cases := [][3]int64{{12, 8, 4}, {7, 13, 1}, {0, 5, 5}, {-12, 8, 4}, {100, 100, 100}}
	for _, c := range cases {
		if got := GCDInt(c[0], c[1]); got != c[2] {
			t.Fatalf("GCDInt(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestControlOnlyStripsData(t *testing.T) {
	sys, err := ProducerConsumer(5)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := ControlOnly(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ctl.Atoms {
		if len(a.Vars) != 0 {
			t.Fatalf("atom %s still has variables", a.Name)
		}
		for _, tr := range a.Transitions {
			if tr.Guard != nil || tr.Action != nil {
				t.Fatalf("atom %s still has data on transitions", a.Name)
			}
		}
	}
	if len(ctl.Interactions) != len(sys.Interactions) {
		t.Fatal("interaction count changed")
	}
}

func TestPhilosopherRingsIndependent(t *testing.T) {
	sys, err := PhilosopherRings(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Atoms) != 12 || len(sys.Interactions) != 12 {
		t.Fatalf("shape = %s", sys.Stats())
	}
	// No interaction spans two rings.
	for _, in := range sys.Interactions {
		ring := ""
		for _, p := range in.Ports {
			r := p.Comp[:strings.IndexByte(p.Comp, '_')]
			if ring == "" {
				ring = r
			} else if ring != r {
				t.Fatalf("interaction %s spans rings", in.Name)
			}
		}
	}
}

func buildByName(name string) (*core.System, error) {
	switch name {
	case "philosophers":
		return Philosophers(4)
	case "tokenring":
		return TokenRing(4)
	case "prodcons":
		return ProducerConsumer(2)
	case "gasstation":
		return GasStation(2, 2)
	case "elevator":
		return Elevator(3)
	case "temperature":
		return Temperature(0, 4, 2)
	case "gcd":
		return GCD(9, 6)
	default:
		panic("unknown model " + name)
	}
}

func TestCounterGridStateSpace(t *testing.T) {
	// The reachable space is exactly k^n — every combination of counter
	// values — and every state has all n increments enabled.
	sys, err := CounterGrid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 4 * 4; l.NumStates() != want {
		t.Fatalf("CounterGrid(3,4) has %d states, want %d", l.NumStates(), want)
	}
	if want := 3 * 4 * 4 * 4; l.NumTransitions() != want {
		t.Fatalf("CounterGrid(3,4) has %d transitions, want %d", l.NumTransitions(), want)
	}
	if dls := l.Deadlocks(); len(dls) != 0 {
		t.Fatalf("CounterGrid deadlocks at states %v", dls)
	}
}

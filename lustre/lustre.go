// Package lustre is the public facade over the synchronous data-flow
// embedding (§5.3, Fig. 5.2): a Lustre-style program is translated into
// a BIP system whose cycle-by-cycle behaviour matches the reference
// stream interpreter.
package lustre

import ilustre "bip/internal/lustre"

type (
	// Program is a synchronous data-flow program: a list of equations
	// over integer streams with pre/-> operators.
	Program = ilustre.Program
	// Embedding is the BIP translation of a Program; Run executes it
	// cycle by cycle on the engine.
	Embedding = ilustre.Embedding
	// Interp is the reference stream interpreter.
	Interp = ilustre.Interp
)

// Integrator returns the paper's running example: Y = X + pre(Y).
func Integrator() *Program { return ilustre.Integrator() }

// Embed translates p into a BIP system.
func Embed(p *Program) (*Embedding, error) { return ilustre.Embed(p) }

// NewInterp returns the reference interpreter for p.
func NewInterp(p *Program) (*Interp, error) { return ilustre.NewInterp(p) }

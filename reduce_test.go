package bip_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"bip"
	"bip/models"
)

// deadlockKeys fingerprints every deadlock state of a materialized LTS
// (locations plus variable environments), sorted for set comparison.
func deadlockKeys(l interface {
	Deadlocks() []int
	State(int) bip.State
}) []string {
	var keys []string
	for _, id := range l.Deadlocks() {
		st := l.State(id)
		keys = append(keys, strings.Join(st.Locs, "|")+fmt.Sprintf("%v", st.Vars))
	}
	sort.Strings(keys)
	return keys
}

// TestExploreReducePreservesDeadlocks is the regression for the
// C0/C1 guarantee at the facade: a materialized exploration under
// bip.Reduce() visits fewer states but its Deadlocks() must be exactly
// the full exploration's — every deadlock state, none invented — at
// several worker counts in both stream orders.
func TestExploreReducePreservesDeadlocks(t *testing.T) {
	zoo := []struct {
		name  string
		build func() (*bip.System, error)
	}{
		{"diamond-6", func() (*bip.System, error) { return models.DiamondGrid(6) }},
		{"philosophers2p-4", func() (*bip.System, error) { return models.PhilosophersDeadlocking(4) }},
		{"gasstation-2-2", func() (*bip.System, error) { return models.GasStation(2, 2) }},
		{"rings-3x3", func() (*bip.System, error) {
			sys, err := models.PhilosopherRings(3, 3)
			if err != nil {
				return nil, err
			}
			// Strip the unbounded meal counters: the control skeleton is
			// finite, which a materialized full-vs-reduced comparison needs.
			return models.ControlOnly(sys)
		}},
	}
	for _, m := range zoo {
		sys, err := m.build()
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		full, err := bip.Explore(sys)
		if err != nil {
			t.Fatalf("%s: full explore: %v", m.name, err)
		}
		want := deadlockKeys(full)
		for _, w := range []int{1, 4} {
			for _, ord := range []struct {
				name string
				opt  []bip.Option
			}{{"det", nil}, {"fast", []bip.Option{bip.Unordered()}}} {
				opts := append([]bip.Option{bip.Reduce(), bip.Workers(w)}, ord.opt...)
				red, err := bip.Explore(sys, opts...)
				if err != nil {
					t.Fatalf("%s/%s/w%d: reduced explore: %v", m.name, ord.name, w, err)
				}
				if red.NumStates() > full.NumStates() {
					t.Fatalf("%s/%s/w%d: reduced graph larger than full (%d > %d)",
						m.name, ord.name, w, red.NumStates(), full.NumStates())
				}
				got := deadlockKeys(red)
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("%s/%s/w%d: deadlock sets differ:\nreduced: %v\nfull:    %v",
						m.name, ord.name, w, got, want)
				}
			}
		}
	}
}

// This file holds the root benchmark harness: one Go benchmark per
// experiment of DESIGN.md's paper↔experiment index (E1–E23). Each
// benchmark drives the same code as `bipbench -e <id>`, so the numbers
// printed by `go test -bench` regenerate the tables of EXPERIMENTS.md.
package bip_test

import (
	"fmt"
	"runtime/debug"
	"testing"
	"time"

	"bip"
	"bip/bench"
	"bip/internal/core"
	"bip/internal/lts"
	"bip/models"
)

func run(b *testing.B, f func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty experiment table")
		}
	}
}

func BenchmarkE1DFinderVsMonolithic(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E1DFinderVsMonolithic(5) })
}

func BenchmarkE2GlueExpressiveness(b *testing.B) {
	run(b, bench.E2Glue)
}

func BenchmarkE3LustreEmbedding(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E3Lustre(200) })
}

func BenchmarkE4UnitDelay(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E4UnitDelay(8) })
}

func BenchmarkE5Refinement(b *testing.B) {
	run(b, bench.E5Refinement)
}

func BenchmarkE6Stability(b *testing.B) {
	run(b, bench.E6Stability)
}

func BenchmarkE7CRP(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E7CRP([]int{4, 6}, 60) })
}

func BenchmarkE8Engines(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E8Engines([]int{1, 2, 4}, 400, 20000) })
}

func BenchmarkE9ArchCompose(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E9Arch([]int{2, 3, 4}) })
}

func BenchmarkE10TimingAnomaly(b *testing.B) {
	run(b, bench.E10Anomaly)
}

func BenchmarkE11Invariants(b *testing.B) {
	run(b, bench.E11Invariants)
}

func BenchmarkE12Incremental(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E12Incremental(6) })
}

func BenchmarkE13Flattening(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E13Flattening([]int{1, 2, 3}) })
}

func BenchmarkE14Elevator(b *testing.B) {
	run(b, bench.E14Elevator)
}

func BenchmarkE16StreamingMemory(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E16StreamingMemory(3) })
}

func BenchmarkE17PropertyCheck(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E17PropertyCheck(3) })
}

func BenchmarkE18WorkStealing(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E18WorkStealing([]int{1, 4}, 4000) })
}

func BenchmarkE19Reduction(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E19Reduction(6, 3, 3, 6) })
}

// TestE19ReductionFloor is the CI gate on the partial-order reducer's
// effectiveness: on the fully independent DiamondGrid workload the
// ample-set reduction must shrink the visited state count at least 5x
// (it collapses the 3^n interleaving lattice to nearly a chain; the
// factor grows with n, so 5x leaves generous slack at n=6). E19Factor
// also re-checks deadlock-count preservation on every run.
func TestE19ReductionFloor(t *testing.T) {
	diamond, err := models.DiamondGrid(6)
	if err != nil {
		t.Fatal(err)
	}
	factor, err := bench.E19Factor(diamond)
	if err != nil {
		t.Fatal(err)
	}
	if factor < 5 {
		t.Fatalf("diamond-6 reduction factor %.2fx, want >= 5x", factor)
	}
}

func BenchmarkE20Memory(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E20Memory(6, 4, 4, 8) })
}

func BenchmarkE21Service(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E21Service(8, 2, 4, 4) })
}

// TestE21ServiceFloor is the CI gate on the bipd service: 8 concurrent
// jobs through a 2-worker pool must all complete with the expected
// report, and a byte-identical resubmission of the whole workload must
// be answered entirely from the content-addressed report cache —
// E21Service errors out on any failed job, wrong state count, or
// round-2 cache miss, so a green run certifies the queue, the pool,
// and the cache end to end over real HTTP.
func TestE21ServiceFloor(t *testing.T) {
	tab, err := bench.E21Service(8, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("E21 rows = %d, want cold + cached", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("E21 row %v failed its contract", row)
		}
	}
}

func BenchmarkE23FaultTolerance(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E23FaultTolerance(8, 2, 4, 4, 0) })
}

// TestE23RecoveryFloor is the CI gate on bipd fault tolerance: a
// persistent server is killed (Crash — SIGKILL semantics: no terminal
// journal records) with half of an 8-job workload still in flight, and
// a restart on the same data directory must lose zero completed
// reports (pre-crash completions answered from the content-addressed
// store, never re-explored), re-verify every interrupted job to the
// exact expected state count, replay the journal within a 30s budget,
// and complete a quota-throttled burst through the retrying client
// with at least one real 429 on the wire. E23FaultTolerance errors out
// on any violation, so a green run certifies the journal, the report
// store, recovery re-queueing, and the client's backoff end to end.
func TestE23RecoveryFloor(t *testing.T) {
	tab, err := bench.E23FaultTolerance(8, 2, 4, 3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("E23 rows = %d, want load+crash, recover, quota", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("E23 row %v failed its contract", row)
		}
	}
}

// BenchmarkE22Lint drives the E22 table at smoke sizes: the fully
// explorable counter grid plus the astronomical lint-only row. The
// philosophers rows are left to bipbench/TestE22LintFloor — their data
// growth hits the explorer's 2^20 truncation bound, ~8s per row, which
// would dwarf every other benchmark in the `-benchtime=1x` smoke.
func BenchmarkE22Lint(b *testing.B) {
	run(b, func() (*bench.Table, error) { return bench.E22Lint(nil, 5, 4, 12, 1<<20) })
}

// TestE22LintFloor is the CI gate on the static analyzer's cost model:
// lint must be at least 10x cheaper than exploration on philosophers-6
// (the real gap is four orders of magnitude even at the explorer's
// DefaultMaxStates truncation bound — 10x leaves generous CI-noise
// headroom), with zero warnings on the clean model (E22Ratio errors
// out on any false positive). The second half pins the stronger claim
// behind the ratio: a counter grid of (2^20)^12 states — unexplorable
// by construction — lints to completion, which is only possible
// because lint.Analyze never expands the state space.
func TestE22LintFloor(t *testing.T) {
	ratio, err := bench.E22Ratio(6)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 10 {
		t.Fatalf("explore/lint ratio %.1fx on philosophers-8, want >= 10x", ratio)
	}
	astro, err := models.CounterGrid(12, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := bip.Lint(astro)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Severity != "info" {
			t.Fatalf("false positive on the astronomical grid: %+v", d)
		}
	}
}

// TestE20MemoryFloor is the CI gate on seen-set compaction: on the
// CounterGrid workload (wide 78-byte keys, every state live) the
// compact seen set must use at least 3x fewer seen-set bytes per
// visited state than the exact default — and E20Ratio errors out if the
// compact run disagrees with the exact one on states, transitions or
// deadlock count, so the ratio cannot be bought with a wrong verdict.
// (The per-verdict/per-path differential across worker counts and both
// orders lives in internal/lts.)
func TestE20MemoryFloor(t *testing.T) {
	grid, err := models.CounterGrid(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := bench.E20Ratio(grid)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 3 {
		t.Fatalf("countergrid-6x5 seen-set compaction ratio %.2fx, want >= 3x", ratio)
	}
}

// TestE20SpillUnderMemoryLimit runs the work-stealing explorer with a
// Go runtime memory limit in force and a frontier budget far below the
// workload's unbounded peak: the exploration must still cover the full
// k^n space, and must do it by actually round-tripping frontier chunks
// through the spill file. This is the break-the-RAM-wall contract end
// to end — completing a space whose frontier exceeds the budget.
func TestE20SpillUnderMemoryLimit(t *testing.T) {
	prev := debug.SetMemoryLimit(256 << 20)
	defer debug.SetMemoryLimit(prev)
	grid, err := models.CounterGrid(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bip.Verify(grid,
		bip.Deadlock(),
		bip.Workers(4), bip.Unordered(),
		bip.CompactSeen(), bip.MemBudget(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * 5 * 5 * 5 * 5 * 5; rep.States != want {
		t.Fatalf("budgeted run visited %d states, want %d", rep.States, want)
	}
	if !rep.OK || rep.Truncated {
		t.Fatalf("budgeted run: OK=%v truncated=%v, want a clean deadlock-free verdict", rep.OK, rep.Truncated)
	}
	if rep.SpilledChunks == 0 {
		t.Fatal("budgeted run spilled no frontier chunks: the MemBudget path never engaged")
	}
}

// BenchmarkStreamDeadlock measures the streaming deadlock check against
// materialized exploration on the E16 workload: same visited space, but
// the streaming side retains only the frontier.
func BenchmarkStreamDeadlock(b *testing.B) {
	rings, err := models.PhilosopherRings(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := models.ControlOnly(rings)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dl := &lts.DeadlockCheck{}
			if _, err := lts.Stream(ctl, lts.Options{}, dl); err != nil {
				b.Fatal(err)
			}
			if dl.Found || !dl.Exhaustive {
				b.Fatal("rings must be deadlock-free with full coverage")
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l, err := lts.Explore(ctl, lts.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if free, err := l.DeadlockFree(); err != nil || !free {
				b.Fatal("rings must be deadlock-free")
			}
		}
	})
}

// BenchmarkExplore measures state-space exploration with worker-count
// and stream-order dimensions, on the workloads of experiments E15/E18:
// the E1-class philosopher rings (pure control, 7^5 = 16807 states, wide
// levels), the E8-class pair grid (data-carrying, 8^5 = 32768 states)
// and the narrow-and-deep chain (models.DeepChain). workers=1 is the
// sequential explorer; higher counts run the deterministic
// level-synchronized explorer (order=det, identical LTS — checked on
// every run) or the barrier-free work-stealing explorer (order=fast,
// canonically identical — state/transition counts checked on every
// run). allocs/op at workers=1 pins the slab arenas: state-store
// headers, move tables and choice vectors are carved from per-worker
// slabs, so the per-state allocation count must stay strictly below the
// PR-4 baseline (218780 on rings). Reference timings are in
// EXPERIMENTS.md.
func BenchmarkExplore(b *testing.B) {
	rings, err := models.PhilosopherRings(5, 4)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := models.ControlOnly(rings)
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := bench.PairsGrid(5)
	if err != nil {
		b.Fatal(err)
	}
	deep, err := models.DeepChain(20000)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name       string
		sys        *core.System
		wantStates int
	}{
		{"rings-5x4", ctl, 16807},
		{"pairs-5x8", pairs, 32768},
		{"deep-20k", deep, 80008},
	}
	for _, c := range cases {
		for _, w := range []int{1, 2, 4, 8} {
			orders := []lts.Order{lts.Deterministic}
			if w > 1 {
				orders = append(orders, lts.Unordered)
			}
			for _, ord := range orders {
				name := fmt.Sprintf("%s/workers=%d", c.name, w)
				if ord == lts.Unordered {
					name += "/order=fast"
				}
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						l, err := lts.Explore(c.sys, lts.Options{Workers: w, Order: ord})
						if err != nil {
							b.Fatal(err)
						}
						if l.NumStates() != c.wantStates {
							b.Fatalf("explored %d states, want %d", l.NumStates(), c.wantStates)
						}
					}
				})
			}
		}
	}
}

package bip

import (
	"context"
	"fmt"
	"time"

	"bip/internal/lts"
	"bip/prop"
)

// Stats is a cumulative snapshot of a running exploration, delivered to
// WithProgress observers (check.Stats is the same type). It marshals to
// JSON — bipd streams it as progress events.
type Stats = lts.Stats

// Verify streams the reachable state space of sys through on-the-fly
// checkers selected by functional options:
//
//	rep, err := bip.Verify(sys,
//	    bip.Deadlock(),
//	    bip.Prop(prop.Never(prop.And(
//	        prop.At("phil0", "eating"), prop.At("phil1", "eating")))),
//	    bip.Named("door-safety", bip.Prop(prop.After(prop.On("depart"),
//	        prop.Until(prop.At("door", "closed"), prop.On("arrive"))))),
//	    bip.Workers(4),
//	    bip.MaxStates(1<<22))
//
// One exploration answers every requested property. Properties are
// values of the bip/prop algebra (Prop), textual properties parsed by
// ParseProp, or — as thin adapters over the same machinery — the
// opaque func(State) bool forms (Invariant, Reach). Each checker
// early-exits on the first violation it finds, and the exploration
// stops as soon as every property is settled — a model that violates
// early is verified without materializing (or even visiting) the rest
// of its state space. Pure state properties run in O(frontier) live
// memory; temporal/observer properties additionally keep compact
// per-state/per-edge words for the product fixpoint (see
// check.AutomatonCheck). With no property options, Verify checks
// deadlock-freedom.
//
// Every property gets a report name: its algebra kind ("deadlock",
// "always", "after", ...) or the explicit name given with Named.
// Duplicate names are auto-suffixed "#2", "#3", ... in option order, so
// Report.Property can always address each verdict individually.
//
// Verdicts are deterministic and worker-count independent: the
// streaming checkers observe the sequential exploration order at any
// Workers setting, so the reported states and counterexample paths are
// bit-identical to the corresponding analyses on the materialized LTS
// (check.Explore), which the differential tests pin. Multi-worker runs
// that only need the verdicts can opt into the barrier-free
// work-stealing explorer with Unordered: violated/conclusive and path
// validity are unaffected, only the particular witness may vary.
func Verify(sys *System, opts ...Option) (*Report, error) {
	cfg := verifyConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.specs) == 0 {
		Deadlock()(&cfg)
	}
	props := make([]property, len(cfg.specs))
	sinks := make([]lts.Sink, len(cfg.specs))
	names := uniqueNames(cfg.specs)
	for i, spec := range cfg.specs {
		p, err := spec.build(sys)
		if err != nil {
			return nil, fmt.Errorf("bip: verify %s: property %s: %w", sys.Name, names[i], err)
		}
		props[i] = p
		sinks[i] = p.sink
	}
	var expander lts.Expander
	var degradedBy string
	progress := cfg.progress
	if cfg.reduce {
		var vis lts.Visibility
		for _, p := range props {
			vis = vis.Union(p.visible)
		}
		// A property that declares full visibility (opaque Fn predicates,
		// explicit automata, step-counting event forms) cannot be checked
		// on a reduced graph: degrade the whole run to full expansion
		// rather than risk the verdict. Report.Reduced records what
		// actually happened, and ReductionDegradedBy names the first
		// property responsible so the degradation is never silent.
		if !vis.All {
			exp, err := lts.NewAmpleExpander(sys, vis)
			if err != nil {
				return nil, fmt.Errorf("bip: verify %s: reduction: %w", sys.Name, err)
			}
			expander = exp
		} else {
			for i, p := range props {
				if p.visible.All {
					degradedBy = names[i]
					break
				}
			}
			if progress != nil {
				// Progress snapshots are the wire shape bipd streams;
				// stamp the degradation cause on each one too.
				inner := progress
				progress = func(s Stats) {
					s.ReductionDegradedBy = degradedBy
					inner(s)
				}
			}
		}
	}
	stats, err := lts.Stream(sys, lts.Options{
		MaxStates:     cfg.maxStates,
		Workers:       cfg.workers,
		Raw:           cfg.raw,
		Order:         cfg.order,
		Expander:      expander,
		Seen:          cfg.seen,
		MemBudget:     cfg.memBudget,
		Ctx:           cfg.ctx,
		Progress:      progress,
		ProgressEvery: cfg.progressEvery,
	}, lts.NewMulti(sinks...))
	if err != nil {
		return nil, fmt.Errorf("bip: verify %s: %w", sys.Name, err)
	}
	rep := &Report{
		States:              stats.States,
		Transitions:         stats.Transitions,
		Truncated:           stats.Truncated,
		Reduced:             expander != nil,
		AmpleStates:         stats.AmpleStates,
		PrunedMoves:         stats.PrunedMoves,
		ProvisoFallbacks:    stats.ProvisoFallbacks,
		SeenBytes:           stats.SeenBytes,
		PeakFrontierBytes:   stats.PeakFrontierBytes,
		ExactPromotions:     stats.ExactPromotions,
		SpilledChunks:       stats.SpilledChunks,
		ReductionDegradedBy: degradedBy,
		OK:                  true,
	}
	for i, p := range props {
		res := p.result()
		res.Name = names[i]
		rep.Properties = append(rep.Properties, res)
		if res.Violated || !res.Conclusive {
			rep.OK = false
		}
	}
	return rep, nil
}

// uniqueNames resolves the report names: the spec's own name (kind or
// Named override), with duplicates auto-suffixed "#2", "#3", ... in
// option order.
func uniqueNames(specs []propSpec) []string {
	names := make([]string, len(specs))
	count := make(map[string]int, len(specs))
	for i, s := range specs {
		count[s.name]++
		if n := count[s.name]; n > 1 {
			names[i] = fmt.Sprintf("%s#%d", s.name, n)
		} else {
			names[i] = s.name
		}
	}
	return names
}

// Explore materializes the reachable LTS of sys — the full graph for
// analyses that need it (bisimulation, label sets, arbitrary queries).
// Prefer Verify when only property verdicts are wanted: the streaming
// checkers answer those without retaining the state space. Only the
// exploration options (Workers, MaxStates, Raw) apply here; passing a
// property option (Deadlock, Prop, …) is an error rather than a
// silently dropped check.
func Explore(sys *System, opts ...Option) (*lts.LTS, error) {
	cfg := verifyConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.specs) > 0 {
		return nil, fmt.Errorf("bip: explore %s: property options are Verify-only (got %d); call Verify for on-the-fly checks", sys.Name, len(cfg.specs))
	}
	var expander lts.Expander
	if cfg.reduce {
		// No properties ride an Explore, so nothing is visible: maximal,
		// deadlock-preserving reduction (see the Reduce doc's caveat about
		// querying the reduced graph).
		exp, err := lts.NewAmpleExpander(sys, lts.Visibility{})
		if err != nil {
			return nil, fmt.Errorf("bip: explore %s: reduction: %w", sys.Name, err)
		}
		expander = exp
	}
	return lts.Explore(sys, lts.Options{
		MaxStates:     cfg.maxStates,
		Workers:       cfg.workers,
		Raw:           cfg.raw,
		Order:         cfg.order,
		Expander:      expander,
		Seen:          cfg.seen,
		MemBudget:     cfg.memBudget,
		Ctx:           cfg.ctx,
		Progress:      cfg.progress,
		ProgressEvery: cfg.progressEvery,
	})
}

// Option configures Verify and Explore.
type Option func(*verifyConfig)

type verifyConfig struct {
	workers       int
	maxStates     int
	raw           bool
	reduce        bool
	order         lts.Order
	seen          lts.SeenSets
	memBudget     int64
	ctx           context.Context
	progress      func(Stats)
	progressEvery time.Duration
	specs         []propSpec
}

// propSpec is one requested property: its report name plus the deferred
// compilation against the system (Verify time), so options need no
// system argument and compile errors surface with the property's name.
type propSpec struct {
	name  string
	build func(sys *System) (property, error)
}

// property couples a streaming checker with the extraction of its
// verdict once the exploration returns, plus the visibility the checker
// declares for ample-set reduction (see Reduce).
type property struct {
	sink    lts.Sink
	visible lts.Visibility
	result  func() Property
}

// Workers sets the number of exploration workers (negative means
// GOMAXPROCS). The verdicts do not depend on it.
func Workers(n int) Option { return func(c *verifyConfig) { c.workers = n } }

// Unordered selects the work-stealing exploration order for a
// multi-worker run — the fast path for on-the-fly verification, whose
// verdicts (violated / conclusive) never depended on stream order. The
// default (deterministic) order replays the sequential event stream at
// any worker count, paying a per-level synchronization for bit-identical
// reports; Unordered removes every barrier from the hot path. What can
// change under Unordered: state numbering (Report.Property State
// fields), WHICH counterexample is reported when several exist, and the
// exploration's internal event order. What cannot: whether each
// property is violated, whether it is conclusive, the visited state
// set, and the validity of every reported path. With Workers(1) the
// option is a no-op.
func Unordered() Option { return func(c *verifyConfig) { c.order = lts.Unordered } }

// MaxStates bounds the exploration; 0 means the shared library default
// (check.DefaultMaxStates). Hitting the bound makes absence verdicts
// inconclusive, which the Report records.
func MaxStates(n int) Option { return func(c *verifyConfig) { c.maxStates = n } }

// Raw explores the unrestricted interaction semantics, ignoring
// priority filtering.
func Raw() Option { return func(c *verifyConfig) { c.raw = true } }

// CompactSeen swaps the exploration's visited-state storage for the
// hash-compacted seen set: ~12 bytes per visited state instead of the
// full binary key plus table overhead, a 3-10x reduction on typical
// models (Report.SeenBytes shows the actual footprint). The trade is
// the classic hash-compaction one (Wolper–Leroy / Stern–Dill): two
// distinct states are identified only if their full 64-bit hashes
// collide, an event of probability ~ n^2 * 2^-64 over n visited states
// — about 10^-8 at a billion states. Verdicts, counterexample paths
// and state counts are otherwise bit-identical to the exact default;
// the differential tests pin this across worker counts and both
// exploration orders.
func CompactSeen() Option {
	return func(c *verifyConfig) { c.seen = lts.CompactSeen{} }
}

// MemBudget caps the frontier's resident memory (bytes, accounted by a
// deterministic per-entry model — see Report.PeakFrontierBytes). Under
// Unordered multi-worker exploration, frontier chunks beyond the budget
// spill to a temporary file as flat binary state keys and stream back
// as workers drain; Report.SpilledChunks counts the round trips. The
// visited-state verdict contract is unchanged — spilled states decode
// bit-identically. Zero (the default) means no budget; the option has
// no effect on the deterministic orders, which keep only one BFS level
// in flight.
func MemBudget(bytes int64) Option {
	return func(c *verifyConfig) { c.memBudget = bytes }
}

// WithContext attaches a cancellation context to the exploration: all
// three drivers poll it and return ctx.Err() promptly when it fires,
// making long verification runs abortable (timeouts, server shutdown).
func WithContext(ctx context.Context) Option {
	return func(c *verifyConfig) { c.ctx = ctx }
}

// WithProgress installs fn as a periodic observer of the running
// exploration: at most once per `every` (0 means the engine default,
// 100ms) it receives a cumulative Stats snapshot — states, transitions,
// memory accounting — while the run is still going. This is the hook
// bipd's progress streaming rides. The callback must return quickly;
// under Unordered multi-worker exploration it is invoked from a ticker
// goroutine and may run concurrently with the exploration itself (never
// with another invocation of fn), so it must be safe to call from a
// different goroutine than Verify's. There is no guaranteed final call:
// the returned Report carries the authoritative totals.
func WithProgress(every time.Duration, fn func(Stats)) Option {
	return func(c *verifyConfig) {
		c.progress = fn
		c.progressEvery = every
	}
}

// Reduce requests ample-set partial-order reduction: at states where
// some connector-cluster's enabled interactions form a persistent set
// invisible to every requested property, only that subset is explored.
// Commuting interleavings of independent interactions collapse, often
// shrinking the visited state count by orders of magnitude on loosely
// coupled systems, while every requested verdict — deadlock included —
// is provably unchanged; the differential tests pin this across worker
// counts and both exploration orders.
//
// Reduction is visibility-driven and therefore property-aware: each
// compiled property declares the interaction labels it observes and the
// atoms its predicates read, and moves involving them are never pruned.
// Properties with no structural visibility — opaque func(State) bool
// predicates (Invariant, Reach, prop.Fn), explicit prop.Automaton
// observers, and step-counting event forms (prop.NotOn, prop.AnyEvent
// as an Until/After/Between trigger) — cannot bound what they read, so
// a run containing one degrades to full expansion rather than risk the
// verdict. Report.Reduced records whether reduction actually ran;
// AtomInvariants stays reducible (its visibility is the atoms that
// declare invariants).
//
// Under Reduce the reported States/Transitions counts describe the
// reduced graph, so they vary with the property set — and, under
// Unordered, with scheduling. Violated/Conclusive verdicts and path
// validity do not. With Explore, Reduce applies deadlock-preserving
// reduction (empty visibility): the materialized LTS keeps every
// reachable deadlock (and each pruned state's full enabled count feeds
// the deadlock test) but is NOT the full graph — don't run arbitrary
// state queries on it.
func Reduce() Option { return func(c *verifyConfig) { c.reduce = true } }

// Prop requests an on-the-fly check of a declarative property from the
// bip/prop algebra (or ParseProp). The property is compiled against
// the system when Verify runs: state predicates become slot-resolved
// closures, temporal operators become an observer automaton checked as
// the state space streams by. Its report name is the property's kind
// (prop.Prop.Kind); wrap with Named to override.
func Prop(p prop.Prop) Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, propSpec{name: p.Kind(), build: func(sys *System) (property, error) {
			return compileProp(sys, p)
		}})
	}
}

// Named overrides the report name of the property option it wraps:
//
//	bip.Named("mutex", bip.Prop(prop.Never(...)))
//
// Distinct names keep Report.Property unambiguous when several options
// share a kind (unnamed duplicates are auto-suffixed instead). Wrapping
// a non-property option (Workers, MaxStates, …) applies it unchanged —
// there is no property to name, so the name is dropped.
func Named(name string, opt Option) Option {
	return func(c *verifyConfig) {
		before := len(c.specs)
		opt(c)
		for i := before; i < len(c.specs); i++ {
			c.specs[i].name = name
		}
	}
}

// compileProp compiles an algebra property into its checker sink and
// verdict extraction.
func compileProp(sys *System, p prop.Prop) (property, error) {
	cp, err := prop.Compile(sys, p)
	if err != nil {
		return property{}, err
	}
	v := cp.Verdict
	return property{
		sink:    cp.Sink,
		visible: cp.Visible,
		result: func() Property {
			return Property{
				Violated:   v.Found,
				State:      v.State,
				Path:       v.Path,
				Conclusive: v.Found || v.Exhaustive,
			}
		},
	}, nil
}

// Deadlock requests an on-the-fly deadlock-freedom check
// (prop.DeadlockFree). A reachable deadlock is reported with its
// counterexample path; the check is then settled and stops consuming
// the exploration.
func Deadlock() Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, propSpec{name: "deadlock", build: func(sys *System) (property, error) {
			return compileProp(sys, prop.DeadlockFree())
		}})
	}
}

// Invariant requests an on-the-fly check that pred holds on every
// reachable state: the thin adapter lifting an opaque Go predicate into
// prop.Always(prop.Fn(pred)). Declarative predicates (Property with
// prop.Always) serialize and compile; use them when the predicate is
// expressible. The first violating state (in exploration order) is
// reported with its counterexample path.
func Invariant(pred func(State) bool) Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, propSpec{name: "invariant", build: func(sys *System) (property, error) {
			return compileProp(sys, prop.Always(prop.Fn(pred)))
		}})
	}
}

// AtomInvariants requests an on-the-fly check of the designer-asserted
// per-component invariants (evaluated through their slot-compiled
// forms).
func AtomInvariants() Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, propSpec{name: "atom-invariants", build: func(sys *System) (property, error) {
			chk := sys.NewInvariantChecker()
			p, err := compileProp(sys, prop.Always(prop.Fn(func(st State) bool { return chk.Check(st) == nil })))
			if err != nil {
				return p, err
			}
			// The opaque closure defaults to full visibility, but what it
			// reads is known exactly: the atoms that declare invariants.
			// Declaring them keeps the check sound under Reduce.
			var vis lts.Visibility
			for ai, a := range sys.Atoms {
				if len(a.Invariants) > 0 {
					vis.Atoms = append(vis.Atoms, ai)
				}
			}
			p.visible = vis
			return p, nil
		}})
	}
}

// Reach requests an on-the-fly bad-state reachability query — the thin
// adapter for prop.Reachable(prop.Fn(pred)): the first state satisfying
// pred is reported with its witness path, and Violated is set (reaching
// the target counts against Report.OK). With full coverage and no hit,
// the target is proved unreachable.
func Reach(pred func(State) bool) Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, propSpec{name: "reach", build: func(sys *System) (property, error) {
			return compileProp(sys, prop.Reachable(prop.Fn(pred)))
		}})
	}
}

// Property is the outcome of one requested check. Like Report it is
// JSON-round-trippable — the tags are bipd's wire shape; keep them
// stable.
type Property struct {
	// Name identifies the check: the property kind ("deadlock",
	// "invariant", "always", "after", ...), a Named override, or a
	// "#n"-suffixed form when several options share a name.
	Name string `json:"name"`
	// Violated reports a definite violation — a reachable deadlock, a
	// state breaking a safety property or, for Reach/Reachable, the
	// target being found.
	Violated bool `json:"violated"`
	// State is the id (exploration order) of the violating/target state;
	// meaningful when Violated.
	State int `json:"state"`
	// Path is the interaction sequence leading from the initial state to
	// State; meaningful when Violated. For temporal properties it is the
	// product path — a run that both exists in the system and drives the
	// observer to its bad state.
	Path []string `json:"path,omitempty"`
	// Conclusive reports that the verdict is definite: either a
	// violation was found, or the full state space was covered without
	// one. It is false when the MaxStates bound (or another property's
	// early stop ending the exploration) left the check unsettled.
	Conclusive bool `json:"conclusive"`
}

// Report is the outcome of a Verify run. It is JSON-round-trippable
// (every field carries a wire tag): bipd serves completed Reports over
// HTTP and caches them by content address, so the struct doubles as a
// wire shape shared with external tooling — keep the tags stable.
type Report struct {
	// Properties holds one entry per requested check, in option order.
	Properties []Property `json:"properties"`
	// States and Transitions count what the exploration visited before
	// finishing or stopping early.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// Truncated reports that the MaxStates bound cut the exploration.
	Truncated bool `json:"truncated"`
	// Reduced reports that ample-set reduction was active: Reduce() was
	// requested AND every property's visibility admitted it. When a
	// property forces full visibility (opaque predicates, automata), the
	// run silently degrades to full expansion and Reduced stays false.
	Reduced bool `json:"reduced"`
	// AmpleStates counts states expanded with a strict ample subset,
	// PrunedMoves the enabled moves reduction skipped at them, and
	// ProvisoFallbacks the states escalated back to full expansion by the
	// cycle proviso. All zero unless Reduced.
	AmpleStates      int `json:"ample_states"`
	PrunedMoves      int `json:"pruned_moves"`
	ProvisoFallbacks int `json:"proviso_fallbacks"`
	// SeenBytes is the visited-state storage footprint at the end of the
	// run (slot tables, key arenas, hash/id records) — the number
	// CompactSeen shrinks. PeakFrontierBytes is the frontier's resident
	// high-water mark under the drivers' deterministic per-entry
	// accounting model; MemBudget bounds it.
	SeenBytes         int64 `json:"seen_bytes"`
	PeakFrontierBytes int64 `json:"peak_frontier_bytes"`
	// ExactPromotions counts membership answers resolved by the compact
	// seen set's verifying tier overruling a colliding discriminator
	// (zero for the exact default and for full-width compact hashing).
	// SpilledChunks counts frontier chunks written to the spill file
	// under MemBudget.
	ExactPromotions int64 `json:"exact_promotions"`
	SpilledChunks   int64 `json:"spilled_chunks"`
	// ReductionDegradedBy names the first property whose full
	// visibility forced a Reduce() run back to full expansion (empty
	// when reduction ran, or was never requested) — the degradation is
	// reported, never silent.
	ReductionDegradedBy string `json:"reduction_degraded_by,omitempty"`
	// OK is true when every property is conclusive and none is violated.
	OK bool `json:"ok"`
}

// Property returns the named property's outcome.
func (r *Report) Property(name string) (Property, bool) {
	for _, p := range r.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

// String renders a one-line summary per property.
func (r *Report) String() string {
	out := fmt.Sprintf("verified %d states, %d transitions", r.States, r.Transitions)
	if r.Reduced {
		out += fmt.Sprintf(" (reduced: %d ample states, %d moves pruned, %d proviso fallbacks)",
			r.AmpleStates, r.PrunedMoves, r.ProvisoFallbacks)
	}
	if r.ReductionDegradedBy != "" {
		out += fmt.Sprintf(" (reduction degraded to full expansion by property %s)", r.ReductionDegradedBy)
	}
	for _, p := range r.Properties {
		switch {
		case p.Violated:
			out += fmt.Sprintf("; %s VIOLATED at state %d via %v", p.Name, p.State, p.Path)
		case p.Conclusive:
			out += fmt.Sprintf("; %s ok", p.Name)
		default:
			out += fmt.Sprintf("; %s inconclusive", p.Name)
		}
	}
	return out
}

package bip

import (
	"fmt"

	"bip/internal/core"
	"bip/internal/lts"
)

// Verify streams the reachable state space of sys through on-the-fly
// checkers selected by functional options:
//
//	rep, err := bip.Verify(sys,
//	    bip.Deadlock(),
//	    bip.Invariant(pred),
//	    bip.Workers(4),
//	    bip.MaxStates(1<<22))
//
// One exploration answers every requested property. Each checker
// early-exits on the first violation it finds, and the exploration stops
// as soon as every property is settled — a model that violates early is
// verified without materializing (or even visiting) the rest of its
// state space, in O(frontier) live memory. With no property options,
// Verify checks deadlock-freedom.
//
// Verdicts are deterministic and worker-count independent: the streaming
// checkers observe the sequential exploration order at any Workers
// setting, so the reported states and counterexample paths are
// bit-identical to the corresponding analyses on the materialized LTS
// (check.Explore), which the differential tests pin.
func Verify(sys *System, opts ...Option) (*Report, error) {
	cfg := verifyConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.specs) == 0 {
		Deadlock()(&cfg)
	}
	props := make([]property, len(cfg.specs))
	sinks := make([]lts.Sink, len(cfg.specs))
	for i, spec := range cfg.specs {
		props[i] = spec(sys)
		sinks[i] = props[i].sink
	}
	stats, err := lts.Stream(sys, lts.Options{
		MaxStates: cfg.maxStates,
		Workers:   cfg.workers,
		Raw:       cfg.raw,
	}, lts.NewMulti(sinks...))
	if err != nil {
		return nil, fmt.Errorf("bip: verify %s: %w", sys.Name, err)
	}
	rep := &Report{
		States:      stats.States,
		Transitions: stats.Transitions,
		Truncated:   stats.Truncated,
		OK:          true,
	}
	for _, p := range props {
		prop := p.result()
		rep.Properties = append(rep.Properties, prop)
		if prop.Violated || !prop.Conclusive {
			rep.OK = false
		}
	}
	return rep, nil
}

// Explore materializes the reachable LTS of sys — the full graph for
// analyses that need it (bisimulation, label sets, arbitrary queries).
// Prefer Verify when only property verdicts are wanted: the streaming
// checkers answer those without retaining the state space. Only the
// exploration options (Workers, MaxStates, Raw) apply here; passing a
// property option (Deadlock, Invariant, …) is an error rather than a
// silently dropped check.
func Explore(sys *System, opts ...Option) (*lts.LTS, error) {
	cfg := verifyConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.specs) > 0 {
		return nil, fmt.Errorf("bip: explore %s: property options are Verify-only (got %d); call Verify for on-the-fly checks", sys.Name, len(cfg.specs))
	}
	return lts.Explore(sys, lts.Options{
		MaxStates: cfg.maxStates,
		Workers:   cfg.workers,
		Raw:       cfg.raw,
	})
}

// Option configures Verify and Explore.
type Option func(*verifyConfig)

type verifyConfig struct {
	workers   int
	maxStates int
	raw       bool
	specs     []propSpec
}

// propSpec builds a property's checker once the system is known (Verify
// time), so options like AtomInvariants need no system argument.
type propSpec func(sys *System) property

// property couples a streaming checker with the extraction of its
// verdict once the exploration returns.
type property struct {
	sink   lts.Sink
	result func() Property
}

// Workers sets the number of exploration workers (negative means
// GOMAXPROCS). The verdicts do not depend on it.
func Workers(n int) Option { return func(c *verifyConfig) { c.workers = n } }

// MaxStates bounds the exploration; 0 means the shared library default
// (check.DefaultMaxStates). Hitting the bound makes absence verdicts
// inconclusive, which the Report records.
func MaxStates(n int) Option { return func(c *verifyConfig) { c.maxStates = n } }

// Raw explores the unrestricted interaction semantics, ignoring
// priority filtering.
func Raw() Option { return func(c *verifyConfig) { c.raw = true } }

// Deadlock requests an on-the-fly deadlock-freedom check. A reachable
// deadlock is reported with its counterexample path; the check is then
// settled and stops consuming the exploration.
func Deadlock() Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, func(*System) property {
			chk := &lts.DeadlockCheck{}
			return checkerProperty("deadlock", chk, &chk.Verdict)
		})
	}
}

// checkerProperty couples a checker sink with the extraction of its
// (embedded, shared) verdict into a Property.
func checkerProperty(name string, sink lts.Sink, v *lts.Verdict) property {
	return property{
		sink: sink,
		result: func() Property {
			return Property{
				Name:       name,
				Violated:   v.Found,
				State:      v.State,
				Path:       v.Path,
				Conclusive: v.Found || v.Exhaustive,
			}
		},
	}
}

// Invariant requests an on-the-fly check that pred holds on every
// reachable state. The first violating state (in exploration order) is
// reported with its counterexample path.
func Invariant(pred func(State) bool) Option {
	return invariantProp("invariant", func(*System) func(core.State) bool { return pred })
}

// AtomInvariants requests an on-the-fly check of the designer-asserted
// per-component invariants (evaluated through their slot-compiled
// forms).
func AtomInvariants() Option {
	return invariantProp("atom-invariants", func(sys *System) func(core.State) bool {
		chk := sys.NewInvariantChecker()
		return func(st State) bool { return chk.Check(st) == nil }
	})
}

func invariantProp(name string, mkPred func(*System) func(core.State) bool) Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, func(sys *System) property {
			chk := &lts.InvariantCheck{Pred: mkPred(sys)}
			return checkerProperty(name, chk, &chk.Verdict)
		})
	}
}

// Reach requests an on-the-fly bad-state reachability query: the first
// state satisfying pred is reported with its witness path, and Violated
// is set (reaching the target counts against Report.OK). With full
// coverage and no hit, the target is proved unreachable.
func Reach(pred func(State) bool) Option {
	return func(c *verifyConfig) {
		c.specs = append(c.specs, func(*System) property {
			chk := &lts.ReachCheck{Pred: pred}
			return checkerProperty("reach", chk, &chk.Verdict)
		})
	}
}

// Property is the outcome of one requested check.
type Property struct {
	// Name identifies the check: "deadlock", "invariant",
	// "atom-invariants" or "reach".
	Name string
	// Violated reports a definite violation — a reachable deadlock, an
	// invariant-breaking state or, for Reach, the target being found.
	Violated bool
	// State is the id (exploration order) of the violating/target state;
	// meaningful when Violated.
	State int
	// Path is the interaction sequence leading from the initial state to
	// State; meaningful when Violated.
	Path []string
	// Conclusive reports that the verdict is definite: either a
	// violation was found, or the full state space was covered without
	// one. It is false when the MaxStates bound (or another property's
	// early stop ending the exploration) left the check unsettled.
	Conclusive bool
}

// Report is the outcome of a Verify run.
type Report struct {
	// Properties holds one entry per requested check, in option order.
	Properties []Property
	// States and Transitions count what the exploration visited before
	// finishing or stopping early.
	States      int
	Transitions int
	// Truncated reports that the MaxStates bound cut the exploration.
	Truncated bool
	// OK is true when every property is conclusive and none is violated.
	OK bool
}

// Property returns the named property's outcome.
func (r *Report) Property(name string) (Property, bool) {
	for _, p := range r.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

// String renders a one-line summary per property.
func (r *Report) String() string {
	out := fmt.Sprintf("verified %d states, %d transitions", r.States, r.Transitions)
	for _, p := range r.Properties {
		switch {
		case p.Violated:
			out += fmt.Sprintf("; %s VIOLATED at state %d via %v", p.Name, p.State, p.Path)
		case p.Conclusive:
			out += fmt.Sprintf("; %s ok", p.Name)
		default:
			out += fmt.Sprintf("; %s inconclusive", p.Name)
		}
	}
	return out
}

package bip

import "bip/internal/arch"

// Architectures: reusable glue patterns with characteristic properties
// (§5.5.2), re-exported from the architecture package.
type (
	// Architecture is coordinating components plus interactions and
	// priorities over the target components' ports; Apply installs it
	// into a SystemBuilder.
	Architecture = arch.Architecture
	// MutexClient names a component's acquire/release ports for the
	// mutual-exclusion architecture.
	MutexClient = arch.MutexClient
	// TMRReplica names a replica's output port and variable for the
	// triple-modular-redundancy architecture.
	TMRReplica = arch.TMRReplica
)

// Mutex builds the token-based mutual-exclusion architecture.
// Characteristic property: at most one client holds the resource.
func Mutex(name string, clients []MutexClient) (*Architecture, error) {
	return arch.Mutex(name, clients)
}

// FixedPriority builds the scheduling architecture: earlier interaction
// names win conflicts against later ones.
func FixedPriority(name string, orderedHighFirst []string) *Architecture {
	return arch.FixedPriority(name, orderedHighFirst)
}

// TMR builds the triple-modular-redundancy architecture: a voter masks a
// single faulty replica.
func TMR(name string, replicas [3]TMRReplica) (*Architecture, error) {
	return arch.TMR(name, replicas)
}

// ComposeArch is the ⊕ operation on architectures: the union of their
// constraints, enforcing both characteristic properties when the
// architectures do not contradict each other.
func ComposeArch(a1, a2 *Architecture) (*Architecture, error) { return arch.Compose(a1, a2) }

// AtMostOneAt returns the characteristic-property predicate of Mutex: at
// most one of the listed components sits at its critical location. Use
// it with Invariant or check.InvariantCheck.
func AtMostOneAt(sys *System, critical map[string]string) func(State) bool {
	return arch.AtMostOneAt(sys, critical)
}

#!/usr/bin/env bash
# End-to-end smoke test of the bipd verification service, as run by CI
# and `make bipd-smoke`: start the server, submit examples/pingpong.bip
# with two textual properties, poll the job to completion, assert the
# verdict, assert the byte-identical resubmission is answered from the
# content-addressed report cache, and assert malformed input is a 400.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${BIPD_ADDR:-127.0.0.1:18099}
BIN=$(mktemp -d)/bipd
go build -o "$BIN" ./cmd/bipd
"$BIN" -addr "$ADDR" -pool 2 &
BIPD_PID=$!
trap 'kill "$BIPD_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null

REQ=$(jq -n --rawfile model examples/pingpong.bip \
  '{model: $model, properties: ["always(l.n <= 10)", "always(r.n <= 10)"]}')

ID=$(curl -fsS -d "$REQ" "http://$ADDR/v1/jobs" | jq -r .id)
for _ in $(seq 1 100); do
  STATE=$(curl -fsS "http://$ADDR/v1/jobs/$ID" | jq -r .state)
  case "$STATE" in done|failed|canceled) break ;; esac
  sleep 0.1
done

VIEW=$(curl -fsS "http://$ADDR/v1/jobs/$ID")
test "$(jq -r .state <<<"$VIEW")" = done
test "$(jq -r .report.ok <<<"$VIEW")" = true
test "$(jq -r '.report.properties | length' <<<"$VIEW")" = 2
test "$(jq -r '.report.properties[0].conclusive' <<<"$VIEW")" = true

# Byte-identical resubmission: born done, served from the cache.
VIEW2=$(curl -fsS -d "$REQ" "http://$ADDR/v1/jobs")
test "$(jq -r .cached <<<"$VIEW2")" = true
test "$(jq -r .state <<<"$VIEW2")" = done
curl -fsS "http://$ADDR/metrics" | grep -q '^bipd_cache_hits 1$'

# Malformed model: a 400 with a reason, never a job.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"model":"system ("}' "http://$ADDR/v1/jobs")
test "$CODE" = 400

# Auto-lint at submission: the pingpong job view carries the model's
# static-analysis findings (info-level reduction explainability).
test "$(jq -r '.lint[0].code' <<<"$VIEW")" = BIP011

# POST /v1/lint: a seeded defect (location "island" is unreachable)
# comes back as a positioned BIP001 warning and the model is not clean;
# the clean example lints clean; garbage is a 400.
DEFECT='system flawed
atom A {
  port go
  location a, b, island
  init a
  from a to b on go
  from b to a on go
}
instance x : A
connector go = x.go'
LINT=$(jq -n --arg model "$DEFECT" '{model: $model}' | curl -fsS -d @- "http://$ADDR/v1/lint")
test "$(jq -r .clean <<<"$LINT")" = false
test "$(jq -r '[.diagnostics[] | select(.code == "BIP001")] | length' <<<"$LINT")" = 1
test "$(jq -r '.diagnostics[] | select(.code == "BIP001") | .line > 0' <<<"$LINT")" = true

CLEAN=$(jq -n --rawfile model examples/pingpong.bip '{model: $model}' |
  curl -fsS -d @- "http://$ADDR/v1/lint")
test "$(jq -r .clean <<<"$CLEAN")" = true

CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"model":"system ("}' "http://$ADDR/v1/lint")
test "$CODE" = 400
curl -fsS "http://$ADDR/metrics" | grep -q '^bipd_lint_requests 2$'

echo "bipd smoke: ok (job $ID verified, resubmission cache hit, lint diagnostics served)"

#!/usr/bin/env bash
# End-to-end smoke test of the bipd verification service, as run by CI
# and `make bipd-smoke`: start the server, submit examples/pingpong.bip
# with two textual properties, poll the job to completion, assert the
# verdict, assert the byte-identical resubmission is answered from the
# content-addressed report cache, and assert malformed input is a 400.
# A second round starts a persistent server (-data), kills it with
# SIGKILL mid-flight, restarts it on the same directory, and asserts
# the interrupted jobs recover and pre-crash reports survive.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${BIPD_ADDR:-127.0.0.1:18099}
BIN=$(mktemp -d)/bipd
go build -o "$BIN" ./cmd/bipd
"$BIN" -addr "$ADDR" -pool 2 &
BIPD_PID=$!
BIPD2_PID=
trap 'kill "$BIPD_PID" 2>/dev/null || true; [ -n "$BIPD2_PID" ] && kill "$BIPD2_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR/healthz" >/dev/null

REQ=$(jq -n --rawfile model examples/pingpong.bip \
  '{model: $model, properties: ["always(l.n <= 10)", "always(r.n <= 10)"]}')

ID=$(curl -fsS -d "$REQ" "http://$ADDR/v1/jobs" | jq -r .id)
for _ in $(seq 1 100); do
  STATE=$(curl -fsS "http://$ADDR/v1/jobs/$ID" | jq -r .state)
  case "$STATE" in done|failed|canceled) break ;; esac
  sleep 0.1
done

VIEW=$(curl -fsS "http://$ADDR/v1/jobs/$ID")
test "$(jq -r .state <<<"$VIEW")" = done
test "$(jq -r .report.ok <<<"$VIEW")" = true
test "$(jq -r '.report.properties | length' <<<"$VIEW")" = 2
test "$(jq -r '.report.properties[0].conclusive' <<<"$VIEW")" = true

# Byte-identical resubmission: born done, served from the cache.
VIEW2=$(curl -fsS -d "$REQ" "http://$ADDR/v1/jobs")
test "$(jq -r .cached <<<"$VIEW2")" = true
test "$(jq -r .state <<<"$VIEW2")" = done
curl -fsS "http://$ADDR/metrics" | grep -q '^bipd_cache_hits 1$'

# Malformed model: a 400 with a reason, never a job.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"model":"system ("}' "http://$ADDR/v1/jobs")
test "$CODE" = 400

# Auto-lint at submission: the pingpong job view carries the model's
# static-analysis findings (info-level reduction explainability).
test "$(jq -r '.lint[0].code' <<<"$VIEW")" = BIP011

# POST /v1/lint: a seeded defect (location "island" is unreachable)
# comes back as a positioned BIP001 warning and the model is not clean;
# the clean example lints clean; garbage is a 400.
DEFECT='system flawed
atom A {
  port go
  location a, b, island
  init a
  from a to b on go
  from b to a on go
}
instance x : A
connector go = x.go'
LINT=$(jq -n --arg model "$DEFECT" '{model: $model}' | curl -fsS -d @- "http://$ADDR/v1/lint")
test "$(jq -r .clean <<<"$LINT")" = false
test "$(jq -r '[.diagnostics[] | select(.code == "BIP001")] | length' <<<"$LINT")" = 1
test "$(jq -r '.diagnostics[] | select(.code == "BIP001") | .line > 0' <<<"$LINT")" = true

CLEAN=$(jq -n --rawfile model examples/pingpong.bip '{model: $model}' |
  curl -fsS -d @- "http://$ADDR/v1/lint")
test "$(jq -r .clean <<<"$CLEAN")" = true

CODE=$(curl -s -o /dev/null -w '%{http_code}' -d '{"model":"system ("}' "http://$ADDR/v1/lint")
test "$CODE" = 400
curl -fsS "http://$ADDR/metrics" | grep -q '^bipd_lint_requests 2$'

# ---- crash-restart round: persistence survives kill -9 ----
DATA=$(mktemp -d)
ADDR2=${BIPD_ADDR2:-127.0.0.1:18100}
"$BIN" -addr "$ADDR2" -pool 1 -data "$DATA" &
BIPD2_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR2/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ADDR2/healthz" | jq -e '.persistent == true' >/dev/null

# A quick job completes before the crash: its report must survive.
PRE_ID=$(curl -fsS -d "$REQ" "http://$ADDR2/v1/jobs" | jq -r .id)
for _ in $(seq 1 100); do
  PRE_STATE=$(curl -fsS "http://$ADDR2/v1/jobs/$PRE_ID" | jq -r .state)
  [ "$PRE_STATE" = done ] && break
  sleep 0.1
done
test "$PRE_STATE" = done

# A huge job pins the single worker; a moderate one queues behind it.
BLOCK_MODEL='system blk
atom C {
  var c: int = 0
  port inc
  location s
  init s
  from s to s on inc do c := (c + 1) % 6
}'
for i in $(seq 0 11); do BLOCK_MODEL+=$'\n'"instance t$i : C"; done
for i in $(seq 0 11); do BLOCK_MODEL+=$'\n'"connector inc$i = t$i.inc"; done
Q_MODEL='system mod
atom C {
  var c: int = 0
  port inc
  location s
  init s
  from s to s on inc do c := (c + 1) % 3
}'
for i in $(seq 0 3); do Q_MODEL+=$'\n'"instance t$i : C"; done
for i in $(seq 0 3); do Q_MODEL+=$'\n'"connector inc$i = t$i.inc"; done

BLOCK_ID=$(jq -n --arg model "$BLOCK_MODEL" \
  '{model: $model, options: {max_states: 1073741824, timeout_ms: 120000}}' |
  curl -fsS -d @- "http://$ADDR2/v1/jobs" | jq -r .id)
for _ in $(seq 1 100); do
  [ "$(curl -fsS "http://$ADDR2/v1/jobs/$BLOCK_ID" | jq -r .state)" = running ] && break
  sleep 0.1
done
Q_ID=$(jq -n --arg model "$Q_MODEL" '{model: $model}' |
  curl -fsS -d @- "http://$ADDR2/v1/jobs" | jq -r .id)

kill -9 "$BIPD2_PID"
wait "$BIPD2_PID" 2>/dev/null || true

"$BIN" -addr "$ADDR2" -pool 1 -data "$DATA" &
BIPD2_PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR2/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
# The running blocker and the queued job both come back, same ids.
curl -fsS "http://$ADDR2/healthz" | jq -e '.jobs_recovered == 2' >/dev/null
test "$(curl -fsS "http://$ADDR2/v1/jobs/$BLOCK_ID" | jq -r .recovered)" = true
# Free the worker so the recovered queued job can run to completion.
curl -fsS -X DELETE "http://$ADDR2/v1/jobs/$BLOCK_ID" >/dev/null
for _ in $(seq 1 100); do
  Q_STATE=$(curl -fsS "http://$ADDR2/v1/jobs/$Q_ID" | jq -r .state)
  [ "$Q_STATE" = done ] && break
  sleep 0.1
done
test "$Q_STATE" = done
test "$(curl -fsS "http://$ADDR2/v1/jobs/$Q_ID" | jq -r .report.states)" = 81
# The pre-crash report outlived the kill: resubmission is a hit, no
# re-exploration.
VIEW3=$(curl -fsS -d "$REQ" "http://$ADDR2/v1/jobs")
test "$(jq -r .cached <<<"$VIEW3")" = true
test "$(jq -r .state <<<"$VIEW3")" = done

echo "bipd smoke: ok (job $ID verified, resubmission cache hit, lint diagnostics served, crash-restart recovered 2 jobs with reports intact)"

//go:build race

package bip_test

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive gates skip under it.
const raceEnabled = true

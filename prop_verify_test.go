package bip_test

import (
	"strings"
	"testing"

	"bip"
	"bip/models"
	"bip/prop"
)

// TestReportPropertyNaming is the regression test for the duplicate
// report-name ambiguity: two same-kind options used to both report as
// e.g. "invariant", making Report.Property("invariant") answer for an
// arbitrary one. Unnamed duplicates now auto-suffix in option order and
// Named assigns explicit names.
func TestReportPropertyNaming(t *testing.T) {
	sys, err := models.Elevator(3)
	if err != nil {
		t.Fatal(err)
	}
	movingOpen := models.MovingWithDoorOpen(sys)
	cabinMoving := func(st bip.State) bool { return st.Locs[sys.AtomIndex("cabin")] == "moving" }

	rep, err := bip.Verify(sys,
		bip.Invariant(func(st bip.State) bool { return !movingOpen(st) }),  // holds
		bip.Invariant(func(st bip.State) bool { return !cabinMoving(st) }), // violated
		bip.Named("third", bip.Invariant(func(bip.State) bool { return true })),
		bip.Deadlock(),
	)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"invariant", "invariant#2", "third", "deadlock"}
	if len(rep.Properties) != len(wantNames) {
		t.Fatalf("got %d properties, want %d", len(rep.Properties), len(wantNames))
	}
	for i, want := range wantNames {
		if rep.Properties[i].Name != want {
			t.Fatalf("property %d named %q, want %q", i, rep.Properties[i].Name, want)
		}
	}
	first, ok := rep.Property("invariant")
	if !ok || first.Violated {
		t.Fatalf("the first invariant holds by construction, got %+v (ok=%v)", first, ok)
	}
	second, ok := rep.Property("invariant#2")
	if !ok || !second.Violated {
		t.Fatalf("the second invariant is violated whenever the cabin moves, got %+v (ok=%v)", second, ok)
	}
	if third, ok := rep.Property("third"); !ok || third.Violated {
		t.Fatalf("Named property missing or wrong: %+v (ok=%v)", third, ok)
	}
}

// TestVerifyPropOptionEndToEnd drives a textual property through
// ParseProp → Prop → Verify and pins the same verdict as the
// algebra-built equivalent, at workers 1 and 4.
func TestVerifyPropOptionEndToEnd(t *testing.T) {
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := bip.ParseProp("after(cabin.depart, until(at(door, closed), cabin.arrive))")
	if err != nil {
		t.Fatal(err)
	}
	built := prop.After(prop.On("cabin.depart"),
		prop.Until(prop.At("door", "closed"), prop.On("cabin.arrive")))
	if parsed.String() != built.String() {
		t.Fatalf("parsed %q != built %q", parsed.String(), built.String())
	}
	var ref bip.Property
	for _, w := range []int{1, 4} {
		rep, err := bip.Verify(unsafe,
			bip.Named("door-safety", bip.Prop(parsed)),
			bip.Prop(built),
			bip.Workers(w))
		if err != nil {
			t.Fatal(err)
		}
		named, ok := rep.Property("door-safety")
		if !ok {
			t.Fatal("missing named property")
		}
		other, ok := rep.Property("after")
		if !ok {
			t.Fatal("missing kind-named property")
		}
		if !named.Violated || !other.Violated {
			t.Fatalf("workers=%d: unsafe elevator must violate door safety", w)
		}
		if named.State != other.State || strings.Join(named.Path, " ") != strings.Join(other.Path, " ") {
			t.Fatalf("workers=%d: parsed and built verdicts diverge: %+v vs %+v", w, named, other)
		}
		if w == 1 {
			ref = named
		} else if named.State != ref.State || strings.Join(named.Path, " ") != strings.Join(ref.Path, " ") {
			t.Fatalf("workers=%d: verdict (%d,%v) != sequential (%d,%v)",
				w, named.State, named.Path, ref.State, ref.Path)
		}
	}
}

// TestVerifyPropCompileErrorSurfaces pins that property compile errors
// name the offending property and arrive before exploration.
func TestVerifyPropCompileErrorSurfaces(t *testing.T) {
	sys, err := models.Elevator(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = bip.Verify(sys, bip.Named("oops", bip.Prop(prop.Always(prop.At("nobody", "here")))))
	if err == nil {
		t.Fatal("expected a compile error")
	}
	if !strings.Contains(err.Error(), "oops") || !strings.Contains(err.Error(), "unknown component") {
		t.Fatalf("error %q should name the property and the unknown component", err)
	}
}

module bip

go 1.22

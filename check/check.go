// Package check exposes the verification machinery underneath
// bip.Verify: the streaming exploration drivers and their Sink
// interface, the composable on-the-fly checkers, the materialized LTS
// with its analyses (reachability, bisimulation, trace inclusion), and
// the compositional D-Finder-style verifier that proves deadlock-freedom
// without touching the product state space.
//
// The streaming surface is the one to build on: Stream drives a
// breadth-first exploration — sequential or sharded-parallel, with a
// bit-identical event stream either way — into any Sink. A Sink observes
// OnState / OnEdge / OnExpanded / Done events in deterministic order and
// may stop the exploration early by returning ErrStop; checkers retain
// O(frontier) live memory and capture counterexample paths from the
// frontier-resident BFS tree (Discovery.Path). Explore materializes the
// whole graph by running the LTS itself as the sink.
package check

import (
	"bip"
	"bip/internal/invariant"
	"bip/internal/lts"
	"bip/lint"
)

// Streaming exploration surface.
type (
	// Sink consumes the exploration event stream; see the field and
	// method contracts on the underlying type.
	Sink = lts.Sink
	// Discovery describes how a state was first reached and yields its
	// path from the initial state.
	Discovery = lts.Discovery
	// Options configures an exploration (bound, raw semantics, workers,
	// stream order).
	Options = lts.Options
	// Order selects the multi-worker event-stream discipline:
	// Deterministic replays the sequential stream exactly; Unordered
	// runs the barrier-free work-stealing explorer.
	Order = lts.Order
	// OrderSink is the optional Sink extension through which drivers
	// announce the stream order before the first event.
	OrderSink = lts.OrderSink
	// Stats summarizes a streaming run, including the peak-frontier
	// memory high-water mark.
	Stats = lts.Stats
	// Verdict is the outcome block embedded by every checker (Found,
	// State, Path, Exhaustive).
	Verdict = lts.Verdict
	// DeadlockCheck detects reachable deadlocks on the fly.
	DeadlockCheck = lts.DeadlockCheck
	// InvariantCheck verifies a state predicate on the fly.
	InvariantCheck = lts.InvariantCheck
	// ReachCheck searches for a target state on the fly.
	ReachCheck = lts.ReachCheck
	// Observer is a compiled deterministic observer automaton — the
	// form the bip/prop algebra's safety-temporal operators compile to.
	Observer = lts.Observer
	// AutomatonCheck verifies an Observer property on the fly by
	// incremental product reachability over the event stream.
	AutomatonCheck = lts.AutomatonCheck
	// Multi fans the event stream out to several sinks.
	Multi = lts.Multi
	// SeenSet is one dedup stripe of the pluggable seen-set layer
	// (Options.Seen): the mapping from visited-state keys to state ids.
	SeenSet = lts.SeenSet
	// SeenSets builds the per-stripe SeenSet instances of one
	// exploration; nil Options.Seen means ExactSeen.
	SeenSets = lts.SeenSets
	// ExactSeen selects exact dedup (the default): full binary keys in
	// chunked arenas, keyWidth + ~12 bytes per visited state.
	ExactSeen = lts.ExactSeen
	// CompactSeen selects hash-compacted dedup: ~12 bytes per visited
	// state independent of key width, exact up to 64-bit hash
	// collisions, with a verifying exact-promotion tier at narrow
	// RemainderBits.
	CompactSeen = lts.CompactSeen
	// Expander plugs a successor-selection policy into the drivers
	// (Options.Expander); nil means full expansion.
	Expander = lts.Expander
	// WorkerExpander is the per-goroutine face of an Expander.
	WorkerExpander = lts.WorkerExpander
	// Visibility declares what an ample-set reduction must preserve: the
	// interaction labels a property observes and the atoms whose state
	// its predicates read. The zero value (nothing visible) yields
	// maximal, deadlock-preserving reduction.
	Visibility = lts.Visibility
	// AmpleExpander is the ample-set partial-order reducer; build one
	// with NewAmpleExpander.
	AmpleExpander = lts.AmpleExpander
	// LTS is the materialized state space and its analyses.
	LTS = lts.LTS
	// Edge is an outgoing transition of an explored state.
	Edge = lts.Edge
	// Relabel maps transition labels for comparison purposes
	// (bisimulation, trace inclusion).
	Relabel = lts.Relabel
)

// ErrStop is the sentinel a Sink returns to end exploration early
// without error.
var ErrStop = lts.ErrStop

// Stream-order constants; see Order.
const (
	// Deterministic (the zero value, so the default) makes any worker
	// count replay the sequential event stream bit-identically.
	Deterministic = lts.Deterministic
	// Unordered lets workers emit events as expansion completes: the
	// same state set, edges, truncation flag and checker verdicts, with
	// scheduling-dependent numbering — the fast path for verification
	// runs that only need verdicts.
	Unordered = lts.Unordered
)

// DefaultMaxStates is the exploration bound applied when
// Options.MaxStates is zero — shared by the library and the command-line
// tools.
const DefaultMaxStates = lts.DefaultMaxStates

// Stream explores the reachable state space of sys breadth-first and
// feeds the deterministic event stream to sink.
func Stream(sys *bip.System, opts Options, sink Sink) (Stats, error) {
	return lts.Stream(sys, opts, sink)
}

// Explore materializes the reachable LTS of sys (the LTS is just one
// sink over the same stream).
func Explore(sys *bip.System, opts Options) (*LTS, error) {
	return lts.Explore(sys, opts)
}

// NewMulti combines sinks so one exploration answers many queries; see
// Multi.
func NewMulti(sinks ...Sink) *Multi { return lts.NewMulti(sinks...) }

// NewAmpleExpander builds the ample-set partial-order reducer for sys:
// plug the result into Options.Expander to explore a property-preserving
// subset of the state space. vis lists what the run's consumers observe
// (never pruned); it is rejected if vis.All or if it names unknown
// labels/atoms. Most callers go through bip.Reduce, which derives vis
// from the compiled properties.
func NewAmpleExpander(sys *bip.System, vis Visibility) (*AmpleExpander, error) {
	return lts.NewAmpleExpander(sys, vis)
}

// NewAutomatonCheck returns a checker for a compiled observer. Most
// callers go through bip.Verify with a bip/prop property instead;
// prop.Compile is what builds the Observer.
func NewAutomatonCheck(obs *Observer) *AutomatonCheck { return lts.NewAutomatonCheck(obs) }

// Bisimilar decides strong bisimilarity of the initial states of two
// materialized LTSs after relabeling.
func Bisimilar(a, b *LTS, ra, rb Relabel) bool { return lts.Bisimilar(a, b, ra, rb) }

// ObsTraceIncluded decides observational (weak) trace inclusion of a in
// b after relabeling, returning a distinguishing trace on failure.
func ObsTraceIncluded(a, b *LTS, ra, rb Relabel) (bool, []string) {
	return lts.ObsTraceIncluded(a, b, ra, rb)
}

// Identity observes every label as itself.
func Identity(label string) (string, bool) { return lts.Identity(label) }

// Hide returns a Relabel silencing the listed labels.
func Hide(hidden ...string) Relabel { return lts.Hide(hidden...) }

// MapLabels returns a Relabel applying the mapping; labels mapped to ""
// become silent.
func MapLabels(m map[string]string) Relabel { return lts.MapLabels(m) }

// Compositional verification (the paper's D-Finder method, §5.6):
// deadlock-freedom from component invariants, trap-based interaction
// invariants and a SAT check, never exploring the product state space.
type (
	// CompositionalOptions configures the compositional verifier.
	CompositionalOptions = invariant.Options
	// CompositionalResult is its outcome: a proof or an irrefutable
	// candidate deadlock (inconclusive).
	CompositionalResult = invariant.Result
	// PlaceRef names a control location in the Petri-net abstraction.
	PlaceRef = invariant.PlaceRef
)

// Compositional runs the compositional deadlock-freedom analysis.
func Compositional(sys *bip.System, opts CompositionalOptions) (*CompositionalResult, error) {
	return invariant.Verify(sys, opts)
}

// Diagnostic is one static-analysis finding from Lint (bip/lint).
type Diagnostic = lint.Diagnostic

// Lint statically analyzes a validated system without exploring it —
// the cheap admission filter to run before Stream/Explore/Compositional.
// See bip/lint for the pass catalogue and diagnostic code reference.
func Lint(sys *bip.System) ([]Diagnostic, error) { return lint.Analyze(sys) }

// FormatCompositional renders a compositional result for tool output.
func FormatCompositional(r *CompositionalResult) string { return invariant.FormatResult(r) }

// Package bip is the public face of the library: rigorous system design
// with the BIP (Behaviour–Interaction–Priority) component framework.
//
// The package re-exports everything an external consumer needs to author
// models and run them, from a single import:
//
//   - behaviour: NewAtom builds atomic components (automata with ports,
//     variables, guarded transitions and invariants);
//   - interaction and priority: NewSystem composes atoms with multiparty
//     interactions, connectors and priority rules; Parse accepts the
//     textual BIP dialect;
//   - architectures: Mutex, FixedPriority, TMR and Compose apply reusable
//     coordination patterns (the paper's §5.5.2 architecture concept);
//   - execution: Run and RunMT drive the single- and multi-threaded
//     engines;
//   - verification: Verify streams the state space through on-the-fly
//     checkers with functional options — Verify(sys, Deadlock(),
//     Prop(prop.Never(...)), Workers(4)) — early-exiting on the first
//     violation with a counterexample path; properties are declarative
//     values of the bip/prop algebra (state predicates, safety-temporal
//     operators, observer automata), parseable from text with ParseProp;
//     Explore materializes the LTS when the whole graph is wanted.
//
// Deeper machinery lives in the subpackages: bip/check (streaming sinks,
// the materialized LTS, bisimulation, compositional D-Finder-style
// verification), bip/models (the model zoo), bip/distributed (the
// three-layer send/receive transformation), bip/lustre (synchronous
// data-flow embedding), and bip/bench (the paper-reproduction
// experiments). Everything under bip/internal is implementation.
package bip

import (
	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/dsl"
	"bip/lint"
	"bip/prop"
)

// Model-building types, re-exported from the composition core.
type (
	// System is a flat BIP model: atoms glued by interactions filtered
	// by priorities. Build one with NewSystem or Parse.
	System = core.System
	// SystemBuilder assembles a System with a fluent API.
	SystemBuilder = core.SystemBuilder
	// Atom is an atomic component: an automaton with ports, variables
	// and guarded transitions. Build one with NewAtom.
	Atom = behavior.Atom
	// AtomBuilder assembles an Atom with a fluent API.
	AtomBuilder = behavior.Builder
	// Interaction is a multiparty synchronization over ports.
	Interaction = core.Interaction
	// Priority suppresses interaction Low while High is enabled (and the
	// optional When condition holds).
	Priority = core.Priority
	// PortRef names a port of a component instance ("comp.port").
	PortRef = core.PortRef
	// State is a global system state: per-component locations and
	// variable valuations.
	State = core.State
	// Move is one way an interaction can fire from a state.
	Move = core.Move
	// Connector is BIP's structured glue (rendezvous/broadcast); it
	// expands into feasible interactions plus maximal-progress
	// priorities.
	Connector = core.Connector
	// ConnectorEnd is one connector endpoint (trigger or synchron).
	ConnectorEnd = core.ConnectorEnd
	// InvariantChecker evaluates the atoms' designer-asserted invariants
	// with a reusable frame; see System.NewInvariantChecker.
	InvariantChecker = core.InvariantChecker
)

// NewSystem starts building a system.
func NewSystem(name string) *SystemBuilder { return core.NewSystem(name) }

// NewAtom starts building an atomic component.
func NewAtom(name string) *AtomBuilder { return behavior.NewBuilder(name) }

// P is shorthand for building a PortRef.
func P(comp, port string) PortRef { return core.P(comp, port) }

// Rendezvous builds a strong-synchronization connector over the ports.
func Rendezvous(name string, refs ...PortRef) Connector { return core.Rendezvous(name, refs...) }

// Broadcast builds a connector with one trigger (the sender) and any
// number of synchron receivers.
func Broadcast(name string, sender PortRef, receivers ...PortRef) Connector {
	return core.Broadcast(name, sender, receivers...)
}

// Sync returns a synchron connector endpoint.
func Sync(comp, port string) ConnectorEnd { return core.Sync(comp, port) }

// Trig returns a trigger connector endpoint.
func Trig(comp, port string) ConnectorEnd { return core.Trig(comp, port) }

// Parse elaborates a program in the textual BIP dialect into a validated
// System.
func Parse(src string) (*System, error) { return dsl.Parse(src) }

// Diagnostic is one static-analysis finding from Lint, re-exported from
// bip/lint: a stable code (BIP001…), a severity, and — for DSL-built
// models — a source position.
type Diagnostic = lint.Diagnostic

// Lint statically analyzes a validated system without exploring it:
// unreachable locations, dead transitions and interactions,
// contradictory guards, disconnected ports, unused variables, dominated
// priorities, and reduction explainability. See bip/lint for the pass
// catalogue and code reference. Run it before Verify — it is orders of
// magnitude cheaper than exploration and catches defects that would
// otherwise burn a full state-space search.
func Lint(sys *System) ([]Diagnostic, error) { return lint.Analyze(sys) }

// ParseProp parses a textual property into the bip/prop algebra — the
// same syntax prop values render with String:
//
//	p, err := bip.ParseProp(`after(depart, until(at(door, closed), arrive))`)
//	rep, err := bip.Verify(sys, bip.Prop(p))
//
// Pass the result to the Prop option (optionally wrapped in Named); it
// is resolved and compiled against the system when Verify runs.
func ParseProp(src string) (prop.Prop, error) { return dsl.ParseProp(src) }

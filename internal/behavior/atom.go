// Package behavior implements atomic BIP components: automata extended
// with data variables, whose transitions are labelled by ports, guarded by
// expressions, and carry update actions. Atomic components are the
// "Behavior" layer of BIP; their coordination (interactions, priorities)
// lives in package core.
package behavior

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bip/internal/expr"
)

// Pos is a source position (1-based line and column) recorded on
// declarations by the DSL front-end and threaded through to diagnostics
// (bip/lint). The zero value means "unknown" — hand-built models carry
// no positions and every consumer must tolerate that.
type Pos struct {
	Line int
	Col  int
}

// Known reports whether the position was actually recorded.
func (p Pos) Known() bool { return p.Line > 0 }

// String renders "line:col" ("?" when unknown).
func (p Pos) String() string {
	if !p.Known() {
		return "?"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// VarDecl declares a component variable with its initial value.
type VarDecl struct {
	Name string
	Init expr.Value
	// Pos is the declaration's source position (zero when hand-built).
	Pos Pos
}

// Port is an interaction point of an atomic component. Vars lists the
// component variables exported through the port: interaction guards may
// read them and interaction data transfer may read and write them.
type Port struct {
	Name string
	Vars []string
	// Pos is the declaration's source position (zero when hand-built).
	Pos Pos
}

// Transition is a guarded, port-labelled control step. A transition with
// guard nil is always enabled from its source location. Action (may be
// nil) executes over the component's variables when the transition fires.
type Transition struct {
	From, To string
	Port     string
	Guard    expr.Expr
	Action   expr.Stmt
	// Pos is the declaration's source position (zero when hand-built).
	Pos Pos
}

// String renders the transition as source text.
func (t Transition) String() string {
	out := fmt.Sprintf("%s --%s--> %s", t.From, t.Port, t.To)
	if t.Guard != nil {
		out += " when " + t.Guard.String()
	}
	if t.Action != nil {
		out += " do " + t.Action.String()
	}
	return out
}

// Atom is an atomic BIP component. Construct atoms with Builder, which
// validates cross-references; a hand-built Atom can be checked with
// Validate.
type Atom struct {
	Name        string
	Locations   []string
	Initial     string
	Vars        []VarDecl
	Ports       []Port
	Transitions []Transition

	// Pos is the source position of the declaration this atom came from
	// (the atom type for DSL instances); LocPos, when non-nil, is
	// parallel to Locations. Both are zero/nil for hand-built models.
	Pos    Pos
	LocPos []Pos

	// Invariants are the designer-asserted state predicates of the
	// component, checked by the verification packages (they are claims,
	// not assumptions).
	Invariants []expr.Expr

	portIdx map[string]int
	// locIdx interns location names: every declared location gets its
	// index into Locations, which is what the fixed-width binary state
	// keys encode instead of the location string.
	locIdx map[string]int
	varIdx map[string]int

	// transOn indexes transitions by (source location, port) so that
	// enabledness checks are a single lookup instead of a scan over every
	// transition. Built by Validate.
	transOn map[locPort]transGroup
	// layout and the per-transition compiled guards/actions let the hot
	// execution paths run over a flat value frame instead of a map-backed
	// Env. Entries are nil when the transition has no guard/action.
	layout   *expr.Layout
	cGuards  []expr.CompiledBool
	cActions []expr.CompiledStmt
	// cInvs are the invariants compiled against the same layout, so
	// runtime invariant checking (engine, streaming verification) pays a
	// slice index per variable access like the transition hot paths do.
	cInvs []expr.CompiledBool
}

// locPort keys the transition index.
type locPort struct{ loc, port string }

// transGroup is the pre-computed transition set for one (location, port)
// pair. When guarded is false every member is unconditionally enabled at
// the location, so the cached index slice doubles as the enabled set.
type transGroup struct {
	idx     []int
	guarded bool
}

// Validate checks internal consistency and builds lookup indices. It must
// be called (directly or via Builder.Build) before the atom is used.
func (a *Atom) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("atom: empty name")
	}
	if len(a.Locations) == 0 {
		return fmt.Errorf("atom %s: no locations", a.Name)
	}
	a.locIdx = make(map[string]int, len(a.Locations))
	for i, l := range a.Locations {
		if l == "" {
			return fmt.Errorf("atom %s: empty location name", a.Name)
		}
		if _, dup := a.locIdx[l]; dup {
			return fmt.Errorf("atom %s: duplicate location %q", a.Name, l)
		}
		a.locIdx[l] = i
	}
	if !a.HasLocation(a.Initial) {
		return fmt.Errorf("atom %s: initial location %q undeclared", a.Name, a.Initial)
	}
	a.varIdx = make(map[string]int, len(a.Vars))
	for i, v := range a.Vars {
		if v.Name == "" {
			return fmt.Errorf("atom %s: empty variable name", a.Name)
		}
		if _, dup := a.varIdx[v.Name]; dup {
			return fmt.Errorf("atom %s: duplicate variable %q", a.Name, v.Name)
		}
		if v.Init.Kind() == expr.KindInvalid {
			return fmt.Errorf("atom %s: variable %q has no initial value", a.Name, v.Name)
		}
		a.varIdx[v.Name] = i
	}
	a.portIdx = make(map[string]int, len(a.Ports))
	for i, p := range a.Ports {
		if p.Name == "" {
			return fmt.Errorf("atom %s: empty port name", a.Name)
		}
		if _, dup := a.portIdx[p.Name]; dup {
			return fmt.Errorf("atom %s: duplicate port %q", a.Name, p.Name)
		}
		for _, v := range p.Vars {
			if _, ok := a.varIdx[v]; !ok {
				return fmt.Errorf("atom %s: port %q exports undeclared variable %q", a.Name, p.Name, v)
			}
		}
		a.portIdx[p.Name] = i
	}
	for i, t := range a.Transitions {
		if !a.HasLocation(t.From) {
			return fmt.Errorf("atom %s: transition %d: unknown source location %q", a.Name, i, t.From)
		}
		if !a.HasLocation(t.To) {
			return fmt.Errorf("atom %s: transition %d: unknown target location %q", a.Name, i, t.To)
		}
		if _, ok := a.portIdx[t.Port]; !ok {
			return fmt.Errorf("atom %s: transition %d: unknown port %q", a.Name, i, t.Port)
		}
		for _, v := range expr.Vars(t.Guard) {
			if _, ok := a.varIdx[v]; !ok {
				return fmt.Errorf("atom %s: transition %d: guard reads undeclared variable %q", a.Name, i, v)
			}
		}
		for _, v := range append(expr.Reads(t.Action), expr.Writes(t.Action)...) {
			if _, ok := a.varIdx[v]; !ok {
				return fmt.Errorf("atom %s: transition %d: action uses undeclared variable %q", a.Name, i, v)
			}
		}
	}
	for i, inv := range a.Invariants {
		for _, v := range expr.Vars(inv) {
			if _, ok := a.varIdx[v]; !ok {
				return fmt.Errorf("atom %s: invariant %d reads undeclared variable %q", a.Name, i, v)
			}
		}
	}
	a.buildIndices()
	return nil
}

// buildIndices precomputes the (location, port) transition index and
// compiles guards and actions against the atom's variable layout. Called
// at the end of a successful Validate, so every referenced name is known
// to be declared and compilation cannot fail; if it ever does, the nil
// compiled entry makes the caller fall back to the interpreter, which
// reports the real error.
func (a *Atom) buildIndices() {
	a.transOn = make(map[locPort]transGroup)
	for i, t := range a.Transitions {
		k := locPort{loc: t.From, port: t.Port}
		g := a.transOn[k]
		g.idx = append(g.idx, i)
		g.guarded = g.guarded || t.Guard != nil
		a.transOn[k] = g
	}
	names := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		names[i] = v.Name
	}
	layout, err := expr.NewLayout(names)
	if err != nil {
		return
	}
	a.layout = layout
	a.cGuards = make([]expr.CompiledBool, len(a.Transitions))
	a.cActions = make([]expr.CompiledStmt, len(a.Transitions))
	for i, t := range a.Transitions {
		if t.Guard != nil {
			if g, err := expr.CompileBool(t.Guard, layout); err == nil {
				a.cGuards[i] = g
			}
		}
		if t.Action != nil {
			if c, err := expr.CompileStmt(t.Action, layout); err == nil {
				a.cActions[i] = c
			}
		}
	}
	a.cInvs = make([]expr.CompiledBool, len(a.Invariants))
	for i, inv := range a.Invariants {
		if c, err := expr.CompileBool(inv, layout); err == nil {
			a.cInvs[i] = c
		}
	}
}

// compiledGuard and compiledAction return the compiled form of
// transition i, or nil when unavailable (unvalidated atom, or transitions
// appended after Validate).
func (a *Atom) compiledGuard(i int) expr.CompiledBool {
	if i < len(a.cGuards) {
		return a.cGuards[i]
	}
	return nil
}

func (a *Atom) compiledAction(i int) expr.CompiledStmt {
	if i < len(a.cActions) {
		return a.cActions[i]
	}
	return nil
}

// frameOf copies vars into a fresh frame in layout order. It reports
// false when vars does not bind exactly the declared variables, in which
// case callers must use the map-based interpreter path.
func (a *Atom) frameOf(vars expr.MapEnv) ([]expr.Value, bool) {
	return a.fillFrame(vars, make([]expr.Value, len(a.Vars)))
}

// fillFrame copies vars into the caller-provided frame (len == number of
// declared variables) in layout order, with the same exactness contract
// as frameOf.
func (a *Atom) fillFrame(vars expr.MapEnv, vals []expr.Value) ([]expr.Value, bool) {
	if len(vars) != len(a.Vars) {
		return nil, false
	}
	for i, vd := range a.Vars {
		v, ok := vars[vd.Name]
		if !ok {
			return nil, false
		}
		vals[i] = v
	}
	return vals, true
}

// BrokenInvariant evaluates the atom's invariants at vars and returns
// the index of the first one that does not hold, or -1 when all hold. A
// non-nil error reports an evaluation failure of invariant idx.
// Invariants compiled at Validate time run over frame — the caller's
// scratch, capacity ≥ len(a.Vars) — instead of the map env; the
// interpreter remains the fallback (and the reference semantics).
func (a *Atom) BrokenInvariant(vars expr.MapEnv, frame []expr.Value) (idx int, err error) {
	if len(a.Invariants) == 0 {
		return -1, nil
	}
	var vals []expr.Value
	if a.cInvs != nil && cap(frame) >= len(a.Vars) {
		vals, _ = a.fillFrame(vars, frame[:len(a.Vars)])
	}
	for i, inv := range a.Invariants {
		var holds bool
		var err error
		if vals != nil && i < len(a.cInvs) && a.cInvs[i] != nil {
			holds, err = a.cInvs[i](vals)
		} else {
			holds, err = expr.EvalBool(inv, vars)
		}
		if err != nil {
			return i, err
		}
		if !holds {
			return i, nil
		}
	}
	return -1, nil
}

// HasPort reports whether the atom declares a port with the given name.
func (a *Atom) HasPort(name string) bool {
	_, ok := a.portIdx[name]
	return ok
}

// PortByName returns the declared port. It reports false for unknown
// names.
func (a *Atom) PortByName(name string) (Port, bool) {
	i, ok := a.portIdx[name]
	if !ok {
		return Port{}, false
	}
	return a.Ports[i], true
}

// HasLocation reports whether the atom declares the location.
func (a *Atom) HasLocation(name string) bool {
	_, ok := a.locIdx[name]
	return ok
}

// LocationIndex returns the interned index of the named location (its
// position in Locations). It reports false for undeclared names or on an
// atom that has not been validated.
func (a *Atom) LocationIndex(name string) (int, bool) {
	i, ok := a.locIdx[name]
	return i, ok
}

// HasVar reports whether the atom declares the variable.
func (a *Atom) HasVar(name string) bool {
	_, ok := a.varIdx[name]
	return ok
}

// InitialState returns a fresh state at the initial location with all
// variables at their declared initial values.
func (a *Atom) InitialState() State {
	vars := make(expr.MapEnv, len(a.Vars))
	for _, v := range a.Vars {
		vars[v.Name] = v.Init
	}
	return State{Loc: a.Initial, Vars: vars}
}

// TransitionsOn returns the indices of transitions labelled by port that
// leave location from. The result preserves declaration order and is
// owned by the caller.
func (a *Atom) TransitionsOn(from, port string) []int {
	if a.transOn != nil {
		return append([]int(nil), a.transOn[locPort{loc: from, port: port}].idx...)
	}
	var out []int
	for i, t := range a.Transitions {
		if t.From == from && t.Port == port {
			out = append(out, i)
		}
	}
	return out
}

// Enabled returns the indices of transitions labelled by port that are
// enabled in state s (source location matches and local guard holds).
// The result is owned by the caller.
func (a *Atom) Enabled(s State, port string) ([]int, error) {
	en, err := a.EnabledView(s, port)
	if err != nil || en == nil {
		return nil, err
	}
	return append([]int(nil), en...), nil
}

// EnabledView is Enabled without the defensive copy: when every candidate
// transition is unguarded the pre-computed index slice is returned
// directly. The caller must treat the result as read-only. This is the
// per-port enabledness primitive of the engines' hot path.
func (a *Atom) EnabledView(s State, port string) ([]int, error) {
	if a.transOn == nil {
		// Hand-assembled atom that skipped Validate: fall back to a scan.
		return a.enabledScan(s, port)
	}
	g := a.transOn[locPort{loc: s.Loc, port: port}]
	if !g.guarded {
		return g.idx, nil
	}
	// One frame serves every compiled guard of the group.
	vals, valsOK := a.frameOf(s.Vars)
	var out []int
	for _, i := range g.idx {
		var ok bool
		var err error
		if cg := a.compiledGuard(i); cg != nil && valsOK {
			ok, err = cg(vals)
			if err != nil {
				err = fmt.Errorf("atom %s: %w", a.Name, err)
			}
		} else {
			ok, err = expr.EvalBool(a.Transitions[i].Guard, s.Vars)
			if err != nil {
				err = fmt.Errorf("atom %s: %w", a.Name, err)
			}
		}
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

func (a *Atom) enabledScan(s State, port string) ([]int, error) {
	var out []int
	for i, t := range a.Transitions {
		if t.From != s.Loc || t.Port != port {
			continue
		}
		ok, err := expr.EvalBool(t.Guard, s.Vars)
		if err != nil {
			return nil, fmt.Errorf("atom %s: %w", a.Name, err)
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// Exec fires transition index i from state s and returns the successor
// state. The input state is not mutated.
func (a *Atom) Exec(s State, i int) (State, error) {
	if i < 0 || i >= len(a.Transitions) {
		return State{}, fmt.Errorf("atom %s: transition index %d out of range", a.Name, i)
	}
	t := a.Transitions[i]
	if t.From != s.Loc {
		return State{}, fmt.Errorf("atom %s: transition %d starts at %q, state is at %q", a.Name, i, t.From, s.Loc)
	}
	if t.Action == nil {
		return State{Loc: t.To, Vars: s.Vars.Clone()}, nil
	}
	// Compiled path: run the action over a flat frame and materialize the
	// successor map from it, skipping the per-iteration map operations of
	// the interpreter entirely.
	if ca := a.compiledAction(i); ca != nil {
		if vals, ok := a.frameOf(s.Vars); ok {
			if err := ca(vals); err != nil {
				return State{}, fmt.Errorf("atom %s: %w", a.Name, err)
			}
			vars := make(expr.MapEnv, len(vals))
			for j, vd := range a.Vars {
				vars[vd.Name] = vals[j]
			}
			return State{Loc: t.To, Vars: vars}, nil
		}
	}
	next := State{Loc: t.To, Vars: s.Vars.Clone()}
	if err := t.Action.Exec(next.Vars); err != nil {
		return State{}, fmt.Errorf("atom %s: %w", a.Name, err)
	}
	return next, nil
}

// ExecInPlace fires transition index i from state s, mutating s.Vars in
// place, and returns the successor location. The caller must own s.Vars
// exclusively; on error the variable store may be partially updated, so
// the state must be discarded. It exists so that single-owner hot loops
// (the engines' step contexts) avoid cloning the variable store on every
// step.
func (a *Atom) ExecInPlace(s State, i int) (string, error) {
	if i < 0 || i >= len(a.Transitions) {
		return "", fmt.Errorf("atom %s: transition index %d out of range", a.Name, i)
	}
	t := a.Transitions[i]
	if t.From != s.Loc {
		return "", fmt.Errorf("atom %s: transition %d starts at %q, state is at %q", a.Name, i, t.From, s.Loc)
	}
	if t.Action == nil {
		return t.To, nil
	}
	if ca := a.compiledAction(i); ca != nil {
		if vals, ok := a.frameOf(s.Vars); ok {
			if err := ca(vals); err != nil {
				return "", fmt.Errorf("atom %s: %w", a.Name, err)
			}
			for j, vd := range a.Vars {
				s.Vars[vd.Name] = vals[j]
			}
			return t.To, nil
		}
	}
	if err := t.Action.Exec(s.Vars); err != nil {
		return "", fmt.Errorf("atom %s: %w", a.Name, err)
	}
	return t.To, nil
}

// AppendStateKey appends a canonical encoding of s to buf and returns the
// extended buffer. Unlike State.Key it uses the atom's declared variable
// order, so it needs no sorting and no intermediate strings; two states
// of the same atom get equal encodings iff they are Equal. The location
// is length-prefixed so that separator bytes inside location names cannot
// make distinct states collide; variable values render as digits or
// true/false and need no escaping. It is the building block of
// System-level state keys during exploration.
func (a *Atom) AppendStateKey(buf []byte, s State) []byte {
	buf = strconv.AppendInt(buf, int64(len(s.Loc)), 10)
	buf = append(buf, ':')
	buf = append(buf, s.Loc...)
	for _, vd := range a.Vars {
		buf = append(buf, '|')
		buf = s.Vars[vd.Name].AppendText(buf)
	}
	return buf
}

// BinaryKeyWidth returns the size of the atom's fixed-width binary
// state-key record: a 4-byte interned location index plus one
// fixed-width value encoding per declared variable.
func (a *Atom) BinaryKeyWidth() int {
	return 4 + expr.BinaryWidth*len(a.Vars)
}

// AppendBinaryKey appends the fixed-width binary encoding of s — exactly
// BinaryKeyWidth bytes — and returns the extended buffer. The location is
// encoded as its interned index and variables follow in declaration
// order, so two states of the same atom get equal records iff they are
// Equal, with no separators and no per-state allocation. It is the
// building block of the exploration seen-set's arena-stored keys and
// requires a validated atom; an undeclared location is a programming
// error and panics (states produced by the semantics only ever sit on
// declared locations).
func (a *Atom) AppendBinaryKey(buf []byte, s State) []byte {
	// Small location lists resolve by linear scan: states carry the very
	// string objects declared on the atom, so the == below is almost
	// always a pointer comparison — cheaper than hashing the name, and
	// this lookup runs once per atom per explored transition.
	li, ok := -1, false
	if len(a.Locations) <= 8 {
		for i, l := range a.Locations {
			if l == s.Loc {
				li, ok = i, true
				break
			}
		}
	} else {
		li, ok = a.locIdx[s.Loc]
	}
	if !ok {
		panic(fmt.Sprintf("behavior: atom %s: binary key for undeclared location %q (atom not validated?)", a.Name, s.Loc))
	}
	buf = append(buf, byte(li), byte(li>>8), byte(li>>16), byte(li>>24))
	for _, vd := range a.Vars {
		buf = s.Vars[vd.Name].AppendBinary(buf)
	}
	return buf
}

// DecodeBinaryKey inverts AppendBinaryKey: it rebuilds the atom-local
// state from one fixed-width binary record (exactly BinaryKeyWidth
// bytes). The returned location string is the atom's own declared
// instance, so downstream pointer-fast comparisons (AppendBinaryKey's
// linear scan included) behave as if the state came from the semantics.
// Exploration's spilled frontier uses it to reload evicted states.
func (a *Atom) DecodeBinaryKey(rec []byte) (State, error) {
	if len(rec) != a.BinaryKeyWidth() {
		return State{}, fmt.Errorf("behavior: atom %s: binary key record has %d bytes, want %d", a.Name, len(rec), a.BinaryKeyWidth())
	}
	li := int(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
	if li < 0 || li >= len(a.Locations) {
		return State{}, fmt.Errorf("behavior: atom %s: binary key names location index %d of %d", a.Name, li, len(a.Locations))
	}
	vars := make(expr.MapEnv, len(a.Vars))
	off := 4
	for _, vd := range a.Vars {
		v, err := expr.DecodeBinary(rec[off : off+expr.BinaryWidth])
		if err != nil {
			return State{}, fmt.Errorf("behavior: atom %s: variable %s: %w", a.Name, vd.Name, err)
		}
		vars[vd.Name] = v
		off += expr.BinaryWidth
	}
	return State{Loc: a.Locations[li], Vars: vars}, nil
}

// Rename returns a deep copy of the atom under a new name. Ports,
// locations and variables keep their local names; only the component
// identity changes. Used when instantiating an atom type several times.
func (a *Atom) Rename(name string) *Atom {
	cp := &Atom{
		Name:        name,
		Locations:   append([]string(nil), a.Locations...),
		Initial:     a.Initial,
		Vars:        append([]VarDecl(nil), a.Vars...),
		Ports:       make([]Port, len(a.Ports)),
		Transitions: append([]Transition(nil), a.Transitions...),
		Invariants:  append([]expr.Expr(nil), a.Invariants...),
		Pos:         a.Pos,
		LocPos:      append([]Pos(nil), a.LocPos...),
	}
	for i, p := range a.Ports {
		cp.Ports[i] = Port{Name: p.Name, Vars: append([]string(nil), p.Vars...), Pos: p.Pos}
	}
	// Re-validate to rebuild the indices of the copy.
	if err := cp.Validate(); err != nil {
		// The source atom was valid, so the copy must be; a failure here
		// is a programming error in Rename itself.
		panic(fmt.Sprintf("behavior: rename of valid atom failed validation: %v", err))
	}
	return cp
}

// String renders a compact description of the atom.
func (a *Atom) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "atom %s: %d locations, %d vars, %d ports, %d transitions",
		a.Name, len(a.Locations), len(a.Vars), len(a.Ports), len(a.Transitions))
	return b.String()
}

// State is the dynamic state of an atom: a control location and a
// valuation of its variables.
type State struct {
	Loc  string
	Vars expr.MapEnv
}

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	return State{Loc: s.Loc, Vars: s.Vars.Clone()}
}

// Key returns a canonical string encoding of the state, usable as a map
// key during state-space exploration. Variables are sorted by name.
func (s State) Key() string {
	names := make([]string, 0, len(s.Vars))
	for n := range s.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Loc)
	for _, n := range names {
		b.WriteByte('|')
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(s.Vars[n].String())
	}
	return b.String()
}

// Equal reports whether two states have the same location and valuation.
func (s State) Equal(o State) bool {
	if s.Loc != o.Loc || len(s.Vars) != len(o.Vars) {
		return false
	}
	for n, v := range s.Vars {
		ov, ok := o.Vars[n]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

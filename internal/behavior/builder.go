package behavior

import (
	"fmt"

	"bip/internal/expr"
)

// Builder assembles an Atom with a fluent API. Errors are accumulated and
// reported once by Build, so model construction code stays linear.
type Builder struct {
	atom Atom
	errs []error
	// next is the source position staged by At for the next declaration;
	// consumed (and reset) by the declaration methods.
	next Pos
}

// NewBuilder starts building an atom with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{atom: Atom{Name: name}}
}

// At stages a source position for the next declaration (location,
// variable, port or transition). The DSL parser threads token positions
// through it so diagnostics can point at source; hand-built models never
// call it and stay position-free.
func (b *Builder) At(line, col int) *Builder {
	b.next = Pos{Line: line, Col: col}
	return b
}

// DeclaredAt records the source position of the atom declaration itself.
func (b *Builder) DeclaredAt(line, col int) *Builder {
	b.atom.Pos = Pos{Line: line, Col: col}
	return b
}

// take consumes the staged position.
func (b *Builder) take() Pos {
	p := b.next
	b.next = Pos{}
	return p
}

// Location declares one or more control locations. The first location
// ever declared becomes the initial location unless Initial overrides it.
func (b *Builder) Location(names ...string) *Builder {
	pos := b.take()
	for _, n := range names {
		if len(b.atom.Locations) == 0 && b.atom.Initial == "" {
			b.atom.Initial = n
		}
		b.atom.Locations = append(b.atom.Locations, n)
		b.atom.LocPos = append(b.atom.LocPos, pos)
	}
	return b
}

// Initial sets the initial location explicitly.
func (b *Builder) Initial(name string) *Builder {
	b.atom.Initial = name
	return b
}

// Int declares an integer variable with an initial value.
func (b *Builder) Int(name string, init int64) *Builder {
	b.atom.Vars = append(b.atom.Vars, VarDecl{Name: name, Init: expr.IntVal(init), Pos: b.take()})
	return b
}

// Bool declares a boolean variable with an initial value.
func (b *Builder) Bool(name string, init bool) *Builder {
	b.atom.Vars = append(b.atom.Vars, VarDecl{Name: name, Init: expr.BoolVal(init), Pos: b.take()})
	return b
}

// Port declares a port exporting the listed variables.
func (b *Builder) Port(name string, exported ...string) *Builder {
	b.atom.Ports = append(b.atom.Ports, Port{Name: name, Vars: exported, Pos: b.take()})
	return b
}

// Transition adds an unguarded transition with no action.
func (b *Builder) Transition(from, port, to string) *Builder {
	return b.TransitionG(from, port, to, nil, nil)
}

// TransitionG adds a transition with an optional guard and action (either
// may be nil).
func (b *Builder) TransitionG(from, port, to string, guard expr.Expr, action expr.Stmt) *Builder {
	b.atom.Transitions = append(b.atom.Transitions, Transition{
		From: from, To: to, Port: port, Guard: guard, Action: action, Pos: b.take(),
	})
	return b
}

// Invariant records a designer-asserted state predicate.
func (b *Builder) Invariant(e expr.Expr) *Builder {
	b.atom.Invariants = append(b.atom.Invariants, e)
	return b
}

// Build validates and returns the atom.
func (b *Builder) Build() (*Atom, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("atom %s: %v", b.atom.Name, b.errs[0])
	}
	a := b.atom // copy; the builder can be reused for variants
	a.Locations = append([]string(nil), b.atom.Locations...)
	a.LocPos = append([]Pos(nil), b.atom.LocPos...)
	a.Vars = append([]VarDecl(nil), b.atom.Vars...)
	a.Ports = append([]Port(nil), b.atom.Ports...)
	a.Transitions = append([]Transition(nil), b.atom.Transitions...)
	a.Invariants = append([]expr.Expr(nil), b.atom.Invariants...)
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// MustBuild is Build for static models known to be valid; it panics on
// error and is intended for package-level model constructors and tests.
func (b *Builder) MustBuild() *Atom {
	a, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("behavior: %v", err))
	}
	return a
}

package behavior

import (
	"strings"
	"testing"
	"testing/quick"

	"bip/internal/expr"
)

// counter builds a simple two-location counter used across the tests:
// idle --start--> busy (n := n+1), busy --done--> idle when n < max.
func counter(t *testing.T, max int64) *Atom {
	t.Helper()
	a, err := NewBuilder("counter").
		Location("idle", "busy").
		Int("n", 0).
		Port("start", "n").
		Port("done").
		TransitionG("idle", "start", "busy", expr.Lt(expr.V("n"), expr.I(max)),
			expr.Set("n", expr.Add(expr.V("n"), expr.I(1)))).
		Transition("busy", "done", "idle").
		Invariant(expr.Ge(expr.V("n"), expr.I(0))).
		Build()
	if err != nil {
		t.Fatalf("build counter: %v", err)
	}
	return a
}

func TestBuilderBasics(t *testing.T) {
	a := counter(t, 3)
	if a.Initial != "idle" {
		t.Fatalf("initial = %q, want idle (first declared)", a.Initial)
	}
	if !a.HasPort("start") || !a.HasPort("done") || a.HasPort("nope") {
		t.Fatal("HasPort misbehaves")
	}
	if !a.HasLocation("busy") || a.HasLocation("nowhere") {
		t.Fatal("HasLocation misbehaves")
	}
	if !a.HasVar("n") || a.HasVar("m") {
		t.Fatal("HasVar misbehaves")
	}
	p, ok := a.PortByName("start")
	if !ok || len(p.Vars) != 1 || p.Vars[0] != "n" {
		t.Fatalf("PortByName(start) = %+v, %v", p, ok)
	}
	if s := a.String(); !strings.Contains(s, "counter") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBuilderValidation(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Atom, error)
		want  string
	}{
		{"empty name", func() (*Atom, error) { return NewBuilder("").Location("l").Build() }, "empty name"},
		{"no locations", func() (*Atom, error) { return NewBuilder("a").Build() }, "no locations"},
		{"dup location", func() (*Atom, error) { return NewBuilder("a").Location("l", "l").Build() }, "duplicate location"},
		{"bad initial", func() (*Atom, error) { return NewBuilder("a").Location("l").Initial("x").Build() }, "initial location"},
		{"dup var", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Int("x", 0).Int("x", 1).Build()
		}, "duplicate variable"},
		{"dup port", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Port("p").Port("p").Build()
		}, "duplicate port"},
		{"port exports unknown var", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Port("p", "ghost").Build()
		}, "undeclared variable"},
		{"transition unknown source", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Port("p").Transition("x", "p", "l").Build()
		}, "unknown source"},
		{"transition unknown target", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Port("p").Transition("l", "p", "x").Build()
		}, "unknown target"},
		{"transition unknown port", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Transition("l", "p", "l").Build()
		}, "unknown port"},
		{"guard unknown var", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Port("p").
				TransitionG("l", "p", "l", expr.V("ghost"), nil).Build()
		}, "guard reads undeclared"},
		{"action unknown var", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Port("p").
				TransitionG("l", "p", "l", nil, expr.Set("ghost", expr.I(1))).Build()
		}, "action uses undeclared"},
		{"invariant unknown var", func() (*Atom, error) {
			return NewBuilder("a").Location("l").Invariant(expr.V("ghost")).Build()
		}, "invariant 0 reads undeclared"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestInitialState(t *testing.T) {
	a := counter(t, 3)
	s := a.InitialState()
	if s.Loc != "idle" {
		t.Fatalf("initial loc = %q", s.Loc)
	}
	if v, _ := s.Vars.Get("n"); !v.Equal(expr.IntVal(0)) {
		t.Fatalf("initial n = %v", v)
	}
}

func TestEnabledAndExec(t *testing.T) {
	a := counter(t, 2)
	s := a.InitialState()

	en, err := a.Enabled(s, "start")
	if err != nil || len(en) != 1 {
		t.Fatalf("Enabled(start) = %v, %v; want one transition", en, err)
	}
	if en2, _ := a.Enabled(s, "done"); len(en2) != 0 {
		t.Fatalf("done should be disabled at idle, got %v", en2)
	}

	s2, err := a.Exec(s, en[0])
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if s2.Loc != "busy" {
		t.Fatalf("loc after start = %q", s2.Loc)
	}
	if v, _ := s2.Vars.Get("n"); !v.Equal(expr.IntVal(1)) {
		t.Fatalf("n after start = %v", v)
	}
	// Original state untouched (persistent states).
	if v, _ := s.Vars.Get("n"); !v.Equal(expr.IntVal(0)) {
		t.Fatal("Exec mutated its input state")
	}

	// Run to the guard bound: after 2 starts, start must be disabled.
	s3, _ := a.Exec(s2, a.TransitionsOn("busy", "done")[0])
	s4, _ := a.Exec(s3, en[0])
	s5, _ := a.Exec(s4, a.TransitionsOn("busy", "done")[0])
	en3, _ := a.Enabled(s5, "start")
	if len(en3) != 0 {
		t.Fatalf("start should be guard-disabled at n=2, got %v", en3)
	}
}

func TestExecErrors(t *testing.T) {
	a := counter(t, 2)
	s := a.InitialState()
	if _, err := a.Exec(s, 99); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if _, err := a.Exec(s, 1); err == nil {
		t.Fatal("firing from wrong location should fail")
	}
}

func TestEnabledGuardError(t *testing.T) {
	a, err := NewBuilder("bad").
		Location("l").
		Int("x", 0).
		Port("p").
		TransitionG("l", "p", "l", expr.Gt(expr.Div(expr.I(1), expr.V("x")), expr.I(0)), nil).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := a.Enabled(a.InitialState(), "p"); err == nil {
		t.Fatal("guard with division by zero should surface an error")
	}
}

func TestNondeterministicPort(t *testing.T) {
	// Two transitions on the same port from the same location: both
	// enabled, representing internal non-determinism.
	a, err := NewBuilder("nd").
		Location("l", "a", "b").
		Port("go").
		Transition("l", "go", "a").
		Transition("l", "go", "b").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	en, err := a.Enabled(a.InitialState(), "go")
	if err != nil || len(en) != 2 {
		t.Fatalf("Enabled = %v, %v; want 2 choices", en, err)
	}
}

func TestRenameAtom(t *testing.T) {
	a := counter(t, 3)
	b := a.Rename("copy")
	if b.Name != "copy" || a.Name != "counter" {
		t.Fatal("Rename should change only the copy's name")
	}
	// Deep copy: mutating the copy's ports must not affect the source.
	b.Ports[0].Vars[0] = "zzz"
	if a.Ports[0].Vars[0] != "n" {
		t.Fatal("Rename shares port storage with the source")
	}
	if !b.HasPort("start") {
		t.Fatal("copy lost its ports index")
	}
}

func TestStateKeyAndEqual(t *testing.T) {
	s1 := State{Loc: "l", Vars: expr.MapEnv{"a": expr.IntVal(1), "b": expr.BoolVal(true)}}
	s2 := State{Loc: "l", Vars: expr.MapEnv{"b": expr.BoolVal(true), "a": expr.IntVal(1)}}
	if s1.Key() != s2.Key() {
		t.Fatalf("keys differ for equal states: %q vs %q", s1.Key(), s2.Key())
	}
	if !s1.Equal(s2) {
		t.Fatal("Equal should hold")
	}
	s3 := s1.Clone()
	_ = s3.Vars.Set("a", expr.IntVal(2))
	if s1.Equal(s3) {
		t.Fatal("Equal should fail after divergence")
	}
	if s1.Key() == s3.Key() {
		t.Fatal("keys should differ after divergence")
	}
	s4 := State{Loc: "m", Vars: s1.Vars}
	if s1.Equal(s4) {
		t.Fatal("different locations must not be equal")
	}
}

// Property: Key is injective on (location, bounded valuation) — two states
// compare Equal exactly when their keys match.
func TestQuickStateKeyInjective(t *testing.T) {
	f := func(a1, b1, a2, b2 int8, l1, l2 bool) bool {
		loc := func(b bool) string {
			if b {
				return "x"
			}
			return "y"
		}
		s1 := State{Loc: loc(l1), Vars: expr.MapEnv{"a": expr.IntVal(int64(a1)), "b": expr.IntVal(int64(b1))}}
		s2 := State{Loc: loc(l2), Vars: expr.MapEnv{"a": expr.IntVal(int64(a2)), "b": expr.IntVal(int64(b2))}}
		return s1.Equal(s2) == (s1.Key() == s2.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Exec never mutates its input state, for arbitrary increments.
func TestQuickExecPersistent(t *testing.T) {
	a, err := NewBuilder("p").
		Location("l").
		Int("x", 0).
		Port("p", "x").
		TransitionG("l", "p", "l", nil, expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	f := func(start int32) bool {
		s := State{Loc: "l", Vars: expr.MapEnv{"x": expr.IntVal(int64(start))}}
		before := s.Key()
		next, err := a.Exec(s, 0)
		if err != nil {
			return false
		}
		v, _ := next.Vars.Get("x")
		got, _ := v.Int()
		return s.Key() == before && got == int64(start)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on invalid atom")
		}
	}()
	NewBuilder("").MustBuild()
}

func TestTransitionString(t *testing.T) {
	tr := Transition{From: "a", To: "b", Port: "p", Guard: expr.Lt(expr.V("x"), expr.I(3)), Action: expr.Set("x", expr.I(0))}
	s := tr.String()
	for _, want := range []string{"a --p--> b", "when", "do"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Transition.String() = %q, missing %q", s, want)
		}
	}
}

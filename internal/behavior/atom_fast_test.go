package behavior

import (
	"testing"

	"bip/internal/expr"
)

// These tests pin the fast paths added for the incremental engines:
// EnabledView's shared slices, the compiled-action Exec, ExecInPlace's
// in-place mutation contract, and the append-based state key.

func counterAtom(t *testing.T) *Atom {
	t.Helper()
	a, err := NewBuilder("cnt").
		Location("lo", "hi").
		Int("n", 0).
		Port("up", "n").Port("down", "n").
		TransitionG("lo", "up", "hi", expr.Lt(expr.V("n"), expr.I(3)),
						expr.Set("n", expr.Add(expr.V("n"), expr.I(1)))).
		Transition("lo", "up", "lo"). // nondeterministic alternative
		TransitionG("hi", "down", "lo", nil,
			expr.Set("n", expr.Sub(expr.V("n"), expr.I(1)))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestEnabledViewMatchesEnabled(t *testing.T) {
	a := counterAtom(t)
	for _, st := range []State{
		a.InitialState(),
		{Loc: "lo", Vars: expr.MapEnv{"n": expr.IntVal(5)}},
		{Loc: "hi", Vars: expr.MapEnv{"n": expr.IntVal(1)}},
	} {
		for _, port := range []string{"up", "down"} {
			want, err1 := a.Enabled(st, port)
			got, err2 := a.EnabledView(st, port)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("err mismatch: %v vs %v", err1, err2)
			}
			if len(want) != len(got) {
				t.Fatalf("%s@%s: Enabled=%v EnabledView=%v", st.Loc, port, want, got)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s@%s: Enabled=%v EnabledView=%v", st.Loc, port, want, got)
				}
			}
		}
	}
}

func TestExecInPlaceMatchesExec(t *testing.T) {
	a := counterAtom(t)
	st := a.InitialState()
	for _, ti := range []int{0, 2} {
		if ti == 2 {
			st = State{Loc: "hi", Vars: st.Vars}
		}
		want, err := a.Exec(st.Clone(), ti)
		if err != nil {
			t.Fatal(err)
		}
		inPlace := st.Clone()
		loc, err := a.ExecInPlace(inPlace, ti)
		if err != nil {
			t.Fatal(err)
		}
		inPlace.Loc = loc
		if !want.Equal(inPlace) {
			t.Fatalf("transition %d: Exec %s/%v, ExecInPlace %s/%v", ti, want.Loc, want.Vars, inPlace.Loc, inPlace.Vars)
		}
		st = want
	}
}

// TestExecCompiledExtraVars checks that states carrying variables beyond
// the declared ones still go through the interpreter path unchanged (the
// compiled frame only handles exact layouts).
func TestExecCompiledExtraVars(t *testing.T) {
	a := counterAtom(t)
	st := State{Loc: "lo", Vars: expr.MapEnv{"n": expr.IntVal(0), "ghost": expr.IntVal(9)}}
	next, err := a.Exec(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := next.Vars.Get("n"); !v.Equal(expr.IntVal(1)) {
		t.Fatalf("n = %s, want 1", v)
	}
	if v, _ := next.Vars.Get("ghost"); !v.Equal(expr.IntVal(9)) {
		t.Fatalf("ghost = %s, want preserved 9", v)
	}
}

func TestAppendStateKeyAgreesWithEqual(t *testing.T) {
	a := counterAtom(t)
	states := []State{
		a.InitialState(),
		{Loc: "lo", Vars: expr.MapEnv{"n": expr.IntVal(1)}},
		{Loc: "hi", Vars: expr.MapEnv{"n": expr.IntVal(1)}},
		{Loc: "hi", Vars: expr.MapEnv{"n": expr.IntVal(2)}},
	}
	for i, s1 := range states {
		for j, s2 := range states {
			k1 := string(a.AppendStateKey(nil, s1))
			k2 := string(a.AppendStateKey(nil, s2))
			if (k1 == k2) != s1.Equal(s2) {
				t.Fatalf("states %d,%d: key equality %v, state equality %v", i, j, k1 == k2, s1.Equal(s2))
			}
		}
	}
}

package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	iv := IntVal(42)
	if iv.Kind() != KindInt {
		t.Fatalf("IntVal kind = %v, want int", iv.Kind())
	}
	if got, ok := iv.Int(); !ok || got != 42 {
		t.Fatalf("Int() = %d,%v want 42,true", got, ok)
	}
	if _, ok := iv.Bool(); ok {
		t.Fatal("IntVal should not report a bool payload")
	}

	bv := BoolVal(true)
	if bv.Kind() != KindBool {
		t.Fatalf("BoolVal kind = %v, want bool", bv.Kind())
	}
	if got, ok := bv.Bool(); !ok || !got {
		t.Fatalf("Bool() = %v,%v want true,true", got, ok)
	}

	var zero Value
	if zero.Kind() != KindInvalid {
		t.Fatalf("zero Value kind = %v, want invalid", zero.Kind())
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(1), true},
		{IntVal(1), IntVal(2), false},
		{BoolVal(true), BoolVal(true), true},
		{BoolVal(true), BoolVal(false), false},
		{IntVal(1), BoolVal(true), false},
		{IntVal(0), BoolVal(false), false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEval(t *testing.T) {
	env := MapEnv{"x": IntVal(10), "y": IntVal(3), "p": BoolVal(true), "q": BoolVal(false)}
	tests := []struct {
		name string
		e    Expr
		want Value
	}{
		{"lit-int", I(7), IntVal(7)},
		{"lit-bool", B(false), BoolVal(false)},
		{"var", V("x"), IntVal(10)},
		{"add", Add(V("x"), V("y")), IntVal(13)},
		{"sub", Sub(V("x"), V("y")), IntVal(7)},
		{"mul", Mul(V("x"), V("y")), IntVal(30)},
		{"div", Div(V("x"), V("y")), IntVal(3)},
		{"mod", Mod(V("x"), V("y")), IntVal(1)},
		{"neg", Neg(V("x")), IntVal(-10)},
		{"eq-true", Eq(V("x"), I(10)), BoolVal(true)},
		{"eq-false", Eq(V("x"), V("y")), BoolVal(false)},
		{"eq-mixed-kind", Eq(V("x"), V("p")), BoolVal(false)},
		{"ne", Ne(V("x"), V("y")), BoolVal(true)},
		{"lt", Lt(V("y"), V("x")), BoolVal(true)},
		{"le", Le(V("x"), V("x")), BoolVal(true)},
		{"gt", Gt(V("x"), V("y")), BoolVal(true)},
		{"ge", Ge(V("y"), V("x")), BoolVal(false)},
		{"and", And(V("p"), Not(V("q"))), BoolVal(true)},
		{"or", Or(V("q"), V("p")), BoolVal(true)},
		{"not", Not(V("p")), BoolVal(false)},
		{"cond-then", If(V("p"), I(1), I(2)), IntVal(1)},
		{"cond-else", If(V("q"), I(1), I(2)), IntVal(2)},
		{"nested", Add(Mul(V("x"), I(2)), If(V("p"), V("y"), I(0))), IntVal(23)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.e.Eval(env)
			if err != nil {
				t.Fatalf("Eval(%s) error: %v", tt.e, err)
			}
			if !got.Equal(tt.want) {
				t.Fatalf("Eval(%s) = %v, want %v", tt.e, got, tt.want)
			}
		})
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"x": IntVal(10), "p": BoolVal(true)}
	tests := []struct {
		name string
		e    Expr
		want string // substring of the error
	}{
		{"undefined", V("nope"), "undefined variable"},
		{"div-zero", Div(V("x"), I(0)), "division by zero"},
		{"mod-zero", Mod(V("x"), I(0)), "modulo by zero"},
		{"not-int", Not(V("x")), "needs bool"},
		{"neg-bool", Neg(V("p")), "needs int"},
		{"add-bool", Add(V("p"), I(1)), "needs int operands"},
		{"and-int", And(V("x"), B(true)), "needs bool operands"},
		{"and-int-rhs", And(B(true), V("x")), "needs bool operands"},
		{"cond-int", If(V("x"), I(1), I(2)), "needs bool"},
		{"lt-bool", Lt(V("p"), I(1)), "needs int operands"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.e.Eval(env)
			if err == nil {
				t.Fatalf("Eval(%s) succeeded, want error containing %q", tt.e, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Eval(%s) error = %q, want substring %q", tt.e, err, tt.want)
			}
		})
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand is erroneous (undefined variable); short-circuit
	// evaluation must not touch it.
	env := MapEnv{}
	if got, err := And(B(false), V("boom")).Eval(env); err != nil || !got.Equal(BoolVal(false)) {
		t.Fatalf("false && boom = %v, %v; want false, nil", got, err)
	}
	if got, err := Or(B(true), V("boom")).Eval(env); err != nil || !got.Equal(BoolVal(true)) {
		t.Fatalf("true || boom = %v, %v; want true, nil", got, err)
	}
}

func TestEvalBoolNilGuard(t *testing.T) {
	ok, err := EvalBool(nil, MapEnv{})
	if err != nil || !ok {
		t.Fatalf("EvalBool(nil) = %v, %v; want true, nil", ok, err)
	}
	if _, err := EvalBool(I(3), MapEnv{}); err == nil {
		t.Fatal("EvalBool(int expr) should fail")
	}
}

func TestVars(t *testing.T) {
	e := Add(V("b"), Mul(V("a"), If(V("c"), V("a"), I(0))))
	got := Vars(e)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if Vars(nil) != nil {
		t.Fatal("Vars(nil) should be nil")
	}
}

func TestStmts(t *testing.T) {
	env := MapEnv{"x": IntVal(1), "y": IntVal(0), "p": BoolVal(true)}
	prog := Do(
		Set("y", Add(V("x"), I(4))),
		When(V("p"), Set("x", Mul(V("y"), I(2))), nil),
		Repeat{Times: 3, Body: Set("x", Add(V("x"), I(1)))},
	)
	if err := prog.Exec(env); err != nil {
		t.Fatalf("Exec error: %v", err)
	}
	if v, _ := env.Get("y"); !v.Equal(IntVal(5)) {
		t.Fatalf("y = %v, want 5", v)
	}
	if v, _ := env.Get("x"); !v.Equal(IntVal(13)) {
		t.Fatalf("x = %v, want 13 (10 then +3)", v)
	}
}

func TestStmtElseBranch(t *testing.T) {
	env := MapEnv{"x": IntVal(1)}
	s := When(B(false), Set("x", I(10)), Set("x", I(20)))
	if err := s.Exec(env); err != nil {
		t.Fatalf("Exec error: %v", err)
	}
	if v, _ := env.Get("x"); !v.Equal(IntVal(20)) {
		t.Fatalf("x = %v, want 20", v)
	}
	// Nil branches are no-ops.
	if err := When(B(true), nil, nil).Exec(env); err != nil {
		t.Fatalf("nil-then exec: %v", err)
	}
	if err := When(B(false), nil, nil).Exec(env); err != nil {
		t.Fatalf("nil-else exec: %v", err)
	}
}

func TestStmtErrorsPropagate(t *testing.T) {
	env := MapEnv{}
	if err := Set("x", V("missing")).Exec(env); err == nil {
		t.Fatal("assignment of undefined variable should fail")
	}
	if err := Do(Set("a", I(1)), Set("b", V("zzz"))).Exec(env); err == nil {
		t.Fatal("sequence should propagate failure")
	}
	if err := (Repeat{Times: 2, Body: Set("b", V("zzz"))}).Exec(env); err == nil {
		t.Fatal("repeat should propagate failure")
	}
	if err := When(V("zzz"), nil, nil).Exec(env); err == nil {
		t.Fatal("if with bad condition should fail")
	}
}

func TestReadsWrites(t *testing.T) {
	s := Do(
		Set("a", Add(V("b"), V("c"))),
		When(V("d"), Set("e", I(1)), Set("a", V("f"))),
	)
	reads := Reads(s)
	writes := Writes(s)
	wantReads := []string{"b", "c", "d", "f"}
	wantWrites := []string{"a", "e"}
	if strings.Join(reads, ",") != strings.Join(wantReads, ",") {
		t.Fatalf("Reads = %v, want %v", reads, wantReads)
	}
	if strings.Join(writes, ",") != strings.Join(wantWrites, ",") {
		t.Fatalf("Writes = %v, want %v", writes, wantWrites)
	}
}

func TestRename(t *testing.T) {
	f := func(s string) string { return "C." + s }
	e := Rename(Add(V("x"), If(V("p"), V("y"), I(1))), f)
	want := []string{"C.p", "C.x", "C.y"}
	got := Vars(e)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("renamed vars = %v, want %v", got, want)
	}

	s := RenameStmt(Do(Set("x", V("y")), Repeat{Times: 2, Body: Set("z", I(0))}), f)
	if w := Writes(s); strings.Join(w, ",") != "C.x,C.z" {
		t.Fatalf("renamed writes = %v", w)
	}
	if r := Reads(s); strings.Join(r, ",") != "C.y" {
		t.Fatalf("renamed reads = %v", r)
	}
}

func TestAndAll(t *testing.T) {
	if AndAll(nil, nil) != nil {
		t.Fatal("AndAll of nils should be nil")
	}
	env := MapEnv{"a": BoolVal(true), "b": BoolVal(false)}
	g := AndAll(nil, V("a"), nil, V("b"))
	ok, err := EvalBool(g, env)
	if err != nil || ok {
		t.Fatalf("AndAll(a,b) = %v, %v; want false", ok, err)
	}
}

// Property: arithmetic on the expression language agrees with Go arithmetic
// for every pair of operands (wrap-around semantics included).
func TestQuickArithAgreesWithGo(t *testing.T) {
	f := func(a, b int64) bool {
		env := MapEnv{"a": IntVal(a), "b": IntVal(b)}
		checks := []struct {
			e    Expr
			want int64
		}{
			{Add(V("a"), V("b")), a + b},
			{Sub(V("a"), V("b")), a - b},
			{Mul(V("a"), V("b")), a * b},
		}
		for _, c := range checks {
			v, err := c.e.Eval(env)
			if err != nil {
				return false
			}
			if got, _ := v.Int(); got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison operators form a total order consistent with Go.
func TestQuickComparisons(t *testing.T) {
	f := func(a, b int64) bool {
		env := MapEnv{"a": IntVal(a), "b": IntVal(b)}
		lt, _ := And(Lt(V("a"), V("b")), B(true)).Eval(env)
		le, _ := Le(V("a"), V("b")).Eval(env)
		gt, _ := Gt(V("a"), V("b")).Eval(env)
		ge, _ := Ge(V("a"), V("b")).Eval(env)
		eq, _ := Eq(V("a"), V("b")).Eval(env)
		bLt, _ := lt.Bool()
		bLe, _ := le.Bool()
		bGt, _ := gt.Bool()
		bGe, _ := ge.Bool()
		bEq, _ := eq.Bool()
		if bLt != (a < b) || bLe != (a <= b) || bGt != (a > b) || bGe != (a >= b) || bEq != (a == b) {
			return false
		}
		// Trichotomy: exactly one of <, ==, > holds.
		n := 0
		for _, v := range []bool{bLt, bEq, bGt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Rename with the identity function preserves evaluation.
func TestQuickRenameIdentity(t *testing.T) {
	f := func(a, b int64) bool {
		e := Add(Mul(V("x"), I(a%1000)), If(Gt(V("x"), V("y")), V("y"), I(b%1000)))
		env := MapEnv{"x": IntVal(a), "y": IntVal(b)}
		r := Rename(e, func(s string) string { return s })
		v1, err1 := e.Eval(env)
		v2, err2 := r.Eval(env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || v1.Equal(v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	e := And(Lt(V("x"), I(3)), Not(V("p")))
	got := e.String()
	if !strings.Contains(got, "x < 3") || !strings.Contains(got, "!") {
		t.Fatalf("String() = %q, want x < 3 and ! present", got)
	}
	s := Do(Set("x", I(1)), Set("y", V("x")))
	if want := "x := 1; y := x"; s.String() != want {
		t.Fatalf("stmt String() = %q, want %q", s.String(), want)
	}
	r := Repeat{Times: 12, Body: Set("x", I(0))}
	if !strings.Contains(r.String(), "repeat 12") {
		t.Fatalf("repeat String() = %q", r.String())
	}
	if itoa(-45) != "-45" || itoa(0) != "0" {
		t.Fatalf("itoa broken: %q %q", itoa(-45), itoa(0))
	}
}

func TestMapEnvClone(t *testing.T) {
	m := MapEnv{"x": IntVal(1)}
	c := m.Clone()
	_ = c.Set("x", IntVal(2))
	if v, _ := m.Get("x"); !v.Equal(IntVal(1)) {
		t.Fatal("Clone must not share storage")
	}
}

// Package expr provides the expression and action language used by BIP
// component behaviour: typed values (integers and booleans), environments,
// side-effect-free expressions for guards, and statements for transition
// actions and interaction data transfer.
//
// The language is deliberately small: it is the data substrate of the
// single host component language advocated by the paper, not a general
// purpose programming language.
package expr

import (
	"fmt"
	"strconv"
)

// Kind identifies the runtime type of a Value.
type Kind int

// Value kinds. KindInvalid is the zero value so that an uninitialized
// Value is detectably broken rather than silently an integer.
const (
	KindInvalid Kind = iota
	KindInt
	KindBool
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is an immutable runtime value: either an integer or a boolean.
type Value struct {
	kind Kind
	i    int64
	b    bool
}

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{kind: KindInt, i: i} }

// BoolVal returns a boolean value.
func BoolVal(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload. It reports false if the value is not an
// integer.
func (v Value) Int() (int64, bool) { return v.i, v.kind == KindInt }

// Bool returns the boolean payload. It reports false if the value is not a
// boolean.
func (v Value) Bool() (bool, bool) { return v.b, v.kind == KindBool }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindBool:
		return v.b == o.b
	default:
		return true
	}
}

// String renders the value as source text.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// AppendText appends the value's source-text rendering to buf and
// returns the extended buffer. It matches String but avoids the
// intermediate allocation; state-key construction is built on it.
func (v Value) AppendText(buf []byte) []byte {
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(buf, v.i, 10)
	case KindBool:
		return strconv.AppendBool(buf, v.b)
	default:
		return append(buf, "<invalid>"...)
	}
}

// BinaryWidth is the size of a Value's fixed-width binary encoding
// (AppendBinary): one tag byte plus an 8-byte payload.
const BinaryWidth = 9

// AppendBinary appends a fixed-width canonical encoding of the value —
// exactly BinaryWidth bytes — and returns the extended buffer. Two
// values get equal encodings iff they are Equal, so concatenations of
// encodings in a fixed order form collision-free, fixed-width state
// keys; exploration's sharded seen-set stores them in flat arenas.
func (v Value) AppendBinary(buf []byte) []byte {
	var tag byte
	var p uint64
	switch v.kind {
	case KindInt:
		tag, p = 1, uint64(v.i)
	case KindBool:
		tag = 2
		if v.b {
			tag = 3
		}
	}
	return append(buf, tag,
		byte(p), byte(p>>8), byte(p>>16), byte(p>>24),
		byte(p>>32), byte(p>>40), byte(p>>48), byte(p>>56))
}

// DecodeBinary inverts AppendBinary: it decodes one fixed-width value
// record (exactly BinaryWidth bytes). Exploration's spilled frontier
// uses it to rebuild states from their on-disk binary keys.
func DecodeBinary(b []byte) (Value, error) {
	if len(b) != BinaryWidth {
		return Value{}, fmt.Errorf("expr: binary value record has %d bytes, want %d", len(b), BinaryWidth)
	}
	p := uint64(b[1]) | uint64(b[2])<<8 | uint64(b[3])<<16 | uint64(b[4])<<24 |
		uint64(b[5])<<32 | uint64(b[6])<<40 | uint64(b[7])<<48 | uint64(b[8])<<56
	switch b[0] {
	case 1:
		return IntVal(int64(p)), nil
	case 2:
		return BoolVal(false), nil
	case 3:
		return BoolVal(true), nil
	default:
		return Value{}, fmt.Errorf("expr: binary value record has unknown tag %d", b[0])
	}
}

// Env is the variable store expressions evaluate against.
type Env interface {
	// Get returns the value bound to name, reporting whether it exists.
	Get(name string) (Value, bool)
	// Set rebinds name. Implementations may reject unknown names or
	// kind-changing assignments.
	Set(name string, v Value) error
}

// MapEnv is a simple map-backed Env. Set accepts any name and allows kind
// changes; stricter stores are implemented by the behaviour package.
type MapEnv map[string]Value

var _ Env = MapEnv(nil)

// Get implements Env.
func (m MapEnv) Get(name string) (Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Set implements Env.
func (m MapEnv) Set(name string, v Value) error {
	m[name] = v
	return nil
}

// Clone returns a deep copy of the environment.
func (m MapEnv) Clone() MapEnv {
	out := make(MapEnv, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// EvalError describes a runtime evaluation failure with its source
// expression or statement rendered as text.
type EvalError struct {
	Where string // source text of the failing node
	Msg   string
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("eval %s: %s", e.Where, e.Msg)
}

func evalErr(where fmt.Stringer, format string, args ...any) error {
	return &EvalError{Where: where.String(), Msg: fmt.Sprintf(format, args...)}
}

package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a side-effect-free expression over an Env.
type Expr interface {
	// Eval computes the expression value in env.
	Eval(env Env) (Value, error)
	// String renders the expression as source text.
	String() string
	// addVars accumulates free variable names.
	addVars(set map[string]bool)
}

// Op is a unary or binary operator.
type Op int

// Operators. Arithmetic operators apply to integers; comparison operators
// produce booleans; logic operators apply to booleans.
const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||", OpNot: "!", OpNeg: "-",
}

// String returns the operator's source text.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "<invalid-op>"
}

// Lit is a literal value.
type Lit struct{ Val Value }

// Var references a variable by name. Interaction-level expressions use
// qualified names of the form "component.variable".
type Var struct{ Name string }

// Unary applies OpNot or OpNeg to X.
type Unary struct {
	Op Op
	X  Expr
}

// Binary applies a binary operator to X and Y. OpAnd and OpOr
// short-circuit.
type Binary struct {
	Op   Op
	X, Y Expr
}

// Cond is a conditional expression: If ? Then : Else.
type Cond struct {
	If, Then, Else Expr
}

var (
	_ Expr = Lit{}
	_ Expr = Var{}
	_ Expr = Unary{}
	_ Expr = Binary{}
	_ Expr = Cond{}
)

// Convenience constructors. They keep model-building code compact.

// I returns an integer literal.
func I(i int64) Expr { return Lit{Val: IntVal(i)} }

// B returns a boolean literal.
func B(b bool) Expr { return Lit{Val: BoolVal(b)} }

// True is the constant true guard.
var True Expr = Lit{Val: BoolVal(true)}

// V returns a variable reference.
func V(name string) Expr { return Var{Name: name} }

// Add returns x + y.
func Add(x, y Expr) Expr { return Binary{Op: OpAdd, X: x, Y: y} }

// Sub returns x - y.
func Sub(x, y Expr) Expr { return Binary{Op: OpSub, X: x, Y: y} }

// Mul returns x * y.
func Mul(x, y Expr) Expr { return Binary{Op: OpMul, X: x, Y: y} }

// Div returns x / y.
func Div(x, y Expr) Expr { return Binary{Op: OpDiv, X: x, Y: y} }

// Mod returns x % y.
func Mod(x, y Expr) Expr { return Binary{Op: OpMod, X: x, Y: y} }

// Eq returns x == y.
func Eq(x, y Expr) Expr { return Binary{Op: OpEq, X: x, Y: y} }

// Ne returns x != y.
func Ne(x, y Expr) Expr { return Binary{Op: OpNe, X: x, Y: y} }

// Lt returns x < y.
func Lt(x, y Expr) Expr { return Binary{Op: OpLt, X: x, Y: y} }

// Le returns x <= y.
func Le(x, y Expr) Expr { return Binary{Op: OpLe, X: x, Y: y} }

// Gt returns x > y.
func Gt(x, y Expr) Expr { return Binary{Op: OpGt, X: x, Y: y} }

// Ge returns x >= y.
func Ge(x, y Expr) Expr { return Binary{Op: OpGe, X: x, Y: y} }

// And returns x && y.
func And(x, y Expr) Expr { return Binary{Op: OpAnd, X: x, Y: y} }

// Or returns x || y.
func Or(x, y Expr) Expr { return Binary{Op: OpOr, X: x, Y: y} }

// Not returns !x.
func Not(x Expr) Expr { return Unary{Op: OpNot, X: x} }

// Neg returns -x.
func Neg(x Expr) Expr { return Unary{Op: OpNeg, X: x} }

// If returns the conditional expression cond ? then : els.
func If(cond, then, els Expr) Expr { return Cond{If: cond, Then: then, Else: els} }

// Eval implements Expr.
func (e Lit) Eval(Env) (Value, error) { return e.Val, nil }

// String implements Expr.
func (e Lit) String() string { return e.Val.String() }

func (e Lit) addVars(map[string]bool) {}

// Eval implements Expr.
func (e Var) Eval(env Env) (Value, error) {
	v, ok := env.Get(e.Name)
	if !ok {
		return Value{}, evalErr(e, "undefined variable %q", e.Name)
	}
	return v, nil
}

// String implements Expr.
func (e Var) String() string { return e.Name }

func (e Var) addVars(set map[string]bool) { set[e.Name] = true }

// Eval implements Expr.
func (e Unary) Eval(env Env) (Value, error) {
	x, err := e.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case OpNot:
		b, ok := x.Bool()
		if !ok {
			return Value{}, evalErr(e, "operator ! needs bool, got %s", x.Kind())
		}
		return BoolVal(!b), nil
	case OpNeg:
		i, ok := x.Int()
		if !ok {
			return Value{}, evalErr(e, "operator - needs int, got %s", x.Kind())
		}
		return IntVal(-i), nil
	default:
		return Value{}, evalErr(e, "invalid unary operator %v", e.Op)
	}
}

// String implements Expr.
func (e Unary) String() string { return e.Op.String() + parens(e.X) }

func (e Unary) addVars(set map[string]bool) { e.X.addVars(set) }

// Eval implements Expr.
func (e Binary) Eval(env Env) (Value, error) {
	x, err := e.X.Eval(env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logic operators.
	if e.Op == OpAnd || e.Op == OpOr {
		xb, ok := x.Bool()
		if !ok {
			return Value{}, evalErr(e, "operator %v needs bool operands, got %s", e.Op, x.Kind())
		}
		if e.Op == OpAnd && !xb {
			return BoolVal(false), nil
		}
		if e.Op == OpOr && xb {
			return BoolVal(true), nil
		}
		y, err := e.Y.Eval(env)
		if err != nil {
			return Value{}, err
		}
		yb, ok := y.Bool()
		if !ok {
			return Value{}, evalErr(e, "operator %v needs bool operands, got %s", e.Op, y.Kind())
		}
		return BoolVal(yb), nil
	}

	y, err := e.Y.Eval(env)
	if err != nil {
		return Value{}, err
	}

	switch e.Op {
	case OpEq:
		return BoolVal(x.Equal(y)), nil
	case OpNe:
		return BoolVal(!x.Equal(y)), nil
	}

	xi, xok := x.Int()
	yi, yok := y.Int()
	if !xok || !yok {
		return Value{}, evalErr(e, "operator %v needs int operands, got %s and %s", e.Op, x.Kind(), y.Kind())
	}
	switch e.Op {
	case OpAdd:
		return IntVal(xi + yi), nil
	case OpSub:
		return IntVal(xi - yi), nil
	case OpMul:
		return IntVal(xi * yi), nil
	case OpDiv:
		if yi == 0 {
			return Value{}, evalErr(e, "division by zero")
		}
		return IntVal(xi / yi), nil
	case OpMod:
		if yi == 0 {
			return Value{}, evalErr(e, "modulo by zero")
		}
		return IntVal(xi % yi), nil
	case OpLt:
		return BoolVal(xi < yi), nil
	case OpLe:
		return BoolVal(xi <= yi), nil
	case OpGt:
		return BoolVal(xi > yi), nil
	case OpGe:
		return BoolVal(xi >= yi), nil
	default:
		return Value{}, evalErr(e, "invalid binary operator %v", e.Op)
	}
}

// String implements Expr.
func (e Binary) String() string {
	return parens(e.X) + " " + e.Op.String() + " " + parens(e.Y)
}

func (e Binary) addVars(set map[string]bool) {
	e.X.addVars(set)
	e.Y.addVars(set)
}

// Eval implements Expr.
func (e Cond) Eval(env Env) (Value, error) {
	c, err := e.If.Eval(env)
	if err != nil {
		return Value{}, err
	}
	b, ok := c.Bool()
	if !ok {
		return Value{}, evalErr(e, "condition needs bool, got %s", c.Kind())
	}
	if b {
		return e.Then.Eval(env)
	}
	return e.Else.Eval(env)
}

// String implements Expr.
func (e Cond) String() string {
	return parens(e.If) + " ? " + parens(e.Then) + " : " + parens(e.Else)
}

func (e Cond) addVars(set map[string]bool) {
	e.If.addVars(set)
	e.Then.addVars(set)
	e.Else.addVars(set)
}

func parens(e Expr) string {
	switch e.(type) {
	case Lit, Var:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// Vars returns the sorted free variable names of an expression. A nil
// expression has no variables.
func Vars(e Expr) []string {
	if e == nil {
		return nil
	}
	set := make(map[string]bool)
	e.addVars(set)
	return sortedKeys(set)
}

// EvalBool evaluates e as a boolean guard. A nil expression is the
// constant true guard.
func EvalBool(e Expr, env Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	b, ok := v.Bool()
	if !ok {
		return false, fmt.Errorf("guard %s: needs bool, got %s", e, v.Kind())
	}
	return b, nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AndAll conjoins a list of guards, treating nil guards as true. It
// returns nil when every guard is nil.
func AndAll(es ...Expr) Expr {
	var acc Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if acc == nil {
			acc = e
		} else {
			acc = And(acc, e)
		}
	}
	return acc
}

// Rename returns a copy of e with variables renamed through f. It is used
// when flattening hierarchical components and when refining interactions,
// where variable scopes get re-qualified.
func Rename(e Expr, f func(string) string) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case Lit:
		return t
	case Var:
		return Var{Name: f(t.Name)}
	case Unary:
		return Unary{Op: t.Op, X: Rename(t.X, f)}
	case Binary:
		return Binary{Op: t.Op, X: Rename(t.X, f), Y: Rename(t.Y, f)}
	case Cond:
		return Cond{If: Rename(t.If, f), Then: Rename(t.Then, f), Else: Rename(t.Else, f)}
	default:
		// Unknown node types cannot be renamed; return as-is so the
		// caller's validation catches the unexpected shape.
		return e
	}
}

// JoinNames renders a list of strings separated by commas; shared helper
// for diagnostics in this package and its dependents.
func JoinNames(names []string) string { return strings.Join(names, ", ") }

package expr

import (
	"math/rand"
	"strings"
	"testing"
)

func mustLayout(t *testing.T, names ...string) *Layout {
	t.Helper()
	l, err := NewLayout(names)
	if err != nil {
		t.Fatalf("NewLayout(%v): %v", names, err)
	}
	return l
}

func TestLayout(t *testing.T) {
	l := mustLayout(t, "x", "y")
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if i, ok := l.Slot("y"); !ok || i != 1 {
		t.Fatalf("Slot(y) = %d,%v", i, ok)
	}
	if _, ok := l.Slot("z"); ok {
		t.Fatal("Slot(z) should not exist")
	}
	if _, err := NewLayout([]string{"a", "a"}); err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}

func TestCompileExprUnknownVar(t *testing.T) {
	l := mustLayout(t, "x")
	if _, err := CompileExpr(V("nope"), l); err == nil {
		t.Fatal("compiling an unknown variable should fail")
	}
	if _, err := CompileStmt(Set("nope", I(1)), l); err == nil {
		t.Fatal("compiling an assignment to an unknown variable should fail")
	}
}

// frameOf builds the frame for env in layout order.
func frameOf(l *Layout, env MapEnv) []Value {
	vals := make([]Value, l.Len())
	for i, n := range l.Names() {
		vals[i] = env[n]
	}
	return vals
}

// randExpr builds a random expression over int vars x,y and bool vars
// p,q, loosely typed so that runtime type errors are also exercised.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return I(int64(rng.Intn(7) - 3))
		case 1:
			return B(rng.Intn(2) == 0)
		case 2:
			return V("x")
		case 3:
			return V("y")
		default:
			return V("p")
		}
	}
	switch rng.Intn(10) {
	case 0:
		return Not(randExpr(rng, depth-1))
	case 1:
		return Neg(randExpr(rng, depth-1))
	case 2:
		return If(randExpr(rng, depth-1), randExpr(rng, depth-1), randExpr(rng, depth-1))
	default:
		ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr}
		return Binary{Op: ops[rng.Intn(len(ops))], X: randExpr(rng, depth-1), Y: randExpr(rng, depth-1)}
	}
}

func randStmt(rng *rand.Rand, depth int) Stmt {
	if depth <= 0 {
		name := "x"
		if rng.Intn(2) == 0 {
			name = "y"
		}
		return Set(name, randExpr(rng, 1))
	}
	switch rng.Intn(4) {
	case 0:
		return Do(randStmt(rng, depth-1), randStmt(rng, depth-1))
	case 1:
		return When(randExpr(rng, 1), randStmt(rng, depth-1), randStmt(rng, depth-1))
	case 2:
		return Repeat{Times: rng.Intn(4), Body: randStmt(rng, depth-1)}
	default:
		return Set("x", randExpr(rng, depth))
	}
}

// TestCompiledAgreesWithInterpreter is the compiler's semantic oracle:
// on random expressions and statements, compiled execution over a frame
// must produce exactly the interpreter's results over the equivalent
// MapEnv — same values, same final stores, and errors on the same inputs.
func TestCompiledAgreesWithInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := mustLayout(t, "x", "y", "p", "q")
	for i := 0; i < 3000; i++ {
		env := MapEnv{
			"x": IntVal(int64(rng.Intn(9) - 4)),
			"y": IntVal(int64(rng.Intn(9) - 4)),
			"p": BoolVal(rng.Intn(2) == 0),
			"q": BoolVal(rng.Intn(2) == 0),
		}
		e := randExpr(rng, rng.Intn(4))
		ce, err := CompileExpr(e, l)
		if err != nil {
			t.Fatalf("CompileExpr(%s): %v", e, err)
		}
		wantV, wantErr := e.Eval(env)
		gotV, gotErr := ce(frameOf(l, env))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("expr %s: interpreter err=%v, compiled err=%v", e, wantErr, gotErr)
		}
		if wantErr == nil && !wantV.Equal(gotV) {
			t.Fatalf("expr %s: interpreter %s, compiled %s", e, wantV, gotV)
		}

		s := randStmt(rng, rng.Intn(3))
		cs, err := CompileStmt(s, l)
		if err != nil {
			t.Fatalf("CompileStmt(%s): %v", s, err)
		}
		ienv := env.Clone()
		frame := frameOf(l, env)
		serr := s.Exec(ienv)
		cerr := cs(frame)
		if (serr == nil) != (cerr == nil) {
			t.Fatalf("stmt %s: interpreter err=%v, compiled err=%v", s, serr, cerr)
		}
		if serr == nil {
			for si, n := range l.Names() {
				if !ienv[n].Equal(frame[si]) {
					t.Fatalf("stmt %s: var %s: interpreter %s, compiled %s", s, n, ienv[n], frame[si])
				}
			}
		}
	}
}

func TestCompileBoolNilGuard(t *testing.T) {
	l := mustLayout(t, "x")
	g, err := CompileBool(nil, l)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g([]Value{IntVal(0)})
	if err != nil || !ok {
		t.Fatalf("nil guard = %v,%v; want true,nil", ok, err)
	}
	bad, err := CompileBool(Add(V("x"), I(1)), l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad([]Value{IntVal(0)}); err == nil || !strings.Contains(err.Error(), "bool") {
		t.Fatalf("int-valued guard error = %v, want bool type error", err)
	}
}

func TestCompiledRepeat(t *testing.T) {
	l := mustLayout(t, "x")
	cs, err := CompileStmt(Repeat{Times: 1000, Body: Set("x", Add(V("x"), I(1)))}, l)
	if err != nil {
		t.Fatal(err)
	}
	frame := []Value{IntVal(0)}
	if err := cs(frame); err != nil {
		t.Fatal(err)
	}
	if got, _ := frame[0].Int(); got != 1000 {
		t.Fatalf("x = %d, want 1000", got)
	}
}

func TestValueAppendText(t *testing.T) {
	for _, v := range []Value{IntVal(-42), IntVal(0), BoolVal(true), BoolVal(false), {}} {
		if got := string(v.AppendText(nil)); got != v.String() {
			t.Fatalf("AppendText = %q, String = %q", got, v.String())
		}
	}
}

func BenchmarkInterpretedRepeat(b *testing.B) {
	s := Repeat{Times: 1000, Body: Set("x", Add(V("x"), I(1)))}
	env := MapEnv{"x": IntVal(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Exec(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledRepeat(b *testing.B) {
	l, _ := NewLayout([]string{"x"})
	cs, err := CompileStmt(Repeat{Times: 1000, Body: Set("x", Add(V("x"), I(1)))}, l)
	if err != nil {
		b.Fatal(err)
	}
	frame := []Value{IntVal(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cs(frame); err != nil {
			b.Fatal(err)
		}
	}
}

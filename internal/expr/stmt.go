package expr

import "strings"

// Stmt is a statement executed against an Env: transition actions and
// interaction data transfer are statements.
type Stmt interface {
	// Exec runs the statement, mutating env.
	Exec(env Env) error
	// String renders the statement as source text.
	String() string
	// addReads/addWrites accumulate the variables read and written.
	addReads(set map[string]bool)
	addWrites(set map[string]bool)
}

// Assign binds the value of Rhs to variable Name.
type Assign struct {
	Name string
	Rhs  Expr
}

// Seq executes statements in order.
type Seq []Stmt

// IfStmt executes Then when Cond holds, otherwise Else (which may be nil).
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// Repeat executes Body a fixed number of times. It exists to model
// compute-heavy transition actions in engine benchmarks (the "quantum of
// computation" a component performs in a step).
type Repeat struct {
	Times int
	Body  Stmt
}

var (
	_ Stmt = Assign{}
	_ Stmt = Seq(nil)
	_ Stmt = IfStmt{}
	_ Stmt = Repeat{}
)

// Set returns the assignment name := rhs.
func Set(name string, rhs Expr) Stmt { return Assign{Name: name, Rhs: rhs} }

// Do sequences statements, skipping nils.
func Do(stmts ...Stmt) Stmt {
	out := make(Seq, 0, len(stmts))
	for _, s := range stmts {
		if s != nil {
			out = append(out, s)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// When returns the conditional statement if cond { then } else { els }.
func When(cond Expr, then, els Stmt) Stmt { return IfStmt{Cond: cond, Then: then, Else: els} }

// Exec implements Stmt.
func (s Assign) Exec(env Env) error {
	v, err := s.Rhs.Eval(env)
	if err != nil {
		return err
	}
	return env.Set(s.Name, v)
}

// String implements Stmt.
func (s Assign) String() string { return s.Name + " := " + s.Rhs.String() }

func (s Assign) addReads(set map[string]bool)  { s.Rhs.addVars(set) }
func (s Assign) addWrites(set map[string]bool) { set[s.Name] = true }

// Exec implements Stmt.
func (s Seq) Exec(env Env) error {
	for _, st := range s {
		if err := st.Exec(env); err != nil {
			return err
		}
	}
	return nil
}

// String implements Stmt.
func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, st := range s {
		parts[i] = st.String()
	}
	return strings.Join(parts, "; ")
}

func (s Seq) addReads(set map[string]bool) {
	for _, st := range s {
		st.addReads(set)
	}
}

func (s Seq) addWrites(set map[string]bool) {
	for _, st := range s {
		st.addWrites(set)
	}
}

// Exec implements Stmt.
func (s IfStmt) Exec(env Env) error {
	b, err := EvalBool(s.Cond, env)
	if err != nil {
		return err
	}
	if b {
		if s.Then != nil {
			return s.Then.Exec(env)
		}
		return nil
	}
	if s.Else != nil {
		return s.Else.Exec(env)
	}
	return nil
}

// String implements Stmt.
func (s IfStmt) String() string {
	out := "if " + s.Cond.String() + " { "
	if s.Then != nil {
		out += s.Then.String()
	}
	out += " }"
	if s.Else != nil {
		out += " else { " + s.Else.String() + " }"
	}
	return out
}

func (s IfStmt) addReads(set map[string]bool) {
	s.Cond.addVars(set)
	if s.Then != nil {
		s.Then.addReads(set)
	}
	if s.Else != nil {
		s.Else.addReads(set)
	}
}

func (s IfStmt) addWrites(set map[string]bool) {
	if s.Then != nil {
		s.Then.addWrites(set)
	}
	if s.Else != nil {
		s.Else.addWrites(set)
	}
}

// Exec implements Stmt.
func (s Repeat) Exec(env Env) error {
	for i := 0; i < s.Times; i++ {
		if err := s.Body.Exec(env); err != nil {
			return err
		}
	}
	return nil
}

// String implements Stmt.
func (s Repeat) String() string {
	return "repeat " + itoa(s.Times) + " { " + s.Body.String() + " }"
}

func (s Repeat) addReads(set map[string]bool)  { s.Body.addReads(set) }
func (s Repeat) addWrites(set map[string]bool) { s.Body.addWrites(set) }

// Reads returns the sorted variable names a statement reads. A nil
// statement reads nothing.
func Reads(s Stmt) []string {
	if s == nil {
		return nil
	}
	set := make(map[string]bool)
	s.addReads(set)
	return sortedKeys(set)
}

// Writes returns the sorted variable names a statement writes. A nil
// statement writes nothing.
func Writes(s Stmt) []string {
	if s == nil {
		return nil
	}
	set := make(map[string]bool)
	s.addWrites(set)
	return sortedKeys(set)
}

// RenameStmt returns a copy of s with every variable (read and written)
// renamed through f.
func RenameStmt(s Stmt, f func(string) string) Stmt {
	switch t := s.(type) {
	case nil:
		return nil
	case Assign:
		return Assign{Name: f(t.Name), Rhs: Rename(t.Rhs, f)}
	case Seq:
		out := make(Seq, len(t))
		for i, st := range t {
			out[i] = RenameStmt(st, f)
		}
		return out
	case IfStmt:
		return IfStmt{Cond: Rename(t.Cond, f), Then: RenameStmt(t.Then, f), Else: RenameStmt(t.Else, f)}
	case Repeat:
		return Repeat{Times: t.Times, Body: RenameStmt(t.Body, f)}
	default:
		return s
	}
}

func itoa(i int) string {
	// strconv would pull an import into an otherwise fmt-free file; this
	// tiny helper keeps the statement printer allocation-light.
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

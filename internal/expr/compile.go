package expr

import "fmt"

// This file implements slot compilation: expressions and statements are
// translated once, against a fixed variable Layout, into closures that
// operate on a flat []Value frame instead of a name-keyed Env. Hot paths
// (transition guards and actions fired millions of times by the engines)
// pay a slice index per variable access instead of a string hash per map
// operation. The interpreted Eval/Exec paths remain the reference
// semantics; compiled code must agree with them exactly, which
// TestCompiledAgreesWithInterpreter checks exhaustively.

// Layout assigns a frame slot to each variable name. It is immutable
// after construction and safe for concurrent use.
type Layout struct {
	names []string
	idx   map[string]int
}

// NewLayout builds a layout over the given names in order. Duplicate
// names are rejected.
func NewLayout(names []string) (*Layout, error) {
	l := &Layout{
		names: append([]string(nil), names...),
		idx:   make(map[string]int, len(names)),
	}
	for i, n := range l.names {
		if _, dup := l.idx[n]; dup {
			return nil, fmt.Errorf("layout: duplicate variable %q", n)
		}
		l.idx[n] = i
	}
	return l, nil
}

// Slot returns the frame index of name.
func (l *Layout) Slot(name string) (int, bool) {
	i, ok := l.idx[name]
	return i, ok
}

// Len returns the frame size.
func (l *Layout) Len() int { return len(l.names) }

// Names returns the variable names in slot order. The caller must not
// mutate the result.
func (l *Layout) Names() []string { return l.names }

// CompiledExpr evaluates an expression over a frame of values laid out by
// the Layout it was compiled against.
type CompiledExpr func(vals []Value) (Value, error)

// CompiledStmt executes a statement over a frame, mutating it in place.
type CompiledStmt func(vals []Value) error

// CompiledBool evaluates a guard over a frame.
type CompiledBool func(vals []Value) (bool, error)

// CompileExpr translates e into a closure over l's frame. Every free
// variable of e must have a slot in l.
func CompileExpr(e Expr, l *Layout) (CompiledExpr, error) {
	switch t := e.(type) {
	case Lit:
		v := t.Val
		return func([]Value) (Value, error) { return v, nil }, nil
	case Var:
		slot, ok := l.Slot(t.Name)
		if !ok {
			return nil, fmt.Errorf("compile %s: variable %q has no slot", e, t.Name)
		}
		return func(vals []Value) (Value, error) { return vals[slot], nil }, nil
	case Unary:
		return compileUnary(t, l)
	case Binary:
		return compileBinary(t, l)
	case Cond:
		cif, err := CompileExpr(t.If, l)
		if err != nil {
			return nil, err
		}
		cthen, err := CompileExpr(t.Then, l)
		if err != nil {
			return nil, err
		}
		celse, err := CompileExpr(t.Else, l)
		if err != nil {
			return nil, err
		}
		src := t
		return func(vals []Value) (Value, error) {
			c, err := cif(vals)
			if err != nil {
				return Value{}, err
			}
			b, ok := c.Bool()
			if !ok {
				return Value{}, evalErr(src, "condition needs bool, got %s", c.Kind())
			}
			if b {
				return cthen(vals)
			}
			return celse(vals)
		}, nil
	default:
		return nil, fmt.Errorf("compile: unsupported expression %T", e)
	}
}

func compileUnary(t Unary, l *Layout) (CompiledExpr, error) {
	cx, err := CompileExpr(t.X, l)
	if err != nil {
		return nil, err
	}
	switch t.Op {
	case OpNot:
		return func(vals []Value) (Value, error) {
			x, err := cx(vals)
			if err != nil {
				return Value{}, err
			}
			b, ok := x.Bool()
			if !ok {
				return Value{}, evalErr(t, "operator ! needs bool, got %s", x.Kind())
			}
			return BoolVal(!b), nil
		}, nil
	case OpNeg:
		return func(vals []Value) (Value, error) {
			x, err := cx(vals)
			if err != nil {
				return Value{}, err
			}
			i, ok := x.Int()
			if !ok {
				return Value{}, evalErr(t, "operator - needs int, got %s", x.Kind())
			}
			return IntVal(-i), nil
		}, nil
	default:
		return nil, evalErr(t, "invalid unary operator %v", t.Op)
	}
}

func compileBinary(t Binary, l *Layout) (CompiledExpr, error) {
	cx, err := CompileExpr(t.X, l)
	if err != nil {
		return nil, err
	}
	cy, err := CompileExpr(t.Y, l)
	if err != nil {
		return nil, err
	}
	switch t.Op {
	case OpAnd, OpOr:
		isAnd := t.Op == OpAnd
		return func(vals []Value) (Value, error) {
			x, err := cx(vals)
			if err != nil {
				return Value{}, err
			}
			xb, ok := x.Bool()
			if !ok {
				return Value{}, evalErr(t, "operator %v needs bool operands, got %s", t.Op, x.Kind())
			}
			// Short-circuit exactly like the interpreter.
			if isAnd && !xb {
				return BoolVal(false), nil
			}
			if !isAnd && xb {
				return BoolVal(true), nil
			}
			y, err := cy(vals)
			if err != nil {
				return Value{}, err
			}
			yb, ok := y.Bool()
			if !ok {
				return Value{}, evalErr(t, "operator %v needs bool operands, got %s", t.Op, y.Kind())
			}
			return BoolVal(yb), nil
		}, nil
	case OpEq, OpNe:
		isEq := t.Op == OpEq
		return func(vals []Value) (Value, error) {
			x, err := cx(vals)
			if err != nil {
				return Value{}, err
			}
			y, err := cy(vals)
			if err != nil {
				return Value{}, err
			}
			return BoolVal(x.Equal(y) == isEq), nil
		}, nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpLe, OpGt, OpGe:
		op := t.Op
		// When both operands are plain variables or literals, skip their
		// per-node closures entirely: fetch straight from the frame. This
		// is the shape of virtually every guard and update in practice.
		if ox, oy, ok := directOperands(t, l); ok {
			return func(vals []Value) (Value, error) {
				return applyIntOp(op, ox.fetch(vals), oy.fetch(vals), t)
			}, nil
		}
		return func(vals []Value) (Value, error) {
			x, err := cx(vals)
			if err != nil {
				return Value{}, err
			}
			y, err := cy(vals)
			if err != nil {
				return Value{}, err
			}
			return applyIntOp(op, x, y, t)
		}, nil
	default:
		return nil, evalErr(t, "invalid binary operator %v", t.Op)
	}
}

func isIntOp(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// operand is a pre-resolved leaf: either a frame slot or a constant.
type operand struct {
	slot   int
	k      Value
	isSlot bool
}

func (o operand) fetch(vals []Value) Value {
	if o.isSlot {
		return vals[o.slot]
	}
	return o.k
}

// operandOf resolves Var and Lit leaves; anything else needs a closure.
func operandOf(e Expr, l *Layout) (operand, bool) {
	switch t := e.(type) {
	case Lit:
		return operand{k: t.Val}, true
	case Var:
		if slot, ok := l.Slot(t.Name); ok {
			return operand{slot: slot, isSlot: true}, true
		}
	}
	return operand{}, false
}

func directOperands(t Binary, l *Layout) (operand, operand, bool) {
	ox, okx := operandOf(t.X, l)
	if !okx {
		return operand{}, operand{}, false
	}
	oy, oky := operandOf(t.Y, l)
	return ox, oy, oky
}

// applyIntOp evaluates an arithmetic or comparison operator with the
// interpreter's exact typing and error behaviour.
func applyIntOp(op Op, x, y Value, src Binary) (Value, error) {
	if x.kind != KindInt || y.kind != KindInt {
		return Value{}, evalErr(src, "operator %v needs int operands, got %s and %s", op, x.Kind(), y.Kind())
	}
	xi, yi := x.i, y.i
	switch op {
	case OpAdd:
		return IntVal(xi + yi), nil
	case OpSub:
		return IntVal(xi - yi), nil
	case OpMul:
		return IntVal(xi * yi), nil
	case OpDiv:
		if yi == 0 {
			return Value{}, evalErr(src, "division by zero")
		}
		return IntVal(xi / yi), nil
	case OpMod:
		if yi == 0 {
			return Value{}, evalErr(src, "modulo by zero")
		}
		return IntVal(xi % yi), nil
	case OpLt:
		return BoolVal(xi < yi), nil
	case OpLe:
		return BoolVal(xi <= yi), nil
	case OpGt:
		return BoolVal(xi > yi), nil
	default:
		return BoolVal(xi >= yi), nil
	}
}

// CompileBool translates a guard. A nil guard compiles to constant true.
func CompileBool(e Expr, l *Layout) (CompiledBool, error) {
	if e == nil {
		return func([]Value) (bool, error) { return true, nil }, nil
	}
	ce, err := CompileExpr(e, l)
	if err != nil {
		return nil, err
	}
	return func(vals []Value) (bool, error) {
		v, err := ce(vals)
		if err != nil {
			return false, err
		}
		b, ok := v.Bool()
		if !ok {
			return false, fmt.Errorf("guard %s: needs bool, got %s", e, v.Kind())
		}
		return b, nil
	}, nil
}

// CompileStmt translates s into a closure over l's frame. A nil statement
// compiles to a no-op. Every variable s reads or writes must have a slot.
func CompileStmt(s Stmt, l *Layout) (CompiledStmt, error) {
	switch t := s.(type) {
	case nil:
		return func([]Value) error { return nil }, nil
	case Assign:
		slot, ok := l.Slot(t.Name)
		if !ok {
			return nil, fmt.Errorf("compile %s: variable %q has no slot", s, t.Name)
		}
		// Fuse "d := x op y" over direct operands into one closure — the
		// inner loop of every compute-heavy transition action.
		if bin, isBin := t.Rhs.(Binary); isBin && isIntOp(bin.Op) {
			if ox, oy, ok := directOperands(bin, l); ok {
				op := bin.Op
				return func(vals []Value) error {
					v, err := applyIntOp(op, ox.fetch(vals), oy.fetch(vals), bin)
					if err != nil {
						return err
					}
					vals[slot] = v
					return nil
				}, nil
			}
		}
		rhs, err := CompileExpr(t.Rhs, l)
		if err != nil {
			return nil, err
		}
		return func(vals []Value) error {
			v, err := rhs(vals)
			if err != nil {
				return err
			}
			vals[slot] = v
			return nil
		}, nil
	case Seq:
		body := make([]CompiledStmt, len(t))
		for i, st := range t {
			c, err := CompileStmt(st, l)
			if err != nil {
				return nil, err
			}
			body[i] = c
		}
		return func(vals []Value) error {
			for _, c := range body {
				if err := c(vals); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case IfStmt:
		cond, err := CompileBool(t.Cond, l)
		if err != nil {
			return nil, err
		}
		cthen, err := CompileStmt(t.Then, l)
		if err != nil {
			return nil, err
		}
		celse, err := CompileStmt(t.Else, l)
		if err != nil {
			return nil, err
		}
		return func(vals []Value) error {
			b, err := cond(vals)
			if err != nil {
				return err
			}
			if b {
				return cthen(vals)
			}
			return celse(vals)
		}, nil
	case Repeat:
		// Fuse "repeat N { d := x op y }" into a native loop: no dynamic
		// dispatch per iteration. This is the compute-quantum shape of the
		// engine benchmarks, so it gets the tightest code.
		if c, ok := compileRepeatAssign(t, l); ok {
			return c, nil
		}
		body, err := CompileStmt(t.Body, l)
		if err != nil {
			return nil, err
		}
		times := t.Times
		return func(vals []Value) error {
			for i := 0; i < times; i++ {
				if err := body(vals); err != nil {
					return err
				}
			}
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("compile: unsupported statement %T", s)
	}
}

// compileRepeatAssign recognizes repeat N { d := x op y } with direct
// operands and emits a closed loop with no dynamic dispatch per
// iteration. Typing and division checks are still performed every
// iteration — an operand may be the destination itself (d := c / d), so
// errors can first appear at any iteration and the checks must not be
// hoisted out of the loop.
func compileRepeatAssign(t Repeat, l *Layout) (CompiledStmt, bool) {
	a, ok := t.Body.(Assign)
	if !ok {
		return nil, false
	}
	bin, ok := a.Rhs.(Binary)
	if !ok || !isIntOp(bin.Op) {
		return nil, false
	}
	ox, oy, ok := directOperands(bin, l)
	if !ok {
		return nil, false
	}
	slot, ok := l.Slot(a.Name)
	if !ok {
		return nil, false
	}
	times := t.Times
	switch bin.Op {
	case OpAdd, OpSub, OpMul:
		op := bin.Op
		return func(vals []Value) error {
			for i := 0; i < times; i++ {
				x, y := ox.fetch(vals), oy.fetch(vals)
				if x.kind != KindInt || y.kind != KindInt {
					return evalErr(bin, "operator %v needs int operands, got %s and %s", op, x.Kind(), y.Kind())
				}
				var r int64
				switch op {
				case OpAdd:
					r = x.i + y.i
				case OpSub:
					r = x.i - y.i
				default:
					r = x.i * y.i
				}
				vals[slot] = Value{kind: KindInt, i: r}
			}
			return nil
		}, true
	default:
		op := bin.Op
		return func(vals []Value) error {
			for i := 0; i < times; i++ {
				v, err := applyIntOp(op, ox.fetch(vals), oy.fetch(vals), bin)
				if err != nil {
					return err
				}
				vals[slot] = v
			}
			return nil
		}, true
	}
}

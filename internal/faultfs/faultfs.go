// Package faultfs is the repository's filesystem indirection for fault
// injection. The disk-touching layers — the work-stealing explorer's
// frontier spill (internal/lts/spill.go) and bipd's crash-safe journal
// and report store (serve/store.go) — perform every file operation
// through an FS value instead of calling the os package directly. In
// production that value is OS, a zero-cost passthrough; in tests it is
// a Hooks wrapper that fails chosen operations on demand, which is how
// the repo proves its robustness contracts executably: an injected
// WriteAt/ReadAt/CreateTemp failure must surface as a clean run error
// (spill) or flip the service into degraded in-memory mode (store) —
// never a panic, a hang, or a corrupted file left behind.
//
// The interface is deliberately minimal: exactly the operations the
// two consumers perform, nothing speculative. Hooks additionally does
// lifecycle accounting (files created, closed, removed), so hygiene
// tests can assert "every temp file is closed and removed on every
// exit path" without scanning real directories.
package faultfs

import (
	"io"
	"os"
	"sync"
)

// File is the slice of *os.File the spill and store layers use:
// positioned reads/writes for the spill chunks, appends and Sync for
// the journal.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	Sync() error
	Name() string
	Close() error
}

// FS is the slice of the os package the disk layers use. All methods
// must be safe for concurrent use (the real os package is).
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the real filesystem — the default of every consumer.
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

// Hooks is an FS that delegates to Inner (OS when nil) but consults an
// optional per-operation hook first; a hook returning a non-nil error
// fails the operation without touching the inner filesystem, which is
// how tests inject the disk fault of their choice (first write, nth
// read, temp-file creation, ...). Independent of the hooks, Hooks
// counts file lifecycle events so hygiene tests can assert that a layer
// closed and removed everything it created.
//
// The zero Hooks value (no hooks installed) is a pure passthrough and
// is safe for concurrent use, like every FS.
type Hooks struct {
	// Inner is the wrapped filesystem; nil means OS.
	Inner FS

	// Operation hooks; nil hooks pass through. Each receives the
	// operation's target (the pattern for CreateTemp, the file name for
	// the rest) and, for positioned I/O, the offset and length.
	OnCreateTemp func(pattern string) error
	OnOpenFile   func(name string) error
	OnWriteAt    func(name string, off int64, n int) error
	OnReadAt     func(name string, off int64, n int) error
	OnWrite      func(name string, n int) error
	OnSync       func(name string) error
	OnRename     func(oldpath, newpath string) error
	OnRemove     func(name string) error

	mu      sync.Mutex
	created []string
	removed []string
	live    int
}

func (h *Hooks) inner() FS {
	if h.Inner == nil {
		return OS
	}
	return h.Inner
}

// Created returns the names of every file opened or created through
// this Hooks, in order.
func (h *Hooks) Created() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.created...)
}

// Removed returns the names passed to successful Remove calls.
func (h *Hooks) Removed() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.removed...)
}

// Live returns the number of files opened through this Hooks and not
// yet closed — 0 after a layer with clean file hygiene has unwound.
func (h *Hooks) Live() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live
}

func (h *Hooks) track(f File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.created = append(h.created, f.Name())
	h.live++
	h.mu.Unlock()
	return &hookedFile{f: f, h: h}, nil
}

func (h *Hooks) CreateTemp(dir, pattern string) (File, error) {
	if h.OnCreateTemp != nil {
		if err := h.OnCreateTemp(pattern); err != nil {
			return nil, err
		}
	}
	return h.track(h.inner().CreateTemp(dir, pattern))
}

func (h *Hooks) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if h.OnOpenFile != nil {
		if err := h.OnOpenFile(name); err != nil {
			return nil, err
		}
	}
	return h.track(h.inner().OpenFile(name, flag, perm))
}

func (h *Hooks) MkdirAll(path string, perm os.FileMode) error {
	return h.inner().MkdirAll(path, perm)
}

func (h *Hooks) Rename(oldpath, newpath string) error {
	if h.OnRename != nil {
		if err := h.OnRename(oldpath, newpath); err != nil {
			return err
		}
	}
	return h.inner().Rename(oldpath, newpath)
}

func (h *Hooks) Remove(name string) error {
	if h.OnRemove != nil {
		if err := h.OnRemove(name); err != nil {
			return err
		}
	}
	err := h.inner().Remove(name)
	if err == nil {
		h.mu.Lock()
		h.removed = append(h.removed, name)
		h.mu.Unlock()
	}
	return err
}

func (h *Hooks) ReadFile(name string) ([]byte, error) {
	return h.inner().ReadFile(name)
}

func (h *Hooks) ReadDir(name string) ([]os.DirEntry, error) {
	return h.inner().ReadDir(name)
}

// hookedFile wraps a File so per-file operations consult the Hooks and
// Close keeps the live count honest. Double closes decrement once.
type hookedFile struct {
	f      File
	h      *Hooks
	closed bool
	mu     sync.Mutex
}

func (f *hookedFile) Name() string { return f.f.Name() }

func (f *hookedFile) WriteAt(p []byte, off int64) (int, error) {
	if hook := f.h.OnWriteAt; hook != nil {
		if err := hook(f.f.Name(), off, len(p)); err != nil {
			return 0, err
		}
	}
	return f.f.WriteAt(p, off)
}

func (f *hookedFile) ReadAt(p []byte, off int64) (int, error) {
	if hook := f.h.OnReadAt; hook != nil {
		if err := hook(f.f.Name(), off, len(p)); err != nil {
			return 0, err
		}
	}
	return f.f.ReadAt(p, off)
}

func (f *hookedFile) Write(p []byte) (int, error) {
	if hook := f.h.OnWrite; hook != nil {
		if err := hook(f.f.Name(), len(p)); err != nil {
			return 0, err
		}
	}
	return f.f.Write(p)
}

func (f *hookedFile) Sync() error {
	if hook := f.h.OnSync; hook != nil {
		if err := hook(f.f.Name()); err != nil {
			return err
		}
	}
	return f.f.Sync()
}

func (f *hookedFile) Close() error {
	f.mu.Lock()
	wasClosed := f.closed
	f.closed = true
	f.mu.Unlock()
	if !wasClosed {
		f.h.mu.Lock()
		f.h.live--
		f.h.mu.Unlock()
	}
	return f.f.Close()
}

// FailNth returns a hook-shaped counter that errors the nth call
// (1-based) with err and passes every other call through; n <= 0 never
// fails. It is safe for concurrent use, so it can back hooks fired
// from multiple explorer workers.
func FailNth(n int, err error) func() error {
	var mu sync.Mutex
	calls := 0
	return func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if n > 0 && calls == n {
			return err
		}
		return nil
	}
}

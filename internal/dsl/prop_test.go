package dsl

import (
	"strings"
	"testing"

	"bip/prop"
)

// TestParsePropRoundTrip pins the textual syntax against the algebra's
// String rendering: parse(src).String() re-parses to the same string,
// and Go-built properties render to parseable text.
func TestParsePropRoundTrip(t *testing.T) {
	srcs := []string{
		"always(at(cabin, moving))",
		"never((at(phil0, eating) && at(phil1, eating)))",
		"always((!at(f, taken) || (f.owner == 1)))",
		"until((l.n <= 10), hit)",
		"after(depart, until(at(door, closed), arrive))",
		"after(on(a, b), always((x.v >= -3)))",
		"between(eat0, put0, at(fork0, busyL))",
		"between(!on(a, b), any, true)",
		"reachable(((l.n + 1) * 2 != 8))",
		"deadlockfree",
		"always((x.a < (x.b - 1)))",
	}
	for _, src := range srcs {
		p, err := ParseProp(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := p.String()
		p2, err := ParseProp(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (rendered %q): %v", src, rendered, err)
		}
		if p2.String() != rendered {
			t.Fatalf("round trip diverges: %q -> %q -> %q", src, rendered, p2.String())
		}
	}
}

// TestParsePropGoEquivalence pins the parser against Go-built algebra
// values: the same property written both ways renders identically.
func TestParsePropGoEquivalence(t *testing.T) {
	cases := []struct {
		src  string
		want prop.Prop
	}{
		{"never((at(phil0, eating) & at(phil1, eating)))",
			prop.Never(prop.And(prop.At("phil0", "eating"), prop.At("phil1", "eating")))},
		{"always(!at(Fork1, taken) | (Fork1.owner == 0))",
			prop.Always(prop.Or(prop.Not(prop.At("Fork1", "taken")),
				prop.Eq(prop.Var("Fork1", "owner"), prop.Int(0))))},
		{"after(depart, until(at(door, closed), arrive))",
			prop.After(prop.On("depart"), prop.Until(prop.At("door", "closed"), prop.On("arrive")))},
		{"between(on(eat0, eat1), put0, (fork0.k >= 1))",
			prop.Between(prop.On("eat0", "eat1"), prop.On("put0"),
				prop.Ge(prop.Var("fork0", "k"), prop.Int(1)))},
		{"until(true, !hit)", prop.Until(prop.True(), prop.NotOn("hit"))},
		{"deadlockfree", prop.DeadlockFree()},
	}
	for _, c := range cases {
		p, err := ParseProp(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if p.String() != c.want.String() {
			t.Fatalf("%q parses to %q, Go form renders %q", c.src, p.String(), c.want.String())
		}
	}
}

// TestParsePropPrecedence pins && over ||, comparison over boolean
// connectives, and arithmetic over comparison — the same ladder as the
// system-expression grammar.
func TestParsePropPrecedence(t *testing.T) {
	p, err := ParseProp("always(at(a, x) | at(b, y) & c.n + 2 * 3 == 8)")
	if err != nil {
		t.Fatal(err)
	}
	want := prop.Always(prop.Or(prop.At("a", "x"),
		prop.And(prop.At("b", "y"),
			prop.Eq(prop.Add(prop.Var("c", "n"), prop.Mul(prop.Int(2), prop.Int(3))), prop.Int(8)))))
	if p.String() != want.String() {
		t.Fatalf("precedence: got %q, want %q", p.String(), want.String())
	}
}

// TestParsePropErrors pins the diagnostics.
func TestParsePropErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "expected a property"},
		{"eventually(at(a, b))", "expected a property"},
		{"always(at(a, b)) trailing", "unexpected"},
		{"always(foo)", "qualified variable"},
		{"always(at(a, b) + 1)", "expected an integer term"},
		{"always(x.n == at(a, b))", "expected an integer term"},
		{"always(x.n + 1)", "expected a predicate"},
		{"until(true, !any)", "matches nothing"},
		{"after(, always(true))", "expected an event"},
		{"always(at(a))", `expected ","`},
	}
	for _, c := range cases {
		_, err := ParseProp(c.src)
		if err == nil {
			t.Fatalf("%q: parse unexpectedly succeeded", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

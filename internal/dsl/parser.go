package dsl

import (
	"fmt"
	"strconv"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// Parse compiles DSL source into a validated core system.
func Parse(src string) (*core.System, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sys, err := p.system()
	if err != nil {
		return nil, err
	}
	return sys, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errf(t token, format string, args ...any) error {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, got %q", t.text)
	}
	return t, nil
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return p.errf(t, "expected %q, got %q", text, t.text)
	}
	return nil
}

// accept consumes the token when it matches.
func (p *parser) accept(text string) bool {
	if p.peek().text == text {
		p.pos++
		return true
	}
	return false
}

// keyword reports whether the next token is the given keyword (without
// consuming).
func (p *parser) at(text string) bool { return p.peek().text == text }

// system parses the whole compilation unit.
func (p *parser) system() (*core.System, error) {
	if err := p.expect("system"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	b := core.NewSystem(name.text)
	atoms := make(map[string]*behavior.Atom)
	for !p.atEOF() {
		t := p.peek()
		switch t.text {
		case "atom":
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			if _, dup := atoms[a.Name]; dup {
				return nil, p.errf(t, "atom type %q redefined", a.Name)
			}
			atoms[a.Name] = a
		case "instance":
			p.next()
			inst, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			typ, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			a, ok := atoms[typ.text]
			if !ok {
				return nil, p.errf(typ, "unknown atom type %q", typ.text)
			}
			b.At(inst.line, inst.col).AddAs(inst.text, a)
		case "connector":
			if err := p.connector(b); err != nil {
				return nil, err
			}
		case "priority":
			p.next()
			lo, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect("<"); err != nil {
				return nil, err
			}
			hi, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var when expr.Expr
			if p.accept("when") {
				when, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			b.At(t.line, t.col).PriorityWhen(lo.text, hi.text, when)
		default:
			return nil, p.errf(t, "expected atom/instance/connector/priority, got %q", t.text)
		}
	}
	return b.Build()
}

// atom parses an atom type declaration.
func (p *parser) atom() (*behavior.Atom, error) {
	p.next() // "atom"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	nb := behavior.NewBuilder(name.text).DeclaredAt(name.line, name.col)
	sawInit := false
	for !p.accept("}") {
		t := p.peek()
		switch t.text {
		case "var":
			p.next()
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			typ, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			switch typ.text {
			case "int":
				neg := p.accept("-")
				val := p.next()
				if val.kind != tokInt {
					return nil, p.errf(val, "expected integer initializer")
				}
				iv, err := strconv.ParseInt(val.text, 10, 64)
				if err != nil {
					return nil, p.errf(val, "bad integer %q", val.text)
				}
				if neg {
					iv = -iv
				}
				nb.At(v.line, v.col).Int(v.text, iv)
			case "bool":
				val := p.next()
				switch val.text {
				case "true":
					nb.At(v.line, v.col).Bool(v.text, true)
				case "false":
					nb.At(v.line, v.col).Bool(v.text, false)
				default:
					return nil, p.errf(val, "expected true/false initializer")
				}
			default:
				return nil, p.errf(typ, "unknown type %q (want int or bool)", typ.text)
			}
		case "port":
			p.next()
			for {
				pn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				var exported []string
				if p.accept("(") {
					for {
						vn, err := p.expectIdent()
						if err != nil {
							return nil, err
						}
						exported = append(exported, vn.text)
						if !p.accept(",") {
							break
						}
					}
					if err := p.expect(")"); err != nil {
						return nil, err
					}
				}
				nb.At(pn.line, pn.col).Port(pn.text, exported...)
				if !p.accept(",") {
					break
				}
			}
		case "location":
			p.next()
			for {
				ln, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				nb.At(ln.line, ln.col).Location(ln.text)
				if !p.accept(",") {
					break
				}
			}
		case "init":
			p.next()
			ln, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			nb.Initial(ln.text)
			sawInit = true
		case "from":
			p.next()
			from, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect("to"); err != nil {
				return nil, err
			}
			to, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect("on"); err != nil {
				return nil, err
			}
			port, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var guard expr.Expr
			if p.accept("when") {
				guard, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			var action expr.Stmt
			if p.accept("do") {
				action, err = p.stmts()
				if err != nil {
					return nil, err
				}
			}
			nb.At(t.line, t.col).TransitionG(from.text, port.text, to.text, guard, action)
		case "invariant":
			p.next()
			inv, err := p.expr()
			if err != nil {
				return nil, err
			}
			nb.Invariant(inv)
		default:
			return nil, p.errf(t, "unexpected %q in atom body", t.text)
		}
	}
	_ = sawInit // the first location is the default initial location
	return nb.Build()
}

// connector parses a connector declaration and installs its expansion.
func (p *parser) connector(b *core.SystemBuilder) error {
	p.next() // "connector"
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	var ends []core.ConnectorEnd
	hasTrigger := false
	for {
		comp, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expect("."); err != nil {
			return err
		}
		port, err := p.expectIdent()
		if err != nil {
			return err
		}
		end := core.ConnectorEnd{Ref: core.P(comp.text, port.text)}
		if p.accept("'") {
			end.Trigger = true
			hasTrigger = true
		}
		ends = append(ends, end)
		if !p.accept("+") {
			break
		}
	}
	var guard expr.Expr
	var action expr.Stmt
	if p.accept("when") {
		guard, err = p.expr()
		if err != nil {
			return err
		}
	}
	if p.accept("do") {
		action, err = p.stmts()
		if err != nil {
			return err
		}
	}
	if hasTrigger {
		if guard != nil || action != nil {
			return p.errf(name, "connector %s: trigger connectors cannot carry when/do", name.text)
		}
		b.At(name.line, name.col).Connector(core.Connector{Name: name.text, Ends: ends})
		return nil
	}
	refs := make([]core.PortRef, len(ends))
	for i, e := range ends {
		refs[i] = e.Ref
	}
	b.At(name.line, name.col).ConnectGD(name.text, guard, action, refs...)
	return nil
}

// stmts parses a ';'-separated statement list.
func (p *parser) stmts() (expr.Stmt, error) {
	var out []expr.Stmt
	for {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(";") {
			break
		}
	}
	return expr.Do(out...), nil
}

func (p *parser) stmt() (expr.Stmt, error) {
	if p.at("if") {
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		then, err := p.stmts()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		var els expr.Stmt
		if p.accept("else") {
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			els, err = p.stmts()
			if err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
		}
		return expr.When(cond, then, els), nil
	}
	lv, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":="); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	return expr.Set(lv, rhs), nil
}

// qualifiedName parses IDENT or IDENT.IDENT.
func (p *parser) qualifiedName() (string, error) {
	id, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	name := id.text
	if p.accept(".") {
		id2, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		name += "." + id2.text
	}
	return name, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expr() (expr.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr.Expr, error) {
	lhs, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lhs = expr.Or(lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	lhs, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		rhs, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		lhs = expr.And(lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	lhs, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	ops := map[string]func(a, b expr.Expr) expr.Expr{
		"==": expr.Eq, "!=": expr.Ne, "<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
	}
	if f, ok := ops[p.peek().text]; ok {
		p.next()
		rhs, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return f(lhs, rhs), nil
	}
	return lhs, nil
}

func (p *parser) addExpr() (expr.Expr, error) {
	lhs, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			rhs, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			lhs = expr.Add(lhs, rhs)
		case p.accept("-"):
			rhs, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			lhs = expr.Sub(lhs, rhs)
		default:
			return lhs, nil
		}
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			rhs, err := p.unary()
			if err != nil {
				return nil, err
			}
			lhs = expr.Mul(lhs, rhs)
		case p.accept("/"):
			rhs, err := p.unary()
			if err != nil {
				return nil, err
			}
			lhs = expr.Div(lhs, rhs)
		case p.accept("%"):
			rhs, err := p.unary()
			if err != nil {
				return nil, err
			}
			lhs = expr.Mod(lhs, rhs)
		default:
			return lhs, nil
		}
	}
}

func (p *parser) unary() (expr.Expr, error) {
	switch {
	case p.accept("!"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return expr.Not(x), nil
	case p.accept("-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return expr.Neg(x), nil
	}
	return p.primary()
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.next()
		iv, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer %q", t.text)
		}
		return expr.I(iv), nil
	case t.text == "true":
		p.next()
		return expr.B(true), nil
	case t.text == "false":
		p.next()
		return expr.B(false), nil
	case t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return expr.V(name), nil
	default:
		return nil, p.errf(t, "expected expression, got %q", t.text)
	}
}

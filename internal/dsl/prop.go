package dsl

import (
	"strconv"

	"bip/prop"
)

// This file extends the textual BIP language with a property syntax, so
// the command-line tools accept the same declarative properties the
// bip/prop algebra builds in Go:
//
//	always(<pred>)  never(<pred>)  reachable(<pred>)  deadlockfree
//	until(<pred>, <event>)
//	after(<event>, <prop>)
//	between(<event>, <event>, <pred>)
//
//	pred:  at(Comp, loc) | comp.var | integer comparisons/arithmetic
//	       | ! | && (or &) | || (or |) | true | false | ( ... )
//	event: label | on(l1, l2, ...) | !label | !on(...) | any
//
// prop.Prop values render (String) in exactly this syntax, so textual
// and Go-built properties round-trip. ParseProp only parses; name
// resolution happens when the property is compiled against a system.

// ParseProp parses a textual property into a prop.Prop.
func ParseProp(src string) (prop.Prop, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pr, err := p.prop()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf(p.peek(), "unexpected %q after property", p.peek().text)
	}
	return pr, nil
}

// prop parses one temporal property.
func (p *parser) prop() (prop.Prop, error) {
	t := p.peek()
	switch t.text {
	case "always", "never", "reachable":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		pd, err := p.propPred()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch t.text {
		case "always":
			return prop.Always(pd), nil
		case "never":
			return prop.Never(pd), nil
		default:
			return prop.Reachable(pd), nil
		}
	case "until":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		pd, err := p.propPred()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ev, err := p.event()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return prop.Until(pd, ev), nil
	case "after":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ev, err := p.event()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		inner, err := p.prop()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return prop.After(ev, inner), nil
	case "between":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		open, err := p.event()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		close, err := p.event()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		pd, err := p.propPred()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return prop.Between(open, close, pd), nil
	case "deadlockfree":
		p.next()
		return prop.DeadlockFree(), nil
	default:
		return nil, p.errf(t, "expected a property (always/never/until/after/between/reachable/deadlockfree), got %q", t.text)
	}
}

// event parses an event predicate.
func (p *parser) event() (prop.Event, error) {
	neg := false
	for p.accept("!") {
		neg = !neg
	}
	t := p.peek()
	switch {
	case t.text == "any":
		p.next()
		if neg {
			return nil, p.errf(t, "!any matches nothing; drop the property instead")
		}
		return prop.AnyEvent(), nil
	case t.text == "on":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var labels []string
		for {
			l, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			labels = append(labels, l)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if neg {
			return prop.NotOn(labels...), nil
		}
		return prop.On(labels...), nil
	case t.kind == tokIdent:
		// Labels may be qualified ("cabin.depart"): singleton
		// interactions are named comp.port.
		l, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		if neg {
			return prop.NotOn(l), nil
		}
		return prop.On(l), nil
	default:
		return nil, p.errf(t, "expected an event (label, on(...), !on(...), any), got %q", t.text)
	}
}

// predNode is the tagged result of predicate-expression parsing: a node
// can be a predicate, an integer term, or (a variable reference, whose
// declared kind is unknown until compile time) both.
type predNode struct {
	pred prop.Pred
	term prop.Term
}

func (p *parser) asPred(n predNode, t token) (prop.Pred, error) {
	if n.pred == nil {
		return nil, p.errf(t, "expected a predicate, got an integer term")
	}
	return n.pred, nil
}

func (p *parser) asTerm(n predNode, t token) (prop.Term, error) {
	if n.term == nil {
		return nil, p.errf(t, "expected an integer term, got a predicate")
	}
	return n.term, nil
}

// propPred parses a state predicate.
func (p *parser) propPred() (prop.Pred, error) {
	t := p.peek()
	n, err := p.pOr()
	if err != nil {
		return nil, err
	}
	return p.asPred(n, t)
}

func (p *parser) pOr() (predNode, error) {
	t := p.peek()
	n, err := p.pAnd()
	if err != nil {
		return predNode{}, err
	}
	for p.accept("||") || p.accept("|") {
		l, err := p.asPred(n, t)
		if err != nil {
			return predNode{}, err
		}
		t2 := p.peek()
		m, err := p.pAnd()
		if err != nil {
			return predNode{}, err
		}
		r, err := p.asPred(m, t2)
		if err != nil {
			return predNode{}, err
		}
		n = predNode{pred: prop.Or(l, r)}
	}
	return n, nil
}

func (p *parser) pAnd() (predNode, error) {
	t := p.peek()
	n, err := p.pCmp()
	if err != nil {
		return predNode{}, err
	}
	for p.accept("&&") || p.accept("&") {
		l, err := p.asPred(n, t)
		if err != nil {
			return predNode{}, err
		}
		t2 := p.peek()
		m, err := p.pCmp()
		if err != nil {
			return predNode{}, err
		}
		r, err := p.asPred(m, t2)
		if err != nil {
			return predNode{}, err
		}
		n = predNode{pred: prop.And(l, r)}
	}
	return n, nil
}

func (p *parser) pCmp() (predNode, error) {
	t := p.peek()
	n, err := p.pAdd()
	if err != nil {
		return predNode{}, err
	}
	ops := map[string]func(a, b prop.Term) prop.Pred{
		"==": prop.Eq, "!=": prop.Ne, "<": prop.Lt, "<=": prop.Le, ">": prop.Gt, ">=": prop.Ge,
	}
	f, ok := ops[p.peek().text]
	if !ok {
		return n, nil
	}
	p.next()
	l, err := p.asTerm(n, t)
	if err != nil {
		return predNode{}, err
	}
	t2 := p.peek()
	m, err := p.pAdd()
	if err != nil {
		return predNode{}, err
	}
	r, err := p.asTerm(m, t2)
	if err != nil {
		return predNode{}, err
	}
	return predNode{pred: f(l, r)}, nil
}

func (p *parser) pAdd() (predNode, error) {
	t := p.peek()
	n, err := p.pMul()
	if err != nil {
		return predNode{}, err
	}
	for {
		var f func(a, b prop.Term) prop.Term
		switch {
		case p.at("+"):
			f = prop.Add
		case p.at("-"):
			f = prop.Sub
		default:
			return n, nil
		}
		p.next()
		l, err := p.asTerm(n, t)
		if err != nil {
			return predNode{}, err
		}
		t2 := p.peek()
		m, err := p.pMul()
		if err != nil {
			return predNode{}, err
		}
		r, err := p.asTerm(m, t2)
		if err != nil {
			return predNode{}, err
		}
		n = predNode{term: f(l, r)}
	}
}

func (p *parser) pMul() (predNode, error) {
	t := p.peek()
	n, err := p.pUnary()
	if err != nil {
		return predNode{}, err
	}
	for p.accept("*") {
		l, err := p.asTerm(n, t)
		if err != nil {
			return predNode{}, err
		}
		t2 := p.peek()
		m, err := p.pUnary()
		if err != nil {
			return predNode{}, err
		}
		r, err := p.asTerm(m, t2)
		if err != nil {
			return predNode{}, err
		}
		n = predNode{term: prop.Mul(l, r)}
	}
	return n, nil
}

func (p *parser) pUnary() (predNode, error) {
	switch {
	case p.accept("!"):
		t := p.peek()
		n, err := p.pUnary()
		if err != nil {
			return predNode{}, err
		}
		pd, err := p.asPred(n, t)
		if err != nil {
			return predNode{}, err
		}
		return predNode{pred: prop.Not(pd)}, nil
	case p.accept("-"):
		t := p.peek()
		n, err := p.pUnary()
		if err != nil {
			return predNode{}, err
		}
		tm, err := p.asTerm(n, t)
		if err != nil {
			return predNode{}, err
		}
		return predNode{term: prop.Neg(tm)}, nil
	}
	return p.pPrimary()
}

func (p *parser) pPrimary() (predNode, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.next()
		iv, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return predNode{}, p.errf(t, "bad integer %q", t.text)
		}
		return predNode{term: prop.Int(iv)}, nil
	case t.text == "true":
		p.next()
		return predNode{pred: prop.True()}, nil
	case t.text == "false":
		p.next()
		return predNode{pred: prop.False()}, nil
	case t.text == "at":
		p.next()
		if err := p.expect("("); err != nil {
			return predNode{}, err
		}
		comp, err := p.expectIdent()
		if err != nil {
			return predNode{}, err
		}
		if err := p.expect(","); err != nil {
			return predNode{}, err
		}
		loc, err := p.expectIdent()
		if err != nil {
			return predNode{}, err
		}
		if err := p.expect(")"); err != nil {
			return predNode{}, err
		}
		return predNode{pred: prop.At(comp.text, loc.text)}, nil
	case t.text == "(":
		p.next()
		n, err := p.pOr()
		if err != nil {
			return predNode{}, err
		}
		if err := p.expect(")"); err != nil {
			return predNode{}, err
		}
		return n, nil
	case t.kind == tokIdent:
		p.next()
		if !p.accept(".") {
			return predNode{}, p.errf(t, "expected a qualified variable comp.var, got bare %q (at(comp, loc) tests locations)", t.text)
		}
		v, err := p.expectIdent()
		if err != nil {
			return predNode{}, err
		}
		ref := prop.Var(t.text, v.text)
		return predNode{pred: ref, term: ref}, nil
	default:
		return predNode{}, p.errf(t, "expected a predicate, got %q", t.text)
	}
}

// Package dsl implements the textual BIP language: a lexer, a
// recursive-descent parser and an elaborator producing core systems.
// It is the concrete syntax of the "single host component language"
// (§5.4); cmd/bipc is its front-end.
//
// Example:
//
//	system pair
//	atom Ping {
//	  var n: int = 0
//	  port hit(n), back
//	  location a, b
//	  init a
//	  from a to b on hit when n < 10 do n := n + 1
//	  from b to a on back
//	}
//	instance l : Ping
//	instance r : Ping
//	connector hit = l.hit + r.hit
//	connector back = l.back + r.back
//	priority back < hit
package dsl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokInt
	tokPunct // single/double character symbols
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// lex tokenizes src. Comments run from '#' or "//" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			startCol := col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: line, col: startCol})
		case unicode.IsDigit(rune(c)):
			start := i
			startCol := col
			for i < n && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, token{kind: tokInt, text: src[start:i], line: line, col: startCol})
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			startCol := col
			switch two {
			case ":=", "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{kind: tokPunct, text: two, line: line, col: startCol})
				advance(2)
				continue
			}
			if strings.ContainsRune("+-*/%<>=!(){},.;:'|&", rune(c)) {
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line, col: startCol})
				advance(1)
				continue
			}
			return nil, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", line: line, col: col})
	return toks, nil
}

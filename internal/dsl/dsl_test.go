package dsl

import (
	"strings"
	"testing"

	"bip/internal/engine"
	"bip/internal/lts"
)

const pairSrc = `
system pair
# a ping-pong pair with a bounded counter
atom Ping {
  var n: int = 0
  port hit(n), back
  location a, b
  init a
  from a to b on hit when n < 10 do n := n + 1
  from b to a on back
  invariant n >= 0
}
instance l : Ping
instance r : Ping
connector hit = l.hit + r.hit when l.n < 10 do r.n := l.n
connector back = l.back + r.back
`

func TestParsePair(t *testing.T) {
	sys, err := Parse(pairSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if sys.Name != "pair" || len(sys.Atoms) != 2 || len(sys.Interactions) != 2 {
		t.Fatalf("parsed shape wrong: %s", sys.Stats())
	}
	res, err := engine.Run(sys, engine.Options{MaxSteps: 30, CheckInvariants: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Steps == 0 {
		t.Fatal("parsed system does not execute")
	}
}

func TestParseBroadcastConnector(t *testing.T) {
	src := `
system bc
atom S { port snd
  location s
  from s to s on snd }
atom R { port rcv
  location i
  from i to i on rcv }
instance s : S
instance r1 : R
instance r2 : R
connector b = s.snd' + r1.rcv + r2.rcv
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Trigger connector expands into 4 interactions with maximal
	// progress priorities.
	if len(sys.Interactions) != 4 {
		t.Fatalf("interactions = %d, want 4", len(sys.Interactions))
	}
	if len(sys.Priorities) != 5 {
		t.Fatalf("priorities = %d, want 5", len(sys.Priorities))
	}
	l, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumStates() != 1 {
		t.Fatalf("states = %d", l.NumStates())
	}
}

func TestParsePriorities(t *testing.T) {
	src := `
system prio
atom A { port lo, hi
  location s
  from s to s on lo
  from s to s on hi }
instance a : A
connector l = a.lo
connector h = a.hi
priority l < h when a.lo == a.lo
`
	// The when clause references variables; a.lo is a port not a var, so
	// this must fail validation.
	if _, err := Parse(src); err == nil {
		t.Fatal("priority condition over non-variables must fail")
	}
	srcOK := strings.Replace(src, " when a.lo == a.lo", "", 1)
	sys, err := Parse(srcOK)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	moves, err := sys.Enabled(sys.Initial())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || sys.Label(moves[0]) != "h" {
		t.Fatalf("priority not applied: %d moves", len(moves))
	}
}

func TestParseStatementsAndExpressions(t *testing.T) {
	src := `
system s
atom A {
  var x: int = -3
  var p: bool = true
  port step(x, p)
  location l
  from l to l on step when (x + 2) * 3 <= 100 && !(x == 4) || false do
    if p { x := x * 2 - 1 } else { x := 0 - x; p := true }
}
instance a : A
connector st = a.step
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := engine.Run(sys, engine.Options{MaxSteps: 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Steps != 5 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no system", `atom A {}`, `expected "system"`},
		{"bad char", "system s\natom A { port p location l from l to l on p }\ninstance a : A\nconnector c = a.p\n$", "unexpected character"},
		{"unknown type", "system s\ninstance a : Missing", "unknown atom type"},
		{"redefined atom", "system s\natom A { location l }\natom A { location l }", "redefined"},
		{"bad init", "system s\natom A { var x: float = 1 location l }", "unknown type"},
		{"bad int", "system s\natom A { var x: int = true location l }", "expected integer"},
		{"bad bool", "system s\natom A { var x: bool = 7 location l }", "expected true/false"},
		{"trigger with do", `
system s
atom A { var x: int = 0
  port p(x)
  location l
  from l to l on p }
instance a : A
instance b : A
connector c = a.p' + b.p do b.x := a.x`, "cannot carry when/do"},
		{"garbage in atom", "system s\natom A { banana }", "unexpected"},
		{"missing expr", "system s\natom A { location l port p from l to l on p when }", "expected expression"},
		{"unknown port in connector", `
system s
atom A { location l port p from l to l on p }
instance a : A
connector c = a.ghost`, "unknown port"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error with %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("system s\n  ?")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 2 || se.Col != 3 {
		t.Fatalf("position = %d:%d, want 2:3", se.Line, se.Col)
	}
}

func TestCommentsAndNegatives(t *testing.T) {
	src := `
system s  // line comment
atom A {
  var x: int = -5   # hash comment
  location l
  port p(x)
  from l to l on p do x := -x
}
instance a : A
connector c = a.p
`
	sys, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := sys.Initial()
	moves, _ := sys.Enabled(st)
	st2, err := sys.Exec(st, moves[0])
	if err != nil {
		t.Fatal(err)
	}
	v, _ := st2.Vars[0].Get("x")
	if iv, _ := v.Int(); iv != 5 {
		t.Fatalf("x = %d, want 5", iv)
	}
}

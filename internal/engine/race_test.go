package engine

import (
	"fmt"
	"sync"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// This file pins the multi-threaded engine's data-sharing discipline
// under the race detector (`go test -race ./internal/engine`, run by CI
// and `make race`). The coordinator deliberately shares component
// variable stores and enabled-transition slices across goroutines,
// relying on channel ordering instead of copies; these tests exercise
// exactly those shared paths — conflicting interactions over a shared
// component, interaction data transfer writing offered variables, and
// many concurrent engine instances — so that any future change breaking
// the happens-before argument fails loudly rather than corrupting runs.

// conflictSystem builds n workers contending for one shared arbiter with
// data transfer through the shared component — maximal offer traffic and
// conflict pressure on the coordinator.
func conflictSystem(t testing.TB, n int) *core.System {
	t.Helper()
	worker := behavior.NewBuilder("worker").
		Location("idle", "busy").
		Int("got", 0).
		Port("acquire", "got").
		Port("release").
		Transition("idle", "acquire", "busy").
		Transition("busy", "release", "idle").
		MustBuild()
	arbiter := behavior.NewBuilder("arbiter").
		Location("free", "held").
		Int("grants", 0).
		Port("grant", "grants").
		Port("back").
		TransitionG("free", "grant", "held", nil,
			expr.Set("grants", expr.Add(expr.V("grants"), expr.I(1)))).
		Transition("held", "back", "free").
		MustBuild()
	b := core.NewSystem(fmt.Sprintf("conflict-%d", n)).Add(arbiter)
	for i := 0; i < n; i++ {
		w := fmt.Sprintf("w%d", i)
		b.AddAs(w, worker)
		b.ConnectGD(fmt.Sprintf("take%d", i), nil,
			expr.Set(w+".got", expr.V("arbiter.grants")),
			core.P(w, "acquire"), core.P("arbiter", "grant"))
		b.Connect(fmt.Sprintf("give%d", i), core.P(w, "release"), core.P("arbiter", "back"))
	}
	// Ordered priorities stress the per-round filtering as well.
	for i := 1; i < n; i++ {
		b.Priority(fmt.Sprintf("take%d", i), fmt.Sprintf("take%d", i-1))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRunMTSharedComponentRace drives the conflict-heavy system and
// validates the committed order through Replay.
func TestRunMTSharedComponentRace(t *testing.T) {
	sys := conflictSystem(t, 6)
	res, err := RunMT(sys, MTOptions{MaxSteps: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps committed")
	}
	if _, err := Replay(sys, res.Moves); err != nil {
		t.Fatalf("committed order is not a legal interleaving: %v", err)
	}
}

// TestRunMTConcurrentInstances runs many engine instances at once over
// the same validated systems, sharing atoms' compiled code and indices
// across engines — those must be read-only after Validate.
func TestRunMTConcurrentInstances(t *testing.T) {
	sys := conflictSystem(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunMT(sys, MTOptions{MaxSteps: 120})
			if err != nil {
				errs <- err
				return
			}
			if _, err := Replay(sys, res.Moves); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRunMTAgainstSingleThreaded cross-checks the two engines on the
// same model: every label the MT engine commits must be replayable, and
// the single-threaded engine must make progress on the same system.
func TestRunMTAgainstSingleThreaded(t *testing.T) {
	sys := conflictSystem(t, 3)
	st, err := Run(sys, Options{MaxSteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 200 || st.Deadlocked {
		t.Fatalf("single-threaded run: steps=%d deadlocked=%v", st.Steps, st.Deadlocked)
	}
	mt, err := RunMT(sys, MTOptions{MaxSteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Steps != 200 || mt.Deadlocked {
		t.Fatalf("multi-threaded run: steps=%d deadlocked=%v", mt.Steps, mt.Deadlocked)
	}
	if _, err := Replay(sys, mt.Moves); err != nil {
		t.Fatal(err)
	}
}

package engine

import (
	"fmt"
	"sync"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// MTOptions configures the multi-threaded engine.
type MTOptions struct {
	// MaxSteps bounds the number of committed interactions; 0 means the
	// default of 10_000.
	MaxSteps int
}

// MTResult reports a multi-threaded run. Moves is the committed
// linearization: replaying it through the core semantics must succeed
// (see Replay), which is the engine's correctness witness.
type MTResult struct {
	Steps      int
	Deadlocked bool
	Moves      []core.Move
	Labels     []string
}

// offer is what a component goroutine reports to the engine: its enabled
// transitions per port and its variable values. The maps are owned by the
// component; the engine reads them only between receiving the offer and
// sending the matching command (the channel operations order those
// accesses, so no copy is needed).
type offer struct {
	comp    int
	enabled map[string][]int
	vars    expr.MapEnv
}

// command is what the engine sends back: fire transition trans with the
// (possibly updated) variable values, or stop.
type command struct {
	stop    bool
	trans   int
	updates expr.MapEnv
}

// RunMT executes sys with the multi-threaded engine: one goroutine per
// component, coordinated by the engine goroutine (this function).
// Interactions with pairwise-disjoint participants are committed in the
// same round and their component-local actions execute concurrently —
// this is where the multi-threaded engine gains over the single-threaded
// one when components perform real computation (experiment E8).
//
// Priorities are honoured among the interactions evaluable in a round,
// matching the BIP multi-threaded engine's partial-state semantics.
func RunMT(sys *core.System, opts MTOptions) (*MTResult, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000
	}
	n := len(sys.Atoms)
	offers := make(chan offer) // rendezvous with component goroutines
	cmds := make([]chan command, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cmds[i] = make(chan command, 1)
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			if err := componentLoop(sys.Atoms[ci], ci, offers, cmds[ci]); err != nil {
				errs <- err
			}
		}(i)
	}
	res, runErr := newCoordinator(sys).run(offers, cmds, maxSteps)
	// Shut every component down and wait.
	for i := 0; i < n; i++ {
		cmds[i] <- command{stop: true}
	}
	// Drain offers so components blocked on sending can see stop.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-offers:
		case err := <-errs:
			if runErr == nil {
				runErr = err
			}
		case <-done:
			if runErr != nil {
				return nil, runErr
			}
			return res, nil
		}
	}
}

// componentLoop is the body of one component goroutine: offer, await
// command, execute, repeat. The component's variable store is mutated in
// place: the engine has finished reading the offered map by the time the
// command arrives (channel ordering), so no per-step cloning is needed.
func componentLoop(atom *behavior.Atom, ci int, offers chan<- offer, cmds <-chan command) error {
	st := atom.InitialState()
	for {
		en := make(map[string][]int, len(atom.Ports))
		for _, p := range atom.Ports {
			ts, err := atom.EnabledView(st, p.Name)
			if err != nil {
				return fmt.Errorf("component %s: %w", atom.Name, err)
			}
			if len(ts) > 0 {
				en[p.Name] = ts
			}
		}
		// Offer current capabilities; the command may arrive before the
		// offer is consumed (stop case), so watch both.
		select {
		case offers <- offer{comp: ci, enabled: en, vars: st.Vars}:
		case c := <-cmds:
			if c.stop {
				return nil
			}
			return fmt.Errorf("component %s: execute before offer", atom.Name)
		}
		c := <-cmds
		if c.stop {
			return nil
		}
		// Apply the engine's variable updates (interaction data
		// transfer results), then fire the local transition. The local
		// action runs here, inside the component's own goroutine —
		// concurrently with other components' actions.
		for k, v := range c.updates {
			if err := st.Vars.Set(k, v); err != nil {
				return fmt.Errorf("component %s: %w", atom.Name, err)
			}
		}
		loc, err := atom.ExecInPlace(st, c.trans)
		if err != nil {
			return fmt.Errorf("component %s: %w", atom.Name, err)
		}
		st.Loc = loc
	}
}

// coordinator is the engine proper plus its incremental evaluation
// state. Only the interactions incident to components whose offers
// changed since the last round are re-evaluated; the rest keep their
// cached move sets. The qualified-name environment used by interaction
// guards, data transfer and priority conditions is likewise maintained
// incrementally as offers arrive.
type coordinator struct {
	sys     *core.System
	current []*offer
	ready   int

	env       expr.MapEnv   // qualified offer snapshot, updated per offer
	cache     [][]core.Move // cache[ii]: moves evaluable from current offers
	dirty     []bool
	moveBuf   []core.Move // scratch: assembled round moves
	enabled   []bool      // scratch: per-interaction enabledness
	choiceBuf []int       // scratch: cartesian-product cursor
}

func newCoordinator(sys *core.System) *coordinator {
	ni := len(sys.Interactions)
	c := &coordinator{
		sys:     sys,
		current: make([]*offer, len(sys.Atoms)),
		env:     make(expr.MapEnv),
		cache:   make([][]core.Move, ni),
		dirty:   make([]bool, ni),
		enabled: make([]bool, ni),
	}
	for ii := range c.dirty {
		c.dirty[ii] = true
	}
	return c
}

// install records a fresh offer: the environment entries of the
// component are updated and its incident interactions marked dirty.
func (c *coordinator) install(o offer) {
	if c.current[o.comp] == nil {
		c.ready++
	}
	oc := o
	c.current[o.comp] = &oc
	name := c.sys.Atoms[o.comp].Name
	for k, v := range o.vars {
		c.env[name+"."+k] = v
	}
	for _, ii := range c.sys.IncidentTo(o.comp) {
		c.dirty[ii] = true
	}
}

// invalidate drops a component's offer after its transition was
// commanded; its incident interactions can no longer be evaluated until
// a new offer arrives (which will mark them dirty again).
func (c *coordinator) invalidate(ci int) {
	c.current[ci] = nil
	c.ready--
	for _, ii := range c.sys.IncidentTo(ci) {
		c.dirty[ii] = true
		c.cache[ii] = c.cache[ii][:0]
	}
}

// run gathers offers, selects a maximal set of non-conflicting enabled
// interactions, and commits them.
func (c *coordinator) run(offers <-chan offer, cmds []chan command, maxSteps int) (*MTResult, error) {
	sys := c.sys
	n := len(sys.Atoms)
	res := &MTResult{}

	for res.Steps < maxSteps {
		// Wait for offers until every component is ready. (Partial-state
		// engines can fire earlier; waiting for quiescence keeps
		// priority evaluation faithful while still committing disjoint
		// interactions concurrently.)
		for c.ready < n {
			c.install(<-offers)
		}
		moves, err := c.evaluable()
		if err != nil {
			return nil, err
		}
		if len(moves) == 0 {
			res.Deadlocked = true
			return res, nil
		}
		// Greedy maximal set of participant-disjoint moves, in move
		// order (deterministic).
		busy := make([]bool, n)
		var batch []core.Move
		for _, m := range moves {
			conflict := false
			for _, ai := range sys.PortAtoms(m.Interaction) {
				if busy[ai] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for _, ai := range sys.PortAtoms(m.Interaction) {
				busy[ai] = true
			}
			batch = append(batch, m)
			if res.Steps+len(batch) >= maxSteps {
				break
			}
		}
		for _, m := range batch {
			if err := c.commit(m, cmds); err != nil {
				return nil, err
			}
			for _, ai := range sys.PortAtoms(m.Interaction) {
				c.invalidate(ai)
			}
			res.Moves = append(res.Moves, core.Move{
				Interaction: m.Interaction,
				Choices:     append([]int(nil), m.Choices...),
			})
			res.Labels = append(res.Labels, sys.Label(m))
			res.Steps++
		}
	}
	return res, nil
}

// evaluable computes the moves enabled according to the current offers,
// with priorities applied. Only dirty interactions are re-derived.
func (c *coordinator) evaluable() ([]core.Move, error) {
	sys := c.sys
	for ii, in := range sys.Interactions {
		if !c.dirty[ii] {
			continue
		}
		c.dirty[ii] = false
		c.cache[ii] = c.cache[ii][:0]
		pa := sys.PortAtoms(ii)
		// Resolve each port's option slice once (one map lookup per
		// port), not once per cartesian-product node.
		var optArr [8][]int
		var options [][]int
		if len(in.Ports) <= len(optArr) {
			options = optArr[:len(in.Ports)]
		} else {
			options = make([][]int, len(in.Ports))
		}
		ok := true
		for pi, pr := range in.Ports {
			o := c.current[pa[pi]]
			if o == nil || len(o.enabled[pr.Port]) == 0 {
				ok = false
				break
			}
			options[pi] = o.enabled[pr.Port]
		}
		if !ok {
			continue
		}
		if in.Guard != nil {
			g, err := expr.EvalBool(in.Guard, c.env)
			if err != nil {
				return nil, fmt.Errorf("engine: interaction %q: %w", in.Name, err)
			}
			if !g {
				continue
			}
		}
		// Cartesian product of per-port choices.
		if cap(c.choiceBuf) < len(in.Ports) {
			c.choiceBuf = make([]int, len(in.Ports))
		}
		choice := c.choiceBuf[:len(in.Ports)]
		var rec func(int)
		rec = func(pi int) {
			if pi == len(in.Ports) {
				c.cache[ii] = append(c.cache[ii], core.Move{
					Interaction: ii, Choices: append([]int(nil), choice...),
				})
				return
			}
			for _, t := range options[pi] {
				choice[pi] = t
				rec(pi + 1)
			}
		}
		rec(0)
	}
	for ii := range c.cache {
		c.enabled[ii] = len(c.cache[ii]) > 0
	}
	// Priority filtering over the evaluable set: the domination decision
	// itself is core's single implementation (System.Dominated), here
	// evaluated against the offer environment instead of a global state.
	out := c.moveBuf[:0]
	for ii, ms := range c.cache {
		if len(ms) == 0 {
			continue
		}
		dominated, err := sys.Dominated(ii, c.enabled, c.env)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		if !dominated {
			out = append(out, ms...)
		}
	}
	c.moveBuf = out
	return out, nil
}

// commit executes one interaction: data transfer on the offered
// snapshots, then an execute command to each participant.
func (c *coordinator) commit(m core.Move, cmds []chan command) error {
	sys := c.sys
	in := sys.Interactions[m.Interaction]
	if in.Action != nil {
		if err := in.Action.Exec(c.env); err != nil {
			return fmt.Errorf("engine: interaction %q: %w", in.Name, err)
		}
	}
	pa := sys.PortAtoms(m.Interaction)
	for pi, pr := range in.Ports {
		ci := pa[pi]
		updates := make(expr.MapEnv)
		prefix := pr.Comp + "."
		for qual := range sys.Scope(m.Interaction) {
			if len(qual) <= len(prefix) || qual[:len(prefix)] != prefix {
				continue
			}
			local := qual[len(prefix):]
			v, ok := c.env[qual]
			if !ok {
				continue
			}
			if old, _ := c.current[ci].vars.Get(local); !old.Equal(v) {
				updates[local] = v
			}
		}
		cmds[ci] <- command{trans: m.Choices[pi], updates: updates}
	}
	return nil
}

package engine

import (
	"fmt"
	"sync"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// MTOptions configures the multi-threaded engine.
type MTOptions struct {
	// MaxSteps bounds the number of committed interactions; 0 means the
	// default of 10_000.
	MaxSteps int
}

// MTResult reports a multi-threaded run. Moves is the committed
// linearization: replaying it through the core semantics must succeed
// (see Replay), which is the engine's correctness witness.
type MTResult struct {
	Steps      int
	Deadlocked bool
	Moves      []core.Move
	Labels     []string
}

// offer is what a component goroutine reports to the engine: its enabled
// transitions per port and a snapshot of its variables.
type offer struct {
	comp    int
	enabled map[string][]int
	vars    expr.MapEnv
}

// command is what the engine sends back: fire transition trans with the
// (possibly updated) variable values, or stop.
type command struct {
	stop    bool
	trans   int
	updates expr.MapEnv
}

// RunMT executes sys with the multi-threaded engine: one goroutine per
// component, coordinated by the engine goroutine (this function).
// Interactions with pairwise-disjoint participants are committed in the
// same round and their component-local actions execute concurrently —
// this is where the multi-threaded engine gains over the single-threaded
// one when components perform real computation (experiment E8).
//
// Priorities are honoured among the interactions evaluable in a round,
// matching the BIP multi-threaded engine's partial-state semantics.
func RunMT(sys *core.System, opts MTOptions) (*MTResult, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000
	}
	n := len(sys.Atoms)
	offers := make(chan offer) // rendezvous with component goroutines
	cmds := make([]chan command, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cmds[i] = make(chan command, 1)
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			if err := componentLoop(sys.Atoms[ci], ci, offers, cmds[ci]); err != nil {
				errs <- err
			}
		}(i)
	}
	res, runErr := coordinate(sys, offers, cmds, maxSteps)
	// Shut every component down and wait.
	for i := 0; i < n; i++ {
		cmds[i] <- command{stop: true}
	}
	// Drain offers so components blocked on sending can see stop.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-offers:
		case err := <-errs:
			if runErr == nil {
				runErr = err
			}
		case <-done:
			if runErr != nil {
				return nil, runErr
			}
			return res, nil
		}
	}
}

// componentLoop is the body of one component goroutine: offer, await
// command, execute, repeat.
func componentLoop(atom *behavior.Atom, ci int, offers chan<- offer, cmds <-chan command) error {
	st := atom.InitialState()
	for {
		en := make(map[string][]int, len(atom.Ports))
		for _, p := range atom.Ports {
			ts, err := atom.Enabled(st, p.Name)
			if err != nil {
				return fmt.Errorf("component %s: %w", atom.Name, err)
			}
			if len(ts) > 0 {
				en[p.Name] = ts
			}
		}
		// Offer current capabilities; the command may arrive before the
		// offer is consumed (stop case), so watch both.
		select {
		case offers <- offer{comp: ci, enabled: en, vars: st.Vars.Clone()}:
		case c := <-cmds:
			if c.stop {
				return nil
			}
			return fmt.Errorf("component %s: execute before offer", atom.Name)
		}
		c := <-cmds
		if c.stop {
			return nil
		}
		// Apply the engine's variable updates (interaction data
		// transfer results), then fire the local transition. The local
		// action runs here, inside the component's own goroutine —
		// concurrently with other components' actions.
		for k, v := range c.updates {
			if err := st.Vars.Set(k, v); err != nil {
				return fmt.Errorf("component %s: %w", atom.Name, err)
			}
		}
		next, err := atom.Exec(st, c.trans)
		if err != nil {
			return fmt.Errorf("component %s: %w", atom.Name, err)
		}
		st = next
	}
}

// coordinate is the engine proper: it gathers offers, selects a maximal
// set of non-conflicting enabled interactions, and commits them.
func coordinate(sys *core.System, offers <-chan offer, cmds []chan command, maxSteps int) (*MTResult, error) {
	n := len(sys.Atoms)
	current := make([]*offer, n)
	ready := 0
	res := &MTResult{}

	for res.Steps < maxSteps {
		// Wait for offers until every component is ready. (Partial-state
		// engines can fire earlier; waiting for quiescence keeps
		// priority evaluation faithful while still committing disjoint
		// interactions concurrently.)
		for ready < n {
			o := <-offers
			if current[o.comp] == nil {
				ready++
			}
			oc := o
			current[o.comp] = &oc
		}
		moves, err := evaluable(sys, current)
		if err != nil {
			return nil, err
		}
		if len(moves) == 0 {
			res.Deadlocked = true
			return res, nil
		}
		// Greedy maximal set of participant-disjoint moves, in move
		// order (deterministic).
		busy := make([]bool, n)
		var batch []core.Move
		for _, m := range moves {
			conflict := false
			for _, pr := range sys.Interactions[m.Interaction].Ports {
				if busy[sys.AtomIndex(pr.Comp)] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for _, pr := range sys.Interactions[m.Interaction].Ports {
				busy[sys.AtomIndex(pr.Comp)] = true
			}
			batch = append(batch, m)
			if res.Steps+len(batch) >= maxSteps {
				break
			}
		}
		for _, m := range batch {
			if err := commit(sys, m, current, cmds); err != nil {
				return nil, err
			}
			for _, pr := range sys.Interactions[m.Interaction].Ports {
				ci := sys.AtomIndex(pr.Comp)
				current[ci] = nil
				ready--
			}
			res.Moves = append(res.Moves, m)
			res.Labels = append(res.Labels, sys.Label(m))
			res.Steps++
		}
	}
	return res, nil
}

// evaluable computes the moves enabled according to the current offers,
// with priorities applied.
func evaluable(sys *core.System, current []*offer) ([]core.Move, error) {
	env := offerEnv(sys, current)
	var moves []core.Move
	enabledInter := make(map[int]bool)
	for ii, in := range sys.Interactions {
		options := make([][]int, len(in.Ports))
		ok := true
		for pi, pr := range in.Ports {
			o := current[sys.AtomIndex(pr.Comp)]
			if o == nil || len(o.enabled[pr.Port]) == 0 {
				ok = false
				break
			}
			options[pi] = o.enabled[pr.Port]
		}
		if !ok {
			continue
		}
		if in.Guard != nil {
			g, err := expr.EvalBool(in.Guard, env)
			if err != nil {
				return nil, fmt.Errorf("engine: interaction %q: %w", in.Name, err)
			}
			if !g {
				continue
			}
		}
		enabledInter[ii] = true
		choice := make([]int, len(options))
		var rec func(int)
		rec = func(pi int) {
			if pi == len(options) {
				moves = append(moves, core.Move{Interaction: ii, Choices: append([]int(nil), choice...)})
				return
			}
			for _, t := range options[pi] {
				choice[pi] = t
				rec(pi + 1)
			}
		}
		rec(0)
	}
	// Priority filtering over the evaluable set.
	var out []core.Move
	for _, m := range moves {
		dominated := false
		for _, p := range sys.Priorities {
			if sys.InteractionIndex(p.Low) != m.Interaction || !enabledInter[sys.InteractionIndex(p.High)] {
				continue
			}
			cond, err := expr.EvalBool(p.When, env)
			if err != nil {
				return nil, fmt.Errorf("engine: priority %s: %w", p, err)
			}
			if cond {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, m)
		}
	}
	return out, nil
}

// commit executes one interaction: data transfer on the offered
// snapshots, then an execute command to each participant.
func commit(sys *core.System, m core.Move, current []*offer, cmds []chan command) error {
	in := sys.Interactions[m.Interaction]
	env := offerEnv(sys, current)
	if in.Action != nil {
		if err := in.Action.Exec(env); err != nil {
			return fmt.Errorf("engine: interaction %q: %w", in.Name, err)
		}
	}
	for pi, pr := range in.Ports {
		ci := sys.AtomIndex(pr.Comp)
		updates := make(expr.MapEnv)
		prefix := pr.Comp + "."
		for k, v := range env {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				old, _ := current[ci].vars.Get(k[len(prefix):])
				if !old.Equal(v) {
					updates[k[len(prefix):]] = v
				}
			}
		}
		cmds[ci] <- command{trans: m.Choices[pi], updates: updates}
	}
	return nil
}

// offerEnv builds a qualified-name environment from the offered variable
// snapshots.
func offerEnv(sys *core.System, current []*offer) expr.MapEnv {
	env := make(expr.MapEnv)
	for ci, o := range current {
		if o == nil {
			continue
		}
		name := sys.Atoms[ci].Name
		for k, v := range o.vars {
			env[name+"."+k] = v
		}
	}
	return env
}

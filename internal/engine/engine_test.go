package engine

import (
	"errors"
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
	"bip/models"
)

func TestRunTokenRing(t *testing.T) {
	sys, err := models.TokenRing(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Options{MaxSteps: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Steps != 8 || res.Deadlocked {
		t.Fatalf("steps=%d deadlocked=%v, want 8 steps", res.Steps, res.Deadlocked)
	}
	// The token visits stations in order: pass0, pass1, pass2, pass3,
	// pass0, ...
	want := []string{"pass0", "pass1", "pass2", "pass3", "pass0", "pass1", "pass2", "pass3"}
	for i, lab := range res.Labels {
		if lab != want[i] {
			t.Fatalf("labels = %v, want %v", res.Labels, want)
		}
	}
	// After two full rounds the token is back at station 0, which has
	// seen it 3 times (initial + 2 passes).
	if v, _ := res.Final.Vars[sys.AtomIndex("st0")].Get("seen"); !v.Equal(expr.IntVal(3)) {
		t.Fatalf("st0.seen = %v, want 3", v)
	}
}

func TestRunDeadlockStops(t *testing.T) {
	oneShot := behavior.NewBuilder("x").
		Location("s", "t").Port("p").Transition("s", "p", "t").MustBuild()
	sys := core.NewSystem("stopper").
		Add(oneShot).Singleton("x", "p").MustBuild()
	res, err := Run(sys, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked || res.Steps != 1 {
		t.Fatalf("steps=%d deadlocked=%v, want 1 step then deadlock", res.Steps, res.Deadlocked)
	}
}

func TestRunRandomSchedulerReproducible(t *testing.T) {
	sys, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(sys, Options{MaxSteps: 200, Scheduler: NewRandomScheduler(42)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sys, Options{MaxSteps: 200, Scheduler: NewRandomScheduler(42)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r1.Labels, ",") != strings.Join(r2.Labels, ",") {
		t.Fatal("same seed must give the same run")
	}
	r3, err := Run(sys, Options{MaxSteps: 200, Scheduler: NewRandomScheduler(43)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r1.Labels, ",") == strings.Join(r3.Labels, ",") {
		t.Fatal("different seeds should (overwhelmingly) give different runs")
	}
}

func TestRunOnStepAndInvariantCheck(t *testing.T) {
	sys, err := models.ProducerConsumer(2)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	res, err := Run(sys, Options{
		MaxSteps:        50,
		CheckInvariants: true,
		OnStep:          func(int, string, core.State) { steps++ },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if steps != res.Steps {
		t.Fatalf("OnStep called %d times for %d steps", steps, res.Steps)
	}
}

func TestRunInvariantViolationAborts(t *testing.T) {
	bad := behavior.NewBuilder("bad").
		Location("s").
		Int("x", 0).
		Port("p", "x").
		TransitionG("s", "p", "s", nil, expr.Set("x", expr.Sub(expr.V("x"), expr.I(1)))).
		Invariant(expr.Ge(expr.V("x"), expr.I(0))).
		MustBuild()
	sys := core.NewSystem("bad").Add(bad).Singleton("bad", "p").MustBuild()
	_, err := Run(sys, Options{MaxSteps: 5, CheckInvariants: true})
	if err == nil || !errors.Is(err, ErrInvariantViolated) {
		t.Fatalf("err = %v, want ErrInvariantViolated", err)
	}
}

func TestTemperaturePriorityScheduling(t *testing.T) {
	// The priorities prefer the most rested rod; over a long run the
	// rods alternate rather than one being hammered.
	sys, err := models.Temperature(0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	cool1, cool2 := 0, 0
	for _, l := range res.Labels {
		switch l {
		case "cool1":
			cool1++
		case "cool2":
			cool2++
		}
	}
	if cool1 == 0 || cool2 == 0 {
		t.Fatalf("rod usage cool1=%d cool2=%d: priority scheduling must alternate rods", cool1, cool2)
	}
	if diff := cool1 - cool2; diff < -1 || diff > 1 {
		t.Fatalf("rod usage should balance: cool1=%d cool2=%d", cool1, cool2)
	}
}

func TestRunMTMatchesSemantics(t *testing.T) {
	sys, err := models.Philosophers(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMT(sys, MTOptions{MaxSteps: 200})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps committed")
	}
	// Correctness witness: the committed linearization replays through
	// the reference semantics.
	if _, err := Replay(sys, res.Moves); err != nil {
		t.Fatalf("committed order is not a legal interleaving: %v", err)
	}
}

func TestRunMTDataTransfer(t *testing.T) {
	sys, err := models.ProducerConsumer(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMT(sys, MTOptions{MaxSteps: 100})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	final, err := Replay(sys, res.Moves)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Conservation: produced = consumed + in-buffer.
	prod, _ := final.Vars[sys.AtomIndex("producer")].Get("produced")
	cons, _ := final.Vars[sys.AtomIndex("consumer")].Get("consumed")
	cnt, _ := final.Vars[sys.AtomIndex("buffer")].Get("count")
	p, _ := prod.Int()
	c, _ := cons.Int()
	k, _ := cnt.Int()
	if p != c+k {
		t.Fatalf("conservation violated: produced=%d consumed=%d buffered=%d", p, c, k)
	}
}

func TestRunMTDeadlockStops(t *testing.T) {
	oneShot := behavior.NewBuilder("x").
		Location("s", "t").Port("p").Transition("s", "p", "t").MustBuild()
	sys := core.NewSystem("stopper").
		AddAs("a", oneShot).
		AddAs("b", oneShot).
		Connect("step", core.P("a", "p"), core.P("b", "p")).
		MustBuild()
	res, err := RunMT(sys, MTOptions{})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	if !res.Deadlocked || res.Steps != 1 {
		t.Fatalf("steps=%d deadlocked=%v, want 1 then deadlock", res.Steps, res.Deadlocked)
	}
}

func TestRunMTConcurrentBatches(t *testing.T) {
	// Two independent ping pairs: each round commits both interactions.
	ping := behavior.NewBuilder("ping").
		Location("a", "b").
		Port("hit").Port("back").
		Transition("a", "hit", "b").
		Transition("b", "back", "a").
		MustBuild()
	sys := core.NewSystem("pairs").
		AddAs("l1", ping).AddAs("r1", ping).
		AddAs("l2", ping).AddAs("r2", ping).
		Connect("hit1", core.P("l1", "hit"), core.P("r1", "hit")).
		Connect("back1", core.P("l1", "back"), core.P("r1", "back")).
		Connect("hit2", core.P("l2", "hit"), core.P("r2", "hit")).
		Connect("back2", core.P("l2", "back"), core.P("r2", "back")).
		MustBuild()
	res, err := RunMT(sys, MTOptions{MaxSteps: 40})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	if _, err := Replay(sys, res.Moves); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Both pairs progress: count hits on each.
	h1, h2 := 0, 0
	for _, l := range res.Labels {
		switch l {
		case "hit1":
			h1++
		case "hit2":
			h2++
		}
	}
	if h1 == 0 || h2 == 0 {
		t.Fatalf("both pairs should progress: hit1=%d hit2=%d", h1, h2)
	}
}

func TestRunMTHonoursPriorities(t *testing.T) {
	a := behavior.NewBuilder("a").
		Location("s").
		Port("lo").Port("hi").
		Transition("s", "lo", "s").
		Transition("s", "hi", "s").
		MustBuild()
	sys := core.NewSystem("prio").
		Add(a).
		Singleton("a", "lo").
		Singleton("a", "hi").
		Priority("a.lo", "a.hi").
		MustBuild()
	res, err := RunMT(sys, MTOptions{MaxSteps: 20})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	for _, l := range res.Labels {
		if l == "a.lo" {
			t.Fatal("dominated interaction fired under the MT engine")
		}
	}
}

func TestReplayRejectsIllegalSequence(t *testing.T) {
	sys, err := models.TokenRing(3)
	if err != nil {
		t.Fatal(err)
	}
	// pass1 is not enabled initially (token at station 0).
	illegal := []core.Move{{Interaction: sys.InteractionIndex("pass1"), Choices: []int{0, 0}}}
	if _, err := Replay(sys, illegal); err == nil {
		t.Fatal("replay must reject a move that was not enabled")
	}
}

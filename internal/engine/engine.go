// Package engine provides BIP run-times: a single-threaded engine that
// executes the operational semantics directly, and a multi-threaded
// engine where each atomic component runs in its own goroutine and a
// coordinator executes sets of non-conflicting interactions concurrently.
// These mirror the two engines of the BIP toolset (§5.6, Fig. 5.7):
// components never communicate directly, only through the engine.
package engine

import (
	"errors"
	"fmt"
	"math/rand"

	"bip/internal/core"
)

// Scheduler chooses among the enabled moves of a step.
type Scheduler interface {
	// Pick returns the index of the chosen move within moves (non-empty).
	Pick(sys *core.System, st core.State, moves []core.Move) int
}

// FirstScheduler deterministically picks the first enabled move, which is
// the lowest-numbered interaction in declaration order.
type FirstScheduler struct{}

var _ Scheduler = FirstScheduler{}

// Pick implements Scheduler.
func (FirstScheduler) Pick(_ *core.System, _ core.State, _ []core.Move) int { return 0 }

// RandomScheduler picks uniformly with a seeded source, making runs
// reproducible.
type RandomScheduler struct {
	rng *rand.Rand
}

var _ Scheduler = (*RandomScheduler)(nil)

// NewRandomScheduler returns a seeded random scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (r *RandomScheduler) Pick(_ *core.System, _ core.State, moves []core.Move) int {
	return r.rng.Intn(len(moves))
}

// Options configures a run.
type Options struct {
	// MaxSteps bounds the run; 0 means the default of 10_000.
	MaxSteps int
	// Scheduler resolves non-determinism; nil means FirstScheduler.
	Scheduler Scheduler
	// OnStep, when non-nil, observes each executed step.
	OnStep func(step int, label string, st core.State)
	// CheckInvariants verifies component invariants after every step and
	// aborts the run on violation.
	CheckInvariants bool
}

// Result reports a finished run.
type Result struct {
	Steps      int
	Deadlocked bool
	Labels     []string
	Final      core.State
}

// ErrInvariantViolated is wrapped by run errors caused by a component
// invariant failing at runtime.
var ErrInvariantViolated = errors.New("invariant violated")

// Run executes sys with the single-threaded engine until deadlock or the
// step bound. The run is driven by an incremental step context
// (core.Stepper): after each fired move only the interactions incident to
// its participants are re-examined, and the state advances in place
// instead of being cloned per step. States handed to Scheduler.Pick are
// live views and must not be retained; OnStep receives a stable snapshot.
func Run(sys *core.System, opts Options) (*Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10_000
	}
	sched := opts.Scheduler
	if sched == nil {
		sched = FirstScheduler{}
	}
	sp := sys.NewStepper()
	var inv *core.InvariantChecker
	if opts.CheckInvariants {
		inv = sys.NewInvariantChecker()
	}
	res := &Result{}
	for res.Steps < maxSteps {
		moves, err := sp.Enabled()
		if err != nil {
			return nil, fmt.Errorf("engine: step %d: %w", res.Steps, err)
		}
		if len(moves) == 0 {
			res.Deadlocked = true
			break
		}
		m := moves[sched.Pick(sys, sp.State(), moves)]
		if err := sp.Exec(m); err != nil {
			return nil, fmt.Errorf("engine: step %d: %w", res.Steps, err)
		}
		if opts.CheckInvariants {
			if err := inv.Check(sp.State()); err != nil {
				return nil, fmt.Errorf("engine: step %d: %w: %v", res.Steps, ErrInvariantViolated, err)
			}
		}
		label := sys.Label(m)
		res.Labels = append(res.Labels, label)
		res.Steps++
		if opts.OnStep != nil {
			opts.OnStep(res.Steps, label, sp.State().Clone())
		}
	}
	res.Final = sp.State()
	return res, nil
}

// Replay re-executes a recorded move sequence through the operational
// semantics, verifying that each move was enabled when fired. It is used
// to validate that the multi-threaded engine's committed order is a legal
// interleaving (its correctness witness).
func Replay(sys *core.System, movesSeq []core.Move) (core.State, error) {
	sp := sys.NewStepper()
	for i, m := range movesSeq {
		enabled, err := sp.EnabledRaw()
		if err != nil {
			return core.State{}, fmt.Errorf("replay step %d: %w", i, err)
		}
		found := false
		for _, e := range enabled {
			if e.Interaction == m.Interaction && equalChoices(e.Choices, m.Choices) {
				found = true
				break
			}
		}
		if !found {
			return core.State{}, fmt.Errorf("replay step %d: move %s was not enabled", i, sys.Label(m))
		}
		if err := sp.Exec(m); err != nil {
			return core.State{}, fmt.Errorf("replay step %d: %w", i, err)
		}
	}
	return sp.State(), nil
}

func equalChoices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package refine implements the paper's vertical-correctness
// transformation (§5.5.3, Fig. 5.4): a multiparty interaction a is
// replaced by the protocol sequence str(a) rcv(a) ack(a) cmp(a) over
// send/receive-style binary interactions, coordinated by an added
// component D.
//
// The refinement is the *naive* one of the figure: the initiator commits
// with str(a) knowing only its own readiness. For a conflict-free
// interaction this is observationally equivalent to the original
// (experiment E5); under conflicts it is not stable — the paper's
// three-component counterexample acquires a deadlock (experiment E6),
// which is precisely why the distributed transformation of package
// distributed adds a reservation/conflict-resolution layer.
package refine

import (
	"fmt"
	"strconv"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
	"bip/internal/lts"
)

// role records, for one component, its part in one refined interaction.
type role struct {
	inter     *core.Interaction
	port      string
	initiator bool
	index     int // participant index among non-initiators
}

// Refine rewrites sys, replacing each interaction named in initiators by
// its str/rcv/ack/cmp protocol. The map value selects the initiating
// component (it must participate in the interaction). Interactions not
// named are kept as they are.
//
// Refined interactions must be pure synchronizations (no guard, no data
// transfer): the protocol would otherwise need to carry data, which is
// the job of package distributed.
func Refine(sys *core.System, initiators map[string]string) (*core.System, error) {
	b := core.NewSystem(sys.Name + "-sr")

	// Collect, per component, the rewrites needed: for each refined
	// interaction it participates in, whether it initiates.
	roles := make(map[string][]role)
	for name, init := range initiators {
		ii := sys.InteractionIndex(name)
		if ii < 0 {
			return nil, fmt.Errorf("refine: unknown interaction %q", name)
		}
		in := sys.Interactions[ii]
		if in.Guard != nil || in.Action != nil {
			return nil, fmt.Errorf("refine: interaction %q carries data; use the distributed transformation", name)
		}
		found := false
		idx := 0
		for _, pr := range in.Ports {
			r := role{inter: in, port: pr.Port, initiator: pr.Comp == init}
			if !r.initiator {
				r.index = idx
				idx++
			} else {
				found = true
			}
			roles[pr.Comp] = append(roles[pr.Comp], r)
		}
		if !found {
			return nil, fmt.Errorf("refine: initiator %q does not participate in %q", init, name)
		}
	}

	// Rewrite atoms.
	for _, atom := range sys.Atoms {
		rs := roles[atom.Name]
		if len(rs) == 0 {
			b.Add(atom)
			continue
		}
		na, err := rewriteAtom(atom, rs)
		if err != nil {
			return nil, err
		}
		b.Add(na)
	}

	// Keep unrefined interactions; add protocol components and their
	// interactions for refined ones.
	for _, in := range sys.Interactions {
		if _, refined := initiators[in.Name]; !refined {
			b.ConnectGD(in.Name, in.Guard, in.Action, in.Ports...)
			continue
		}
		init := initiators[in.Name]
		d, err := coordinator(in, init)
		if err != nil {
			return nil, err
		}
		dName := "D_" + in.Name
		b.AddAs(dName, d)
		b.Connect("str("+in.Name+")", core.P(init, "str_"+in.Name), core.P(dName, "s"))
		idx := 0
		for _, pr := range in.Ports {
			if pr.Comp == init {
				continue
			}
			si := strconv.Itoa(idx)
			b.Connect("rcv("+in.Name+")"+si, core.P(pr.Comp, "rcv_"+in.Name), core.P(dName, "r"+si))
			b.Connect("ack("+in.Name+")"+si, core.P(pr.Comp, "ack_"+in.Name), core.P(dName, "k"+si))
			idx++
		}
		b.Connect("cmp("+in.Name+")", core.P(init, "cmp_"+in.Name), core.P(dName, "c"))
	}
	for _, p := range sys.Priorities {
		if _, lo := initiators[p.Low]; lo {
			return nil, fmt.Errorf("refine: priority on refined interaction %q unsupported", p.Low)
		}
		if _, hi := initiators[p.High]; hi {
			return nil, fmt.Errorf("refine: priority on refined interaction %q unsupported", p.High)
		}
		b.PriorityWhen(p.Low, p.High, p.When)
	}
	return b.Build()
}

// rewriteAtom splits every transition on a refined port into the
// two-step protocol form, adding a wait location per transition.
func rewriteAtom(atom *behavior.Atom, rs []role) (*behavior.Atom, error) {
	refined := make(map[string]struct {
		inter     string
		initiator bool
	})
	for _, r := range rs {
		if prev, dup := refined[r.port]; dup && prev.inter != r.inter.Name {
			return nil, fmt.Errorf("refine: port %s.%s used by two refined interactions", atom.Name, r.port)
		}
		refined[r.port] = struct {
			inter     string
			initiator bool
		}{r.inter.Name, r.initiator}
	}

	nb := behavior.NewBuilder(atom.Name).
		Location(atom.Locations...).
		Initial(atom.Initial)
	for _, v := range atom.Vars {
		if v.Init.Kind() == expr.KindBool {
			bv, _ := v.Init.Bool()
			nb.Bool(v.Name, bv)
		} else {
			iv, _ := v.Init.Int()
			nb.Int(v.Name, iv)
		}
	}
	for _, p := range atom.Ports {
		if _, ok := refined[p.Name]; ok {
			continue // replaced by protocol ports below
		}
		nb.Port(p.Name, p.Vars...)
	}
	declared := make(map[string]bool)
	for port, info := range refined {
		_ = port
		first, second := "rcv_"+info.inter, "ack_"+info.inter
		if info.initiator {
			first, second = "str_"+info.inter, "cmp_"+info.inter
		}
		if !declared[first] {
			nb.Port(first)
			nb.Port(second)
			declared[first] = true
		}
	}
	for ti, t := range atom.Transitions {
		info, ok := refined[t.Port]
		if !ok {
			nb.TransitionG(t.From, t.Port, t.To, t.Guard, t.Action)
			continue
		}
		first, second := "rcv_"+info.inter, "ack_"+info.inter
		if info.initiator {
			first, second = "str_"+info.inter, "cmp_"+info.inter
		}
		wait := fmt.Sprintf("w%d_%s", ti, info.inter)
		nb.Location(wait)
		// The guard stays on the first step (commitment point); the
		// action moves to the completion step, matching the original's
		// atomicity at the observation point.
		nb.TransitionG(t.From, first, wait, t.Guard, nil)
		nb.TransitionG(wait, second, t.To, nil, t.Action)
	}
	return nb.Build()
}

// coordinator builds the D component of Fig. 5.4 for one interaction:
// s → r0 → k0 → r1 → k1 → … → c, cyclically.
func coordinator(in *core.Interaction, initiator string) (*behavior.Atom, error) {
	nb := behavior.NewBuilder("D")
	others := 0
	for _, pr := range in.Ports {
		if pr.Comp != initiator {
			others++
		}
	}
	// Locations d0 … d_{2·others+1}.
	n := 2*others + 2
	locs := make([]string, n)
	for i := range locs {
		locs[i] = "d" + strconv.Itoa(i)
	}
	nb.Location(locs...).Initial("d0")
	nb.Port("s")
	nb.Transition("d0", "s", "d1")
	for i := 0; i < others; i++ {
		si := strconv.Itoa(i)
		nb.Port("r" + si)
		nb.Port("k" + si)
		nb.Transition(locs[1+2*i], "r"+si, locs[2+2*i])
		nb.Transition(locs[2+2*i], "k"+si, locs[3+2*i])
	}
	nb.Port("c")
	nb.Transition(locs[n-1], "c", "d0")
	return nb.Build()
}

// Observation returns the relabeling under which a refined system is
// compared with its original: protocol steps are silent and each
// cmp(a) observes as a. This is the observation criterion of §5.5.3.
func Observation(refined []string) lts.Relabel {
	silent := make(map[string]bool)
	complete := make(map[string]string)
	for _, name := range refined {
		silent["str("+name+")"] = true
		// Up to 8 non-initiator participants is ample for the models
		// used here.
		for i := 0; i < 8; i++ {
			si := strconv.Itoa(i)
			silent["rcv("+name+")"+si] = true
			silent["ack("+name+")"+si] = true
		}
		complete["cmp("+name+")"] = name
	}
	return func(label string) (string, bool) {
		if silent[label] {
			return "", false
		}
		if to, ok := complete[label]; ok {
			return to, true
		}
		return label, true
	}
}

package refine

import (
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/distributed"
	"bip/internal/lts"
)

// pingPair is the top-of-Fig-5.4 setting: two components, one
// conflict-free interaction (plus a second to keep the system live).
func pingPair(t *testing.T) *core.System {
	t.Helper()
	ping := behavior.NewBuilder("ping").
		Location("i", "j").
		Port("hit").Port("back").
		Transition("i", "hit", "j").
		Transition("j", "back", "i").
		MustBuild()
	return core.NewSystem("pair").
		AddAs("l", ping).AddAs("r", ping).
		Connect("a", core.P("l", "hit"), core.P("r", "hit")).
		Connect("z", core.P("l", "back"), core.P("r", "back")).
		MustBuild()
}

func TestRefineSingleInteractionEquivalent(t *testing.T) {
	sys := pingPair(t)
	ref, err := Refine(sys, map[string]string{"a": "l"})
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	lSpec, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lImpl, err := lts.Explore(ref, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation([]string{"a"})
	// E5: the refinement is observationally trace-equivalent (str, rcv,
	// ack silent; cmp(a) ≡ a) …
	if !lts.ObsTraceEquivalent(lImpl, lSpec, obs, nil) {
		ok, trace := lts.ObsTraceIncluded(lImpl, lSpec, obs, nil)
		t.Fatalf("refined not equivalent (impl⊆spec=%v, distinguishing=%v)", ok, trace)
	}
	// … and preserves deadlock-freedom.
	free, err := lImpl.DeadlockFree()
	if err != nil || !free {
		t.Fatalf("refined system must stay deadlock-free: %v %v", free, err)
	}
}

func TestRefineThreePartyInteraction(t *testing.T) {
	// A 3-party rendezvous refines to str, rcv0, ack0, rcv1, ack1, cmp.
	leaf := behavior.NewBuilder("leaf").
		Location("s").
		Port("go").
		Transition("s", "go", "s").
		MustBuild()
	sys := core.NewSystem("tri").
		AddAs("x", leaf).AddAs("y", leaf).AddAs("z", leaf).
		Connect("a", core.P("x", "go"), core.P("y", "go"), core.P("z", "go")).
		MustBuild()
	ref, err := Refine(sys, map[string]string{"a": "x"})
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	lSpec, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lImpl, err := lts.Explore(ref, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lts.ObsTraceEquivalent(lImpl, lSpec, Observation([]string{"a"}), nil) {
		t.Fatal("3-party refinement must be observationally equivalent")
	}
}

// stabilityCounterexample is the bottom-of-Fig-5.4 instance: a = (C1,C2)
// is never enabled in the original (C1's a-transition is unreachable),
// b = (C2,C3) loops forever. The original is deadlock-free; naive
// refinement lets C2 commit to a with str(a) and block the whole system.
func stabilityCounterexample(t *testing.T) *core.System {
	t.Helper()
	c1 := behavior.NewBuilder("C1").
		Location("s1", "u1", "t1").
		Port("pa").
		Transition("u1", "pa", "t1"). // unreachable from s1
		MustBuild()
	c2 := behavior.NewBuilder("C2").
		Location("s2").
		Port("pa").Port("pb").
		Transition("s2", "pa", "s2").
		Transition("s2", "pb", "s2").
		MustBuild()
	c3 := behavior.NewBuilder("C3").
		Location("s3").
		Port("pb").
		Transition("s3", "pb", "s3").
		MustBuild()
	return core.NewSystem("fig54bottom").
		Add(c1).Add(c2).Add(c3).
		Connect("a", core.P("C1", "pa"), core.P("C2", "pa")).
		Connect("b", core.P("C2", "pb"), core.P("C3", "pb")).
		MustBuild()
}

func TestRefinementNotStableUnderConflict(t *testing.T) {
	sys := stabilityCounterexample(t)
	lSpec, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if free, err := lSpec.DeadlockFree(); err != nil || !free {
		t.Fatalf("original must be deadlock-free (b loops): %v %v", free, err)
	}

	// Naive refinement with the shared component C2 initiating both:
	// C2 may select str(a), committing to an interaction whose partner
	// will never be ready — the refined system acquires a deadlock.
	ref, err := Refine(sys, map[string]string{"a": "C2", "b": "C2"})
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	lImpl, err := lts.Explore(ref, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	deadlocks := lImpl.Deadlocks()
	if len(deadlocks) == 0 {
		t.Fatal("naive refinement must introduce a reachable deadlock (Fig 5.4 bottom)")
	}
	// The deadlock is reached without completing any interaction: its
	// path contains only protocol steps, no cmp.
	path := lImpl.PathTo(deadlocks[0])
	for _, lab := range path {
		if strings.HasPrefix(lab, "cmp(") {
			// Acceptable: some deadlocks occur after b completions; we
			// only need one silent-path deadlock. Keep scanning.
			return
		}
	}
	// Observable traces are still included in the spec's (the failure is
	// deadlock-freedom, condition 2 of ≥, not trace inclusion).
	ok, trace := lts.ObsTraceIncluded(lImpl, lSpec, Observation([]string{"a", "b"}), nil)
	if !ok {
		t.Fatalf("trace inclusion should still hold; distinguishing = %v", trace)
	}
}

func TestReservationRestoresCorrectness(t *testing.T) {
	// The same conflicted system executed through the reservation-based
	// distributed transformation keeps making progress: b commits
	// repeatedly, no deadlock.
	sys := stabilityCounterexample(t)
	d, err := distributed.Deploy(sys, distributed.Config{
		CRP: distributed.Ordered, Seed: 4, MaxCommits: 20, MaxMessages: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Commits < 20 {
		t.Fatalf("reservation protocol stalled: %d commits", stats.Commits)
	}
	for _, l := range stats.Labels {
		if l != "b" {
			t.Fatalf("only b can commit, got %q", l)
		}
	}
}

func TestRefineErrors(t *testing.T) {
	sys := pingPair(t)
	if _, err := Refine(sys, map[string]string{"ghost": "l"}); err == nil {
		t.Fatal("unknown interaction must fail")
	}
	if _, err := Refine(sys, map[string]string{"a": "nobody"}); err == nil {
		t.Fatal("non-participant initiator must fail")
	}
}

func TestObservationMapping(t *testing.T) {
	obs := Observation([]string{"a"})
	if _, vis := obs("str(a)"); vis {
		t.Fatal("str(a) must be silent")
	}
	if _, vis := obs("rcv(a)0"); vis {
		t.Fatal("rcv(a)0 must be silent")
	}
	if l, vis := obs("cmp(a)"); !vis || l != "a" {
		t.Fatalf("cmp(a) must observe as a, got %q %v", l, vis)
	}
	if l, vis := obs("other"); !vis || l != "other" {
		t.Fatalf("unrelated labels pass through, got %q %v", l, vis)
	}
}

package core

import (
	"math/rand"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// TestDominatedAtAgreesWithInterpreter pins the slot-compiled priority
// conditions (compilePriorities + dominatedAt) against the interpreting
// reference (Dominated over a qualEnv) on random systems with
// conditional priorities, at every state of random walks.
func TestDominatedAtAgreesWithInterpreter(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randSystem(t, rng)
		hasWhen := false
		for _, p := range sys.Priorities {
			if p.When != nil {
				hasWhen = true
			}
		}
		if !hasWhen && seed%3 != 0 {
			continue // still exercise a few unconditional systems
		}
		sp := sys.NewStepper()
		frame := sys.newIFrame()
		enabled := make([]bool, len(sys.Interactions))
		for step := 0; step < 40; step++ {
			st := sp.State()
			vec, err := sys.EnabledVector(st)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			for ii := range vec {
				enabled[ii] = len(vec[ii]) > 0
			}
			env := sys.QualEnv(&st)
			for ii := range sys.Interactions {
				want, errW := sys.Dominated(ii, enabled, env)
				got, errG := sys.dominatedAt(ii, enabled, &st, frame)
				if (errW == nil) != (errG == nil) {
					t.Fatalf("seed %d step %d %s: error mismatch: interp=%v compiled=%v",
						seed, step, sys.Interactions[ii].Name, errW, errG)
				}
				if want != got {
					t.Fatalf("seed %d step %d %s: dominated: interp=%v compiled=%v",
						seed, step, sys.Interactions[ii].Name, want, got)
				}
			}
			moves, err := sp.Enabled()
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if len(moves) == 0 {
				break
			}
			if err := sp.Exec(moves[rng.Intn(len(moves))]); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

// TestInvariantCheckerAgreesWithInterpreter pins the slot-compiled atom
// invariants (behavior.Atom.BrokenInvariant via InvariantChecker)
// against direct interpretation of the invariant expressions, including
// the violation verdicts and their order.
func TestInvariantCheckerAgreesWithInterpreter(t *testing.T) {
	counter := behavior.NewBuilder("ctr").
		Location("s").
		Int("x", 0).Int("y", 7).
		Port("step", "x").
		TransitionG("s", "step", "s", nil,
			expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		Invariant(expr.Le(expr.V("x"), expr.I(3))).
		Invariant(expr.Eq(expr.V("y"), expr.I(7))).
		MustBuild()
	sys, err := NewSystem("inv").
		Add(counter).
		Singleton("ctr", "step").
		Build()
	if err != nil {
		t.Fatal(err)
	}

	interpret := func(st State) error {
		for i, a := range sys.Atoms {
			for _, inv := range a.Invariants {
				ok, err := expr.EvalBool(inv, st.Vars[i])
				if err != nil {
					return err
				}
				if !ok {
					return errViolated
				}
			}
		}
		return nil
	}

	chk := sys.NewInvariantChecker()
	sp := sys.NewStepper()
	sawViolation := false
	for step := 0; step < 6; step++ {
		st := sp.State()
		got := chk.Check(st)
		want := interpret(st)
		if (want == nil) != (got == nil) {
			t.Fatalf("step %d (x=%v): interp=%v compiled=%v", step, st.Vars[0]["x"], want, got)
		}
		if got != nil {
			sawViolation = true
		}
		moves, err := sp.Enabled()
		if err != nil || len(moves) == 0 {
			t.Fatalf("step %d: moves=%d err=%v", step, len(moves), err)
		}
		if err := sp.Exec(moves[0]); err != nil {
			t.Fatal(err)
		}
	}
	if !sawViolation {
		t.Fatal("walk never violated the invariant; the test lost its teeth")
	}
	// The violation message must name the first broken invariant, as the
	// interpreter did.
	bad := State{Locs: []string{"s"}, Vars: []expr.MapEnv{{"x": expr.IntVal(9), "y": expr.IntVal(7)}}}
	err = chk.Check(bad)
	if err == nil {
		t.Fatal("x=9 must violate x<=3")
	}
	if want := "x <= 3"; !containsStr(err.Error(), want) {
		t.Fatalf("violation error %q does not name invariant %q", err, want)
	}
}

var errViolated = errStr("invariant violated")

type errStr string

func (e errStr) Error() string { return string(e) }

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package core

import "bip/internal/expr"

// Slab is a chunked slab allocator for the per-state machinery of
// exploration: materialized state stores (location and variable-store
// headers), derived move tables, move lists and choice vectors. The
// drivers admit one state per distinct interned binary record, so the
// slots carved here are keyed one-to-one by the dedup arena's records —
// the slab is the value side of that key arena.
//
// Each typed slab hands out fixed-capacity sub-slices of large chunks;
// exhausted chunks are replaced, never grown, so previously carved
// slices stay valid forever. Carved slices have len == cap, which keeps
// an append by one holder from clobbering a neighbour's slot. This
// turns the per-state slice allocations of Materialize/Derive — two
// state-store headers, a move-table header, a move list per recomputed
// interaction, a choice vector per move — into one allocation per
// slabChunk elements, which BenchmarkExplore measures as the workers=1
// allocs/op drop against the PR-4 baseline.
//
// Lifetime is arena-style: nothing is freed individually. Chunks die
// with the Slab (one exploration), or live on as long as a sink retains
// a state materialized into them. A Slab is not safe for concurrent
// use; the parallel drivers give each worker its own via ExploreCtx,
// mirroring the per-shard key arenas of the seen-set. Cross-worker
// reads of carved memory are safe once publication is ordered (the
// drivers publish entries under their shard or queue locks).
type Slab struct {
	locs  []string
	vars  []expr.MapEnv
	vecs  [][]Move
	moves []Move
	ints  []int
}

// slabChunk is the element count of one chunk of each typed slab.
const slabChunk = 4096

// carve returns the next n-element slot of a typed slab, replacing the
// chunk when exhausted. The slot is full (len == cap == n).
func carve[T any](buf *[]T, n int) []T {
	if len(*buf)+n > cap(*buf) {
		size := slabChunk
		if n > size {
			size = n
		}
		*buf = make([]T, 0, size)
	}
	off := len(*buf)
	*buf = (*buf)[:off+n]
	return (*buf)[off : off+n : off+n]
}

// Locs carves a location-header slot (one string per atom).
func (s *Slab) Locs(n int) []string { return carve(&s.locs, n) }

// Vars carves a variable-store-header slot (one store per atom).
func (s *Slab) Vars(n int) []expr.MapEnv { return carve(&s.vars, n) }

// Vecs carves a move-table header (one move list per interaction).
func (s *Slab) Vecs(n int) [][]Move { return carve(&s.vecs, n) }

// Moves carves a move-list slot.
func (s *Slab) Moves(n int) []Move { return carve(&s.moves, n) }

// Ints carves a choice-vector slot.
func (s *Slab) Ints(n int) []int { return carve(&s.ints, n) }

// MaterializeSlab is Materialize with the successor's Locs and Vars
// headers carved from slab instead of heap-allocated. Participant
// variable stores are still cloned (they are maps); everything else is
// shared with the predecessor, matching System.Exec's copy-on-write
// discipline. The returned state is valid as long as the slab's chunks
// are, i.e. as long as the state itself is retained.
func (x *ScratchExec) MaterializeSlab(m Move, slab *Slab) State {
	out := State{
		Locs: slab.Locs(len(x.st.Locs)),
		Vars: slab.Vars(len(x.st.Vars)),
	}
	copy(out.Locs, x.st.Locs)
	copy(out.Vars, x.st.Vars)
	for _, ai := range x.sys.portAtoms[m.Interaction] {
		if x.maps[ai] != nil {
			out.Vars[ai] = x.maps[ai].Clone()
		}
	}
	return out
}

// DeriveSlab is Derive with the successor's table header, recomputed
// move lists and their choice vectors carved from slab. Like Derive,
// the result shares every non-incident entry with the parent table and
// must be treated as immutable.
func (d *TableDeriver) DeriveSlab(parent [][]Move, m Move, st State, slab *Slab) ([][]Move, error) {
	sys := d.sys
	vec := slab.Vecs(len(parent))
	copy(vec, parent)
	d.dirtyList = d.dirtyList[:0]
	for _, ai := range sys.portAtoms[m.Interaction] {
		for _, ii := range sys.incident[ai] {
			if !d.dirty[ii] {
				d.dirty[ii] = true
				d.dirtyList = append(d.dirtyList, ii)
			}
		}
	}
	for _, ii := range d.dirtyList {
		d.dirty[ii] = false
	}
	var err error
	for _, ii := range d.dirtyList {
		// Recompute into the reusable scratch first: movesOfInteraction
		// appends incrementally, and a slab slot must be carved at its
		// final size.
		d.scratch, err = sys.movesOfInteractionSlab(&st, ii, d.scratch[:0], d.frame, slab)
		if err != nil {
			return nil, err
		}
		if len(d.scratch) == 0 {
			vec[ii] = nil
			continue
		}
		ms := slab.Moves(len(d.scratch))
		copy(ms, d.scratch)
		vec[ii] = ms
	}
	return vec, nil
}

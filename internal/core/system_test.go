package core

import (
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// pingAtom: two locations, alternates ping/pong, counts pings.
func pingAtom(t *testing.T) *behavior.Atom {
	t.Helper()
	a, err := behavior.NewBuilder("ping").
		Location("a", "b").
		Int("n", 0).
		Port("hit", "n").
		Port("back").
		TransitionG("a", "hit", "b", nil, expr.Set("n", expr.Add(expr.V("n"), expr.I(1)))).
		Transition("b", "back", "a").
		Build()
	if err != nil {
		t.Fatalf("build ping: %v", err)
	}
	return a
}

// pairSystem: two pings synchronized on hit and on back.
func pairSystem(t *testing.T) *System {
	t.Helper()
	a := pingAtom(t)
	sys, err := NewSystem("pair").
		AddAs("l", a).
		AddAs("r", a).
		Connect("hit", P("l", "hit"), P("r", "hit")).
		Connect("back", P("l", "back"), P("r", "back")).
		Build()
	if err != nil {
		t.Fatalf("build pair: %v", err)
	}
	return sys
}

func TestRendezvousSemantics(t *testing.T) {
	sys := pairSystem(t)
	st := sys.Initial()

	moves, err := sys.Enabled(st)
	if err != nil {
		t.Fatalf("Enabled: %v", err)
	}
	if len(moves) != 1 || sys.Label(moves[0]) != "hit" {
		t.Fatalf("initial moves = %v, want only hit", moves)
	}

	st2, err := sys.Exec(st, moves[0])
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if st2.Locs[0] != "b" || st2.Locs[1] != "b" {
		t.Fatalf("locations after hit = %v, want [b b]", st2.Locs)
	}
	for i := 0; i < 2; i++ {
		if v, _ := st2.Vars[i].Get("n"); !v.Equal(expr.IntVal(1)) {
			t.Fatalf("component %d n = %v, want 1", i, v)
		}
	}
	// Input state untouched.
	if st.Locs[0] != "a" {
		t.Fatal("Exec mutated its input state")
	}

	moves2, _ := sys.Enabled(st2)
	if len(moves2) != 1 || sys.Label(moves2[0]) != "back" {
		t.Fatalf("moves after hit = %v, want only back", moves2)
	}
}

func TestInteractionGuardAndDataTransfer(t *testing.T) {
	// Producer exports v, consumer imports into w; transfer guarded by
	// v < 3.
	prod, err := behavior.NewBuilder("prod").
		Location("p").
		Int("v", 0).
		Port("out", "v").
		TransitionG("p", "out", "p", nil, expr.Set("v", expr.Add(expr.V("v"), expr.I(1)))).
		Build()
	if err != nil {
		t.Fatalf("build prod: %v", err)
	}
	cons, err := behavior.NewBuilder("cons").
		Location("c").
		Int("w", -1).
		Port("in", "w").
		Transition("c", "in", "c").
		Build()
	if err != nil {
		t.Fatalf("build cons: %v", err)
	}
	sys, err := NewSystem("pc").
		Add(prod).Add(cons).
		ConnectGD("xfer",
			expr.Lt(expr.V("prod.v"), expr.I(3)),
			expr.Set("cons.w", expr.V("prod.v")),
			P("prod", "out"), P("cons", "in")).
		Build()
	if err != nil {
		t.Fatalf("build pc: %v", err)
	}

	st := sys.Initial()
	for i := 0; i < 3; i++ {
		moves, err := sys.Enabled(st)
		if err != nil {
			t.Fatalf("Enabled step %d: %v", i, err)
		}
		if len(moves) != 1 {
			t.Fatalf("step %d: moves = %v", i, moves)
		}
		st, err = sys.Exec(st, moves[0])
		if err != nil {
			t.Fatalf("Exec step %d: %v", i, err)
		}
		// Transfer happens before the local action increments v, so w
		// receives the pre-increment value.
		if w, _ := st.Vars[1].Get("w"); !w.Equal(expr.IntVal(int64(i))) {
			t.Fatalf("step %d: w = %v, want %d", i, w, i)
		}
	}
	// v reached 3: the guard closes the interaction.
	moves, _ := sys.Enabled(st)
	if len(moves) != 0 {
		t.Fatalf("guard should disable xfer at v=3, got %v", moves)
	}
}

func TestPriorityFiltering(t *testing.T) {
	// One component can fire lo or hi; priority suppresses lo.
	a, err := behavior.NewBuilder("a").
		Location("s", "t").
		Port("lo").
		Port("hi").
		Transition("s", "lo", "t").
		Transition("s", "hi", "t").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys, err := NewSystem("prio").
		Add(a).
		Singleton("a", "lo").
		Singleton("a", "hi").
		Priority("a.lo", "a.hi").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	moves, err := sys.Enabled(sys.Initial())
	if err != nil {
		t.Fatalf("Enabled: %v", err)
	}
	if len(moves) != 1 || sys.Label(moves[0]) != "a.hi" {
		t.Fatalf("moves = %v, want only a.hi", movesLabels(sys, moves))
	}
	// Raw enabledness still sees both.
	raw, _ := sys.EnabledRaw(sys.Initial())
	if len(raw) != 2 {
		t.Fatalf("raw moves = %v, want 2", movesLabels(sys, raw))
	}
}

func TestConditionalPriority(t *testing.T) {
	a, err := behavior.NewBuilder("a").
		Location("s").
		Int("x", 0).
		Port("lo").
		Port("hi").
		TransitionG("s", "lo", "s", nil, expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		Transition("s", "hi", "s").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys, err := NewSystem("cprio").
		Add(a).
		Singleton("a", "lo").
		Singleton("a", "hi").
		PriorityWhen("a.lo", "a.hi", expr.Ge(expr.V("a.x"), expr.I(2))).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	st := sys.Initial()
	// x=0: condition false, both moves allowed.
	moves, _ := sys.Enabled(st)
	if len(moves) != 2 {
		t.Fatalf("x=0: moves = %v, want 2", movesLabels(sys, moves))
	}
	// Fire lo twice to reach x=2.
	for i := 0; i < 2; i++ {
		for _, m := range moves {
			if sys.Label(m) == "a.lo" {
				var err error
				st, err = sys.Exec(st, m)
				if err != nil {
					t.Fatalf("Exec: %v", err)
				}
			}
		}
		moves, _ = sys.Enabled(st)
	}
	if len(moves) != 1 || sys.Label(moves[0]) != "a.hi" {
		t.Fatalf("x=2: moves = %v, want only a.hi", movesLabels(sys, moves))
	}
}

func TestNondeterministicChoices(t *testing.T) {
	// Component with two transitions on the same port; the partner has
	// one: the interaction yields two moves (cartesian product).
	nd, err := behavior.NewBuilder("nd").
		Location("s", "u", "v").
		Port("go").
		Transition("s", "go", "u").
		Transition("s", "go", "v").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	one, err := behavior.NewBuilder("one").
		Location("s").
		Port("go").
		Transition("s", "go", "s").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys, err := NewSystem("nd").
		Add(nd).Add(one).
		Connect("go", P("nd", "go"), P("one", "go")).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	moves, err := sys.Enabled(sys.Initial())
	if err != nil {
		t.Fatalf("Enabled: %v", err)
	}
	if len(moves) != 2 {
		t.Fatalf("moves = %d, want 2 (choice of nd transition)", len(moves))
	}
	targets := map[string]bool{}
	for _, m := range moves {
		st, err := sys.Exec(sys.Initial(), m)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		targets[st.Locs[0]] = true
	}
	if !targets["u"] || !targets["v"] {
		t.Fatalf("targets = %v, want both u and v reachable", targets)
	}
}

func TestSystemValidationErrors(t *testing.T) {
	a := pingAtom(t)
	tests := []struct {
		name  string
		build func() (*System, error)
		want  string
	}{
		{"dup component", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).AddAs("x", a).Build()
		}, "duplicate component"},
		{"unknown component", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).Connect("i", P("ghost", "hit")).Build()
		}, "unknown component"},
		{"unknown port", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).Connect("i", P("x", "ghost")).Build()
		}, "unknown port"},
		{"component twice", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).Connect("i", P("x", "hit"), P("x", "back")).Build()
		}, "twice"},
		{"empty interaction", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).Connect("i").Build()
		}, "no ports"},
		{"dup interaction", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).
				Connect("i", P("x", "hit")).Connect("i", P("x", "back")).Build()
		}, "duplicate interaction"},
		{"guard not exported", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).
				ConnectGD("i", expr.Gt(expr.V("x.zzz"), expr.I(0)), nil, P("x", "hit")).Build()
		}, "not exported"},
		{"action not exported", func() (*System, error) {
			// back exports nothing, so x.n is out of scope.
			return NewSystem("s").AddAs("x", a).
				ConnectGD("i", nil, expr.Set("x.n", expr.I(1)), P("x", "back")).Build()
		}, "not exported"},
		{"priority unknown", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).Singleton("x", "hit").
				Priority("x.hit", "ghost").Build()
		}, "unknown interaction"},
		{"priority reflexive", func() (*System, error) {
			return NewSystem("s").AddAs("x", a).Singleton("x", "hit").
				Priority("x.hit", "x.hit").Build()
		}, "reflexive"},
		{"empty name", func() (*System, error) {
			return NewSystem("").Build()
		}, "empty name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.build()
			if err == nil {
				t.Fatalf("Build succeeded, want error with %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestConnectorRendezvous(t *testing.T) {
	c := Rendezvous("r", P("a", "p"), P("b", "q"))
	inters, prios, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(inters) != 1 || len(prios) != 0 {
		t.Fatalf("rendezvous expand = %d inters, %d prios", len(inters), len(prios))
	}
	if inters[0].Name != "r" || len(inters[0].Ports) != 2 {
		t.Fatalf("interaction = %v", inters[0])
	}
}

func TestConnectorBroadcast(t *testing.T) {
	c := Broadcast("b", P("s", "snd"), P("r1", "rcv"), P("r2", "rcv"))
	inters, prios, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// Subsets containing the trigger: {s}, {s,r1}, {s,r2}, {s,r1,r2}.
	if len(inters) != 4 {
		t.Fatalf("broadcast expand = %d interactions, want 4", len(inters))
	}
	// Strict subset pairs among those 4: {s}<{s,r1},{s}<{s,r2},{s}<{s,r1,r2},
	// {s,r1}<{s,r1,r2},{s,r2}<{s,r1,r2} = 5.
	if len(prios) != 5 {
		t.Fatalf("broadcast maximal-progress priorities = %d, want 5", len(prios))
	}
}

func TestBroadcastMaximalProgressSemantics(t *testing.T) {
	send, err := behavior.NewBuilder("send").
		Location("s").Port("snd").Transition("s", "snd", "s").Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	recv, err := behavior.NewBuilder("recv").
		Location("idle", "busy").
		Port("rcv").
		Port("rest").
		Transition("idle", "rcv", "busy").
		Transition("busy", "rest", "idle").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys, err := NewSystem("bcast").
		Add(send).
		AddAs("r1", recv).
		AddAs("r2", recv).
		Connector(Broadcast("b", P("send", "snd"), P("r1", "rcv"), P("r2", "rcv"))).
		Singleton("r1", "rest").
		Singleton("r2", "rest").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	// Initially both receivers ready: only the maximal interaction fires.
	moves, err := sys.Enabled(sys.Initial())
	if err != nil {
		t.Fatalf("Enabled: %v", err)
	}
	if len(moves) != 1 {
		t.Fatalf("initial moves = %v, want the single maximal broadcast", movesLabels(sys, moves))
	}
	if got := sys.Label(moves[0]); !strings.Contains(got, "r1.rcv") || !strings.Contains(got, "r2.rcv") {
		t.Fatalf("maximal broadcast = %q, should include both receivers", got)
	}

	// After the broadcast, receivers are busy: sender may fire alone,
	// receivers may rest.
	st, err := sys.Exec(sys.Initial(), moves[0])
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	moves2, _ := sys.Enabled(st)
	labels := movesLabels(sys, moves2)
	foundAlone := false
	for _, l := range labels {
		if l == "b#send.snd" {
			foundAlone = true
		}
	}
	if !foundAlone {
		t.Fatalf("after broadcast, sender-alone should be enabled; moves = %v", labels)
	}
}

func TestClosePriorities(t *testing.T) {
	a, err := behavior.NewBuilder("a").
		Location("s").
		Port("p1").Port("p2").Port("p3").
		Transition("s", "p1", "s").
		Transition("s", "p2", "s").
		Transition("s", "p3", "s").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys, err := NewSystem("chain").
		Add(a).
		Singleton("a", "p1").Singleton("a", "p2").Singleton("a", "p3").
		Priority("a.p1", "a.p2").
		Priority("a.p2", "a.p3").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := sys.ClosePriorities(); err != nil {
		t.Fatalf("ClosePriorities: %v", err)
	}
	// Closure adds p1 < p3.
	found := false
	for _, p := range sys.Priorities {
		if p.Low == "a.p1" && p.High == "a.p3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("closure missing a.p1 < a.p3: %v", sys.Priorities)
	}
	moves, _ := sys.Enabled(sys.Initial())
	if len(moves) != 1 || sys.Label(moves[0]) != "a.p3" {
		t.Fatalf("moves = %v, want only a.p3", movesLabels(sys, moves))
	}

	// A cycle must be rejected.
	sys2, err := NewSystem("cycle").
		Add(a).
		Singleton("a", "p1").Singleton("a", "p2").
		Priority("a.p1", "a.p2").
		Priority("a.p2", "a.p1").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := sys2.ClosePriorities(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("ClosePriorities on a cycle = %v, want cycle error", err)
	}
}

func TestQualEnvRestriction(t *testing.T) {
	sys := pairSystem(t)
	st := sys.Initial()
	// The full view reads any variable.
	env := sys.QualEnv(&st)
	if v, ok := env.Get("l.n"); !ok || !v.Equal(expr.IntVal(0)) {
		t.Fatalf("QualEnv Get(l.n) = %v, %v", v, ok)
	}
	if _, ok := env.Get("l.zzz"); ok {
		t.Fatal("unknown var should not resolve")
	}
	if _, ok := env.Get("nodot"); ok {
		t.Fatal("unqualified name should not resolve")
	}
	if err := env.Set("l.n", expr.IntVal(9)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, _ := st.Vars[0].Get("n"); !v.Equal(expr.IntVal(9)) {
		t.Fatalf("Set did not write through: %v", v)
	}
	if err := env.Set("bad", expr.IntVal(1)); err == nil {
		t.Fatal("Set of malformed name should fail")
	}
}

func TestCheckInvariants(t *testing.T) {
	a, err := behavior.NewBuilder("inv").
		Location("s").
		Int("x", 0).
		Port("p", "x").
		TransitionG("s", "p", "s", nil, expr.Set("x", expr.Sub(expr.V("x"), expr.I(1)))).
		Invariant(expr.Ge(expr.V("x"), expr.I(0))).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys, err := NewSystem("inv").Add(a).Singleton("inv", "p").Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	st := sys.Initial()
	if err := sys.CheckInvariants(st); err != nil {
		t.Fatalf("initial state should satisfy invariant: %v", err)
	}
	moves, _ := sys.Enabled(st)
	st2, _ := sys.Exec(st, moves[0])
	if err := sys.CheckInvariants(st2); err == nil {
		t.Fatal("x=-1 should violate the invariant")
	}
}

func TestStateKeyEqualClone(t *testing.T) {
	sys := pairSystem(t)
	st := sys.Initial()
	cp := st.Clone()
	if !st.Equal(cp) || st.Key() != cp.Key() {
		t.Fatal("clone should equal original")
	}
	_ = cp.Vars[0].Set("n", expr.IntVal(5))
	if st.Equal(cp) || st.Key() == cp.Key() {
		t.Fatal("divergent clone should differ")
	}
	if st.Equal(State{}) {
		t.Fatal("different arity should not be equal")
	}
}

func TestExecErrors(t *testing.T) {
	sys := pairSystem(t)
	st := sys.Initial()
	if _, err := sys.Exec(st, Move{Interaction: 99}); err == nil {
		t.Fatal("out-of-range interaction should fail")
	}
	if _, err := sys.Exec(st, Move{Interaction: 0, Choices: []int{0}}); err == nil {
		t.Fatal("wrong choice arity should fail")
	}
}

func TestInteractionStringAndParticipants(t *testing.T) {
	in := &Interaction{
		Name:   "x",
		Ports:  []PortRef{P("a", "p"), P("b", "q")},
		Guard:  expr.Gt(expr.V("a.v"), expr.I(0)),
		Action: expr.Set("b.w", expr.V("a.v")),
	}
	s := in.String()
	for _, want := range []string{"a.p", "b.q", "when", "do"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	parts := in.Participants()
	if len(parts) != 2 || parts[0] != "a" || parts[1] != "b" {
		t.Fatalf("Participants = %v", parts)
	}
	pr := Priority{Low: "x", High: "y", When: expr.B(true)}
	if got := pr.String(); !strings.Contains(got, "x < y") {
		t.Fatalf("Priority.String = %q", got)
	}
}

func movesLabels(s *System, ms []Move) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = s.Label(m)
	}
	return out
}

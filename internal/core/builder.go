package core

import (
	"fmt"
	"sort"
	"strings"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// SystemBuilder assembles a flat System with a fluent API.
type SystemBuilder struct {
	sys  System
	errs []error
	// next is the source position staged by At for the next declaration;
	// consumed (and reset) by the declaration methods.
	next behavior.Pos
}

// NewSystem starts building a system.
func NewSystem(name string) *SystemBuilder {
	return &SystemBuilder{sys: System{Name: name}}
}

// At stages a source position for the next declaration (instance,
// interaction, connector or priority). The DSL parser threads token
// positions through it; hand-built models never call it.
func (b *SystemBuilder) At(line, col int) *SystemBuilder {
	b.next = behavior.Pos{Line: line, Col: col}
	return b
}

// take consumes the staged position.
func (b *SystemBuilder) take() behavior.Pos {
	p := b.next
	b.next = behavior.Pos{}
	return p
}

// Add installs a component instance under its own name.
func (b *SystemBuilder) Add(a *behavior.Atom) *SystemBuilder {
	b.take()
	b.sys.Atoms = append(b.sys.Atoms, a)
	return b
}

// AddAs installs a renamed copy of an atom, allowing one atom type to be
// instantiated several times. A staged position (the instance declaration
// site) overrides the atom type's own position on the copy.
func (b *SystemBuilder) AddAs(name string, a *behavior.Atom) *SystemBuilder {
	cp := a.Rename(name)
	if p := b.take(); p.Known() {
		cp.Pos = p
	}
	b.sys.Atoms = append(b.sys.Atoms, cp)
	return b
}

// Connect adds a rendezvous interaction over the given ports with no
// guard or data transfer.
func (b *SystemBuilder) Connect(name string, ports ...PortRef) *SystemBuilder {
	return b.ConnectGD(name, nil, nil, ports...)
}

// ConnectGD adds an interaction with a guard and a data-transfer action
// (either may be nil).
func (b *SystemBuilder) ConnectGD(name string, guard expr.Expr, action expr.Stmt, ports ...PortRef) *SystemBuilder {
	b.sys.Interactions = append(b.sys.Interactions, &Interaction{
		Name: name, Ports: ports, Guard: guard, Action: action, Pos: b.take(),
	})
	return b
}

// Interaction adds a pre-built interaction.
func (b *SystemBuilder) Interaction(in *Interaction) *SystemBuilder {
	if p := b.take(); p.Known() && !in.Pos.Known() {
		in.Pos = p
	}
	b.sys.Interactions = append(b.sys.Interactions, in)
	return b
}

// Singleton adds a unary interaction exposing an internal step of one
// component. Its name is "comp.port".
func (b *SystemBuilder) Singleton(comp, port string) *SystemBuilder {
	return b.Connect(comp+"."+port, P(comp, port))
}

// Priority adds the rule low < high (low suppressed while high enabled).
func (b *SystemBuilder) Priority(low, high string) *SystemBuilder {
	b.sys.Priorities = append(b.sys.Priorities, Priority{Low: low, High: high, Pos: b.take()})
	return b
}

// PriorityWhen adds a conditional priority rule.
func (b *SystemBuilder) PriorityWhen(low, high string, when expr.Expr) *SystemBuilder {
	b.sys.Priorities = append(b.sys.Priorities, Priority{Low: low, High: high, When: when, Pos: b.take()})
	return b
}

// Connector expands a connector into its feasible interactions and the
// maximal-progress priorities among them. A staged position (the
// connector declaration site) is stamped on every expanded interaction
// and priority.
func (b *SystemBuilder) Connector(c Connector) *SystemBuilder {
	pos := b.take()
	inters, prios, err := c.Expand()
	if err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	for _, in := range inters {
		in.Pos = pos
	}
	for i := range prios {
		prios[i].Pos = pos
	}
	b.sys.Interactions = append(b.sys.Interactions, inters...)
	b.sys.Priorities = append(b.sys.Priorities, prios...)
	return b
}

// Build validates and returns the system.
func (b *SystemBuilder) Build() (*System, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("system %s: %v", b.sys.Name, b.errs[0])
	}
	sys := b.sys
	sys.Atoms = append([]*behavior.Atom(nil), b.sys.Atoms...)
	sys.Interactions = append([]*Interaction(nil), b.sys.Interactions...)
	sys.Priorities = append([]Priority(nil), b.sys.Priorities...)
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return &sys, nil
}

// MustBuild is Build for static models; it panics on error.
func (b *SystemBuilder) MustBuild() *System {
	s, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return s
}

// ConnectorEnd is one endpoint of a connector. Trigger endpoints can
// initiate an interaction without the others (broadcast); non-trigger
// endpoints (synchrons) participate only if included.
type ConnectorEnd struct {
	Ref     PortRef
	Trigger bool
}

// Sync returns a synchron endpoint.
func Sync(comp, port string) ConnectorEnd { return ConnectorEnd{Ref: P(comp, port)} }

// Trig returns a trigger endpoint.
func Trig(comp, port string) ConnectorEnd {
	return ConnectorEnd{Ref: P(comp, port), Trigger: true}
}

// Connector is BIP's structured glue: a named set of endpoints which
// expands into feasible interactions.
//
//   - No triggers: strong synchronization — a single interaction with all
//     endpoints (rendezvous).
//   - With triggers: every subset of endpoints containing at least one
//     trigger is feasible (broadcast), and Expand also emits the
//     maximal-progress priorities (a < b whenever a ⊂ b), which is how
//     BIP obtains the usual "receivers that are ready must listen"
//     broadcast semantics.
type Connector struct {
	Name string
	Ends []ConnectorEnd
}

// Rendezvous builds a trigger-free connector.
func Rendezvous(name string, refs ...PortRef) Connector {
	ends := make([]ConnectorEnd, len(refs))
	for i, r := range refs {
		ends[i] = ConnectorEnd{Ref: r}
	}
	return Connector{Name: name, Ends: ends}
}

// Broadcast builds a connector with one trigger (the sender) and any
// number of synchron receivers.
func Broadcast(name string, sender PortRef, receivers ...PortRef) Connector {
	ends := make([]ConnectorEnd, 0, len(receivers)+1)
	ends = append(ends, ConnectorEnd{Ref: sender, Trigger: true})
	for _, r := range receivers {
		ends = append(ends, ConnectorEnd{Ref: r})
	}
	return Connector{Name: name, Ends: ends}
}

// Expand returns the connector's feasible interactions and the
// maximal-progress priorities among them.
func (c Connector) Expand() ([]*Interaction, []Priority, error) {
	if c.Name == "" {
		return nil, nil, fmt.Errorf("connector: empty name")
	}
	if len(c.Ends) == 0 {
		return nil, nil, fmt.Errorf("connector %s: no endpoints", c.Name)
	}
	if len(c.Ends) > 16 {
		return nil, nil, fmt.Errorf("connector %s: too many endpoints (%d)", c.Name, len(c.Ends))
	}
	hasTrigger := false
	for _, e := range c.Ends {
		if e.Trigger {
			hasTrigger = true
			break
		}
	}
	if !hasTrigger {
		refs := make([]PortRef, len(c.Ends))
		for i, e := range c.Ends {
			refs[i] = e.Ref
		}
		return []*Interaction{{Name: c.Name, Ports: refs}}, nil, nil
	}

	// Enumerate subsets containing at least one trigger.
	type subset struct {
		mask int
		in   *Interaction
	}
	var subsets []subset
	n := len(c.Ends)
	for mask := 1; mask < 1<<n; mask++ {
		trig := false
		var refs []PortRef
		var parts []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			if c.Ends[i].Trigger {
				trig = true
			}
			refs = append(refs, c.Ends[i].Ref)
			parts = append(parts, c.Ends[i].Ref.String())
		}
		if !trig {
			continue
		}
		sort.Strings(parts)
		subsets = append(subsets, subset{
			mask: mask,
			in:   &Interaction{Name: c.Name + "#" + strings.Join(parts, "+"), Ports: refs},
		})
	}
	inters := make([]*Interaction, len(subsets))
	for i, s := range subsets {
		inters[i] = s.in
	}
	var prios []Priority
	for _, a := range subsets {
		for _, b := range subsets {
			if a.mask != b.mask && a.mask&b.mask == a.mask {
				prios = append(prios, Priority{Low: a.in.Name, High: b.in.Name})
			}
		}
	}
	return inters, prios, nil
}

package core

import (
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// cell is a tiny one-location atom with a value and in/out ports.
func cell(t *testing.T) *behavior.Atom {
	t.Helper()
	a, err := behavior.NewBuilder("cell").
		Location("s").
		Int("v", 0).
		Port("in", "v").
		Port("out", "v").
		Transition("s", "in", "s").
		Transition("s", "out", "s").
		Build()
	if err != nil {
		t.Fatalf("build cell: %v", err)
	}
	return a
}

func TestFlattenLeafInstance(t *testing.T) {
	sys, err := Flatten(&Instance{Name: "solo", Atom: cell(t)})
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if len(sys.Atoms) != 1 || sys.Atoms[0].Name != "solo" {
		t.Fatalf("atoms = %v", sys.Atoms)
	}
}

func TestFlattenNestedComposite(t *testing.T) {
	c := cell(t)
	inner := NewComposite("inner").
		Atom("b", c).
		Atom("cc", c).
		ConnectGD("pass", nil, expr.Set("cc.v", expr.V("b.v")), P("b", "out"), P("cc", "in")).
		Export("feed", P("b", "in")).
		Build()
	root := NewComposite("root").
		Atom("a", c).
		Sub(inner).
		ConnectGD("top", nil, expr.Set("inner/b.v", expr.V("a.v")), P("a", "out"), P("inner", "feed")).
		Build()

	sys, err := Flatten(root)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	wantAtoms := map[string]bool{"a": true, "inner/b": true, "inner/cc": true}
	for _, a := range sys.Atoms {
		if !wantAtoms[a.Name] {
			t.Fatalf("unexpected atom %q", a.Name)
		}
		delete(wantAtoms, a.Name)
	}
	if len(wantAtoms) != 0 {
		t.Fatalf("missing atoms: %v", wantAtoms)
	}

	// Interactions: root-level "top" and nested "inner/pass".
	if sys.InteractionIndex("top") < 0 {
		t.Fatalf("missing interaction top: %v", sys.InteractionNames())
	}
	if sys.InteractionIndex("inner/pass") < 0 {
		t.Fatalf("missing interaction inner/pass: %v", sys.InteractionNames())
	}

	// Semantics: a.v=7 flows through top to inner/b then via pass to
	// inner/cc.
	st := sys.Initial()
	_ = st.Vars[sys.AtomIndex("a")].Set("v", expr.IntVal(7))
	moves, err := sys.Enabled(st)
	if err != nil {
		t.Fatalf("Enabled: %v", err)
	}
	var top, pass *Move
	for i := range moves {
		switch sys.Label(moves[i]) {
		case "top":
			top = &moves[i]
		case "inner/pass":
			pass = &moves[i]
		}
	}
	if top == nil || pass == nil {
		t.Fatalf("expected both interactions enabled, got %v", movesLabels(sys, moves))
	}
	st, err = sys.Exec(st, *top)
	if err != nil {
		t.Fatalf("Exec top: %v", err)
	}
	if v, _ := st.Vars[sys.AtomIndex("inner/b")].Get("v"); !v.Equal(expr.IntVal(7)) {
		t.Fatalf("inner/b.v = %v after top, want 7", v)
	}
	moves, _ = sys.Enabled(st)
	for _, m := range moves {
		if sys.Label(m) == "inner/pass" {
			st, err = sys.Exec(st, m)
			if err != nil {
				t.Fatalf("Exec pass: %v", err)
			}
		}
	}
	if v, _ := st.Vars[sys.AtomIndex("inner/cc")].Get("v"); !v.Equal(expr.IntVal(7)) {
		t.Fatalf("inner/cc.v = %v after pass, want 7", v)
	}
}

func TestFlattenPriorities(t *testing.T) {
	c := cell(t)
	inner := NewComposite("inner").
		Atom("x", c).
		Connect("i1", P("x", "in")).
		Connect("i2", P("x", "out")).
		Priority("i1", "i2").
		Build()
	sys, err := Flatten(NewComposite("root").Sub(inner).Build())
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if len(sys.Priorities) != 1 {
		t.Fatalf("priorities = %v", sys.Priorities)
	}
	if sys.Priorities[0].Low != "inner/i1" || sys.Priorities[0].High != "inner/i2" {
		t.Fatalf("priority = %v, want inner/i1 < inner/i2", sys.Priorities[0])
	}
	moves, _ := sys.Enabled(sys.Initial())
	if len(moves) != 1 || sys.Label(moves[0]) != "inner/i2" {
		t.Fatalf("moves = %v, want only inner/i2", movesLabels(sys, moves))
	}
}

func TestFlattenErrors(t *testing.T) {
	c := cell(t)
	tests := []struct {
		name string
		comp Component
		want string
	}{
		{"nil atom", &Instance{Name: "x"}, "nil atom"},
		{"unknown sub", NewComposite("r").
			Atom("a", c).
			Connect("i", P("ghost", "in")).Build(), "no sub-component"},
		{"unknown export", NewComposite("r").
			Sub(NewComposite("inner").Atom("a", c).Build()).
			Connect("i", P("inner", "nope")).Build(), "no export"},
		{"unknown port on instance", NewComposite("r").
			Atom("a", c).
			Connect("i", P("a", "nope")).Build(), "no port"},
		{"export of unknown sub", NewComposite("r").
			Sub(NewComposite("inner").
				Atom("a", c).
				Export("e", P("ghost", "in")).Build()).
			Connect("i", P("inner", "e")).Build(), "no sub-component"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Flatten(tt.comp)
			if err == nil {
				t.Fatalf("Flatten succeeded, want error with %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestDeepNestingExports(t *testing.T) {
	c := cell(t)
	lvl2 := NewComposite("l2").
		Atom("leaf", c).
		Export("deep", P("leaf", "in")).
		Build()
	lvl1 := NewComposite("l1").
		Sub(lvl2).
		Export("mid", P("l2", "deep")).
		Build()
	root := NewComposite("root").
		Atom("a", c).
		Sub(lvl1).
		Connect("link", P("a", "out"), P("l1", "mid")).
		Build()
	sys, err := Flatten(root)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	idx := sys.InteractionIndex("link")
	if idx < 0 {
		t.Fatalf("missing link: %v", sys.InteractionNames())
	}
	in := sys.Interactions[idx]
	found := false
	for _, p := range in.Ports {
		if p.Comp == "l1/l2/leaf" && p.Port == "in" {
			found = true
		}
	}
	if !found {
		t.Fatalf("link ports = %v, want l1/l2/leaf.in", in.Ports)
	}
}

func TestSortedQualifiedVars(t *testing.T) {
	sys := pairSystem(t)
	vars := sys.sortedQualifiedVars()
	if len(vars) != 2 || vars[0] != "l.n" || vars[1] != "r.n" {
		t.Fatalf("sortedQualifiedVars = %v", vars)
	}
}

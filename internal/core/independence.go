package core

import "bip/internal/expr"

// This file computes the static independence structure partial-order
// reduction (internal/lts ample expander) is built on. Everything here
// derives from indices Validate already resolves — portAtoms, incident,
// the priority rules — so the computation is a cheap closing pass over
// the glue, done once per Validate.
//
// Two interactions commute when firing one cannot change whether, or
// with what effect, the other fires. In BIP the connector structure
// hands this relation over almost for free:
//
//   - An interaction reads and writes only its participants: its guard
//     and action are validated to range over variables exported by its
//     own ports, and firing it moves only its participants' locations.
//     Interactions with disjoint participant sets therefore commute at
//     the behavior level.
//
//   - Priorities re-entangle them: a rule Low < High when When makes
//     Low's enabledness depend on High's participants (and on whatever
//     When reads), regardless of port structure. Rather than chase that
//     dependency precisely, an interaction that appears in any rule —
//     or whose participants' variables some rule's When reads — is
//     marked priority-entangled and excluded from reduction.
//
// The unit of reduction is the cluster: a connected component of the
// atom graph where two atoms are adjacent when they share an
// interaction. Every interaction lies entirely inside one cluster, so
// the enabled moves of a cluster's interactions form a persistent set
// (condition C1 of the ample-set method): no interaction outside the
// cluster touches a cluster atom's location or variables, and — for
// reducible clusters — no priority links them either, so firing
// non-cluster interactions can never enable, disable or alter a
// cluster move.
type independence struct {
	// prioEntangled[i]: interaction i appears in a priority rule (as Low
	// or High), or some rule's When condition reads a variable of one of
	// i's participants.
	prioEntangled []bool
	// atomCluster[a] / interCluster[i]: dense cluster index per atom and
	// per interaction. Clusters are numbered in order of their smallest
	// atom index, so the numbering is deterministic for a given model.
	atomCluster  []int32
	interCluster []int32
	numClusters  int
	// clusterReducible[c]: no interaction of cluster c is
	// priority-entangled. Only reducible clusters may serve as ample
	// sets; the others stay fully interleaved.
	clusterReducible []bool
}

// computeIndependence runs at the end of Validate, after portAtoms,
// incident and higher are resolved.
func (s *System) computeIndependence() {
	ind := &independence{
		prioEntangled: make([]bool, len(s.Interactions)),
		atomCluster:   make([]int32, len(s.Atoms)),
		interCluster:  make([]int32, len(s.Interactions)),
	}

	// Priority entanglement. Rules are stored pre-resolved in higher
	// (indexed by Low); Priorities still carries the High names and When
	// conditions in declaration form.
	whenReads := make([]bool, len(s.Atoms)) // atoms some When reads
	for lo, rules := range s.higher {
		if len(rules) == 0 {
			continue
		}
		ind.prioEntangled[lo] = true
		for _, r := range rules {
			ind.prioEntangled[r.High] = true
		}
	}
	for _, p := range s.Priorities {
		for _, v := range expr.Vars(p.When) {
			ai, _, err := s.splitQualified(v)
			if err == nil {
				whenReads[ai] = true
			}
		}
	}
	for i, pa := range s.portAtoms {
		for _, ai := range pa {
			if whenReads[ai] {
				ind.prioEntangled[i] = true
			}
		}
	}

	// Clusters: union-find over atoms, merging across each interaction.
	parent := make([]int, len(s.Atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, pa := range s.portAtoms {
		for _, ai := range pa[1:] {
			ra, rb := find(pa[0]), find(ai)
			if ra != rb {
				if rb < ra {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	// Dense numbering in order of smallest member atom: roots are their
	// own minima after path compression toward the smaller index.
	clusterOf := make(map[int]int32, len(s.Atoms))
	for ai := range s.Atoms {
		r := find(ai)
		ci, ok := clusterOf[r]
		if !ok {
			ci = int32(ind.numClusters)
			ind.numClusters++
			clusterOf[r] = ci
		}
		ind.atomCluster[ai] = ci
	}
	ind.clusterReducible = make([]bool, ind.numClusters)
	for i := range ind.clusterReducible {
		ind.clusterReducible[i] = true
	}
	for i, pa := range s.portAtoms {
		ci := ind.atomCluster[pa[0]]
		ind.interCluster[i] = ci
		if ind.prioEntangled[i] {
			ind.clusterReducible[ci] = false
		}
	}
	s.indep = ind
}

// Independent reports whether interactions i and j are statically
// independent: they commute in every state. The relation is
// conservative — it holds only when the two interactions have no common
// participant atom (they live in different clusters) and neither is
// entangled through a priority rule. Indices are interaction indices;
// Validate must have run.
func (s *System) Independent(i, j int) bool {
	ind := s.indep
	if ind.interCluster[i] == ind.interCluster[j] {
		return false
	}
	return !ind.prioEntangled[i] && !ind.prioEntangled[j]
}

// PriorityEntangled reports whether interaction ii participates in the
// priority layer: it appears as Low or High in some rule, or a rule's
// When condition reads a variable of one of its participants. Entangled
// interactions are never pruned by reduction.
func (s *System) PriorityEntangled(ii int) bool { return s.indep.prioEntangled[ii] }

// NumClusters returns the number of connector clusters: connected
// components of atoms under the shares-an-interaction relation.
func (s *System) NumClusters() int { return s.indep.numClusters }

// AtomCluster returns the cluster index of atom ai.
func (s *System) AtomCluster(ai int) int { return int(s.indep.atomCluster[ai]) }

// InteractionCluster returns the cluster index interaction ii belongs
// to (all its participants are in that cluster).
func (s *System) InteractionCluster(ii int) int { return int(s.indep.interCluster[ii]) }

// ClusterReducible reports whether cluster ci may serve as an ample
// set: none of its interactions is priority-entangled. The enabled
// moves of a reducible cluster form a persistent set in every state.
func (s *System) ClusterReducible(ci int) bool { return s.indep.clusterReducible[ci] }

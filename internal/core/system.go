// Package core implements the BIP composition model: systems of atomic
// components glued by interactions (the "I" of BIP) filtered by priorities
// (the "P"), together with their operational semantics.
//
// A System is a flat model: a set of atoms, a set of multiparty
// interactions over their ports, and a set of priority rules. Hierarchical
// models (Composite) flatten to Systems; every other artifact in this
// repository — DSL programs, Lustre embeddings, architectures, refined
// distributed models — elaborates to a System, realizing the paper's
// "single host component language rooted in operational semantics".
package core

import (
	"fmt"
	"sort"
	"strings"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// PortRef names a port of a component instance.
type PortRef struct {
	Comp string
	Port string
}

// String renders the reference as "comp.port".
func (p PortRef) String() string { return p.Comp + "." + p.Port }

// P is shorthand for building a PortRef.
func P(comp, port string) PortRef { return PortRef{Comp: comp, Port: port} }

// Interaction is a multiparty synchronization among the listed ports.
// It is enabled when every port has an enabled local transition and Guard
// holds. When it fires, Action (the data transfer) executes first over the
// qualified variables exported by the ports, then every participant fires
// its chosen local transition.
//
// Guard and Action reference variables with qualified names "comp.var";
// validation restricts them to variables exported by the interaction's own
// ports.
type Interaction struct {
	Name   string
	Ports  []PortRef
	Guard  expr.Expr
	Action expr.Stmt
	// Pos is the declaration's source position (zero when hand-built).
	Pos behavior.Pos
}

// Participants returns the distinct component names in declaration order.
func (in *Interaction) Participants() []string {
	out := make([]string, 0, len(in.Ports))
	seen := make(map[string]bool, len(in.Ports))
	for _, p := range in.Ports {
		if !seen[p.Comp] {
			seen[p.Comp] = true
			out = append(out, p.Comp)
		}
	}
	return out
}

// String renders the interaction as source text.
func (in *Interaction) String() string {
	parts := make([]string, len(in.Ports))
	for i, p := range in.Ports {
		parts[i] = p.String()
	}
	out := in.Name + ": " + strings.Join(parts, " + ")
	if in.Guard != nil {
		out += " when " + in.Guard.String()
	}
	if in.Action != nil {
		out += " do " + in.Action.String()
	}
	return out
}

// Priority declares that interaction Low must not fire while interaction
// High is enabled, whenever the optional state condition When holds
// (nil = always). Priorities filter among enabled interactions; they are
// how BIP steers execution (scheduling policies, maximal progress).
type Priority struct {
	Low  string
	High string
	When expr.Expr
	// Pos is the declaration's source position (zero when hand-built).
	Pos behavior.Pos
}

// String renders the rule.
func (p Priority) String() string {
	out := p.Low + " < " + p.High
	if p.When != nil {
		out += " when " + p.When.String()
	}
	return out
}

// System is a flat BIP model.
type System struct {
	Name         string
	Atoms        []*behavior.Atom
	Interactions []*Interaction
	Priorities   []Priority

	atomIdx  map[string]int
	interIdx map[string]int
	// higher[i] lists, for interaction index i, the priority rules whose
	// Low is i (pre-resolved for the semantics hot path).
	higher [][]PriorityRule

	// portAtoms[i][p] is the atom index of interaction i's p-th port,
	// pre-resolved so the semantics never hashes component names.
	portAtoms [][]int
	// incident[a] lists the interactions with a port on atom a, in
	// declaration order. Firing an interaction only changes the local
	// states of its participants, so after a step only the interactions
	// incident to those atoms can change enabledness — this index is what
	// makes incremental move enumeration (Stepper, lts exploration) cheap.
	incident [][]int
	// scopes[i] is interaction i's exported variable scope, precomputed so
	// guard/action evaluation does not rebuild it per state.
	scopes []map[string]bool
	// icomp[i] is interaction i's compiled guard/action over a
	// per-interaction qualified-variable slot layout (icompile.go);
	// maxISlots sizes the scratch frames the compiled code runs on (it
	// also covers the compiled priority When conditions).
	icomp     []interComp
	maxISlots int
	// maxAtomVars sizes InvariantChecker frames: the widest per-atom
	// variable layout.
	maxAtomVars int
	// keyWidth is the size of the fixed-width binary state key
	// (AppendBinaryKey): the sum of the atoms' record widths.
	keyWidth int
	// indep is the static independence structure (clusters, priority
	// entanglement) partial-order reduction queries; independence.go.
	indep *independence
}

// PriorityRule is a pre-resolved priority edge: the owning (low)
// interaction is suppressed while interaction High is enabled and When
// holds (nil = always).
type PriorityRule struct {
	High int
	When expr.Expr

	// slots/cond are the slot-compiled form of When over its qualified
	// variables (icompile.go); nil when When is nil or not compilable,
	// in which case the state-based priority filter interprets.
	slots []slotRef
	cond  expr.CompiledBool
}

// PortAtoms returns the atom index of each port of interaction ii,
// pre-resolved at Validate time. Read-only.
func (s *System) PortAtoms(ii int) []int { return s.portAtoms[ii] }

// IncidentTo returns the indices of the interactions with a port on atom
// ai, in declaration order. Read-only.
func (s *System) IncidentTo(ai int) []int { return s.incident[ai] }

// Scope returns interaction ii's exported variable scope ("comp.var"
// names its guard and action may access). Read-only.
func (s *System) Scope(ii int) map[string]bool { return s.scopes[ii] }

// Validate checks cross-references and builds lookup indices. Builders
// call it automatically; hand-assembled systems must call it before use.
func (s *System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("system: empty name")
	}
	s.atomIdx = make(map[string]int, len(s.Atoms))
	for i, a := range s.Atoms {
		if a == nil {
			return fmt.Errorf("system %s: nil atom at index %d", s.Name, i)
		}
		if _, dup := s.atomIdx[a.Name]; dup {
			return fmt.Errorf("system %s: duplicate component name %q", s.Name, a.Name)
		}
		if err := a.Validate(); err != nil {
			return fmt.Errorf("system %s: %w", s.Name, err)
		}
		s.atomIdx[a.Name] = i
	}
	s.interIdx = make(map[string]int, len(s.Interactions))
	for i, in := range s.Interactions {
		if err := s.validateInteraction(in); err != nil {
			return err
		}
		if _, dup := s.interIdx[in.Name]; dup {
			return fmt.Errorf("system %s: duplicate interaction name %q", s.Name, in.Name)
		}
		s.interIdx[in.Name] = i
	}
	// Resolve the structural indices the semantics hot paths rely on.
	s.portAtoms = make([][]int, len(s.Interactions))
	s.incident = make([][]int, len(s.Atoms))
	s.scopes = make([]map[string]bool, len(s.Interactions))
	for i, in := range s.Interactions {
		pa := make([]int, len(in.Ports))
		for pi, pr := range in.Ports {
			pa[pi] = s.atomIdx[pr.Comp]
			s.incident[pa[pi]] = append(s.incident[pa[pi]], i)
		}
		s.portAtoms[i] = pa
		s.scopes[i] = s.exportedScope(in)
	}
	s.higher = make([][]PriorityRule, len(s.Interactions))
	for _, p := range s.Priorities {
		lo, ok := s.interIdx[p.Low]
		if !ok {
			return fmt.Errorf("system %s: priority references unknown interaction %q", s.Name, p.Low)
		}
		hi, ok := s.interIdx[p.High]
		if !ok {
			return fmt.Errorf("system %s: priority references unknown interaction %q", s.Name, p.High)
		}
		if lo == hi {
			return fmt.Errorf("system %s: priority %q < %q is reflexive", s.Name, p.Low, p.High)
		}
		for _, v := range expr.Vars(p.When) {
			if _, _, err := s.splitQualified(v); err != nil {
				return fmt.Errorf("system %s: priority %s: %w", s.Name, p, err)
			}
		}
		s.higher[lo] = append(s.higher[lo], PriorityRule{High: hi, When: p.When})
	}
	s.compileInteractions()
	s.compilePriorities()
	s.computeIndependence()
	s.keyWidth = 0
	s.maxAtomVars = 0
	for _, a := range s.Atoms {
		s.keyWidth += a.BinaryKeyWidth()
		if len(a.Vars) > s.maxAtomVars {
			s.maxAtomVars = len(a.Vars)
		}
	}
	return nil
}

func (s *System) validateInteraction(in *Interaction) error {
	if in == nil {
		return fmt.Errorf("system %s: nil interaction", s.Name)
	}
	if in.Name == "" {
		return fmt.Errorf("system %s: interaction with empty name", s.Name)
	}
	if len(in.Ports) == 0 {
		return fmt.Errorf("system %s: interaction %q has no ports", s.Name, in.Name)
	}
	seenComp := make(map[string]bool, len(in.Ports))
	exported := make(map[string]bool)
	for _, pr := range in.Ports {
		ai, ok := s.atomIdx[pr.Comp]
		if !ok {
			return fmt.Errorf("system %s: interaction %q references unknown component %q", s.Name, in.Name, pr.Comp)
		}
		if seenComp[pr.Comp] {
			return fmt.Errorf("system %s: interaction %q uses component %q twice", s.Name, in.Name, pr.Comp)
		}
		seenComp[pr.Comp] = true
		port, ok := s.Atoms[ai].PortByName(pr.Port)
		if !ok {
			return fmt.Errorf("system %s: interaction %q references unknown port %s", s.Name, in.Name, pr)
		}
		for _, v := range port.Vars {
			exported[pr.Comp+"."+v] = true
		}
	}
	for _, v := range expr.Vars(in.Guard) {
		if !exported[v] {
			return fmt.Errorf("system %s: interaction %q guard reads %q, not exported by its ports", s.Name, in.Name, v)
		}
	}
	for _, v := range append(expr.Reads(in.Action), expr.Writes(in.Action)...) {
		if !exported[v] {
			return fmt.Errorf("system %s: interaction %q action uses %q, not exported by its ports", s.Name, in.Name, v)
		}
	}
	return nil
}

// splitQualified splits "comp.var" (component names may contain '/' and
// '.', so the split is at the last dot) and resolves the component.
func (s *System) splitQualified(name string) (atomIdx int, varName string, err error) {
	i := strings.LastIndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return 0, "", fmt.Errorf("variable %q is not of the form comp.var", name)
	}
	comp, v := name[:i], name[i+1:]
	ai, ok := s.atomIdx[comp]
	if !ok {
		return 0, "", fmt.Errorf("variable %q references unknown component %q", name, comp)
	}
	if !s.Atoms[ai].HasVar(v) {
		return 0, "", fmt.Errorf("variable %q: component %q has no variable %q", name, comp, v)
	}
	return ai, v, nil
}

// AtomIndex returns the index of the named component, or -1.
func (s *System) AtomIndex(name string) int {
	if i, ok := s.atomIdx[name]; ok {
		return i
	}
	return -1
}

// Atom returns the named component, or nil.
func (s *System) Atom(name string) *behavior.Atom {
	if i, ok := s.atomIdx[name]; ok {
		return s.Atoms[i]
	}
	return nil
}

// InteractionIndex returns the index of the named interaction, or -1.
func (s *System) InteractionIndex(name string) int {
	if i, ok := s.interIdx[name]; ok {
		return i
	}
	return -1
}

// InteractionNames returns all interaction names in declaration order.
func (s *System) InteractionNames() []string {
	out := make([]string, len(s.Interactions))
	for i, in := range s.Interactions {
		out[i] = in.Name
	}
	return out
}

// ClosePriorities returns the transitive closure of the unconditional
// priority rules (conditional rules are kept but not chained, since their
// conditions would need conjoining). BIP requires the priority relation to
// be a strict partial order; Validate accepts any rule set, and this
// helper produces the closure explicitly so that the model text stays
// small.
func (s *System) ClosePriorities() error {
	// The closure resolves interaction names through the lookup index, so
	// the system must have been validated first — a hand-assembled system
	// that skipped Validate would otherwise silently resolve every name to
	// index 0 and fabricate bogus edges.
	if s.interIdx == nil {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("system %s: ClosePriorities before Validate: %w", s.Name, err)
		}
	}
	// Collect the unconditional edges.
	type edge struct{ lo, hi int }
	have := make(map[edge]bool)
	var uncond []edge
	for _, p := range s.Priorities {
		if p.When != nil {
			continue
		}
		lo, ok := s.interIdx[p.Low]
		if !ok {
			return fmt.Errorf("system %s: priority references unknown interaction %q", s.Name, p.Low)
		}
		hi, ok := s.interIdx[p.High]
		if !ok {
			return fmt.Errorf("system %s: priority references unknown interaction %q", s.Name, p.High)
		}
		e := edge{lo, hi}
		have[e] = true
		uncond = append(uncond, e)
	}
	// Floyd–Warshall style closure over interaction indices.
	n := len(s.Interactions)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range uncond {
		adj[e.lo][e.hi] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !adj[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if adj[k][j] {
					adj[i][j] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if adj[i][i] {
			return fmt.Errorf("system %s: priority cycle through %q", s.Name, s.Interactions[i].Name)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if adj[i][j] && !have[edge{i, j}] {
				s.Priorities = append(s.Priorities, Priority{
					Low: s.Interactions[i].Name, High: s.Interactions[j].Name,
				})
			}
		}
	}
	return s.Validate()
}

// Stats summarizes model size; used by the tools' output.
func (s *System) Stats() string {
	return fmt.Sprintf("system %s: %d components, %d interactions, %d priorities",
		s.Name, len(s.Atoms), len(s.Interactions), len(s.Priorities))
}

// sortedQualifiedVars lists every "comp.var" in the system, sorted.
func (s *System) sortedQualifiedVars() []string {
	var out []string
	for _, a := range s.Atoms {
		for _, v := range a.Vars {
			out = append(out, a.Name+"."+v.Name)
		}
	}
	sort.Strings(out)
	return out
}

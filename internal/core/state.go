package core

import (
	"fmt"
	"strings"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// State is a global system state: per-component control locations and
// variable valuations, indexed like System.Atoms.
type State struct {
	Locs []string
	Vars []expr.MapEnv
}

// Initial returns the system's initial state.
func (s *System) Initial() State {
	st := State{Locs: make([]string, len(s.Atoms)), Vars: make([]expr.MapEnv, len(s.Atoms))}
	for i, a := range s.Atoms {
		local := a.InitialState()
		st.Locs[i] = local.Loc
		st.Vars[i] = local.Vars
	}
	return st
}

// Clone returns a deep copy of the state.
func (st State) Clone() State {
	out := State{Locs: append([]string(nil), st.Locs...), Vars: make([]expr.MapEnv, len(st.Vars))}
	for i, v := range st.Vars {
		out.Vars[i] = v.Clone()
	}
	return out
}

// Local returns the behaviour-level state of component i.
func (st State) Local(i int) behavior.State {
	return behavior.State{Loc: st.Locs[i], Vars: st.Vars[i]}
}

// Key returns a canonical encoding of the state usable as a map key.
func (st State) Key() string {
	var b strings.Builder
	for i := range st.Locs {
		if i > 0 {
			b.WriteByte('#')
		}
		b.WriteString(st.Local(i).Key())
	}
	return b.String()
}

// Equal reports whether two states coincide.
func (st State) Equal(o State) bool {
	if len(st.Locs) != len(o.Locs) {
		return false
	}
	for i := range st.Locs {
		if !st.Local(i).Equal(o.Local(i)) {
			return false
		}
	}
	return true
}

// qualEnv exposes a State as an expr.Env with qualified variable names
// ("comp.var"). When restrict is non-nil, only the listed names are
// readable/writable — used to enforce that interaction code touches only
// port-exported variables.
type qualEnv struct {
	sys      *System
	st       *State
	restrict map[string]bool
}

var _ expr.Env = (*qualEnv)(nil)

func (q *qualEnv) Get(name string) (expr.Value, bool) {
	if q.restrict != nil && !q.restrict[name] {
		return expr.Value{}, false
	}
	ai, v, err := q.sys.splitQualified(name)
	if err != nil {
		return expr.Value{}, false
	}
	return q.st.Vars[ai].Get(v)
}

func (q *qualEnv) Set(name string, val expr.Value) error {
	if q.restrict != nil && !q.restrict[name] {
		return fmt.Errorf("variable %q not accessible in this interaction", name)
	}
	ai, v, err := q.sys.splitQualified(name)
	if err != nil {
		return err
	}
	return q.st.Vars[ai].Set(v, val)
}

// QualEnv returns a read/write view of st with qualified names, spanning
// every variable of every component. It is used by state predicates
// (invariant checks, priority conditions) and by tests.
func (s *System) QualEnv(st *State) expr.Env {
	return &qualEnv{sys: s, st: st}
}

// exportedScope computes the set of qualified names the interaction's
// guard and action may access.
func (s *System) exportedScope(in *Interaction) map[string]bool {
	scope := make(map[string]bool)
	for _, pr := range in.Ports {
		a := s.Atoms[s.atomIdx[pr.Comp]]
		if port, ok := a.PortByName(pr.Port); ok {
			for _, v := range port.Vars {
				scope[pr.Comp+"."+v] = true
			}
		}
	}
	return scope
}

// Move is one way an interaction can fire from a state: the interaction
// index plus, for each of its ports (in declaration order), the chosen
// local transition index in the owning atom.
type Move struct {
	Interaction int
	Choices     []int
}

// Label returns the interaction name of the move.
func (s *System) Label(m Move) string { return s.Interactions[m.Interaction].Name }

// enabledOneInteraction collects the moves of interaction index ii at st.
// Priorities are not applied here.
func (s *System) enabledOneInteraction(st State, ii int) ([]Move, error) {
	in := s.Interactions[ii]
	// Per-port enabled local transitions.
	options := make([][]int, len(in.Ports))
	for pi, pr := range in.Ports {
		ai := s.atomIdx[pr.Comp]
		en, err := s.Atoms[ai].Enabled(st.Local(ai), pr.Port)
		if err != nil {
			return nil, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		if len(en) == 0 {
			return nil, nil
		}
		options[pi] = en
	}
	// Interaction guard over exported variables.
	if in.Guard != nil {
		env := &qualEnv{sys: s, st: &st, restrict: s.exportedScope(in)}
		ok, err := expr.EvalBool(in.Guard, env)
		if err != nil {
			return nil, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		if !ok {
			return nil, nil
		}
	}
	// Cartesian product of per-port choices.
	var moves []Move
	choice := make([]int, len(options))
	var rec func(int)
	rec = func(pi int) {
		if pi == len(options) {
			moves = append(moves, Move{Interaction: ii, Choices: append([]int(nil), choice...)})
			return
		}
		for _, t := range options[pi] {
			choice[pi] = t
			rec(pi + 1)
		}
	}
	rec(0)
	return moves, nil
}

// EnabledRaw returns every enabled move at st, before priority filtering.
func (s *System) EnabledRaw(st State) ([]Move, error) {
	var out []Move
	for ii := range s.Interactions {
		ms, err := s.enabledOneInteraction(st, ii)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// Enabled returns the moves allowed at st: enabled interactions that are
// maximal with respect to the priority rules (a move is suppressed when a
// rule Low < High applies, High is enabled at st, and the rule's condition
// holds). This is the BIP glue semantics: interactions restricted by
// priorities.
func (s *System) Enabled(st State) ([]Move, error) {
	raw, err := s.EnabledRaw(st)
	if err != nil {
		return nil, err
	}
	if len(s.Priorities) == 0 || len(raw) == 0 {
		return raw, nil
	}
	enabledInter := make(map[int]bool, len(raw))
	for _, m := range raw {
		enabledInter[m.Interaction] = true
	}
	env := &qualEnv{sys: s, st: &st}
	out := raw[:0]
	for _, m := range raw {
		dominated := false
		for _, rp := range s.higher[m.Interaction] {
			if !enabledInter[rp.high] {
				continue
			}
			ok, err := expr.EvalBool(rp.when, env)
			if err != nil {
				return nil, fmt.Errorf("priority %s < %s: %w",
					s.Interactions[m.Interaction].Name, s.Interactions[rp.high].Name, err)
			}
			if ok {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, m)
		}
	}
	return append([]Move(nil), out...), nil
}

// Exec fires move m from st and returns the successor state. Execution
// order follows BIP semantics: the interaction's data transfer runs first
// over the exported variables, then each participant fires its chosen
// local transition. The input state is not mutated.
func (s *System) Exec(st State, m Move) (State, error) {
	if m.Interaction < 0 || m.Interaction >= len(s.Interactions) {
		return State{}, fmt.Errorf("system %s: move references interaction %d out of range", s.Name, m.Interaction)
	}
	in := s.Interactions[m.Interaction]
	if len(m.Choices) != len(in.Ports) {
		return State{}, fmt.Errorf("system %s: move for %q has %d choices, want %d",
			s.Name, in.Name, len(m.Choices), len(in.Ports))
	}
	// Copy-on-write: only the participants' variable stores can change,
	// so non-participant maps are shared with the predecessor state.
	// States are treated as immutable once produced (exploration and
	// engines never write into a state they did not just create).
	next := State{
		Locs: append([]string(nil), st.Locs...),
		Vars: append([]expr.MapEnv(nil), st.Vars...),
	}
	for _, pr := range in.Ports {
		ai := s.atomIdx[pr.Comp]
		next.Vars[ai] = st.Vars[ai].Clone()
	}
	if in.Action != nil {
		env := &qualEnv{sys: s, st: &next, restrict: s.exportedScope(in)}
		if err := in.Action.Exec(env); err != nil {
			return State{}, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
	}
	for pi, pr := range in.Ports {
		ai := s.atomIdx[pr.Comp]
		local, err := s.Atoms[ai].Exec(next.Local(ai), m.Choices[pi])
		if err != nil {
			return State{}, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		next.Locs[ai] = local.Loc
		next.Vars[ai] = local.Vars
	}
	return next, nil
}

// CheckInvariants evaluates every atom-level invariant at st and returns
// the first violated one, if any.
func (s *System) CheckInvariants(st State) error {
	for i, a := range s.Atoms {
		for _, inv := range a.Invariants {
			ok, err := expr.EvalBool(inv, st.Vars[i])
			if err != nil {
				return fmt.Errorf("component %s invariant %s: %w", a.Name, inv, err)
			}
			if !ok {
				return fmt.Errorf("component %s violates invariant %s at %s", a.Name, inv, st.Local(i).Key())
			}
		}
	}
	return nil
}

package core

import (
	"fmt"
	"strings"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// State is a global system state: per-component control locations and
// variable valuations, indexed like System.Atoms.
type State struct {
	Locs []string
	Vars []expr.MapEnv
}

// Initial returns the system's initial state.
func (s *System) Initial() State {
	st := State{Locs: make([]string, len(s.Atoms)), Vars: make([]expr.MapEnv, len(s.Atoms))}
	for i, a := range s.Atoms {
		local := a.InitialState()
		st.Locs[i] = local.Loc
		st.Vars[i] = local.Vars
	}
	return st
}

// Clone returns a deep copy of the state.
func (st State) Clone() State {
	out := State{Locs: append([]string(nil), st.Locs...), Vars: make([]expr.MapEnv, len(st.Vars))}
	for i, v := range st.Vars {
		out.Vars[i] = v.Clone()
	}
	return out
}

// Local returns the behaviour-level state of component i.
func (st State) Local(i int) behavior.State {
	return behavior.State{Loc: st.Locs[i], Vars: st.Vars[i]}
}

// Key returns a canonical encoding of the state usable as a map key.
func (st State) Key() string {
	var b strings.Builder
	for i := range st.Locs {
		if i > 0 {
			b.WriteByte('#')
		}
		b.WriteString(st.Local(i).Key())
	}
	return b.String()
}

// AppendStateKey appends a canonical encoding of st to buf and returns
// the extended buffer. It is equality-compatible with State.Key (two
// states get equal encodings iff they are Equal) but encodes variables in
// each atom's declaration order, so it needs no sorting and performs no
// intermediate allocations; exploration uses it with a reused buffer.
func (s *System) AppendStateKey(buf []byte, st State) []byte {
	for i, a := range s.Atoms {
		if i > 0 {
			buf = append(buf, '#')
		}
		buf = a.AppendStateKey(buf, behavior.State{Loc: st.Locs[i], Vars: st.Vars[i]})
	}
	return buf
}

// StateKey returns the canonical encoding of st as a string.
func (s *System) StateKey(st State) string { return string(s.AppendStateKey(nil, st)) }

// BinaryKeyWidth returns the size of the fixed-width binary state key.
// Available after Validate.
func (s *System) BinaryKeyWidth() int { return s.keyWidth }

// AppendBinaryKey appends the fixed-width binary encoding of st —
// exactly BinaryKeyWidth bytes — and returns the extended buffer. Each
// atom contributes its interned-location record (behavior.AppendBinaryKey)
// in atom order; fixed widths mean no separators are needed and the
// encoding is equality-compatible with State.Equal. Exploration's
// seen-sets store these records in flat per-shard arenas instead of one
// Go string per state. The system must have been validated.
func (s *System) AppendBinaryKey(buf []byte, st State) []byte {
	for i, a := range s.Atoms {
		buf = a.AppendBinaryKey(buf, behavior.State{Loc: st.Locs[i], Vars: st.Vars[i]})
	}
	return buf
}

// StateFromBinaryKey inverts AppendBinaryKey: it rebuilds a
// materialized State from one fixed-width binary key (exactly
// BinaryKeyWidth bytes). Round-tripping is exact — the decoded state
// re-encodes to the same key and carries the atoms' own declared
// location strings — which is what lets the exploration drivers treat
// the key as the complete on-disk representation of a spilled frontier
// state.
func (s *System) StateFromBinaryKey(key []byte) (State, error) {
	if len(key) != s.keyWidth {
		return State{}, fmt.Errorf("system %s: binary state key has %d bytes, want %d", s.Name, len(key), s.keyWidth)
	}
	st := State{Locs: make([]string, len(s.Atoms)), Vars: make([]expr.MapEnv, len(s.Atoms))}
	off := 0
	for i, a := range s.Atoms {
		w := a.BinaryKeyWidth()
		local, err := a.DecodeBinaryKey(key[off : off+w])
		if err != nil {
			return State{}, fmt.Errorf("system %s: %w", s.Name, err)
		}
		st.Locs[i] = local.Loc
		st.Vars[i] = local.Vars
		off += w
	}
	return st, nil
}

// Equal reports whether two states coincide.
func (st State) Equal(o State) bool {
	if len(st.Locs) != len(o.Locs) {
		return false
	}
	for i := range st.Locs {
		if !st.Local(i).Equal(o.Local(i)) {
			return false
		}
	}
	return true
}

// qualEnv exposes a State as an expr.Env with qualified variable names
// ("comp.var"). When restrict is non-nil, only the listed names are
// readable/writable — used to enforce that interaction code touches only
// port-exported variables.
type qualEnv struct {
	sys      *System
	st       *State
	restrict map[string]bool
}

var _ expr.Env = (*qualEnv)(nil)

func (q *qualEnv) Get(name string) (expr.Value, bool) {
	if q.restrict != nil && !q.restrict[name] {
		return expr.Value{}, false
	}
	ai, v, err := q.sys.splitQualified(name)
	if err != nil {
		return expr.Value{}, false
	}
	return q.st.Vars[ai].Get(v)
}

func (q *qualEnv) Set(name string, val expr.Value) error {
	if q.restrict != nil && !q.restrict[name] {
		return fmt.Errorf("variable %q not accessible in this interaction", name)
	}
	ai, v, err := q.sys.splitQualified(name)
	if err != nil {
		return err
	}
	return q.st.Vars[ai].Set(v, val)
}

// QualEnv returns a read/write view of st with qualified names, spanning
// every variable of every component. It is used by state predicates
// (invariant checks, priority conditions) and by tests.
func (s *System) QualEnv(st *State) expr.Env {
	return &qualEnv{sys: s, st: st}
}

// exportedScope computes the set of qualified names the interaction's
// guard and action may access.
func (s *System) exportedScope(in *Interaction) map[string]bool {
	scope := make(map[string]bool)
	for _, pr := range in.Ports {
		a := s.Atoms[s.atomIdx[pr.Comp]]
		if port, ok := a.PortByName(pr.Port); ok {
			for _, v := range port.Vars {
				scope[pr.Comp+"."+v] = true
			}
		}
	}
	return scope
}

// Move is one way an interaction can fire from a state: the interaction
// index plus, for each of its ports (in declaration order), the chosen
// local transition index in the owning atom.
type Move struct {
	Interaction int
	Choices     []int
}

// Label returns the interaction name of the move.
func (s *System) Label(m Move) string { return s.Interactions[m.Interaction].Name }

// movesOfInteraction appends the moves of interaction index ii at st to
// buf. Priorities are not applied here. This is the single-interaction
// primitive both the from-scratch API and the incremental step context
// build on. frame is the caller's scratch for compiled guard evaluation
// (sized by newIFrame); it may be nil only when no interaction exports
// variables.
func (s *System) movesOfInteraction(st *State, ii int, buf []Move, frame []expr.Value) ([]Move, error) {
	return s.movesOfInteractionSlab(st, ii, buf, frame, nil)
}

// movesOfInteractionSlab is movesOfInteraction with the moves' choice
// vectors carved from slab when non-nil (exploration's per-worker
// arenas) instead of heap-allocated.
func (s *System) movesOfInteractionSlab(st *State, ii int, buf []Move, frame []expr.Value, slab *Slab) ([]Move, error) {
	in := s.Interactions[ii]
	pa := s.portAtoms[ii]
	// Per-port enabled local transitions, on the stack for typical arities.
	var optArr [8][]int
	var options [][]int
	if len(in.Ports) <= len(optArr) {
		options = optArr[:len(in.Ports)]
	} else {
		options = make([][]int, len(in.Ports))
	}
	for pi, pr := range in.Ports {
		ai := pa[pi]
		en, err := s.Atoms[ai].EnabledView(st.Local(ai), pr.Port)
		if err != nil {
			return nil, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		if len(en) == 0 {
			return buf, nil
		}
		options[pi] = en
	}
	// Interaction guard over exported variables: compiled against the
	// interaction's slot layout when possible (one map read per slot, no
	// per-access string splitting), interpreted through qualEnv otherwise.
	if in.Guard != nil {
		ic := &s.icomp[ii]
		var ok bool
		var err error
		if ic.guard != nil {
			ok, err = ic.guard(ic.fillIFrame(frame, st))
		} else {
			env := &qualEnv{sys: s, st: st, restrict: s.scopes[ii]}
			ok, err = expr.EvalBool(in.Guard, env)
		}
		if err != nil {
			return nil, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		if !ok {
			return buf, nil
		}
	}
	// Cartesian product of per-port choices.
	var choiceArr [8]int
	var choice []int
	if len(options) <= len(choiceArr) {
		choice = choiceArr[:len(options)]
	} else {
		choice = make([]int, len(options))
	}
	var rec func(int)
	rec = func(pi int) {
		if pi == len(options) {
			var cs []int
			if slab != nil {
				cs = slab.Ints(len(choice))
				copy(cs, choice)
			} else {
				cs = append([]int(nil), choice...)
			}
			buf = append(buf, Move{Interaction: ii, Choices: cs})
			return
		}
		for _, t := range options[pi] {
			choice[pi] = t
			rec(pi + 1)
		}
	}
	rec(0)
	return buf, nil
}

// EnabledRaw returns every enabled move at st, before priority filtering.
func (s *System) EnabledRaw(st State) ([]Move, error) {
	var out []Move
	var err error
	frame := s.newIFrame()
	for ii := range s.Interactions {
		out, err = s.movesOfInteraction(&st, ii, out, frame)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Enabled returns the moves allowed at st: enabled interactions that are
// maximal with respect to the priority rules (a move is suppressed when a
// rule Low < High applies, High is enabled at st, and the rule's condition
// holds). This is the BIP glue semantics: interactions restricted by
// priorities. It shares the priority filter with the incremental paths
// (enabledFromTable), so the reference and incremental semantics cannot
// drift apart.
func (s *System) Enabled(st State) ([]Move, error) {
	if len(s.Priorities) == 0 {
		return s.EnabledRaw(st)
	}
	vec, err := s.EnabledVector(st)
	if err != nil {
		return nil, err
	}
	return s.enabledFromTable(vec, &st, make([]bool, len(s.Interactions)), s.newIFrame(), nil)
}

// Exec fires move m from st and returns the successor state. Execution
// order follows BIP semantics: the interaction's data transfer runs first
// over the exported variables, then each participant fires its chosen
// local transition. The input state is not mutated.
func (s *System) Exec(st State, m Move) (State, error) {
	if m.Interaction < 0 || m.Interaction >= len(s.Interactions) {
		return State{}, fmt.Errorf("system %s: move references interaction %d out of range", s.Name, m.Interaction)
	}
	in := s.Interactions[m.Interaction]
	if len(m.Choices) != len(in.Ports) {
		return State{}, fmt.Errorf("system %s: move for %q has %d choices, want %d",
			s.Name, in.Name, len(m.Choices), len(in.Ports))
	}
	// Copy-on-write: only the participants' variable stores can change,
	// so non-participant maps are shared with the predecessor state.
	// States are treated as immutable once produced (exploration and
	// engines never write into a state they did not just create). The
	// participants' stores are cloned exactly once; both the interaction's
	// data transfer and the local transition actions then run in place on
	// the clones.
	pa := s.portAtoms[m.Interaction]
	next := State{
		Locs: append([]string(nil), st.Locs...),
		Vars: append([]expr.MapEnv(nil), st.Vars...),
	}
	for _, ai := range pa {
		next.Vars[ai] = st.Vars[ai].Clone()
	}
	if err := s.execInto(&next, m, s.newIFrame()); err != nil {
		return State{}, err
	}
	return next, nil
}

// execInto fires m on next, whose participant variable stores must be
// exclusively owned by the caller. On error next is partially updated and
// must be discarded. frame is the caller's scratch for the compiled data
// transfer (see movesOfInteraction).
func (s *System) execInto(next *State, m Move, frame []expr.Value) error {
	in := s.Interactions[m.Interaction]
	pa := s.portAtoms[m.Interaction]
	if in.Action != nil {
		if ic := &s.icomp[m.Interaction]; ic.action != nil {
			f := ic.fillIFrame(frame, next)
			if err := ic.action(f); err != nil {
				return fmt.Errorf("interaction %q: %w", in.Name, err)
			}
			ic.storeIFrame(f, next)
		} else {
			env := &qualEnv{sys: s, st: next, restrict: s.scopes[m.Interaction]}
			if err := in.Action.Exec(env); err != nil {
				return fmt.Errorf("interaction %q: %w", in.Name, err)
			}
		}
	}
	for pi, ai := range pa {
		loc, err := s.Atoms[ai].ExecInPlace(next.Local(ai), m.Choices[pi])
		if err != nil {
			return fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		next.Locs[ai] = loc
	}
	return nil
}

// ScratchExec executes moves into reusable buffers, so that exploration
// can compute a successor's key — and discard already-visited successors
// — without allocating anything. Only genuinely new states are
// materialized. Not safe for concurrent use.
type ScratchExec struct {
	sys   *System
	st    State
	maps  []expr.MapEnv // reusable per-atom variable stores
	frame []expr.Value  // scratch for compiled interaction actions
}

// NewScratchExec returns a scratch executor for s.
func (s *System) NewScratchExec() *ScratchExec {
	maps := make([]expr.MapEnv, len(s.Atoms))
	for i, a := range s.Atoms {
		if len(a.Vars) > 0 {
			maps[i] = make(expr.MapEnv, len(a.Vars))
		}
	}
	return &ScratchExec{sys: s, maps: maps, frame: s.newIFrame()}
}

// Exec fires m from st into the scratch buffers and returns a read-only
// view of the successor, valid until the next Exec. The input state is
// not mutated. Use Materialize to turn the view into a retained state.
func (x *ScratchExec) Exec(st State, m Move) (*State, error) {
	s := x.sys
	if m.Interaction < 0 || m.Interaction >= len(s.Interactions) {
		return nil, fmt.Errorf("system %s: move references interaction %d out of range", s.Name, m.Interaction)
	}
	if len(m.Choices) != len(s.Interactions[m.Interaction].Ports) {
		return nil, fmt.Errorf("system %s: move for %q has %d choices, want %d",
			s.Name, s.Interactions[m.Interaction].Name, len(m.Choices), len(s.Interactions[m.Interaction].Ports))
	}
	x.st.Locs = append(x.st.Locs[:0], st.Locs...)
	x.st.Vars = append(x.st.Vars[:0], st.Vars...)
	for _, ai := range s.portAtoms[m.Interaction] {
		dst := x.maps[ai]
		if dst == nil {
			continue // atom without variables: nothing can be written
		}
		clear(dst)
		for k, v := range st.Vars[ai] {
			dst[k] = v
		}
		x.st.Vars[ai] = dst
	}
	if err := s.execInto(&x.st, m, x.frame); err != nil {
		return nil, err
	}
	return &x.st, nil
}

// Materialize returns a retained copy of the last executed successor.
// Participant variable stores are cloned out of the scratch buffers;
// everything else is shared with the predecessor, matching System.Exec's
// copy-on-write discipline.
func (x *ScratchExec) Materialize(m Move) State {
	out := State{
		Locs: append([]string(nil), x.st.Locs...),
		Vars: append([]expr.MapEnv(nil), x.st.Vars...),
	}
	for _, ai := range x.sys.portAtoms[m.Interaction] {
		if x.maps[ai] != nil {
			out.Vars[ai] = x.maps[ai].Clone()
		}
	}
	return out
}

// CheckInvariants evaluates every atom-level invariant at st and returns
// the first violated one, if any. Repeated callers (engines, streaming
// verification) should hold an InvariantChecker instead, which reuses
// its evaluation frame across calls.
func (s *System) CheckInvariants(st State) error {
	return s.NewInvariantChecker().Check(st)
}

// InvariantChecker evaluates the atoms' designer-asserted invariants
// over a reusable frame, running the slot-compiled forms built at
// Validate time (behavior.Atom.BrokenInvariant). A checker owns its
// scratch and is not safe for concurrent use; the System stays
// read-only, so distinct checkers over the same System are independent.
type InvariantChecker struct {
	sys   *System
	frame []expr.Value
}

// NewInvariantChecker returns a checker for s. The system must have been
// validated.
func (s *System) NewInvariantChecker() *InvariantChecker {
	return &InvariantChecker{sys: s, frame: make([]expr.Value, s.maxAtomVars)}
}

// Check evaluates every atom-level invariant at st and returns the first
// violated one, if any.
func (c *InvariantChecker) Check(st State) error {
	for i, a := range c.sys.Atoms {
		if len(a.Invariants) == 0 {
			continue
		}
		bad, err := a.BrokenInvariant(st.Vars[i], c.frame)
		if err != nil {
			return fmt.Errorf("component %s invariant %s: %w", a.Name, a.Invariants[bad], err)
		}
		if bad >= 0 {
			return fmt.Errorf("component %s violates invariant %s at %s", a.Name, a.Invariants[bad], st.Local(i).Key())
		}
	}
	return nil
}

package core

// ExploreCtx bundles the per-worker mutable machinery of state-space
// exploration: a table deriver, a scratch executor, and reusable move
// and key buffers. A single ExploreCtx is not safe for concurrent use,
// but distinct instances over the same System are: a validated System is
// read-only (Validate precomputes every index, scope, compiled closure
// and scratch-sizing, and nothing in the semantics writes to it
// afterwards), so the parallel explorer hands each worker its own
// ExploreCtx and shares the System itself.
type ExploreCtx struct {
	Deriver *TableDeriver
	Scratch *ScratchExec
	// Slab is the worker's arena for per-state machinery: materialized
	// state-store headers, derived move tables, move lists and choice
	// vectors (MaterializeSlab, DeriveSlab). It is the value-slot side
	// of the seen-set's interned-key arenas.
	Slab *Slab
	// Moves is the reusable buffer for per-state enabled-move lists.
	Moves []Move
	// Key is the reusable buffer for fixed-width binary state keys.
	Key []byte
}

// NewExploreCtx returns a fresh exploration context for s. The system
// must have been validated.
func (s *System) NewExploreCtx() *ExploreCtx {
	return &ExploreCtx{
		Deriver: s.NewTableDeriver(),
		Scratch: s.NewScratchExec(),
		Slab:    &Slab{},
		Key:     make([]byte, 0, s.BinaryKeyWidth()),
	}
}

package core

import (
	"fmt"
	"strings"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// Component is a node of a hierarchical BIP model: either an Instance
// (leaf atom) or a Composite. Hierarchical models are flattened to a
// System before analysis or execution; the paper's incrementality and
// flattening requirements (§5.3.2) say — and experiment E13 checks — that
// this transformation preserves behaviour up to interaction renaming.
type Component interface {
	// ComponentName returns the instance name of the node within its
	// parent.
	ComponentName() string
	// ExportedPort resolves an exported port name to the leaf-level
	// reference relative to this node (path segments joined by '/').
	ExportedPort(name string) (PortRef, error)
}

// Instance is a leaf component: a named atom.
type Instance struct {
	Name string
	Atom *behavior.Atom
}

var _ Component = (*Instance)(nil)

// ComponentName implements Component.
func (i *Instance) ComponentName() string { return i.Name }

// ExportedPort implements Component: every port of the atom is exported.
// The returned reference is relative to the instance itself (empty Comp),
// so that resolve can build the correct path.
func (i *Instance) ExportedPort(name string) (PortRef, error) {
	if !i.Atom.HasPort(name) {
		return PortRef{}, fmt.Errorf("instance %s: no port %q", i.Name, name)
	}
	return PortRef{Port: name}, nil
}

// Export re-exports a sub-component port under a new name at the
// composite boundary.
type Export struct {
	Name string  // name visible to the parent
	Of   PortRef // Comp = sub-component name, Port = its (exported) port
}

// Composite is an internal node: sub-components glued by interactions and
// priorities, with an explicit export interface. Interaction port
// references use sub-component names; referencing a sub-composite means
// referencing one of its exports.
type Composite struct {
	Name         string
	Subs         []Component
	Interactions []*Interaction
	Priorities   []Priority
	Exports      []Export
}

var _ Component = (*Composite)(nil)

// ComponentName implements Component.
func (c *Composite) ComponentName() string { return c.Name }

// ExportedPort implements Component.
func (c *Composite) ExportedPort(name string) (PortRef, error) {
	for _, e := range c.Exports {
		if e.Name != name {
			continue
		}
		inner, err := c.resolve(e.Of)
		if err != nil {
			return PortRef{}, fmt.Errorf("composite %s: export %q: %w", c.Name, name, err)
		}
		return inner, nil
	}
	return PortRef{}, fmt.Errorf("composite %s: no export %q", c.Name, name)
}

// sub returns the named direct sub-component.
func (c *Composite) sub(name string) (Component, error) {
	for _, s := range c.Subs {
		if s.ComponentName() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("composite %s: no sub-component %q", c.Name, name)
}

// resolve maps a reference relative to this composite ("sub.port", where
// port may be an export of a sub-composite) to a leaf-level reference with
// a '/'-joined path.
func (c *Composite) resolve(ref PortRef) (PortRef, error) {
	s, err := c.sub(ref.Comp)
	if err != nil {
		return PortRef{}, err
	}
	inner, err := s.ExportedPort(ref.Port)
	if err != nil {
		return PortRef{}, err
	}
	comp := ref.Comp
	if inner.Comp != "" {
		comp = ref.Comp + "/" + inner.Comp
	}
	return PortRef{Comp: comp, Port: inner.Port}, nil
}

// Flatten elaborates a hierarchical component into a flat System. Leaf
// atoms are renamed to their '/'-joined paths; interactions of nested
// composites are renamed likewise, so priorities stay within their
// composite of origin (BIP's layered application of glue).
func Flatten(root Component) (*System, error) {
	b := NewSystem(root.ComponentName())
	if err := flattenInto(b, root, ""); err != nil {
		return nil, err
	}
	return b.Build()
}

func flattenInto(b *SystemBuilder, node Component, path string) error {
	switch n := node.(type) {
	case *Instance:
		if n.Atom == nil {
			return fmt.Errorf("instance %s: nil atom", n.Name)
		}
		name := n.Name
		if path != "" {
			name = path
		}
		b.AddAs(name, n.Atom)
		return nil
	case *Composite:
		for _, s := range n.Subs {
			childPath := s.ComponentName()
			if path != "" {
				childPath = path + "/" + s.ComponentName()
			}
			if err := flattenInto(b, s, childPath); err != nil {
				return err
			}
		}
		prefix := ""
		if path != "" {
			prefix = path + "/"
		}
		for _, in := range n.Interactions {
			flat, err := flattenInteraction(n, in, path)
			if err != nil {
				return err
			}
			b.Interaction(flat)
		}
		for _, p := range n.Priorities {
			b.sys.Priorities = append(b.sys.Priorities, Priority{
				Low:  prefix + p.Low,
				High: prefix + p.High,
				When: expr.Rename(p.When, func(v string) string { return renameQualified(n, v, path) }),
			})
		}
		return nil
	default:
		return fmt.Errorf("flatten: unknown component type %T", node)
	}
}

// flattenInteraction rewrites an interaction declared inside composite n
// (at the given path) into leaf-level references and renames the
// qualified variables of its guard and action accordingly.
func flattenInteraction(n *Composite, in *Interaction, path string) (*Interaction, error) {
	prefix := ""
	if path != "" {
		prefix = path + "/"
	}
	flat := &Interaction{Name: prefix + in.Name}
	for _, pr := range in.Ports {
		leaf, err := n.resolve(pr)
		if err != nil {
			return nil, fmt.Errorf("interaction %q: %w", in.Name, err)
		}
		flat.Ports = append(flat.Ports, PortRef{Comp: prefix + leaf.Comp, Port: leaf.Port})
	}
	ren := func(v string) string { return renameQualified(n, v, path) }
	flat.Guard = expr.Rename(in.Guard, ren)
	flat.Action = expr.RenameStmt(in.Action, ren)
	return flat, nil
}

// renameQualified rewrites "sub.var" (or "sub/deeper.var") so that the
// first path segment, which names a direct sub-component of n, is resolved
// against the flattening path. Variables of sub-composites are referenced
// through the leaf path of the component that owns them, so only the
// prefix changes.
func renameQualified(n *Composite, v string, path string) string {
	prefix := ""
	if path != "" {
		prefix = path + "/"
	}
	dot := strings.LastIndexByte(v, '.')
	if dot <= 0 {
		return v
	}
	comp := v[:dot]
	// Direct sub-instance or a path already rooted at a sub of n: both
	// become prefix + comp.
	return prefix + comp + v[dot:]
}

// NewComposite builds a composite node.
func NewComposite(name string) *CompositeBuilder {
	return &CompositeBuilder{c: Composite{Name: name}}
}

// CompositeBuilder assembles a Composite with a fluent API mirroring
// SystemBuilder.
type CompositeBuilder struct {
	c Composite
}

// Sub adds a sub-component.
func (b *CompositeBuilder) Sub(c Component) *CompositeBuilder {
	b.c.Subs = append(b.c.Subs, c)
	return b
}

// Atom adds a leaf instance wrapping a (renamed copy of an) atom.
func (b *CompositeBuilder) Atom(name string, a *behavior.Atom) *CompositeBuilder {
	return b.Sub(&Instance{Name: name, Atom: a.Rename(name)})
}

// Connect adds a rendezvous interaction over sub-component ports.
func (b *CompositeBuilder) Connect(name string, ports ...PortRef) *CompositeBuilder {
	b.c.Interactions = append(b.c.Interactions, &Interaction{Name: name, Ports: ports})
	return b
}

// ConnectGD adds an interaction with guard and data transfer.
func (b *CompositeBuilder) ConnectGD(name string, guard expr.Expr, action expr.Stmt, ports ...PortRef) *CompositeBuilder {
	b.c.Interactions = append(b.c.Interactions, &Interaction{Name: name, Ports: ports, Guard: guard, Action: action})
	return b
}

// Priority adds a priority rule between this composite's interactions.
func (b *CompositeBuilder) Priority(low, high string) *CompositeBuilder {
	b.c.Priorities = append(b.c.Priorities, Priority{Low: low, High: high})
	return b
}

// Export re-exports a sub-component port.
func (b *CompositeBuilder) Export(name string, of PortRef) *CompositeBuilder {
	b.c.Exports = append(b.c.Exports, Export{Name: name, Of: of})
	return b
}

// Build returns the composite.
func (b *CompositeBuilder) Build() *Composite {
	c := b.c
	return &c
}

package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// randSystem builds a random valid system: atoms with guarded, data-
// carrying, nondeterministic transitions; interactions with guards and
// data transfer over exported variables; conditional and unconditional
// priorities. It is the workload of the differential test.
func randSystem(t testing.TB, rng *rand.Rand) *System {
	t.Helper()
	nAtoms := 2 + rng.Intn(4)
	b := NewSystem(fmt.Sprintf("rand-%d", nAtoms))
	type portInfo struct{ comp, port, varName string }
	var ports []portInfo
	for ai := 0; ai < nAtoms; ai++ {
		name := fmt.Sprintf("c%d", ai)
		nLocs := 1 + rng.Intn(3)
		locs := make([]string, nLocs)
		for i := range locs {
			locs[i] = fmt.Sprintf("l%d", i)
		}
		ab := behavior.NewBuilder(name).Location(locs...).Int("x", int64(rng.Intn(3)))
		nPorts := 1 + rng.Intn(2)
		for pi := 0; pi < nPorts; pi++ {
			pname := fmt.Sprintf("p%d", pi)
			ab.Port(pname, "x")
			ports = append(ports, portInfo{comp: name, port: pname, varName: "x"})
			// A few transitions per port, some guarded, some
			// nondeterministic (same source and port, different targets).
			nTrans := 1 + rng.Intn(3)
			for ti := 0; ti < nTrans; ti++ {
				from := locs[rng.Intn(nLocs)]
				to := locs[rng.Intn(nLocs)]
				var guard expr.Expr
				if rng.Intn(2) == 0 {
					guard = expr.Lt(expr.V("x"), expr.I(int64(1+rng.Intn(4))))
				}
				var action expr.Stmt
				if rng.Intn(2) == 0 {
					action = expr.Set("x", expr.Mod(expr.Add(expr.V("x"), expr.I(1)), expr.I(5)))
				}
				ab.TransitionG(from, pname, to, guard, action)
			}
		}
		atom, err := ab.Build()
		if err != nil {
			t.Fatalf("random atom: %v", err)
		}
		b.Add(atom)
	}
	nInter := 2 + rng.Intn(5)
	for ii := 0; ii < nInter; ii++ {
		// Pick 1-3 ports on distinct components.
		perm := rng.Perm(len(ports))
		var refs []PortRef
		var quals []string
		seen := map[string]bool{}
		want := 1 + rng.Intn(3)
		for _, pi := range perm {
			p := ports[pi]
			if seen[p.comp] {
				continue
			}
			seen[p.comp] = true
			refs = append(refs, P(p.comp, p.port))
			quals = append(quals, p.comp+"."+p.varName)
			if len(refs) == want {
				break
			}
		}
		var guard expr.Expr
		if rng.Intn(3) == 0 {
			guard = expr.Le(expr.V(quals[0]), expr.I(int64(1+rng.Intn(4))))
		}
		var action expr.Stmt
		if len(quals) > 1 && rng.Intn(3) == 0 {
			action = expr.Set(quals[0], expr.Mod(expr.Add(expr.V(quals[1]), expr.I(1)), expr.I(5)))
		}
		b.ConnectGD(fmt.Sprintf("i%d", ii), guard, action, refs...)
	}
	// Priorities over random distinct pairs, some conditional.
	for k := 0; k < rng.Intn(4); k++ {
		lo, hi := rng.Intn(nInter), rng.Intn(nInter)
		if lo == hi {
			continue
		}
		if rng.Intn(2) == 0 {
			b.Priority(fmt.Sprintf("i%d", lo), fmt.Sprintf("i%d", hi))
		} else {
			b.PriorityWhen(fmt.Sprintf("i%d", lo), fmt.Sprintf("i%d", hi),
				expr.Gt(expr.V("c0.x"), expr.I(int64(rng.Intn(3)))))
		}
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("random system: %v", err)
	}
	return sys
}

func movesEqual(a, b []Move) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Interaction != b[i].Interaction || len(a[i].Choices) != len(b[i].Choices) {
			return false
		}
		for j := range a[i].Choices {
			if a[i].Choices[j] != b[i].Choices[j] {
				return false
			}
		}
	}
	return true
}

func fmtMoves(sys *System, ms []Move) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("%s%v", sys.Label(m), m.Choices)
	}
	return strings.Join(parts, " ")
}

// TestStepperDifferential is the semantic-equivalence oracle required by
// the incremental engine: on random systems, the from-scratch Enabled /
// EnabledRaw, the incremental Stepper, and the derived-table exploration
// path must produce identical move sets after every step of random runs.
func TestStepperDifferential(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randSystem(t, rng)
		sp := sys.NewStepper()
		st := sys.Initial()
		vec, err := sys.EnabledVector(st)
		if err != nil {
			t.Fatalf("seed %d: EnabledVector: %v", seed, err)
		}
		deriver := sys.NewTableDeriver()
		scratch := sys.NewScratchExec()
		for step := 0; step < 60; step++ {
			want, err := sys.Enabled(st)
			if err != nil {
				t.Fatalf("seed %d step %d: Enabled: %v", seed, step, err)
			}
			got, err := sp.Enabled()
			if err != nil {
				t.Fatalf("seed %d step %d: stepper Enabled: %v", seed, step, err)
			}
			if !movesEqual(want, got) {
				t.Fatalf("seed %d step %d: move sets differ\n scratch: %s\n stepper: %s",
					seed, step, fmtMoves(sys, want), fmtMoves(sys, got))
			}
			wantRaw, err := sys.EnabledRaw(st)
			if err != nil {
				t.Fatalf("seed %d step %d: EnabledRaw: %v", seed, step, err)
			}
			gotRaw, err := sp.EnabledRaw()
			if err != nil {
				t.Fatalf("seed %d step %d: stepper EnabledRaw: %v", seed, step, err)
			}
			if !movesEqual(wantRaw, gotRaw) {
				t.Fatalf("seed %d step %d: raw move sets differ\n scratch: %s\n stepper: %s",
					seed, step, fmtMoves(sys, wantRaw), fmtMoves(sys, gotRaw))
			}
			fromVec, err := sys.EnabledFromVector(vec, st)
			if err != nil {
				t.Fatalf("seed %d step %d: EnabledFromVector: %v", seed, step, err)
			}
			if !movesEqual(want, fromVec) {
				t.Fatalf("seed %d step %d: vector move set differs\n scratch: %s\n vector:  %s",
					seed, step, fmtMoves(sys, want), fmtMoves(sys, fromVec))
			}
			if len(want) == 0 {
				break // deadlock
			}
			pick := want[rng.Intn(len(want))]
			// Copy the move: the stepper invalidates its slices on Exec.
			m := Move{Interaction: pick.Interaction, Choices: append([]int(nil), pick.Choices...)}
			next, err := sys.Exec(st, m)
			if err != nil {
				t.Fatalf("seed %d step %d: Exec: %v", seed, step, err)
			}
			view, err := scratch.Exec(st, m)
			if err != nil {
				t.Fatalf("seed %d step %d: scratch Exec: %v", seed, step, err)
			}
			if !view.Equal(next) || !scratch.Materialize(m).Equal(next) {
				t.Fatalf("seed %d step %d: scratch successor diverges from Exec", seed, step)
			}
			if err := sp.Exec(m); err != nil {
				t.Fatalf("seed %d step %d: stepper Exec: %v", seed, step, err)
			}
			if !next.Equal(sp.State()) {
				t.Fatalf("seed %d step %d: states diverged after %s", seed, step, sys.Label(m))
			}
			vec, err = deriver.Derive(vec, m, next)
			if err != nil {
				t.Fatalf("seed %d step %d: Derive: %v", seed, step, err)
			}
			st = next
		}
	}
}

// TestStepperReset checks that a stepper can be repositioned at an
// arbitrary state and that the new state is deep-copied.
func TestStepperReset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := randSystem(t, rng)
	st := sys.Initial()
	sp := sys.StepperAt(st)
	moves, err := sp.Enabled()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) > 0 {
		m := Move{Interaction: moves[0].Interaction, Choices: append([]int(nil), moves[0].Choices...)}
		if err := sp.Exec(m); err != nil {
			t.Fatal(err)
		}
	}
	// The caller's state must be untouched by the stepper's in-place run.
	if !st.Equal(sys.Initial()) {
		t.Fatal("StepperAt mutated the caller's state")
	}
	sp.Reset(st)
	got, err := sp.Enabled()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Enabled(st)
	if err != nil {
		t.Fatal(err)
	}
	if !movesEqual(want, got) {
		t.Fatalf("after Reset: %s, want %s", fmtMoves(sys, got), fmtMoves(sys, want))
	}
}

// TestStateKeyCanonical checks the fast system-level key agrees with
// state equality.
func TestStateKeyCanonical(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randSystem(t, rng)
		sp := sys.NewStepper()
		prev := sys.Initial()
		for step := 0; step < 30; step++ {
			cur := sp.State()
			if (sys.StateKey(cur) == sys.StateKey(prev)) != cur.Equal(prev) {
				t.Fatalf("seed %d step %d: StateKey disagrees with Equal", seed, step)
			}
			moves, err := sp.Enabled()
			if err != nil || len(moves) == 0 {
				break
			}
			prev = cur.Clone()
			m := Move{Interaction: moves[0].Interaction, Choices: append([]int(nil), moves[0].Choices...)}
			if err := sp.Exec(m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStateKeySeparatorInjective pins the length-prefixed encoding:
// location names containing the separator bytes must not make distinct
// states collide (exploration would silently merge them).
func TestStateKeySeparatorInjective(t *testing.T) {
	mkAtom := func(name, l1, l2 string) *behavior.Atom {
		return behavior.NewBuilder(name).
			Location(l1, l2).Port("p").
			Transition(l1, "p", l2).
			MustBuild()
	}
	sys, err := NewSystem("sep").
		Add(mkAtom("a", "p#q", "p")).
		Add(mkAtom("b", "r", "q#r")).
		Connect("i0", P("a", "p")).
		Connect("i1", P("b", "p")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s1 := State{Locs: []string{"p#q", "r"}, Vars: []expr.MapEnv{{}, {}}}
	s2 := State{Locs: []string{"p", "q#r"}, Vars: []expr.MapEnv{{}, {}}}
	if sys.StateKey(s1) == sys.StateKey(s2) {
		t.Fatalf("distinct states collide: %q", sys.StateKey(s1))
	}
}

// TestClosePrioritiesBeforeValidate is the regression test for the
// nil-index bug: ClosePriorities on a hand-assembled, unvalidated system
// used to resolve every interaction name to index 0 and fabricate bogus
// edges. It must now validate first and produce the correct closure.
func TestClosePrioritiesBeforeValidate(t *testing.T) {
	mk := func() *System {
		a := behavior.NewBuilder("a").Location("s").
			Port("p").Port("q").Port("r").
			Transition("s", "p", "s").
			Transition("s", "q", "s").
			Transition("s", "r", "s").
			MustBuild()
		return &System{
			Name:  "unvalidated",
			Atoms: []*behavior.Atom{a},
			Interactions: []*Interaction{
				{Name: "low", Ports: []PortRef{P("a", "p")}},
				{Name: "mid", Ports: []PortRef{P("a", "q")}},
				{Name: "high", Ports: []PortRef{P("a", "r")}},
			},
			Priorities: []Priority{
				{Low: "low", High: "mid"},
				{Low: "mid", High: "high"},
			},
		}
	}
	sys := mk()
	if err := sys.ClosePriorities(); err != nil {
		t.Fatalf("ClosePriorities before Validate: %v", err)
	}
	found := false
	for _, p := range sys.Priorities {
		if p.Low == "low" && p.High == "high" && p.When == nil {
			found = true
		}
		if p.Low == p.High {
			t.Fatalf("fabricated reflexive edge %s", p)
		}
	}
	if !found {
		t.Fatalf("transitive edge low < high missing; priorities: %v", sys.Priorities)
	}

	// Unknown names must be reported, not silently resolved to index 0.
	bad := mk()
	if err := bad.Validate(); err != nil {
		t.Fatal(err)
	}
	bad.Priorities = append(bad.Priorities, Priority{Low: "nope", High: "high"})
	if err := bad.ClosePriorities(); err == nil || !strings.Contains(err.Error(), "unknown interaction") {
		t.Fatalf("ClosePriorities with unknown name = %v, want unknown-interaction error", err)
	}
}

// BenchmarkEnabledScratchVsStepper quantifies the incremental win on a
// chain of worker pairs: the from-scratch path rescans every interaction
// per step, the stepper recomputes only the two incident ones.
func benchSystem(b *testing.B, pairs int) *System {
	w := behavior.NewBuilder("w").Location("s").Int("x", 0).
		Port("step", "x").
		TransitionG("s", "step", "s", nil, expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		MustBuild()
	sb := NewSystem("bench")
	for i := 0; i < pairs; i++ {
		l, r := fmt.Sprintf("l%d", i), fmt.Sprintf("r%d", i)
		sb.AddAs(l, w).AddAs(r, w)
		sb.Connect(fmt.Sprintf("sync%d", i), P(l, "step"), P(r, "step"))
	}
	sys, err := sb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkEnabledScratch(b *testing.B) {
	sys := benchSystem(b, 64)
	st := sys.Initial()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, err := sys.Enabled(st)
		if err != nil {
			b.Fatal(err)
		}
		st, err = sys.Exec(st, moves[i%len(moves)])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnabledStepper(b *testing.B) {
	sys := benchSystem(b, 64)
	sp := sys.NewStepper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moves, err := sp.Enabled()
		if err != nil {
			b.Fatal(err)
		}
		if err := sp.Exec(moves[i%len(moves)]); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"bytes"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// TestStateFromBinaryKeyRoundTrip walks a data-carrying system
// breadth-first for a few levels and round-trips every visited state
// through its binary key: decode(encode(st)) must re-encode to the same
// bytes and render to the same textual state key. This is the contract
// the spilled frontier stands on — a state written to disk as its key
// alone must come back semantically identical.
func TestStateFromBinaryKeyRoundTrip(t *testing.T) {
	a := behavior.NewBuilder("cell").
		Location("s", "u").
		Int("x", 0).
		Bool("flag", false).
		Port("step").
		Port("flip").
		TransitionG("s", "step", "u", nil,
			expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		TransitionG("u", "flip", "s", nil,
			expr.Set("flag", expr.Not(expr.V("flag")))).
		MustBuild()
	b := NewSystem("roundtrip")
	b.AddAs("c0", a).AddAs("c1", a)
	b.Connect("step0", P("c0", "step"))
	b.Connect("flip0", P("c0", "flip"))
	b.Connect("step1", P("c1", "step"))
	b.Connect("flip1", P("c1", "flip"))
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	frontier := []State{sys.Initial()}
	seen := map[string]bool{}
	checked := 0
	for level := 0; level < 6; level++ {
		var next []State
		for _, st := range frontier {
			key := sys.AppendBinaryKey(nil, st)
			if len(key) != sys.BinaryKeyWidth() {
				t.Fatalf("key has %d bytes, want %d", len(key), sys.BinaryKeyWidth())
			}
			back, err := sys.StateFromBinaryKey(key)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if re := sys.AppendBinaryKey(nil, back); !bytes.Equal(re, key) {
				t.Fatalf("re-encode diverges: %x vs %x", re, key)
			}
			if got, want := sys.StateKey(back), sys.StateKey(st); got != want {
				t.Fatalf("decoded state renders %q, want %q", got, want)
			}
			checked++
			moves, err := sys.Enabled(st)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range moves {
				succ, err := sys.Exec(st, m)
				if err != nil {
					t.Fatal(err)
				}
				if k := sys.StateKey(succ); !seen[k] {
					seen[k] = true
					next = append(next, succ)
				}
			}
		}
		frontier = next
	}
	if checked < 10 {
		t.Fatalf("round-tripped only %d states; the walk is broken", checked)
	}

	// Malformed inputs must error, not mis-decode.
	good := sys.AppendBinaryKey(nil, sys.Initial())
	if _, err := sys.StateFromBinaryKey(good[:len(good)-1]); err == nil {
		t.Fatal("truncated key decoded")
	}
	bad := append([]byte(nil), good...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff // location index out of range
	if _, err := sys.StateFromBinaryKey(bad); err == nil {
		t.Fatal("out-of-range location index decoded")
	}
	bad2 := append([]byte(nil), good...)
	bad2[4] = 99 // unknown value tag in c0's first variable slot
	if _, err := sys.StateFromBinaryKey(bad2); err == nil {
		t.Fatal("unknown value tag decoded")
	}
}

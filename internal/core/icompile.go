package core

import (
	"sort"

	"bip/internal/expr"
)

// This file compiles interaction-level guards and data-transfer actions
// the same way transition guards/actions are compiled in behavior: once,
// at Validate time, against a per-interaction qualified-variable slot
// layout. The hot paths (movesOfInteraction, execInto) then fill a flat
// frame with one map read per exported variable and run a closure,
// instead of splitting "comp.var" strings and resolving component
// indices on every single access through qualEnv. The qualEnv
// interpreter remains the reference semantics and the fallback for
// anything the compiler does not cover.

// slotRef pre-resolves one frame slot of an interaction's layout to the
// variable it mirrors: atom index plus local variable name.
type slotRef struct {
	atom int
	name string
}

// interComp is the compiled form of one interaction: the slot layout
// over its exported scope plus the compiled guard and action (nil when
// absent or not compilable, in which case callers interpret).
type interComp struct {
	slots  []slotRef
	guard  expr.CompiledBool
	action expr.CompiledStmt
}

// compileInteractions builds s.icomp and s.maxISlots. Called at the end
// of a successful Validate, so every scope name resolves; a compilation
// failure only disables the fast path for that interaction.
func (s *System) compileInteractions() {
	s.icomp = make([]interComp, len(s.Interactions))
	s.maxISlots = 0
	for i, in := range s.Interactions {
		names := make([]string, 0, len(s.scopes[i]))
		for n := range s.scopes[i] {
			names = append(names, n)
		}
		sort.Strings(names)
		refs := make([]slotRef, len(names))
		ok := true
		for k, n := range names {
			ai, v, err := s.splitQualified(n)
			if err != nil {
				ok = false
				break
			}
			refs[k] = slotRef{atom: ai, name: v}
		}
		if !ok {
			continue
		}
		ic := interComp{slots: refs}
		if layout, err := expr.NewLayout(names); err == nil {
			if in.Guard != nil {
				if g, err := expr.CompileBool(in.Guard, layout); err == nil {
					ic.guard = g
				}
			}
			if in.Action != nil {
				if c, err := expr.CompileStmt(in.Action, layout); err == nil {
					ic.action = c
				}
			}
		}
		s.icomp[i] = ic
		if len(names) > s.maxISlots {
			s.maxISlots = len(names)
		}
	}
}

// compilePriorities slot-compiles the conditional priority rules' When
// expressions, one layout per rule over the (sorted) qualified variables
// the condition reads. Called after compileInteractions in Validate, so
// s.maxISlots can absorb the widest condition and a single iframe serves
// both the interaction hot paths and the state-based priority filter
// (dominatedAt). A compilation failure only disables the fast path for
// that rule; the qualEnv interpreter remains the reference semantics.
func (s *System) compilePriorities() {
	for lo := range s.higher {
		for ri := range s.higher[lo] {
			rp := &s.higher[lo][ri]
			rp.slots, rp.cond = nil, nil
			if rp.When == nil {
				continue
			}
			names := expr.Vars(rp.When)
			refs := make([]slotRef, len(names))
			ok := true
			for k, n := range names {
				ai, v, err := s.splitQualified(n)
				if err != nil {
					ok = false
					break
				}
				refs[k] = slotRef{atom: ai, name: v}
			}
			if !ok {
				continue
			}
			layout, err := expr.NewLayout(names)
			if err != nil {
				continue
			}
			cond, err := expr.CompileBool(rp.When, layout)
			if err != nil {
				continue
			}
			rp.slots, rp.cond = refs, cond
			if len(names) > s.maxISlots {
				s.maxISlots = len(names)
			}
		}
	}
}

// newIFrame returns a scratch frame large enough for any interaction's
// compiled guard or action (and any compiled priority condition), or nil
// when neither exists. Frames are owned by step contexts (Stepper, TableDeriver,
// ScratchExec) or allocated per call by the from-scratch API, never by
// the System itself — that is what keeps a validated System read-only
// and therefore safe to share across exploration workers.
func (s *System) newIFrame() []expr.Value {
	if s.maxISlots == 0 {
		return nil
	}
	return make([]expr.Value, s.maxISlots)
}

// fillIFrame copies the interaction's exported variables from st into
// frame, in slot order.
func (ic *interComp) fillIFrame(frame []expr.Value, st *State) []expr.Value {
	f := frame[:len(ic.slots)]
	for k, ref := range ic.slots {
		f[k] = st.Vars[ref.atom][ref.name]
	}
	return f
}

// storeIFrame writes the frame back into st. Every slot belongs to a
// port-exported variable of a participant, so in all execution paths the
// touched stores are exclusively owned by the caller.
func (ic *interComp) storeIFrame(frame []expr.Value, st *State) {
	for k, ref := range ic.slots {
		st.Vars[ref.atom][ref.name] = frame[k]
	}
}

package core

import (
	"math/rand"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// TestBinaryKeyCanonical pins the fixed-width binary state key: exactly
// BinaryKeyWidth bytes, and equal across two states iff the states are
// Equal — the property the exploration seen-set relies on.
func TestBinaryKeyCanonical(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randSystem(t, rng)
		sp := sys.NewStepper()
		prev := sys.Initial()
		for step := 0; step < 30; step++ {
			cur := sp.State()
			kc := sys.AppendBinaryKey(nil, cur)
			kp := sys.AppendBinaryKey(nil, prev)
			if len(kc) != sys.BinaryKeyWidth() {
				t.Fatalf("seed %d step %d: key width %d, want %d", seed, step, len(kc), sys.BinaryKeyWidth())
			}
			if (string(kc) == string(kp)) != cur.Equal(prev) {
				t.Fatalf("seed %d step %d: binary key disagrees with Equal", seed, step)
			}
			// The binary key must agree with the string key's verdict.
			if (string(kc) == string(kp)) != (sys.StateKey(cur) == sys.StateKey(prev)) {
				t.Fatalf("seed %d step %d: binary key disagrees with StateKey", seed, step)
			}
			moves, err := sp.Enabled()
			if err != nil || len(moves) == 0 {
				break
			}
			prev = cur.Clone()
			m := Move{Interaction: moves[0].Interaction, Choices: append([]int(nil), moves[0].Choices...)}
			if err := sp.Exec(m); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestBinaryKeyDistinguishesLocationsAndValues hand-checks the two
// components of the record: location index and variable encoding.
func TestBinaryKeyDistinguishesLocationsAndValues(t *testing.T) {
	a := behavior.NewBuilder("a").
		Location("s", "t").Int("x", 0).Bool("b", false).
		Port("p", "x").
		Transition("s", "p", "t").
		MustBuild()
	sys, err := NewSystem("bk").Add(a).Connect("i", P("a", "p")).Build()
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Initial()
	variants := []State{
		{Locs: []string{"t"}, Vars: []expr.MapEnv{{"x": expr.IntVal(0), "b": expr.BoolVal(false)}}},
		{Locs: []string{"s"}, Vars: []expr.MapEnv{{"x": expr.IntVal(1), "b": expr.BoolVal(false)}}},
		{Locs: []string{"s"}, Vars: []expr.MapEnv{{"x": expr.IntVal(0), "b": expr.BoolVal(true)}}},
		// bool true vs int 1 must not collide either.
		{Locs: []string{"s"}, Vars: []expr.MapEnv{{"x": expr.IntVal(0), "b": expr.IntVal(1)}}},
	}
	bk := string(sys.AppendBinaryKey(nil, base))
	for i, v := range variants {
		if got := string(sys.AppendBinaryKey(nil, v)); got == bk {
			t.Fatalf("variant %d collides with the base state", i)
		}
	}
}

// forceInterpreted strips the compiled interaction guard/action closures
// so that every evaluation goes through the qualEnv interpreter — the
// reference semantics of the differential test below.
func forceInterpreted(sys *System) {
	for i := range sys.icomp {
		sys.icomp[i].guard = nil
		sys.icomp[i].action = nil
	}
}

// TestInteractionCompiledAgreesWithInterpreter is the semantic oracle
// for interaction-level slot compilation: on random systems (guarded
// interactions with data transfer, conditional priorities), the
// compiled and interpreted paths must agree on every enabled-move set
// and every successor state along random runs.
func TestInteractionCompiledAgreesWithInterpreter(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randSystem(t, rng)
		ref := randSystem(t, rand.New(rand.NewSource(seed))) // identical build
		forceInterpreted(ref)

		st, rst := sys.Initial(), ref.Initial()
		for step := 0; step < 50; step++ {
			want, err := ref.Enabled(rst)
			if err != nil {
				t.Fatalf("seed %d step %d: interpreted Enabled: %v", seed, step, err)
			}
			got, err := sys.Enabled(st)
			if err != nil {
				t.Fatalf("seed %d step %d: compiled Enabled: %v", seed, step, err)
			}
			if !movesEqual(want, got) {
				t.Fatalf("seed %d step %d: move sets differ\n interp:   %s\n compiled: %s",
					seed, step, fmtMoves(ref, want), fmtMoves(sys, got))
			}
			if len(want) == 0 {
				break
			}
			m := want[rng.Intn(len(want))]
			next, err := sys.Exec(st, m)
			if err != nil {
				t.Fatalf("seed %d step %d: compiled Exec: %v", seed, step, err)
			}
			rnext, err := ref.Exec(rst, m)
			if err != nil {
				t.Fatalf("seed %d step %d: interpreted Exec: %v", seed, step, err)
			}
			if !next.Equal(rnext) {
				t.Fatalf("seed %d step %d: successors diverge after %s", seed, step, sys.Label(m))
			}
			st, rst = next, rnext
		}
	}
}

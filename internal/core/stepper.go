package core

import (
	"fmt"

	"bip/internal/expr"
)

// This file implements incremental move enumeration. Enabled(st) derives
// every interaction's moves from scratch at every state; but Exec only
// changes the local states of the fired interaction's participants, so
// after a step only the interactions incident to those atoms (the
// atom→interaction index built by Validate) can change enabledness.
//
// Two views of the same idea live here:
//
//   - Stepper: a mutable step context for engine-style runs. It owns its
//     state, executes moves in place (no per-step cloning), and keeps a
//     per-interaction move-set cache of which only the dirty entries are
//     recomputed on the next query.
//
//   - enabled vectors: immutable per-state move tables for exploration.
//     A successor's table shares every non-incident entry with its
//     parent's table, so breadth-first search recomputes enabledness only
//     where the fired move could have changed it (the "cached frontier").
//
// The classic Enabled/EnabledRaw API remains the reference semantics; the
// differential test in stepper_test.go checks that both paths produce
// identical move sets after every step on randomized systems.

// Stepper is an incremental step context over a validated System. It is
// not safe for concurrent use. Move slices returned by Enabled and
// EnabledRaw — including their Choices — are valid only until the next
// Exec or Reset. After any error the stepper is poisoned and must be
// Reset before further use.
type Stepper struct {
	sys *System
	st  State

	cache     [][]Move // cache[ii]: raw moves of interaction ii
	dirty     []bool
	dirtyList []int

	enabledInter []bool       // scratch for priority filtering
	out          []Move       // scratch for assembled results
	frame        []expr.Value // scratch for compiled interaction code
	sticky       error
}

// NewStepper returns a step context positioned at the system's initial
// state.
func (s *System) NewStepper() *Stepper {
	sp := &Stepper{
		sys:          s,
		cache:        make([][]Move, len(s.Interactions)),
		dirty:        make([]bool, len(s.Interactions)),
		dirtyList:    make([]int, 0, len(s.Interactions)),
		enabledInter: make([]bool, len(s.Interactions)),
		frame:        s.newIFrame(),
	}
	sp.jumpTo(s.Initial())
	return sp
}

// StepperAt returns a step context positioned at st. The state is deep-
// copied: the stepper mutates its own state in place as moves execute.
func (s *System) StepperAt(st State) *Stepper {
	sp := s.NewStepper()
	sp.Reset(st)
	return sp
}

// State returns the stepper's current state. The caller must not mutate
// it and must not retain it across Exec calls; use State().Clone() for a
// stable snapshot.
func (sp *Stepper) State() State { return sp.st }

// Reset repositions the stepper at a deep copy of st and invalidates the
// whole cache.
func (sp *Stepper) Reset(st State) { sp.jumpTo(st.Clone()) }

// jumpTo installs owned as the current state. The caller transfers
// ownership of the state's variable stores.
func (sp *Stepper) jumpTo(owned State) {
	sp.st = owned
	sp.sticky = nil
	sp.dirtyList = sp.dirtyList[:0]
	for ii := range sp.dirty {
		sp.dirty[ii] = true
		sp.dirtyList = append(sp.dirtyList, ii)
	}
}

// refresh recomputes the cached move sets of every dirty interaction.
func (sp *Stepper) refresh() error {
	if sp.sticky != nil {
		return sp.sticky
	}
	for _, ii := range sp.dirtyList {
		ms, err := sp.sys.movesOfInteraction(&sp.st, ii, sp.cache[ii][:0], sp.frame)
		if err != nil {
			sp.sticky = err
			return err
		}
		sp.cache[ii] = ms
		sp.dirty[ii] = false
	}
	sp.dirtyList = sp.dirtyList[:0]
	return nil
}

// EnabledRaw returns every enabled move at the current state, before
// priority filtering, in the same order as System.EnabledRaw.
func (sp *Stepper) EnabledRaw() ([]Move, error) {
	if err := sp.refresh(); err != nil {
		return nil, err
	}
	out := sp.out[:0]
	for _, ms := range sp.cache {
		out = append(out, ms...)
	}
	sp.out = out
	return out, nil
}

// Enabled returns the moves allowed at the current state under the
// priority rules, in the same order as System.Enabled.
func (sp *Stepper) Enabled() ([]Move, error) {
	if err := sp.refresh(); err != nil {
		return nil, err
	}
	out, err := sp.sys.enabledFromTable(sp.cache, &sp.st, sp.enabledInter, sp.frame, sp.out[:0])
	if err != nil {
		sp.sticky = err
		return nil, err
	}
	sp.out = out
	return out, nil
}

// Exec fires m, advancing the state in place, and marks the interactions
// incident to m's participants dirty. m must come from the current
// Enabled/EnabledRaw set (same contract as System.Exec).
func (sp *Stepper) Exec(m Move) error {
	if sp.sticky != nil {
		return sp.sticky
	}
	sys := sp.sys
	if m.Interaction < 0 || m.Interaction >= len(sys.Interactions) {
		return fmt.Errorf("system %s: move references interaction %d out of range", sys.Name, m.Interaction)
	}
	if len(m.Choices) != len(sys.Interactions[m.Interaction].Ports) {
		return fmt.Errorf("system %s: move for %q has %d choices, want %d",
			sys.Name, sys.Interactions[m.Interaction].Name, len(m.Choices), len(sys.Interactions[m.Interaction].Ports))
	}
	if err := sys.execInto(&sp.st, m, sp.frame); err != nil {
		sp.sticky = err
		return err
	}
	for _, ai := range sys.portAtoms[m.Interaction] {
		for _, ii := range sys.incident[ai] {
			if !sp.dirty[ii] {
				sp.dirty[ii] = true
				sp.dirtyList = append(sp.dirtyList, ii)
			}
		}
	}
	return nil
}

// Dominated reports whether interaction ii is suppressed by a priority
// rule: some rule ii < High has High enabled (per the enabled vector)
// and its condition holding in env. Domination depends only on the
// interaction and the state, never on a particular choice vector, so it
// is decided once per interaction. This interpreting form is the
// reference semantics and serves callers whose conditions are evaluated
// against something other than a global state (the multi-threaded
// coordinator's offer environment); the state-based paths go through
// dominatedAt, which runs the slot-compiled conditions.
func (s *System) Dominated(ii int, enabled []bool, env expr.Env) (bool, error) {
	for _, rp := range s.higher[ii] {
		if !enabled[rp.High] {
			continue
		}
		ok, err := expr.EvalBool(rp.When, env)
		if err != nil {
			return false, fmt.Errorf("priority %s < %s: %w",
				s.Interactions[ii].Name, s.Interactions[rp.High].Name, err)
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// dominatedAt is Dominated specialized to a global state: conditional
// rules compiled at Validate time (compilePriorities) fill the caller's
// scratch frame with one map read per slot and run a closure; rules the
// compiler does not cover fall back to the qualEnv interpreter.
func (s *System) dominatedAt(ii int, enabled []bool, st *State, frame []expr.Value) (bool, error) {
	var env *qualEnv
	for _, rp := range s.higher[ii] {
		if !enabled[rp.High] {
			continue
		}
		if rp.When == nil {
			return true, nil
		}
		var ok bool
		var err error
		if rp.cond != nil {
			f := frame[:len(rp.slots)]
			for k, ref := range rp.slots {
				f[k] = st.Vars[ref.atom][ref.name]
			}
			ok, err = rp.cond(f)
		} else {
			if env == nil {
				env = &qualEnv{sys: s, st: st}
			}
			ok, err = expr.EvalBool(rp.When, env)
		}
		if err != nil {
			return false, fmt.Errorf("priority %s < %s: %w",
				s.Interactions[ii].Name, s.Interactions[rp.High].Name, err)
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// enabledFromTable applies the priority rules to a complete raw move
// table and appends the maximal moves to out. frame is the caller's
// scratch for compiled priority conditions (newIFrame-sized).
func (s *System) enabledFromTable(table [][]Move, st *State, enabledInter []bool, frame []expr.Value, out []Move) ([]Move, error) {
	if len(s.Priorities) == 0 {
		for _, ms := range table {
			out = append(out, ms...)
		}
		return out, nil
	}
	for ii, ms := range table {
		enabledInter[ii] = len(ms) > 0
	}
	for ii, ms := range table {
		if len(ms) == 0 {
			continue
		}
		dominated, err := s.dominatedAt(ii, enabledInter, st, frame)
		if err != nil {
			return nil, err
		}
		if !dominated {
			out = append(out, ms...)
		}
	}
	return out, nil
}

// EnabledVector computes the complete per-interaction raw move table at
// st. Exploration keeps one table per frontier state and derives
// successors' tables incrementally with a TableDeriver.
func (s *System) EnabledVector(st State) ([][]Move, error) {
	vec := make([][]Move, len(s.Interactions))
	frame := s.newIFrame()
	for ii := range s.Interactions {
		ms, err := s.movesOfInteraction(&st, ii, nil, frame)
		if err != nil {
			return nil, err
		}
		vec[ii] = ms
	}
	return vec, nil
}

// EnabledFromVector applies priority filtering to a move table at st and
// returns the allowed moves, in the same order as System.Enabled.
func (s *System) EnabledFromVector(vec [][]Move, st State) ([]Move, error) {
	return s.enabledFromTable(vec, &st, make([]bool, len(s.Interactions)), s.newIFrame(), nil)
}

// TableDeriver derives successor move tables from parent tables,
// recomputing only the entries incident to a fired move's participants.
// Derived tables share the untouched entries with their parent, so they
// must be treated as immutable. A TableDeriver is not safe for concurrent
// use.
type TableDeriver struct {
	sys          *System
	dirty        []bool
	dirtyList    []int
	enabledInter []bool
	frame        []expr.Value // scratch for compiled interaction guards
	scratch      []Move       // scratch for DeriveSlab recomputation
}

// NewTableDeriver returns a deriver for s.
func (s *System) NewTableDeriver() *TableDeriver {
	return &TableDeriver{
		sys:          s,
		dirty:        make([]bool, len(s.Interactions)),
		enabledInter: make([]bool, len(s.Interactions)),
		frame:        s.newIFrame(),
	}
}

// Enabled applies priority filtering to a move table at st, appending the
// allowed moves to out. It reuses the deriver's scratch, so exploration
// pays no per-state allocation for the filter.
func (d *TableDeriver) Enabled(vec [][]Move, st State, out []Move) ([]Move, error) {
	return d.sys.enabledFromTable(vec, &st, d.enabledInter, d.frame, out)
}

// Raw appends every move of a table to out, in interaction order.
func (d *TableDeriver) Raw(vec [][]Move, out []Move) []Move {
	for _, ms := range vec {
		out = append(out, ms...)
	}
	return out
}

// Derive returns the move table of the state st reached by firing m from
// a state whose table is parent.
func (d *TableDeriver) Derive(parent [][]Move, m Move, st State) ([][]Move, error) {
	sys := d.sys
	vec := append([][]Move(nil), parent...)
	d.dirtyList = d.dirtyList[:0]
	for _, ai := range sys.portAtoms[m.Interaction] {
		for _, ii := range sys.incident[ai] {
			if !d.dirty[ii] {
				d.dirty[ii] = true
				d.dirtyList = append(d.dirtyList, ii)
			}
		}
	}
	// The flags only deduplicate the list above; clear them before the
	// recompute loop so an error cannot leave entries marked dirty (a
	// stale flag would make later Derive calls skip recomputation).
	for _, ii := range d.dirtyList {
		d.dirty[ii] = false
	}
	var err error
	for _, ii := range d.dirtyList {
		vec[ii], err = sys.movesOfInteraction(&st, ii, nil, d.frame)
		if err != nil {
			return nil, err
		}
	}
	return vec, nil
}

// Package network provides the message-passing substrate for distributed
// BIP execution: a deterministic discrete-event simulator with seeded
// delivery jitter. Nodes are event handlers; the simulator owns the event
// loop, so runs are exactly reproducible — the property the repository's
// distributed experiments rely on.
//
// The paper's deployments target MPI or TCP/IP clusters; the simulator
// substitutes them while preserving what the experiments measure
// (message counts, protocol behaviour, commit orderings). See
// EXPERIMENTS.md.
package network

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// NodeID identifies a node.
type NodeID string

// Context is the API a handler uses during a callback.
type Context struct {
	sim  *Sim
	self NodeID
}

// ID returns the node's own identifier.
func (c Context) ID() NodeID { return c.self }

// Send enqueues a message with the simulator's jittered delay.
func (c Context) Send(to NodeID, msg any) {
	c.sim.send(c.self, to, msg, 1+c.sim.rng.Int63n(c.sim.jitter))
}

// SendDirect enqueues a message with zero additional delay, delivered
// before any later-sent message. Used for observation channels that must
// not reorder against protocol traffic.
func (c Context) SendDirect(to NodeID, msg any) {
	c.sim.send(c.self, to, msg, 0)
}

// Stop ends the simulation after the current callback.
func (c Context) Stop() { c.sim.stopped = true }

// Handler is a network node.
type Handler interface {
	// Init runs once before delivery starts.
	Init(ctx Context)
	// Recv handles one delivered message.
	Recv(ctx Context, from NodeID, msg any)
}

// event is a queued delivery.
type event struct {
	at       int64
	seq      int64
	from, to NodeID
	msg      any
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) isEmpty() bool { return len(q) == 0 }

// Sim is the deterministic simulator.
type Sim struct {
	nodes     map[NodeID]Handler
	order     []NodeID
	queue     eventQueue
	now       int64
	seq       int64
	rng       *rand.Rand
	jitter    int64
	delivered int
	stopped   bool
}

// NewSim returns a simulator with the given seed. Jitter draws delivery
// delays in [1, 3].
func NewSim(seed int64) *Sim {
	return &Sim{
		nodes:  make(map[NodeID]Handler),
		rng:    rand.New(rand.NewSource(seed)),
		jitter: 3,
	}
}

// AddNode registers a handler. Registration order fixes Init order.
func (s *Sim) AddNode(id NodeID, h Handler) error {
	if _, dup := s.nodes[id]; dup {
		return fmt.Errorf("network: duplicate node %q", id)
	}
	s.nodes[id] = h
	s.order = append(s.order, id)
	return nil
}

func (s *Sim) send(from, to NodeID, msg any, delay int64) {
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, from: from, to: to, msg: msg})
}

// Delivered returns the number of messages delivered so far — the
// message-cost metric of the distributed experiments.
func (s *Sim) Delivered() int { return s.delivered }

// Now returns the current simulated time.
func (s *Sim) Now() int64 { return s.now }

// Run initializes all nodes then delivers messages until quiescence, a
// Stop call, or the message cap. It returns an error on delivery to an
// unknown node or when the cap is hit with traffic still pending (which
// usually signals a protocol livelock in tests).
func (s *Sim) Run(maxMessages int) error {
	heap.Init(&s.queue)
	for _, id := range s.order {
		s.nodes[id].Init(Context{sim: s, self: id})
	}
	for !s.queue.isEmpty() && !s.stopped {
		if s.delivered >= maxMessages {
			return fmt.Errorf("network: message cap %d reached with %d events pending", maxMessages, s.queue.Len())
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		h, ok := s.nodes[e.to]
		if !ok {
			return fmt.Errorf("network: message to unknown node %q", e.to)
		}
		s.delivered++
		h.Recv(Context{sim: s, self: e.to}, e.from, e.msg)
	}
	return nil
}

package network

import (
	"testing"
)

// echoNode replies to every ping with a pong, n times.
type echoNode struct {
	got []string
}

func (e *echoNode) Init(ctx Context) {}

func (e *echoNode) Recv(ctx Context, from NodeID, msg any) {
	s, _ := msg.(string)
	e.got = append(e.got, s)
	if s == "ping" {
		ctx.Send(from, "pong")
	}
}

// starterNode sends count pings to target on Init.
type starterNode struct {
	target NodeID
	count  int
	got    []string
}

func (s *starterNode) Init(ctx Context) {
	for i := 0; i < s.count; i++ {
		ctx.Send(s.target, "ping")
	}
}

func (s *starterNode) Recv(_ Context, _ NodeID, msg any) {
	str, _ := msg.(string)
	s.got = append(s.got, str)
}

func TestPingPong(t *testing.T) {
	sim := NewSim(1)
	a := &starterNode{target: "b", count: 3}
	b := &echoNode{}
	if err := sim.AddNode("a", a); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode("b", b); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(b.got) != 3 || len(a.got) != 3 {
		t.Fatalf("b got %d, a got %d; want 3 each", len(b.got), len(a.got))
	}
	if sim.Delivered() != 6 {
		t.Fatalf("Delivered = %d, want 6", sim.Delivered())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) int64 {
		sim := NewSim(seed)
		_ = sim.AddNode("a", &starterNode{target: "b", count: 5})
		_ = sim.AddNode("b", &echoNode{})
		if err := sim.Run(100); err != nil {
			t.Fatal(err)
		}
		return sim.Now()
	}
	if run(7) != run(7) {
		t.Fatal("same seed must give identical simulations")
	}
}

func TestDuplicateNode(t *testing.T) {
	sim := NewSim(1)
	if err := sim.AddNode("a", &echoNode{}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode("a", &echoNode{}); err == nil {
		t.Fatal("duplicate node must be rejected")
	}
}

func TestUnknownDestination(t *testing.T) {
	sim := NewSim(1)
	_ = sim.AddNode("a", &starterNode{target: "ghost", count: 1})
	if err := sim.Run(100); err == nil {
		t.Fatal("delivery to unknown node must fail")
	}
}

// floodNode resends forever: the message cap must fire.
type floodNode struct{ peer NodeID }

func (f *floodNode) Init(ctx Context) { ctx.Send(f.peer, "x") }
func (f *floodNode) Recv(ctx Context, from NodeID, _ any) {
	ctx.Send(from, "x")
}

func TestMessageCap(t *testing.T) {
	sim := NewSim(1)
	_ = sim.AddNode("a", &floodNode{peer: "b"})
	_ = sim.AddNode("b", &floodNode{peer: "a"})
	if err := sim.Run(50); err == nil {
		t.Fatal("unbounded traffic must hit the cap")
	}
}

// stopNode stops the simulation on first receipt.
type stopNode struct{}

func (s *stopNode) Init(Context) {}
func (s *stopNode) Recv(ctx Context, _ NodeID, _ any) {
	ctx.Stop()
}

func TestStop(t *testing.T) {
	sim := NewSim(1)
	_ = sim.AddNode("a", &starterNode{target: "b", count: 10})
	_ = sim.AddNode("b", &stopNode{})
	if err := sim.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.Delivered() != 1 {
		t.Fatalf("Delivered = %d, want 1 (stopped after first)", sim.Delivered())
	}
}

// directNode checks SendDirect ordering: direct messages sent at time t
// arrive before jittered messages sent at the same time.
type directNode struct {
	order []string
}

func (d *directNode) Init(Context) {}
func (d *directNode) Recv(_ Context, _ NodeID, msg any) {
	s, _ := msg.(string)
	d.order = append(d.order, s)
}

type directSender struct{ sink NodeID }

func (d *directSender) Init(ctx Context) {
	ctx.Send(d.sink, "slow")
	ctx.SendDirect(d.sink, "fast")
}
func (d *directSender) Recv(Context, NodeID, any) {}

func TestSendDirectOrdering(t *testing.T) {
	sim := NewSim(3)
	sink := &directNode{}
	_ = sim.AddNode("sink", sink)
	_ = sim.AddNode("src", &directSender{sink: "sink"})
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(sink.order) != 2 || sink.order[0] != "fast" {
		t.Fatalf("order = %v, want fast before slow", sink.order)
	}
}

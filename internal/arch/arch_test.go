package arch

import (
	"strconv"
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/engine"
	"bip/internal/expr"
	"bip/internal/lts"
)

// worker cycles idle → critical → idle through enter/leave ports.
func worker() *behavior.Atom {
	return behavior.NewBuilder("worker").
		Location("idle", "critical").
		Port("enter").
		Port("leave").
		Transition("idle", "enter", "critical").
		Transition("critical", "leave", "idle").
		MustBuild()
}

// buildWorkers returns a builder pre-loaded with n workers and the
// client descriptors for Mutex.
func buildWorkers(n int) (*core.SystemBuilder, []MutexClient, map[string]string) {
	b := core.NewSystem("workers")
	var clients []MutexClient
	critical := make(map[string]string, n)
	w := worker()
	for i := 0; i < n; i++ {
		name := "w" + strconv.Itoa(i)
		b.AddAs(name, w)
		clients = append(clients, MutexClient{Comp: name, Acquire: "enter", Release: "leave"})
		critical[name] = "critical"
	}
	return b, clients, critical
}

func TestMutexEnforcesExclusion(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		b, clients, critical := buildWorkers(n)
		mx, err := Mutex("mx", clients)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := mx.Apply(b).Build()
		if err != nil {
			t.Fatal(err)
		}
		l, err := lts.Explore(sys, lts.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ok, bad, _ := l.CheckInvariant(AtMostOneAt(sys, critical))
		if !ok {
			t.Fatalf("n=%d: mutual exclusion violated at state %d", n, bad)
		}
		// Preservation of essential properties: deadlock-freedom.
		if free, err := l.DeadlockFree(); err != nil || !free {
			t.Fatalf("n=%d: architecture must preserve deadlock-freedom: %v %v", n, free, err)
		}
	}
}

func TestWithoutArchitectureExclusionFails(t *testing.T) {
	// Negative control: free-running workers violate the property.
	b, _, critical := buildWorkers(2)
	sys, err := b.
		Singleton("w0", "enter").Singleton("w0", "leave").
		Singleton("w1", "enter").Singleton("w1", "leave").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	l, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := l.CheckInvariant(AtMostOneAt(sys, critical)); ok {
		t.Fatal("without the architecture the exclusion property should fail")
	}
}

func TestComposeMutexWithScheduler(t *testing.T) {
	// E9: ⊕ of mutual exclusion and fixed-priority scheduling: both
	// characteristic properties hold on the composed system.
	b, clients, critical := buildWorkers(3)
	mx, err := Mutex("mx", clients)
	if err != nil {
		t.Fatal(err)
	}
	sched := FixedPriority("fp", []string{"acq_w0", "acq_w1", "acq_w2"})
	both, err := Compose(mx, sched)
	if err != nil {
		t.Fatalf("⊕: %v", err)
	}
	sys, err := both.Apply(b).Build()
	if err != nil {
		t.Fatal(err)
	}
	l, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Property 1 (mutex).
	if ok, bad, _ := l.CheckInvariant(AtMostOneAt(sys, critical)); !ok {
		t.Fatalf("mutual exclusion violated at state %d", bad)
	}
	// Property 2 (scheduling): no state has an outgoing lower-priority
	// acquire while a higher-priority acquire was enabled pre-priority.
	for i := 0; i < l.NumStates(); i++ {
		raw, err := sys.EnabledRaw(l.State(i))
		if err != nil {
			t.Fatal(err)
		}
		rawSet := map[string]bool{}
		for _, m := range raw {
			rawSet[sys.Label(m)] = true
		}
		for _, e := range l.Edges(i) {
			switch e.Label {
			case "acq_w1":
				if rawSet["acq_w0"] {
					t.Fatalf("state %d: w1 acquired while w0 was ready", i)
				}
			case "acq_w2":
				if rawSet["acq_w0"] || rawSet["acq_w1"] {
					t.Fatalf("state %d: w2 acquired while a higher-priority worker was ready", i)
				}
			}
		}
	}
	// Preservation: still deadlock-free.
	if free, err := l.DeadlockFree(); err != nil || !free {
		t.Fatalf("composition must preserve deadlock-freedom: %v %v", free, err)
	}
}

func TestComposeRejectsClashes(t *testing.T) {
	_, clients, _ := buildWorkers(2)
	m1, err := Mutex("mx", clients)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Mutex("mx", clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(m1, m2); err == nil {
		t.Fatal("coordinator clash must be rejected")
	}
	m3, err := Mutex("mx2", clients)
	if err != nil {
		t.Fatal(err)
	}
	// Same interaction names (acq_w0 …) though different coordinator.
	if _, err := Compose(m1, m3); err == nil {
		t.Fatal("interaction clash must be rejected")
	}
}

func TestMutexNeedsClients(t *testing.T) {
	if _, err := Mutex("mx", nil); err == nil {
		t.Fatal("empty client list must be rejected")
	}
}

// replica produces a stream of values: correct ones produce round*2,
// the faulty one produces garbage.
func replica(faulty bool) *behavior.Atom {
	update := expr.Set("v", expr.Add(expr.V("v"), expr.I(2)))
	if faulty {
		update = expr.Set("v", expr.I(-999))
	}
	return behavior.NewBuilder("rep").
		Location("produce", "offer").
		Int("v", 0).
		Port("compute").
		Port("out", "v").
		TransitionG("produce", "compute", "offer", nil, update).
		Transition("offer", "out", "produce").
		MustBuild()
}

func TestTMRMasksSingleFault(t *testing.T) {
	b := core.NewSystem("tmr")
	b.AddAs("r0", replica(false))
	b.AddAs("r1", replica(true)) // the faulty replica
	b.AddAs("r2", replica(false))
	for i := 0; i < 3; i++ {
		b.Singleton("r"+strconv.Itoa(i), "compute")
	}
	tmr, err := TMR("voter", [3]TMRReplica{
		{Comp: "r0", Port: "out", Var: "v"},
		{Comp: "r1", Port: "out", Var: "v"},
		{Comp: "r2", Port: "out", Var: "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Singleton("voter", "deliver")
	sys, err := tmr.Apply(b).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Run and check every delivered value is the correct (majority)
	// one: the faulty replica's -999 never surfaces.
	vi := sys.AtomIndex("voter")
	var delivered []int64
	_, err = engine.Run(sys, engine.Options{
		MaxSteps: 400,
		OnStep: func(_ int, label string, st core.State) {
			if label == "voter.deliver" {
				v, _ := st.Vars[vi].Get("out")
				iv, _ := v.Int()
				delivered = append(delivered, iv)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delivered) == 0 {
		t.Fatal("voter never delivered")
	}
	for i, v := range delivered {
		want := int64(2 * (i + 1))
		if v != want {
			t.Fatalf("delivery %d = %d, want %d (fault not masked)", i, v, want)
		}
	}
}

func TestTMRAllCorrect(t *testing.T) {
	b := core.NewSystem("tmr-ok")
	for i := 0; i < 3; i++ {
		b.AddAs("r"+strconv.Itoa(i), replica(false))
		b.Singleton("r"+strconv.Itoa(i), "compute")
	}
	tmr, err := TMR("voter", [3]TMRReplica{
		{Comp: "r0", Port: "out", Var: "v"},
		{Comp: "r1", Port: "out", Var: "v"},
		{Comp: "r2", Port: "out", Var: "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Singleton("voter", "deliver")
	sys, err := tmr.Apply(b).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(sys, engine.Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range res.Labels {
		if strings.HasPrefix(l, "decide_") {
			found = true
		}
	}
	if !found {
		t.Fatal("voter never decided")
	}
}

// Package arch implements the paper's architecture concept (§5.5.2): an
// architecture A(n)[C1…Cn] = gl(n)(C1…Cn, D(n)) is a glue operator plus
// coordinating components that enforces a characteristic property over
// the components it is applied to, while preserving their essential
// properties (invariants, deadlock-freedom).
//
// Architectures are first-class values that can be composed with ⊕
// (Compose): the composition enforces both characteristic properties
// when the architectures do not contradict each other — experiment E9
// checks this for a mutual-exclusion architecture composed with a
// fixed-priority scheduling architecture.
package arch

import (
	"fmt"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// Architecture is a reusable glue pattern: coordinating components plus
// interactions and priorities over the target components' ports.
type Architecture struct {
	Name         string
	Coordinators []*behavior.Atom
	Interactions []*core.Interaction
	Priorities   []core.Priority
}

// Apply installs the architecture into a system under construction. The
// target components must already be present.
func (a *Architecture) Apply(b *core.SystemBuilder) *core.SystemBuilder {
	for _, c := range a.Coordinators {
		b.Add(c)
	}
	for _, in := range a.Interactions {
		b.Interaction(in)
	}
	for _, p := range a.Priorities {
		b.PriorityWhen(p.Low, p.High, p.When)
	}
	return b
}

// Compose is the ⊕ operation on architectures: the union of their
// constraints. It fails on name clashes (coordinator or interaction),
// which would make the union ill-formed; genuinely contradictory
// compositions surface as deadlocks and are caught by verification — the
// bottom of the architecture lattice.
func Compose(a1, a2 *Architecture) (*Architecture, error) {
	seenCoord := make(map[string]bool)
	for _, c := range a1.Coordinators {
		seenCoord[c.Name] = true
	}
	for _, c := range a2.Coordinators {
		if seenCoord[c.Name] {
			return nil, fmt.Errorf("arch: compose %s ⊕ %s: coordinator %q in both", a1.Name, a2.Name, c.Name)
		}
	}
	seenInter := make(map[string]bool)
	for _, in := range a1.Interactions {
		seenInter[in.Name] = true
	}
	for _, in := range a2.Interactions {
		if seenInter[in.Name] {
			return nil, fmt.Errorf("arch: compose %s ⊕ %s: interaction %q in both", a1.Name, a2.Name, in.Name)
		}
	}
	return &Architecture{
		Name:         a1.Name + "⊕" + a2.Name,
		Coordinators: append(append([]*behavior.Atom(nil), a1.Coordinators...), a2.Coordinators...),
		Interactions: append(append([]*core.Interaction(nil), a1.Interactions...), a2.Interactions...),
		Priorities:   append(append([]core.Priority(nil), a1.Priorities...), a2.Priorities...),
	}, nil
}

// MutexClient names the ports through which a component takes and
// releases the shared resource.
type MutexClient struct {
	Comp    string
	Acquire string
	Release string
}

// Mutex builds the token-based mutual-exclusion architecture: a
// coordinator with a single token grants the resource to one client at a
// time. Characteristic property: at most one client holds the resource.
// Interaction names are "acq_<comp>" and "rel_<comp>".
func Mutex(name string, clients []MutexClient) (*Architecture, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("arch: mutex %s needs clients", name)
	}
	coord := behavior.NewBuilder(name).
		Location("free", "taken").
		Port("grant").
		Port("back").
		Transition("free", "grant", "taken").
		Transition("taken", "back", "free").
		MustBuild()
	a := &Architecture{Name: name, Coordinators: []*behavior.Atom{coord}}
	for _, c := range clients {
		a.Interactions = append(a.Interactions,
			&core.Interaction{
				Name:  "acq_" + c.Comp,
				Ports: []core.PortRef{core.P(c.Comp, c.Acquire), core.P(name, "grant")},
			},
			&core.Interaction{
				Name:  "rel_" + c.Comp,
				Ports: []core.PortRef{core.P(c.Comp, c.Release), core.P(name, "back")},
			})
	}
	return a, nil
}

// FixedPriority builds the scheduling architecture: given interaction
// names ordered from highest to lowest priority, it emits the priority
// rules making earlier entries win conflicts. Characteristic property:
// a lower-priority interaction never fires while a higher-priority one
// is enabled.
func FixedPriority(name string, orderedHighFirst []string) *Architecture {
	a := &Architecture{Name: name}
	for i := 0; i < len(orderedHighFirst); i++ {
		for j := i + 1; j < len(orderedHighFirst); j++ {
			a.Priorities = append(a.Priorities, core.Priority{
				Low:  orderedHighFirst[j],
				High: orderedHighFirst[i],
			})
		}
	}
	return a
}

// TMRReplica names a replica's output port and the variable it exports.
type TMRReplica struct {
	Comp string
	Port string
	Var  string
}

// TMR builds the triple-modular-redundancy architecture of §5.5.2: a
// voter reads the three replicas' outputs in a fixed round and publishes
// the majority value on its "deliver" port (variable "out").
// Characteristic property: the delivered value equals the value produced
// by at least two replicas, so a single faulty replica is masked.
func TMR(name string, replicas [3]TMRReplica) (*Architecture, error) {
	voter := behavior.NewBuilder(name).
		Location("r0", "r1", "r2", "vote", "ready").
		Int("a", 0).Int("b", 0).Int("c", 0).Int("out", 0).
		Port("in0", "a").
		Port("in1", "b").
		Port("in2", "c").
		Port("decide").
		Port("deliver", "out").
		Transition("r0", "in0", "r1").
		Transition("r1", "in1", "r2").
		Transition("r2", "in2", "vote").
		TransitionG("vote", "decide", "ready", nil,
			// Majority of three: if a==b or a==c then a else b.
			expr.Set("out", expr.If(
				expr.Or(expr.Eq(expr.V("a"), expr.V("b")), expr.Eq(expr.V("a"), expr.V("c"))),
				expr.V("a"),
				expr.V("b")))).
		Transition("ready", "deliver", "r0").
		MustBuild()
	a := &Architecture{Name: name, Coordinators: []*behavior.Atom{voter}}
	for i, r := range replicas {
		a.Interactions = append(a.Interactions, &core.Interaction{
			Name:  fmt.Sprintf("read%d_%s", i, name),
			Ports: []core.PortRef{core.P(r.Comp, r.Port), core.P(name, fmt.Sprintf("in%d", i))},
			Action: expr.Set(name+"."+string(rune('a'+i)),
				expr.V(r.Comp+"."+r.Var)),
		})
	}
	a.Interactions = append(a.Interactions, &core.Interaction{
		Name:  "decide_" + name,
		Ports: []core.PortRef{core.P(name, "decide")},
	})
	return a, nil
}

// AtMostOneAt returns the characteristic-property predicate of Mutex:
// at most one of the listed components sits at its critical location.
func AtMostOneAt(sys *core.System, critical map[string]string) func(core.State) bool {
	type slot struct {
		idx int
		loc string
	}
	var slots []slot
	for comp, loc := range critical {
		slots = append(slots, slot{idx: sys.AtomIndex(comp), loc: loc})
	}
	return func(st core.State) bool {
		n := 0
		for _, s := range slots {
			if s.idx >= 0 && st.Locs[s.idx] == s.loc {
				n++
			}
		}
		return n <= 1
	}
}

package distributed

import (
	"fmt"
	"sort"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
	"bip/internal/network"
)

// Protocol messages. The offer/reserve/commit exchange is the
// send/receive refinement of multiparty interaction (Fig. 5.4: str/rcv/
// ack/cmp); reservation makes the refinement stable under conflicts,
// which is exactly what the paper's bottom-of-Fig-5.4 counterexample
// shows naive refinement is not (experiment E6).
type (
	// offerMsg: component → interaction protocols. One per state change.
	offerMsg struct {
		Comp    string
		Seq     int64
		Enabled map[string][]int
		Vars    expr.MapEnv
	}
	// reserveMsg: IP → component. Seq is the state the IP believes.
	reserveMsg struct {
		Seq     int64
		Attempt int64
	}
	reserveOKMsg struct {
		Comp    string
		Attempt int64
	}
	reserveFailMsg struct {
		Comp    string
		Attempt int64
	}
	// commitMsg: IP → component: fire the transition with the
	// interaction's data-transfer results.
	commitMsg struct {
		Attempt int64
		Trans   int
		Updates expr.MapEnv
	}
	abortMsg struct {
		Attempt int64
	}
	// committedMsg / abortedMsg: IP → observer (zero-delay channel).
	committedMsg struct{ Label string }
	abortedMsg   struct{}
	// Centralized CRP.
	reqMsg     struct{}
	grantMsg   struct{}
	releaseMsg struct{}
	// Token-ring CRP.
	tokenMsg struct{ IdleHops int }
	wakeMsg  struct{}
	// parkedMsg announces that the token has parked; nodes still waiting
	// for it answer with a fresh wake. This closes the race where a wake
	// is broadcast while the token is in transit and therefore reaches
	// no holder.
	parkedMsg struct{}
)

// compNode is the component layer: it executes the atom's local
// behaviour and speaks the offer/reserve/commit protocol.
type compNode struct {
	atom *behavior.Atom
	st   behavior.State
	seq  int64
	ips  []network.NodeID

	reservedBy      network.NodeID
	reservedAttempt int64
	waiters         map[network.NodeID]bool
}

func newCompNode(atom *behavior.Atom, ips []network.NodeID) *compNode {
	return &compNode{
		atom:    atom,
		st:      atom.InitialState(),
		ips:     ips,
		waiters: make(map[network.NodeID]bool),
	}
}

// Init broadcasts the initial offer.
func (c *compNode) Init(ctx network.Context) {
	c.broadcastOffer(ctx)
}

func (c *compNode) offer() offerMsg {
	enabled := make(map[string][]int)
	for _, p := range c.atom.Ports {
		// Local guard evaluation can only fail on malformed models,
		// which Deploy has validated; treat failure as disabled.
		if ts, err := c.atom.Enabled(c.st, p.Name); err == nil && len(ts) > 0 {
			enabled[p.Name] = ts
		}
	}
	// The offer shares the component's variable store instead of cloning
	// it per round. This is the MT engine's channel-ordering argument
	// transplanted to the protocol layer: a published store is never
	// written again — a commit builds the successor state on a fresh
	// store (see the commitMsg case) — so IPs may keep reading their
	// snapshots (guards, data transfer) long after the component moved
	// on. TestOfferStoresImmutableAfterCommit pins this discipline.
	return offerMsg{Comp: c.atom.Name, Seq: c.seq, Enabled: enabled, Vars: c.st.Vars}
}

func (c *compNode) broadcastOffer(ctx network.Context) {
	o := c.offer()
	for _, ip := range c.ips {
		ctx.Send(ip, o)
	}
}

// Recv implements network.Handler.
func (c *compNode) Recv(ctx network.Context, from network.NodeID, msg any) {
	switch m := msg.(type) {
	case reserveMsg:
		switch {
		case c.reservedBy != "":
			// Busy: fail now, wake the requester when freed.
			c.waiters[from] = true
			ctx.Send(from, reserveFailMsg{Comp: c.atom.Name, Attempt: m.Attempt})
		case m.Seq != c.seq:
			// Stale view: the fresh offer is already in flight.
			ctx.Send(from, reserveFailMsg{Comp: c.atom.Name, Attempt: m.Attempt})
		default:
			c.reservedBy = from
			c.reservedAttempt = m.Attempt
			ctx.Send(from, reserveOKMsg{Comp: c.atom.Name, Attempt: m.Attempt})
		}
	case commitMsg:
		if c.reservedBy != from || c.reservedAttempt != m.Attempt {
			// A commit outside a valid reservation is a protocol bug.
			panic(fmt.Sprintf("distributed: %s: commit without reservation", c.atom.Name))
		}
		// Never mutate the published store: apply the interaction's
		// updates and the local action on a fresh clone, so every offer
		// that shares the old store stays a faithful snapshot of the
		// state it advertised.
		next := behavior.State{Loc: c.st.Loc, Vars: c.st.Vars.Clone()}
		for k, v := range m.Updates {
			if err := next.Vars.Set(k, v); err != nil {
				panic(fmt.Sprintf("distributed: %s: %v", c.atom.Name, err))
			}
		}
		loc, err := c.atom.ExecInPlace(next, m.Trans)
		if err != nil {
			panic(fmt.Sprintf("distributed: %s: %v", c.atom.Name, err))
		}
		next.Loc = loc
		c.st = next
		c.seq++
		c.clearReservation()
		// The broadcast reaches every interested IP, waiters included.
		c.broadcastOffer(ctx)
	case abortMsg:
		if c.reservedBy == from && c.reservedAttempt == m.Attempt {
			waiters := c.clearReservation()
			// Wake waiters with the (unchanged) offer so they retry.
			o := c.offer()
			for _, w := range waiters {
				ctx.Send(w, o)
			}
		}
	}
}

// clearReservation frees the component and returns the waiters to wake.
func (c *compNode) clearReservation() []network.NodeID {
	c.reservedBy = ""
	c.reservedAttempt = 0
	waiters := make([]network.NodeID, 0, len(c.waiters))
	for w := range c.waiters {
		waiters = append(waiters, w)
	}
	sort.Slice(waiters, func(i, j int) bool { return waiters[i] < waiters[j] })
	c.waiters = make(map[network.NodeID]bool)
	return waiters
}

// attemptState tracks the IP's single in-flight attempt. It works on a
// snapshot of the offers taken when the attempt started: fresher offers
// arriving mid-attempt must not change the state the reservations
// asserted (the component validates the snapshot's sequence number).
type attemptState struct {
	active       bool
	id           int64
	inter        int
	comps        []string // canonical (sorted) reservation order
	snapshot     map[string]offerMsg
	next         int
	external     bool
	reservedUpTo int
}

// ipNode is the interaction-protocol layer: one node per partition
// block.
type ipNode struct {
	sys      *core.System
	blockIdx int
	block    []int
	crp      CRP
	nBlocks  int
	shared   map[string]bool

	offers     map[string]offerMsg
	rr         int
	attemptCtr int64
	attempt    attemptState

	// Centralized CRP state.
	waitingGrant, holdingGrant bool
	// Token-ring CRP state.
	hasToken, tokenParked, waitingToken, didWork bool
}

func newIPNode(sys *core.System, blockIdx int, block []int, compBlocks map[string]map[int]bool, crp CRP, nBlocks int) *ipNode {
	shared := make(map[string]bool)
	for comp, blocks := range compBlocks {
		if len(blocks) > 1 {
			shared[comp] = true
		}
	}
	return &ipNode{
		sys:      sys,
		blockIdx: blockIdx,
		block:    block,
		crp:      crp,
		nBlocks:  nBlocks,
		shared:   shared,
		offers:   make(map[string]offerMsg),
	}
}

// Init parks the token at block 0 in token-ring mode.
func (n *ipNode) Init(network.Context) {
	if n.crp == TokenRing && n.blockIdx == 0 {
		n.hasToken = true
		n.tokenParked = true
	}
}

// Recv implements network.Handler.
func (n *ipNode) Recv(ctx network.Context, from network.NodeID, msg any) {
	switch m := msg.(type) {
	case offerMsg:
		n.offers[m.Comp] = m
		n.tryStart(ctx)
	case reserveOKMsg:
		if !n.attempt.active || m.Attempt != n.attempt.id {
			// Late OK for a dead attempt: undo the reservation.
			ctx.Send(compID(m.Comp), abortMsg{Attempt: m.Attempt})
			return
		}
		n.attempt.reservedUpTo = n.attempt.next + 1
		n.attempt.next++
		if n.attempt.next < len(n.attempt.comps) {
			n.sendReserve(ctx)
			return
		}
		n.commitAttempt(ctx)
	case reserveFailMsg:
		if !n.attempt.active || m.Attempt != n.attempt.id {
			return
		}
		n.abortAttempt(ctx)
	case grantMsg:
		n.holdingGrant = true
		n.waitingGrant = false
		n.tryStart(ctx)
		if !n.attempt.active && n.holdingGrant {
			// Work disappeared while waiting: give the grant back.
			n.holdingGrant = false
			ctx.Send(arbiterID, releaseMsg{})
		}
	case tokenMsg:
		n.hasToken = true
		n.tokenParked = false
		n.waitingToken = false
		n.didWork = false
		n.tryStart(ctx)
		if !n.attempt.active {
			n.passToken(ctx, m.IdleHops+1)
		}
	case wakeMsg:
		if n.hasToken && n.tokenParked && !n.attempt.active {
			n.tokenParked = false
			n.tryStart(ctx)
			if !n.attempt.active {
				n.passToken(ctx, 0)
			}
		}
	case parkedMsg:
		if n.waitingToken && !n.hasToken {
			ctx.Send(from, wakeMsg{})
		}
	}
}

// enabledInBlock returns the block-relative indices of interactions
// currently enabled according to the offers.
func (n *ipNode) enabledInBlock() []int {
	var out []int
	for bi, ii := range n.block {
		if n.interactionEnabled(ii) {
			out = append(out, bi)
		}
	}
	return out
}

func (n *ipNode) interactionEnabled(ii int) bool {
	in := n.sys.Interactions[ii]
	for _, pr := range in.Ports {
		o, ok := n.offers[pr.Comp]
		if !ok || len(o.Enabled[pr.Port]) == 0 {
			return false
		}
	}
	if in.Guard != nil {
		env := n.offerEnv(in)
		ok, err := expr.EvalBool(in.Guard, env)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func (n *ipNode) offerEnv(in *core.Interaction) expr.MapEnv {
	env := make(expr.MapEnv)
	for _, pr := range in.Ports {
		o := n.offers[pr.Comp]
		for k, v := range o.Vars {
			env[pr.Comp+"."+k] = v
		}
	}
	return env
}

// tryStart begins a new attempt when none is active and some interaction
// of the block is enabled.
func (n *ipNode) tryStart(ctx network.Context) {
	if n.attempt.active {
		return
	}
	cands := n.enabledInBlock()
	if len(cands) == 0 {
		return
	}
	// Round-robin for fairness within the block.
	pick := cands[0]
	for _, c := range cands {
		if c >= n.rr {
			pick = c
			break
		}
	}
	n.rr = (pick + 1) % len(n.block)
	ii := n.block[pick]
	in := n.sys.Interactions[ii]

	external := false
	comps := make([]string, 0, len(in.Ports))
	for _, pr := range in.Ports {
		comps = append(comps, pr.Comp)
		if n.shared[pr.Comp] {
			external = true
		}
	}
	sort.Strings(comps) // canonical order: the ordered-reservation CRP

	if external {
		switch n.crp {
		case Centralized:
			if !n.holdingGrant {
				if !n.waitingGrant {
					n.waitingGrant = true
					ctx.Send(arbiterID, reqMsg{})
				}
				return
			}
		case TokenRing:
			if !n.hasToken {
				if !n.waitingToken {
					n.waitingToken = true
					for b := 0; b < n.nBlocks; b++ {
						if b != n.blockIdx {
							ctx.Send(ipID(b), wakeMsg{})
						}
					}
				}
				return
			}
			n.tokenParked = false
		case Ordered:
			// Fully distributed: reservation order is the protocol.
		}
	}

	snapshot := make(map[string]offerMsg, len(comps))
	for _, c := range comps {
		snapshot[c] = n.offers[c]
	}
	n.attemptCtr++
	n.attempt = attemptState{
		active:   true,
		id:       n.attemptCtr,
		inter:    ii,
		comps:    comps,
		snapshot: snapshot,
		external: external,
	}
	n.didWork = true
	n.sendReserve(ctx)
}

func (n *ipNode) sendReserve(ctx network.Context) {
	comp := n.attempt.comps[n.attempt.next]
	o := n.attempt.snapshot[comp]
	ctx.Send(compID(comp), reserveMsg{Seq: o.Seq, Attempt: n.attempt.id})
}

// commitAttempt executes the interaction: data transfer on the reserved
// snapshot, commit to every participant, observation, cleanup.
func (n *ipNode) commitAttempt(ctx network.Context) {
	in := n.sys.Interactions[n.attempt.inter]
	env := make(expr.MapEnv)
	for _, pr := range in.Ports {
		o := n.attempt.snapshot[pr.Comp]
		for k, v := range o.Vars {
			env[pr.Comp+"."+k] = v
		}
	}
	if in.Action != nil {
		if err := in.Action.Exec(env); err != nil {
			panic(fmt.Sprintf("distributed: interaction %q: %v", in.Name, err))
		}
	}
	for _, pr := range in.Ports {
		o := n.attempt.snapshot[pr.Comp]
		updates := make(expr.MapEnv)
		prefix := pr.Comp + "."
		for k, v := range env {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				if old, _ := o.Vars.Get(k[len(prefix):]); !old.Equal(v) {
					updates[k[len(prefix):]] = v
				}
			}
		}
		ctx.Send(compID(pr.Comp), commitMsg{
			Attempt: n.attempt.id,
			Trans:   o.Enabled[pr.Port][0],
			Updates: updates,
		})
		// Drop the consumed offer unless a fresher one already arrived.
		if cur, ok := n.offers[pr.Comp]; ok && cur.Seq == o.Seq {
			delete(n.offers, pr.Comp)
		}
	}
	ctx.SendDirect(observerID, committedMsg{Label: in.Name})
	n.endAttempt(ctx)
}

// abortAttempt releases partial reservations and ends the attempt.
func (n *ipNode) abortAttempt(ctx network.Context) {
	for i := 0; i < n.attempt.reservedUpTo; i++ {
		ctx.Send(compID(n.attempt.comps[i]), abortMsg{Attempt: n.attempt.id})
	}
	ctx.SendDirect(observerID, abortedMsg{})
	// Drop the failed component's cached offer unless a fresher one has
	// already arrived: the retry then waits for the wake-up offer the
	// component owes us (busy case) or the fresh broadcast (stale case).
	if i := n.attempt.next; i < len(n.attempt.comps) {
		comp := n.attempt.comps[i]
		if o, ok := n.offers[comp]; ok && o.Seq == n.attempt.snapshot[comp].Seq {
			delete(n.offers, comp)
		}
	}
	n.endAttempt(ctx)
}

func (n *ipNode) endAttempt(ctx network.Context) {
	n.attempt = attemptState{}
	if n.holdingGrant {
		n.holdingGrant = false
		ctx.Send(arbiterID, releaseMsg{})
	}
	n.tryStart(ctx)
	if n.crp == TokenRing && n.hasToken && !n.attempt.active && !n.tokenParked {
		n.passToken(ctx, 0)
	}
}

func (n *ipNode) passToken(ctx network.Context, idleHops int) {
	if idleHops >= n.nBlocks {
		// A full idle circle: park until someone needs it, and announce
		// the parking so that wakes sent while the token was in transit
		// are not lost.
		n.tokenParked = true
		for b := 0; b < n.nBlocks; b++ {
			if b != n.blockIdx {
				ctx.Send(ipID(b), parkedMsg{})
			}
		}
		return
	}
	n.hasToken = false
	n.tokenParked = false
	ctx.Send(ipID((n.blockIdx+1)%n.nBlocks), tokenMsg{IdleHops: idleHops})
}

// arbiter is the centralized CRP: a FIFO mutual-exclusion service.
type arbiter struct {
	busy  bool
	queue []network.NodeID
}

func newArbiter() *arbiter { return &arbiter{} }

// Init implements network.Handler.
func (a *arbiter) Init(network.Context) {}

// Recv implements network.Handler.
func (a *arbiter) Recv(ctx network.Context, from network.NodeID, msg any) {
	switch msg.(type) {
	case reqMsg:
		if !a.busy {
			a.busy = true
			ctx.Send(from, grantMsg{})
			return
		}
		a.queue = append(a.queue, from)
	case releaseMsg:
		if len(a.queue) > 0 {
			next := a.queue[0]
			a.queue = a.queue[1:]
			ctx.Send(next, grantMsg{})
			return
		}
		a.busy = false
	}
}

package distributed

import (
	"strings"
	"testing"

	"bip/models"
)

func TestDeployPhilosophersAllCRPs(t *testing.T) {
	for _, crp := range []CRP{Centralized, TokenRing, Ordered} {
		t.Run(crp.String(), func(t *testing.T) {
			sys, err := models.Philosophers(4)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Deploy(sys, Config{CRP: crp, Seed: 11, MaxCommits: 60, MaxMessages: 200000})
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			stats, err := d.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if stats.Commits < 60 {
				t.Fatalf("commits = %d, want 60", stats.Commits)
			}
			// Correctness witness: the committed order is a legal run of
			// the reference semantics.
			if _, err := ReplayLabels(sys, stats.Labels); err != nil {
				t.Fatalf("committed order invalid: %v", err)
			}
			// Fairness sanity: more than one philosopher eats.
			eaters := map[string]bool{}
			for _, l := range stats.Labels {
				if strings.HasPrefix(l, "eat") {
					eaters[l] = true
				}
			}
			if len(eaters) < 2 {
				t.Fatalf("only %d philosophers ate: %v", len(eaters), eaters)
			}
		})
	}
}

func TestDeployTokenRingModel(t *testing.T) {
	sys, err := models.TokenRing(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, crp := range []CRP{Centralized, TokenRing, Ordered} {
		t.Run(crp.String(), func(t *testing.T) {
			d, err := Deploy(sys, Config{CRP: crp, Seed: 3, MaxCommits: 40, MaxMessages: 100000})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := d.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if _, err := ReplayLabels(sys, stats.Labels); err != nil {
				t.Fatalf("committed order invalid: %v", err)
			}
			// The token-ring model is fully sequential: the labels must
			// be pass0, pass1, ... in ring order regardless of CRP.
			for i, l := range stats.Labels {
				want := "pass" + string(rune('0'+i%5))
				if l != want {
					t.Fatalf("label %d = %s, want %s", i, l, want)
				}
			}
		})
	}
}

func TestDeployProducerConsumerDataTransfer(t *testing.T) {
	sys, err := models.ProducerConsumer(2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(sys, Config{CRP: Ordered, Seed: 5, MaxCommits: 50, MaxMessages: 100000})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Commits < 50 {
		t.Fatalf("commits = %d", stats.Commits)
	}
	// Replay validates both ordering and that guards (count bounds) were
	// respected with the transferred data.
	if _, err := ReplayLabels(sys, stats.Labels); err != nil {
		t.Fatalf("committed order invalid: %v", err)
	}
	// Bounded buffer: at no prefix do puts exceed gets by more than 2.
	puts, gets := 0, 0
	for _, l := range stats.Labels {
		switch l {
		case "put":
			puts++
		case "get":
			gets++
		}
		if puts-gets > 2 || gets > puts {
			t.Fatalf("buffer discipline violated: puts=%d gets=%d", puts, gets)
		}
	}
}

func TestPartitioning(t *testing.T) {
	sys, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit partition: eats in one block, puts in another.
	d, err := Deploy(sys, Config{
		CRP:       Ordered,
		Partition: [][]string{{"eat0", "eat1", "eat2"}, {"put0", "put1", "put2"}},
		Seed:      1, MaxCommits: 30, MaxMessages: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks()) != 2 {
		t.Fatalf("blocks = %d, want 2", len(d.Blocks()))
	}
	stats, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := ReplayLabels(sys, stats.Labels); err != nil {
		t.Fatalf("committed order invalid: %v", err)
	}

	// Unknown interaction in partition.
	if _, err := Deploy(sys, Config{Partition: [][]string{{"ghost"}}}); err == nil {
		t.Fatal("unknown interaction must be rejected")
	}
	// Duplicate assignment.
	if _, err := Deploy(sys, Config{Partition: [][]string{{"eat0"}, {"eat0"}}}); err == nil {
		t.Fatal("interaction in two blocks must be rejected")
	}
}

func TestSinglePartitionNoSharing(t *testing.T) {
	// All interactions in one block: nothing is externally conflicting,
	// so no CRP traffic is needed and even TokenRing never moves the
	// token.
	sys, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	all := sys.InteractionNames()
	d, err := Deploy(sys, Config{
		CRP:       TokenRing,
		Partition: [][]string{all},
		Seed:      2, MaxCommits: 30, MaxMessages: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := ReplayLabels(sys, stats.Labels); err != nil {
		t.Fatalf("committed order invalid: %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	sys, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Stats {
		d, err := Deploy(sys, Config{CRP: Ordered, Seed: 42, MaxCommits: 25, MaxMessages: 100000})
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if strings.Join(a.Labels, ",") != strings.Join(b.Labels, ",") || a.Messages != b.Messages {
		t.Fatal("same seed must reproduce the identical run")
	}
}

func TestCRPCostsDiffer(t *testing.T) {
	// The three protocols must all work but pay different message
	// costs; this is the qualitative shape E7 tabulates.
	sys, err := models.Philosophers(5)
	if err != nil {
		t.Fatal(err)
	}
	costs := map[CRP]float64{}
	for _, crp := range []CRP{Centralized, TokenRing, Ordered} {
		d, err := Deploy(sys, Config{CRP: crp, Seed: 9, MaxCommits: 80, MaxMessages: 400000})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := d.Run()
		if err != nil {
			t.Fatalf("%v: %v", crp, err)
		}
		if _, err := ReplayLabels(sys, stats.Labels); err != nil {
			t.Fatalf("%v: invalid order: %v", crp, err)
		}
		costs[crp] = stats.MsgPerCommit
	}
	t.Logf("msg/commit: centralized=%.1f tokenring=%.1f ordered=%.1f",
		costs[Centralized], costs[TokenRing], costs[Ordered])
	for crp, c := range costs {
		if c <= 0 {
			t.Fatalf("%v: zero message cost", crp)
		}
	}
}

func TestReplayLabelsRejectsIllegal(t *testing.T) {
	sys, err := models.TokenRing(3)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ReplayLabels(sys, []string{"pass1"}); err == nil || n != 0 {
		t.Fatal("pass1 is not initially enabled; replay must fail at step 0")
	}
	if _, err := ReplayLabels(sys, []string{"nonexistent"}); err == nil {
		t.Fatal("unknown label must fail")
	}
}

func TestCRPString(t *testing.T) {
	if Centralized.String() != "centralized" || TokenRing.String() != "tokenring" ||
		Ordered.String() != "ordered" || CRP(99).String() != "invalid" {
		t.Fatal("CRP.String broken")
	}
}

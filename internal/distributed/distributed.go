// Package distributed implements the paper's distribution-driven
// source-to-source transformation (§5.6, [7]): a BIP system with
// multiparty interactions becomes a three-layer S/R (send/receive)
// system executed over asynchronous message passing:
//
//  1. the component layer — one node per atomic component, whose
//     multiparty ports are replaced by an offer/reserve/commit protocol
//     (the str/rcv/ack/cmp refinement of Fig. 5.4);
//  2. the interaction-protocol layer — one node per partition block,
//     detecting enabledness of its interactions from received offers and
//     committing them;
//  3. the conflict-resolution layer — a committee-coordination protocol
//     serializing externally-conflicting commits, in three variants:
//     a centralized arbiter, a circulating token ring, and a fully
//     distributed ordered-reservation scheme (the dining-philosophers
//     algorithm).
//
// The committed interaction order is recorded and can be replayed
// through the reference semantics — the executable correctness witness
// of the transformation (experiments E5–E7).
package distributed

import (
	"fmt"
	"sort"

	"bip/internal/core"
	"bip/internal/network"
)

// CRP selects the conflict-resolution protocol.
type CRP int

// The three committee-coordination protocols of §5.6.
const (
	// Centralized uses a single arbiter granting exclusive commit
	// rights FIFO.
	Centralized CRP = iota + 1
	// TokenRing circulates a token among interaction-protocol nodes;
	// only the holder commits externally-conflicting interactions.
	TokenRing
	// Ordered is the fully distributed dining-philosophers scheme:
	// components are reserved in canonical order, so circular waits
	// cannot form.
	Ordered
)

// String names the protocol.
func (c CRP) String() string {
	switch c {
	case Centralized:
		return "centralized"
	case TokenRing:
		return "tokenring"
	case Ordered:
		return "ordered"
	default:
		return "invalid"
	}
}

// Config parameterizes a deployment.
type Config struct {
	// CRP selects the conflict-resolution protocol (default Ordered).
	CRP CRP
	// Partition groups interaction names into blocks, one
	// interaction-protocol node per block. Unlisted interactions form
	// one extra block each. A nil partition puts every interaction in
	// its own block (maximal distribution).
	Partition [][]string
	// Seed drives the deterministic network jitter.
	Seed int64
	// MaxCommits stops the run after that many committed interactions
	// (0 = 1000).
	MaxCommits int
	// MaxMessages is the safety cap on network traffic (0 = 1<<20).
	MaxMessages int
}

// Stats reports a deployment run.
type Stats struct {
	Commits  int
	Labels   []string
	Messages int
	Aborts   int
	// MsgPerCommit is the headline cost metric of experiment E7.
	MsgPerCommit float64
}

// Deploy builds the three-layer system for sys.
func Deploy(sys *core.System, cfg Config) (*Deployment, error) {
	if cfg.CRP == 0 {
		cfg.CRP = Ordered
	}
	if cfg.MaxCommits <= 0 {
		cfg.MaxCommits = 1000
	}
	if cfg.MaxMessages <= 0 {
		cfg.MaxMessages = 1 << 20
	}
	blocks, err := partitionBlocks(sys, cfg.Partition)
	if err != nil {
		return nil, err
	}
	d := &Deployment{sys: sys, cfg: cfg, blocks: blocks}
	return d, nil
}

// partitionBlocks validates and completes the partition.
func partitionBlocks(sys *core.System, part [][]string) ([][]int, error) {
	assigned := make(map[int]bool)
	var blocks [][]int
	for _, names := range part {
		var block []int
		for _, n := range names {
			ii := sys.InteractionIndex(n)
			if ii < 0 {
				return nil, fmt.Errorf("distributed: partition references unknown interaction %q", n)
			}
			if assigned[ii] {
				return nil, fmt.Errorf("distributed: interaction %q in two blocks", n)
			}
			assigned[ii] = true
			block = append(block, ii)
		}
		if len(block) > 0 {
			blocks = append(blocks, block)
		}
	}
	for ii := range sys.Interactions {
		if !assigned[ii] {
			blocks = append(blocks, []int{ii})
		}
	}
	return blocks, nil
}

// Deployment is a transformed system ready to run.
type Deployment struct {
	sys    *core.System
	cfg    Config
	blocks [][]int
}

// Blocks returns the interaction partition (indices into
// sys.Interactions), mainly for inspection and tests.
func (d *Deployment) Blocks() [][]int { return d.blocks }

// Run executes the deployment on a fresh simulator and returns its
// statistics.
func (d *Deployment) Run() (*Stats, error) {
	sim := network.NewSim(d.cfg.Seed)
	obs := &observer{max: d.cfg.MaxCommits}

	// Which components are shared across blocks (externally
	// conflicting)? A component used by interactions in two different
	// blocks needs cross-block coordination.
	blockOf := make(map[int]int) // interaction -> block
	for bi, block := range d.blocks {
		for _, ii := range block {
			blockOf[ii] = bi
		}
	}
	compBlocks := make(map[string]map[int]bool)
	for ii, in := range d.sys.Interactions {
		for _, pr := range in.Ports {
			if compBlocks[pr.Comp] == nil {
				compBlocks[pr.Comp] = make(map[int]bool)
			}
			compBlocks[pr.Comp][blockOf[ii]] = true
		}
	}

	// Component layer.
	for _, atom := range d.sys.Atoms {
		var ips []network.NodeID
		for bi := range compBlocks[atom.Name] {
			ips = append(ips, ipID(bi))
		}
		sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
		if err := sim.AddNode(compID(atom.Name), newCompNode(atom, ips)); err != nil {
			return nil, err
		}
	}

	// Interaction-protocol layer.
	nBlocks := len(d.blocks)
	for bi, block := range d.blocks {
		node := newIPNode(d.sys, bi, block, compBlocks, d.cfg.CRP, nBlocks)
		if err := sim.AddNode(ipID(bi), node); err != nil {
			return nil, err
		}
	}

	// Conflict-resolution layer. The token ring is peer-to-peer (the
	// token starts parked at block 0) and Ordered is fully distributed,
	// so only the centralized protocol adds a coordinator node.
	switch d.cfg.CRP {
	case Centralized:
		if err := sim.AddNode(arbiterID, newArbiter()); err != nil {
			return nil, err
		}
	case TokenRing, Ordered:
	default:
		return nil, fmt.Errorf("distributed: unknown CRP %d", d.cfg.CRP)
	}

	if err := sim.AddNode(observerID, obs); err != nil {
		return nil, err
	}

	err := sim.Run(d.cfg.MaxMessages)
	stats := &Stats{
		Commits:  len(obs.labels),
		Labels:   obs.labels,
		Messages: sim.Delivered(),
		Aborts:   obs.aborts,
	}
	if stats.Commits > 0 {
		stats.MsgPerCommit = float64(stats.Messages) / float64(stats.Commits)
	}
	if err != nil && !obs.done {
		return stats, fmt.Errorf("distributed: %w", err)
	}
	return stats, nil
}

// ReplayLabels validates a committed label sequence against the
// reference semantics: each label must correspond to an enabled move
// when replayed in order. It returns the number of steps replayed.
func ReplayLabels(sys *core.System, labels []string) (int, error) {
	st := sys.Initial()
	for i, lab := range labels {
		moves, err := sys.EnabledRaw(st)
		if err != nil {
			return i, fmt.Errorf("distributed: replay step %d: %w", i, err)
		}
		var chosen *core.Move
		for mi := range moves {
			if sys.Label(moves[mi]) == lab {
				chosen = &moves[mi]
				break
			}
		}
		if chosen == nil {
			return i, fmt.Errorf("distributed: replay step %d: %q not enabled", i, lab)
		}
		st, err = sys.Exec(st, *chosen)
		if err != nil {
			return i, fmt.Errorf("distributed: replay step %d: %w", i, err)
		}
	}
	return len(labels), nil
}

// Node identifiers.
const (
	arbiterID  network.NodeID = "crp/arbiter"
	tokenID    network.NodeID = "crp/token"
	observerID network.NodeID = "observer"
)

func compID(name string) network.NodeID { return network.NodeID("comp/" + name) }
func ipID(block int) network.NodeID     { return network.NodeID(fmt.Sprintf("ip/%d", block)) }

// observer records committed interactions in arrival order (commit
// notifications travel on the zero-delay channel, so arrival order is
// the linearization order).
type observer struct {
	labels []string
	aborts int
	max    int
	done   bool
}

func (o *observer) Init(network.Context) {}

func (o *observer) Recv(ctx network.Context, _ network.NodeID, msg any) {
	switch m := msg.(type) {
	case committedMsg:
		o.labels = append(o.labels, m.Label)
		if len(o.labels) >= o.max {
			o.done = true
			ctx.Stop()
		}
	case abortedMsg:
		o.aborts++
	}
}

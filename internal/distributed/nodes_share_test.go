package distributed

import (
	"fmt"
	"sync"
	"testing"

	"bip/internal/behavior"
	"bip/internal/expr"
	"bip/internal/network"
	"bip/models"
)

// probeIP is a minimal interaction-protocol stand-in that reserves and
// commits against one component while retaining the first offer's
// variable store. It is the instrument of the publish-immutability
// regression test below.
type probeIP struct {
	comp       network.NodeID
	maxCommits int

	commits   int
	attempt   int64
	cur       offerMsg
	first     expr.MapEnv // shared store as published
	firstCopy expr.MapEnv // deep copy taken at publication time
}

func (p *probeIP) Init(network.Context) {}

func (p *probeIP) Recv(ctx network.Context, from network.NodeID, msg any) {
	switch m := msg.(type) {
	case offerMsg:
		if p.first == nil {
			p.first = m.Vars
			p.firstCopy = m.Vars.Clone()
		}
		if p.commits >= p.maxCommits {
			return
		}
		p.cur = m
		p.attempt++
		ctx.Send(p.comp, reserveMsg{Seq: m.Seq, Attempt: p.attempt})
	case reserveOKMsg:
		// Commit with a data-transfer update, like a real IP would.
		p.commits++
		ctx.Send(p.comp, commitMsg{
			Attempt: p.attempt,
			Trans:   p.cur.Enabled["p"][0],
			Updates: expr.MapEnv{"x": expr.IntVal(int64(100 * p.commits))},
		})
	}
}

// TestOfferStoresImmutableAfterCommit is the regression test for offer
// sharing: offers no longer clone the component's variable store per
// round, which is sound only as long as a published store is never
// written again. Drive a component through several commits (each with
// variable updates and a local action) and check that the store
// published by the very first offer still reads exactly as it did at
// publication time.
func TestOfferStoresImmutableAfterCommit(t *testing.T) {
	atom := behavior.NewBuilder("c").
		Location("s").Int("x", 7).
		Port("p", "x").
		TransitionG("s", "p", "s", nil, expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		MustBuild()
	sim := network.NewSim(5)
	probe := &probeIP{comp: compID("c"), maxCommits: 3}
	if err := sim.AddNode(compID("c"), newCompNode(atom, []network.NodeID{"probe"})); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddNode("probe", probe); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10000); err != nil {
		t.Fatal(err)
	}
	if probe.commits != 3 {
		t.Fatalf("probe committed %d times, want 3", probe.commits)
	}
	if probe.first == nil {
		t.Fatal("no offer observed")
	}
	for k, want := range probe.firstCopy {
		got, ok := probe.first.Get(k)
		if !ok || !got.Equal(want) {
			t.Fatalf("published store mutated after commit: %s = %v, was %v at publication", k, got, want)
		}
	}
	if len(probe.first) != len(probe.firstCopy) {
		t.Fatalf("published store changed shape: %d vars, was %d", len(probe.first), len(probe.firstCopy))
	}
}

// TestDeploymentsRaceClean runs full deployments of a data-carrying
// model concurrently. Under -race (the CI race job) this pins that the
// shared-offer protocol keeps all mutable state confined to its own
// simulation — and that runs stay deterministic while doing so.
func TestDeploymentsRaceClean(t *testing.T) {
	run := func() ([]string, error) {
		sys, err := models.ProducerConsumer(2)
		if err != nil {
			return nil, err
		}
		d, err := Deploy(sys, Config{CRP: Ordered, Seed: 9, MaxCommits: 40, MaxMessages: 200000})
		if err != nil {
			return nil, err
		}
		stats, err := d.Run()
		if err != nil {
			return nil, err
		}
		if _, err := ReplayLabels(sys, stats.Labels); err != nil {
			return nil, fmt.Errorf("committed order invalid: %w", err)
		}
		return stats.Labels, nil
	}
	const n = 4
	labels := make([][]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			labels[i], errs[i] = run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if fmt.Sprint(labels[i]) != fmt.Sprint(labels[0]) {
			t.Fatalf("concurrent runs diverged:\n run0: %v\n run%d: %v", labels[0], i, labels[i])
		}
	}
}

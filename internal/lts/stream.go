package lts

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"bip/internal/core"
)

// This file implements streaming (on-the-fly) exploration: the breadth-
// first drivers — sequential here, sharded parallel in parallel.go — no
// longer build a data structure of their own but emit a deterministic
// event stream into a Sink. Materializing the full LTS (Explore) is just
// one sink; the on-the-fly checkers in check.go are others. Both drivers
// emit the bit-identical event sequence for the same system and options,
// so every sink is worker-count independent.
//
// The memory contract is what makes streaming matter for the biggest
// workloads: the drivers retain materialized states, move tables and
// counterexample-path nodes only for the BFS frontier (discovered but
// not yet expanded states). Once a state is expanded its machinery is
// released — what remains per visited state is one fixed-width binary
// dedup key. A checker that early-exits on the first violation therefore
// runs in O(frontier) live memory instead of the O(statespace) states,
// edges and BFS tree the materialized LTS retains, and never pays for
// the part of the space behind the violation.

// DefaultMaxStates is the exploration bound applied when
// Options.MaxStates is zero. Every entry point — the library drivers and
// the command-line tools — routes its default through this constant, so
// CLIs and library agree.
const DefaultMaxStates = 1 << 20

// DefaultProgressEvery is the interval between Options.Progress
// callbacks when Options.ProgressEvery is zero. Ten snapshots a second
// is enough for a live progress stream while keeping the callback cost
// invisible next to state expansion.
const DefaultProgressEvery = 100 * time.Millisecond

// progressStride is how many expansions the sequential driver lets pass
// between clock reads when rate-limiting Progress callbacks: one
// time.Now per stride instead of per state keeps the hook free on the
// hot path while still honoring ProgressEvery to within a few
// expansions.
const progressStride = 16

// progressMeter rate-limits Options.Progress for the drivers that call
// it inline (sequential per expansion, deterministic parallel per level
// barrier). The work-stealing driver uses a time.Ticker goroutine
// instead (wsteal.go) — its workers never meet a common point to tick
// from.
type progressMeter struct {
	fn    func(Stats)
	every time.Duration
	last  time.Time
	skip  int
}

// newProgressMeter returns nil (a no-op receiver) when no callback is
// installed.
func newProgressMeter(opts *Options) *progressMeter {
	if opts.Progress == nil {
		return nil
	}
	return &progressMeter{fn: opts.Progress, every: opts.progressEvery(), last: time.Now()}
}

// progressEvery resolves the callback interval.
func (o *Options) progressEvery() time.Duration {
	if o.ProgressEvery > 0 {
		return o.ProgressEvery
	}
	return DefaultProgressEvery
}

// tick is the strided per-expansion form: it reads the clock only every
// progressStride calls. snap builds the snapshot and runs only when a
// callback actually fires.
func (p *progressMeter) tick(snap func() Stats) {
	if p == nil {
		return
	}
	if p.skip > 0 {
		p.skip--
		return
	}
	p.skip = progressStride
	p.check(snap)
}

// check fires the callback if the interval has elapsed (no stride — the
// barrier-paced caller is already infrequent).
func (p *progressMeter) check(snap func() Stats) {
	if p == nil {
		return
	}
	now := time.Now()
	if now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	p.fn(snap())
}

// ErrStop is the sentinel a Sink returns to end exploration early
// without reporting an error (a checker found its violation, a collector
// has all it needs). The drivers swallow it: Stream returns nil after a
// sink-requested stop, with Stats.Stopped set.
var ErrStop = errors.New("lts: stop exploration")

// Order selects the event-stream discipline of a multi-worker
// exploration. It trades scheduling freedom against stream determinism;
// the explored state *set*, the edge set, the truncation flag and every
// checker verdict (violated / conclusive) are identical either way —
// only state numbering, event order and therefore which particular
// counterexample is reported may differ under Unordered.
type Order int

const (
	// Deterministic (the default) replays the sequential driver's exact
	// event stream at any worker count: same state numbering, edges,
	// BFS tree, truncation — bit-identical sinks. Parallel expansion is
	// level-synchronized (parallel.go), with the replay pipelined so
	// workers only meet a numbering barrier, not the sink.
	Deterministic Order = iota
	// Unordered runs the work-stealing explorer (wsteal.go): per-worker
	// chunked deques with steal-half balancing and no barrier anywhere
	// on the hot path. Events are emitted as expansion completes, so
	// state numbering and stream order vary run to run; the relaxed
	// Sink contract below still holds. Prefer it whenever only
	// verdicts, the state set, or canonical analyses matter.
	Unordered
)

// OrderSink is an optional Sink extension: a driver announces the
// stream order it is about to produce before the first event, so
// order-sensitive sinks (AutomatonCheck, DeadlockCheck) can pick the
// matching bookkeeping. Sinks that do not implement it must either be
// order-insensitive or be used only with deterministic streams.
// NewMulti forwards the announcement to every child.
type OrderSink interface {
	SetStreamOrder(Order)
}

// announceOrder tells an order-aware sink which stream to expect.
func announceOrder(sink Sink, o Order) {
	if os, ok := sink.(OrderSink); ok {
		os.SetStreamOrder(o)
	}
}

// Sink consumes the exploration event stream. With Options.Order ==
// Deterministic (the default), events arrive in the deterministic order
// of the sequential breadth-first search, regardless of Options.Workers:
//
//   - OnState(id, …) once per admitted state, in increasing id order (the
//     initial state is id 0). The state is a materialized snapshot the
//     sink may retain.
//   - OnEdge(from, to, label) once per transition, grouped by source:
//     `from` is non-decreasing, and all edges of a state are emitted
//     between its OnState and its OnExpanded. Edges to states rejected by
//     the MaxStates bound are not emitted (matching the materialized
//     LTS), but such suppressed successors still count in OnExpanded's
//     move count.
//   - OnExpanded(id, moves) after state id's expansion completes, in
//     increasing id order; moves is the number of enabled moves at the
//     state, so moves == 0 identifies a deadlock even when the bound
//     truncated the edge stream.
//   - Done(truncated) once, after the full (possibly truncated)
//     exploration — but not after an ErrStop.
//
// With Options.Order == Unordered and Workers > 1, the work-stealing
// driver relaxes the ordering only: ids are still dense and unique,
// OnState(0) is still the first event, every state's OnState still
// precedes both every OnEdge mentioning it (either endpoint) and its
// own OnExpanded — but ids arrive in no particular order, edges of one
// state need not be contiguous, and a late cross edge may even arrive
// after its source's OnExpanded. Drivers announce the order through
// OrderSink before the first event.
//
// Methods are never called concurrently. Returning ErrStop ends the
// exploration early; any other error aborts it and is returned by the
// driver.
type Sink interface {
	OnState(id int, st core.State, d Discovery) error
	OnEdge(from, to int, label string) error
	OnExpanded(id, moves int) error
	Done(truncated bool) error
}

// pathNode is one edge of the frontier-resident BFS tree: the label of
// the discovery transition plus the parent state's node. Nodes are
// reachable only through the Discovery handles of frontier states (and
// through their children's nodes), so the tree shrinks to the ancestors
// of the live frontier as exploration proceeds — expanded branches are
// garbage-collected instead of being retained for the whole run.
type pathNode struct {
	parent *pathNode
	label  string
}

// Discovery describes how a state was first reached: the BFS-tree edge
// (Parent, Label) and a handle on the frontier-resident path back to the
// initial state. The zero Discovery (Parent == -1) is the initial state.
type Discovery struct {
	// Parent is the id of the state whose expansion discovered this one;
	// -1 for the initial state.
	Parent int
	// Label is the interaction label of the discovery transition; empty
	// for the initial state.
	Label string

	node *pathNode
}

// Path returns the interaction labels leading from the initial state to
// the discovered state along the BFS tree — the same path the
// materialized LTS reconstructs with PathTo.
func (d Discovery) Path() []string {
	n := 0
	for p := d.node; p != nil; p = p.parent {
		n++
	}
	out := make([]string, n)
	for p := d.node; p != nil; p = p.parent {
		n--
		out[n] = p.label
	}
	return out
}

// Stats summarizes a streaming run. It is JSON-round-trippable (every
// field carries a wire tag): bipd streams Stats snapshots as progress
// events and serializes them into job views, so the struct doubles as a
// wire shape — keep the tags stable.
type Stats struct {
	// States is the number of admitted (numbered) states.
	States int `json:"states"`
	// Transitions is the number of edges emitted.
	Transitions int `json:"transitions"`
	// PeakFrontier is the streaming memory high-water mark experiment
	// E16 compares against the materialized state count: the maximum
	// number of states the driver held materialized at once. For the
	// sequential driver this is exactly the running frontier
	// (discovered-but-unexpanded states). The deterministic parallel
	// driver counts every materialized resident at its worst transient:
	// the previous level (still held while its pipelined replay runs),
	// the level being expanded, and all shard-buffered discoveries —
	// bound-rejected ones included. The work-stealing driver records
	// the in-flight high-water mark (admitted but not yet
	// expanded-and-flushed, wherever the state is buffered). It is the
	// one Stats field that may differ across worker counts and orders.
	PeakFrontier int `json:"peak_frontier"`
	// PeakFrontierBytes prices PeakFrontier in bytes under the
	// frontierEntryBytes accounting model (key width + flat per-atom /
	// per-interaction machinery estimate), so EXPERIMENTS.md memory
	// claims are measured against one reproducible model. For the
	// work-stealing driver it prices the RESIDENT peak: states parked
	// in the spill file are excluded, which is exactly what MemBudget
	// bounds.
	PeakFrontierBytes int64 `json:"peak_frontier_bytes"`
	// SeenBytes is the dedup layer's final memory footprint, summed
	// over stripes (see SeenSet.Bytes) — the number the E20 experiment
	// compares between ExactSeen and CompactSeen.
	SeenBytes int64 `json:"seen_bytes"`
	// ExactPromotions counts membership answers where CompactSeen's
	// exact-promotion tier overruled a colliding discriminator; 0 for
	// exact dedup and for compact dedup at full discriminator width.
	ExactPromotions int64 `json:"exact_promotions"`
	// SpilledChunks counts frontier chunks the work-stealing driver
	// serialized to the spill file under Options.MemBudget (each chunk
	// is written once and read back once).
	SpilledChunks int64 `json:"spilled_chunks"`
	// Truncated reports that the MaxStates bound cut the exploration.
	Truncated bool `json:"truncated"`
	// Stopped reports that the sink ended the exploration early with
	// ErrStop.
	Stopped bool `json:"stopped"`

	// Reduction counters, nonzero only when Options.Expander reduces
	// (expand.go). AmpleStates counts states expanded with a strict
	// ample subset of their enabled moves; PrunedMoves counts the
	// enabled moves those expansions did not pursue; ProvisoFallbacks
	// counts states where an ample choice was escalated to full
	// expansion by the cycle proviso (an ample successor was already
	// visited).
	AmpleStates      int `json:"ample_states"`
	PrunedMoves      int `json:"pruned_moves"`
	ProvisoFallbacks int `json:"proviso_fallbacks"`

	// ReductionDegradedBy names the property whose visibility forced a
	// reduction request back to full expansion. The drivers never set
	// it — bip.Verify stamps it on progress snapshots and the final
	// report, so the wire shape carries the cause wherever Stats goes.
	ReductionDegradedBy string `json:"reduction_degraded_by,omitempty"`
}

// Stream explores the reachable state space of sys breadth-first and
// feeds the event stream to sink. With Options.Workers > 1 the expansion
// work is sharded across workers (parallel.go) while the event stream
// stays bit-identical to the sequential one. Stream returns once the
// space is exhausted, the MaxStates bound is hit, or the sink stops it.
func Stream(sys *core.System, opts Options, sink Sink) (Stats, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	// Both dedup sets (and the parallel driver's entries) store state
	// ids as int32; make that limit explicit instead of overflowing.
	if maxStates > math.MaxInt32 {
		maxStates = math.MaxInt32
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		if opts.Order == Unordered {
			announceOrder(sink, Unordered)
			return streamWorkSteal(sys, opts, workers, maxStates, sink)
		}
		announceOrder(sink, Deterministic)
		return streamParallel(sys, opts, workers, maxStates, sink)
	}
	// A single worker produces the deterministic stream by construction,
	// whatever Order asks for — announce what the sink will actually see.
	announceOrder(sink, Deterministic)
	return streamSeq(sys, opts, maxStates, sink)
}

// seqEntry is one frontier slot of the sequential driver: the
// materialized state, its per-interaction move table, and its BFS-tree
// node. Entries are zeroed as soon as the state is expanded.
type seqEntry struct {
	st   core.State
	vec  [][]core.Move
	node *pathNode
}

// frontierEntryBytes is the per-resident-state accounting model behind
// Stats.PeakFrontierBytes and Options.MemBudget: the fixed-width dedup
// key plus a flat estimate of the frontier machinery a pending state
// keeps materialized — the entry struct and BFS-tree node (~128 B),
// per-atom state storage (location header + variable store, ~48 B per
// atom), and the per-interaction move-table headers (~24 B each). It
// deliberately ignores model-dependent variance (large per-move choice
// vectors, string contents) so the same state always costs the same:
// budgets and the E20 measurements stay reproducible.
func frontierEntryBytes(sys *core.System) int64 {
	return int64(sys.BinaryKeyWidth()) + 128 +
		48*int64(len(sys.Atoms)) + 24*int64(len(sys.Interactions))
}

func streamSeq(sys *core.System, opts Options, maxStates int, sink Sink) (stats Stats, err error) {
	stats = Stats{States: 1, PeakFrontier: 1}
	init := sys.Initial()
	ctx := sys.NewExploreCtx()
	exp := opts.newWorkerExpander(sys)
	done := opts.ctxDone()
	pm := newProgressMeter(&opts)
	entryBytes := frontierEntryBytes(sys)
	seen := opts.seenSets().NewSeenSet(sys.BinaryKeyWidth())
	initKey := sys.AppendBinaryKey(nil, init)
	seen.Add(hashKey(initKey), initKey, 0)
	defer func() {
		stats.SeenBytes = seen.Bytes()
		stats.ExactPromotions = seen.Promotions()
		stats.PeakFrontierBytes = int64(stats.PeakFrontier) * frontierEntryBytes(sys)
	}()
	initVec, err := sys.EnabledVector(init)
	if err != nil {
		return stats, fmt.Errorf("explore state 0: %w", err)
	}
	if err := sink.OnState(0, init, Discovery{Parent: -1}); err != nil {
		return stats, stats.finish(err)
	}
	// queue holds the frontier; queue[head] is the next state to expand
	// and carries id base+head. Expanded slots are zeroed and the window
	// is compacted once the dead prefix dominates, so the driver's live
	// memory tracks the frontier, not the visited set.
	queue := []seqEntry{{st: init, vec: initVec}}
	base, head := 0, 0
	// levelLast is the id of the last state of the BFS level currently
	// being expanded. When the head moves past it, every state of the
	// next level has already been admitted (BFS discovers level d+1
	// entirely while expanding level d), so the boundary advances to the
	// last admitted id. The cycle proviso below keys on it: a successor
	// with id <= levelLast sits at this level or an earlier one, so the
	// edge can close a cycle in the reduced graph.
	levelLast := 0
	for head < len(queue) {
		select {
		case <-done:
			return stats, opts.Ctx.Err()
		default:
		}
		id := base + head
		if id > levelLast {
			levelLast = stats.States - 1
		}
		e := queue[head]
		queue[head] = seqEntry{}
		head++
		if head > 64 && head*2 >= len(queue) {
			n := copy(queue, queue[head:])
			queue = queue[:n]
			base += head
			head = 0
		}
		moves, nAmple, err := exp.Expand(ctx, e.st, e.vec)
		if err != nil {
			return stats, fmt.Errorf("explore state %d: %w", id, err)
		}
		// Explore the ample prefix; escalate to the full move list if an
		// ample successor turns out to be already visited (cycle
		// proviso, condition C3 — see expand.go).
		explore := nAmple
		for mi := 0; mi < explore; mi++ {
			m := moves[mi]
			view, err := ctx.Scratch.Exec(e.st, m)
			if err != nil {
				return stats, fmt.Errorf("explore state %d: %w", id, err)
			}
			label := sys.Label(m)
			ctx.Key = sys.AppendBinaryKey(ctx.Key[:0], *view)
			h := hashKey(ctx.Key)
			to32, dup := seen.Find(h, ctx.Key)
			to := int(to32)
			if !dup {
				if stats.States >= maxStates {
					stats.Truncated = true
					continue
				}
				next := ctx.Scratch.MaterializeSlab(m, ctx.Slab)
				nextVec, err := ctx.Deriver.DeriveSlab(e.vec, m, next, ctx.Slab)
				if err != nil {
					return stats, fmt.Errorf("explore state %d: %w", id, err)
				}
				to = stats.States
				stats.States++
				seen.Add(h, ctx.Key, int32(to))
				node := &pathNode{parent: e.node, label: label}
				queue = append(queue, seqEntry{st: next, vec: nextVec, node: node})
				if f := len(queue) - head; f > stats.PeakFrontier {
					stats.PeakFrontier = f
				}
				if err := sink.OnState(to, next, Discovery{Parent: id, Label: label, node: node}); err != nil {
					return stats, stats.finish(err)
				}
			} else if to <= levelLast && explore < len(moves) {
				explore = len(moves)
			}
			stats.Transitions++
			if err := sink.OnEdge(id, to, label); err != nil {
				return stats, stats.finish(err)
			}
		}
		if nAmple < len(moves) {
			if explore == len(moves) {
				stats.ProvisoFallbacks++
			} else {
				stats.AmpleStates++
				stats.PrunedMoves += len(moves) - nAmple
			}
		}
		if err := sink.OnExpanded(id, len(moves)); err != nil {
			return stats, stats.finish(err)
		}
		pm.tick(func() Stats {
			s := stats
			s.SeenBytes = seen.Bytes()
			s.ExactPromotions = seen.Promotions()
			s.PeakFrontierBytes = int64(s.PeakFrontier) * entryBytes
			return s
		})
	}
	return stats, stats.finish(sink.Done(stats.Truncated))
}

// finish folds a sink return value into the run outcome: ErrStop is a
// normal early termination, anything else an error.
func (s *Stats) finish(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrStop) {
		s.Stopped = true
		return nil
	}
	return err
}

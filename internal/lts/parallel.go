package lts

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bip/internal/core"
)

// This file implements the sharded parallel breadth-first explorer.
//
// The BFS runs level-synchronized: all states at distance d are expanded
// by a pool of workers before any state at distance d+1 is numbered.
// Workers claim slices of the current level from an atomic cursor and
// expand them with worker-local core.ExploreCtx machinery (the System
// itself is read-only after Validate). Successor dedup goes through a
// sharded seen-set: fixed-width binary state keys are hashed, the hash
// picks a shard, and the shard stores the key bytes in a flat append-only
// arena — one mutex hold per successor, no Go string per state.
//
// Determinism. The sequential explorer numbers states in discovery
// order, which for BFS is: level by level, and within a level by the
// lexicographic (parent id, move index) of the state's first discovery.
// The parallel explorer reproduces that numbering exactly: a state first
// discovered this level records the smallest (parent, move) pair that
// reached it (workers race, but the minimum is commutative), and at the
// level barrier the fresh states are sorted by that pair and numbered in
// order. Edge targets to still-unnumbered states are patched after the
// barrier. Truncation is exact as well: the sequential explorer admits
// the first MaxStates-many distinct keys in discovery order and emits no
// edge to a rejected key, ever — so rejected entries are kept as
// tombstones and the sorted admission does the same cut. The result is
// bit-for-bit the sequential LTS, which the differential tests pin.

// Sentinel ids of seen-set entries that have no state number (yet).
const (
	pendingID  int32 = -1 // discovered this level, numbered at the barrier
	rejectedID int32 = -2 // refused by MaxStates; tombstone, never an edge target
)

// pentry is one seen-set entry: an interned key plus, while the state
// waits on the frontier, its materialized state and move table.
type pentry struct {
	key   []byte
	state core.State
	vec   [][]core.Move
	id    int32

	// The lexicographically smallest (parent id, move index) that
	// produced this state, and that move's interaction — the BFS-tree
	// edge and the numbering sort key. Guarded by the owning shard's
	// mutex until the level barrier.
	claimParent int32
	claimMove   int32
	claimInter  int32
}

// shard is one lock stripe of the seen-set.
type shard struct {
	mu sync.Mutex
	// table buckets entries by key hash; the rare colliding hashes
	// chain, compared by full key.
	table map[uint64][]*pentry
	// arena backs the interned key bytes in fixed-width records; chunks
	// are replaced, never grown, so interned slices stay valid.
	arena []byte
	// fresh lists the entries created during the current level.
	fresh []*pentry
}

const arenaChunk = 1 << 16

// intern copies key into the shard's arena and returns the stable copy.
func (sh *shard) intern(key []byte) []byte {
	if len(sh.arena)+len(key) > cap(sh.arena) {
		size := arenaChunk
		if len(key) > size {
			size = len(key)
		}
		sh.arena = make([]byte, 0, size)
	}
	off := len(sh.arena)
	sh.arena = append(sh.arena, key...)
	return sh.arena[off : off+len(key) : off+len(key)]
}

// hashKey is FNV-1a over the key bytes — deterministic across runs, so
// shard assignment (and therefore nothing observable) depends only on
// the state.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// fixup defers an edge target to the level barrier: edge pos of state
// from points at target, which is numbered (or rejected) there.
type fixup struct {
	from   int32
	pos    int32
	target *pentry
}

// pworker is one exploration worker with its private machinery.
type pworker struct {
	ctx    *core.ExploreCtx
	fixups []fixup
	err    error
}

func exploreParallel(sys *core.System, opts Options, workers, maxStates int) (*LTS, error) {
	nShards := 1
	for nShards < workers*8 {
		nShards <<= 1
	}
	if nShards > 256 {
		nShards = 256
	}
	shards := make([]shard, nShards)
	for i := range shards {
		shards[i].table = make(map[uint64][]*pentry)
	}
	mask := uint64(nShards - 1)

	init := sys.Initial()
	initVec, err := sys.EnabledVector(init)
	if err != nil {
		return nil, fmt.Errorf("explore state 0: %w", err)
	}
	key := sys.AppendBinaryKey(nil, init)
	e0 := &pentry{key: key, state: init, vec: initVec, id: 0, claimParent: -1}
	h0 := hashKey(key)
	shards[h0&mask].table[h0] = append(shards[h0&mask].table[h0], e0)

	l := &LTS{
		sys:         sys,
		states:      []core.State{init},
		edges:       [][]Edge{nil},
		parent:      []int{-1},
		parentLabel: []string{""},
	}

	ws := make([]*pworker, workers)
	for i := range ws {
		ws[i] = &pworker{ctx: sys.NewExploreCtx()}
	}

	level := []*pentry{e0}
	var freshBuf []*pentry
	for len(level) > 0 {
		// Expand the level. Small levels get fewer goroutines; a lone
		// state is expanded by a single worker with no extra scheduling.
		const batch = 16
		nw := (len(level) + batch - 1) / batch
		if nw > workers {
			nw = workers
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for _, w := range ws[:nw] {
			wg.Add(1)
			go func(w *pworker) {
				defer wg.Done()
				for {
					start := int(cursor.Add(batch)) - batch
					if start >= len(level) || w.err != nil {
						return
					}
					end := start + batch
					if end > len(level) {
						end = len(level)
					}
					for _, e := range level[start:end] {
						if err := w.expand(l, sys, opts.Raw, e, shards, mask); err != nil {
							w.err = err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, w := range ws[:nw] {
			if w.err != nil {
				return nil, w.err
			}
		}
		// Expanded states no longer need their move tables.
		for _, e := range level {
			e.vec = nil
		}

		// Barrier: gather this level's discoveries, number them in the
		// sequential explorer's discovery order, cut at the state bound.
		fresh := freshBuf[:0]
		for i := range shards {
			fresh = append(fresh, shards[i].fresh...)
			shards[i].fresh = shards[i].fresh[:0]
		}
		sort.Slice(fresh, func(i, j int) bool {
			if fresh[i].claimParent != fresh[j].claimParent {
				return fresh[i].claimParent < fresh[j].claimParent
			}
			return fresh[i].claimMove < fresh[j].claimMove
		})
		next := level[:0]
		for _, e := range fresh {
			if len(l.states) >= maxStates {
				l.truncated = true
				e.id = rejectedID
				e.state = core.State{}
				e.vec = nil
				continue
			}
			e.id = int32(len(l.states))
			l.states = append(l.states, e.state)
			l.parent = append(l.parent, int(e.claimParent))
			l.parentLabel = append(l.parentLabel, sys.Interactions[e.claimInter].Name)
			l.edges = append(l.edges, nil)
			next = append(next, e)
		}
		freshBuf = fresh

		// Patch edges that pointed at now-numbered entries; edges to
		// rejected entries are removed (the sequential explorer never
		// emits them).
		var pruned []int32
		for _, w := range ws[:nw] {
			for _, f := range w.fixups {
				if f.target.id == rejectedID {
					l.edges[f.from][f.pos].To = -1
					pruned = append(pruned, f.from)
				} else {
					l.edges[f.from][f.pos].To = int(f.target.id)
				}
			}
			w.fixups = w.fixups[:0]
		}
		for _, from := range pruned {
			es := l.edges[from]
			out := es[:0]
			for _, e := range es {
				if e.To != -1 {
					out = append(out, e)
				}
			}
			l.edges[from] = out
		}
		level = next
	}
	return l, nil
}

// expand enumerates e's moves and routes each successor through the
// sharded seen-set, recording e's outgoing edges.
func (w *pworker) expand(l *LTS, sys *core.System, raw bool, e *pentry, shards []shard, mask uint64) error {
	ctx := w.ctx
	var moves []core.Move
	var err error
	if raw {
		moves = ctx.Deriver.Raw(e.vec, ctx.Moves[:0])
	} else {
		moves, err = ctx.Deriver.Enabled(e.vec, e.state, ctx.Moves[:0])
		if err != nil {
			return fmt.Errorf("explore state %d: %w", e.id, err)
		}
	}
	ctx.Moves = moves
	if len(moves) == 0 {
		return nil
	}
	edges := make([]Edge, 0, len(moves))
	for mi, m := range moves {
		view, err := ctx.Scratch.Exec(e.state, m)
		if err != nil {
			return fmt.Errorf("explore state %d: %w", e.id, err)
		}
		ctx.Key = sys.AppendBinaryKey(ctx.Key[:0], *view)
		h := hashKey(ctx.Key)
		sh := &shards[h&mask]

		sh.mu.Lock()
		var t *pentry
		for _, cand := range sh.table[h] {
			if bytes.Equal(cand.key, ctx.Key) {
				t = cand
				break
			}
		}
		created := false
		if t == nil {
			t = &pentry{
				key:         sh.intern(ctx.Key),
				id:          pendingID,
				claimParent: e.id,
				claimMove:   int32(mi),
				claimInter:  int32(m.Interaction),
			}
			sh.table[h] = append(sh.table[h], t)
			sh.fresh = append(sh.fresh, t)
			created = true
		} else if t.id == pendingID {
			if e.id < t.claimParent || (e.id == t.claimParent && int32(mi) < t.claimMove) {
				t.claimParent, t.claimMove, t.claimInter = e.id, int32(mi), int32(m.Interaction)
			}
		}
		sh.mu.Unlock()

		if created {
			// Only the creating worker touches state/vec; everyone else
			// first observes them after the level barrier.
			t.state = ctx.Scratch.Materialize(m)
			vec, err := ctx.Deriver.Derive(e.vec, m, t.state)
			if err != nil {
				return fmt.Errorf("explore state %d: %w", e.id, err)
			}
			t.vec = vec
		}
		label := sys.Label(m)
		switch {
		case t.id >= 0:
			edges = append(edges, Edge{To: int(t.id), Label: label})
		case t.id == rejectedID:
			// No edge: matches the sequential explorer's treatment of
			// states refused by the bound.
		default:
			w.fixups = append(w.fixups, fixup{from: e.id, pos: int32(len(edges)), target: t})
			edges = append(edges, Edge{To: -1, Label: label})
		}
	}
	if len(edges) > 0 {
		l.edges[e.id] = edges
	}
	return nil
}

package lts

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bip/internal/core"
)

// This file implements the sharded parallel breadth-first driver behind
// Stream (and therefore Explore) when Options.Workers > 1.
//
// The BFS runs level-synchronized: all states at distance d are expanded
// by a pool of workers before any state at distance d+1 is numbered.
// Workers claim slices of the current level from an atomic cursor and
// expand them with worker-local core.ExploreCtx machinery (the System
// itself is read-only after Validate). Successor dedup goes through a
// sharded seen-set: fixed-width binary state keys are hashed, the hash
// picks a shard, and the shard stores the key bytes in a flat append-only
// arena — one mutex hold per successor, no Go string per state.
//
// Determinism. The sequential driver numbers states in discovery order,
// which for BFS is: level by level, and within a level by the
// lexicographic (parent id, move index) of the state's first discovery.
// The parallel driver reproduces that numbering exactly: a state first
// discovered this level records the smallest (parent, move) pair that
// reached it (workers race, but the minimum is commutative), and at the
// level barrier the fresh states are sorted by that pair and numbered in
// order. Truncation is exact as well: the sequential driver admits the
// first MaxStates-many distinct keys in discovery order and emits no
// edge to a rejected key, ever — so rejected entries are kept as
// tombstones and the sorted admission does the same cut.
//
// Streaming. Workers do not talk to the sink; they record each expanded
// entry's outgoing moves (target entry pointers and labels) on the entry
// itself. After the barrier has numbered the level's discoveries, the
// driver replays the level in the sequential event order — states in id
// order, each state's edges in move order, a fresh successor's OnState
// emitted exactly at its minimal (parent, move) discovery edge — so the
// sink observes a bit-identical stream at any worker count, which the
// differential tests pin. Replayed entries are then stripped of their
// state, move table, edge list and path node: as in the sequential
// driver, only the frontier keeps per-state machinery and only the
// interned dedup keys persist.

// Sentinel ids of seen-set entries that have no state number (yet).
const (
	pendingID  int32 = -1 // discovered this level, numbered at the barrier
	rejectedID int32 = -2 // refused by MaxStates; tombstone, never an edge target
)

// pedge is one recorded outgoing move of an expanded entry.
type pedge struct {
	target *pentry
	label  string
	move   int32 // move index within the source's enabled set
}

// pentry is one seen-set entry: an interned key plus, while the state
// waits on the frontier, its materialized state, move table and BFS-tree
// node, and, between expansion and the level barrier, its recorded
// outgoing edges.
type pentry struct {
	key   []byte
	state core.State
	vec   [][]core.Move
	node  *pathNode
	out   []pedge
	moves int32
	id    int32

	// The lexicographically smallest (parent id, move index) that
	// produced this state — the BFS-tree edge and the numbering sort
	// key. Guarded by the owning shard's mutex until the level barrier.
	claimParent int32
	claimMove   int32
}

// shard is one lock stripe of the seen-set.
type shard struct {
	mu sync.Mutex
	// table buckets entries by key hash; the rare colliding hashes
	// chain, compared by full key.
	table map[uint64][]*pentry
	// arena backs the interned key bytes in fixed-width records; chunks
	// are replaced, never grown, so interned slices stay valid.
	arena []byte
	// fresh lists the entries created during the current level.
	fresh []*pentry
}

const arenaChunk = 1 << 16

// intern copies key into the shard's arena and returns the stable copy.
func (sh *shard) intern(key []byte) []byte {
	if len(sh.arena)+len(key) > cap(sh.arena) {
		size := arenaChunk
		if len(key) > size {
			size = len(key)
		}
		sh.arena = make([]byte, 0, size)
	}
	off := len(sh.arena)
	sh.arena = append(sh.arena, key...)
	return sh.arena[off : off+len(key) : off+len(key)]
}

// hashKey is FNV-1a folded over 8-byte words (with a byte-wise tail) —
// deterministic across runs, so shard assignment (and therefore nothing
// observable) depends only on the state, and one multiply per word
// instead of per byte keeps it cheap on the wide fixed-width keys.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for len(b) >= 8 {
		w := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		h = (h ^ w) * 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// pworker is one exploration worker with its private machinery.
type pworker struct {
	ctx *core.ExploreCtx
	err error
}

func streamParallel(sys *core.System, opts Options, workers, maxStates int, sink Sink) (Stats, error) {
	stats := Stats{States: 1, PeakFrontier: 1}
	nShards := 1
	for nShards < workers*8 {
		nShards <<= 1
	}
	if nShards > 256 {
		nShards = 256
	}
	shards := make([]shard, nShards)
	for i := range shards {
		shards[i].table = make(map[uint64][]*pentry)
	}
	mask := uint64(nShards - 1)

	init := sys.Initial()
	initVec, err := sys.EnabledVector(init)
	if err != nil {
		return stats, fmt.Errorf("explore state 0: %w", err)
	}
	key := sys.AppendBinaryKey(nil, init)
	e0 := &pentry{key: key, state: init, vec: initVec, id: 0, claimParent: -1}
	h0 := hashKey(key)
	shards[h0&mask].table[h0] = append(shards[h0&mask].table[h0], e0)

	if err := sink.OnState(0, init, Discovery{Parent: -1}); err != nil {
		return stats, stats.finish(err)
	}

	ws := make([]*pworker, workers)
	for i := range ws {
		ws[i] = &pworker{ctx: sys.NewExploreCtx()}
	}

	level := []*pentry{e0}
	var freshBuf []*pentry
	for len(level) > 0 {
		// Expand the level. Small levels get fewer goroutines; a lone
		// state is expanded by a single worker with no extra scheduling.
		const batch = 16
		nw := (len(level) + batch - 1) / batch
		if nw > workers {
			nw = workers
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for _, w := range ws[:nw] {
			wg.Add(1)
			go func(w *pworker) {
				defer wg.Done()
				for {
					start := int(cursor.Add(batch)) - batch
					if start >= len(level) || w.err != nil {
						return
					}
					end := start + batch
					if end > len(level) {
						end = len(level)
					}
					for _, e := range level[start:end] {
						if err := w.expand(sys, opts.Raw, e, shards, mask); err != nil {
							w.err = err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, w := range ws[:nw] {
			if w.err != nil {
				return stats, w.err
			}
		}
		// Expanded states no longer need their move tables.
		for _, e := range level {
			e.vec = nil
		}

		// Barrier: gather this level's discoveries and number them in the
		// sequential driver's discovery order, cutting at the state bound.
		fresh := freshBuf[:0]
		for i := range shards {
			fresh = append(fresh, shards[i].fresh...)
			shards[i].fresh = shards[i].fresh[:0]
		}
		sort.Slice(fresh, func(i, j int) bool {
			if fresh[i].claimParent != fresh[j].claimParent {
				return fresh[i].claimParent < fresh[j].claimParent
			}
			return fresh[i].claimMove < fresh[j].claimMove
		})
		next := level[len(level):]
		for _, e := range fresh {
			if stats.States >= maxStates {
				stats.Truncated = true
				e.id = rejectedID
				e.state = core.State{}
				e.vec = nil
				continue
			}
			e.id = int32(stats.States)
			stats.States++
			next = append(next, e)
		}
		freshBuf = fresh
		// Live-state high-water mark: until the replay below strips
		// them, the expanded level and the admitted discoveries are held
		// materialized simultaneously (bound-rejected entries were
		// stripped at admission). The level-synchronized driver's
		// granularity makes this a slightly coarser measure than the
		// sequential driver's running frontier — worker counts can
		// differ on it, unlike on everything else in Stats.
		if f := len(level) + len(next); f > stats.PeakFrontier {
			stats.PeakFrontier = f
		}

		// Replay the level to the sink in the sequential event order:
		// states in id order, edges in move order, a fresh successor's
		// OnState at its minimal discovery edge.
		for _, e := range level {
			for _, ed := range e.out {
				t := ed.target
				if t.id == rejectedID {
					// No edge: matches the sequential driver's treatment
					// of states refused by the bound.
					continue
				}
				if t.claimParent == e.id && t.claimMove == ed.move && t.node == nil && t.id != 0 {
					t.node = &pathNode{parent: e.node, label: ed.label}
					if err := sink.OnState(int(t.id), t.state, Discovery{Parent: int(e.id), Label: ed.label, node: t.node}); err != nil {
						return stats, stats.finish(err)
					}
				}
				stats.Transitions++
				if err := sink.OnEdge(int(e.id), int(t.id), ed.label); err != nil {
					return stats, stats.finish(err)
				}
			}
			if err := sink.OnExpanded(int(e.id), int(e.moves)); err != nil {
				return stats, stats.finish(err)
			}
		}
		// Strip replayed entries: only the interned dedup key persists
		// for expanded states; children keep their BFS-tree ancestors
		// alive through the node chain.
		for _, e := range level {
			e.state = core.State{}
			e.out = nil
			e.node = nil
		}
		level = next
	}
	return stats, stats.finish(sink.Done(stats.Truncated))
}

// expand enumerates e's moves and routes each successor through the
// sharded seen-set, recording e's outgoing edges on the entry for the
// barrier replay.
func (w *pworker) expand(sys *core.System, raw bool, e *pentry, shards []shard, mask uint64) error {
	ctx := w.ctx
	var moves []core.Move
	var err error
	if raw {
		moves = ctx.Deriver.Raw(e.vec, ctx.Moves[:0])
	} else {
		moves, err = ctx.Deriver.Enabled(e.vec, e.state, ctx.Moves[:0])
		if err != nil {
			return fmt.Errorf("explore state %d: %w", e.id, err)
		}
	}
	ctx.Moves = moves
	e.moves = int32(len(moves))
	if len(moves) == 0 {
		return nil
	}
	out := make([]pedge, 0, len(moves))
	for mi, m := range moves {
		view, err := ctx.Scratch.Exec(e.state, m)
		if err != nil {
			return fmt.Errorf("explore state %d: %w", e.id, err)
		}
		ctx.Key = sys.AppendBinaryKey(ctx.Key[:0], *view)
		h := hashKey(ctx.Key)
		sh := &shards[h&mask]

		sh.mu.Lock()
		var t *pentry
		for _, cand := range sh.table[h] {
			if bytes.Equal(cand.key, ctx.Key) {
				t = cand
				break
			}
		}
		created := false
		if t == nil {
			t = &pentry{
				key:         sh.intern(ctx.Key),
				id:          pendingID,
				claimParent: e.id,
				claimMove:   int32(mi),
			}
			sh.table[h] = append(sh.table[h], t)
			sh.fresh = append(sh.fresh, t)
			created = true
		} else if t.id == pendingID {
			if e.id < t.claimParent || (e.id == t.claimParent && int32(mi) < t.claimMove) {
				t.claimParent, t.claimMove = e.id, int32(mi)
			}
		}
		sh.mu.Unlock()

		if created {
			// Only the creating worker touches state/vec; everyone else
			// first observes them after the level barrier.
			t.state = ctx.Scratch.Materialize(m)
			vec, err := ctx.Deriver.Derive(e.vec, m, t.state)
			if err != nil {
				return fmt.Errorf("explore state %d: %w", e.id, err)
			}
			t.vec = vec
		}
		out = append(out, pedge{target: t, label: sys.Label(m), move: int32(mi)})
	}
	e.out = out
	return nil
}

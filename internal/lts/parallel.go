package lts

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bip/internal/core"
)

// This file implements the deterministic parallel breadth-first driver
// behind Stream when Options.Workers > 1 and Options.Order is
// Deterministic (the default). The Unordered work-stealing driver lives
// in wsteal.go; both share the lock-striped seen-set below.
//
// The BFS runs level-synchronized: all states at distance d are expanded
// by a pool of workers before any state at distance d+1 is numbered.
// Workers claim slices of the current level from an atomic cursor and
// expand them with worker-local core.ExploreCtx machinery (the System
// itself is read-only after Validate; per-state machinery — state
// stores, move tables, choice vectors — is carved from the worker's
// slab arena). Successor dedup goes through a sharded seen-set:
// fixed-width binary state keys are hashed, the hash picks a shard, and
// the shard stores the key bytes in a flat append-only arena — one
// mutex hold per successor, no Go string per state.
//
// Determinism. The sequential driver numbers states in discovery order,
// which for BFS is: level by level, and within a level by the
// lexicographic (parent id, move index) of the state's first discovery.
// The parallel driver reproduces that numbering exactly: a state first
// discovered this level records the smallest (parent, move) pair that
// reached it (workers race, but the minimum is commutative), and at the
// level barrier the fresh states are sorted by that pair and numbered in
// order. Truncation is exact as well: the sequential driver admits the
// first MaxStates-many distinct keys in discovery order and emits no
// edge to a rejected key, ever — so rejected entries are kept as
// tombstones and the sorted admission does the same cut.
//
// Streaming, pipelined. Workers do not talk to the sink; they record
// each expanded entry's outgoing moves (target entry pointers and
// labels) on the entry itself. After the barrier has numbered a level's
// discoveries — a sort and an id sweep, the only work left serialized —
// the replay of the just-expanded level to the sink (states in id
// order, each state's edges in move order, a fresh successor's OnState
// emitted exactly at its minimal (parent, move) discovery edge) runs in
// a goroutine CONCURRENTLY with the workers expanding the next level.
// The sink still observes the bit-identical sequential stream at any
// worker count — events of level d all precede events of level d+1, and
// only one replay runs at a time — but workers no longer idle through
// sink consumption; the barrier they meet costs one sort instead of one
// full replay. The replay may touch only data frozen before it started:
// ids, claims and path nodes are assigned at the barrier, and the
// entries it strips (state, move table, edge list, node) belong to its
// own level, which no worker reads anymore.

// Sentinel ids of seen-set entries that have no state number (yet).
const (
	pendingID  int32 = -1 // discovered this level, numbered at the barrier
	rejectedID int32 = -2 // refused by MaxStates; tombstone, never an edge target
)

// pedge is one recorded outgoing move of an expanded entry. A target
// discovered this level is carried as its live entry (numbered at the
// barrier before the replay reads it); a target admitted at an earlier
// barrier — or rejected — exists only in the seen-set and is carried as
// its bare id.
type pedge struct {
	target   *pentry // non-nil iff the target is pending this level
	targetID int32   // used when target == nil
	label    string
	move     int32 // move index within the source's enabled set
}

// pentry is one frontier-resident state: its materialized state, move
// table and BFS-tree node, and, between expansion and its replay, its
// recorded outgoing edges. Entries live only while the state is pending
// or being replayed — once expanded and replayed (deterministic driver)
// or expanded and flushed (work-stealing driver) the entry is stripped
// and dropped; what persists per visited state is whatever the SeenSet
// stores. key/hash serve the deterministic driver's barrier admission
// (the pending key lives in the shard's recycled level arena and is
// released at the barrier); the claim* fields its numbering.
type pentry struct {
	key   []byte
	hash  uint64
	state core.State
	vec   [][]core.Move
	node  *pathNode
	out   []pedge
	moves int32
	id    int32

	// The lexicographically smallest (parent id, move index) that
	// produced this state — the BFS-tree edge and the numbering sort
	// key — plus the parent entry and label of that discovery. Guarded
	// by the owning shard's mutex until the level barrier freezes them.
	claimParent int32
	claimMove   int32
	claimEnt    *pentry
	claimLabel  string

	// announced marks that the entry's OnState has been emitted
	// (deterministic driver only; touched only by the single replay
	// goroutine).
	announced bool
}

// parkedEdge is an edge held back until its target is announced
// (work-stealing driver; see wsDriver.parked).
type parkedEdge struct {
	from  int32
	label string
}

// shard is one lock stripe of the dedup layer: a SeenSet holding every
// admitted (or bound-rejected) state, plus — deterministic driver only —
// the pending table of states discovered during the current level, which
// are admitted into the SeenSet at the barrier.
type shard struct {
	mu   sync.Mutex
	seen SeenSet
	// pend buckets the current level's pending entries by key hash;
	// colliding hashes chain, compared by full key. Cleared (not
	// reallocated) at every barrier.
	pend map[uint64][]*pentry
	// arena backs the pending keys in fixed-width records; chunks are
	// replaced, never grown, so pending key slices stay valid across
	// the level. At the barrier — once the SeenSet has copied every
	// admitted key into its own storage — the chunks are recycled via
	// free, so the level arena's footprint tracks the widest level, not
	// the visited set.
	arena []byte
	used  [][]byte
	free  [][]byte
	// fresh lists the entries created during the current level
	// (deterministic driver only).
	fresh []*pentry
}

const arenaChunk = 1 << 16

// newShards sizes the lock-striped dedup layer for a worker count, one
// SeenSet stripe per shard.
func newShards(workers int, seen SeenSets, keyWidth int) ([]shard, uint64) {
	nShards := 1
	for nShards < workers*8 {
		nShards <<= 1
	}
	if nShards > 256 {
		nShards = 256
	}
	shards := make([]shard, nShards)
	for i := range shards {
		shards[i].seen = seen.NewSeenSet(keyWidth)
		shards[i].pend = make(map[uint64][]*pentry)
	}
	return shards, uint64(nShards - 1)
}

// seenTotals sums the dedup layer's footprint and promotion count.
func seenTotals(shards []shard) (bytes, promotions int64) {
	for i := range shards {
		bytes += shards[i].seen.Bytes()
		promotions += shards[i].seen.Promotions()
	}
	return bytes, promotions
}

// intern copies key into the shard's level arena and returns the stable
// copy, reusing recycled chunks from earlier levels when available.
func (sh *shard) intern(key []byte) []byte {
	if len(sh.arena)+len(key) > cap(sh.arena) {
		if cap(sh.arena) > 0 {
			sh.used = append(sh.used, sh.arena)
		}
		if n := len(sh.free); n > 0 && len(key) <= cap(sh.free[n-1]) {
			sh.arena = sh.free[n-1][:0]
			sh.free = sh.free[:n-1]
		} else {
			size := arenaChunk
			if len(key) > size {
				size = len(key)
			}
			sh.arena = make([]byte, 0, size)
		}
	}
	off := len(sh.arena)
	sh.arena = append(sh.arena, key...)
	return sh.arena[off : off+len(key) : off+len(key)]
}

// endLevel releases the level's pending machinery after the barrier has
// admitted every fresh entry into the SeenSet: the pending table is
// cleared and the key chunks recycled. Callers must have nil'ed the
// entries' key slices first — nothing may alias the arena afterwards.
func (sh *shard) endLevel() {
	clear(sh.pend)
	if cap(sh.arena) > 0 {
		sh.used = append(sh.used, sh.arena)
		sh.arena = nil
	}
	sh.free = append(sh.free, sh.used...)
	sh.used = sh.used[:0]
}

// hashKey is FNV-1a folded over 8-byte words (with a byte-wise tail),
// finished with a murmur3-style avalanche — deterministic across runs,
// so shard assignment (and therefore nothing observable) depends only
// on the state, and one multiply per word instead of per byte keeps it
// cheap on the wide fixed-width keys.
//
// The finalizer is load-bearing: the folding multiplications propagate
// bit differences only upward (bit i of a product depends on bits <= i
// of the operands), so two keys differing only in the HIGH bytes of a
// word — e.g. a counter value whose encoding straddles a word boundary,
// as in the deep-chain workload — would otherwise agree on every low
// bit. Both the open-addressed sequential seen-set and the shard
// selector index with the low bits; without the avalanche they
// degenerate into a handful of giant probe chains (measured 40x on
// deep-chain E18) while the shard tables only survived because Go's
// map re-mixes its keys.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for len(b) >= 8 {
		w := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		h = (h ^ w) * 1099511628211
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// pworker is one exploration worker with its private machinery.
type pworker struct {
	ctx *core.ExploreCtx
	exp WorkerExpander
	err error

	// Per-worker reduction counters, folded into Stats once the workers
	// are done (see gatherReduction).
	ampleStates      int
	prunedMoves      int
	provisoFallbacks int
}

// gatherReduction folds the workers' reduction counters into stats.
// Safe to call only while no worker is expanding.
func gatherReduction(stats *Stats, ws []*pworker) {
	for _, w := range ws {
		stats.AmpleStates += w.ampleStates
		stats.PrunedMoves += w.prunedMoves
		stats.ProvisoFallbacks += w.provisoFallbacks
		w.ampleStates, w.prunedMoves, w.provisoFallbacks = 0, 0, 0
	}
}

func streamParallel(sys *core.System, opts Options, workers, maxStates int, sink Sink) (stats Stats, err error) {
	stats = Stats{States: 1, PeakFrontier: 1}
	shards, mask := newShards(workers, opts.seenSets(), sys.BinaryKeyWidth())
	done := opts.ctxDone()
	pm := newProgressMeter(&opts)
	defer func() {
		stats.SeenBytes, stats.ExactPromotions = seenTotals(shards)
		stats.PeakFrontierBytes = int64(stats.PeakFrontier) * frontierEntryBytes(sys)
	}()

	init := sys.Initial()
	initVec, err := sys.EnabledVector(init)
	if err != nil {
		return stats, fmt.Errorf("explore state 0: %w", err)
	}
	key := sys.AppendBinaryKey(nil, init)
	e0 := &pentry{state: init, vec: initVec, id: 0, claimParent: -1, announced: true}
	h0 := hashKey(key)
	shards[h0&mask].seen.Add(h0, key, 0)

	if err := sink.OnState(0, init, Discovery{Parent: -1}); err != nil {
		return stats, stats.finish(err)
	}

	ws := make([]*pworker, workers)
	for i := range ws {
		ws[i] = &pworker{ctx: sys.NewExploreCtx(), exp: opts.newWorkerExpander(sys)}
	}

	// replayCh carries the outcome of the in-flight replay goroutine; it
	// is primed so the first join is a no-op. Only one replay runs at a
	// time, so sink methods are never called concurrently and levels
	// reach the sink in order.
	replayCh := make(chan error, 1)
	replayCh <- nil
	replaying := 0 // size of the level the in-flight replay is consuming

	level := []*pentry{e0}
	var freshBuf []*pentry
	for len(level) > 0 {
		// Expand the level — concurrently with the replay of the
		// previous one. Small levels get fewer goroutines; a lone state
		// is expanded by a single worker with no extra scheduling.
		const batch = 16
		nw := (len(level) + batch - 1) / batch
		if nw > workers {
			nw = workers
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for _, w := range ws[:nw] {
			wg.Add(1)
			go func(w *pworker) {
				defer wg.Done()
				for {
					select {
					case <-done:
						w.err = opts.Ctx.Err()
						return
					default:
					}
					start := int(cursor.Add(batch)) - batch
					if start >= len(level) || w.err != nil {
						return
					}
					end := start + batch
					if end > len(level) {
						end = len(level)
					}
					for _, e := range level[start:end] {
						if err := w.expand(sys, e, shards, mask); err != nil {
							w.err = err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		gatherReduction(&stats, ws[:nw])
		if err := <-replayCh; err != nil {
			// The sink stopped (ErrStop) or failed during the previous
			// level's replay; the level just expanded is discarded
			// unemitted.
			return stats, stats.finish(err)
		}
		for _, w := range ws[:nw] {
			if w.err != nil {
				return stats, w.err
			}
		}
		// Cancellation point: the previous replay has been joined and no
		// new one started, so returning here leaves no goroutine behind
		// still feeding the sink.
		select {
		case <-done:
			return stats, opts.Ctx.Err()
		default:
		}
		// Progress point: workers and the previous replay are both
		// joined, so every Stats field is quiescent — States counts
		// through the last barrier, Transitions through the last
		// replayed level.
		pm.check(func() Stats {
			s := stats
			s.SeenBytes, s.ExactPromotions = seenTotals(shards)
			s.PeakFrontierBytes = int64(s.PeakFrontier) * frontierEntryBytes(sys)
			return s
		})
		// Expanded states no longer need their move tables.
		for _, e := range level {
			e.vec = nil
		}

		// Barrier: gather this level's discoveries and number them in the
		// sequential driver's discovery order, cutting at the state bound.
		fresh := freshBuf[:0]
		for i := range shards {
			fresh = append(fresh, shards[i].fresh...)
			shards[i].fresh = shards[i].fresh[:0]
		}
		// Live-state high-water mark, measured at the worst transient of
		// the expansion that just finished: the previous level (still
		// materialized until its concurrent replay strips it), the level
		// being expanded, and every discovery resident in the shard
		// buffers — bound-rejected ones included, since they stay
		// materialized until the admission cut below. This is the fix
		// for the pre-pipelining measure, which sampled only
		// len(level)+len(next) at the barrier and missed both the
		// replay overlap and the rejected residents.
		if f := replaying + len(level) + len(fresh); f > stats.PeakFrontier {
			stats.PeakFrontier = f
		}
		sort.Slice(fresh, func(i, j int) bool {
			if fresh[i].claimParent != fresh[j].claimParent {
				return fresh[i].claimParent < fresh[j].claimParent
			}
			return fresh[i].claimMove < fresh[j].claimMove
		})
		next := level[len(level):]
		for _, e := range fresh {
			if stats.States >= maxStates {
				stats.Truncated = true
				e.id = rejectedID
				e.state = core.State{}
				e.vec = nil
			} else {
				e.id = int32(stats.States)
				stats.States++
				// The BFS-tree node is assigned here, at the barrier, so
				// the replay below only reads nodes: the claim parent sits
				// in the just-expanded level, whose nodes were assigned at
				// the previous barrier and are stripped only by this
				// level's replay, which has not started yet.
				e.node = &pathNode{parent: e.claimEnt.node, label: e.claimLabel}
				next = append(next, e)
			}
			// The admission (or tombstone) becomes permanent: the SeenSet
			// copies what it needs of the key, after which the pending key
			// slice must not be read again — the level arena it points
			// into is recycled just below.
			shards[e.hash&mask].seen.Add(e.hash, e.key, e.id)
			e.key = nil
		}
		for i := range shards {
			shards[i].endLevel()
		}
		freshBuf = fresh

		// Replay the expanded level to the sink in the sequential event
		// order while the workers move on to the next level. The replay
		// touches only barrier-frozen data of its own and the next level
		// (ids, claims, nodes, recorded edges, materialized states) and
		// strips entries of its own level, which no worker reads again.
		lv := level
		go func() { replayCh <- replayLevel(lv, &stats, sink) }()
		replaying = len(level)
		level = next
	}
	if err := <-replayCh; err != nil {
		return stats, stats.finish(err)
	}
	return stats, stats.finish(sink.Done(stats.Truncated))
}

// replayLevel emits one expanded level's events in the sequential order:
// states in id order, each state's edges in move order, a fresh
// successor's OnState at its minimal discovery edge. Replayed entries
// are then stripped of their state, move table, edge list and path
// node: as in the sequential driver, only the frontier keeps per-state
// machinery and only the interned dedup keys persist. It runs in its
// own goroutine but never concurrently with another replay, so sink
// calls stay serialized; it writes stats.Transitions and (via
// Stats.finish on the caller side) Stopped, which the driver reads only
// after joining it.
func replayLevel(level []*pentry, stats *Stats, sink Sink) error {
	for _, e := range level {
		for _, ed := range e.out {
			t := ed.target
			id := ed.targetID
			if t != nil {
				id = t.id
			}
			if id == rejectedID {
				// No edge: matches the sequential driver's treatment
				// of states refused by the bound.
				continue
			}
			if t != nil && !t.announced && t.claimEnt == e && t.claimMove == ed.move {
				t.announced = true
				if err := sink.OnState(int(id), t.state, Discovery{Parent: int(e.id), Label: ed.label, node: t.node}); err != nil {
					return err
				}
			}
			stats.Transitions++
			if err := sink.OnEdge(int(e.id), int(id), ed.label); err != nil {
				return err
			}
		}
		if err := sink.OnExpanded(int(e.id), int(e.moves)); err != nil {
			return err
		}
		e.state = core.State{}
		e.out = nil
		e.node = nil
	}
	return nil
}

// expand enumerates e's moves through the worker's expansion stage and
// routes each successor through the sharded seen-set, recording e's
// outgoing edges on the entry for the later replay.
//
// Cycle proviso: a successor whose entry already carries an assigned id
// (>= 0) was admitted at a barrier at or before the current level —
// exactly the states the sequential driver's id <= levelLast test
// matches, since the barrier numbers a level's states before any of
// them expands. Hitting one from inside a strict ample prefix escalates
// the state to full expansion, so the reduced stream stays bit-identical
// to the sequential driver's at any worker count.
func (w *pworker) expand(sys *core.System, e *pentry, shards []shard, mask uint64) error {
	ctx := w.ctx
	moves, nAmple, err := w.exp.Expand(ctx, e.state, e.vec)
	if err != nil {
		return fmt.Errorf("explore state %d: %w", e.id, err)
	}
	e.moves = int32(len(moves))
	if len(moves) == 0 {
		return nil
	}
	explore := nAmple
	out := make([]pedge, 0, explore)
	for mi := 0; mi < explore; mi++ {
		m := moves[mi]
		view, err := ctx.Scratch.Exec(e.state, m)
		if err != nil {
			return fmt.Errorf("explore state %d: %w", e.id, err)
		}
		label := sys.Label(m)
		ctx.Key = sys.AppendBinaryKey(ctx.Key[:0], *view)
		h := hashKey(ctx.Key)
		sh := &shards[h&mask]

		sh.mu.Lock()
		// Earlier levels first: the SeenSet holds every state admitted
		// (or rejected) at a barrier.
		if id, dup := sh.seen.Find(h, ctx.Key); dup {
			sh.mu.Unlock()
			if id != rejectedID && explore < len(moves) {
				explore = len(moves)
			}
			out = append(out, pedge{targetID: id, label: label, move: int32(mi)})
			continue
		}
		// Then this level's pending table.
		var t *pentry
		for _, cand := range sh.pend[h] {
			if bytes.Equal(cand.key, ctx.Key) {
				t = cand
				break
			}
		}
		created := false
		if t == nil {
			t = &pentry{
				key:         sh.intern(ctx.Key),
				hash:        h,
				id:          pendingID,
				claimParent: e.id,
				claimMove:   int32(mi),
				claimEnt:    e,
				claimLabel:  label,
			}
			sh.pend[h] = append(sh.pend[h], t)
			sh.fresh = append(sh.fresh, t)
			created = true
		} else if e.id < t.claimParent || (e.id == t.claimParent && int32(mi) < t.claimMove) {
			t.claimParent, t.claimMove = e.id, int32(mi)
			t.claimEnt, t.claimLabel = e, label
		}
		sh.mu.Unlock()

		if created {
			// Only the creating worker touches state/vec; everyone else
			// first observes them after the level barrier.
			t.state = ctx.Scratch.MaterializeSlab(m, ctx.Slab)
			vec, err := ctx.Deriver.DeriveSlab(e.vec, m, t.state, ctx.Slab)
			if err != nil {
				return fmt.Errorf("explore state %d: %w", e.id, err)
			}
			t.vec = vec
		}
		out = append(out, pedge{target: t, targetID: pendingID, label: label, move: int32(mi)})
	}
	e.out = out
	if nAmple < len(moves) {
		if explore == len(moves) {
			w.provisoFallbacks++
		} else {
			w.ampleStates++
			w.prunedMoves += len(moves) - nAmple
		}
	}
	return nil
}

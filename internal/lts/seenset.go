package lts

import "bytes"

// This file implements the pluggable successor-dedup layer shared by the
// three exploration drivers (stream.go, parallel.go, wsteal.go) — the
// seen-set counterpart of PR 6's Expander extraction. A driver routes
// every successor key through one SeenSet per lock stripe; what the set
// STORES per visited state is the implementation's business:
//
//   - Exact (the default) keeps the full fixed-width binary key in
//     chunked arenas, exactly the storage the drivers used before the
//     extraction. Membership answers are exact, memory is
//     keyWidth + ~12 bytes per state.
//
//   - Compact keeps a 64-bit hash discriminator plus the state id —
//     ~12 bytes per state regardless of key width — the classic
//     hash-compaction trade (Wolper–Leroy / Stern–Dill): two distinct
//     states are merged only if their full 64-bit avalanche hashes
//     collide, an event of probability ≈ n²·2⁻⁶⁴ over n states (about
//     10⁻⁸ at a billion states). Narrowing RemainderBits arms the
//     exact-promotion tier: full keys are retained and every
//     discriminator match is verified against them, so ambiguous
//     collisions are overruled (counted in Stats.ExactPromotions) and
//     membership stays exact even when the discriminator is made to
//     collide constantly — the collision-injection tests run the whole
//     differential suite at RemainderBits: 8 to pin exactly that.
//
// SeenSets is the factory the drivers consume through Options.Seen; one
// SeenSet instance is created per shard, and all calls on an instance
// happen under that shard's mutex (or single-threaded), so
// implementations need no internal locking.

// SeenSet is one dedup stripe: a mapping from state keys to state ids.
// h must be hashKey(key); callers pass it so striping and membership
// share one hash computation. Implementations are NOT safe for
// concurrent use — the owning driver serializes access per stripe.
type SeenSet interface {
	// Find returns the id recorded for key (rejectedID for MaxStates
	// tombstones) and whether the key is present.
	Find(h uint64, key []byte) (int32, bool)
	// Add records key under id. The caller has established via Find
	// that the key is absent.
	Add(h uint64, key []byte, id int32)
	// Bytes returns the set's current memory footprint: every slot
	// table, hash/id record and key arena chunk at its allocated size.
	Bytes() int64
	// Promotions returns how many membership answers were resolved by
	// the exact-promotion tier overruling a colliding discriminator
	// (always 0 for Exact and for Compact at full discriminator width).
	Promotions() int64
}

// SeenSets builds the per-stripe SeenSet instances of one exploration.
type SeenSets interface {
	// NewSeenSet returns an empty stripe for fixed-width keys of
	// keyWidth bytes.
	NewSeenSet(keyWidth int) SeenSet
}

// ExactSeen selects exact dedup (the default): full keys in chunked
// arenas, indexed by an open-addressed table. Memory per visited state
// is the key width plus ~12 bytes of table.
type ExactSeen struct{}

// NewSeenSet implements SeenSets.
func (ExactSeen) NewSeenSet(keyWidth int) SeenSet { return newExactSeen(keyWidth) }

// CompactSeen selects hash-compacted dedup: ~12 bytes per visited state
// independent of key width. With the default full-width discriminator
// (RemainderBits 0 or >= 64) membership is exact up to 64-bit hash
// collisions (probability ≈ n²·2⁻⁶⁴ — see the file comment); any
// narrower width stores full keys too and verifies every discriminator
// match against them, keeping membership exact and counting the
// overruled collisions as promotions.
type CompactSeen struct {
	// RemainderBits is the discriminator width in bits. 0 (and anything
	// >= 64) means the full 64-bit hash with no key storage; 1..63
	// arms the verifying exact-promotion tier. Narrow widths exist for
	// collision-injection testing, not production use.
	RemainderBits int
}

// NewSeenSet implements SeenSets.
func (c CompactSeen) NewSeenSet(keyWidth int) SeenSet {
	s := &compactSeen{
		width:  keyWidth,
		dmask:  ^uint64(0),
		slots:  make([]int32, seenInitSlots),
		perEnt: seenRecChunk,
	}
	if c.RemainderBits > 0 && c.RemainderBits < 64 {
		s.verify = true
		s.dmask = (uint64(1) << c.RemainderBits) - 1
		s.perKey = arenaChunk / keyWidth
		if s.perKey < 1 {
			s.perKey = 1
		}
	}
	return s
}

const (
	// seenInitSlots is the initial open-addressed table size of both
	// implementations (power of two; grown by doubling at 3/4 load).
	seenInitSlots = 1 << 10
	// seenRecChunk is how many (hash, id) records a compact-set chunk
	// holds; chunks are never moved or copied, so growth never doubles
	// the record storage transiently.
	seenRecChunk = 1 << 12
)

// exactSeen stores full keys back to back in chunked arenas plus a
// parallel chunked id array, indexed by an open-addressed table of
// entry indexes that compares candidates against the arena in place.
// Per visited state it allocates nothing: only new chunks and the
// logarithmically many table doublings touch the allocator. It is the
// direct generalization of the pre-extraction per-driver tables (the
// sequential open-addressed set and the lock-striped shard arenas),
// with explicit ids so one implementation serves all three drivers —
// the deterministic barrier assigns non-contiguous per-shard ids and
// MaxStates tombstones, which the old sequential set could not hold.
type exactSeen struct {
	width int
	// slots holds entry index + 1 (0 = empty), linear probing,
	// power-of-two size, grown at 3/4 load.
	slots []int32
	n     int
	// keys chunks back the key bytes, perChunk keys apiece; ids chunks
	// hold the recorded id of the same entry index.
	perChunk int
	keys     [][]byte
	ids      [][]int32
}

func newExactSeen(width int) *exactSeen {
	per := arenaChunk / width
	if per < 1 {
		per = 1
	}
	return &exactSeen{width: width, slots: make([]int32, seenInitSlots), perChunk: per}
}

// keyAt returns entry e's arena-resident key.
func (s *exactSeen) keyAt(e int32) []byte {
	off := (int(e) % s.perChunk) * s.width
	return s.keys[int(e)/s.perChunk][off : off+s.width]
}

// Find implements SeenSet.
func (s *exactSeen) Find(h uint64, key []byte) (int32, bool) {
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		slot := s.slots[i]
		if slot == 0 {
			return 0, false
		}
		if e := slot - 1; bytes.Equal(s.keyAt(e), key) {
			return s.ids[int(e)/s.perChunk][int(e)%s.perChunk], true
		}
	}
}

// Add implements SeenSet.
func (s *exactSeen) Add(h uint64, key []byte, id int32) {
	if (s.n+1)*4 >= len(s.slots)*3 {
		s.grow()
	}
	e := s.n
	if e%s.perChunk == 0 {
		s.keys = append(s.keys, make([]byte, s.perChunk*s.width))
		s.ids = append(s.ids, make([]int32, s.perChunk))
	}
	copy(s.keyAt(int32(e)), key)
	s.ids[e/s.perChunk][e%s.perChunk] = id
	s.insert(h, int32(e))
	s.n++
}

// insert probes the table for the first empty slot of entry e.
func (s *exactSeen) insert(h uint64, e int32) {
	mask := uint64(len(s.slots) - 1)
	i := h & mask
	for s.slots[i] != 0 {
		i = (i + 1) & mask
	}
	s.slots[i] = e + 1
}

// grow doubles the table and re-inserts every entry, re-hashing its
// arena-resident key.
func (s *exactSeen) grow() {
	s.slots = make([]int32, 2*len(s.slots))
	for e := 0; e < s.n; e++ {
		s.insert(hashKey(s.keyAt(int32(e))), int32(e))
	}
}

// Bytes implements SeenSet.
func (s *exactSeen) Bytes() int64 {
	return int64(len(s.slots))*4 +
		int64(len(s.keys))*int64(s.perChunk)*int64(s.width) +
		int64(len(s.ids))*int64(s.perChunk)*4
}

// Promotions implements SeenSet.
func (s *exactSeen) Promotions() int64 { return 0 }

// compactSeen stores one (64-bit hash, id) record per visited state in
// chunked parallel arrays, indexed by an open-addressed table whose
// match test is discriminator equality: (stored hash ^ h) & dmask == 0.
// The full hash is always retained so table growth re-probes without
// keys; the keys themselves exist only in verify mode (narrow dmask),
// where every discriminator match is additionally confirmed against the
// key arena and an overruled match counts as a promotion.
type compactSeen struct {
	width  int
	dmask  uint64
	verify bool
	slots  []int32 // entry index + 1, as in exactSeen
	n      int
	perEnt int
	hs     [][]uint64
	ids    [][]int32
	// Exact-promotion tier (verify mode only).
	perKey     int
	keys       [][]byte
	promotions int64
}

func (s *compactSeen) hAt(e int32) uint64 { return s.hs[int(e)/s.perEnt][int(e)%s.perEnt] }
func (s *compactSeen) idAt(e int32) int32 { return s.ids[int(e)/s.perEnt][int(e)%s.perEnt] }
func (s *compactSeen) keyAt(e int32) []byte {
	off := (int(e) % s.perKey) * s.width
	return s.keys[int(e)/s.perKey][off : off+s.width]
}

// probeStart confines the probe sequence to the discriminator: in pure
// mode that is the full hash (the pre-extraction behaviour); in verify
// mode colliding discriminators share a chain, so the exact tier
// actually gets to overrule them.
func (s *compactSeen) probeStart(h uint64) uint64 { return h & s.dmask }

// Find implements SeenSet.
func (s *compactSeen) Find(h uint64, key []byte) (int32, bool) {
	mask := uint64(len(s.slots) - 1)
	for i := s.probeStart(h) & mask; ; i = (i + 1) & mask {
		slot := s.slots[i]
		if slot == 0 {
			return 0, false
		}
		e := slot - 1
		if (s.hAt(e)^h)&s.dmask != 0 {
			continue
		}
		if !s.verify {
			return s.idAt(e), true
		}
		if bytes.Equal(s.keyAt(e), key) {
			return s.idAt(e), true
		}
		// Discriminator collision between distinct states: the exact
		// tier overrules the match and the probe continues — the true
		// entry, if any, sits later in the chain.
		s.promotions++
	}
}

// Add implements SeenSet.
func (s *compactSeen) Add(h uint64, key []byte, id int32) {
	if (s.n+1)*4 >= len(s.slots)*3 {
		s.grow()
	}
	e := s.n
	if e%s.perEnt == 0 {
		s.hs = append(s.hs, make([]uint64, s.perEnt))
		s.ids = append(s.ids, make([]int32, s.perEnt))
	}
	s.hs[e/s.perEnt][e%s.perEnt] = h
	s.ids[e/s.perEnt][e%s.perEnt] = id
	if s.verify {
		if e%s.perKey == 0 {
			s.keys = append(s.keys, make([]byte, s.perKey*s.width))
		}
		copy(s.keyAt(int32(e)), key)
	}
	s.insert(h, int32(e))
	s.n++
}

// insert probes the table for the first empty slot of entry e.
func (s *compactSeen) insert(h uint64, e int32) {
	mask := uint64(len(s.slots) - 1)
	i := s.probeStart(h) & mask
	for s.slots[i] != 0 {
		i = (i + 1) & mask
	}
	s.slots[i] = e + 1
}

// grow doubles the table and re-inserts every entry from its stored
// full hash — no key access, so pure mode never needs the keys back.
func (s *compactSeen) grow() {
	s.slots = make([]int32, 2*len(s.slots))
	for e := 0; e < s.n; e++ {
		s.insert(s.hAt(int32(e)), int32(e))
	}
}

// Bytes implements SeenSet.
func (s *compactSeen) Bytes() int64 {
	b := int64(len(s.slots))*4 +
		int64(len(s.hs))*int64(s.perEnt)*8 +
		int64(len(s.ids))*int64(s.perEnt)*4
	if s.verify {
		b += int64(len(s.keys)) * int64(s.perKey) * int64(s.width)
	}
	return b
}

// Promotions implements SeenSet.
func (s *compactSeen) Promotions() int64 { return s.promotions }

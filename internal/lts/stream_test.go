package lts

import (
	"fmt"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
	"bip/models"
)

// streamVerdicts runs the three on-the-fly checkers over one streaming
// exploration and returns them alongside the run's stats.
func streamVerdicts(t *testing.T, sys *core.System, opts Options, invPred, reachPred func(core.State) bool) (*DeadlockCheck, *InvariantCheck, *ReachCheck, Stats) {
	t.Helper()
	dl := &DeadlockCheck{}
	inv := &InvariantCheck{Pred: invPred}
	reach := &ReachCheck{Pred: reachPred}
	stats, err := Stream(sys, opts, NewMulti(dl, inv, reach))
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return dl, inv, reach, stats
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamCheckersMatchMaterialized is the streaming-vs-materialized
// differential: across the model zoo and at workers 1 and 4, every
// checker verdict — deadlock, invariant, reachability, the violating
// state id and the counterexample/witness path — must be bit-identical
// to the corresponding analysis on the materialized LTS.
func TestStreamCheckersMatchMaterialized(t *testing.T) {
	type tc struct {
		name string
		sys  *core.System
		opts Options
	}
	var cases []tc
	add := func(name string, sys *core.System, err error, opts Options) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, tc{name: name, sys: sys, opts: opts})
	}
	phil, err := models.Philosophers(3)
	add("philosophers-ctl", stripData(t, phil), err, Options{})
	twoPhase, err := models.PhilosophersDeadlocking(3)
	add("philosophers-2p", twoPhase, err, Options{})
	temp, err := models.Temperature(0, 2, 1)
	add("temperature-priorities", temp, err, Options{MaxStates: 10000})
	philRaw, err := models.Philosophers(3)
	add("philosophers-raw", stripData(t, philRaw), err, Options{Raw: true})
	unsafe, err := models.UnsafeElevator(4)
	add("unsafe-elevator", unsafe, err, Options{})
	gas, err := models.GasStation(2, 2)
	add("gasstation", gas, err, Options{})
	gcd, err := models.GCD(36, 60)
	add("gcd", gcd, err, Options{})

	for _, c := range cases {
		l := explore(t, c.sys, c.opts)
		if l.Truncated() {
			t.Fatalf("%s: zoo case unexpectedly truncated", c.name)
		}
		n := l.NumStates()
		// The invariant is violated exactly at a mid-exploration state,
		// the reach target is the last discovered state — both verdicts
		// (id and path) are then pinned against the BFS tree.
		midState, lastState := l.State(n/2), l.State(n-1)
		invPred := func(st core.State) bool { return !st.Equal(midState) }
		reachPred := func(st core.State) bool { return st.Equal(lastState) }

		wantInvOK, wantInvState, wantInvPath := l.CheckInvariant(invPred)
		wantDL := l.Deadlocks()
		wantReachState, _ := l.FindState(reachPred)
		wantReachPath := l.PathTo(wantReachState)

		for _, w := range []int{1, 4} {
			name := fmt.Sprintf("%s/workers=%d", c.name, w)
			opts := c.opts
			opts.Workers = w
			dl, inv, reach, _ := streamVerdicts(t, c.sys, opts, invPred, reachPred)

			if dl.Found != (len(wantDL) > 0) {
				t.Fatalf("%s: deadlock found=%v, materialized has %d deadlocks", name, dl.Found, len(wantDL))
			}
			if dl.Found {
				if dl.State != wantDL[0] {
					t.Fatalf("%s: deadlock state %d, materialized first deadlock %d", name, dl.State, wantDL[0])
				}
				if want := l.PathTo(wantDL[0]); !samePath(dl.Path, want) {
					t.Fatalf("%s: deadlock path %v != %v", name, dl.Path, want)
				}
			} else if !dl.Exhaustive {
				t.Fatalf("%s: no deadlock found but coverage not exhaustive", name)
			}

			if inv.Found == wantInvOK {
				t.Fatalf("%s: invariant found=%v, materialized ok=%v", name, inv.Found, wantInvOK)
			}
			if inv.Found {
				if inv.State != wantInvState || !samePath(inv.Path, wantInvPath) {
					t.Fatalf("%s: invariant verdict (%d,%v) != materialized (%d,%v)",
						name, inv.State, inv.Path, wantInvState, wantInvPath)
				}
			}

			if !reach.Found {
				t.Fatalf("%s: reach target (last state) not found", name)
			}
			if reach.State != wantReachState || !samePath(reach.Path, wantReachPath) {
				t.Fatalf("%s: reach verdict (%d,%v) != materialized (%d,%v)",
					name, reach.State, reach.Path, wantReachState, wantReachPath)
			}
		}
	}
}

// TestStreamTruncationInconclusive pins the truncated-space contract:
// the streaming deadlock checker must refuse to conclude (not
// exhaustive, nothing found) exactly where the materialized
// DeadlockFree refuses to answer.
func TestStreamTruncationInconclusive(t *testing.T) {
	sys, err := models.ProducerConsumer(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxStates: 1500}
	l := explore(t, sys, opts)
	if !l.Truncated() {
		t.Fatal("bounded exploration of the unbounded producer/consumer must truncate")
	}
	if _, err := l.DeadlockFree(); err == nil {
		t.Fatal("materialized DeadlockFree on truncated LTS must refuse to answer")
	}
	for _, w := range []int{1, 4} {
		dl := &DeadlockCheck{}
		stats, err := Stream(sys, opts, dl)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !stats.Truncated {
			t.Fatalf("workers=%d: stats must record truncation", w)
		}
		if dl.Found || dl.Exhaustive {
			t.Fatalf("workers=%d: truncated deadlock check must be inconclusive (found=%v exhaustive=%v)",
				w, dl.Found, dl.Exhaustive)
		}
		if stats.States != l.NumStates() || stats.Transitions != l.NumTransitions() {
			t.Fatalf("workers=%d: stats (%d,%d) != materialized (%d,%d)",
				w, stats.States, stats.Transitions, l.NumStates(), l.NumTransitions())
		}
	}
}

// TestStreamEarlyExit is the acceptance check for on-the-fly
// verification: on violating models the checkers stop the exploration
// before the full state space is visited (asserted against the
// materialized state count), at one and several workers, with identical
// verdicts.
func TestStreamEarlyExit(t *testing.T) {
	// Invariant violation: the unsafe elevator breaks the requirement a
	// few states into a larger space.
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		t.Fatal(err)
	}
	full := explore(t, unsafe, Options{})
	bad := models.MovingWithDoorOpen(unsafe)
	wantOK, wantState, wantPath := full.CheckInvariant(func(st core.State) bool { return !bad(st) })
	if wantOK {
		t.Fatal("unsafe elevator must violate the requirement")
	}
	for _, w := range []int{1, 4} {
		inv := &InvariantCheck{Pred: func(st core.State) bool { return !bad(st) }}
		stats, err := Stream(unsafe, Options{Workers: w}, inv)
		if err != nil {
			t.Fatal(err)
		}
		if !inv.Found || inv.State != wantState || !samePath(inv.Path, wantPath) {
			t.Fatalf("workers=%d: verdict (%v,%d,%v) != materialized (%d,%v)",
				w, inv.Found, inv.State, inv.Path, wantState, wantPath)
		}
		if !stats.Stopped {
			t.Fatalf("workers=%d: early violation must stop the exploration", w)
		}
		if stats.States >= full.NumStates() {
			t.Fatalf("workers=%d: visited %d states, full space is %d — no early exit",
				w, stats.States, full.NumStates())
		}
	}

	// Deadlock: a chooser that can die at depth 1 next to a 1000-step
	// counter — the deadlock is the third state of a ~2000-state space,
	// so the checker must settle it having seen only a handful of
	// states.
	sys := deepDeadlockSystem(t)
	fullDL := explore(t, sys, Options{})
	wantFirst := fullDL.Deadlocks()[0]
	for _, w := range []int{1, 4} {
		dl := &DeadlockCheck{}
		stats, err := Stream(sys, Options{Workers: w}, dl)
		if err != nil {
			t.Fatal(err)
		}
		if !dl.Found || dl.State != wantFirst || !samePath(dl.Path, fullDL.PathTo(wantFirst)) {
			t.Fatalf("workers=%d: deadlock verdict (%v,%d,%v) != materialized (%d,%v)",
				w, dl.Found, dl.State, dl.Path, wantFirst, fullDL.PathTo(wantFirst))
		}
		if !stats.Stopped {
			t.Fatalf("workers=%d: deadlock must stop the exploration", w)
		}
		if stats.States >= fullDL.NumStates()/10 {
			t.Fatalf("workers=%d: visited %d of %d states — not an early exit",
				w, stats.States, fullDL.NumStates())
		}
	}
}

// deepDeadlockSystem builds a space with an early deadlock in BFS order
// inside a deep graph: component a can either step in lockstep with a
// 1000-bounded counter or die into a stuck location (a global deadlock,
// since the counter only moves with a). The first deadlock is reached
// after one step; the bulk of the ~2000 states lies a thousand levels
// deeper.
func deepDeadlockSystem(t *testing.T) *core.System {
	t.Helper()
	a := behavior.NewBuilder("a").
		Location("run", "stuck").
		Port("go").Port("die").
		Transition("run", "go", "run").
		Transition("run", "die", "stuck").
		MustBuild()
	b := behavior.NewBuilder("b").
		Location("s").
		Int("x", 0).
		Port("step", "x").
		TransitionG("s", "step", "s", expr.Lt(expr.V("x"), expr.I(1000)),
			expr.Set("x", expr.Add(expr.V("x"), expr.I(1)))).
		MustBuild()
	sys, err := core.NewSystem("deep-deadlock").
		Add(a).Add(b).
		Connect("advance", core.P("a", "go"), core.P("b", "step")).
		Singleton("a", "die").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestStreamFrontierMemory pins the streaming memory contract on a
// workload with a deep, narrow-ish graph: the peak frontier the driver
// retains is a small fraction of the visited states the materialized
// LTS would hold.
func TestStreamFrontierMemory(t *testing.T) {
	sys, err := models.PhilosopherRings(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := models.ControlOnly(sys)
	if err != nil {
		t.Fatal(err)
	}
	dl := &DeadlockCheck{}
	stats, err := Stream(ctl, Options{}, dl)
	if err != nil {
		t.Fatal(err)
	}
	if !dl.Exhaustive {
		t.Fatal("rings control space must be fully covered")
	}
	if stats.PeakFrontier >= stats.States/2 {
		t.Fatalf("peak frontier %d vs %d states: streaming retained too much", stats.PeakFrontier, stats.States)
	}
}

// TestMultiSettlesIndependently checks Multi's retirement protocol: a
// checker that finds its violation retires early while the others keep
// consuming to full coverage.
func TestMultiSettlesIndependently(t *testing.T) {
	unsafe, err := models.UnsafeElevator(4)
	if err != nil {
		t.Fatal(err)
	}
	bad := models.MovingWithDoorOpen(unsafe)
	inv := &InvariantCheck{Pred: func(st core.State) bool { return !bad(st) }}
	dl := &DeadlockCheck{}
	stats, err := Stream(unsafe, Options{}, NewMulti(inv, dl))
	if err != nil {
		t.Fatal(err)
	}
	full := explore(t, unsafe, Options{})
	if !inv.Found {
		t.Fatal("invariant checker must find the violation")
	}
	if stats.States != full.NumStates() {
		t.Fatalf("deadlock checker still active: exploration must cover all %d states, visited %d",
			full.NumStates(), stats.States)
	}
	free, err := full.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if dl.Found == free {
		t.Fatalf("deadlock verdicts diverge: stream found=%v, materialized free=%v", dl.Found, free)
	}
	if !dl.Found && !dl.Exhaustive {
		t.Fatal("deadlock checker ran to the end; coverage must be exhaustive")
	}
}

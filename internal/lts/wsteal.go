package lts

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bip/internal/core"
)

// This file implements the work-stealing explorer behind Stream when
// Options.Workers > 1 and Options.Order == Unordered. There is no
// barrier anywhere on the hot path:
//
//   - Pending states live in per-worker deques of fixed-size chunks. A
//     worker pushes and pops its newest chunk privately (no lock, good
//     locality); full chunks are published to the worker's deque under
//     a per-deque mutex, and a worker that runs dry steals the OLDEST
//     half of a victim's published chunks (steal-half balancing: one
//     steal rebalances log-many imbalances, and taking the old end
//     keeps thieves off the owner's working set). A worker whose deque
//     is empty publishes its private chunk early, so work never hides
//     in a private buffer while peers starve.
//
//   - Dedup goes through the same lock-striped SeenSet stripes as the
//     deterministic driver (parallel.go, seenset.go), but admission is
//     immediate: a fresh state CASes the next id from a global counter
//     (or becomes a rejected tombstone once the MaxStates bound is
//     reached — the admitted state COUNT matches the sequential driver
//     exactly, though which states are admitted depends on schedule)
//     and is recorded in the stripe under the same lock hold. The
//     frontier entry itself is transient: once expanded and flushed it
//     is dropped, so per visited state only the SeenSet's storage
//     persists (plus one announced bit and any still-parked edges).
//
//   - With Options.MemBudget set, the frontier spills: whenever the
//     resident pending states exceed the budget (priced by
//     frontierEntryBytes), whole published chunks are serialized to a
//     temporary file — each pending state is reduced to its
//     fixed-width binary key (recomputed from the state, so nothing
//     extra is stored) plus its id and RAM-resident path node — and
//     workers that run out of resident work stream chunks back in,
//     rebuilding state and move table from the key (spill.go). The
//     in-flight termination counter is spill-agnostic: spilled states
//     stay admitted-but-unflushed, so the counter reaches zero only
//     when the spill file has drained too.
//
//   - Termination is a global in-flight counter: +1 per admitted state,
//     -1 once a state's expansion has been flushed and its children
//     enqueued (children are incremented at admission, strictly before
//     the parent's decrement, so the counter can only reach zero when
//     no state is pending anywhere). Idle workers sleep on a condition
//     variable whose generation is bumped by every publish, by the
//     final decrement and by stop/error.
//
//   - The sink is fed from the workers themselves: after expanding a
//     state, a worker flushes its recorded events under one global sink
//     mutex (sink methods are never called concurrently). Fresh
//     successors' OnState events are emitted in the flush of the
//     expansion that created them — before the children are enqueued,
//     so a child's own events always come later — and an edge whose
//     target has not been announced yet is parked on the target entry
//     and emitted right after the target's OnState. This yields the
//     relaxed-but-sound Unordered contract documented on Sink.
//
// What is preserved versus the deterministic stream: the reachable
// state set, the edge set, the truncation flag, the admitted state
// count, and therefore every checker verdict that does not depend on
// exploration order (deadlock-freedom, invariant validity,
// reachability, observer-automaton verdicts — all of them fixpoints of
// the explored graph). What varies with schedule: state numbering,
// event order, PeakFrontier, and which particular violation/witness is
// reported first. The differential tests compare canonically-sorted
// LTSs and every verdict at several worker counts to pin exactly this
// contract.
//
// One amendment under a reducing Expander (expand.go): the cycle
// proviso here escalates on ANY already-admitted successor — without
// levels there is no finer admitted-earlier test — so which states get
// fully expanded, and therefore the reduced state SET itself, depends
// on the schedule. The reduction is sound for every schedule (the
// escalation rule is strictly more eager than the deterministic
// drivers'), so verdicts are still preserved; only the reduced graph's
// shape varies. The deterministic drivers keep their bit-identical
// reduced stream.

// wsChunkCap is the deque chunk size: the steal granularity and the
// batch in which work is published.
const wsChunkCap = 32

// wsChunk is one chunk of pending entries, treated as a stack.
type wsChunk struct {
	e [wsChunkCap]*pentry
	n int
}

// wsDeque is one worker's published work: a stack of chunks. The owner
// pushes/pops at the top; thieves steal from the bottom (oldest).
type wsDeque struct {
	mu        sync.Mutex
	chunks    []*wsChunk
	published atomic.Int32 // len(chunks), readable without the lock
}

// push publishes a full (or shed) chunk.
func (q *wsDeque) push(c *wsChunk) {
	q.mu.Lock()
	q.chunks = append(q.chunks, c)
	q.published.Store(int32(len(q.chunks)))
	q.mu.Unlock()
}

// pop takes the newest published chunk (owner side).
func (q *wsDeque) pop() *wsChunk {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.chunks)
	if n == 0 {
		return nil
	}
	c := q.chunks[n-1]
	q.chunks[n-1] = nil
	q.chunks = q.chunks[:n-1]
	q.published.Store(int32(n - 1))
	return c
}

// takeOldest removes the single oldest published chunk (spill side):
// the states least likely to be wanted soon, mirroring where thieves
// steal.
func (q *wsDeque) takeOldest() *wsChunk {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.chunks)
	if n == 0 {
		return nil
	}
	c := q.chunks[0]
	rest := copy(q.chunks, q.chunks[1:])
	q.chunks[rest] = nil
	q.chunks = q.chunks[:rest]
	q.published.Store(int32(rest))
	return c
}

// stealHalf removes the oldest half of the published chunks (thief
// side). Only one deque lock is ever held at a time, so cross-steals
// cannot deadlock.
func (q *wsDeque) stealHalf(buf []*wsChunk) []*wsChunk {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.chunks)
	if n == 0 {
		return buf
	}
	take := (n + 1) / 2
	buf = append(buf, q.chunks[:take]...)
	rest := copy(q.chunks, q.chunks[take:])
	for i := rest; i < n; i++ {
		q.chunks[i] = nil
	}
	q.chunks = q.chunks[:rest]
	q.published.Store(int32(rest))
	return buf
}

// wsRec is one recorded move of an expansion, flushed to the sink after
// the state is fully expanded. target is non-nil only for fresh
// successors (the expansion that created a state announces it); edges
// to previously admitted states carry the bare id.
type wsRec struct {
	target   *pentry
	targetID int32
	label    string
	fresh    bool // this expansion created (and will announce) the target
}

// wsDriver is the shared state of one work-stealing exploration.
type wsDriver struct {
	sys       *core.System
	maxStates int
	sink      Sink

	shards []shard
	mask   uint64
	deques []wsDeque

	// Spill machinery (nil/0 unless Options.MemBudget > 0): resident
	// counts admitted-but-unflushed states currently in RAM (spilled
	// ones excluded), entryBytes prices one of them, and spill holds
	// the chunks written out (spill.go).
	spill      *wsSpill
	memBudget  int64
	entryBytes int64

	states       atomic.Int64 // admitted states (ids are 0..states-1)
	inflight     atomic.Int64 // admitted but not yet expanded+flushed
	peak         atomic.Int64 // high-water mark of inflight
	resident     atomic.Int64 // inflight minus states parked in the spill file
	residentPeak atomic.Int64 // high-water mark of resident
	truncated    atomic.Bool
	stopped      atomic.Bool

	sinkMu      sync.Mutex
	transitions int // guarded by sinkMu
	// announced is a bitset over state ids whose OnState has been
	// emitted; parked holds edges that reached a state before its
	// OnState (drained and deleted at announcement). Both are guarded
	// by sinkMu — together they replace the per-entry flags so that
	// expanded entries can be dropped entirely.
	announced []uint64
	parked    map[int32][]parkedEdge

	failOnce sync.Once
	err      error // first terminal error (ErrStop included); set via fail

	idleMu sync.Mutex
	cond   *sync.Cond
	gen    uint64
}

// progressSnapshot assembles a best-effort Stats snapshot for the
// Options.Progress ticker goroutine: counters come from the atomics,
// Transitions from a brief sinkMu hold, and the seen-set footprint from
// one pass over the stripes under their own locks. States/Transitions
// are monotonic across snapshots; the memory figures are whatever the
// stripes hold at the instant of the pass.
func (d *wsDriver) progressSnapshot() Stats {
	d.sinkMu.Lock()
	tr := d.transitions
	d.sinkMu.Unlock()
	s := Stats{
		States:       int(d.states.Load()),
		Transitions:  tr,
		PeakFrontier: int(d.peak.Load()),
		Truncated:    d.truncated.Load(),
	}
	s.PeakFrontierBytes = d.residentPeak.Load() * d.entryBytes
	if d.spill != nil {
		s.SpilledChunks = d.spill.written()
	}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		s.SeenBytes += sh.seen.Bytes()
		s.ExactPromotions += sh.seen.Promotions()
		sh.mu.Unlock()
	}
	return s
}

// setAnnounced marks id's OnState as emitted (caller holds sinkMu).
func (d *wsDriver) setAnnounced(id int32) {
	w := int(id) >> 6
	for len(d.announced) <= w {
		d.announced = append(d.announced, 0)
	}
	d.announced[w] |= 1 << (uint(id) & 63)
}

// isAnnounced reports whether id's OnState has been emitted (caller
// holds sinkMu).
func (d *wsDriver) isAnnounced(id int32) bool {
	w := int(id) >> 6
	return w < len(d.announced) && d.announced[w]&(1<<(uint(id)&63)) != 0
}

// notify wakes idle workers after new work was published, the in-flight
// counter hit zero, or the run was stopped.
func (d *wsDriver) notify() {
	d.idleMu.Lock()
	d.gen++
	d.cond.Broadcast()
	d.idleMu.Unlock()
}

// fail records the first terminal condition (sink ErrStop, sink error,
// or expansion error) and stops every worker.
func (d *wsDriver) fail(err error) {
	d.failOnce.Do(func() {
		d.err = err
		d.stopped.Store(true)
		d.notify()
	})
}

// admit reserves the next state id, bounded by MaxStates. The admitted
// count matches the sequential driver's exactly; which keys win the
// race near the bound is schedule-dependent.
func (d *wsDriver) admit() (int32, bool) {
	for {
		n := d.states.Load()
		if int(n) >= d.maxStates {
			d.truncated.Store(true)
			return rejectedID, false
		}
		if d.states.CompareAndSwap(n, n+1) {
			in := d.inflight.Add(1)
			for {
				p := d.peak.Load()
				if in <= p || d.peak.CompareAndSwap(p, in) {
					break
				}
			}
			r := d.resident.Add(1)
			for {
				p := d.residentPeak.Load()
				if r <= p || d.residentPeak.CompareAndSwap(p, r) {
					break
				}
			}
			return int32(n), true
		}
	}
}

// wsWorker is one work-stealing worker.
type wsWorker struct {
	id     int
	ctx    *core.ExploreCtx
	exp    WorkerExpander
	cur    *wsChunk // private mixed push/pop chunk, invisible to thieves
	spare  *wsChunk // small freelist
	recs   []wsRec
	steal  []*wsChunk
	keyBuf []byte // spill read/write scratch

	// Per-worker reduction counters, summed into Stats after the join.
	ampleStates      int
	prunedMoves      int
	provisoFallbacks int
}

func (w *wsWorker) newChunk() *wsChunk {
	if c := w.spare; c != nil {
		w.spare = nil
		return c
	}
	return new(wsChunk)
}

// pushLocal enqueues an admitted entry. Full private chunks are
// published; so is a multi-entry private chunk while the worker's deque
// is empty, to keep work stealable during narrow phases. Publishing is
// also the spill point: while the resident frontier exceeds the memory
// budget, the worker sheds its own oldest published chunks to disk.
func (w *wsWorker) pushLocal(d *wsDriver, e *pentry) {
	c := w.cur
	if c == nil {
		c = w.newChunk()
		w.cur = c
	}
	c.e[c.n] = e
	c.n++
	if c.n == wsChunkCap || (c.n > 1 && d.deques[w.id].published.Load() == 0) {
		d.deques[w.id].push(c)
		w.cur = nil
		d.notify()
		w.maybeSpill(d)
	}
}

// maybeSpill sheds the worker's oldest published chunks to the spill
// file while the resident frontier is over budget. Only the worker's
// own deque is tapped — peers over budget shed on their own next
// publish — and the loop stops as soon as there is nothing published
// left to shed (the private chunk and in-expansion states stay
// resident).
func (w *wsWorker) maybeSpill(d *wsDriver) {
	if d.spill == nil {
		return
	}
	for d.resident.Load()*d.entryBytes > d.memBudget {
		c := d.deques[w.id].takeOldest()
		if c == nil {
			return
		}
		err := d.spill.write(d.sys, c, w)
		n := c.n
		*c = wsChunk{}
		if w.spare == nil {
			w.spare = c
		}
		if err != nil {
			d.fail(err)
			return
		}
		d.resident.Add(int64(-n))
		// Wake sleepers: the chunk left the deques between their scan
		// and their wait, and only the spill file knows about it now.
		d.notify()
	}
}

// next returns the next entry to expand, stealing and sleeping as
// needed; nil means the exploration terminated (or stopped).
func (w *wsWorker) next(d *wsDriver) *pentry {
	for {
		if d.stopped.Load() {
			return nil
		}
		if c := w.cur; c != nil && c.n > 0 {
			c.n--
			e := c.e[c.n]
			c.e[c.n] = nil
			return e
		}
		if w.takeWork(d) {
			continue
		}
		// Record the wake generation, then scan once more: a publish
		// between the failed scan and the wait would otherwise be lost.
		d.idleMu.Lock()
		g := d.gen
		d.idleMu.Unlock()
		if w.takeWork(d) {
			continue
		}
		if d.inflight.Load() == 0 {
			d.notify() // release the other sleepers
			return nil
		}
		d.idleMu.Lock()
		for d.gen == g {
			d.cond.Wait()
		}
		d.idleMu.Unlock()
	}
}

// takeWork refills the private chunk from the worker's own deque or by
// stealing half of a victim's published chunks.
func (w *wsWorker) takeWork(d *wsDriver) bool {
	if w.cur != nil && w.cur.n == 0 && w.spare == nil {
		w.spare, w.cur = w.cur, nil
	}
	if c := d.deques[w.id].pop(); c != nil {
		w.cur = c
		return true
	}
	n := len(d.deques)
	for i := 1; i < n; i++ {
		v := (w.id + i) % n
		if d.deques[v].published.Load() == 0 {
			continue
		}
		w.steal = d.deques[v].stealHalf(w.steal[:0])
		if len(w.steal) == 0 {
			continue
		}
		w.cur = w.steal[0]
		for _, c := range w.steal[1:] {
			d.deques[w.id].push(c)
		}
		if len(w.steal) > 1 {
			d.notify()
		}
		return true
	}
	// Nothing resident anywhere: stream a spilled chunk back in. Disk
	// is last on purpose — resident work drains before reloads widen
	// the frontier again.
	if d.spill != nil {
		rec := d.spill.take()
		if rec != nil {
			c, err := w.reload(d, rec)
			if err != nil {
				d.fail(err)
				return false
			}
			w.cur = c
			d.resident.Add(int64(c.n))
			return true
		}
	}
	return false
}

// reload rebuilds one spilled chunk: each state is decoded from its
// fixed-width binary key and its move table recomputed from scratch —
// the price of eviction is one EnabledVector per reloaded state.
func (w *wsWorker) reload(d *wsDriver, rec *wsSpillRec) (*wsChunk, error) {
	buf, err := d.spill.read(rec, w.keyBuf[:0])
	w.keyBuf = buf
	if err != nil {
		return nil, err
	}
	c := w.newChunk()
	width := d.sys.BinaryKeyWidth()
	for i := 0; i < rec.n; i++ {
		st, err := d.sys.StateFromBinaryKey(w.keyBuf[i*width : (i+1)*width])
		if err != nil {
			return nil, fmt.Errorf("spill reload state %d: %w", rec.ids[i], err)
		}
		vec, err := d.sys.EnabledVector(st)
		if err != nil {
			return nil, fmt.Errorf("spill reload state %d: %w", rec.ids[i], err)
		}
		c.e[i] = &pentry{id: rec.ids[i], state: st, vec: vec, node: rec.nodes[i]}
	}
	c.n = rec.n
	return c, nil
}

// run is the worker main loop.
func (w *wsWorker) run(d *wsDriver, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		e := w.next(d)
		if e == nil {
			return
		}
		if err := w.expandFlush(d, e); err != nil {
			d.fail(err)
			return
		}
	}
}

// expandFlush expands one entry, flushes its events to the sink, and
// enqueues its fresh successors. The in-flight decrement comes last, so
// the counter cannot reach zero while this state's children are still
// unaccounted.
func (w *wsWorker) expandFlush(d *wsDriver, e *pentry) error {
	ctx := w.ctx
	moves, nAmple, err := w.exp.Expand(ctx, e.state, e.vec)
	if err != nil {
		return fmt.Errorf("explore state %d: %w", e.id, err)
	}
	e.moves = int32(len(moves))
	recs := w.recs[:0]
	// Explore the ample prefix; any successor already admitted (by any
	// worker, at any time) escalates to the full move list — the
	// work-stealing cycle proviso (see the file comment and expand.go).
	explore := nAmple
	for mi := 0; mi < explore; mi++ {
		m := moves[mi]
		view, err := ctx.Scratch.Exec(e.state, m)
		if err != nil {
			return fmt.Errorf("explore state %d: %w", e.id, err)
		}
		label := d.sys.Label(m)
		ctx.Key = d.sys.AppendBinaryKey(ctx.Key[:0], *view)
		h := hashKey(ctx.Key)
		sh := &d.shards[h&d.mask]

		sh.mu.Lock()
		id, dup := sh.seen.Find(h, ctx.Key)
		created := false
		if !dup {
			var ok bool
			id, ok = d.admit()
			sh.seen.Add(h, ctx.Key, id)
			created = ok
		}
		sh.mu.Unlock()

		if dup && id != rejectedID && explore < len(moves) {
			explore = len(moves)
		}
		var t *pentry
		if created {
			// The fresh entry is private to this worker until it is
			// enqueued below; thieves first observe it through the deque
			// mutexes.
			t = &pentry{id: id, state: ctx.Scratch.MaterializeSlab(m, ctx.Slab)}
			vec, err := ctx.Deriver.DeriveSlab(e.vec, m, t.state, ctx.Slab)
			if err != nil {
				return fmt.Errorf("explore state %d: %w", e.id, err)
			}
			t.vec = vec
			t.node = &pathNode{parent: e.node, label: label}
		}
		recs = append(recs, wsRec{target: t, targetID: id, label: label, fresh: created})
	}
	w.recs = recs
	if nAmple < len(moves) {
		if explore == len(moves) {
			w.provisoFallbacks++
		} else {
			w.ampleStates++
			w.prunedMoves += len(moves) - nAmple
		}
	}

	d.sinkMu.Lock()
	if d.stopped.Load() {
		// The sink already settled (or the run failed): emit nothing
		// more; counters no longer matter.
		d.sinkMu.Unlock()
		return nil
	}
	err = d.flushLocked(e, recs)
	d.sinkMu.Unlock()
	if err != nil {
		return err
	}

	// The expanded entry is dropped entirely — per visited state only
	// the SeenSet's storage persists; the path nodes of its children
	// stay alive through their own node chains.
	e.state = core.State{}
	e.vec = nil
	e.node = nil

	for _, r := range recs {
		if r.fresh {
			w.pushLocal(d, r.target)
		}
	}
	d.resident.Add(-1)
	if d.inflight.Add(-1) == 0 {
		d.notify()
	}
	return nil
}

// flushLocked emits one expansion's events under the sink mutex: fresh
// targets are announced (OnState) and drain any edges parked on them,
// edges to announced targets are emitted directly, edges to
// not-yet-announced targets are parked, and edges to bound-rejected
// tombstones are dropped (matching the sequential driver). The
// announced bitset and the parked map are only ever touched here, under
// the mutex.
func (d *wsDriver) flushLocked(e *pentry, recs []wsRec) error {
	for _, r := range recs {
		id := r.targetID
		if id == rejectedID {
			continue
		}
		if r.fresh {
			t := r.target
			if err := d.sink.OnState(int(id), t.state, Discovery{Parent: int(e.id), Label: r.label, node: t.node}); err != nil {
				return err
			}
			d.setAnnounced(id)
			if pes, ok := d.parked[id]; ok {
				for _, pe := range pes {
					d.transitions++
					if err := d.sink.OnEdge(int(pe.from), int(id), pe.label); err != nil {
						return err
					}
				}
				delete(d.parked, id)
			}
		}
		if d.isAnnounced(id) {
			d.transitions++
			if err := d.sink.OnEdge(int(e.id), int(id), r.label); err != nil {
				return err
			}
		} else {
			d.parked[id] = append(d.parked[id], parkedEdge{from: e.id, label: r.label})
		}
	}
	return d.sink.OnExpanded(int(e.id), int(e.moves))
}

func streamWorkSteal(sys *core.System, opts Options, workers, maxStates int, sink Sink) (Stats, error) {
	d := &wsDriver{
		sys:        sys,
		maxStates:  maxStates,
		sink:       sink,
		deques:     make([]wsDeque, workers),
		parked:     make(map[int32][]parkedEdge),
		memBudget:  opts.MemBudget,
		entryBytes: frontierEntryBytes(sys),
	}
	d.cond = sync.NewCond(&d.idleMu)
	d.shards, d.mask = newShards(workers, opts.seenSets(), sys.BinaryKeyWidth())
	if d.memBudget > 0 {
		d.spill = newWsSpill(sys.BinaryKeyWidth(), opts.fs())
		defer d.spill.close()
	}
	d.states.Store(1)
	d.inflight.Store(1)
	d.peak.Store(1)
	d.resident.Store(1)
	d.residentPeak.Store(1)

	init := sys.Initial()
	initVec, err := sys.EnabledVector(init)
	if err != nil {
		return Stats{States: 1, PeakFrontier: 1}, fmt.Errorf("explore state 0: %w", err)
	}
	key := sys.AppendBinaryKey(nil, init)
	e0 := &pentry{state: init, vec: initVec, id: 0}
	h0 := hashKey(key)
	d.shards[h0&d.mask].seen.Add(h0, key, 0)
	d.setAnnounced(0)

	if err := sink.OnState(0, init, Discovery{Parent: -1}); err != nil {
		stats := Stats{States: 1, PeakFrontier: 1}
		return stats, stats.finish(err)
	}

	if opts.Progress != nil {
		// The ticker goroutine is the one Progress source of this
		// driver: workers never meet a common point to tick from, so a
		// clock drives the snapshots instead. It exits with the run;
		// a tick may race the final sink.Done, which the Progress
		// contract allows (see Options.Progress).
		stopProg := make(chan struct{})
		defer close(stopProg)
		go func() {
			t := time.NewTicker(opts.progressEvery())
			defer t.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-t.C:
					opts.Progress(d.progressSnapshot())
				}
			}
		}()
	}

	if done := opts.ctxDone(); done != nil {
		// The watcher turns context cancellation into a driver stop
		// (waking sleepers); it exits with the run.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				d.fail(opts.Ctx.Err())
			case <-finished:
			}
		}()
	}

	var wg sync.WaitGroup
	ws := make([]*wsWorker, workers)
	for i := range ws {
		ws[i] = &wsWorker{id: i, ctx: sys.NewExploreCtx(), exp: opts.newWorkerExpander(sys)}
	}
	ws[0].pushLocal(d, e0)
	for _, w := range ws {
		wg.Add(1)
		go w.run(d, &wg)
	}
	wg.Wait()

	stats := Stats{
		States:      int(d.states.Load()),
		Transitions: d.transitions,
		PeakFrontier: func() int {
			if p := int(d.peak.Load()); p > 0 {
				return p
			}
			return 1
		}(),
		Truncated: d.truncated.Load(),
	}
	stats.SeenBytes, stats.ExactPromotions = seenTotals(d.shards)
	stats.PeakFrontierBytes = d.residentPeak.Load() * d.entryBytes
	if d.spill != nil {
		stats.SpilledChunks = d.spill.written()
	}
	for _, w := range ws {
		stats.AmpleStates += w.ampleStates
		stats.PrunedMoves += w.prunedMoves
		stats.ProvisoFallbacks += w.provisoFallbacks
	}
	if d.err != nil {
		return stats, stats.finish(d.err)
	}
	return stats, stats.finish(sink.Done(stats.Truncated))
}

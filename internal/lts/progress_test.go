package lts

import (
	"sync"
	"testing"
	"time"

	"bip/models"
)

// TestProgressCallbackAllDrivers pins the Options.Progress contract on
// every driver: with a tiny interval the callback fires at least once
// on a non-trivial space, snapshots are monotonic in States and
// Transitions, and the final Stats dominates the last snapshot. The
// work-stealing driver's callback runs on a ticker goroutine, so the
// collector locks — which also makes this a race test under -race.
func TestProgressCallbackAllDrivers(t *testing.T) {
	sys, err := models.CounterGrid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"seq", Options{}},
		{"det-4w", Options{Workers: 4}},
		{"fast-4w", Options{Workers: 4, Order: Unordered}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var mu sync.Mutex
			var snaps []Stats
			c.opts.ProgressEvery = time.Nanosecond
			c.opts.Progress = func(s Stats) {
				mu.Lock()
				snaps = append(snaps, s)
				mu.Unlock()
			}
			stats, err := Stream(sys, c.opts, noopSink{})
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(snaps) == 0 {
				t.Fatalf("no progress callback on a %d-state space", stats.States)
			}
			prev := Stats{}
			for i, s := range snaps {
				if s.States < prev.States || s.Transitions < prev.Transitions {
					t.Fatalf("snapshot %d regressed: %d/%d after %d/%d states/transitions",
						i, s.States, s.Transitions, prev.States, prev.Transitions)
				}
				prev = s
			}
			if last := snaps[len(snaps)-1]; last.States > stats.States || last.Transitions > stats.Transitions {
				t.Fatalf("last snapshot %d/%d exceeds final stats %d/%d",
					last.States, last.Transitions, stats.States, stats.Transitions)
			}
		})
	}
}

// TestProgressNotCalledWhenUnset pins that explorations without a
// callback never construct progress machinery (the nil meter is the
// hot-path case).
func TestProgressNotCalledWhenUnset(t *testing.T) {
	if pm := newProgressMeter(&Options{}); pm != nil {
		t.Fatal("progress meter built without a callback")
	}
	// And a nil meter's methods are safe no-ops.
	var pm *progressMeter
	pm.tick(func() Stats { t.Fatal("nil meter built a snapshot"); return Stats{} })
	pm.check(func() Stats { t.Fatal("nil meter built a snapshot"); return Stats{} })
}

package lts

import (
	"sort"
	"strings"
)

// Relabel maps transition labels for comparison purposes. Returning
// ("", false) marks the label as silent (unobservable); returning
// (l, true) observes the transition as l. Identity is the nil map
// behaviour of Observe.
type Relabel func(label string) (string, bool)

// Identity observes every label as itself.
func Identity(label string) (string, bool) { return label, true }

// Hide returns a Relabel that silences the listed labels and observes all
// others unchanged.
func Hide(hidden ...string) Relabel {
	set := make(map[string]bool, len(hidden))
	for _, h := range hidden {
		set[h] = true
	}
	return func(label string) (string, bool) {
		if set[label] {
			return "", false
		}
		return label, true
	}
}

// MapLabels returns a Relabel applying the given mapping; labels mapped to
// "" become silent and unmapped labels stay unchanged.
func MapLabels(m map[string]string) Relabel {
	return func(label string) (string, bool) {
		if to, ok := m[label]; ok {
			if to == "" {
				return "", false
			}
			return to, true
		}
		return label, true
	}
}

// Bisimilar decides strong bisimilarity of the initial states of a and b,
// after applying the respective relabelings (silent labels are compared as
// the distinguished label "τ" — strong bisimulation still observes them;
// use ObsTraceIncluded for weak comparisons).
func Bisimilar(a, b *LTS, ra, rb Relabel) bool {
	if ra == nil {
		ra = Identity
	}
	if rb == nil {
		rb = Identity
	}
	// Disjoint union; partition refinement (naive O(n·m·iters), fine for
	// the model sizes compared here).
	n := a.NumStates() + b.NumStates()
	off := a.NumStates()
	label := func(l *LTS, r Relabel, e Edge) string {
		if to, ok := r(e.Label); ok {
			return to
		}
		return "τ"
	}
	type edge struct {
		to  int
		lab string
	}
	adj := make([][]edge, n)
	for i := 0; i < a.NumStates(); i++ {
		for _, e := range a.Edges(i) {
			adj[i] = append(adj[i], edge{to: e.To, lab: label(a, ra, e)})
		}
	}
	for i := 0; i < b.NumStates(); i++ {
		for _, e := range b.Edges(i) {
			adj[off+i] = append(adj[off+i], edge{to: off + e.To, lab: label(b, rb, e)})
		}
	}

	block := make([]int, n) // all zero: one initial block
	for {
		// Signature: sorted distinct (label, target block) pairs.
		sigs := make([]string, n)
		for i := 0; i < n; i++ {
			pairs := make([]string, 0, len(adj[i]))
			for _, e := range adj[i] {
				pairs = append(pairs, e.lab+"→"+itoa(block[e.to]))
			}
			sort.Strings(pairs)
			pairs = dedup(pairs)
			sigs[i] = itoa(block[i]) + "|" + strings.Join(pairs, ";")
		}
		next := make(map[string]int)
		changed := false
		for i := 0; i < n; i++ {
			id, ok := next[sigs[i]]
			if !ok {
				id = len(next)
				next[sigs[i]] = id
			}
			if id != block[i] {
				changed = true
			}
			block[i] = id
		}
		if !changed {
			break
		}
	}
	return block[0] == block[off]
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func itoa(i int) string {
	var buf [12]byte
	pos := len(buf)
	if i == 0 {
		return "0"
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// obsDFA is the determinization of an LTS under a Relabel: states are
// silent-closed sets of LTS states, transitions carry observable labels.
type obsDFA struct {
	// trans[node][label] = successor node
	trans []map[string]int
	// canDeadlock[node] reports whether the closure contains a state with
	// no outgoing transitions at all (used for refinement condition 2).
	canDeadlock []bool
	init        int
}

// buildObsDFA determinizes l modulo r.
func buildObsDFA(l *LTS, r Relabel) *obsDFA {
	if r == nil {
		r = Identity
	}
	closure := func(set []int) []int {
		seen := make(map[int]bool, len(set))
		stack := append([]int(nil), set...)
		for _, s := range set {
			seen[s] = true
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range l.Edges(s) {
				if _, ok := r(e.Label); ok {
					continue
				}
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		out := make([]int, 0, len(seen))
		for s := range seen {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}
	key := func(set []int) string {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = itoa(s)
		}
		return strings.Join(parts, ",")
	}

	d := &obsDFA{}
	index := make(map[string]int)
	var sets [][]int
	add := func(set []int) int {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.trans = append(d.trans, nil)
		dead := false
		for _, s := range set {
			if len(l.Edges(s)) == 0 {
				dead = true
			}
		}
		d.canDeadlock = append(d.canDeadlock, dead)
		return id
	}
	d.init = add(closure([]int{0}))
	for head := 0; head < len(sets); head++ {
		byLabel := make(map[string][]int)
		for _, s := range sets[head] {
			for _, e := range l.Edges(s) {
				if lab, ok := r(e.Label); ok {
					byLabel[lab] = append(byLabel[lab], e.To)
				}
			}
		}
		d.trans[head] = make(map[string]int, len(byLabel))
		for lab, targets := range byLabel {
			d.trans[head][lab] = add(closure(targets))
		}
	}
	return d
}

// ObsTraceIncluded reports whether every observable trace of a (modulo
// ra) is an observable trace of b (modulo rb). On failure it returns a
// shortest distinguishing trace. This is the trace-inclusion half of the
// paper's refinement relation ≥ (§5.5.3, condition 1).
func ObsTraceIncluded(a, b *LTS, ra, rb Relabel) (bool, []string) {
	da := buildObsDFA(a, ra)
	db := buildObsDFA(b, rb)
	type pair struct{ x, y int }
	seen := map[pair]bool{{da.init, db.init}: true}
	type node struct {
		p     pair
		trace []string
	}
	queue := []node{{p: pair{da.init, db.init}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		labels := make([]string, 0, len(da.trans[n.p.x]))
		for lab := range da.trans[n.p.x] {
			labels = append(labels, lab)
		}
		sort.Strings(labels)
		for _, lab := range labels {
			nx := da.trans[n.p.x][lab]
			ny, ok := db.trans[n.p.y][lab]
			if !ok {
				return false, append(append([]string(nil), n.trace...), lab)
			}
			np := pair{nx, ny}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, node{p: np, trace: append(append([]string(nil), n.trace...), lab)})
			}
		}
	}
	return true, nil
}

// ObsTraceEquivalent reports two-way observable trace inclusion.
func ObsTraceEquivalent(a, b *LTS, ra, rb Relabel) bool {
	ok1, _ := ObsTraceIncluded(a, b, ra, rb)
	if !ok1 {
		return false
	}
	ok2, _ := ObsTraceIncluded(b, a, rb, ra)
	return ok2
}

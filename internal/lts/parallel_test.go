package lts

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
	"bip/models"
)

// requireSameLTS asserts bit-for-bit agreement of two explorations: the
// parallel explorer promises the sequential numbering exactly, so state
// lists, edge lists (order included), the BFS tree, deadlock sets,
// truncation — everything — must coincide.
func requireSameLTS(t *testing.T, name string, a, b *LTS) {
	t.Helper()
	if a.NumStates() != b.NumStates() {
		t.Fatalf("%s: NumStates %d != %d", name, a.NumStates(), b.NumStates())
	}
	if a.NumTransitions() != b.NumTransitions() {
		t.Fatalf("%s: NumTransitions %d != %d", name, a.NumTransitions(), b.NumTransitions())
	}
	if a.Truncated() != b.Truncated() {
		t.Fatalf("%s: Truncated %v != %v", name, a.Truncated(), b.Truncated())
	}
	for i := 0; i < a.NumStates(); i++ {
		if !a.State(i).Equal(b.State(i)) {
			t.Fatalf("%s: state %d differs", name, i)
		}
		ea, eb := a.Edges(i), b.Edges(i)
		if len(ea) != len(eb) {
			t.Fatalf("%s: state %d has %d vs %d edges", name, i, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s: state %d edge %d: %+v != %+v", name, i, j, ea[j], eb[j])
			}
		}
		if a.parent[i] != b.parent[i] || a.parentLabel[i] != b.parentLabel[i] {
			t.Fatalf("%s: BFS tree differs at state %d: (%d,%q) != (%d,%q)",
				name, i, a.parent[i], a.parentLabel[i], b.parent[i], b.parentLabel[i])
		}
	}
	da, db := a.Deadlocks(), b.Deadlocks()
	if len(da) != len(db) {
		t.Fatalf("%s: deadlock sets differ: %v vs %v", name, da, db)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("%s: deadlock sets differ: %v vs %v", name, da, db)
		}
	}
}

func workerCounts() []int {
	out := []int{2, 4}
	if g := runtime.GOMAXPROCS(0); g > 1 && g != 2 && g != 4 {
		out = append(out, g)
	}
	return out
}

// TestExploreParallelMatchesSequentialModels runs the differential over
// the model zoo: pure control, data guards, priorities (temperature),
// deadlocking systems with counterexample paths, and a truncated space.
func TestExploreParallelMatchesSequentialModels(t *testing.T) {
	type tc struct {
		name string
		sys  *core.System
		opts Options
	}
	var cases []tc
	add := func(name string, sys *core.System, err error, opts Options) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, tc{name: name, sys: sys, opts: opts})
	}
	phil, err := models.Philosophers(3)
	add("philosophers-ctl", stripData(t, phil), err, Options{})
	twoPhase, err := models.PhilosophersDeadlocking(3)
	add("philosophers-2p", twoPhase, err, Options{})
	temp, err := models.Temperature(0, 2, 1)
	add("temperature-priorities", temp, err, Options{MaxStates: 10000})
	tempRaw, err := models.Temperature(0, 2, 1)
	add("temperature-raw", tempRaw, err, Options{MaxStates: 10000, Raw: true})
	gcd, err := models.GCD(36, 60)
	add("gcd", gcd, err, Options{})
	pc, err := models.ProducerConsumer(2)
	add("prodcons-truncated", pc, err, Options{MaxStates: 1500})
	gas, err := models.GasStation(2, 3)
	add("gasstation", gas, err, Options{})

	for _, c := range cases {
		seq := explore(t, c.sys, c.opts)
		for _, w := range workerCounts() {
			opts := c.opts
			opts.Workers = w
			par := explore(t, c.sys, opts)
			requireSameLTS(t, fmt.Sprintf("%s/workers=%d", c.name, w), seq, par)
		}
	}
}

// randExploreSystem builds a random finite-state system: data-carrying
// nondeterministic atoms, guarded interactions with data transfer, and
// conditional priorities — the exploration analogue of core's
// randomized differential workload. All counters are bounded (mod 5),
// so the state space is finite.
func randExploreSystem(t *testing.T, rng *rand.Rand) *core.System {
	t.Helper()
	nAtoms := 2 + rng.Intn(3)
	b := core.NewSystem(fmt.Sprintf("randx-%d", nAtoms))
	type portInfo struct{ comp, port string }
	var ports []portInfo
	for ai := 0; ai < nAtoms; ai++ {
		name := fmt.Sprintf("c%d", ai)
		nLocs := 1 + rng.Intn(3)
		locs := make([]string, nLocs)
		for i := range locs {
			locs[i] = fmt.Sprintf("l%d", i)
		}
		ab := behavior.NewBuilder(name).Location(locs...).Int("x", int64(rng.Intn(3)))
		nPorts := 1 + rng.Intn(2)
		for pi := 0; pi < nPorts; pi++ {
			pname := fmt.Sprintf("p%d", pi)
			ab.Port(pname, "x")
			ports = append(ports, portInfo{comp: name, port: pname})
			nTrans := 1 + rng.Intn(3)
			for ti := 0; ti < nTrans; ti++ {
				from := locs[rng.Intn(nLocs)]
				to := locs[rng.Intn(nLocs)]
				var guard expr.Expr
				if rng.Intn(2) == 0 {
					guard = expr.Lt(expr.V("x"), expr.I(int64(1+rng.Intn(4))))
				}
				var action expr.Stmt
				if rng.Intn(2) == 0 {
					action = expr.Set("x", expr.Mod(expr.Add(expr.V("x"), expr.I(1)), expr.I(5)))
				}
				ab.TransitionG(from, pname, to, guard, action)
			}
		}
		atom, err := ab.Build()
		if err != nil {
			t.Fatalf("random atom: %v", err)
		}
		b.Add(atom)
	}
	nInter := 2 + rng.Intn(5)
	for ii := 0; ii < nInter; ii++ {
		perm := rng.Perm(len(ports))
		var refs []core.PortRef
		var quals []string
		seen := map[string]bool{}
		want := 1 + rng.Intn(3)
		for _, pi := range perm {
			p := ports[pi]
			if seen[p.comp] {
				continue
			}
			seen[p.comp] = true
			refs = append(refs, core.P(p.comp, p.port))
			quals = append(quals, p.comp+".x")
			if len(refs) == want {
				break
			}
		}
		var guard expr.Expr
		if rng.Intn(3) == 0 {
			guard = expr.Le(expr.V(quals[0]), expr.I(int64(1+rng.Intn(4))))
		}
		var action expr.Stmt
		if len(quals) > 1 && rng.Intn(3) == 0 {
			action = expr.Set(quals[0], expr.Mod(expr.Add(expr.V(quals[1]), expr.I(1)), expr.I(5)))
		}
		b.ConnectGD(fmt.Sprintf("i%d", ii), guard, action, refs...)
	}
	for k := 0; k < rng.Intn(4); k++ {
		lo, hi := rng.Intn(nInter), rng.Intn(nInter)
		if lo == hi {
			continue
		}
		if rng.Intn(2) == 0 {
			b.Priority(fmt.Sprintf("i%d", lo), fmt.Sprintf("i%d", hi))
		} else {
			b.PriorityWhen(fmt.Sprintf("i%d", lo), fmt.Sprintf("i%d", hi),
				expr.Gt(expr.V("c0.x"), expr.I(int64(rng.Intn(3)))))
		}
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatalf("random system: %v", err)
	}
	return sys
}

// TestExploreParallelRandomDifferential is the randomized oracle for the
// sharded explorer: workers=1, 2, 4 and GOMAXPROCS must agree with the
// sequential numbering on generated systems, bounded so that truncation
// paths are exercised too.
func TestExploreParallelRandomDifferential(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randExploreSystem(t, rng)
		opts := Options{MaxStates: 4000}
		seq := explore(t, sys, opts)
		for _, w := range workerCounts() {
			po := opts
			po.Workers = w
			par := explore(t, sys, po)
			requireSameLTS(t, fmt.Sprintf("seed=%d/workers=%d", seed, w), seq, par)
		}
	}
}

// TestExploreParallelContended explores a system where every interaction
// touches the same shared-variable component (the buffer), so successors
// constantly cross shard boundaries and workers contend on the same
// seen-set stripes. Run under -race in CI, this is the data-race
// regression test for the parallel explorer.
func TestExploreParallelContended(t *testing.T) {
	sys, err := models.ProducerConsumer(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxStates: 3000}
	seq := explore(t, sys, opts)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		po := opts
		po.Workers = w
		par := explore(t, sys, po)
		requireSameLTS(t, fmt.Sprintf("contended/workers=%d", w), seq, par)
		if !par.Truncated() {
			t.Fatal("bounded exploration of the unbounded producer/consumer must truncate")
		}
		if _, err := par.DeadlockFree(); err == nil {
			t.Fatal("DeadlockFree on a truncated parallel LTS must refuse to answer")
		}
	}
}

// TestExploreParallelAnalyses checks the LTS-consuming analyses on the
// parallel result directly: counterexample paths, invariant violations,
// and bisimulation between sequentially and parallelly explored LTSs.
func TestExploreParallelAnalyses(t *testing.T) {
	sys, err := models.PhilosophersDeadlocking(3)
	if err != nil {
		t.Fatal(err)
	}
	l := explore(t, sys, Options{Workers: 4})
	dls := l.Deadlocks()
	if len(dls) == 0 {
		t.Fatal("two-phase philosophers must deadlock")
	}
	path := l.PathTo(dls[0])
	if len(path) != 3 {
		t.Fatalf("deadlock path %v, want 3 steps", path)
	}

	unsafe, err := models.UnsafeElevator(3)
	if err != nil {
		t.Fatal(err)
	}
	ls := explore(t, unsafe, Options{})
	lp := explore(t, unsafe, Options{Workers: 4})
	okS, badS, pathS := ls.CheckInvariant(func(st core.State) bool { return !models.MovingWithDoorOpen(unsafe)(st) })
	okP, badP, pathP := lp.CheckInvariant(func(st core.State) bool { return !models.MovingWithDoorOpen(unsafe)(st) })
	if okS || okP {
		t.Fatal("unsafe elevator must violate the requirement in both explorations")
	}
	if badS != badP || len(pathS) != len(pathP) {
		t.Fatalf("invariant verdicts diverge: state %d/%d path %v/%v", badS, badP, pathS, pathP)
	}

	phil, err := models.Philosophers(2)
	if err != nil {
		t.Fatal(err)
	}
	ctl := stripData(t, phil)
	if !Bisimilar(explore(t, ctl, Options{}), explore(t, ctl, Options{Workers: 4}), nil, nil) {
		t.Fatal("sequential and parallel explorations of one system must be bisimilar")
	}
}

// TestExploreWorkersDefaults pins the Workers knob: 0 and 1 are
// sequential, negative resolves to GOMAXPROCS — all equivalent results.
func TestExploreWorkersDefaults(t *testing.T) {
	sys, err := models.GCD(35, 14)
	if err != nil {
		t.Fatal(err)
	}
	a := explore(t, sys, Options{})
	b := explore(t, sys, Options{Workers: 1})
	c := explore(t, sys, Options{Workers: -1})
	requireSameLTS(t, "workers=1", a, b)
	requireSameLTS(t, "workers=-1", a, c)
}

// Package lts explores the explicit state space of a BIP system and
// analyzes it: reachability, deadlock detection, invariant checking,
// strong bisimulation, and observational trace inclusion.
//
// This is the repository's "correctness-by-checking" engine — the
// monolithic global-state verifier the paper contrasts with compositional
// verification (package invariant). Its exhaustive exploration exhibits
// exactly the state-explosion behaviour the paper describes (§4.3), which
// experiment E1 measures. Exploration is streaming at heart: the drivers
// (Stream, sequential and sharded-parallel) emit a deterministic event
// stream into a Sink, and the on-the-fly checkers in check.go verify
// properties as states are discovered, early-exiting on the first
// violation with O(frontier) live memory. The materialized LTS built by
// Explore is just one sink over the same stream.
package lts

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bip/internal/core"
	"bip/internal/faultfs"
)

// Edge is an outgoing transition of an explored state.
type Edge struct {
	To    int
	Label string
}

// LTS is the explored (portion of the) state space of a system. It is
// the materializing Sink: Explore drives it over the exploration event
// stream, and every analysis below runs on the stored graph. Analyses
// whose answer is state-independent (Deadlocks, LabelSet) are computed
// once on first use and cached; the cache assumes the LTS is no longer
// fed events, which holds as soon as Explore (or the Stream call that
// fed it) has returned.
type LTS struct {
	sys    *core.System
	states []core.State
	edges  [][]Edge

	// parent/parentLabel store the BFS tree for counterexample paths.
	parent      []int
	parentLabel []string

	truncated bool

	// unordered records the announced stream order (SetStreamOrder):
	// deterministic streams keep the strict contiguous-id check, the
	// unordered stream grows the tables as dense ids arrive.
	unordered bool

	// Lazily computed analysis caches (see Deadlocks, LabelSet).
	deadlocks     []int
	deadlocksOnce bool
	labels        []string
	labelsOnce    bool
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds exploration; 0 means DefaultMaxStates.
	MaxStates int
	// Raw ignores priority filtering (explores the unrestricted
	// interaction semantics).
	Raw bool
	// Workers is the number of exploration workers. 0 and 1 select the
	// sequential explorer; n > 1 a parallel explorer with n workers; a
	// negative value means GOMAXPROCS. Under the default Order
	// (Deterministic) every explorer emits the identical event stream —
	// same state numbering, edges, BFS tree, and truncation verdict —
	// so every sink, including the materialized LTS, is worker-count
	// independent.
	Workers int
	// Order selects the multi-worker event-stream discipline:
	// Deterministic (default) replays the sequential stream exactly;
	// Unordered runs the barrier-free work-stealing explorer, whose
	// state set, edges and verdicts are identical but whose numbering
	// and event order are scheduling-dependent. Ignored when the
	// exploration runs sequentially.
	Order Order
	// Expander selects the expansion stage (expand.go): nil explores
	// every enabled move; an AmpleExpander prunes to ample sets
	// (partial-order reduction). With a reducing expander the explored
	// state and edge sets are a property-preserving SUBSET of the full
	// LTS: deadlocks and the installed visibility's observations are
	// preserved, other states may be absent. Under Deterministic order
	// the reduced stream is still bit-identical at any worker count;
	// under Unordered the reduced state set itself may vary with
	// schedule (the cycle proviso reacts to discovery order), though
	// verdicts are preserved either way.
	Expander Expander
	// Seen selects the successor-dedup layer (seenset.go): nil or
	// ExactSeen{} stores full keys (exact membership), CompactSeen{}
	// stores ~12-byte hash records per visited state. The explored
	// state set, edges and every verdict are identical across
	// implementations (see CompactSeen for the precise guarantee); only
	// memory varies, reported in Stats.SeenBytes.
	Seen SeenSets
	// MemBudget approximately bounds the resident frontier of the
	// Unordered work-stealing driver, in bytes (accounted with the
	// Stats.PeakFrontierBytes model). When the pending work exceeds it,
	// whole deque chunks are serialized to a temporary spill file as
	// flat key records and streamed back as workers drain, so spaces
	// whose frontier exceeds RAM complete instead of OOMing
	// (Stats.SpilledChunks counts the round trips). 0 means unlimited;
	// the setting is ignored by the deterministic drivers, whose level
	// replay must keep the frontier resident.
	MemBudget int64
	// Ctx, when non-nil, cancels the exploration: the drivers poll it
	// and return its error (context.Canceled / DeadlineExceeded) as
	// soon as every worker has unwound. The sink's Done is not called
	// on cancellation.
	Ctx context.Context
	// Progress, when non-nil, receives periodic snapshots of the
	// running exploration's Stats — the hook behind bip.WithProgress
	// and the bipd job progress stream. Snapshots are cumulative
	// (States/Transitions only grow) but best-effort: memory figures
	// are the values the driver can read cheaply at the tick. The
	// sequential driver calls it between state expansions and the
	// deterministic parallel driver between level barriers, both from
	// the exploring goroutine; the work-stealing driver calls it from
	// a dedicated ticker goroutine, so under Unordered it may run
	// concurrently with Sink calls (never with itself). The callback
	// must return quickly and must not call back into the exploration.
	// No final call is guaranteed at termination — the Stats returned
	// by Stream is the authoritative summary.
	Progress func(Stats)
	// ProgressEvery is the minimum interval between Progress calls;
	// 0 means DefaultProgressEvery.
	ProgressEvery time.Duration
	// FS overrides the filesystem behind the spill layer; nil means the
	// real one (faultfs.OS). It is the fault-injection seam: the spill
	// hygiene tests route CreateTemp/WriteAt/ReadAt through
	// faultfs.Hooks to prove an injected disk fault surfaces as the
	// run's clean terminal error — never a panic, a hang, or a leaked
	// temp file.
	FS faultfs.FS
}

// fs resolves the spill filesystem, defaulting to the real one.
func (o *Options) fs() faultfs.FS {
	if o.FS == nil {
		return faultfs.OS
	}
	return o.FS
}

// seenSets resolves the dedup factory, defaulting to exact storage.
func (o *Options) seenSets() SeenSets {
	if o.Seen == nil {
		return ExactSeen{}
	}
	return o.Seen
}

// ctxDone returns the cancellation channel to poll, nil when no context
// was installed (a nil channel never fires in a select).
func (o *Options) ctxDone() <-chan struct{} {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Done()
}

// Explore builds the reachable LTS of sys by breadth-first search: it
// runs Stream with the LTS itself as the sink.
//
// Enabledness is computed incrementally: each frontier state carries a
// per-interaction move table derived from its parent's table, so
// expanding a state re-derives only the interactions incident to the
// move that produced it (core.TableDeriver) instead of rescanning the
// whole glue per state. Tables are dropped once a state is expanded —
// the cache lives exactly on the BFS frontier.
//
// Dedup is keyed by the system's fixed-width binary state keys
// (core.System.AppendBinaryKey). With Options.Workers > 1 the BFS is
// sharded across workers (see parallel.go); the result is bit-for-bit
// the LTS the sequential explorer builds.
func Explore(sys *core.System, opts Options) (*LTS, error) {
	l := &LTS{sys: sys}
	if _, err := Stream(sys, opts, l); err != nil {
		return nil, err
	}
	return l, nil
}

// SetStreamOrder implements OrderSink: an unordered stream delivers
// dense ids in arbitrary order, so the tables grow with placeholders;
// a deterministic stream keeps the strict in-order check, which fails
// fast on any driver numbering regression.
func (l *LTS) SetStreamOrder(o Order) {
	l.unordered = o == Unordered
}

// OnState implements Sink by storing the state and its discovery-tree
// edge. On an unordered stream (SetStreamOrder) ids arrive in no
// particular order but are dense, so the slices are grown with
// placeholders that are always filled before Done.
func (l *LTS) OnState(id int, st core.State, d Discovery) error {
	if !l.unordered && id != len(l.states) {
		return fmt.Errorf("lts: state %d delivered out of order (have %d)", id, len(l.states))
	}
	for len(l.states) <= id {
		l.states = append(l.states, core.State{})
		l.edges = append(l.edges, nil)
		l.parent = append(l.parent, -1)
		l.parentLabel = append(l.parentLabel, "")
	}
	l.states[id] = st
	l.parent[id] = d.Parent
	l.parentLabel[id] = d.Label
	return nil
}

// OnEdge implements Sink.
func (l *LTS) OnEdge(from, to int, label string) error {
	l.edges[from] = append(l.edges[from], Edge{To: to, Label: label})
	return nil
}

// OnExpanded implements Sink.
func (l *LTS) OnExpanded(int, int) error { return nil }

// Done implements Sink.
func (l *LTS) Done(truncated bool) error {
	l.truncated = truncated
	return nil
}

// NumStates returns the number of explored states.
func (l *LTS) NumStates() int { return len(l.states) }

// NumTransitions returns the number of explored transitions.
func (l *LTS) NumTransitions() int {
	n := 0
	for _, es := range l.edges {
		n += len(es)
	}
	return n
}

// Truncated reports whether exploration hit the state bound, in which
// case absence results (deadlock-freedom, invariant validity) are not
// conclusive.
func (l *LTS) Truncated() bool { return l.truncated }

// State returns explored state i.
func (l *LTS) State(i int) core.State { return l.states[i] }

// Edges returns the outgoing edges of state i.
func (l *LTS) Edges(i int) []Edge { return l.edges[i] }

// System returns the underlying system.
func (l *LTS) System() *core.System { return l.sys }

// Deadlocks returns the indices of states with no outgoing transition.
// The scan runs once per LTS and is cached; the caller must not mutate
// the result.
func (l *LTS) Deadlocks() []int {
	if !l.deadlocksOnce {
		l.deadlocksOnce = true
		for i, es := range l.edges {
			if len(es) == 0 {
				l.deadlocks = append(l.deadlocks, i)
			}
		}
	}
	return l.deadlocks
}

// DeadlockFree reports whether no reachable state is a deadlock. It
// reports an error when exploration was truncated, because the answer
// would not be trustworthy.
func (l *LTS) DeadlockFree() (bool, error) {
	if l.truncated {
		return false, fmt.Errorf("lts: exploration truncated at %d states; deadlock-freedom undecided", len(l.states))
	}
	return len(l.Deadlocks()) == 0, nil
}

// PathTo reconstructs the interaction labels leading from the initial
// state to state i along the BFS tree.
func (l *LTS) PathTo(i int) []string {
	var rev []string
	for i > 0 {
		rev = append(rev, l.parentLabel[i])
		i = l.parent[i]
	}
	out := make([]string, len(rev))
	for j := range rev {
		out[j] = rev[len(rev)-1-j]
	}
	return out
}

// FindState returns the first explored state satisfying pred.
func (l *LTS) FindState(pred func(core.State) bool) (int, bool) {
	for i, st := range l.states {
		if pred(st) {
			return i, true
		}
	}
	return 0, false
}

// CheckInvariant verifies pred on every reachable state. On violation it
// returns the offending state index and the path to it.
func (l *LTS) CheckInvariant(pred func(core.State) bool) (ok bool, state int, path []string) {
	if i, found := l.FindState(func(st core.State) bool { return !pred(st) }); found {
		return false, i, l.PathTo(i)
	}
	return true, 0, nil
}

// LabelSet returns the sorted set of labels appearing in the LTS. The
// set is computed once per LTS and cached; the caller must not mutate
// the result.
func (l *LTS) LabelSet() []string {
	if !l.labelsOnce {
		l.labelsOnce = true
		set := make(map[string]bool)
		for _, es := range l.edges {
			for _, e := range es {
				set[e.Label] = true
			}
		}
		l.labels = make([]string, 0, len(set))
		for s := range set {
			l.labels = append(l.labels, s)
		}
		sort.Strings(l.labels)
	}
	return l.labels
}

// Package lts builds and analyzes the explicit labelled transition system
// of a BIP system: reachability, deadlock detection, invariant checking,
// strong bisimulation, and observational trace inclusion.
//
// This is the repository's "correctness-by-checking" engine — the
// monolithic global-state verifier the paper contrasts with compositional
// verification (package invariant). Its exhaustive exploration exhibits
// exactly the state-explosion behaviour the paper describes (§4.3), which
// experiment E1 measures.
package lts

import (
	"fmt"
	"runtime"
	"sort"

	"bip/internal/core"
)

// Edge is an outgoing transition of an explored state.
type Edge struct {
	To    int
	Label string
}

// LTS is the explored (portion of the) state space of a system.
type LTS struct {
	sys    *core.System
	states []core.State
	index  map[string]int
	edges  [][]Edge

	// parent/parentLabel store the BFS tree for counterexample paths.
	parent      []int
	parentLabel []string

	truncated bool
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds exploration; 0 means the default of 1<<21.
	MaxStates int
	// Raw ignores priority filtering (explores the unrestricted
	// interaction semantics).
	Raw bool
	// Workers is the number of exploration workers. 0 and 1 select the
	// sequential explorer; n > 1 the sharded parallel explorer with n
	// workers; a negative value means GOMAXPROCS. Both explorers build
	// the identical LTS — same state numbering, edges, BFS tree, and
	// truncation verdict — so every analysis on top of the LTS is
	// worker-count independent.
	Workers int
}

// Explore builds the reachable LTS of sys by breadth-first search.
//
// Enabledness is computed incrementally: each frontier state carries a
// per-interaction move table derived from its parent's table, so
// expanding a state re-derives only the interactions incident to the
// move that produced it (core.TableDeriver) instead of rescanning the
// whole glue per state. Tables are dropped once a state is expanded —
// the cache lives exactly on the BFS frontier.
//
// Dedup is keyed by the system's fixed-width binary state keys
// (core.System.AppendBinaryKey). With Options.Workers > 1 the BFS is
// sharded across workers (see parallel.go); the result is bit-for-bit
// the LTS the sequential explorer builds.
func Explore(sys *core.System, opts Options) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 21
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		return exploreParallel(sys, opts, workers, maxStates)
	}
	l := &LTS{
		sys:   sys,
		index: make(map[string]int),
	}
	init := sys.Initial()
	ctx := sys.NewExploreCtx()
	l.push(string(sys.AppendBinaryKey(nil, init)), init, -1, "")
	initVec, err := sys.EnabledVector(init)
	if err != nil {
		return nil, fmt.Errorf("explore state 0: %w", err)
	}
	// tables[i] is the move table of state i while it waits on the
	// frontier; entries are released as soon as the state is expanded.
	tables := [][][]core.Move{initVec}
	for head := 0; head < len(l.states); head++ {
		st := l.states[head]
		vec := tables[head]
		tables[head] = nil
		var moves []core.Move
		if opts.Raw {
			moves = ctx.Deriver.Raw(vec, ctx.Moves[:0])
		} else {
			moves, err = ctx.Deriver.Enabled(vec, st, ctx.Moves[:0])
			if err != nil {
				return nil, fmt.Errorf("explore state %d: %w", head, err)
			}
		}
		ctx.Moves = moves
		for _, m := range moves {
			view, err := ctx.Scratch.Exec(st, m)
			if err != nil {
				return nil, fmt.Errorf("explore state %d: %w", head, err)
			}
			label := sys.Label(m)
			ctx.Key = sys.AppendBinaryKey(ctx.Key[:0], *view)
			to, seen := l.index[string(ctx.Key)]
			if !seen {
				if len(l.states) >= maxStates {
					l.truncated = true
					continue
				}
				next := ctx.Scratch.Materialize(m)
				to = l.push(string(ctx.Key), next, head, label)
				nextVec, err := ctx.Deriver.Derive(vec, m, next)
				if err != nil {
					return nil, fmt.Errorf("explore state %d: %w", head, err)
				}
				tables = append(tables, nextVec)
			}
			l.edges[head] = append(l.edges[head], Edge{To: to, Label: label})
		}
	}
	return l, nil
}

func (l *LTS) push(key string, st core.State, parent int, label string) int {
	id := len(l.states)
	l.states = append(l.states, st)
	l.index[key] = id
	l.edges = append(l.edges, nil)
	l.parent = append(l.parent, parent)
	l.parentLabel = append(l.parentLabel, label)
	return id
}

// NumStates returns the number of explored states.
func (l *LTS) NumStates() int { return len(l.states) }

// NumTransitions returns the number of explored transitions.
func (l *LTS) NumTransitions() int {
	n := 0
	for _, es := range l.edges {
		n += len(es)
	}
	return n
}

// Truncated reports whether exploration hit the state bound, in which
// case absence results (deadlock-freedom, invariant validity) are not
// conclusive.
func (l *LTS) Truncated() bool { return l.truncated }

// State returns explored state i.
func (l *LTS) State(i int) core.State { return l.states[i] }

// Edges returns the outgoing edges of state i.
func (l *LTS) Edges(i int) []Edge { return l.edges[i] }

// System returns the underlying system.
func (l *LTS) System() *core.System { return l.sys }

// Deadlocks returns the indices of states with no outgoing transition.
func (l *LTS) Deadlocks() []int {
	var out []int
	for i, es := range l.edges {
		if len(es) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// DeadlockFree reports whether no reachable state is a deadlock. It
// reports an error when exploration was truncated, because the answer
// would not be trustworthy.
func (l *LTS) DeadlockFree() (bool, error) {
	if l.truncated {
		return false, fmt.Errorf("lts: exploration truncated at %d states; deadlock-freedom undecided", len(l.states))
	}
	return len(l.Deadlocks()) == 0, nil
}

// PathTo reconstructs the interaction labels leading from the initial
// state to state i along the BFS tree.
func (l *LTS) PathTo(i int) []string {
	var rev []string
	for i > 0 {
		rev = append(rev, l.parentLabel[i])
		i = l.parent[i]
	}
	out := make([]string, len(rev))
	for j := range rev {
		out[j] = rev[len(rev)-1-j]
	}
	return out
}

// FindState returns the first explored state satisfying pred.
func (l *LTS) FindState(pred func(core.State) bool) (int, bool) {
	for i, st := range l.states {
		if pred(st) {
			return i, true
		}
	}
	return 0, false
}

// CheckInvariant verifies pred on every reachable state. On violation it
// returns the offending state index and the path to it.
func (l *LTS) CheckInvariant(pred func(core.State) bool) (ok bool, state int, path []string) {
	if i, found := l.FindState(func(st core.State) bool { return !pred(st) }); found {
		return false, i, l.PathTo(i)
	}
	return true, 0, nil
}

// LabelSet returns the sorted set of labels appearing in the LTS.
func (l *LTS) LabelSet() []string {
	set := make(map[string]bool)
	for _, es := range l.edges {
		for _, e := range es {
			set[e.Label] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

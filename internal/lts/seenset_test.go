package lts

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"bip/internal/core"
	"bip/models"
)

// These tests pin the pluggable seen-set layer's contract: swapping
// Options.Seen must never change what an exploration computes — state
// set, edge multiset, deadlock set, truncation flag, checker verdicts
// and the validity of every reported counterexample — only how much
// memory the visited-state record costs. The same differential runs
// three ways: compact at full discriminator width (the production
// configuration), compact with an 8-bit discriminator (collision
// injection: the exact-promotion tier must absorb constant
// discriminator collisions), and the spilled frontier under a starved
// MemBudget.

// exploreStats materializes the LTS like explore but also returns the
// run's Stats, which carry the seen-set and spill accounting.
func exploreStats(t *testing.T, sys *core.System, opts Options) (*LTS, Stats) {
	t.Helper()
	l := &LTS{sys: sys}
	stats, err := Stream(sys, opts, l)
	if err != nil {
		t.Fatalf("Stream(%s): %v", sys.Name, err)
	}
	return l, stats
}

// seenWorkerCounts are the acceptance grid of the memory PR: sequential
// plus the parallel drivers at moderate and high contention.
func seenWorkerCounts() []int { return []int{1, 4, 8} }

func TestCompactSeenCanonicalDifferential(t *testing.T) {
	for _, c := range zooCases(t) {
		ref := explore(t, c.sys, c.opts)
		for _, w := range seenWorkerCounts() {
			for _, ord := range []Order{Deterministic, Unordered} {
				name := fmt.Sprintf("%s/workers=%d/order=%v", c.name, w, ord)
				opts := c.opts
				opts.Workers = w
				opts.Order = ord
				opts.Seen = CompactSeen{}
				got, stats := exploreStats(t, c.sys, opts)
				if stats.SeenBytes <= 0 {
					t.Fatalf("%s: SeenBytes = %d, accounting is dead", name, stats.SeenBytes)
				}
				if stats.ExactPromotions != 0 {
					t.Fatalf("%s: %d promotions at full discriminator width", name, stats.ExactPromotions)
				}
				if ref.Truncated() && ord == Unordered && w > 1 {
					// The admitted SET of a truncated unordered run is
					// schedule-dependent by contract; count and flag are not.
					if got.NumStates() != ref.NumStates() || !got.Truncated() {
						t.Fatalf("%s: truncated run admitted %d states (truncated=%v), want %d",
							name, got.NumStates(), got.Truncated(), ref.NumStates())
					}
					continue
				}
				requireSameCanonical(t, name, ref, got)
			}
		}
	}
}

// TestCompactSeenVerdictsAndPaths runs the on-the-fly checkers with the
// compact seen set across the zoo, workers and both orders: verdicts
// must match the exact sequential reference and every reported
// counterexample path must replay as a real run of the semantics.
func TestCompactSeenVerdictsAndPaths(t *testing.T) {
	for _, c := range zooCases(t) {
		ref := explore(t, c.sys, c.opts)
		if ref.Truncated() {
			continue
		}
		wantDL := len(ref.Deadlocks()) > 0
		for _, w := range seenWorkerCounts() {
			for _, ord := range []Order{Deterministic, Unordered} {
				name := fmt.Sprintf("%s/workers=%d/order=%v", c.name, w, ord)
				opts := c.opts
				opts.Workers = w
				opts.Order = ord
				opts.Seen = CompactSeen{}
				dl := &DeadlockCheck{}
				if _, err := Stream(c.sys, opts, dl); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if dl.Found != wantDL {
					t.Fatalf("%s: deadlock found=%v, exact sequential says %v", name, dl.Found, wantDL)
				}
				if dl.Found {
					validateRun(t, name, c.sys, c.opts.Raw, dl.Path, func(st core.State) bool {
						ms, err := enabledOf(c.sys, st, c.opts.Raw)
						return err == nil && len(ms) == 0
					})
				} else if !dl.Exhaustive {
					t.Fatalf("%s: full exploration must be conclusive", name)
				}
			}
		}
	}
}

// TestCompactSeenCollisionInjection narrows the discriminator to 8 bits
// — with hundreds to thousands of states per model, discriminator
// collisions between distinct states are then guaranteed en masse — and
// requires (a) bit-identical exploration anyway, because the verifying
// exact-promotion tier overrules every ambiguous match, and (b) a
// nonzero promotion count somewhere, proving the injection actually
// exercised that tier rather than silently not colliding.
func TestCompactSeenCollisionInjection(t *testing.T) {
	var promotions int64
	for _, c := range zooCases(t) {
		ref := explore(t, c.sys, c.opts)
		for _, w := range []int{1, 4} {
			for _, ord := range []Order{Deterministic, Unordered} {
				name := fmt.Sprintf("%s/workers=%d/order=%v", c.name, w, ord)
				opts := c.opts
				opts.Workers = w
				opts.Order = ord
				opts.Seen = CompactSeen{RemainderBits: 8}
				got, stats := exploreStats(t, c.sys, opts)
				promotions += stats.ExactPromotions
				if ref.Truncated() && ord == Unordered && w > 1 {
					if got.NumStates() != ref.NumStates() || !got.Truncated() {
						t.Fatalf("%s: truncated run admitted %d states, want %d",
							name, got.NumStates(), ref.NumStates())
					}
					continue
				}
				requireSameCanonical(t, name, ref, got)
			}
		}
	}
	if promotions == 0 {
		t.Fatal("8-bit discriminator produced zero promotions across the zoo: the collision injection is not injecting")
	}
}

// TestSpillRoundTrip starves the work-stealing frontier: a budget of a
// handful of entries forces nearly every published chunk through the
// spill file and back, so the run only completes if spilled states
// decode to exactly what was evicted. The canonical differential then
// proves the reloaded frontier produced the same exploration.
func TestSpillRoundTrip(t *testing.T) {
	grid, err := models.CounterGrid(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	twoPhase, err := models.PhilosophersDeadlocking(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []*core.System{grid, twoPhase} {
		ref := explore(t, sys, Options{})
		for _, w := range []int{2, 4, 8} {
			for _, seen := range []SeenSets{nil, CompactSeen{}} {
				name := fmt.Sprintf("%s/workers=%d/compact=%v", sys.Name, w, seen != nil)
				opts := Options{
					Workers: w,
					Order:   Unordered,
					Seen:    seen,
					// ~4 frontier entries: every full chunk publish is over
					// budget, so chunks spill and reload continuously.
					MemBudget: 4 * frontierEntryBytes(sys),
				}
				got, stats := exploreStats(t, sys, opts)
				if stats.SpilledChunks < 2 {
					t.Fatalf("%s: only %d chunks spilled under a 4-entry budget", name, stats.SpilledChunks)
				}
				if stats.PeakFrontierBytes <= 0 {
					t.Fatalf("%s: PeakFrontierBytes = %d", name, stats.PeakFrontierBytes)
				}
				requireSameCanonical(t, name, ref, got)
			}
		}
	}
}

// TestMemBudgetBoundsPeak checks the accounting side of the budget: the
// unbudgeted work-stealing run's frontier peak must shrink by an order
// of magnitude when a tight budget is imposed (exact equality is not
// promised — each worker's unpublished tail chunk and in-flight entries
// cannot be evicted).
func TestMemBudgetBoundsPeak(t *testing.T) {
	grid, err := models.CounterGrid(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	free := Options{Workers: 4, Order: Unordered}
	_, unbounded := exploreStats(t, grid, free)
	budget := unbounded.PeakFrontierBytes / 16
	bounded := free
	bounded.MemBudget = budget
	l, stats := exploreStats(t, grid, bounded)
	if want := 4 * 4 * 4 * 4 * 4 * 4; l.NumStates() != want {
		t.Fatalf("budgeted run visited %d states, want %d", l.NumStates(), want)
	}
	if stats.SpilledChunks == 0 {
		t.Fatal("budget of peak/16 spilled nothing")
	}
	if stats.PeakFrontierBytes >= unbounded.PeakFrontierBytes/2 {
		t.Fatalf("budgeted peak %d is not meaningfully below the unbudgeted %d",
			stats.PeakFrontierBytes, unbounded.PeakFrontierBytes)
	}
}

// Cancellation: all three drivers must notice a fired context and
// return its error — both when it is already canceled at entry and when
// it fires mid-run — without hanging any worker.
func TestContextCancellation(t *testing.T) {
	grid, err := models.CounterGrid(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	drivers := []struct {
		name string
		opts Options
	}{
		{"sequential", Options{}},
		{"det-parallel", Options{Workers: 4}},
		{"work-steal", Options{Workers: 4, Order: Unordered}},
	}
	for _, d := range drivers {
		t.Run(d.name+"/pre-canceled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			opts := d.opts
			opts.Ctx = ctx
			_, err := Stream(grid, opts, &DeadlockCheck{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled context: err = %v, want context.Canceled", err)
			}
		})
		t.Run(d.name+"/mid-run", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := d.opts
			opts.Ctx = ctx
			// Cancel from inside the sink once the run is clearly underway;
			// the 4^8-state space is far from finished at that point.
			fired := 0
			sink := &funcSink{onState: func() error {
				fired++
				if fired == 500 {
					cancel()
				}
				return nil
			}}
			_, err := Stream(grid, opts, sink)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
			}
		})
	}
}

// funcSink adapts a closure to the Sink interface for the cancellation
// tests.
type funcSink struct{ onState func() error }

func (f *funcSink) OnState(int, core.State, Discovery) error { return f.onState() }
func (f *funcSink) OnEdge(int, int, string) error            { return nil }
func (f *funcSink) OnExpanded(int, int) error                { return nil }
func (f *funcSink) Done(bool) error                          { return nil }

package lts

import (
	"fmt"
	"testing"

	"bip/internal/core"
	"bip/models"
)

// These tests pin the partial-order reduction contract: with an
// AmpleExpander installed, the explored graph is a subset of the full
// LTS that preserves (a) the deadlock states exactly (conditions
// C0/C1), (b) every verdict of a property whose visibility the
// expander was built with (C2 + the cycle proviso C3), and (c) the
// deterministic drivers' bit-identical stream at any worker count.
// Counterexamples reported on the reduced graph must replay as real
// runs of the full semantics.

func ampleFor(t *testing.T, sys *core.System, vis Visibility) *AmpleExpander {
	t.Helper()
	exp, err := NewAmpleExpander(sys, vis)
	if err != nil {
		t.Fatalf("NewAmpleExpander: %v", err)
	}
	return exp
}

// porWorkerCounts are the worker counts the issue pins: sequential,
// moderate, oversubscribed.
var porWorkerCounts = []int{1, 4, 8}

func stateKeySet(l *LTS) map[string]bool {
	sys := l.System()
	out := make(map[string]bool, l.NumStates())
	for i := 0; i < l.NumStates(); i++ {
		out[sys.StateKey(l.State(i))] = true
	}
	return out
}

func deadlockKeySet(l *LTS) map[string]bool {
	sys := l.System()
	out := map[string]bool{}
	for _, d := range l.Deadlocks() {
		out[sys.StateKey(l.State(d))] = true
	}
	return out
}

func requireSameKeySet(t *testing.T, name string, want, got map[string]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d keys != %d", name, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: key sets differ (missing %q)", name, k)
		}
	}
}

// requireExactStream compares two deterministic-stream LTSs event for
// event: same numbering, same states, same edge lists.
func requireExactStream(t *testing.T, name string, want, got *LTS) {
	t.Helper()
	sys := want.System()
	if got.NumStates() != want.NumStates() {
		t.Fatalf("%s: %d states != %d", name, got.NumStates(), want.NumStates())
	}
	for i := 0; i < want.NumStates(); i++ {
		if sys.StateKey(want.State(i)) != sys.StateKey(got.State(i)) {
			t.Fatalf("%s: state %d differs", name, i)
		}
		we, ge := want.Edges(i), got.Edges(i)
		if len(we) != len(ge) {
			t.Fatalf("%s: state %d has %d edges, want %d", name, i, len(ge), len(we))
		}
		for j := range we {
			if we[j] != ge[j] {
				t.Fatalf("%s: state %d edge %d: %v != %v", name, i, j, ge[j], we[j])
			}
		}
	}
}

// TestDiamondGridAmpleReduction is the showcase: n independent cells
// have a 3^n full space, and the reducer must cut it by well over the
// 5x the issue demands while preserving the deadlock (all cells done)
// exactly, at every worker count and order.
func TestDiamondGridAmpleReduction(t *testing.T) {
	sys, err := models.DiamondGrid(6)
	if err != nil {
		t.Fatal(err)
	}
	full := explore(t, sys, Options{})
	if full.NumStates() != 729 { // 3^6
		t.Fatalf("full diamond-6 space: %d states, want 729", full.NumStates())
	}
	exp := ampleFor(t, sys, Visibility{})
	reduced := explore(t, sys, Options{Expander: exp})
	if reduced.NumStates()*5 > full.NumStates() {
		t.Fatalf("reduction factor below 5x: %d reduced vs %d full states",
			reduced.NumStates(), full.NumStates())
	}
	requireSameKeySet(t, "diamond deadlocks", deadlockKeySet(full), deadlockKeySet(reduced))

	// The reduced deterministic stream is worker-count independent.
	for _, w := range porWorkerCounts[1:] {
		par := explore(t, sys, Options{Expander: exp, Workers: w})
		requireExactStream(t, fmt.Sprintf("reduced det workers=%d", w), reduced, par)
	}
	// The unordered driver may reduce differently, but stays a subset
	// with the same deadlocks.
	fullKeys := stateKeySet(full)
	for _, w := range porWorkerCounts[1:] {
		ws := explore(t, sys, Options{Expander: exp, Workers: w, Order: Unordered})
		for k := range stateKeySet(ws) {
			if !fullKeys[k] {
				t.Fatalf("unordered reduced workers=%d explored a state outside the full LTS", w)
			}
		}
		requireSameKeySet(t, fmt.Sprintf("unordered deadlocks workers=%d", w),
			deadlockKeySet(full), deadlockKeySet(ws))
	}

	stats, err := Stream(sys, Options{Expander: exp}, &DeadlockCheck{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.AmpleStates == 0 || stats.PrunedMoves == 0 {
		t.Fatalf("reduction counters empty on diamond grid: %+v", stats)
	}
}

// porZoo is the reduction differential zoo: a mix of reducible
// (multi-cluster) and irreducible (single entangled cluster) models.
// The irreducible ones pin that the expander degrades to full
// exploration rather than pruning unsoundly.
func porZoo(t *testing.T) []struct {
	name string
	sys  *core.System
} {
	type tc = struct {
		name string
		sys  *core.System
	}
	var cases []tc
	add := func(name string, sys *core.System, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, tc{name: name, sys: sys})
	}
	phil, err := models.Philosophers(4)
	add("philosophers-ctl", stripData(t, phil), err)
	twoPhase, err := models.PhilosophersDeadlocking(3)
	add("philosophers-2p", twoPhase, err)
	rings, err := models.PhilosopherRings(3, 3)
	add("philosopher-rings", stripData(t, rings), err)
	gas, err := models.GasStation(2, 2)
	add("gasstation", gas, err)
	deep, err := models.DeepChain(40)
	add("deep-chain", deep, err)
	diamond, err := models.DiamondGrid(5)
	add("diamond", diamond, err)
	temp, err := models.Temperature(0, 2, 1)
	add("temperature-priorities", temp, err)
	return cases
}

// TestAmpleDifferentialZoo checks, across the zoo, workers 1/4/8 and
// both orders, that reduction with empty visibility preserves the
// deadlock verdict (with replay-valid counterexample) and the deadlock
// state set, and that reduction with a predicate's visibility preserves
// invariant and reachability verdicts for predicates over that atom.
func TestAmpleDifferentialZoo(t *testing.T) {
	for _, c := range porZoo(t) {
		full := explore(t, c.sys, Options{})
		if full.Truncated() {
			t.Fatalf("%s: zoo model unexpectedly truncated", c.name)
		}
		fullKeys := stateKeySet(full)
		fullDead := deadlockKeySet(full)
		wantDL := len(fullDead) > 0

		// Predicate over atom 0: "never reaches the location it holds in
		// the last discovered state". Declaring atom 0 visible is what
		// makes checking it on the reduced graph sound.
		a0loc := full.State(full.NumStates() - 1).Locs[0]
		invPred := func(st core.State) bool { return st.Locs[0] != a0loc }
		wantInvOK, _, _ := full.CheckInvariant(invPred)
		visAtom := Visibility{Atoms: []int{0}}

		expEmpty := ampleFor(t, c.sys, Visibility{})
		expAtom := ampleFor(t, c.sys, visAtom)

		for _, w := range porWorkerCounts {
			for _, order := range []Order{Deterministic, Unordered} {
				name := fmt.Sprintf("%s/workers=%d/order=%v", c.name, w, order)
				opts := Options{Workers: w, Order: order, Expander: expEmpty}

				// Deadlock differential under maximal reduction.
				red := explore(t, c.sys, opts)
				for k := range stateKeySet(red) {
					if !fullKeys[k] {
						t.Fatalf("%s: reduced graph contains a state outside the full LTS", name)
					}
				}
				requireSameKeySet(t, name+"/deadlock-set", fullDead, deadlockKeySet(red))

				dl := &DeadlockCheck{}
				if _, err := Stream(c.sys, opts, dl); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if dl.Found != wantDL {
					t.Fatalf("%s: reduced deadlock verdict %v, full %v", name, dl.Found, wantDL)
				}
				if dl.Found {
					validateRun(t, name+"/deadlock", c.sys, false, dl.Path, func(st core.State) bool {
						ms, err := enabledOf(c.sys, st, false)
						return err == nil && len(ms) == 0
					})
				} else if !dl.Exhaustive {
					t.Fatalf("%s: untruncated reduced run must stay conclusive", name)
				}

				// Invariant differential under atom-0 visibility.
				inv := &InvariantCheck{Pred: invPred}
				iopts := opts
				iopts.Expander = expAtom
				if _, err := Stream(c.sys, iopts, inv); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if inv.Found != !wantInvOK {
					t.Fatalf("%s: reduced invariant verdict found=%v, full ok=%v", name, inv.Found, wantInvOK)
				}
				if inv.Found {
					validateRun(t, name+"/invariant", c.sys, false, inv.Path, func(st core.State) bool {
						return !invPred(st)
					})
				}

				// Reachability differential under the same visibility.
				reach := &ReachCheck{Pred: func(st core.State) bool { return !invPred(st) }}
				if _, err := Stream(c.sys, iopts, reach); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if reach.Found != !wantInvOK {
					t.Fatalf("%s: reduced reach verdict found=%v, full %v", name, reach.Found, !wantInvOK)
				}
			}
		}

		// The deterministic reduced stream is identical across worker
		// counts (the Unordered one is exempt by contract).
		seqRed := explore(t, c.sys, Options{Expander: expEmpty})
		for _, w := range porWorkerCounts[1:] {
			par := explore(t, c.sys, Options{Expander: expEmpty, Workers: w})
			requireExactStream(t, fmt.Sprintf("%s/det-stream workers=%d", c.name, w), seqRed, par)
		}
	}
}

// TestProvisoEscapesToggleCycles pins the cycle proviso: DeepChain's
// toggle components cycle in two steps, so a proviso-free reducer that
// keeps picking a toggle cluster would revisit its two states forever
// and conclude without ever advancing the counter. The escalations must
// fire and the counter's end location must stay reachable.
func TestProvisoEscapesToggleCycles(t *testing.T) {
	sys, err := models.DeepChain(30)
	if err != nil {
		t.Fatal(err)
	}
	ctr := sys.AtomIndex("ctr")
	vis, err := VisibleAtomsByName(sys, "ctr")
	if err != nil {
		t.Fatal(err)
	}
	exp := ampleFor(t, sys, vis)
	for _, w := range porWorkerCounts {
		for _, order := range []Order{Deterministic, Unordered} {
			name := fmt.Sprintf("workers=%d/order=%v", w, order)
			reach := &ReachCheck{Pred: func(st core.State) bool { return st.Locs[ctr] == "end" }}
			stats, err := Stream(sys, Options{Workers: w, Order: order, Expander: exp}, reach)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reach.Found {
				t.Fatalf("%s: reduced exploration lost the counter's end state", name)
			}
			validateRun(t, name, sys, false, reach.Path, func(st core.State) bool {
				return st.Locs[ctr] == "end"
			})
			_ = stats
		}
	}
	// Sequential full-space run: the toggles guarantee escalations.
	stats, err := Stream(sys, Options{Expander: ampleFor(t, sys, Visibility{})}, &noopSink{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ProvisoFallbacks == 0 {
		t.Fatalf("expected cycle-proviso fallbacks on deep-chain, got %+v", stats)
	}
}

// TestAmpleVisibilityPinsCluster checks C2 directly: making one
// diamond cell visible (by label or by atom) keeps every move of that
// cell's cluster unpruned, so a property watching it keeps its
// counterexample.
func TestAmpleVisibilityPinsCluster(t *testing.T) {
	sys, err := models.DiamondGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	c3 := sys.AtomIndex("c3")
	done := func(st core.State) bool { return st.Locs[c3] == "s2" }

	for _, vis := range []Visibility{
		{Labels: []string{"a3", "b3"}},
		{Atoms: []int{c3}},
	} {
		exp := ampleFor(t, sys, vis)
		reach := &ReachCheck{Pred: done}
		if _, err := Stream(sys, Options{Expander: exp}, reach); err != nil {
			t.Fatal(err)
		}
		if !reach.Found {
			t.Fatalf("visibility %+v: reduction lost cell c3's completion", vis)
		}
		validateRun(t, "visible-cell", sys, false, reach.Path, done)
	}

	// Sanity check on the helper errors.
	if _, err := NewAmpleExpander(sys, Visibility{All: true}); err == nil {
		t.Fatal("NewAmpleExpander must refuse Visibility.All")
	}
	if _, err := NewAmpleExpander(sys, Visibility{Labels: []string{"nope"}}); err == nil {
		t.Fatal("NewAmpleExpander must refuse unknown labels")
	}
}

// noopSink drops the stream; used to read bare Stats.
type noopSink struct{}

func (noopSink) OnState(int, core.State, Discovery) error { return nil }
func (noopSink) OnEdge(int, int, string) error            { return nil }
func (noopSink) OnExpanded(int, int) error                { return nil }
func (noopSink) Done(bool) error                          { return nil }

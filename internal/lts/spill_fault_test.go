package lts

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bip/internal/core"
	"bip/internal/faultfs"
	"bip/models"
)

// These tests pin the spill layer's failure contract with injected
// disk faults (faultfs.Hooks): an injected CreateTemp/WriteAt/ReadAt
// failure must surface as the run's clean terminal error — never a
// panic or a hang — and the spill temp file must be closed and removed
// on EVERY exit path: natural completion, sink error, early ErrStop,
// and context cancellation.

// spillGrid is the shared workload: 4^5 = 1024 states whose frontier
// dwarfs the 4-entry budget, so chunks spill (and reload) continuously.
func spillGrid(t *testing.T) *core.System {
	t.Helper()
	sys, err := models.CounterGrid(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runWithWatchdog executes one exploration on a leash: a fault that
// turned into a deadlock instead of an error would otherwise hang the
// whole test binary.
func runWithWatchdog(t *testing.T, name string, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(2 * time.Minute):
		t.Fatalf("%s: run did not terminate within 2m after an injected fault (hang, not error)", name)
		return nil
	}
}

// requireHygiene asserts every file the run created through the hooks
// was closed and removed.
func requireHygiene(t *testing.T, name string, h *faultfs.Hooks) {
	t.Helper()
	if live := h.Live(); live != 0 {
		t.Fatalf("%s: %d spill file(s) left open", name, live)
	}
	removed := make(map[string]bool)
	for _, f := range h.Removed() {
		removed[f] = true
	}
	for _, f := range h.Created() {
		if !removed[f] {
			t.Fatalf("%s: spill file %s created but never removed", name, f)
		}
	}
}

// TestSpillFaultSurfacesCleanly injects the first WriteAt, the first
// ReadAt, and the CreateTemp failure into runs at workers 1/4/8 in
// both orders. Only the unordered multi-worker runs have a spill layer
// to fault (MemBudget is documented as ignored elsewhere), so those
// must fail with the spill error as the run's first terminal error;
// every other configuration must complete untouched. No configuration
// may panic, hang, or leak the temp file.
func TestSpillFaultSurfacesCleanly(t *testing.T) {
	sys := spillGrid(t)
	injected := errors.New("injected disk fault")
	faults := []struct {
		kind    string
		install func(h *faultfs.Hooks)
	}{
		{"createtemp", func(h *faultfs.Hooks) {
			h.OnCreateTemp = func(string) error { return injected }
		}},
		{"writeat", func(h *faultfs.Hooks) {
			fail := faultfs.FailNth(1, injected)
			h.OnWriteAt = func(string, int64, int) error { return fail() }
		}},
		{"readat", func(h *faultfs.Hooks) {
			fail := faultfs.FailNth(1, injected)
			h.OnReadAt = func(string, int64, int) error { return fail() }
		}},
	}
	for _, fault := range faults {
		for _, w := range []int{1, 4, 8} {
			for _, order := range []Order{Deterministic, Unordered} {
				name := fmt.Sprintf("%s/workers=%d/order=%v", fault.kind, w, order)
				h := &faultfs.Hooks{}
				fault.install(h)
				opts := Options{
					Workers:   w,
					Order:     order,
					MemBudget: 4 * frontierEntryBytes(sys),
					FS:        h,
				}
				var l *LTS
				err := runWithWatchdog(t, name, func() error {
					var runErr error
					l, runErr = Explore(sys, opts)
					return runErr
				})
				spills := w > 1 && order == Unordered
				if spills {
					if err == nil || !errors.Is(err, injected) {
						t.Fatalf("%s: injected fault did not surface: err = %v", name, err)
					}
					// The wrap names the failing layer, so a Report carrying
					// this error tells the operator what actually broke.
					if s := err.Error(); !strings.Contains(s, "frontier spill") {
						t.Fatalf("%s: error %q does not name the spill layer", name, s)
					}
				} else {
					if err != nil {
						t.Fatalf("%s: non-spilling run tripped a spill fault: %v", name, err)
					}
					if got, want := l.NumStates(), 4*4*4*4*4; got != want {
						t.Fatalf("%s: %d states, want %d", name, got, want)
					}
					if created := h.Created(); len(created) != 0 {
						t.Fatalf("%s: non-spilling run touched the spill filesystem: %v", name, created)
					}
				}
				requireHygiene(t, name, h)
			}
		}
	}
}

// faultTripSink counts OnState events and returns its configured
// result — ErrStop, a real error, or a context cancellation side
// effect — once the threshold is reached.
type faultTripSink struct {
	n      int
	after  int
	result error
	onTrip func()
}

func (s *faultTripSink) OnState(int, core.State, Discovery) error {
	s.n++
	if s.n == s.after {
		if s.onTrip != nil {
			s.onTrip()
		}
		return s.result
	}
	return nil
}
func (s *faultTripSink) OnEdge(int, int, string) error { return nil }
func (s *faultTripSink) OnExpanded(int, int) error     { return nil }
func (s *faultTripSink) Done(bool) error               { return nil }

// TestSpillHygieneOnEveryExitPath drives the spilling work-stealing
// run through its four exits — natural completion, early ErrStop, sink
// error, and context cancellation — and asserts the spill temp file is
// closed and removed after each. The completion run additionally pins
// that chunks really round-tripped, so the hygiene claims are not
// vacuous.
func TestSpillHygieneOnEveryExitPath(t *testing.T) {
	sys := spillGrid(t)
	budget := 4 * frontierEntryBytes(sys)

	t.Run("completion", func(t *testing.T) {
		h := &faultfs.Hooks{}
		stats, err := Stream(sys, Options{Workers: 4, Order: Unordered, MemBudget: budget, FS: h},
			&faultTripSink{after: -1})
		if err != nil {
			t.Fatal(err)
		}
		if stats.SpilledChunks == 0 {
			t.Fatal("4-entry budget spilled nothing; the hygiene assertions below would be vacuous")
		}
		if len(h.Created()) == 0 {
			t.Fatal("spilled chunks but no file created through the hooks")
		}
		requireHygiene(t, "completion", h)
	})

	t.Run("errstop", func(t *testing.T) {
		h := &faultfs.Hooks{}
		sink := &faultTripSink{after: 600, result: ErrStop}
		stats, err := Stream(sys, Options{Workers: 4, Order: Unordered, MemBudget: budget, FS: h}, sink)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Stopped {
			t.Fatal("ErrStop did not stop the run")
		}
		if len(h.Created()) == 0 {
			t.Fatal("run stopped before any spill; raise the stop threshold")
		}
		requireHygiene(t, "errstop", h)
	})

	t.Run("sink-error", func(t *testing.T) {
		h := &faultfs.Hooks{}
		boom := errors.New("sink exploded")
		sink := &faultTripSink{after: 600, result: boom}
		_, err := Stream(sys, Options{Workers: 4, Order: Unordered, MemBudget: budget, FS: h}, sink)
		if !errors.Is(err, boom) {
			t.Fatalf("sink error not surfaced: %v", err)
		}
		requireHygiene(t, "sink-error", h)
	})

	t.Run("cancellation", func(t *testing.T) {
		h := &faultfs.Hooks{}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sink := &faultTripSink{after: 600, onTrip: cancel}
		err := runWithWatchdog(t, "cancellation", func() error {
			_, runErr := Stream(sys, Options{
				Workers: 4, Order: Unordered, MemBudget: budget, FS: h, Ctx: ctx,
			}, sink)
			return runErr
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancellation not surfaced: %v", err)
		}
		requireHygiene(t, "cancellation", h)
	})
}

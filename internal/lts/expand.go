package lts

import (
	"fmt"
	"sort"

	"bip/internal/core"
)

// This file is the pluggable expansion stage between core's semantics
// (Stepper/TableDeriver via ExploreCtx) and the exploration drivers
// (stream.go, parallel.go, wsteal.go). The drivers no longer decide
// which successors of a state to pursue; they ask a WorkerExpander and
// process what it returns. Full expansion — every enabled move — is the
// default; the ample-set partial-order reducer below is the first
// alternative client.
//
// The Expand contract is designed so that reduction never distorts the
// observable enabledness of a state: Expand returns the FULL enabled
// move list, deterministically reordered with the ample subset as a
// prefix, plus the prefix length. Drivers explore only the prefix but
// report the full length through OnExpanded, so deadlock detection
// (moves == 0) and enabled-move counts stay exact under reduction. The
// suffix also lets a driver escalate to full expansion mid-state when
// the cycle proviso demands it (see the driver notes below) without a
// second derivation.
//
// Ample sets. The reducer picks, per state, one reducible connector
// cluster (core.ClusterReducible) and takes all enabled moves of that
// cluster's interactions as the ample set. The classical conditions:
//
//	C0  the ample set is empty only if the state has no enabled move —
//	    holds because a cluster is selected only when it has at least
//	    one enabled move; deadlocks are therefore preserved exactly.
//	C1  (persistence) no move outside the ample set, nor any move
//	    reachable by firing such moves, can disable, enable or alter an
//	    ample move — holds structurally: interactions outside the
//	    cluster touch no cluster atom, and reducible clusters have no
//	    priority rule linking them to the rest of the system, so a
//	    cluster move's enabledness is a function of the cluster state
//	    alone.
//	C2  (visibility) a strict ample subset contains no visible move and
//	    no move of an atom the property observes — enforced by
//	    excluding clusters that contain a visible interaction or a
//	    visible atom from selection.
//	C3  (cycle proviso) every cycle of the reduced graph contains one
//	    fully expanded state — enforced by the drivers: a state whose
//	    ample successor is already visited is escalated to full
//	    expansion. Admission order strictly increases along reduced
//	    edges to fresh states, so any cycle must contain an edge to an
//	    already-admitted state, and its source is fully expanded.
//
// Selection is deterministic: among eligible clusters with 0 < enabled
// moves < all enabled moves, the one with the fewest moves wins, ties
// broken by smaller cluster index. The reordering is stable, so the
// reduced stream is bit-identical between the sequential and the
// deterministic parallel driver at any worker count.

// Visibility declares what a property observes, so reduction never
// prunes a transition the property could see. The zero value observes
// nothing (maximal reduction — sound for deadlock detection, which
// needs no visibility at all).
type Visibility struct {
	// All forces full expansion: the property's observations cannot be
	// bounded statically (opaque predicates, label-counting observers,
	// explicit automata).
	All bool
	// Labels lists interaction labels the property matches on. Moves of
	// a visible interaction are never pruned.
	Labels []string
	// Atoms lists indices of atoms whose location or variables a
	// property predicate reads. No move of a visible atom's cluster is
	// ever pruned, so every predicate change stays on the reduced graph.
	Atoms []int
}

// Union merges two visibility declarations; Verify uses it to combine
// the requirements of all checked properties.
func (v Visibility) Union(o Visibility) Visibility {
	out := Visibility{All: v.All || o.All}
	if out.All {
		return out
	}
	out.Labels = append(append([]string(nil), v.Labels...), o.Labels...)
	out.Atoms = append(append([]int(nil), v.Atoms...), o.Atoms...)
	return out
}

// Expander is the pluggable expansion stage. Implementations must be
// safe to share across drivers and runs; per-worker scratch lives in
// the WorkerExpander instances the factory hands out.
type Expander interface {
	// NewWorkerExpander returns a fresh single-threaded expansion stage
	// for one driver worker. raw mirrors Options.Raw (priority filtering
	// off).
	NewWorkerExpander(sys *core.System, raw bool) WorkerExpander
}

// WorkerExpander computes one state's successor moves. Expand returns
// the full enabled move list (possibly reordered) and the length of the
// ample prefix the driver should explore; ample == len(moves) means
// full expansion. The returned slice is owned by the expander and valid
// until the next Expand call on the same worker.
type WorkerExpander interface {
	Expand(ctx *core.ExploreCtx, st core.State, vec [][]core.Move) (moves []core.Move, ample int, err error)
}

// newWorkerExpander resolves the configured expansion stage: the
// full-expansion default when Options.Expander is nil.
func (o Options) newWorkerExpander(sys *core.System) WorkerExpander {
	if o.Expander != nil {
		return o.Expander.NewWorkerExpander(sys, o.Raw)
	}
	return fullWorker{raw: o.Raw}
}

// fullWorker is the default expansion stage: every enabled move, in
// enabled-set order, no reduction. It reuses ctx.Moves as its buffer,
// exactly as the drivers did before the stage was factored out.
type fullWorker struct{ raw bool }

func (f fullWorker) Expand(ctx *core.ExploreCtx, st core.State, vec [][]core.Move) ([]core.Move, int, error) {
	var moves []core.Move
	var err error
	if f.raw {
		moves = ctx.Deriver.Raw(vec, ctx.Moves[:0])
	} else {
		moves, err = ctx.Deriver.Enabled(vec, st, ctx.Moves[:0])
		if err != nil {
			return nil, 0, err
		}
	}
	ctx.Moves = moves
	return moves, len(moves), nil
}

// AmpleExpander is the ample-set partial-order reducer, bound to one
// validated system and one visibility declaration.
type AmpleExpander struct {
	sys *core.System
	// clusterOK[c]: cluster c may serve as a strict ample set — it is
	// reducible (no priority entanglement) and invisible to the
	// property (no visible interaction, no visible atom).
	clusterOK []bool
	// interCluster[i] caches the cluster of interaction i.
	interCluster []int32
}

// NewAmpleExpander builds the reducer for sys under the given
// visibility. It fails on visibility entries that name unknown
// interactions, and refuses Visibility.All (the caller should simply
// not install an expander — reduction with everything visible is full
// expansion with overhead).
func NewAmpleExpander(sys *core.System, vis Visibility) (*AmpleExpander, error) {
	if vis.All {
		return nil, fmt.Errorf("lts: ample expander with Visibility.All — use full expansion")
	}
	nc := sys.NumClusters()
	a := &AmpleExpander{
		sys:          sys,
		clusterOK:    make([]bool, nc),
		interCluster: make([]int32, len(sys.Interactions)),
	}
	for c := 0; c < nc; c++ {
		a.clusterOK[c] = sys.ClusterReducible(c)
	}
	for i := range sys.Interactions {
		a.interCluster[i] = int32(sys.InteractionCluster(i))
	}
	for _, l := range vis.Labels {
		ii := sys.InteractionIndex(l)
		if ii < 0 {
			return nil, fmt.Errorf("lts: visibility names unknown interaction %q", l)
		}
		a.clusterOK[a.interCluster[ii]] = false
	}
	for _, ai := range vis.Atoms {
		if ai < 0 || ai >= len(sys.Atoms) {
			return nil, fmt.Errorf("lts: visibility names atom index %d out of range", ai)
		}
		a.clusterOK[sys.AtomCluster(ai)] = false
	}
	return a, nil
}

// NewWorkerExpander implements Expander. The worker must expand states
// of the system the AmpleExpander was built for.
func (a *AmpleExpander) NewWorkerExpander(sys *core.System, raw bool) WorkerExpander {
	if sys != a.sys {
		// Cross-system reuse would silently misapply cluster indices;
		// rebuild eligibility for the new system with the same policy.
		fresh := &AmpleExpander{sys: sys}
		fresh.clusterOK = make([]bool, sys.NumClusters())
		for c := range fresh.clusterOK {
			fresh.clusterOK[c] = sys.ClusterReducible(c)
		}
		fresh.interCluster = make([]int32, len(sys.Interactions))
		for i := range sys.Interactions {
			fresh.interCluster[i] = int32(sys.InteractionCluster(i))
		}
		a = fresh
	}
	return &ampleWorker{
		a:      a,
		full:   fullWorker{raw: raw},
		counts: make([]int32, len(a.clusterOK)),
	}
}

// ampleWorker is the per-worker scratch of the reducer.
type ampleWorker struct {
	a    *AmpleExpander
	full fullWorker
	// buf receives the reordered move list (ample prefix first).
	buf []core.Move
	// counts[c] is the number of enabled moves of cluster c at the
	// current state; touched lists the clusters with a nonzero count so
	// resetting is O(touched).
	counts  []int32
	touched []int32
}

func (w *ampleWorker) Expand(ctx *core.ExploreCtx, st core.State, vec [][]core.Move) ([]core.Move, int, error) {
	moves, _, err := w.full.Expand(ctx, st, vec)
	if err != nil || len(moves) <= 1 {
		return moves, len(moves), err
	}
	a := w.a
	for _, t := range w.touched {
		w.counts[t] = 0
	}
	w.touched = w.touched[:0]
	for _, m := range moves {
		c := a.interCluster[m.Interaction]
		if !a.clusterOK[c] {
			continue
		}
		if w.counts[c] == 0 {
			w.touched = append(w.touched, c)
		}
		w.counts[c]++
	}
	// Smallest eligible cluster wins; ties break toward the smaller
	// cluster index for determinism (touched order depends on the move
	// order, which is itself deterministic, but the explicit tie-break
	// makes the choice independent of it).
	best := int32(-1)
	bestN := int32(len(moves))
	for _, c := range w.touched {
		n := w.counts[c]
		if n < bestN || (n == bestN && (best < 0 || c < best)) {
			best, bestN = c, n
		}
	}
	if best < 0 || bestN >= int32(len(moves)) {
		return moves, len(moves), nil
	}
	// Stable partition: ample cluster's moves first, both halves in
	// enabled-set order.
	w.buf = w.buf[:0]
	for _, m := range moves {
		if a.interCluster[m.Interaction] == best {
			w.buf = append(w.buf, m)
		}
	}
	for _, m := range moves {
		if a.interCluster[m.Interaction] != best {
			w.buf = append(w.buf, m)
		}
	}
	return w.buf, int(bestN), nil
}

// ReducibleClusters reports how many clusters the expander may reduce
// with, out of the system total — a quick diagnostic for "why did
// reduction do nothing" (answer: the connector graph is one entangled
// cluster).
func (a *AmpleExpander) ReducibleClusters() (ok, total int) {
	for _, b := range a.clusterOK {
		if b {
			ok++
		}
	}
	return ok, len(a.clusterOK)
}

// VisibleAtomsByName resolves atom names to a Visibility atom list,
// for callers outside the compiler (tests, tools).
func VisibleAtomsByName(sys *core.System, names ...string) (Visibility, error) {
	v := Visibility{}
	for _, n := range names {
		ai := sys.AtomIndex(n)
		if ai < 0 {
			return v, fmt.Errorf("lts: visibility names unknown component %q", n)
		}
		v.Atoms = append(v.Atoms, ai)
	}
	sort.Ints(v.Atoms)
	return v, nil
}

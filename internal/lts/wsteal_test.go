package lts

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"bip/internal/core"
	"bip/models"
)

// The work-stealing driver promises a weaker — but precisely specified —
// contract than the deterministic one: the same state SET, edge set,
// truncation flag, admitted state count and checker verdicts, while
// numbering and event order are scheduling-dependent. These tests pin
// exactly that: LTSs are compared after canonical sorting (states
// ordered by their encoding, edges as sorted triples), verdict booleans
// are compared directly, and every reported counterexample path is
// replayed against the semantics to prove it is a real run.

// canonLTS is a numbering-independent fingerprint of an LTS.
type canonLTS struct {
	states    []string
	edges     []string
	deadlocks []string
	initial   string
	truncated bool
}

func canonicalize(l *LTS) canonLTS {
	sys := l.System()
	keys := make([]string, l.NumStates())
	for i := range keys {
		keys[i] = sys.StateKey(l.State(i))
	}
	c := canonLTS{initial: keys[0], truncated: l.Truncated()}
	c.states = append(c.states, keys...)
	sort.Strings(c.states)
	for i := 0; i < l.NumStates(); i++ {
		for _, e := range l.Edges(i) {
			c.edges = append(c.edges, keys[i]+"|"+e.Label+"|"+keys[e.To])
		}
	}
	sort.Strings(c.edges)
	for _, d := range l.Deadlocks() {
		c.deadlocks = append(c.deadlocks, keys[d])
	}
	sort.Strings(c.deadlocks)
	return c
}

func requireSameCanonical(t *testing.T, name string, want, got *LTS) {
	t.Helper()
	a, b := canonicalize(want), canonicalize(got)
	if a.truncated != b.truncated {
		t.Fatalf("%s: truncated %v != %v", name, a.truncated, b.truncated)
	}
	if a.initial != b.initial {
		t.Fatalf("%s: initial states differ", name)
	}
	if len(a.states) != len(b.states) {
		t.Fatalf("%s: %d states != %d", name, len(a.states), len(b.states))
	}
	for i := range a.states {
		if a.states[i] != b.states[i] {
			t.Fatalf("%s: state sets differ at sorted index %d", name, i)
		}
	}
	if len(a.edges) != len(b.edges) {
		t.Fatalf("%s: %d edges != %d", name, len(a.edges), len(b.edges))
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatalf("%s: edge multisets differ at sorted index %d: %q != %q",
				name, i, a.edges[i], b.edges[i])
		}
	}
	if len(a.deadlocks) != len(b.deadlocks) {
		t.Fatalf("%s: deadlock sets differ: %v vs %v", name, a.deadlocks, b.deadlocks)
	}
	for i := range a.deadlocks {
		if a.deadlocks[i] != b.deadlocks[i] {
			t.Fatalf("%s: deadlock sets differ at %d", name, i)
		}
	}
}

// validateRun replays a reported counterexample path against the
// semantics, tracking the full set of states reachable along the labels
// (interactions may be nondeterministic), and checks that some end
// state satisfies final. This is what makes an Unordered verdict
// trustworthy: whichever witness the schedule produced, it must be a
// real run.
func validateRun(t *testing.T, name string, sys *core.System, raw bool, path []string, final func(core.State) bool) {
	t.Helper()
	cur := map[string]core.State{sys.StateKey(sys.Initial()): sys.Initial()}
	for step, label := range path {
		next := map[string]core.State{}
		for _, st := range cur {
			moves, err := enabledOf(sys, st, raw)
			if err != nil {
				t.Fatalf("%s: step %d: %v", name, step, err)
			}
			for _, m := range moves {
				if sys.Label(m) != label {
					continue
				}
				succ, err := sys.Exec(st, m)
				if err != nil {
					t.Fatalf("%s: step %d: %v", name, step, err)
				}
				next[sys.StateKey(succ)] = succ
			}
		}
		if len(next) == 0 {
			t.Fatalf("%s: path %v infeasible at step %d (%q)", name, path, step, label)
		}
		cur = next
	}
	for _, st := range cur {
		if final(st) {
			return
		}
	}
	t.Fatalf("%s: no end state of path %v satisfies the verdict", name, path)
}

func enabledOf(sys *core.System, st core.State, raw bool) ([]core.Move, error) {
	if raw {
		return sys.EnabledRaw(st)
	}
	return sys.Enabled(st)
}

func wsWorkerCounts() []int {
	out := []int{2, 4, 8}
	if g := runtime.GOMAXPROCS(0); g > 1 && g != 2 && g != 4 && g != 8 {
		out = append(out, g)
	}
	return out
}

// zooCases is the shared model zoo of the unordered differentials.
func zooCases(t *testing.T) []struct {
	name string
	sys  *core.System
	opts Options
} {
	type tc = struct {
		name string
		sys  *core.System
		opts Options
	}
	var cases []tc
	add := func(name string, sys *core.System, err error, opts Options) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, tc{name: name, sys: sys, opts: opts})
	}
	phil, err := models.Philosophers(3)
	add("philosophers-ctl", stripData(t, phil), err, Options{})
	twoPhase, err := models.PhilosophersDeadlocking(3)
	add("philosophers-2p", twoPhase, err, Options{})
	temp, err := models.Temperature(0, 2, 1)
	add("temperature-priorities", temp, err, Options{MaxStates: 10000})
	tempRaw, err := models.Temperature(0, 2, 1)
	add("temperature-raw", tempRaw, err, Options{MaxStates: 10000, Raw: true})
	gcd, err := models.GCD(36, 60)
	add("gcd", gcd, err, Options{})
	gas, err := models.GasStation(2, 3)
	add("gasstation", gas, err, Options{})
	deep, err := models.DeepChain(200)
	add("deep-chain", deep, err, Options{})
	grid, err := models.CounterGrid(4, 4)
	add("counter-grid", grid, err, Options{})
	return cases
}

// TestWorkStealCanonicalMatchesSequential compares the canonically
// sorted materialized LTS of the work-stealing explorer against the
// sequential one across the model zoo and worker counts.
func TestWorkStealCanonicalMatchesSequential(t *testing.T) {
	for _, c := range zooCases(t) {
		seq := explore(t, c.sys, c.opts)
		for _, w := range wsWorkerCounts() {
			opts := c.opts
			opts.Workers = w
			opts.Order = Unordered
			ws := explore(t, c.sys, opts)
			name := fmt.Sprintf("%s/workers=%d", c.name, w)
			if seq.Truncated() {
				// Under truncation the admitted SET is schedule-dependent
				// by contract; the count and the flag are not.
				if ws.NumStates() != seq.NumStates() || !ws.Truncated() {
					t.Fatalf("%s: truncated run admitted %d states (truncated=%v), want %d",
						name, ws.NumStates(), ws.Truncated(), seq.NumStates())
				}
				continue
			}
			requireSameCanonical(t, name, seq, ws)
			if !Bisimilar(seq, ws, nil, nil) {
				t.Fatalf("%s: unordered LTS must be bisimilar to the sequential one", name)
			}
		}
	}
}

// TestWorkStealVerdictsMatchSequential runs every streaming checker on
// both drivers: verdict booleans must coincide, and each Unordered
// counterexample must replay as a real run ending in a state that
// witnesses the verdict.
func TestWorkStealVerdictsMatchSequential(t *testing.T) {
	for _, c := range zooCases(t) {
		l := explore(t, c.sys, c.opts)
		if l.Truncated() {
			// Verdicts over a truncated space depend on which states were
			// admitted; TestWorkStealTruncationAndEarlyExit covers the
			// bounded contract.
			continue
		}
		n := l.NumStates()
		midState, lastState := l.State(n/2), l.State(n-1)
		invPred := func(st core.State) bool { return !st.Equal(midState) }
		reachPred := func(st core.State) bool { return st.Equal(lastState) }
		wantDL := len(l.Deadlocks()) > 0
		wantInvOK, _, _ := l.CheckInvariant(invPred)

		for _, w := range wsWorkerCounts() {
			name := fmt.Sprintf("%s/workers=%d", c.name, w)
			opts := c.opts
			opts.Workers = w
			opts.Order = Unordered

			dl := &DeadlockCheck{}
			if _, err := Stream(c.sys, opts, dl); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if dl.Found != wantDL {
				t.Fatalf("%s: deadlock found=%v, sequential %v", name, dl.Found, wantDL)
			}
			if dl.Found {
				validateRun(t, name+"/deadlock", c.sys, c.opts.Raw, dl.Path, func(st core.State) bool {
					ms, err := enabledOf(c.sys, st, c.opts.Raw)
					return err == nil && len(ms) == 0
				})
			} else if !dl.Exhaustive {
				t.Fatalf("%s: full exploration must be conclusive", name)
			}

			inv := &InvariantCheck{Pred: invPred}
			if _, err := Stream(c.sys, opts, inv); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if inv.Found != !wantInvOK {
				t.Fatalf("%s: invariant found=%v, sequential verdict ok=%v", name, inv.Found, wantInvOK)
			}
			if inv.Found {
				validateRun(t, name+"/invariant", c.sys, c.opts.Raw, inv.Path, func(st core.State) bool {
					return !invPred(st)
				})
			}

			reach := &ReachCheck{Pred: reachPred}
			if _, err := Stream(c.sys, opts, reach); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reach.Found {
				t.Fatalf("%s: reachable state not found", name)
			}
			validateRun(t, name+"/reach", c.sys, c.opts.Raw, reach.Path, reachPred)
		}
	}
}

// TestWorkStealAutomatonVerdicts pins the unordered product-automaton
// mode: the hand-built sequencing observer of automaton_test must
// produce the same Found verdict at every worker count, with a product
// path that both exists and drives the observer to its bad state.
func TestWorkStealAutomatonVerdicts(t *testing.T) {
	sys := chainSystem(t)
	for _, w := range wsWorkerCounts() {
		chk := NewAutomatonCheck(seqObserver())
		stats, err := Stream(sys, Options{Workers: w, Order: Unordered}, chk)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !chk.Found || !stats.Stopped {
			t.Fatalf("workers=%d: want found+stopped, got found=%v stopped=%v", w, chk.Found, stats.Stopped)
		}
		// The product path must drive the observer into a bad state.
		obs := seqObserver()
		q := obs.Step(obs.Init, obs.InitBits, ^uint64(0))
		for _, label := range chk.Path {
			q = obs.Step(q, obs.EvBits(label), ^uint64(0))
		}
		if obs.Bad&(1<<uint(q)) == 0 {
			t.Fatalf("workers=%d: path %v does not reach the bad observer state", w, chk.Path)
		}
		validateRun(t, fmt.Sprintf("workers=%d/automaton", w), sys, false, chk.Path,
			func(core.State) bool { return true })
	}

	// And a clean system: no b-then-c run exists, so the observer must
	// stay quiet under full unordered coverage.
	safe, err := models.Philosophers(2)
	if err != nil {
		t.Fatal(err)
	}
	ctl := stripData(t, safe)
	for _, w := range []int{2, 8} {
		chk := NewAutomatonCheck(seqObserver())
		if _, err := Stream(ctl, Options{Workers: w, Order: Unordered}, chk); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if chk.Found || !chk.Exhaustive {
			t.Fatalf("workers=%d: want quiet conclusive observer, got found=%v exhaustive=%v",
				w, chk.Found, chk.Exhaustive)
		}
	}
}

// TestWorkStealRandomDifferential is the randomized oracle: generated
// systems with data, guards, priorities and bounded spaces must agree
// with the sequential exploration canonically; bounded runs that
// truncate must agree on the admitted count and the flag (the admitted
// SET is schedule-dependent under truncation, by contract).
func TestWorkStealRandomDifferential(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sys := randExploreSystem(t, rng)
		opts := Options{MaxStates: 4000}
		seq := explore(t, sys, opts)
		for _, w := range []int{2, 4, 8} {
			po := opts
			po.Workers = w
			po.Order = Unordered
			ws := explore(t, sys, po)
			name := fmt.Sprintf("seed=%d/workers=%d", seed, w)
			if seq.Truncated() {
				if ws.NumStates() != seq.NumStates() || !ws.Truncated() {
					t.Fatalf("%s: truncated run admitted %d states (truncated=%v), sequential %d",
						name, ws.NumStates(), ws.Truncated(), seq.NumStates())
				}
				continue
			}
			requireSameCanonical(t, name, seq, ws)
		}
	}
}

// TestWorkStealTruncationAndEarlyExit pins the bound and the stop
// protocol: the admitted count under truncation matches the sequential
// driver exactly at every worker count, and a sink's ErrStop ends the
// run with Stopped set and no further events.
func TestWorkStealTruncationAndEarlyExit(t *testing.T) {
	sys, err := models.ProducerConsumer(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxStates: 1500}
	seq := explore(t, sys, opts)
	if !seq.Truncated() {
		t.Fatal("bounded producer/consumer must truncate")
	}
	for _, w := range wsWorkerCounts() {
		po := opts
		po.Workers = w
		po.Order = Unordered
		stats, err := Stream(sys, po, &DeadlockCheck{})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if stats.States != seq.NumStates() || !stats.Truncated {
			t.Fatalf("workers=%d: admitted %d states (truncated=%v), want %d (true)",
				w, stats.States, stats.Truncated, seq.NumStates())
		}
	}

	rings, err := models.PhilosopherRings(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := models.ControlOnly(rings)
	if err != nil {
		t.Fatal(err)
	}
	full := explore(t, ctl, Options{})
	for _, w := range []int{2, 8} {
		stop := &stopAfterSink{limit: 40}
		stats, err := Stream(ctl, Options{Workers: w, Order: Unordered}, stop)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !stats.Stopped {
			t.Fatalf("workers=%d: expected Stopped after sink ErrStop", w)
		}
		if stop.events != stop.atStop {
			t.Fatalf("workers=%d: %d events delivered after the stop", w, stop.events-stop.atStop)
		}
		if stats.States >= full.NumStates()/2 {
			t.Fatalf("workers=%d: early exit admitted %d of %d states", w, stats.States, full.NumStates())
		}
	}
}

// stopAfterSink counts every event and stops after `limit` states; any
// event after its ErrStop is a protocol violation.
type stopAfterSink struct {
	limit   int
	states  int
	events  int
	atStop  int
	stopped bool
}

func (s *stopAfterSink) OnState(int, core.State, Discovery) error {
	s.events++
	s.states++
	if s.states >= s.limit && !s.stopped {
		s.stopped = true
		s.atStop = s.events
		return ErrStop
	}
	return nil
}
func (s *stopAfterSink) OnEdge(int, int, string) error { s.events++; return nil }
func (s *stopAfterSink) OnExpanded(int, int) error     { s.events++; return nil }
func (s *stopAfterSink) Done(bool) error               { s.events++; return nil }

// TestWorkStealContended explores a space whose every interaction
// touches the same shared component, at 8 workers, so admission,
// stealing and sink flushing contend maximally. Run under -race in CI,
// this is the data-race regression test for the work-stealing driver.
func TestWorkStealContended(t *testing.T) {
	sys, err := models.ProducerConsumer(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MaxStates: 3000}
	seq := explore(t, sys, opts)
	po := opts
	po.Workers = 8
	po.Order = Unordered
	ws := explore(t, sys, po)
	if ws.NumStates() != seq.NumStates() || !ws.Truncated() {
		t.Fatalf("contended: admitted %d states (truncated=%v), want %d",
			ws.NumStates(), ws.Truncated(), seq.NumStates())
	}
	if _, err := ws.DeadlockFree(); err == nil {
		t.Fatal("DeadlockFree on a truncated unordered LTS must refuse to answer")
	}
}

package lts

import (
	"strings"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/models"
)

func explore(t *testing.T, sys *core.System, opts Options) *LTS {
	t.Helper()
	l, err := Explore(sys, opts)
	if err != nil {
		t.Fatalf("Explore(%s): %v", sys.Name, err)
	}
	return l
}

func TestPhilosophersDeadlockFree(t *testing.T) {
	sys, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	// Bound meals to keep the space finite: replace is unnecessary — the
	// meals counter grows without bound, so explore with location-only
	// abstraction is infeasible. Instead, use the structure-only variant
	// by stripping the counter: rebuild philosophers without data.
	l := explore(t, stripData(t, sys), Options{})
	if free, err := l.DeadlockFree(); err != nil || !free {
		t.Fatalf("multiparty philosophers should be deadlock-free: %v, %v", free, err)
	}
	if l.NumStates() == 0 || l.NumTransitions() == 0 {
		t.Fatal("empty exploration")
	}
}

func TestPhilosophersTwoPhaseDeadlocks(t *testing.T) {
	sys, err := models.PhilosophersDeadlocking(3)
	if err != nil {
		t.Fatal(err)
	}
	l := explore(t, sys, Options{})
	dls := l.Deadlocks()
	if len(dls) == 0 {
		t.Fatal("two-phase philosophers must reach the circular-wait deadlock")
	}
	// The deadlock state has every philosopher holding their left fork.
	st := l.State(dls[0])
	for i, loc := range st.Locs {
		if sys.Atoms[i].Name[:4] == "phil" && loc != "hasLeft" {
			t.Fatalf("deadlock state: %s at %q, want hasLeft", sys.Atoms[i].Name, loc)
		}
	}
	// The path must replay to that state.
	path := l.PathTo(dls[0])
	if len(path) != 3 {
		t.Fatalf("deadlock path = %v, want 3 getL steps", path)
	}
	for _, lab := range path {
		if !strings.HasPrefix(lab, "getL") {
			t.Fatalf("deadlock path = %v, want only getL steps", path)
		}
	}
}

// stripData rebuilds a system with all variables and data removed,
// keeping only the control structure. Used to make counter-bearing models
// finite-state for exploration.
func stripData(t *testing.T, sys *core.System) *core.System {
	t.Helper()
	b := core.NewSystem(sys.Name + "-ctl")
	for _, a := range sys.Atoms {
		nb := behavior.NewBuilder(a.Name).Location(a.Locations...).Initial(a.Initial)
		for _, p := range a.Ports {
			nb.Port(p.Name)
		}
		for _, tr := range a.Transitions {
			nb.Transition(tr.From, tr.Port, tr.To)
		}
		atom, err := nb.Build()
		if err != nil {
			t.Fatalf("stripData: %v", err)
		}
		b.Add(atom)
	}
	for _, in := range sys.Interactions {
		b.Connect(in.Name, in.Ports...)
	}
	out, err := b.Build()
	if err != nil {
		t.Fatalf("stripData: %v", err)
	}
	return out
}

func TestTruncation(t *testing.T) {
	sys, err := models.ProducerConsumer(1000)
	if err != nil {
		t.Fatal(err)
	}
	l := explore(t, sys, Options{MaxStates: 50})
	if !l.Truncated() {
		t.Fatal("exploration of a large space with MaxStates=50 must truncate")
	}
	if _, err := l.DeadlockFree(); err == nil {
		t.Fatal("DeadlockFree on truncated LTS must refuse to answer")
	}
}

func TestElevatorRequirement(t *testing.T) {
	safe, err := models.Elevator(3)
	if err != nil {
		t.Fatal(err)
	}
	l := explore(t, safe, Options{})
	ok, _, _ := l.CheckInvariant(func(st core.State) bool {
		return !models.MovingWithDoorOpen(safe)(st)
	})
	if !ok {
		t.Fatal("safe elevator must never move with the door open")
	}

	unsafe, err := models.UnsafeElevator(3)
	if err != nil {
		t.Fatal(err)
	}
	lu := explore(t, unsafe, Options{})
	ok, bad, path := lu.CheckInvariant(func(st core.State) bool {
		return !models.MovingWithDoorOpen(unsafe)(st)
	})
	if ok {
		t.Fatal("unsafe elevator must violate the requirement")
	}
	if len(path) == 0 {
		t.Fatalf("violation at state %d should have a non-empty path", bad)
	}
}

func TestGCDInvariant(t *testing.T) {
	sys, err := models.GCD(36, 60)
	if err != nil {
		t.Fatal(err)
	}
	want := models.GCDInt(36, 60)
	gi := sys.AtomIndex("gcd")
	l := explore(t, sys, Options{})
	ok, _, _ := l.CheckInvariant(func(st core.State) bool {
		x, _ := st.Vars[gi].Get("x")
		y, _ := st.Vars[gi].Get("y")
		xi, _ := x.Int()
		yi, _ := y.Int()
		return models.GCDInt(xi, yi) == want
	})
	if !ok {
		t.Fatal("Fig 6.1 invariant GCD(x,y)=GCD(x0,y0) must hold on every reachable state")
	}
	// Termination: the final state has x == y == gcd.
	fin, found := l.FindState(func(st core.State) bool { return st.Locs[gi] == "done" })
	if !found {
		t.Fatal("GCD program should reach done")
	}
	x, _ := l.State(fin).Vars[gi].Get("x")
	if xi, _ := x.Int(); xi != want {
		t.Fatalf("final x = %d, want gcd %d", xi, want)
	}
}

func TestPriorityVsRawExploration(t *testing.T) {
	sys, err := models.Temperature(0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := explore(t, sys, Options{MaxStates: 10000})
	lr := explore(t, sys, Options{MaxStates: 10000, Raw: true})
	if lr.NumTransitions() < l.NumTransitions() {
		t.Fatalf("raw exploration (%d transitions) cannot have fewer than prioritized (%d)",
			lr.NumTransitions(), l.NumTransitions())
	}
}

func TestBisimilarIdentical(t *testing.T) {
	sys, err := models.Philosophers(2)
	if err != nil {
		t.Fatal(err)
	}
	s := stripData(t, sys)
	l1 := explore(t, s, Options{})
	l2 := explore(t, s, Options{})
	if !Bisimilar(l1, l2, nil, nil) {
		t.Fatal("a system must be bisimilar to itself")
	}
}

func TestBisimilarDistinguishes(t *testing.T) {
	// a: can always fire p. b: fires p once then stops.
	always := behavior.NewBuilder("x").Location("s").Port("p").
		Transition("s", "p", "s").MustBuild()
	once := behavior.NewBuilder("x").Location("s", "t").Port("p").
		Transition("s", "p", "t").MustBuild()
	sa := core.NewSystem("a").Add(always).Singleton("x", "p").MustBuild()
	sb := core.NewSystem("b").Add(once).Singleton("x", "p").MustBuild()
	la := explore(t, sa, Options{})
	lb := explore(t, sb, Options{})
	if Bisimilar(la, lb, nil, nil) {
		t.Fatal("loop and one-shot must not be bisimilar")
	}
}

func TestBisimilarUpToRelabeling(t *testing.T) {
	// E13 core case: a nested composite is bisimilar to its flat
	// counterpart modulo the path prefix on interaction names.
	ping := behavior.NewBuilder("ping").
		Location("a", "b").
		Port("hit").Port("back").
		Transition("a", "hit", "b").
		Transition("b", "back", "a").
		MustBuild()

	inner := core.NewComposite("inner").
		Atom("l", ping).
		Atom("r", ping).
		Connect("hit", core.P("l", "hit"), core.P("r", "hit")).
		Connect("back", core.P("l", "back"), core.P("r", "back")).
		Build()
	nested, err := core.Flatten(core.NewComposite("sys").Sub(inner).Build())
	if err != nil {
		t.Fatal(err)
	}
	flat := core.NewSystem("flat").
		AddAs("l", ping).AddAs("r", ping).
		Connect("hit", core.P("l", "hit"), core.P("r", "hit")).
		Connect("back", core.P("l", "back"), core.P("r", "back")).
		MustBuild()

	ln := explore(t, nested, Options{})
	lf := explore(t, flat, Options{})
	if Bisimilar(ln, lf, nil, nil) {
		t.Fatal("labels differ, plain bisimulation should fail (sanity)")
	}
	strip := func(label string) (string, bool) {
		return strings.TrimPrefix(label, "inner/"), true
	}
	if !Bisimilar(ln, lf, strip, nil) {
		t.Fatal("nested and flat systems must be bisimilar up to path prefixes")
	}
}

func TestObsTraceInclusion(t *testing.T) {
	// spec: a single visible step v. impl: silent step s then visible v.
	spec := behavior.NewBuilder("x").Location("s", "t").Port("v").
		Transition("s", "v", "t").MustBuild()
	impl := behavior.NewBuilder("x").Location("s", "m", "t").Port("h").Port("v").
		Transition("s", "h", "m").
		Transition("m", "v", "t").MustBuild()
	ss := core.NewSystem("spec").Add(spec).Singleton("x", "v").MustBuild()
	si := core.NewSystem("impl").Add(impl).Singleton("x", "h").Singleton("x", "v").MustBuild()
	ls := explore(t, ss, Options{})
	li := explore(t, si, Options{})

	if ok, _ := ObsTraceIncluded(li, ls, Hide("x.h"), nil); !ok {
		t.Fatal("impl traces (h hidden) must be included in spec traces")
	}
	if !ObsTraceEquivalent(li, ls, Hide("x.h"), nil) {
		t.Fatal("impl and spec must be observationally trace-equivalent")
	}
	// Without hiding, inclusion fails and yields the distinguishing
	// trace [x.h].
	ok, trace := ObsTraceIncluded(li, ls, nil, nil)
	if ok {
		t.Fatal("unhidden impl must not be included in spec")
	}
	if len(trace) != 1 || trace[0] != "x.h" {
		t.Fatalf("distinguishing trace = %v, want [x.h]", trace)
	}
}

func TestObsTraceInclusionStrict(t *testing.T) {
	// spec allows a|b, impl only a: impl ⊆ spec but not conversely.
	two := behavior.NewBuilder("x").Location("s", "t").Port("a").Port("b").
		Transition("s", "a", "t").
		Transition("s", "b", "t").MustBuild()
	one := behavior.NewBuilder("x").Location("s", "t").Port("a").Port("b").
		Transition("s", "a", "t").MustBuild()
	sspec := core.NewSystem("spec").Add(two).Singleton("x", "a").Singleton("x", "b").MustBuild()
	simpl := core.NewSystem("impl").Add(one).Singleton("x", "a").Singleton("x", "b").MustBuild()
	ls := explore(t, sspec, Options{})
	li := explore(t, simpl, Options{})
	if ok, _ := ObsTraceIncluded(li, ls, nil, nil); !ok {
		t.Fatal("impl ⊆ spec must hold")
	}
	ok, trace := ObsTraceIncluded(ls, li, nil, nil)
	if ok {
		t.Fatal("spec ⊄ impl")
	}
	if len(trace) != 1 || trace[0] != "x.b" {
		t.Fatalf("distinguishing trace = %v, want [x.b]", trace)
	}
}

func TestMapLabelsAndLabelSet(t *testing.T) {
	r := MapLabels(map[string]string{"a": "b", "c": ""})
	if l, ok := r("a"); !ok || l != "b" {
		t.Fatalf("MapLabels(a) = %q,%v", l, ok)
	}
	if _, ok := r("c"); ok {
		t.Fatal("MapLabels(c) should be silent")
	}
	if l, ok := r("z"); !ok || l != "z" {
		t.Fatalf("MapLabels(z) = %q,%v", l, ok)
	}

	sys, err := models.Philosophers(2)
	if err != nil {
		t.Fatal(err)
	}
	l := explore(t, stripData(t, sys), Options{})
	labels := l.LabelSet()
	if len(labels) != 4 { // eat0, eat1, put0, put1
		t.Fatalf("LabelSet = %v", labels)
	}
}

func TestProducerConsumerBufferInvariant(t *testing.T) {
	sys, err := models.ProducerConsumer(2)
	if err != nil {
		t.Fatal(err)
	}
	// The producer/consumer counters grow unboundedly; bound exploration
	// and check the buffer occupancy invariant on the explored prefix.
	l := explore(t, sys, Options{MaxStates: 2000})
	ok, bad, _ := l.CheckInvariant(func(st core.State) bool {
		return sys.CheckInvariants(st) == nil
	})
	if !ok {
		t.Fatalf("buffer invariant violated at state %d", bad)
	}
}

package lts

import (
	"fmt"
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
)

// chainSystem builds a single-atom system whose global states mirror
// the atom's locations, with one singleton interaction per port:
//
//	L0 --a--> L1 --b--> L0 (cycle),  L0 --c--> L2 (sink)
//
// The b edge is a back edge to the already-expanded L0, which is what
// the product propagation's worklist exists for.
func chainSystem(t *testing.T) *core.System {
	t.Helper()
	a := behavior.NewBuilder("m").
		Location("L0", "L1", "L2").
		Port("pa").Port("pb").Port("pc").
		Transition("L0", "pa", "L1").
		Transition("L1", "pb", "L0").
		Transition("L0", "pc", "L2").
		MustBuild()
	sys, err := core.NewSystem("chain").
		Add(a).
		Connect("a", core.P("m", "pa")).
		Connect("b", core.P("m", "pb")).
		Connect("c", core.P("m", "pc")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// seqObserver is a hand-built 3-state observer: q0 --b--> q1 --c--> bad.
// A violation requires the run to see b and then c — on chainSystem the
// only such run is [a b c], even though c's BFS-tree path is just [c].
func seqObserver() *Observer {
	return &Observer{
		NumStates: 3,
		Init:      0,
		Bad:       1 << 2,
		To:        []int32{1, 2},
		ByState:   [][]int32{{0}, {1}, nil},
		Preds:     make([]func(*core.State) bool, 2),
		LabelBits: map[string]uint64{"a": 0, "b": 1 << 0, "c": 1 << 1},
	}
}

// TestAutomatonBackEdgePropagation pins the worklist: the armed
// observer state reaches the expanded initial state through the b back
// edge and must be re-propagated through its (already emitted) edges to
// find the bad pair — and the reported path must be the product path
// [a b c], not the violating state's BFS-tree path [c].
func TestAutomatonBackEdgePropagation(t *testing.T) {
	sys := chainSystem(t)
	for _, w := range []int{1, 4} {
		chk := NewAutomatonCheck(seqObserver())
		stats, err := Stream(sys, Options{Workers: w}, chk)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !chk.Found {
			t.Fatalf("workers=%d: violation not found", w)
		}
		if !stats.Stopped {
			t.Fatalf("workers=%d: expected early stop", w)
		}
		// BFS numbering: L0=0, L1=1 (a), L2=2 (c).
		if chk.State != 2 {
			t.Fatalf("workers=%d: violating state %d, want 2", w, chk.State)
		}
		if !samePath(chk.Path, []string{"a", "b", "c"}) {
			t.Fatalf("workers=%d: path %v, want [a b c]", w, chk.Path)
		}
	}
}

// TestAutomatonHoldsExhaustive pins the conclusive-absence verdict: an
// observer that never fires leaves Found false and Exhaustive true on a
// fully covered space.
func TestAutomatonHoldsExhaustive(t *testing.T) {
	sys := chainSystem(t)
	obs := seqObserver()
	obs.LabelBits["b"] = 0 // never arm: the bad pair becomes unreachable
	chk := NewAutomatonCheck(obs)
	if _, err := Stream(sys, Options{}, chk); err != nil {
		t.Fatal(err)
	}
	if chk.Found {
		t.Fatalf("unexpected violation at %d via %v", chk.State, chk.Path)
	}
	if !chk.Exhaustive {
		t.Fatal("full coverage must make the absence conclusive")
	}
}

// TestAutomatonTruncationInconclusive pins the bound interaction: a
// truncated exploration leaves a non-violated automaton property
// inconclusive (Exhaustive false).
func TestAutomatonTruncationInconclusive(t *testing.T) {
	sys := chainSystem(t)
	obs := seqObserver()
	obs.LabelBits["c"] = 0 // the property holds; only coverage matters
	chk := NewAutomatonCheck(obs)
	stats, err := Stream(sys, Options{MaxStates: 2}, chk)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Truncated {
		t.Fatal("expected truncation at MaxStates=2")
	}
	if chk.Found || chk.Exhaustive {
		t.Fatalf("truncated run must be inconclusive (found=%v exhaustive=%v)", chk.Found, chk.Exhaustive)
	}
}

// TestAutomatonInitialStateViolation pins the initial observation: a
// rule accepting the initial pseudo-event with a holding predicate
// settles at state 0 with an empty path.
func TestAutomatonInitialStateViolation(t *testing.T) {
	sys := chainSystem(t)
	atL0 := func(st *core.State) bool { return st.Locs[0] == "L0" }
	obs := &Observer{
		NumStates: 2,
		Init:      0,
		Bad:       1 << 1,
		To:        []int32{1},
		ByState:   [][]int32{{0}, nil},
		Preds:     []func(*core.State) bool{atL0},
		LabelBits: map[string]uint64{"a": 1, "b": 1, "c": 1},
		AnyBits:   1,
		InitBits:  1,
	}
	chk := NewAutomatonCheck(obs)
	if _, err := Stream(sys, Options{}, chk); err != nil {
		t.Fatal(err)
	}
	if !chk.Found || chk.State != 0 || len(chk.Path) != 0 {
		t.Fatalf("want violation at initial state with empty path, got found=%v state=%d path=%v",
			chk.Found, chk.State, chk.Path)
	}
}

// TestAutomatonSelfLoopPropagation covers observer progress on a
// self-loop edge: the state's own edge must see bits gained during its
// expansion (handled by draining at OnExpanded, when the edge list is
// complete).
func TestAutomatonSelfLoopPropagation(t *testing.T) {
	a := behavior.NewBuilder("m").
		Location("L0").
		Port("pa").
		Transition("L0", "pa", "L0").
		MustBuild()
	sys, err := core.NewSystem("loop").
		Add(a).
		Connect("a", core.P("m", "pa")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// q0 --a--> q1 --a--> bad: needs two a's, i.e. the self-loop edge
	// traversed with the q1 bit that the same edge produced.
	obs := &Observer{
		NumStates: 3,
		Init:      0,
		Bad:       1 << 2,
		To:        []int32{1, 2},
		ByState:   [][]int32{{0}, {1}, nil},
		Preds:     make([]func(*core.State) bool, 2),
		LabelBits: map[string]uint64{"a": 3},
	}
	chk := NewAutomatonCheck(obs)
	if _, err := Stream(sys, Options{}, chk); err != nil {
		t.Fatal(err)
	}
	if !chk.Found || chk.State != 0 {
		t.Fatalf("want violation at state 0, got found=%v state=%d", chk.Found, chk.State)
	}
	if !samePath(chk.Path, []string{"a", "a"}) {
		t.Fatalf("path %v, want [a a]", chk.Path)
	}
}

// TestAutomatonWorkerDeterminism runs an armed observer over a wider
// space (three interleaved chain copies) and pins bit-identical
// verdicts across worker counts.
func TestAutomatonWorkerDeterminism(t *testing.T) {
	b := core.NewSystem("chains")
	atom := behavior.NewBuilder("m").
		Location("L0", "L1", "L2").
		Port("pa").Port("pb").Port("pc").
		Transition("L0", "pa", "L1").
		Transition("L1", "pb", "L0").
		Transition("L0", "pc", "L2").
		MustBuild()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("m%d", i)
		b.AddAs(name, atom)
		b.Connect(fmt.Sprintf("a%d", i), core.P(name, "pa"))
		b.Connect(fmt.Sprintf("b%d", i), core.P(name, "pb"))
		b.Connect(fmt.Sprintf("c%d", i), core.P(name, "pc"))
	}
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mkObs := func() *Observer {
		return &Observer{
			NumStates: 3,
			Init:      0,
			Bad:       1 << 2,
			To:        []int32{1, 2},
			ByState:   [][]int32{{0}, {1}, nil},
			Preds:     make([]func(*core.State) bool, 2),
			LabelBits: map[string]uint64{
				"a0": 0, "b0": 1 << 0, "c0": 1 << 1,
				"a1": 0, "b1": 0, "c1": 0,
				"a2": 0, "b2": 0, "c2": 0,
			},
		}
	}
	ref := NewAutomatonCheck(mkObs())
	if _, err := Stream(sys, Options{}, ref); err != nil {
		t.Fatal(err)
	}
	if !ref.Found {
		t.Fatal("reference run must find the violation")
	}
	for _, w := range []int{2, 4, 8} {
		chk := NewAutomatonCheck(mkObs())
		if _, err := Stream(sys, Options{Workers: w}, chk); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if chk.Found != ref.Found || chk.State != ref.State || !samePath(chk.Path, ref.Path) {
			t.Fatalf("workers=%d: verdict (%v,%d,%v) != sequential (%v,%d,%v)",
				w, chk.Found, chk.State, chk.Path, ref.Found, ref.State, ref.Path)
		}
	}
}

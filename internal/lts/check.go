package lts

import (
	"errors"

	"bip/internal/core"
)

// This file implements the on-the-fly property checkers: composable
// Sinks that verify a property while the state space is being explored,
// early-exit (ErrStop) on the first violation, and report the same
// verdicts — state ids and counterexample paths included — as the
// corresponding analyses on the materialized LTS, which the differential
// tests in stream_test.go pin at several worker counts.
//
// Checkers retain O(frontier) memory: a counterexample path is captured
// from the Discovery handle of the violating state (the frontier-
// resident BFS tree), never from a stored state table.

// Verdict is the outcome block shared by the on-the-fly checkers; each
// checker embeds it, so the fields read the same on all of them.
type Verdict struct {
	// Found reports a definite hit — a deadlock, a violating state, a
	// reached target; State and Path locate it.
	Found bool
	State int
	Path  []string
	// Exhaustive reports that the full state space was covered, making
	// the absence of a hit conclusive. It stays false after an early
	// stop or a truncated exploration.
	Exhaustive bool
}

// settle records the hit and stops the exploration.
func (v *Verdict) settle(id int, d Discovery) error {
	v.Found = true
	v.State = id
	v.Path = d.Path()
	return ErrStop
}

// Done implements the Sink finalization shared by the checkers.
func (v *Verdict) Done(truncated bool) error {
	v.Exhaustive = !truncated
	return nil
}

// DeadlockCheck detects reachable deadlocks on the fly. A state is a
// deadlock when it has no enabled move; the check uses OnExpanded's move
// count, so the verdict is exact even when the MaxStates bound truncated
// the edge stream. The first deadlock in exploration order is reported —
// the same state Deadlocks() lists first on the materialized LTS.
type DeadlockCheck struct {
	Verdict

	window    discWindow
	unordered bool
	pending   map[int]Discovery
}

var (
	_ Sink      = (*DeadlockCheck)(nil)
	_ OrderSink = (*DeadlockCheck)(nil)
)

// SetStreamOrder implements OrderSink: an unordered stream delivers
// OnState/OnExpanded in arbitrary id order, so the frontier FIFO is
// replaced by an id-keyed pending map.
func (c *DeadlockCheck) SetStreamOrder(o Order) {
	c.unordered = o == Unordered
}

// OnState implements Sink: it parks the state's Discovery until the
// state is expanded.
func (c *DeadlockCheck) OnState(id int, st core.State, d Discovery) error {
	if c.unordered {
		if c.pending == nil {
			c.pending = make(map[int]Discovery)
		}
		c.pending[id] = d
		return nil
	}
	c.window.push(d)
	return nil
}

// OnEdge implements Sink.
func (c *DeadlockCheck) OnEdge(int, int, string) error { return nil }

// OnExpanded implements Sink: a state expanded with zero moves is a
// deadlock.
func (c *DeadlockCheck) OnExpanded(id, moves int) error {
	var d Discovery
	if c.unordered {
		d = c.pending[id]
		delete(c.pending, id)
	} else {
		d = c.window.pop()
	}
	if moves == 0 {
		return c.settle(id, d)
	}
	return nil
}

// InvariantCheck verifies that Pred holds on every reachable state,
// reporting the first violating state in exploration order with its
// counterexample path — the verdict CheckInvariant computes on the
// materialized LTS.
type InvariantCheck struct {
	// Pred is the state predicate that must hold everywhere.
	Pred func(core.State) bool

	Verdict
}

var _ Sink = (*InvariantCheck)(nil)

// OnState implements Sink.
func (c *InvariantCheck) OnState(id int, st core.State, d Discovery) error {
	if !c.Pred(st) {
		return c.settle(id, d)
	}
	return nil
}

// OnEdge implements Sink.
func (c *InvariantCheck) OnEdge(int, int, string) error { return nil }

// OnExpanded implements Sink.
func (c *InvariantCheck) OnExpanded(int, int) error { return nil }

// ReachCheck searches for a state satisfying Pred (a bad-state or target
// query), reporting the first hit in exploration order with its witness
// path — the verdict FindState+PathTo compute on the materialized LTS.
// With Found false and Exhaustive true the target is proved unreachable.
type ReachCheck struct {
	// Pred is the target predicate.
	Pred func(core.State) bool

	Verdict
}

var _ Sink = (*ReachCheck)(nil)

// OnState implements Sink.
func (c *ReachCheck) OnState(id int, st core.State, d Discovery) error {
	if c.Pred(st) {
		return c.settle(id, d)
	}
	return nil
}

// OnEdge implements Sink.
func (c *ReachCheck) OnEdge(int, int, string) error { return nil }

// OnExpanded implements Sink.
func (c *ReachCheck) OnExpanded(int, int) error { return nil }

// Multi fans the event stream out to several sinks so one exploration
// answers many queries. A child returning ErrStop is retired (its
// verdict is settled) while the others keep consuming; Multi itself
// stops the exploration once every child has retired. Any other child
// error aborts immediately.
type Multi struct {
	sinks   []Sink
	stopped []bool
	active  int
}

var (
	_ Sink      = (*Multi)(nil)
	_ OrderSink = (*Multi)(nil)
)

// NewMulti combines sinks into one.
func NewMulti(sinks ...Sink) *Multi {
	return &Multi{
		sinks:   sinks,
		stopped: make([]bool, len(sinks)),
		active:  len(sinks),
	}
}

// SetStreamOrder implements OrderSink by forwarding the announcement to
// every order-aware child.
func (m *Multi) SetStreamOrder(o Order) {
	for _, s := range m.sinks {
		announceOrder(s, o)
	}
}

// forward delivers one event to every active child.
func (m *Multi) forward(f func(Sink) error) error {
	if m.active == 0 {
		return ErrStop
	}
	for i, s := range m.sinks {
		if m.stopped[i] {
			continue
		}
		if err := f(s); err != nil {
			if !errors.Is(err, ErrStop) {
				return err
			}
			m.stopped[i] = true
			m.active--
			if m.active == 0 {
				return ErrStop
			}
		}
	}
	return nil
}

// OnState implements Sink.
func (m *Multi) OnState(id int, st core.State, d Discovery) error {
	return m.forward(func(s Sink) error { return s.OnState(id, st, d) })
}

// OnEdge implements Sink.
func (m *Multi) OnEdge(from, to int, label string) error {
	return m.forward(func(s Sink) error { return s.OnEdge(from, to, label) })
}

// OnExpanded implements Sink.
func (m *Multi) OnExpanded(id, moves int) error {
	return m.forward(func(s Sink) error { return s.OnExpanded(id, moves) })
}

// Done implements Sink: it is delivered to the children that ran to the
// end (retired children settled their verdicts when they stopped).
func (m *Multi) Done(truncated bool) error {
	for i, s := range m.sinks {
		if m.stopped[i] {
			continue
		}
		if err := s.Done(truncated); err != nil && !errors.Is(err, ErrStop) {
			return err
		}
	}
	return nil
}

// discWindow is the frontier-aligned FIFO of Discovery handles: states
// are discovered and expanded in the same (id) order, so a push per
// OnState and a pop per OnExpanded keeps exactly the frontier's handles
// live. The dead prefix is compacted away once it dominates the slice.
type discWindow struct {
	d    []Discovery
	head int
}

func (w *discWindow) push(d Discovery) { w.d = append(w.d, d) }

func (w *discWindow) pop() Discovery {
	v := w.d[w.head]
	w.d[w.head] = Discovery{}
	w.head++
	if w.head > 64 && w.head*2 >= len(w.d) {
		n := copy(w.d, w.d[w.head:])
		w.d = w.d[:n]
		w.head = 0
	}
	return v
}

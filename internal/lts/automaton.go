package lts

import (
	"math/bits"

	"bip/internal/core"
)

// This file implements the observer-automaton (safety-temporal) checker:
// a Sink that decides, on the fly, whether any reachable path of the
// system drives a deterministic observer automaton into a bad state —
// the automaton-sink form the property algebra in bip/prop compiles to.
//
// The checker rides the same deterministic event stream as the other
// checkers, so one exploration answers automaton properties alongside
// deadlock/invariant/reach queries, and verdicts are worker-count
// independent. Unlike the state-predicate checkers it cannot run in
// O(frontier): a temporal property is a property of paths, and a system
// state reached along two different histories can carry two different
// observer states, so the checker computes product reachability — the
// set of (system state, observer state) pairs — incrementally over the
// stream. What it retains per visited state is a handful of 64-bit
// words (observer-state bitsets and pre-evaluated predicate bits) and
// per edge a compact record (target id, rule bitset, shared label
// string); materialized states are still released with the frontier.
// That is O(V+E) machine words against the materialized LTS's O(V)
// full states plus O(E) edges plus the BFS tree, and early exit on the
// first violation still skips the space behind it.

// Observer is a compiled deterministic observer automaton over the
// exploration event stream. It observes the run as a sequence of state
// occurrences: first the initial state (the "initial pseudo-event"),
// then one (interaction label, target state) observation per transition.
// At each observation the observer takes the first rule of its current
// state whose event matcher accepts the label and whose state predicate
// holds on the observed state (first match wins — rule order makes the
// automaton deterministic even with overlapping guards); with no match
// it stays put. Reaching a Bad state is the violation.
//
// Rules are flattened into one global list so that a label resolves to
// a single bitset of matching rules (LabelBits) and a state resolves to
// a single bitset of holding predicates (PredBits) — Step is then a few
// word operations per observation with no name resolution. Observers
// are built by bip/prop's compiler; the limits (≤64 observer states,
// ≤64 rules) are enforced there.
type Observer struct {
	// NumStates is the number of observer states; observer-state bitsets
	// are uint64s, so it is at most 64.
	NumStates int
	// Init is the observer state before the initial observation.
	Init int
	// Bad is the bitset of violation states.
	Bad uint64
	// To is the target observer state of each global rule.
	To []int32
	// ByState lists each observer state's rule indices in priority
	// order.
	ByState [][]int32
	// Preds holds each rule's state predicate; nil means the rule is
	// unconditional. Predicates are slot-compiled closures over the
	// materialized state — they are evaluated once per admitted state
	// (PredBits), while the state is still materialized.
	Preds []func(*core.State) bool
	// LabelBits maps each interaction label to the bitset of rules whose
	// event matcher accepts it.
	LabelBits map[string]uint64
	// AnyBits is the rule bitset for labels missing from LabelBits (an
	// alphabet-closed stream never produces one; the fallback keeps the
	// checker total): exactly the rules that match every label.
	AnyBits uint64
	// InitBits is the bitset of rules that accept the initial
	// pseudo-event (the observation of the initial state, before any
	// interaction fired).
	InitBits uint64
}

// Step advances the observer from state q on an observation whose label
// matched evBits and whose state satisfied predBits, returning the next
// observer state (q itself when no rule matches).
func (o *Observer) Step(q int, evBits, predBits uint64) int {
	both := evBits & predBits
	for _, ri := range o.ByState[q] {
		if both&(1<<uint(ri)) != 0 {
			return int(o.To[ri])
		}
	}
	return q
}

// PredBits evaluates every rule predicate at st and returns the bitset
// of rules whose predicate holds (unconditional rules always hold).
func (o *Observer) PredBits(st *core.State) uint64 {
	var b uint64
	for i, p := range o.Preds {
		if p == nil || p(st) {
			b |= 1 << uint(i)
		}
	}
	return b
}

// EvBits returns the rule bitset matching an interaction label.
func (o *Observer) EvBits(label string) uint64 {
	if b, ok := o.LabelBits[label]; ok {
		return b
	}
	return o.AnyBits
}

// obsCell is the checker's per-system-state record: the observer states
// known to be reachable at the state, the subset already propagated
// through its outgoing edges, and the state's pre-evaluated predicate
// bits (the state itself is not retained).
type obsCell struct {
	obs  uint64
	done uint64
	pred uint64
}

// aEdge is one recorded edge of the product propagation graph. The
// label string is shared with the system's interaction table, so the
// record costs three words.
type aEdge struct {
	to     int32
	evBits uint64
	label  string
}

// aParent is the product-BFS-tree edge of a (system state, observer
// state) pair: the pair that first produced it and the interaction
// label of that step. The chain back to the initial pair is the
// counterexample path.
type aParent struct {
	state int32
	obs   int8
	label string
}

// uaEdge is one recorded edge of the unordered propagation graph: the
// per-source edge lists are intrusive linked lists (heads/next) because
// an unordered stream interleaves sources arbitrarily, so a flat
// offsets table cannot be built. Four words per edge.
type uaEdge struct {
	to     int32
	next   int32 // next edge of the same source; -1 ends the list
	evBits uint64
	label  string
}

// AutomatonCheck verifies an Observer property on the fly: it computes
// the reachable (system state, observer state) pairs incrementally over
// the event stream and settles with a counterexample path as soon as a
// pair with a bad observer state appears. Construct with
// NewAutomatonCheck. The verdict — the violating system state in
// propagation order and the product path to it — is deterministic and
// worker-count independent because the event stream is.
type AutomatonCheck struct {
	// Obs is the compiled observer; see bip/prop for the algebra that
	// builds one.
	Obs *Observer

	Verdict

	cells   []obsCell
	edges   []aEdge
	offsets []int32 // offsets[i]..offsets[i+1] bound state i's edges
	queue   []int32 // FIFO worklist of states with unpropagated bits
	parents map[uint64]aParent
	// expanded is the count of states whose edge lists are complete;
	// OnExpanded arrives in increasing id order, so ids < expanded are
	// safe to propagate through.
	expanded int

	// Unordered-stream mode (SetStreamOrder): edges become per-source
	// intrusive lists and propagation runs edge-by-edge as events
	// arrive — the same product fixpoint, reached in a
	// schedule-dependent order, so Found/Exhaustive are identical while
	// the particular bad pair (and path) may differ.
	unordered bool
	heads     []int32
	uEdges    []uaEdge
}

var (
	_ Sink      = (*AutomatonCheck)(nil)
	_ OrderSink = (*AutomatonCheck)(nil)
)

// NewAutomatonCheck returns a checker for the observer.
func NewAutomatonCheck(obs *Observer) *AutomatonCheck {
	return &AutomatonCheck{
		Obs:     obs,
		offsets: []int32{0},
		parents: make(map[uint64]aParent),
	}
}

func pairKey(state int32, obs int) uint64 {
	return uint64(uint32(state))<<6 | uint64(obs)
}

// SetStreamOrder implements OrderSink: the unordered mode switches to
// per-source edge lists and event-driven propagation.
func (c *AutomatonCheck) SetStreamOrder(o Order) {
	c.unordered = o == Unordered
}

// OnState implements Sink: it pre-evaluates the rule predicates while
// the state is materialized and, for the initial state, performs the
// observer's initial observation. An unordered stream delivers ids in
// arbitrary (dense) order; OnState(0) is first either way.
func (c *AutomatonCheck) OnState(id int, st core.State, d Discovery) error {
	pred := c.Obs.PredBits(&st)
	if c.unordered {
		for len(c.cells) <= id {
			c.cells = append(c.cells, obsCell{})
			c.heads = append(c.heads, -1)
		}
		c.cells[id].pred = pred
	} else {
		c.cells = append(c.cells, obsCell{pred: pred})
	}
	if id == 0 {
		q0 := c.Obs.Step(c.Obs.Init, c.Obs.InitBits, pred)
		c.cells[0].obs = 1 << uint(q0)
		if c.Obs.Bad&(1<<uint(q0)) != 0 {
			return c.settleProduct(0, q0)
		}
		if c.unordered {
			c.queue = append(c.queue, 0)
			return c.drainU()
		}
	}
	return nil
}

// OnEdge implements Sink. Deterministic streams only record the edge;
// propagation runs at the source's OnExpanded, once its edge list is
// complete. Unordered streams have no such completion point, so the
// edge joins its source's list immediately and the bits the source
// already propagated elsewhere are pushed through it on the spot —
// every recorded edge has then seen every done bit, which keeps the
// incremental fixpoint exact under any event interleaving.
func (c *AutomatonCheck) OnEdge(from, to int, label string) error {
	if c.unordered {
		ev := c.Obs.EvBits(label)
		c.uEdges = append(c.uEdges, uaEdge{to: int32(to), next: c.heads[from], evBits: ev, label: label})
		c.heads[from] = int32(len(c.uEdges) - 1)
		if done := c.cells[from].done; done != 0 {
			if err := c.pushBits(int32(from), done, &c.uEdges[len(c.uEdges)-1]); err != nil {
				return err
			}
			return c.drainU()
		}
		return nil
	}
	c.edges = append(c.edges, aEdge{to: int32(to), evBits: c.Obs.EvBits(label), label: label})
	return nil
}

// OnExpanded implements Sink: on a deterministic stream, state id's
// edge list is now complete, so its accumulated observer states are
// propagated; the worklist re-runs any already-expanded state that
// gains observer states through back or cross edges, to the product
// fixpoint for the stream so far. Unordered streams propagate per edge
// instead and have nothing to do here.
func (c *AutomatonCheck) OnExpanded(id, moves int) error {
	if c.unordered {
		return nil
	}
	c.offsets = append(c.offsets, int32(len(c.edges)))
	c.expanded = id + 1
	c.queue = append(c.queue, int32(id))
	return c.drain()
}

// drain runs the FIFO worklist: for each queued state, the observer
// states not yet pushed through its edges step across each edge in
// order, claiming new (state, observer) pairs. The order — FIFO queue,
// edges in stream order, observer states in ascending order — is fully
// determined by the event stream, which makes the first bad pair (and
// its product path) deterministic.
func (c *AutomatonCheck) drain() error {
	for head := 0; head < len(c.queue); head++ {
		x := c.queue[head]
		cell := &c.cells[x]
		newBits := cell.obs &^ cell.done
		if newBits == 0 {
			continue
		}
		cell.done |= newBits
		for _, e := range c.edges[c.offsets[x]:c.offsets[x+1]] {
			tc := &c.cells[e.to]
			for bs := newBits; bs != 0; bs &= bs - 1 {
				q := bits.TrailingZeros64(bs)
				q2 := c.Obs.Step(q, e.evBits, tc.pred)
				if tc.obs&(1<<uint(q2)) != 0 {
					continue
				}
				tc.obs |= 1 << uint(q2)
				c.parents[pairKey(e.to, q2)] = aParent{state: x, obs: int8(q), label: e.label}
				if c.Obs.Bad&(1<<uint(q2)) != 0 {
					c.queue = c.queue[:0]
					return c.settleProduct(int(e.to), q2)
				}
				if int(e.to) < c.expanded {
					c.queue = append(c.queue, e.to)
				}
			}
		}
	}
	c.queue = c.queue[:0]
	return nil
}

// pushBits steps the source's bit set across one edge, claiming any new
// (state, observer) pairs: the per-edge propagation primitive of the
// unordered mode.
func (c *AutomatonCheck) pushBits(from int32, bs uint64, e *uaEdge) error {
	tc := &c.cells[e.to]
	for ; bs != 0; bs &= bs - 1 {
		q := bits.TrailingZeros64(bs)
		q2 := c.Obs.Step(q, e.evBits, tc.pred)
		if tc.obs&(1<<uint(q2)) != 0 {
			continue
		}
		tc.obs |= 1 << uint(q2)
		c.parents[pairKey(e.to, q2)] = aParent{state: from, obs: int8(q), label: e.label}
		if c.Obs.Bad&(1<<uint(q2)) != 0 {
			c.queue = c.queue[:0]
			return c.settleProduct(int(e.to), q2)
		}
		c.queue = append(c.queue, e.to)
	}
	return nil
}

// drainU runs the unordered worklist: each queued state pushes its
// not-yet-propagated observer states through every edge recorded for it
// so far (edges recorded later catch up in OnEdge). Same fixpoint as
// drain, reached in a schedule-dependent order.
func (c *AutomatonCheck) drainU() error {
	for head := 0; head < len(c.queue); head++ {
		x := c.queue[head]
		cell := &c.cells[x]
		newBits := cell.obs &^ cell.done
		if newBits == 0 {
			continue
		}
		cell.done |= newBits
		for ei := c.heads[x]; ei >= 0; ei = c.uEdges[ei].next {
			if err := c.pushBits(x, newBits, &c.uEdges[ei]); err != nil {
				return err
			}
		}
	}
	c.queue = c.queue[:0]
	return nil
}

// settleProduct records the verdict: the violating system state and the
// interaction path reconstructed from the product BFS tree (a path that
// both exists in the system and drives the observer to the bad state —
// the discovery-tree path of the state alone need not). The propagation
// tables are released; the check is settled.
func (c *AutomatonCheck) settleProduct(state, obs int) error {
	c.Found = true
	c.State = state
	var labels []string
	s, q := int32(state), obs
	for {
		p, ok := c.parents[pairKey(s, q)]
		if !ok {
			break // the initial pair has no parent
		}
		labels = append(labels, p.label)
		s, q = p.state, int(p.obs)
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	c.Path = labels
	c.release()
	return ErrStop
}

// Done implements Sink: with full coverage the product fixpoint is
// complete, so the absence of a bad pair is conclusive.
func (c *AutomatonCheck) Done(truncated bool) error {
	c.release()
	return c.Verdict.Done(truncated)
}

// release drops the propagation tables once the check can no longer be
// fed events.
func (c *AutomatonCheck) release() {
	c.cells, c.edges, c.offsets, c.queue, c.parents = nil, nil, nil, nil, nil
	c.heads, c.uEdges = nil, nil
}

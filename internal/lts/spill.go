package lts

import (
	"fmt"
	"sync"

	"bip/internal/core"
	"bip/internal/faultfs"
)

// This file implements the work-stealing driver's disk-spilled frontier
// (Options.MemBudget). The spill protocol leans on the groundwork of
// the earlier PRs: a pending state is fully determined by its
// fixed-width binary key (the state decodes back with
// core.System.StateFromBinaryKey and its move table recomputes with
// EnabledVector), so spilling a 32-entry deque chunk is one flat
// n×keyWidth write — no per-state encoding, no varints, no index
// structure on disk. What stays in RAM per spilled state is 12 bytes of
// record (id + path-node pointer): the BFS-tree nodes cannot be evicted
// without forfeiting counterexample paths, and they are the smallest
// part of a frontier entry by an order of magnitude.
//
// Concurrency: writes and reads go through WriteAt/ReadAt on a
// create-temp file (no shared file offset), the record list is guarded
// by one mutex, and each chunk is written once and read back once —
// take removes the record before the reader touches the file, so no
// two workers ever share a region. Records are taken newest-first: the
// tail of the file is the most recently written and the most likely
// still in the page cache.

// wsSpillRec locates one spilled chunk: its file region plus the
// RAM-resident remainder of its entries.
type wsSpillRec struct {
	off   int64
	n     int
	ids   [wsChunkCap]int32
	nodes [wsChunkCap]*pathNode
}

// wsSpill is the spill file of one exploration, created lazily on the
// first over-budget publish and removed when the run returns. All file
// operations go through the injected faultfs.FS, so tests can fail any
// CreateTemp/WriteAt/ReadAt and pin that the fault becomes the run's
// clean terminal error with the temp file still closed and removed
// (spill_fault_test.go).
type wsSpill struct {
	width int
	fs    faultfs.FS

	mu      sync.Mutex
	f       faultfs.File
	off     int64
	recs    []*wsSpillRec
	nWrites int64
}

func newWsSpill(keyWidth int, fs faultfs.FS) *wsSpill {
	return &wsSpill{width: keyWidth, fs: fs}
}

// write serializes one chunk: every entry is reduced to its binary key
// (recomputed from the state — nothing beyond the key ever reaches
// disk), id and path node, and the entries are released.
func (s *wsSpill) write(sys *core.System, c *wsChunk, w *wsWorker) error {
	rec := &wsSpillRec{n: c.n}
	buf := w.keyBuf[:0]
	for i := 0; i < c.n; i++ {
		e := c.e[i]
		buf = sys.AppendBinaryKey(buf, e.state)
		rec.ids[i] = e.id
		rec.nodes[i] = e.node
	}
	w.keyBuf = buf

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		f, err := s.fs.CreateTemp("", "bip-spill-*")
		if err != nil {
			return fmt.Errorf("lts: frontier spill: %w", err)
		}
		s.f = f
	}
	if _, err := s.f.WriteAt(buf, s.off); err != nil {
		return fmt.Errorf("lts: frontier spill: %w", err)
	}
	rec.off = s.off
	s.off += int64(len(buf))
	s.recs = append(s.recs, rec)
	s.nWrites++
	return nil
}

// take removes and returns the newest spilled record, nil when the file
// has drained.
func (s *wsSpill) take() *wsSpillRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.recs)
	if n == 0 {
		return nil
	}
	rec := s.recs[n-1]
	s.recs[n-1] = nil
	s.recs = s.recs[:n-1]
	return rec
}

// read loads a taken record's key block into buf. The caller owns the
// record exclusively (take removed it), so no locking is needed for
// the file region; ReadAt carries no shared offset.
func (s *wsSpill) read(rec *wsSpillRec, buf []byte) ([]byte, error) {
	need := rec.n * s.width
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if _, err := s.f.ReadAt(buf, rec.off); err != nil {
		return buf, fmt.Errorf("lts: frontier spill read: %w", err)
	}
	return buf, nil
}

// written returns how many chunks were spilled over the run.
func (s *wsSpill) written() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nWrites
}

// close removes the spill file; undrained records (early stop, error,
// cancellation) go with it. It runs on every exit path of the
// work-stealing driver — streamWorkSteal defers it before the first
// publish can possibly spill — so the temp file cannot outlive the run
// whatever ended it.
func (s *wsSpill) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return
	}
	name := s.f.Name()
	s.f.Close()
	s.fs.Remove(name)
	s.f = nil
	s.recs = nil
}

// Package sat implements a small DPLL SAT solver over CNF formulas. It is
// the reasoning substrate of the compositional verifier (package
// invariant): trap enumeration and the deadlock-candidate check
// CI ∧ II ∧ DIS are SAT queries over location propositions.
//
// The solver favours clarity over raw speed: unit propagation by clause
// scanning, chronological backtracking, first-unassigned branching. The
// formulas produced by the verifier have hundreds of variables, far below
// the scale where watched literals or clause learning pay off.
package sat

import (
	"fmt"
	"sort"
)

// Lit is a literal: variable v (1-based) is the positive literal v, its
// negation is -v.
type Lit int

// Var returns the 1-based variable index of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Lit

// Solver accumulates clauses and answers satisfiability queries.
// The zero value is not usable; construct with New.
type Solver struct {
	numVars int
	clauses []Clause
	// frozen trail of top-level unit facts discovered by AddClause.
	names map[int]string
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{names: make(map[int]string)}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	s.numVars++
	return s.numVars
}

// NewNamedVar allocates a variable carrying a diagnostic name.
func (s *Solver) NewNamedVar(name string) int {
	v := s.NewVar()
	s.names[v] = name
	return v
}

// Name returns the diagnostic name of a variable, or its index rendering.
func (s *Solver) Name(v int) string {
	if n, ok := s.names[v]; ok {
		return n
	}
	return fmt.Sprintf("v%d", v)
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.numVars }

// NumClauses returns the number of stored clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// AddClause stores a clause. Empty clauses make the formula trivially
// unsatisfiable. Literals referencing unallocated variables are an error.
func (s *Solver) AddClause(lits ...Lit) error {
	for _, l := range lits {
		if l == 0 {
			return fmt.Errorf("sat: zero literal")
		}
		if l.Var() > s.numVars {
			return fmt.Errorf("sat: literal %d references unallocated variable", l)
		}
	}
	// Normalize: sort, dedupe, drop tautologies.
	c := append(Clause(nil), lits...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, l := range c {
		if i > 0 && l == c[i-1] {
			continue
		}
		out = append(out, l)
	}
	for i := 0; i+1 < len(out); i++ {
		if out[i] == -out[i+1] {
			return nil // tautology: x ∨ ¬x
		}
	}
	s.clauses = append(s.clauses, out)
	return nil
}

// MustAddClause is AddClause for statically well-formed clauses.
func (s *Solver) MustAddClause(lits ...Lit) {
	if err := s.AddClause(lits...); err != nil {
		panic(err)
	}
}

// Assignment maps variables (1-based) to values. Index 0 is unused.
type Assignment []bool

// Solve searches for a model extending the given assumptions. It returns
// the model and true, or nil and false when unsatisfiable.
func (s *Solver) Solve(assumptions ...Lit) (Assignment, bool) {
	st := &searchState{
		val:   make([]int8, s.numVars+1), // 0 unknown, 1 true, -1 false
		trail: make([]int, 0, s.numVars),
	}
	for _, a := range assumptions {
		v := a.Var()
		want := int8(1)
		if !a.Pos() {
			want = -1
		}
		if st.val[v] == -want {
			return nil, false
		}
		st.val[v] = want
	}
	if !s.search(st) {
		return nil, false
	}
	m := make(Assignment, s.numVars+1)
	for v := 1; v <= s.numVars; v++ {
		m[v] = st.val[v] == 1
	}
	return m, true
}

// searchState is the DPLL working state: the assignment plus a trail for
// chronological backtracking (no per-branch copying).
type searchState struct {
	val   []int8
	trail []int
}

func (st *searchState) assign(l Lit) {
	v := l.Var()
	if l.Pos() {
		st.val[v] = 1
	} else {
		st.val[v] = -1
	}
	st.trail = append(st.trail, v)
}

func (st *searchState) undoTo(mark int) {
	for len(st.trail) > mark {
		v := st.trail[len(st.trail)-1]
		st.trail = st.trail[:len(st.trail)-1]
		st.val[v] = 0
	}
}

// litTrue/litFalse evaluate a literal under the current assignment.
func (st *searchState) litTrue(l Lit) bool {
	v := st.val[l.Var()]
	return (v == 1) == l.Pos() && v != 0
}

// search runs DPLL with allocation-free unit propagation and
// literal-polarity branching on the first unsatisfied clause.
func (s *Solver) search(st *searchState) bool {
	mark := len(st.trail)
	if !s.propagate(st) {
		st.undoTo(mark)
		return false
	}
	// Branch on the first unassigned literal of the first unsatisfied
	// clause, trying the polarity that satisfies that clause first.
	// Clauses are grouped by the component that produced them, so the
	// search works through one subsystem's constraints before touching
	// the next — refutations of locally-unsatisfiable subsystems stay
	// local instead of being re-derived under every assignment of the
	// others.
	branch := Lit(0)
	for _, c := range s.clauses {
		satisfied := false
		var firstUnassigned Lit
		for _, l := range c {
			if st.val[l.Var()] == 0 {
				if firstUnassigned == 0 {
					firstUnassigned = l
				}
			} else if st.litTrue(l) {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		if firstUnassigned == 0 {
			st.undoTo(mark)
			return false
		}
		branch = firstUnassigned
		break
	}
	if branch == 0 {
		return true // every clause satisfied
	}
	// Try the polarity that satisfies the pending clause first.
	mark2 := len(st.trail)
	st.assign(branch)
	if s.search(st) {
		return true
	}
	st.undoTo(mark2)
	st.assign(branch.Neg())
	if s.search(st) {
		return true
	}
	st.undoTo(mark)
	return false
}

// propagate runs unit propagation to fixpoint. It reports false on
// conflict (the caller unwinds the trail).
func (s *Solver) propagate(st *searchState) bool {
	for changed := true; changed; {
		changed = false
		for _, c := range s.clauses {
			satisfied := false
			unassigned := 0
			var unit Lit
			for _, l := range c {
				if st.val[l.Var()] == 0 {
					unassigned++
					unit = l
					if unassigned > 1 {
						// Cannot be unit; but keep scanning for a
						// satisfied literal.
						continue
					}
				} else if st.litTrue(l) {
					satisfied = true
					break
				}
			}
			if satisfied || unassigned > 1 {
				continue
			}
			if unassigned == 0 {
				return false
			}
			st.assign(unit)
			changed = true
		}
	}
	return true
}

// TrueVars returns the sorted variables assigned true in the model.
func (m Assignment) TrueVars() []int {
	var out []int
	for v := 1; v < len(m); v++ {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}

// AtMostOne adds pairwise exclusion clauses over the variables.
func (s *Solver) AtMostOne(vars []int) error {
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if err := s.AddClause(Lit(-vars[i]), Lit(-vars[j])); err != nil {
				return err
			}
		}
	}
	return nil
}

// AtLeastOne adds the covering clause over the variables.
func (s *Solver) AtLeastOne(vars []int) error {
	lits := make([]Lit, len(vars))
	for i, v := range vars {
		lits[i] = Lit(v)
	}
	return s.AddClause(lits...)
}

// Implies adds the clause ¬a ∨ b.
func (s *Solver) Implies(a, b Lit) error { return s.AddClause(a.Neg(), b) }

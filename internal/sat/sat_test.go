package sat

import (
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if _, ok := s.Solve(); !ok {
		t.Fatal("empty formula must be SAT")
	}
	s.MustAddClause(Lit(a))
	m, ok := s.Solve()
	if !ok || !m[a] {
		t.Fatalf("unit clause: model = %v, ok = %v", m, ok)
	}
	s.MustAddClause(Lit(-a))
	if _, ok := s.Solve(); ok {
		t.Fatal("a ∧ ¬a must be UNSAT")
	}
}

func TestBasicInference(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a, a→b, b→c forces all true.
	s.MustAddClause(Lit(a))
	if err := s.Implies(Lit(a), Lit(b)); err != nil {
		t.Fatal(err)
	}
	if err := s.Implies(Lit(b), Lit(c)); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Solve()
	if !ok || !m[a] || !m[b] || !m[c] {
		t.Fatalf("model = %v, want all true", m)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.MustAddClause(Lit(a), Lit(b))
	if _, ok := s.Solve(Lit(-a), Lit(-b)); ok {
		t.Fatal("assumptions ¬a, ¬b contradict a∨b")
	}
	m, ok := s.Solve(Lit(-a))
	if !ok || !m[b] {
		t.Fatalf("with ¬a assumed, b must hold: %v", m)
	}
	if _, ok := s.Solve(Lit(a), Lit(-a)); ok {
		t.Fatal("contradictory assumptions must be UNSAT")
	}
}

func TestPigeonhole(t *testing.T) {
	// 3 pigeons, 2 holes: UNSAT. Classic small hard instance.
	s := New()
	p := make([][]int, 3)
	for i := range p {
		p[i] = []int{s.NewVar(), s.NewVar()}
		if err := s.AtLeastOne(p[i]); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < 2; h++ {
		if err := s.AtMostOne([]int{p[0][h], p[1][h], p[2][h]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Solve(); ok {
		t.Fatal("pigeonhole 3→2 must be UNSAT")
	}
}

func TestExactlyOneEncoding(t *testing.T) {
	s := New()
	vars := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	if err := s.AtLeastOne(vars); err != nil {
		t.Fatal(err)
	}
	if err := s.AtMostOne(vars); err != nil {
		t.Fatal(err)
	}
	m, ok := s.Solve()
	if !ok {
		t.Fatal("exactly-one must be SAT")
	}
	n := 0
	for _, v := range vars {
		if m[v] {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("model sets %d vars, want exactly 1", n)
	}
}

func TestModelEnumeration(t *testing.T) {
	// x∨y has exactly 3 models over {x,y}.
	s := New()
	x, y := s.NewVar(), s.NewVar()
	s.MustAddClause(Lit(x), Lit(y))
	count := 0
	for {
		m, ok := s.Solve()
		if !ok {
			break
		}
		count++
		if count > 4 {
			t.Fatal("enumeration does not terminate")
		}
		// Block this full model.
		block := make([]Lit, 0, 2)
		for _, v := range []int{x, y} {
			if m[v] {
				block = append(block, Lit(-v))
			} else {
				block = append(block, Lit(v))
			}
		}
		s.MustAddClause(block...)
	}
	if count != 3 {
		t.Fatalf("models of x∨y = %d, want 3", count)
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a := s.NewVar()
	// Tautology is dropped.
	s.MustAddClause(Lit(a), Lit(-a))
	if s.NumClauses() != 0 {
		t.Fatalf("tautology stored: %d clauses", s.NumClauses())
	}
	// Duplicates collapse.
	s.MustAddClause(Lit(a), Lit(a))
	if s.NumClauses() != 1 || len(s.clauses[0]) != 1 {
		t.Fatalf("duplicate literals not collapsed: %v", s.clauses)
	}
}

func TestAddClauseErrors(t *testing.T) {
	s := New()
	if err := s.AddClause(Lit(0)); err == nil {
		t.Fatal("zero literal must be rejected")
	}
	if err := s.AddClause(Lit(5)); err == nil {
		t.Fatal("unallocated variable must be rejected")
	}
}

func TestNames(t *testing.T) {
	s := New()
	v := s.NewNamedVar("at(phil0,eating)")
	if s.Name(v) != "at(phil0,eating)" {
		t.Fatalf("Name = %q", s.Name(v))
	}
	w := s.NewVar()
	if s.Name(w) != "v2" {
		t.Fatalf("fallback Name = %q", s.Name(w))
	}
}

func TestTrueVars(t *testing.T) {
	m := Assignment{false, true, false, true}
	got := m.TrueVars()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TrueVars = %v", got)
	}
}

// Property: for random 3-CNF instances, any model returned by the solver
// actually satisfies every clause; and if the solver says UNSAT, a brute
// force over all assignments agrees (small n).
func TestQuickSolverSoundAndComplete(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		const nv = 6
		s := New()
		for i := 0; i < nv; i++ {
			s.NewVar()
		}
		nc := 3 + next(12)
		var clauses []Clause
		for i := 0; i < nc; i++ {
			var c Clause
			for j := 0; j < 3; j++ {
				v := 1 + next(nv)
				if next(2) == 0 {
					c = append(c, Lit(v))
				} else {
					c = append(c, Lit(-v))
				}
			}
			clauses = append(clauses, c)
			s.MustAddClause(c...)
		}
		m, ok := s.Solve()
		evalClause := func(c Clause, bits int) bool {
			for _, l := range c {
				val := bits>>(l.Var()-1)&1 == 1
				if val == l.Pos() {
					return true
				}
			}
			return false
		}
		if ok {
			// Soundness: the model satisfies every original clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if m[l.Var()] == l.Pos() {
						sat = true
					}
				}
				if !sat {
					return false
				}
			}
			return true
		}
		// Completeness: brute force agrees there is no model.
		for bits := 0; bits < 1<<nv; bits++ {
			all := true
			for _, c := range clauses {
				if !evalClause(c, bits) {
					all = false
					break
				}
			}
			if all {
				return false // solver missed a model
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

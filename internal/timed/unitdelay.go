package timed

import (
	"fmt"
	"strconv"

	"bip/internal/behavior"
	"bip/internal/expr"
)

// UnitDelay builds the timed automaton family of Fig. 5.3: a component
// realizing y(t) = x(t−1) for a binary signal x with at most k changes
// per time unit.
//
// For k = 1 this is exactly the paper's four-state automaton (locations
// (x,y) ∈ {00,10,11,01}, one clock). For general k the automaton keeps a
// FIFO of pending changes: locations (x value, pending count ≤ k) —
// 2(k+1) locations — and k clocks, one per pending change, shifted on
// emission. This realizes the paper's remark that "the number of states
// and clocks needed to represent a unit delay increases linearly with the
// maximum number of changes allowed for x in one time unit" (experiment
// E4).
//
// Ports: "toggle" flips the input x (guard: fewer than k changes
// pending); "emit" flips the output y exactly one unit after the
// corresponding input change (guard: oldest clock = 1, urgent). The
// output value is derived: y = x when the pending count is even, ¬x
// otherwise.
func UnitDelay(k int) (*behavior.Atom, error) {
	if k < 1 {
		return nil, fmt.Errorf("timed: unit delay needs k >= 1, got %d", k)
	}
	t := NewAtom("ud")
	clock := func(i int) string { return "t" + strconv.Itoa(i) }
	loc := func(x, pending int) string {
		return fmt.Sprintf("x%dp%d", x, pending)
	}
	for _, x := range []int{0, 1} {
		for p := 0; p <= k; p++ {
			t.Location(loc(x, p))
		}
	}
	t.Initial(loc(0, 0))
	for i := 0; i < k; i++ {
		t.Clock(clock(i))
	}
	t.Port("toggle")
	t.Port("emit")

	for _, x := range []int{0, 1} {
		for p := 0; p <= k; p++ {
			// Input change: reset the youngest pending clock (index p).
			if p < k {
				t.Transition(loc(x, p), "toggle", loc(1-x, p+1), nil, []string{clock(p)}, nil)
			}
			// Output change: the oldest pending clock (index 0) reaches
			// one unit; shift the remaining clocks down one slot.
			if p > 0 {
				var shift []expr.Stmt
				for i := 0; i+1 < p; i++ {
					shift = append(shift, expr.Set(clock(i), expr.V(clock(i+1))))
				}
				t.Transition(loc(x, p), "emit", loc(x, p-1),
					expr.Ge(expr.V(clock(0)), expr.I(1)), nil, expr.Do(shift...))
				// Urgency: time must not pass beyond the deadline of the
				// oldest pending change.
				t.TickGuard(loc(x, p), expr.Lt(expr.V(clock(0)), expr.I(1)))
			}
		}
	}
	return t.Build()
}

// UnitDelaySize reports the location and clock counts of UnitDelay(k)
// without building it — the quantities experiment E4 tabulates.
func UnitDelaySize(k int) (locations, clocks int) {
	return 2 * (k + 1), k
}

// SimulateUnitDelay drives UnitDelay(k) with an input script and checks
// the output against the defining equation y(t) = x(t−1).
//
// The script gives, for each time unit, the number of input toggles
// happening within that unit (each must be ≤ k in total pending). The
// simulation alternates: deliver the unit's toggles, then advance time by
// one tick, emitting due output changes first (urgency).
//
// It returns the observed output-change times and any divergence from the
// reference as an error.
func SimulateUnitDelay(k int, togglesPerUnit []int) ([]int, error) {
	atom, err := UnitDelay(k)
	if err != nil {
		return nil, err
	}
	st := atom.InitialState()
	fire := func(port string) error {
		en, err := atom.Enabled(st, port)
		if err != nil {
			return err
		}
		if len(en) == 0 {
			return fmt.Errorf("timed: %s not enabled at %s", port, st.Loc)
		}
		st, err = atom.Exec(st, en[0])
		return err
	}

	var emits []int
	var wantEmits []int
	for unit, toggles := range togglesPerUnit {
		if toggles > k {
			return nil, fmt.Errorf("timed: unit %d schedules %d toggles > k=%d", unit, toggles, k)
		}
		for i := 0; i < toggles; i++ {
			if err := fire("toggle"); err != nil {
				return nil, err
			}
			// Each change must surface exactly one unit later.
			wantEmits = append(wantEmits, unit+1)
		}
		// Advance one unit: first emit everything due (urgency), then
		// tick.
		for {
			en, err := atom.Enabled(st, "emit")
			if err != nil {
				return nil, err
			}
			if len(en) == 0 {
				break
			}
			if err := fire("emit"); err != nil {
				return nil, err
			}
			emits = append(emits, unit)
		}
		if err := fire(TickPort); err != nil {
			return nil, fmt.Errorf("timed: unit %d: %w", unit, err)
		}
		// Emissions due at the new instant.
		for {
			en, err := atom.Enabled(st, "emit")
			if err != nil {
				return nil, err
			}
			if len(en) == 0 {
				break
			}
			if err := fire("emit"); err != nil {
				return nil, err
			}
			emits = append(emits, unit+1)
		}
	}
	// Compare against the reference: the i-th change emitted at its
	// scheduled time + 1, for all changes whose deadline fell within the
	// simulated horizon.
	due := 0
	for _, w := range wantEmits {
		if w <= len(togglesPerUnit) {
			due++
		}
	}
	if len(emits) != due {
		return emits, fmt.Errorf("timed: observed %d output changes, reference expects %d", len(emits), due)
	}
	for i := 0; i < due; i++ {
		if emits[i] != wantEmits[i] {
			return emits, fmt.Errorf("timed: change %d emitted at %d, reference says %d", i, emits[i], wantEmits[i])
		}
	}
	return emits, nil
}

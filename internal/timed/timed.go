// Package timed extends BIP models with discrete time: clocks are
// integer variables advanced by a distinguished tick interaction, timing
// constraints are guards over clocks, and urgency is expressed by giving
// every non-tick interaction priority over tick (eager semantics).
//
// The paper's dense-time engine is substituted by this discrete-time
// semantics; the phenomena reproduced here — the unit-delay automaton of
// Fig. 5.3 (experiment E4) and the timing anomalies of §5.2.2 (experiment
// E10) — are ordering phenomena that survive discretization, as recorded
// in EXPERIMENTS.md.
package timed

import (
	"fmt"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// TickPort is the reserved port name through which time advances.
const TickPort = "tick"

// TickInteraction is the reserved name of the global time-step.
const TickInteraction = "tick"

// Builder assembles a timed atom: a behaviour automaton plus clocks. On
// Build, a tick self-loop is added to every location, guarded by the
// location's time-progress condition and advancing every clock by one.
type Builder struct {
	b          *behavior.Builder
	name       string
	clocks     []string
	locations  []string
	tickGuards map[string]expr.Expr
}

// NewAtom starts a timed atom.
func NewAtom(name string) *Builder {
	return &Builder{
		b:          behavior.NewBuilder(name),
		name:       name,
		tickGuards: make(map[string]expr.Expr),
	}
}

// Location declares control locations (first one is initial unless
// Initial is called).
func (t *Builder) Location(names ...string) *Builder {
	t.locations = append(t.locations, names...)
	t.b.Location(names...)
	return t
}

// Initial sets the initial location.
func (t *Builder) Initial(name string) *Builder {
	t.b.Initial(name)
	return t
}

// Clock declares a clock, an integer variable starting at 0 advanced by
// tick.
func (t *Builder) Clock(name string) *Builder {
	t.clocks = append(t.clocks, name)
	t.b.Int(name, 0)
	return t
}

// Int declares an ordinary (non-clock) integer variable.
func (t *Builder) Int(name string, init int64) *Builder {
	t.b.Int(name, init)
	return t
}

// Port declares a port.
func (t *Builder) Port(name string, exported ...string) *Builder {
	t.b.Port(name, exported...)
	return t
}

// Transition adds a discrete transition; resets lists clocks set to 0
// when it fires (in addition to the optional action).
func (t *Builder) Transition(from, port, to string, guard expr.Expr, resets []string, action expr.Stmt) *Builder {
	stmts := make([]expr.Stmt, 0, len(resets)+1)
	for _, c := range resets {
		stmts = append(stmts, expr.Set(c, expr.I(0)))
	}
	if action != nil {
		stmts = append(stmts, action)
	}
	t.b.TransitionG(from, port, to, guard, expr.Do(stmts...))
	return t
}

// TickGuard constrains time progress at a location (the location's
// time-progress condition / invariant). Unset locations allow time to
// pass freely.
func (t *Builder) TickGuard(loc string, guard expr.Expr) *Builder {
	t.tickGuards[loc] = guard
	return t
}

// Build finishes the atom: a tick port and per-location tick self-loops
// advancing all clocks.
func (t *Builder) Build() (*behavior.Atom, error) {
	t.b.Port(TickPort)
	var advance []expr.Stmt
	for _, c := range t.clocks {
		advance = append(advance, expr.Set(c, expr.Add(expr.V(c), expr.I(1))))
	}
	for _, loc := range t.locations {
		t.b.TransitionG(loc, TickPort, loc, t.tickGuards[loc], expr.Do(advance...))
	}
	return t.b.Build()
}

// MustBuild is Build panicking on error, for static models.
func (t *Builder) MustBuild() *behavior.Atom {
	a, err := t.Build()
	if err != nil {
		panic(fmt.Sprintf("timed: %v", err))
	}
	return a
}

// Compose assembles a timed system: the given interactions plus the
// global tick rendezvous over every atom's tick port. With eager=true
// every other interaction gets priority over tick, so discrete actions
// are urgent: time passes only when nothing else can happen.
func Compose(name string, atoms []*behavior.Atom, interactions []*core.Interaction, eager bool) (*core.System, error) {
	b := core.NewSystem(name)
	tick := &core.Interaction{Name: TickInteraction}
	for _, a := range atoms {
		b.Add(a)
		tick.Ports = append(tick.Ports, core.P(a.Name, TickPort))
	}
	for _, in := range interactions {
		b.Interaction(in)
	}
	b.Interaction(tick)
	if eager {
		for _, in := range interactions {
			b.Priority(TickInteraction, in.Name)
		}
	}
	return b.Build()
}

// Now reads the elapsed time of a timed system run by counting tick
// occurrences in a label trace.
func Now(labels []string) int {
	n := 0
	for _, l := range labels {
		if l == TickInteraction {
			n++
		}
	}
	return n
}

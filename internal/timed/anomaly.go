package timed

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file implements the §5.2.2 robustness analysis (experiment E10):
// an "ideal model" of a task system is executed on a "physical model"
// whose performance is a function φ assigning durations to actions.
// Safety (here: meeting a makespan deadline) under φ does NOT imply
// safety under a faster φ′ < φ when dispatching is non-deterministic
// (greedy list scheduling) — the classical timing anomaly [31]. For
// deterministic dispatching (fixed assignment and order), safety is
// monotone in performance — time robustness, as proved in [1] for
// deterministic models.

// Job is a unit of work with precedence constraints.
type Job struct {
	ID   string
	Dur  int
	Deps []string
}

// Schedule is the outcome of scheduling a job set.
type Schedule struct {
	Makespan int
	// Start holds each job's start time.
	Start map[string]int
	// Machine holds each job's machine assignment.
	Machine map[string]int
}

// ListSchedule runs Graham list scheduling: whenever a machine is idle it
// picks the first ready job in priority order. It is work-conserving and
// non-deterministic in the modelled system; the priority list fixes one
// concrete resolution, and varying durations under the same list is what
// exposes anomalies.
func ListSchedule(jobs []Job, machines int) (*Schedule, error) {
	if machines < 1 {
		return nil, fmt.Errorf("timed: need at least one machine")
	}
	byID := make(map[string]*Job, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if j.Dur < 0 {
			return nil, fmt.Errorf("timed: job %s has negative duration", j.ID)
		}
		if _, dup := byID[j.ID]; dup {
			return nil, fmt.Errorf("timed: duplicate job %s", j.ID)
		}
		byID[j.ID] = j
	}
	for _, j := range jobs {
		for _, d := range j.Deps {
			if _, ok := byID[d]; !ok {
				return nil, fmt.Errorf("timed: job %s depends on unknown %s", j.ID, d)
			}
		}
	}

	s := &Schedule{Start: make(map[string]int), Machine: make(map[string]int)}
	finish := make(map[string]int)
	machineFree := make([]int, machines)
	done := make(map[string]bool)
	remaining := len(jobs)

	now := 0
	for remaining > 0 {
		// Jobs whose dependencies completed by now.
		progressed := false
		for m := 0; m < machines; m++ {
			if machineFree[m] > now {
				continue
			}
			// First ready unstarted job in list order.
			for i := range jobs {
				j := &jobs[i]
				if done[j.ID] {
					continue
				}
				if _, started := s.Start[j.ID]; started {
					continue
				}
				ready := true
				for _, d := range j.Deps {
					f, fin := finish[d]
					if !fin || f > now {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				s.Start[j.ID] = now
				s.Machine[j.ID] = m
				finish[j.ID] = now + j.Dur
				machineFree[m] = now + j.Dur
				if now+j.Dur > s.Makespan {
					s.Makespan = now + j.Dur
				}
				if j.Dur == 0 {
					done[j.ID] = true
					remaining--
				}
				progressed = true
				break
			}
		}
		// Advance to the next completion.
		next := -1
		for id, f := range finish {
			if done[id] || f <= now {
				if !done[id] && f <= now {
					done[id] = true
					remaining--
					progressed = true
				}
				continue
			}
			if next == -1 || f < next {
				next = f
			}
		}
		if remaining == 0 {
			break
		}
		if next == -1 {
			if !progressed {
				return nil, fmt.Errorf("timed: scheduling stuck (dependency cycle?)")
			}
			continue
		}
		now = next
	}
	return s, nil
}

// FixedSchedule executes jobs deterministically: each job runs on its
// pre-assigned machine, in the given per-machine order, starting when its
// dependencies and machine are available. This is the deterministic model
// for which time robustness holds.
func FixedSchedule(jobs []Job, assignment map[string]int, machines int) (*Schedule, error) {
	perMachine := make([][]int, machines)
	for i := range jobs {
		m, ok := assignment[jobs[i].ID]
		if !ok || m < 0 || m >= machines {
			return nil, fmt.Errorf("timed: job %s lacks a valid assignment", jobs[i].ID)
		}
		perMachine[m] = append(perMachine[m], i)
	}
	s := &Schedule{Start: make(map[string]int), Machine: make(map[string]int)}
	finish := make(map[string]int)
	// Iterate to a fixed point: a job can start once its machine
	// predecessor and dependencies have finish times.
	for progress, doneCount := true, 0; doneCount < len(jobs); {
		if !progress {
			return nil, fmt.Errorf("timed: fixed schedule stuck (cycle?)")
		}
		progress = false
		for m := 0; m < machines; m++ {
			prevFinish := 0
			for _, ji := range perMachine[m] {
				j := jobs[ji]
				if _, ok := s.Start[j.ID]; ok {
					prevFinish = finish[j.ID]
					continue
				}
				start := prevFinish
				ok := true
				for _, d := range j.Deps {
					f, fin := finish[d]
					if !fin {
						ok = false
						break
					}
					if f > start {
						start = f
					}
				}
				if !ok {
					break
				}
				s.Start[j.ID] = start
				s.Machine[j.ID] = m
				finish[j.ID] = start + j.Dur
				prevFinish = finish[j.ID]
				if finish[j.ID] > s.Makespan {
					s.Makespan = finish[j.ID]
				}
				doneCount++
				progress = true
			}
		}
	}
	return s, nil
}

// Anomaly is a witness that faster execution broke a deadline.
type Anomaly struct {
	Jobs       []Job
	Machines   int
	SlowSpan   int // makespan under φ (WCET durations)
	FastSpan   int // makespan under φ′ < φ — larger despite being faster
	SpeedupJob string
}

// GrahamAnomaly returns the classical fixed instance exhibiting the
// anomaly: reducing every duration by one increases the makespan under
// list scheduling on 3 machines (Graham 1969; the paper's [31] timing
// anomalies are the same phenomenon at the WCET level).
func GrahamAnomaly() ([]Job, int) {
	jobs := []Job{
		{ID: "T1", Dur: 3},
		{ID: "T2", Dur: 2},
		{ID: "T3", Dur: 2},
		{ID: "T4", Dur: 2},
		{ID: "T5", Dur: 4, Deps: []string{"T4"}},
		{ID: "T6", Dur: 4, Deps: []string{"T4"}},
		{ID: "T7", Dur: 4, Deps: []string{"T4"}},
		{ID: "T8", Dur: 4, Deps: []string{"T4"}},
		{ID: "T9", Dur: 9, Deps: []string{"T1"}},
	}
	return jobs, 3
}

// FindAnomaly searches seeded-random small instances for a timing
// anomaly: an instance where shortening one job's duration increases the
// list-scheduling makespan. It demonstrates that the phenomenon is not an
// artifact of one contrived instance.
func FindAnomaly(seed int64, tries int) (*Anomaly, error) {
	rng := rand.New(rand.NewSource(seed))
	for range make([]struct{}, tries) {
		n := 5 + rng.Intn(5)
		machines := 2 + rng.Intn(2)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{ID: fmt.Sprintf("J%d", i), Dur: 1 + rng.Intn(8)}
			for d := 0; d < i; d++ {
				if rng.Intn(4) == 0 {
					jobs[i].Deps = append(jobs[i].Deps, fmt.Sprintf("J%d", d))
				}
			}
		}
		slow, err := ListSchedule(jobs, machines)
		if err != nil {
			return nil, err
		}
		for i := range jobs {
			if jobs[i].Dur <= 1 {
				continue
			}
			faster := make([]Job, n)
			copy(faster, jobs)
			faster[i].Dur--
			fast, err := ListSchedule(faster, machines)
			if err != nil {
				return nil, err
			}
			if fast.Makespan > slow.Makespan {
				return &Anomaly{
					Jobs:       jobs,
					Machines:   machines,
					SlowSpan:   slow.Makespan,
					FastSpan:   fast.Makespan,
					SpeedupJob: jobs[i].ID,
				}, nil
			}
		}
	}
	return nil, fmt.Errorf("timed: no anomaly found in %d tries", tries)
}

// CheckFixedRobust verifies time robustness of the deterministic model on
// an instance: for every single-job speedup, the fixed-assignment
// makespan does not increase. It returns an error naming the violating
// job if monotonicity fails (it must not, for deterministic models).
func CheckFixedRobust(jobs []Job, machines int) error {
	base, err := ListSchedule(jobs, machines)
	if err != nil {
		return err
	}
	// Freeze the list schedule's assignment as the deterministic design.
	assignment := base.Machine
	// Per-machine order = start-time order, already implied by the list
	// schedule; FixedSchedule orders by the slice order per machine, so
	// sort jobs by start time first.
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return base.Start[ordered[i].ID] < base.Start[ordered[j].ID]
	})
	slow, err := FixedSchedule(ordered, assignment, machines)
	if err != nil {
		return err
	}
	for i := range ordered {
		if ordered[i].Dur <= 1 {
			continue
		}
		faster := make([]Job, len(ordered))
		copy(faster, ordered)
		faster[i].Dur--
		fast, err := FixedSchedule(faster, assignment, machines)
		if err != nil {
			return err
		}
		if fast.Makespan > slow.Makespan {
			return fmt.Errorf("timed: deterministic model not robust: speeding up %s raised makespan %d→%d",
				ordered[i].ID, slow.Makespan, fast.Makespan)
		}
	}
	return nil
}

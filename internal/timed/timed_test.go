package timed

import (
	"strings"
	"testing"
	"testing/quick"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/engine"
	"bip/internal/expr"
)

// timerAtom fires once c reaches 3, resetting c.
func timerAtom(t *testing.T) *behavior.Atom {
	t.Helper()
	a, err := NewAtom("timer").
		Location("run").
		Clock("c").
		Port("fire").
		Transition("run", "fire", "run", expr.Ge(expr.V("c"), expr.I(3)), []string{"c"}, nil).
		Build()
	if err != nil {
		t.Fatalf("build timer: %v", err)
	}
	return a
}

func TestEagerSemanticsPeriodicFiring(t *testing.T) {
	a := timerAtom(t)
	fire := &core.Interaction{Name: "fire", Ports: []core.PortRef{core.P("timer", "fire")}}
	sys, err := Compose("periodic", []*behavior.Atom{a}, []*core.Interaction{fire}, true)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	res, err := engine.Run(sys, engine.Options{MaxSteps: 16})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Eager: tick,tick,tick,fire repeating.
	want := "tick,tick,tick,fire,tick,tick,tick,fire,tick,tick,tick,fire,tick,tick,tick,fire"
	if got := strings.Join(res.Labels, ","); got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
	if Now(res.Labels) != 12 {
		t.Fatalf("Now = %d, want 12", Now(res.Labels))
	}
}

func TestLazySemanticsAllowsEarlyTick(t *testing.T) {
	a := timerAtom(t)
	fire := &core.Interaction{Name: "fire", Ports: []core.PortRef{core.P("timer", "fire")}}
	sys, err := Compose("lazy", []*behavior.Atom{a}, []*core.Interaction{fire}, false)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	// Without eagerness both tick and fire are enabled at c=3.
	st := sys.Initial()
	for i := 0; i < 3; i++ {
		moves, err := sys.Enabled(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(moves) != 1 {
			t.Fatalf("before c=3 only tick should be enabled, got %d moves", len(moves))
		}
		st, err = sys.Exec(st, moves[0])
		if err != nil {
			t.Fatal(err)
		}
	}
	moves, err := sys.Enabled(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("at c=3 lazy semantics should allow both tick and fire, got %d", len(moves))
	}
}

func TestTickGuardBlocksTime(t *testing.T) {
	// Urgent location: time cannot pass once c reaches the bound; only
	// the discrete transition can happen. Deadline misses would appear
	// as time-locks — the §5.2.2 correspondence.
	a, err := NewAtom("urgent").
		Location("wait").
		Clock("c").
		Port("act").
		Transition("wait", "act", "wait", expr.Ge(expr.V("c"), expr.I(2)), []string{"c"}, nil).
		TickGuard("wait", expr.Lt(expr.V("c"), expr.I(2))).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	act := &core.Interaction{Name: "act", Ports: []core.PortRef{core.P("urgent", "act")}}
	sys, err := Compose("urgent", []*behavior.Atom{a}, []*core.Interaction{act}, false)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	st := sys.Initial()
	for i := 0; i < 2; i++ {
		moves, _ := sys.Enabled(st)
		if len(moves) != 1 || sys.Label(moves[0]) != "tick" {
			t.Fatalf("step %d: want only tick, got %v", i, len(moves))
		}
		st, _ = sys.Exec(st, moves[0])
	}
	moves, _ := sys.Enabled(st)
	if len(moves) != 1 || sys.Label(moves[0]) != "act" {
		t.Fatalf("at bound: want only act (tick blocked), got %d moves", len(moves))
	}
}

func TestUnitDelayFigure53(t *testing.T) {
	// k=1 is exactly the paper's 4-state, 1-clock automaton.
	locs, clocks := UnitDelaySize(1)
	if locs != 4 || clocks != 1 {
		t.Fatalf("UD(1) size = %d locations, %d clocks; want 4, 1", locs, clocks)
	}
	a, err := UnitDelay(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Locations); got != 4 {
		t.Fatalf("UD(1) has %d locations, want 4", got)
	}
}

func TestUnitDelaySimulation(t *testing.T) {
	tests := []struct {
		name    string
		k       int
		toggles []int
	}{
		{"single change", 1, []int{1, 0, 0}},
		{"alternating", 1, []int{1, 1, 1, 1}},
		{"idle units", 1, []int{0, 1, 0, 0, 1, 0}},
		{"two per unit", 2, []int{2, 0, 2, 0}},
		{"bursty", 3, []int{3, 0, 1, 2, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := SimulateUnitDelay(tt.k, tt.toggles); err != nil {
				t.Fatalf("simulation diverged from y(t)=x(t-1): %v", err)
			}
		})
	}
}

func TestUnitDelayRejectsOverrate(t *testing.T) {
	if _, err := SimulateUnitDelay(1, []int{2}); err == nil {
		t.Fatal("2 toggles per unit with k=1 must be rejected")
	}
	if _, err := UnitDelay(0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

// Property: for random admissible scripts, the unit delay tracks the
// reference for every k in 1..3.
func TestQuickUnitDelay(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		k := 1 + next(3)
		script := make([]int, 3+next(5))
		for i := range script {
			script[i] = next(k + 1)
		}
		_, err := SimulateUnitDelay(k, script)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleBasics(t *testing.T) {
	jobs := []Job{{ID: "a", Dur: 2}, {ID: "b", Dur: 3}, {ID: "c", Dur: 1, Deps: []string{"a"}}}
	s, err := ListSchedule(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3 (a→c on one machine, b on the other)", s.Makespan)
	}
	if s.Start["c"] != 2 {
		t.Fatalf("c starts at %d, want 2 (after a)", s.Start["c"])
	}
}

func TestListScheduleErrors(t *testing.T) {
	if _, err := ListSchedule([]Job{{ID: "a", Dur: 1}}, 0); err == nil {
		t.Fatal("0 machines must fail")
	}
	if _, err := ListSchedule([]Job{{ID: "a", Dur: -1}}, 1); err == nil {
		t.Fatal("negative duration must fail")
	}
	if _, err := ListSchedule([]Job{{ID: "a", Dur: 1}, {ID: "a", Dur: 1}}, 1); err == nil {
		t.Fatal("duplicate IDs must fail")
	}
	if _, err := ListSchedule([]Job{{ID: "a", Dur: 1, Deps: []string{"zz"}}}, 1); err == nil {
		t.Fatal("unknown dependency must fail")
	}
}

func TestGrahamAnomaly(t *testing.T) {
	jobs, machines := GrahamAnomaly()
	slow, err := ListSchedule(jobs, machines)
	if err != nil {
		t.Fatal(err)
	}
	faster := make([]Job, len(jobs))
	copy(faster, jobs)
	for i := range faster {
		faster[i].Dur--
	}
	fast, err := ListSchedule(faster, machines)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan <= slow.Makespan-1 {
		t.Fatalf("anomaly absent: slow=%d fast=%d — expected the classical inversion",
			slow.Makespan, fast.Makespan)
	}
	t.Logf("Graham instance: WCET makespan=%d, all-faster makespan=%d", slow.Makespan, fast.Makespan)
}

func TestFindAnomaly(t *testing.T) {
	an, err := FindAnomaly(7, 4000)
	if err != nil {
		t.Fatalf("no anomaly found: %v", err)
	}
	if an.FastSpan <= an.SlowSpan {
		t.Fatalf("reported anomaly is not one: slow=%d fast=%d", an.SlowSpan, an.FastSpan)
	}
}

func TestDeterministicRobustness(t *testing.T) {
	// The same instances that exhibit anomalies under list scheduling
	// are robust under fixed (deterministic) scheduling.
	jobs, machines := GrahamAnomaly()
	if err := CheckFixedRobust(jobs, machines); err != nil {
		t.Fatalf("deterministic schedule must be time-robust: %v", err)
	}
	an, err := FindAnomaly(7, 4000)
	if err != nil {
		t.Skip("no random anomaly instance")
	}
	if err := CheckFixedRobust(an.Jobs, an.Machines); err != nil {
		t.Fatalf("deterministic schedule must be time-robust on the anomaly instance: %v", err)
	}
}

func TestFixedScheduleCycleDetection(t *testing.T) {
	jobs := []Job{
		{ID: "a", Dur: 1, Deps: []string{"b"}},
		{ID: "b", Dur: 1, Deps: []string{"a"}},
	}
	if _, err := FixedSchedule(jobs, map[string]int{"a": 0, "b": 0}, 1); err == nil {
		t.Fatal("cyclic dependencies must fail")
	}
	if _, err := FixedSchedule(jobs, map[string]int{"a": 5}, 1); err == nil {
		t.Fatal("invalid assignment must fail")
	}
}

// Package glue implements the paper's expressiveness framework for
// component glue (§5.3, [5]): glues are compared over the same set of
// atomic components modulo bisimilarity of the composed systems.
//
// Its centerpiece is the executable separation result of experiment E2:
// BIP's broadcast (a trigger connector plus maximal-progress priorities)
// cannot be expressed by any interaction-only glue over unchanged
// components. The package builds the witness system — one sender, two
// receivers that toggle between ready and busy — and exhaustively checks
// all 2^7 interaction-only glues over the three synchronization ports,
// proving none bisimilar. This is the paper's claim that the glue of BIP
// (interactions + priorities) is strictly more expressive than
// interactions alone.
package glue

import (
	"fmt"
	"sort"
	"strings"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/lts"
)

// witnessAtoms returns the three components of the separation witness:
// a sender that can always send, and two receivers that alternate
// between ready (able to receive) and busy via internal toggles.
func witnessAtoms() (sender, receiver *behavior.Atom) {
	sender = behavior.NewBuilder("S").
		Location("s").
		Port("snd").
		Transition("s", "snd", "s").
		MustBuild()
	receiver = behavior.NewBuilder("R").
		Location("ready", "busy").
		Port("rcv").
		Port("work").
		Port("rest").
		Transition("ready", "rcv", "ready").
		Transition("ready", "work", "busy").
		Transition("busy", "rest", "ready").
		MustBuild()
	return sender, receiver
}

// syncPorts are the ports over which candidate glues range.
var syncPorts = []core.PortRef{
	{Comp: "S", Port: "snd"},
	{Comp: "R1", Port: "rcv"},
	{Comp: "R2", Port: "rcv"},
}

// portSetLabel canonically names an interaction by its port set, so that
// systems with differently-named glues are compared on equal footing.
func portSetLabel(ports []core.PortRef) string {
	parts := make([]string, len(ports))
	for i, p := range ports {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "+")
}

// CanonicalRelabel maps every interaction of sys to its port-set label.
func CanonicalRelabel(sys *core.System) lts.Relabel {
	m := make(map[string]string, len(sys.Interactions))
	for _, in := range sys.Interactions {
		m[in.Name] = portSetLabel(in.Ports)
	}
	return func(label string) (string, bool) {
		if to, ok := m[label]; ok {
			return to, true
		}
		return label, true
	}
}

// toggles adds the receivers' internal steps, present in every compared
// system (they are behaviour, not glue).
func toggles(b *core.SystemBuilder) *core.SystemBuilder {
	return b.
		Singleton("R1", "work").Singleton("R1", "rest").
		Singleton("R2", "work").Singleton("R2", "rest")
}

// BroadcastSystem builds the reference: S broadcasts to whichever
// receivers are ready, with maximal progress (the BIP broadcast
// semantics: a ready receiver cannot be skipped, and the sender is never
// blocked).
func BroadcastSystem() (*core.System, error) {
	s, r := witnessAtoms()
	b := core.NewSystem("broadcast").
		Add(s.Rename("S")).
		AddAs("R1", r).
		AddAs("R2", r).
		Connector(core.Broadcast("b", syncPorts[0], syncPorts[1], syncPorts[2]))
	return toggles(b).Build()
}

// InteractionOnlySystem builds the candidate with the given glue: a set
// of interactions over syncPorts encoded as a bitmask over the 7
// non-empty port subsets (bit i set ⇒ subset i+1 is an interaction).
func InteractionOnlySystem(mask int) (*core.System, error) {
	if mask < 0 || mask >= 1<<7 {
		return nil, fmt.Errorf("glue: mask %d out of range", mask)
	}
	s, r := witnessAtoms()
	b := core.NewSystem(fmt.Sprintf("cand-%03d", mask)).
		Add(s.Rename("S")).
		AddAs("R1", r).
		AddAs("R2", r)
	for subset := 1; subset <= 7; subset++ {
		if mask&(1<<(subset-1)) == 0 {
			continue
		}
		var ports []core.PortRef
		for bit := 0; bit < 3; bit++ {
			if subset&(1<<bit) != 0 {
				ports = append(ports, syncPorts[bit])
			}
		}
		b.Connect(fmt.Sprintf("i%d", subset), ports...)
	}
	return toggles(b).Build()
}

// SeparationResult reports the outcome of the exhaustive check.
type SeparationResult struct {
	Candidates int
	Equivalent []int // masks found bisimilar (must be empty)
}

// CheckSeparation exhaustively compares every interaction-only glue with
// the broadcast system modulo bisimilarity under canonical port-set
// labels. A sound implementation of the paper's Theorem ([5]) finds no
// equivalent candidate.
func CheckSeparation() (*SeparationResult, error) {
	ref, err := BroadcastSystem()
	if err != nil {
		return nil, err
	}
	lRef, err := lts.Explore(ref, lts.Options{})
	if err != nil {
		return nil, err
	}
	refRelabel := CanonicalRelabel(ref)

	res := &SeparationResult{}
	for mask := 0; mask < 1<<7; mask++ {
		cand, err := InteractionOnlySystem(mask)
		if err != nil {
			return nil, err
		}
		lCand, err := lts.Explore(cand, lts.Options{})
		if err != nil {
			return nil, err
		}
		res.Candidates++
		if lts.Bisimilar(lRef, lCand, refRelabel, CanonicalRelabel(cand)) {
			res.Equivalent = append(res.Equivalent, mask)
		}
	}
	return res, nil
}

// PriorityGlueMatches verifies the positive direction: with priorities
// allowed, the broadcast behaviour is expressible (trivially by the BIP
// connector expansion itself). It exists so that the separation result is
// presented alongside its complement: the candidate space is the problem,
// not the comparison method.
func PriorityGlueMatches() (bool, error) {
	a, err := BroadcastSystem()
	if err != nil {
		return false, err
	}
	b, err := BroadcastSystem()
	if err != nil {
		return false, err
	}
	la, err := lts.Explore(a, lts.Options{})
	if err != nil {
		return false, err
	}
	lb, err := lts.Explore(b, lts.Options{})
	if err != nil {
		return false, err
	}
	return lts.Bisimilar(la, lb, CanonicalRelabel(a), CanonicalRelabel(b)), nil
}

package glue

import (
	"testing"

	"bip/internal/lts"
)

func TestBroadcastSystemShape(t *testing.T) {
	sys, err := BroadcastSystem()
	if err != nil {
		t.Fatal(err)
	}
	// Connector expansion: 4 broadcast interactions + 4 toggles.
	if got := len(sys.Interactions); got != 8 {
		t.Fatalf("interactions = %d, want 8", got)
	}
	l, err := lts.Explore(sys, lts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 readiness combinations of the receivers.
	if l.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", l.NumStates())
	}
	// Maximality: in the both-ready initial state, the only send is the
	// full broadcast.
	sends := 0
	for _, e := range l.Edges(0) {
		lab, _ := CanonicalRelabel(sys)(e.Label)
		if lab == "R1.rcv+R2.rcv+S.snd" {
			sends++
		}
		if lab == "S.snd" || lab == "R1.rcv+S.snd" || lab == "R2.rcv+S.snd" {
			t.Fatalf("non-maximal send %q enabled in both-ready state", lab)
		}
	}
	if sends != 1 {
		t.Fatalf("maximal broadcast count = %d, want 1", sends)
	}
}

func TestInteractionOnlySystemMask(t *testing.T) {
	// Mask 0: no glue at all — only toggles.
	sys, err := InteractionOnlySystem(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Interactions); got != 4 {
		t.Fatalf("interactions = %d, want 4 toggles", got)
	}
	// Full mask: all 7 subsets.
	sys7, err := InteractionOnlySystem(127)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys7.Interactions); got != 11 {
		t.Fatalf("interactions = %d, want 7 + 4 toggles", got)
	}
	if _, err := InteractionOnlySystem(-1); err == nil {
		t.Fatal("negative mask must fail")
	}
	if _, err := InteractionOnlySystem(200); err == nil {
		t.Fatal("oversized mask must fail")
	}
}

func TestSeparation(t *testing.T) {
	// E2: no interaction-only glue reproduces broadcast-with-priorities.
	res, err := CheckSeparation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 128 {
		t.Fatalf("candidates = %d, want 128", res.Candidates)
	}
	if len(res.Equivalent) != 0 {
		t.Fatalf("interaction-only glues %v claimed equivalent to broadcast — the separation theorem is violated", res.Equivalent)
	}
}

func TestPriorityGlueMatches(t *testing.T) {
	ok, err := PriorityGlueMatches()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the broadcast system must be bisimilar to itself under canonical labels")
	}
}

func TestCanonicalRelabelPassThrough(t *testing.T) {
	sys, err := BroadcastSystem()
	if err != nil {
		t.Fatal(err)
	}
	r := CanonicalRelabel(sys)
	if l, ok := r("unrelated"); !ok || l != "unrelated" {
		t.Fatalf("unknown labels must pass through, got %q %v", l, ok)
	}
	// A toggle singleton maps to its port-set name.
	if l, ok := r("R1.work"); !ok || l != "R1.work" {
		t.Fatalf("R1.work → %q %v", l, ok)
	}
}

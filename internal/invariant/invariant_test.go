package invariant

import (
	"testing"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/models"
)

func TestPhilosophersProvedDeadlockFree(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		sys, err := models.Philosophers(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Verify(sys, Options{})
		if err != nil {
			t.Fatalf("Verify(%d): %v", n, err)
		}
		if !res.DeadlockFree {
			t.Fatalf("philosophers-%d: compositional proof failed: %s", n, FormatResult(res))
		}
		if len(res.Traps) == 0 {
			t.Fatalf("philosophers-%d: no interaction invariants found", n)
		}
	}
}

func TestTwoPhasePhilosophersNotProved(t *testing.T) {
	sys, err := models.PhilosophersDeadlocking(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(sys, Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.DeadlockFree {
		t.Fatal("two-phase philosophers deadlock; the verifier must not prove them deadlock-free")
	}
	// Soundness check: the candidate corresponds to the real deadlock —
	// every philosopher holding its left fork.
	for comp, loc := range res.Candidate {
		if len(comp) >= 4 && comp[:4] == "phil" && loc != "hasLeft" {
			// Some other candidate is acceptable (the method is an
			// abstraction), but at minimum a candidate must exist.
			t.Logf("candidate: %s@%s", comp, loc)
		}
	}
	if len(res.Candidate) == 0 {
		t.Fatal("inconclusive result must carry a candidate deadlock")
	}
}

func TestGasStationProved(t *testing.T) {
	sys, err := models.GasStation(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(sys, Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.DeadlockFree {
		t.Fatalf("gas station should be proved deadlock-free: %s", FormatResult(res))
	}
}

func TestTokenRingProved(t *testing.T) {
	sys, err := models.TokenRing(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(sys, Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.DeadlockFree {
		t.Fatalf("token ring should be proved deadlock-free: %s", FormatResult(res))
	}
}

// A system that genuinely deadlocks with no data guards: two components
// that each take one step and stop.
func TestRealDeadlockDetected(t *testing.T) {
	oneShot := behavior.NewBuilder("x").
		Location("s", "t").
		Port("p").
		Transition("s", "p", "t").
		MustBuild()
	sys := core.NewSystem("stopper").
		AddAs("a", oneShot).
		AddAs("b", oneShot).
		Connect("step", core.P("a", "p"), core.P("b", "p")).
		MustBuild()
	res, err := Verify(sys, Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.DeadlockFree {
		t.Fatal("stopper reaches a terminal state; must not be proved deadlock-free")
	}
	if res.Candidate["a"] != "t" || res.Candidate["b"] != "t" {
		t.Fatalf("candidate = %v, want both at t", res.Candidate)
	}
}

func TestGuardedModelInconclusive(t *testing.T) {
	// GCD's liveness depends on data guards, which the abstraction
	// ignores: the verifier must be conservative (inconclusive), not
	// wrongly conclusive.
	sys, err := models.GCD(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(sys, Options{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.DeadlockFree {
		t.Fatal("guard-dependent model must be inconclusive")
	}
}

func TestTrapReuseIncremental(t *testing.T) {
	// Verify philosophers-5, then re-verify reusing its traps: the
	// reused traps must be revalidated and the proof must still close.
	sys, err := models.Philosophers(5)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Verify(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.DeadlockFree {
		t.Fatalf("base proof failed: %s", FormatResult(res1))
	}
	res2, err := Verify(sys, Options{ReuseTraps: res1.Traps})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.DeadlockFree {
		t.Fatalf("proof with reused traps failed: %s", FormatResult(res2))
	}

	// Reuse traps from a smaller system (different place names do not
	// resolve): must be skipped gracefully, not crash.
	small, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	resSmall, err := Verify(small, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := Verify(sys, Options{ReuseTraps: resSmall.Traps})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.DeadlockFree {
		t.Fatalf("proof with partially-applicable traps failed: %s", FormatResult(res3))
	}
}

func TestTrapsAreActualTraps(t *testing.T) {
	sys, err := models.Philosophers(3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := buildAnalysis(sys)
	if err != nil {
		t.Fatal(err)
	}
	traps, err := a.enumerateTraps(50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traps) == 0 {
		t.Fatal("no traps found")
	}
	for _, trap := range traps {
		if !a.isTrap(trap) {
			t.Fatalf("enumerated set is not a trap: %v", a.placeRefs(trap))
		}
		if !a.isMarked(trap) {
			t.Fatalf("enumerated trap is not initially marked: %v", a.placeRefs(trap))
		}
	}
}

func TestFormatResult(t *testing.T) {
	sys, err := models.Philosophers(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if out == "" {
		t.Fatal("empty format")
	}
	res2 := &Result{System: "x", Candidate: map[string]string{"a": "s"}}
	if FormatResult(res2) == "" {
		t.Fatal("empty format for inconclusive")
	}
}

func TestPlaceRefString(t *testing.T) {
	p := PlaceRef{Comp: "phil0", Loc: "eating"}
	if p.String() != "phil0@eating" {
		t.Fatalf("String = %q", p.String())
	}
}

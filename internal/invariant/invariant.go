// Package invariant implements D-Finder-style compositional verification
// (§5.6 of the paper): instead of exploring the global state space, it
// proves deadlock-freedom from the conjunction of
//
//   - component invariants CI — per-component reachable control locations,
//     computed locally in isolation;
//   - interaction invariants II — initially-marked traps of the Petri-net
//     abstraction induced by the glue, enumerated with a SAT solver;
//   - DIS — the predicate characterizing global deadlock states.
//
// If CI ∧ II ∧ DIS is unsatisfiable, no reachable state is a deadlock.
// The method is sound and may be inconclusive (it returns a candidate
// deadlock that the abstraction could not exclude); it never explores the
// product state space, which is why experiment E1 shows it scaling
// polynomially where monolithic model checking scales exponentially.
//
// Data guards are abstracted conservatively: a transition with a data
// guard "may be disabled", so it contributes nothing to must-enabledness
// in DIS. Models whose liveness hinges on data guards are reported
// inconclusive rather than wrongly proven.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"bip/internal/core"
	"bip/internal/sat"
)

// PlaceRef names a Petri-net place: a control location of a component.
type PlaceRef struct {
	Comp string
	Loc  string
}

// String renders the place as "comp@loc".
func (p PlaceRef) String() string { return p.Comp + "@" + p.Loc }

// Result is the outcome of a compositional verification run.
type Result struct {
	System       string
	DeadlockFree bool
	// Candidate is a potential deadlock the abstraction could not
	// exclude (nil when DeadlockFree). The verdict is "inconclusive",
	// not "deadlock": the candidate may be unreachable.
	Candidate map[string]string
	// Traps are the interaction invariants used, as place sets.
	Traps [][]PlaceRef
	// Sizes of the abstraction, for reporting.
	NumPlaces         int
	NumNetTransitions int
}

// Options configures Verify.
type Options struct {
	// MaxTraps bounds interaction-invariant enumeration; 0 means the
	// default of 4·(number of places).
	MaxTraps int
	// ReuseTraps seeds the analysis with previously computed traps
	// (from an earlier Result on a system with the same atoms and a
	// subset of the interactions). Each is revalidated against the
	// current net and kept only if still a trap — the paper's
	// incremental-verification optimization (§5.6).
	ReuseTraps [][]PlaceRef
}

// analysis is the Petri-net abstraction of a system.
type analysis struct {
	sys      *core.System
	places   []PlaceRef
	placeIdx map[PlaceRef]int
	initial  []int // initially marked places
	// reach[i] = locally reachable locations of component i.
	reach []map[string]bool
	trans []netTrans
}

// netTrans is one firing alternative of one interaction: the combination
// of one local transition per port.
type netTrans struct {
	interaction int
	pre, post   []int
	guarded     bool
}

// Verify runs the compositional deadlock-freedom analysis.
//
// The analysis first decomposes the system into the connected components
// of its interaction graph. A global deadlock requires every cluster to
// be blocked simultaneously, so proving any one cluster deadlock-free
// proves the whole system — and since CI, II and DIS are all conjunctive
// over clusters, this modular decomposition is exact for the
// abstraction, not an approximation. It is what keeps verification
// linear in the number of independent subsystems where monolithic
// exploration multiplies (experiment E1).
//
// Each cluster is analyzed with the counterexample-guided loop of
// D-Finder: find a deadlock candidate satisfying CI ∧ II ∧ DIS, then
// search for an initially-marked trap whose places are all unmarked in
// the candidate (which therefore refutes it), add its invariant, and
// repeat. The loop ends with a proof (no candidate) or an irrefutable
// candidate (inconclusive).
func Verify(sys *core.System, opts Options) (*Result, error) {
	clusters, err := interactionClusters(sys)
	if err != nil {
		return nil, err
	}
	if len(clusters) <= 1 {
		return verifyCluster(sys, opts)
	}
	agg := &Result{System: sys.Name}
	candidate := make(map[string]string)
	for _, cl := range clusters {
		res, err := verifyCluster(cl, opts)
		if err != nil {
			return nil, err
		}
		agg.NumPlaces += res.NumPlaces
		agg.NumNetTransitions += res.NumNetTransitions
		agg.Traps = append(agg.Traps, res.Traps...)
		if res.DeadlockFree {
			// One always-live cluster keeps the whole system moving.
			agg.DeadlockFree = true
			return agg, nil
		}
		for c, l := range res.Candidate {
			candidate[c] = l
		}
	}
	agg.Candidate = candidate
	return agg, nil
}

// interactionClusters splits the system into the connected components of
// its interaction graph (atoms linked when they share an interaction).
func interactionClusters(sys *core.System) ([]*core.System, error) {
	n := len(sys.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, in := range sys.Interactions {
		first := sys.AtomIndex(in.Ports[0].Comp)
		for _, pr := range in.Ports[1:] {
			union(first, sys.AtomIndex(pr.Comp))
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	if len(groups) <= 1 {
		return []*core.System{sys}, nil
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []*core.System
	for ci, r := range roots {
		b := core.NewSystem(fmt.Sprintf("%s/cluster%d", sys.Name, ci))
		inCluster := make(map[string]bool)
		for _, ai := range groups[r] {
			b.AddAs(sys.Atoms[ai].Name, sys.Atoms[ai])
			inCluster[sys.Atoms[ai].Name] = true
		}
		for _, in := range sys.Interactions {
			if inCluster[in.Ports[0].Comp] {
				b.ConnectGD(in.Name, in.Guard, in.Action, in.Ports...)
			}
		}
		cl, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("invariant: cluster split: %w", err)
		}
		out = append(out, cl)
	}
	return out, nil
}

// verifyCluster runs the CEGAR loop on one connected system.
func verifyCluster(sys *core.System, opts Options) (*Result, error) {
	a, err := buildAnalysis(sys)
	if err != nil {
		return nil, err
	}
	maxTraps := opts.MaxTraps
	if maxTraps <= 0 {
		maxTraps = 4 * len(a.places)
	}

	var traps [][]int
	for _, seed := range opts.ReuseTraps {
		if idx, ok := a.resolveTrap(seed); ok && a.isTrap(idx) && a.isMarked(idx) {
			traps = append(traps, idx)
		}
	}

	res := &Result{
		System:            sys.Name,
		NumPlaces:         len(a.places),
		NumNetTransitions: len(a.trans),
	}

	dl, err := a.newDeadlockSolver(traps)
	if err != nil {
		return nil, err
	}
	trapSolver, err := a.newTrapSolver()
	if err != nil {
		return nil, err
	}
	for iter := 0; ; iter++ {
		candidate, found := dl.candidate()
		if !found {
			res.DeadlockFree = true
			break
		}
		if iter >= maxTraps {
			res.Candidate = candidate
			break
		}
		trap, ok := trapSolver.excluding(candidate)
		if !ok {
			res.Candidate = candidate
			break
		}
		traps = append(traps, trap)
		if err := dl.addTrap(trap); err != nil {
			return nil, err
		}
	}
	for _, tr := range traps {
		res.Traps = append(res.Traps, a.placeRefs(tr))
	}
	return res, nil
}

// buildAnalysis constructs the Petri-net abstraction.
func buildAnalysis(sys *core.System) (*analysis, error) {
	a := &analysis{sys: sys, placeIdx: make(map[PlaceRef]int)}
	// Places and local reachability. Reachable locations are computed
	// with a worklist over a source-location index: each transition is
	// inspected once when its source first becomes reachable, instead of
	// rescanning the whole transition list until a fixed point.
	for _, atom := range sys.Atoms {
		outgoing := make(map[string][]string, len(atom.Locations))
		for _, t := range atom.Transitions {
			outgoing[t.From] = append(outgoing[t.From], t.To)
		}
		reach := map[string]bool{atom.Initial: true}
		frontier := []string{atom.Initial}
		for len(frontier) > 0 {
			loc := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, to := range outgoing[loc] {
				if !reach[to] {
					reach[to] = true
					frontier = append(frontier, to)
				}
			}
		}
		a.reach = append(a.reach, reach)
		for _, loc := range atom.Locations {
			p := PlaceRef{Comp: atom.Name, Loc: loc}
			a.placeIdx[p] = len(a.places)
			a.places = append(a.places, p)
			if loc == atom.Initial {
				a.initial = append(a.initial, a.placeIdx[p])
			}
		}
	}
	// Net transitions: one per combination of local transitions.
	for ii, in := range sys.Interactions {
		// Per-port alternatives.
		type alt struct {
			pre, post int
			guarded   bool
		}
		options := make([][]alt, len(in.Ports))
		for pi, pr := range in.Ports {
			atom := sys.Atom(pr.Comp)
			for ti, t := range atom.Transitions {
				if t.Port != pr.Port {
					continue
				}
				_ = ti
				options[pi] = append(options[pi], alt{
					pre:     a.placeIdx[PlaceRef{Comp: pr.Comp, Loc: t.From}],
					post:    a.placeIdx[PlaceRef{Comp: pr.Comp, Loc: t.To}],
					guarded: t.Guard != nil,
				})
			}
			if len(options[pi]) == 0 {
				// A port with no transitions: the interaction can never
				// fire; it contributes no net transitions.
				options = nil
				break
			}
		}
		if options == nil {
			continue
		}
		combo := make([]alt, len(options))
		var rec func(int)
		rec = func(pi int) {
			if pi == len(options) {
				nt := netTrans{interaction: ii, guarded: in.Guard != nil}
				for _, c := range combo {
					nt.pre = append(nt.pre, c.pre)
					nt.post = append(nt.post, c.post)
					if c.guarded {
						nt.guarded = true
					}
				}
				a.trans = append(a.trans, nt)
				return
			}
			for _, o := range options[pi] {
				combo[pi] = o
				rec(pi + 1)
			}
		}
		rec(0)
	}
	return a, nil
}

func (a *analysis) placeRefs(idx []int) []PlaceRef {
	out := make([]PlaceRef, len(idx))
	for i, p := range idx {
		out[i] = a.places[p]
	}
	return out
}

// resolveTrap maps place names back to indices; it reports false when a
// place is unknown (the system changed shape).
func (a *analysis) resolveTrap(refs []PlaceRef) ([]int, bool) {
	out := make([]int, 0, len(refs))
	for _, r := range refs {
		i, ok := a.placeIdx[r]
		if !ok {
			return nil, false
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out, true
}

// isTrap checks the trap condition against every net transition.
func (a *analysis) isTrap(set []int) bool {
	in := make(map[int]bool, len(set))
	for _, p := range set {
		in[p] = true
	}
	for _, t := range a.trans {
		touches := false
		for _, p := range t.pre {
			if in[p] {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		feeds := false
		for _, q := range t.post {
			if in[q] {
				feeds = true
				break
			}
		}
		if !feeds {
			return false
		}
	}
	return true
}

// isMarked reports whether the set contains an initially marked place.
func (a *analysis) isMarked(set []int) bool {
	init := make(map[int]bool, len(a.initial))
	for _, p := range a.initial {
		init[p] = true
	}
	for _, p := range set {
		if init[p] {
			return true
		}
	}
	return false
}

// enumerateTraps finds up to limit initially-marked traps with a SAT
// solver, greedily shrinking each model toward a minimal trap and
// blocking supersets of found traps (including the pre-seeded ones).
func (a *analysis) enumerateTraps(limit int, seeded [][]int) ([][]int, error) {
	if limit <= 0 {
		return nil, nil
	}
	s := sat.New()
	vars := make([]int, len(a.places))
	for i, p := range a.places {
		vars[i] = s.NewNamedVar(p.String())
	}
	// Trap condition: p ∈ pre(t) ∧ p ∈ S ⇒ post(t) ∩ S ≠ ∅.
	for _, t := range a.trans {
		post := make([]sat.Lit, 0, len(t.post))
		for _, q := range t.post {
			post = append(post, sat.Lit(vars[q]))
		}
		for _, p := range t.pre {
			clause := append([]sat.Lit{sat.Lit(-vars[p])}, post...)
			if err := s.AddClause(clause...); err != nil {
				return nil, fmt.Errorf("trap clause: %w", err)
			}
		}
	}
	// Initially marked.
	marked := make([]sat.Lit, 0, len(a.initial))
	for _, p := range a.initial {
		marked = append(marked, sat.Lit(vars[p]))
	}
	if err := s.AddClause(marked...); err != nil {
		return nil, fmt.Errorf("marking clause: %w", err)
	}
	block := func(set []int) error {
		lits := make([]sat.Lit, len(set))
		for i, p := range set {
			lits[i] = sat.Lit(-vars[p])
		}
		return s.AddClause(lits...)
	}
	for _, t := range seeded {
		if err := block(t); err != nil {
			return nil, err
		}
	}

	var out [][]int
	for len(out) < limit {
		m, ok := s.Solve()
		if !ok {
			break
		}
		// Greedy shrink: walk places in order, try to force each
		// currently-true place to false.
		var assumptions []sat.Lit
		for i := range a.places {
			if !m[vars[i]] {
				continue
			}
			try := append(append([]sat.Lit(nil), assumptions...), sat.Lit(-vars[i]))
			if m2, ok := s.Solve(try...); ok {
				assumptions = try
				m = m2
			}
		}
		var trap []int
		for i := range a.places {
			if m[vars[i]] {
				trap = append(trap, i)
			}
		}
		if len(trap) == 0 {
			break
		}
		out = append(out, trap)
		if err := block(trap); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// deadlockSolver holds the persistent CI ∧ II ∧ DIS solver; trap
// invariants are added incrementally as the refinement loop finds them.
type deadlockSolver struct {
	a    *analysis
	s    *sat.Solver
	vars []int
}

// newDeadlockSolver builds CI and DIS once; traps are seeded and then
// added via addTrap.
func (a *analysis) newDeadlockSolver(traps [][]int) (*deadlockSolver, error) {
	cand, _, err := a.deadlockCandidateSetup(traps)
	return cand, err
}

// candidate returns a location vector satisfying all current
// constraints, or ok=false when none exists (deadlock-freedom proved).
func (d *deadlockSolver) candidate() (map[string]string, bool) {
	m, ok := d.s.Solve()
	if !ok {
		return nil, false
	}
	cand := make(map[string]string, len(d.a.sys.Atoms))
	for i, p := range d.a.places {
		if m[d.vars[i]] {
			cand[p.Comp] = p.Loc
		}
	}
	return cand, true
}

// addTrap installs a trap invariant clause.
func (d *deadlockSolver) addTrap(trap []int) error {
	lits := make([]sat.Lit, len(trap))
	for i, p := range trap {
		lits[i] = sat.Lit(d.vars[p])
	}
	return d.s.AddClause(lits...)
}

// trapSolver holds the persistent trap-condition solver used to refute
// candidates.
type trapSolver struct {
	a    *analysis
	s    *sat.Solver
	vars []int
}

// newTrapSolver builds the trap constraints (every transition consuming
// from the set feeds it) plus initial marking.
func (a *analysis) newTrapSolver() (*trapSolver, error) {
	s := sat.New()
	vars := make([]int, len(a.places))
	for i, p := range a.places {
		vars[i] = s.NewNamedVar(p.String())
	}
	for _, t := range a.trans {
		post := make([]sat.Lit, 0, len(t.post))
		for _, q := range t.post {
			post = append(post, sat.Lit(vars[q]))
		}
		for _, p := range t.pre {
			clause := append([]sat.Lit{sat.Lit(-vars[p])}, post...)
			if err := s.AddClause(clause...); err != nil {
				return nil, fmt.Errorf("trap clause: %w", err)
			}
		}
	}
	marked := make([]sat.Lit, 0, len(a.initial))
	for _, p := range a.initial {
		marked = append(marked, sat.Lit(vars[p]))
	}
	if err := s.AddClause(marked...); err != nil {
		return nil, fmt.Errorf("marking clause: %w", err)
	}
	return &trapSolver{a: a, s: s, vars: vars}, nil
}

// excluding searches for an initially-marked trap disjoint from the
// places marked in the candidate — such a trap's invariant refutes the
// candidate. The found trap is greedily shrunk.
func (t *trapSolver) excluding(candidate map[string]string) ([]int, bool) {
	assumptions := make([]sat.Lit, 0, len(candidate))
	for i, p := range t.a.places {
		if candidate[p.Comp] == p.Loc {
			assumptions = append(assumptions, sat.Lit(-t.vars[i]))
		}
	}
	m, ok := t.s.Solve(assumptions...)
	if !ok {
		return nil, false
	}
	// Greedy shrink toward a minimal trap, keeping the exclusion
	// assumptions.
	for i := range t.a.places {
		if !m[t.vars[i]] {
			continue
		}
		try := append(append([]sat.Lit(nil), assumptions...), sat.Lit(-t.vars[i]))
		if m2, ok := t.s.Solve(try...); ok {
			assumptions = try
			m = m2
		}
	}
	var trap []int
	for i := range t.a.places {
		if m[t.vars[i]] {
			trap = append(trap, i)
		}
	}
	return trap, len(trap) > 0
}

// deadlockCandidateSetup builds the CI ∧ II ∧ DIS solver.
func (a *analysis) deadlockCandidateSetup(traps [][]int) (*deadlockSolver, bool, error) {
	s := sat.New()
	vars := make([]int, len(a.places))
	for i, p := range a.places {
		vars[i] = s.NewNamedVar(p.String())
	}
	// CI: exactly one reachable location per component; unreachable
	// locations are false.
	for ci, atom := range a.sys.Atoms {
		var compVars []int
		for _, loc := range atom.Locations {
			pi := a.placeIdx[PlaceRef{Comp: atom.Name, Loc: loc}]
			if a.reach[ci][loc] {
				compVars = append(compVars, vars[pi])
			} else if err := s.AddClause(sat.Lit(-vars[pi])); err != nil {
				return nil, false, err
			}
		}
		if err := s.AtLeastOne(compVars); err != nil {
			return nil, false, err
		}
		if err := s.AtMostOne(compVars); err != nil {
			return nil, false, err
		}
	}
	// II: every trap invariant — at least one trap place marked.
	for _, trap := range traps {
		lits := make([]sat.Lit, len(trap))
		for i, p := range trap {
			lits[i] = sat.Lit(vars[p])
		}
		if err := s.AddClause(lits...); err != nil {
			return nil, false, err
		}
	}
	// DIS: for every unguarded firing alternative, at least one of its
	// pre-places is unmarked. (Guarded alternatives may be disabled by
	// data regardless of locations, hence contribute no constraint.)
	seen := make(map[string]bool)
	for _, t := range a.trans {
		if t.guarded {
			continue
		}
		pre := append([]int(nil), t.pre...)
		sort.Ints(pre)
		key := fmt.Sprint(pre)
		if seen[key] {
			continue
		}
		seen[key] = true
		lits := make([]sat.Lit, len(pre))
		for i, p := range pre {
			lits[i] = sat.Lit(-vars[p])
		}
		if err := s.AddClause(lits...); err != nil {
			return nil, false, err
		}
	}

	return &deadlockSolver{a: a, s: s, vars: vars}, true, nil
}

// FormatResult renders a result for tool output.
func FormatResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: places=%d netTransitions=%d traps=%d — ",
		r.System, r.NumPlaces, r.NumNetTransitions, len(r.Traps))
	if r.DeadlockFree {
		b.WriteString("DEADLOCK-FREE (proved compositionally)")
	} else {
		b.WriteString("INCONCLUSIVE; candidate deadlock:")
		comps := make([]string, 0, len(r.Candidate))
		for c := range r.Candidate {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		for _, c := range comps {
			fmt.Fprintf(&b, " %s@%s", c, r.Candidate[c])
		}
	}
	return b.String()
}

// Package lustre implements a miniature synchronous data-flow language —
// the essence of Lustre — together with (a) a reference interpreter
// giving its synchronous semantics and (b) a structure-preserving
// embedding into BIP following Fig. 5.2 of the paper: every data-flow
// node becomes one atomic component, data-flow connections become
// interactions, and the implicit synchronous cycle becomes the global
// str/cmp rendezvous pair.
//
// Experiment E3 checks the two semantics coincide and that the embedding
// is linear-size and one-to-one on nodes — the paper's "semantic
// coherency through embeddings" principle made executable.
package lustre

import (
	"fmt"
)

// Expr is a data-flow expression. Flows are integer streams.
type Expr interface{ node() string }

// Ref references a named flow (an equation of the program).
type Ref struct{ Name string }

// Input references an input flow.
type Input struct{ Name string }

// Const is a constant stream.
type Const struct{ Val int64 }

// Plus adds two streams point-wise.
type Plus struct{ A, B Expr }

// Minus subtracts two streams point-wise.
type Minus struct{ A, B Expr }

// Pre is the unit delay: (pre x)(t) = x(t−1), with Init at t = 0.
type Pre struct {
	Init int64
	X    Expr
}

func (Ref) node() string   { return "ref" }
func (Input) node() string { return "input" }
func (Const) node() string { return "const" }
func (Plus) node() string  { return "plus" }
func (Minus) node() string { return "minus" }
func (Pre) node() string   { return "pre" }

// Equation defines a named flow.
type Equation struct {
	Name string
	Rhs  Expr
}

// Program is a system of flow equations.
type Program struct {
	Name    string
	Inputs  []string
	Eqs     []Equation
	Outputs []string
}

// Integrator returns the paper's Fig. 5.2 example: Y = X + pre(Y), the
// running sum of the input stream.
func Integrator() *Program {
	return &Program{
		Name:    "integrator",
		Inputs:  []string{"X"},
		Eqs:     []Equation{{Name: "Y", Rhs: Plus{A: Input{Name: "X"}, B: Pre{Init: 0, X: Ref{Name: "Y"}}}}},
		Outputs: []string{"Y"},
	}
}

// node kinds of the compiled graph.
type nodeKind int

const (
	nInput nodeKind = iota + 1
	nConst
	nPlus
	nMinus
	nPre
)

func (k nodeKind) String() string {
	switch k {
	case nInput:
		return "in"
	case nConst:
		return "const"
	case nPlus:
		return "add"
	case nMinus:
		return "sub"
	case nPre:
		return "pre"
	default:
		return "??"
	}
}

// gnode is one operator of the compiled data-flow graph. Ref expressions
// are resolved to node indices during compilation, so the graph has
// exactly one node per operator occurrence — the structure the embedding
// preserves one-to-one.
type gnode struct {
	kind  nodeKind
	name  string // input name (nInput)
	val   int64  // constant (nConst) or initial value (nPre)
	args  [2]int // child node ids; -1 when absent
	nargs int
}

// graph is a compiled program.
type graph struct {
	p     *Program
	nodes []gnode
	flows map[string]int // equation name → root node id
}

// compile validates and builds the graph.
func compile(p *Program) (*graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &graph{p: p, flows: make(map[string]int, len(p.Eqs))}
	// Reserve a root slot per equation so that cyclic references (legal
	// through pre) resolve before their body is compiled.
	for _, e := range p.Eqs {
		if _, ok := e.Rhs.(Ref); ok {
			return nil, fmt.Errorf("lustre: equation %q is a bare alias; inline it", e.Name)
		}
		g.flows[e.Name] = len(g.nodes)
		g.nodes = append(g.nodes, gnode{})
	}
	var build func(e Expr) (int, error)
	fill := func(slot int, e Expr) error {
		n, err := compileNode(g, e, build)
		if err != nil {
			return err
		}
		g.nodes[slot] = n
		return nil
	}
	build = func(e Expr) (int, error) {
		if r, ok := e.(Ref); ok {
			return g.flows[r.Name], nil
		}
		slot := len(g.nodes)
		g.nodes = append(g.nodes, gnode{})
		if err := fill(slot, e); err != nil {
			return 0, err
		}
		return slot, nil
	}
	for _, e := range p.Eqs {
		if err := fill(g.flows[e.Name], e.Rhs); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func compileNode(g *graph, e Expr, build func(Expr) (int, error)) (gnode, error) {
	switch t := e.(type) {
	case Input:
		return gnode{kind: nInput, name: t.Name, args: [2]int{-1, -1}}, nil
	case Const:
		return gnode{kind: nConst, val: t.Val, args: [2]int{-1, -1}}, nil
	case Plus:
		a, err := build(t.A)
		if err != nil {
			return gnode{}, err
		}
		b, err := build(t.B)
		if err != nil {
			return gnode{}, err
		}
		return gnode{kind: nPlus, args: [2]int{a, b}, nargs: 2}, nil
	case Minus:
		a, err := build(t.A)
		if err != nil {
			return gnode{}, err
		}
		b, err := build(t.B)
		if err != nil {
			return gnode{}, err
		}
		return gnode{kind: nMinus, args: [2]int{a, b}, nargs: 2}, nil
	case Pre:
		x, err := build(t.X)
		if err != nil {
			return gnode{}, err
		}
		return gnode{kind: nPre, val: t.Init, args: [2]int{x, -1}, nargs: 1}, nil
	default:
		return gnode{}, fmt.Errorf("lustre: cannot compile %T", e)
	}
}

// Validate checks name resolution and causality: every cycle among
// flows must pass through a pre operator.
func (p *Program) Validate() error {
	eqs := make(map[string]Expr, len(p.Eqs))
	for _, e := range p.Eqs {
		if e.Rhs == nil {
			return fmt.Errorf("lustre: equation %q has no right-hand side", e.Name)
		}
		if _, dup := eqs[e.Name]; dup {
			return fmt.Errorf("lustre: duplicate equation %q", e.Name)
		}
		eqs[e.Name] = e.Rhs
	}
	inputs := make(map[string]bool, len(p.Inputs))
	for _, in := range p.Inputs {
		inputs[in] = true
	}
	for _, out := range p.Outputs {
		if _, ok := eqs[out]; !ok {
			return fmt.Errorf("lustre: output %q has no equation", out)
		}
	}
	// Name resolution everywhere (including under pre).
	var resolve func(e Expr) error
	resolve = func(e Expr) error {
		switch t := e.(type) {
		case Ref:
			if _, ok := eqs[t.Name]; !ok {
				return fmt.Errorf("lustre: reference to undefined flow %q", t.Name)
			}
		case Input:
			if !inputs[t.Name] {
				return fmt.Errorf("lustre: unknown input %q", t.Name)
			}
		case Plus:
			if err := resolve(t.A); err != nil {
				return err
			}
			return resolve(t.B)
		case Minus:
			if err := resolve(t.A); err != nil {
				return err
			}
			return resolve(t.B)
		case Pre:
			return resolve(t.X)
		case Const:
		case nil:
			return fmt.Errorf("lustre: nil expression")
		default:
			return fmt.Errorf("lustre: unknown expression %T", e)
		}
		return nil
	}
	for _, e := range p.Eqs {
		if err := resolve(e.Rhs); err != nil {
			return err
		}
	}
	// Causality: DFS over instantaneous dependencies (pre cuts them).
	const (
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visitFlow func(name string) error
	var visitExpr func(e Expr) error
	visitExpr = func(e Expr) error {
		switch t := e.(type) {
		case Ref:
			return visitFlow(t.Name)
		case Plus:
			if err := visitExpr(t.A); err != nil {
				return err
			}
			return visitExpr(t.B)
		case Minus:
			if err := visitExpr(t.A); err != nil {
				return err
			}
			return visitExpr(t.B)
		}
		return nil // pre, const, input cut or have no dependency
	}
	visitFlow = func(name string) error {
		switch color[name] {
		case grey:
			return fmt.Errorf("lustre: instantaneous cycle through %q (needs a pre)", name)
		case black:
			return nil
		}
		color[name] = grey
		if err := visitExpr(eqs[name]); err != nil {
			return err
		}
		color[name] = black
		return nil
	}
	for _, e := range p.Eqs {
		if err := visitFlow(e.Name); err != nil {
			return err
		}
	}
	return nil
}

// Interp executes the reference synchronous semantics over the compiled
// graph.
type Interp struct {
	g   *graph
	mem []int64 // pre node states, indexed by node id
}

// NewInterp validates and compiles the program.
func NewInterp(p *Program) (*Interp, error) {
	g, err := compile(p)
	if err != nil {
		return nil, err
	}
	it := &Interp{g: g, mem: make([]int64, len(g.nodes))}
	for id, n := range g.nodes {
		if n.kind == nPre {
			it.mem[id] = n.val
		}
	}
	return it, nil
}

// Step runs one synchronous cycle.
func (it *Interp) Step(in map[string]int64) (map[string]int64, error) {
	val := make([]int64, len(it.g.nodes))
	done := make([]bool, len(it.g.nodes))
	var eval func(id int) (int64, error)
	eval = func(id int) (int64, error) {
		if done[id] {
			return val[id], nil
		}
		n := it.g.nodes[id]
		var v int64
		switch n.kind {
		case nInput:
			x, ok := in[n.name]
			if !ok {
				return 0, fmt.Errorf("lustre: missing input %q", n.name)
			}
			v = x
		case nConst:
			v = n.val
		case nPlus, nMinus:
			a, err := eval(n.args[0])
			if err != nil {
				return 0, err
			}
			b, err := eval(n.args[1])
			if err != nil {
				return 0, err
			}
			if n.kind == nPlus {
				v = a + b
			} else {
				v = a - b
			}
		case nPre:
			// Phase 1 reads the stored value; the argument is evaluated
			// in phase 2.
			v = it.mem[id]
		default:
			return 0, fmt.Errorf("lustre: uncompiled node %d", id)
		}
		val[id] = v
		done[id] = true
		return v, nil
	}
	for _, rootID := range it.g.flows {
		if _, err := eval(rootID); err != nil {
			return nil, err
		}
	}
	out := make(map[string]int64, len(it.g.p.Outputs))
	for _, o := range it.g.p.Outputs {
		out[o] = val[it.g.flows[o]]
	}
	// Phase 2: every pre advances to its argument's value this cycle.
	type upd struct {
		id int
		v  int64
	}
	var updates []upd
	for id, n := range it.g.nodes {
		if n.kind != nPre {
			continue
		}
		v, err := eval(n.args[0])
		if err != nil {
			return nil, err
		}
		updates = append(updates, upd{id: id, v: v})
	}
	for _, u := range updates {
		it.mem[u.id] = u.v
	}
	return out, nil
}

package lustre

import (
	"testing"
	"testing/quick"
)

func TestIntegratorInterpreter(t *testing.T) {
	it, err := NewInterp(Integrator())
	if err != nil {
		t.Fatal(err)
	}
	// Y = X + pre(Y): running sum.
	xs := []int64{1, 2, 3, 4, 5}
	sum := int64(0)
	for i, x := range xs {
		out, err := it.Step(map[string]int64{"X": x})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		sum += x
		if out["Y"] != sum {
			t.Fatalf("step %d: Y = %d, want %d", i, out["Y"], sum)
		}
	}
}

func TestCounterProgram(t *testing.T) {
	// N = pre(N) + 1 counts cycles with no inputs.
	p := &Program{
		Name:    "counter",
		Eqs:     []Equation{{Name: "N", Rhs: Plus{A: Pre{Init: 0, X: Ref{Name: "N"}}, B: Const{Val: 1}}}},
		Outputs: []string{"N"},
	}
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		out, err := it.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		if out["N"] != int64(i) {
			t.Fatalf("cycle %d: N = %d", i, out["N"])
		}
	}
}

func TestDiffProgram(t *testing.T) {
	// D = X - pre(X): discrete derivative.
	p := &Program{
		Name:    "diff",
		Inputs:  []string{"X"},
		Eqs:     []Equation{{Name: "D", Rhs: Minus{A: Input{Name: "X"}, B: Pre{Init: 0, X: Input{Name: "X"}}}}},
		Outputs: []string{"D"},
	}
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{3, 7, 7, 2}
	want := []int64{3, 4, 0, -5}
	for i, x := range xs {
		out, err := it.Step(map[string]int64{"X": x})
		if err != nil {
			t.Fatal(err)
		}
		if out["D"] != want[i] {
			t.Fatalf("step %d: D = %d, want %d", i, out["D"], want[i])
		}
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		p    *Program
	}{
		{"instantaneous cycle", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Plus{A: Ref{Name: "Y"}, B: Const{Val: 1}}}},
			Outputs: []string{"Y"},
		}},
		{"undefined flow", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Plus{A: Ref{Name: "Z"}, B: Const{Val: 1}}}},
			Outputs: []string{"Y"},
		}},
		{"unknown input", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Plus{A: Input{Name: "X"}, B: Const{Val: 1}}}},
			Outputs: []string{"Y"},
		}},
		{"missing output", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Const{Val: 1}}},
			Outputs: []string{"Z"},
		}},
		{"duplicate equation", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Const{Val: 1}}, {Name: "Y", Rhs: Const{Val: 2}}},
			Outputs: []string{"Y"},
		}},
		{"nil rhs", &Program{
			Eqs:     []Equation{{Name: "Y"}},
			Outputs: []string{"Y"},
		}},
		{"undefined under pre", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Pre{Init: 0, X: Ref{Name: "Z"}}}},
			Outputs: []string{"Y"},
		}},
		{"bare alias", &Program{
			Eqs:     []Equation{{Name: "Y", Rhs: Const{Val: 1}}, {Name: "Z", Rhs: Ref{Name: "Y"}}},
			Outputs: []string{"Z"},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewInterp(tt.p); err == nil {
				t.Fatalf("program %q must be rejected", tt.name)
			}
		})
	}
}

func TestEmbeddingStructurePreservation(t *testing.T) {
	// Fig 5.2: the integrator has 3 nodes (input X, +, pre) and the
	// translation is one-to-one.
	emb, err := Embed(Integrator())
	if err != nil {
		t.Fatal(err)
	}
	if emb.NumNodes != 3 {
		t.Fatalf("nodes = %d, want 3", emb.NumNodes)
	}
	if len(emb.Sys.Atoms) != emb.NumNodes {
		t.Fatalf("atoms = %d, want %d (one per node)", len(emb.Sys.Atoms), emb.NumNodes)
	}
	// Interactions: one per data-flow wire (3: X→+, pre→+, +→pre) plus
	// str and cmp.
	if emb.NumWires != 3 {
		t.Fatalf("wires = %d, want 3", emb.NumWires)
	}
	if got := len(emb.Sys.Interactions); got != emb.NumWires+2 {
		t.Fatalf("interactions = %d, want %d", got, emb.NumWires+2)
	}
}

func TestEmbeddedIntegratorMatchesReference(t *testing.T) {
	prog := Integrator()
	emb, err := Embed(prog)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]map[string]int64, 8)
	for i := range inputs {
		inputs[i] = map[string]int64{"X": int64(i*3 - 5)}
	}
	got, err := emb.Run(inputs)
	if err != nil {
		t.Fatalf("embedded run: %v", err)
	}
	for i, in := range inputs {
		want, err := it.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if got[i]["Y"] != want["Y"] {
			t.Fatalf("cycle %d: embedded Y = %d, reference Y = %d", i, got[i]["Y"], want["Y"])
		}
	}
}

func TestEmbeddedMultiOutputProgram(t *testing.T) {
	// Two outputs sharing subexpressions and a pre chain:
	// S = X + pre(S); D = X - pre(X).
	p := &Program{
		Name:   "both",
		Inputs: []string{"X"},
		Eqs: []Equation{
			{Name: "S", Rhs: Plus{A: Input{Name: "X"}, B: Pre{Init: 0, X: Ref{Name: "S"}}}},
			{Name: "D", Rhs: Minus{A: Input{Name: "X"}, B: Pre{Init: 0, X: Input{Name: "X"}}}},
		},
		Outputs: []string{"S", "D"},
	}
	emb, err := Embed(p)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterp(p)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []map[string]int64{{"X": 4}, {"X": -1}, {"X": 10}, {"X": 0}}
	got, err := emb.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		want, err := it.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if got[i]["S"] != want["S"] || got[i]["D"] != want["D"] {
			t.Fatalf("cycle %d: got %v, want %v", i, got[i], want)
		}
	}
}

// Property: for seeded-random programs, the embedding agrees with the
// reference interpreter over a 6-cycle run.
func TestQuickEmbeddingAgreesWithInterpreter(t *testing.T) {
	f := func(seed uint32) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*1664525 + 1013904223
			return int(rng>>16) % n
		}
		// Random expression over input X, flow Y (through pre), consts.
		var gen func(depth int) Expr
		gen = func(depth int) Expr {
			if depth <= 0 {
				switch next(3) {
				case 0:
					return Input{Name: "X"}
				case 1:
					return Const{Val: int64(next(10))}
				default:
					return Pre{Init: int64(next(5)), X: Ref{Name: "Y"}}
				}
			}
			switch next(4) {
			case 0:
				return Plus{A: gen(depth - 1), B: gen(depth - 1)}
			case 1:
				return Minus{A: gen(depth - 1), B: gen(depth - 1)}
			case 2:
				return Pre{Init: int64(next(5)), X: gen(depth - 1)}
			default:
				return Input{Name: "X"}
			}
		}
		p := &Program{
			Name:    "rand",
			Inputs:  []string{"X"},
			Eqs:     []Equation{{Name: "Y", Rhs: Plus{A: gen(2), B: gen(2)}}},
			Outputs: []string{"Y"},
		}
		emb, err := Embed(p)
		if err != nil {
			return false
		}
		it, err := NewInterp(p)
		if err != nil {
			return false
		}
		inputs := make([]map[string]int64, 6)
		for i := range inputs {
			inputs[i] = map[string]int64{"X": int64(next(20) - 10)}
		}
		got, err := emb.Run(inputs)
		if err != nil {
			return false
		}
		for i, in := range inputs {
			want, err := it.Step(in)
			if err != nil {
				return false
			}
			if got[i]["Y"] != want["Y"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedRunErrors(t *testing.T) {
	emb, err := Embed(Integrator())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := emb.Run([]map[string]int64{{"Z": 1}}); err == nil {
		t.Fatal("unknown input must fail")
	}
}

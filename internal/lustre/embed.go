package lustre

import (
	"fmt"
	"strconv"

	"bip/internal/behavior"
	"bip/internal/core"
	"bip/internal/expr"
)

// Embedding is the result of translating a program into BIP: the system,
// the mapping from flows/inputs to component variables, and the size
// accounting that experiment E3 reports (one component per data-flow
// node, one interaction per data-flow connection, plus the two global
// synchronisation interactions str and cmp).
type Embedding struct {
	Sys *core.System
	// InputAtoms maps each input flow to the components whose "out"
	// variable the driver writes before each cycle (one component per
	// occurrence of the input in the program).
	InputAtoms map[string][]string
	// declared is the program's input interface; declared inputs without
	// occurrences are accepted and ignored at Run, like the interpreter.
	declared map[string]bool
	// OutputVar maps each output flow to (component, variable) read at
	// the end of the computation phase.
	OutputVar map[string][2]string
	NumNodes  int
	NumWires  int
}

// Embed translates a program following Fig. 5.2: each graph node becomes
// an atomic component with str/cmp ports; data-flow edges become binary
// rendezvous transferring the producer's output into the consumer's
// input variable; all components start and complete cycles together via
// the global str and cmp interactions.
func Embed(p *Program) (*Embedding, error) {
	g, err := compile(p)
	if err != nil {
		return nil, err
	}
	emb := &Embedding{
		InputAtoms: make(map[string][]string),
		OutputVar:  make(map[string][2]string),
		NumNodes:   len(g.nodes),
		declared:   make(map[string]bool, len(p.Inputs)),
	}
	for _, in := range p.Inputs {
		emb.declared[in] = true
	}
	b := core.NewSystem(p.Name + "-bip")
	names := make([]string, len(g.nodes))
	strPorts := make([]core.PortRef, 0, len(g.nodes))
	cmpPorts := make([]core.PortRef, 0, len(g.nodes))

	for id, n := range g.nodes {
		name := fmt.Sprintf("%s%d", n.kind, id)
		names[id] = name
		atom, err := nodeAtom(n)
		if err != nil {
			return nil, err
		}
		b.AddAs(name, atom)
		strPorts = append(strPorts, core.P(name, "str"))
		cmpPorts = append(cmpPorts, core.P(name, "cmp"))
		if n.kind == nInput {
			emb.InputAtoms[n.name] = append(emb.InputAtoms[n.name], name)
		}
	}
	for _, o := range p.Outputs {
		id := g.flows[o]
		outVar := "out"
		if g.nodes[id].kind == nPre {
			outVar = "mem"
		}
		emb.OutputVar[o] = [2]string{names[id], outVar}
	}

	// Data-flow wires.
	for id, n := range g.nodes {
		for ai := 0; ai < n.nargs; ai++ {
			src := n.args[ai]
			srcVar := "out"
			if g.nodes[src].kind == nPre {
				srcVar = "mem"
			}
			dstVar := "a"
			dstPort := "get_a"
			if ai == 1 {
				dstVar = "b"
				dstPort = "get_b"
			}
			if n.kind == nPre {
				dstVar = "nxt"
			}
			b.ConnectGD(
				fmt.Sprintf("wire%d_%d", src, id)+"_"+strconv.Itoa(ai),
				nil,
				expr.Set(names[id]+"."+dstVar, expr.V(names[src]+"."+srcVar)),
				core.P(names[src], "put"), core.P(names[id], dstPort))
			emb.NumWires++
		}
	}

	b.Connect("str", strPorts...)
	b.Connect("cmp", cmpPorts...)
	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	emb.Sys = sys
	return emb, nil
}

// nodeAtom builds the atomic component for one graph node, following the
// B+ / Bpre automata of Fig. 5.2.
func nodeAtom(n gnode) (*behavior.Atom, error) {
	switch n.kind {
	case nInput, nConst:
		// out is set externally (input) or fixed (const); available on
		// put throughout the cycle.
		init := int64(0)
		if n.kind == nConst {
			init = n.val
		}
		return behavior.NewBuilder("src").
			Location("idle", "run").
			Int("out", init).
			Port("str").Port("cmp").Port("put", "out").
			Transition("idle", "str", "run").
			Transition("run", "put", "run").
			Transition("run", "cmp", "idle").
			Build()
	case nPlus, nMinus:
		op := expr.Add(expr.V("a"), expr.V("b"))
		if n.kind == nMinus {
			op = expr.Sub(expr.V("a"), expr.V("b"))
		}
		// Read both inputs (in either order the wires allow — here
		// sequentially a then b), compute, then serve the result.
		return behavior.NewBuilder("op").
			Location("idle", "wa", "wb", "run").
			Int("a", 0).Int("b", 0).Int("out", 0).
			Port("str").Port("cmp").
			Port("get_a", "a").Port("get_b", "b").
			Port("put", "out").
			Transition("idle", "str", "wa").
			Transition("wa", "get_a", "wb").
			TransitionG("wb", "get_b", "run", nil, expr.Set("out", op)).
			Transition("run", "put", "run").
			Transition("run", "cmp", "idle").
			Build()
	case nPre:
		// The stored value is available from the start of the cycle
		// (the unit delay's defining property); the argument is read
		// during the cycle and becomes the new memory at completion.
		return behavior.NewBuilder("pre").
			Location("idle", "serve", "got").
			Int("mem", n.val).Int("nxt", 0).
			Port("str").Port("cmp").
			Port("get_a", "nxt").
			Port("put", "mem").
			Transition("idle", "str", "serve").
			Transition("serve", "put", "serve").
			Transition("serve", "get_a", "got").
			Transition("got", "put", "got").
			TransitionG("got", "cmp", "idle", nil, expr.Set("mem", expr.V("nxt"))).
			Build()
	default:
		return nil, fmt.Errorf("lustre: no atom for node kind %v", n.kind)
	}
}

// Run drives the embedded system for one cycle per input record and
// returns the outputs, using the reference BIP semantics directly. It is
// the execution harness of experiment E3.
func (e *Embedding) Run(inputs []map[string]int64) ([]map[string]int64, error) {
	sys := e.Sys
	st := sys.Initial()
	fire := func(label string) error {
		moves, err := sys.Enabled(st)
		if err != nil {
			return err
		}
		for _, m := range moves {
			if sys.Label(m) == label {
				st, err = sys.Exec(st, m)
				return err
			}
		}
		return fmt.Errorf("lustre: %s not enabled", label)
	}
	var outs []map[string]int64
	for ci, in := range inputs {
		// Inject inputs.
		for name, v := range in {
			if !e.declared[name] {
				return nil, fmt.Errorf("lustre: cycle %d: unknown input %q", ci, name)
			}
			for _, atom := range e.InputAtoms[name] {
				if err := st.Vars[sys.AtomIndex(atom)].Set("out", expr.IntVal(v)); err != nil {
					return nil, err
				}
			}
		}
		if err := fire("str"); err != nil {
			return nil, fmt.Errorf("lustre: cycle %d: %w", ci, err)
		}
		// Computation phase: fire anything but cmp until only cmp
		// remains.
		for {
			moves, err := sys.Enabled(st)
			if err != nil {
				return nil, err
			}
			var next *core.Move
			for i := range moves {
				if sys.Label(moves[i]) != "cmp" {
					next = &moves[i]
					break
				}
			}
			if next == nil {
				if len(moves) == 0 {
					return nil, fmt.Errorf("lustre: cycle %d: computation deadlock", ci)
				}
				break
			}
			st, err = sys.Exec(st, *next)
			if err != nil {
				return nil, err
			}
		}
		// Read outputs before cmp (pre memories update at cmp).
		out := make(map[string]int64, len(e.OutputVar))
		for flow, av := range e.OutputVar {
			v, _ := st.Vars[sys.AtomIndex(av[0])].Get(av[1])
			iv, _ := v.Int()
			out[flow] = iv
		}
		outs = append(outs, out)
		if err := fire("cmp"); err != nil {
			return nil, fmt.Errorf("lustre: cycle %d: %w", ci, err)
		}
	}
	return outs, nil
}
